// Command sdvsim runs one workload (or an assembly file) on one processor
// configuration and prints the simulation statistics.
//
// Usage:
//
//	sdvsim -workload swim -config 4w-1pV -max 500000
//	sdvsim -workload swim,applu,gcc -parallel 4   # fan out over workloads
//	sdvsim -workload all -config 8w-1pV
//	sdvsim -asm kernel.s -config 8w-2pIM
//	sdvsim -workload swim -trace-record swim.sdvt # record the stream
//	sdvsim -trace-replay swim.sdvt -config 8w-1pV # re-simulate from it
//	sdvsim -workload swim -trace-record swim.sdvt -ckpt-every 50000
//	sdvsim -trace-replay swim.sdvt -shards 8      # checkpointed fast-forward
//	sdvsim -workload swim -shards 8 -ckpt-every 25000
//	sdvsim -workloads            # list available workloads
//
// Configuration names follow the paper: <width>w-<ports>p<mode> with mode
// one of noIM (scalar buses), IM (wide bus) and V (wide bus + speculative
// dynamic vectorization).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"specvec/internal/asm"
	"specvec/internal/cliutil"
	"specvec/internal/config"
	"specvec/internal/emu"
	"specvec/internal/experiments"
	"specvec/internal/isa"
	"specvec/internal/pipeline"
	"specvec/internal/stats"
	"specvec/internal/trace"
	"specvec/internal/workload"
	"specvec/internal/wspec"
)

func main() {
	var (
		wl       = flag.String("workload", "", "benchmark name, comma-separated list, or 'all' (see -workloads)")
		asmFile  = flag.String("asm", "", "assembly file to run instead of a workload")
		cfgName  = flag.String("config", "4w-1pV", "configuration name, e.g. 4w-1pV, 8w-4pnoIM")
		max      = flag.Uint64("max", 500_000, "maximum committed instructions")
		scale    = flag.Int("scale", 500_000, "workload scale (approximate dynamic instructions)")
		seed     = flag.Int64("seed", 1, "workload data seed")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent simulations when running several workloads")
		listWLs  = flag.Bool("workloads", false, "list workloads and exit")
		listCfgs = flag.Bool("configs", false, "list configurations and exit")
		hotStats = flag.Bool("hotstats", false, "print hot-path pool/journal counters after a single run")
		trcOut   = flag.String("trace-record", "", "record the dynamic instruction stream of a single run to this file")
		trcIn    = flag.String("trace-replay", "", "simulate from a recorded trace file instead of a workload")
		shards   = flag.Int("shards", 1, "split each simulation into K checkpoint-fast-forwarded intervals (1 = exact single pass)")
		ckptEvry = flag.Int("ckpt-every", 0, "embed an architectural checkpoint every N instructions when recording (0 = auto when -shards > 1, else none)")
		specArg  = flag.String("spec", "", "workload-spec file(s) (YAML/JSON, comma-separated): register their generated workloads; with no -workload, run all of them")
	)
	flag.Parse()

	// Register spec workloads before anything lists or resolves names.
	var specNames []string
	if *specArg != "" {
		paths, err := cliutil.SplitSpecPaths(*specArg)
		if err != nil {
			fatal(err)
		}
		for _, p := range paths {
			f, err := wspec.LoadAndRegister(p)
			if err != nil {
				fatal(err)
			}
			specNames = append(specNames, f.Names()...)
		}
		if *wl == "" && *asmFile == "" && *trcIn == "" {
			// -spec alone means "run the spec's workloads".
			*wl = strings.Join(specNames, ",")
		}
	}

	if *listWLs {
		for _, b := range workload.All() {
			kind := "int"
			if b.FP {
				kind = "fp"
			}
			fmt.Printf("%-9s [%s] %s\n", b.Name, kind, b.Description)
		}
		return
	}
	if *listCfgs {
		for _, c := range config.Matrix() {
			fmt.Println(c.Name)
		}
		return
	}

	if err := cliutil.ValidateRunFlags(*scale, *shards, *parallel); err != nil {
		fatal(err)
	}
	if *ckptEvry < 0 {
		fatal(cliutil.FlagError("ckpt-every", *ckptEvry, ">= 0"))
	}
	if *max == 0 {
		fatal(cliutil.FlagError("max", *max, "> 0"))
	}

	cfg, err := parseConfig(*cfgName)
	if err != nil {
		fatal(err)
	}

	if *trcOut != "" && *shards > 1 {
		fatal(fmt.Errorf("-trace-record needs one sequential run; record first, then replay with -shards"))
	}

	if *trcIn != "" {
		if *wl != "" || *asmFile != "" || *trcOut != "" {
			fatal(fmt.Errorf("-trace-replay runs from the trace alone; drop -workload/-asm/-trace-record"))
		}
		// The trace fixes the workload and its data: the generation knobs
		// have no effect, so flag them the same way -max is flagged for
		// multiple workloads instead of silently ignoring them.
		for _, name := range []string{"seed", "scale"} {
			if flagSet(name) {
				fmt.Fprintf(os.Stderr, "sdvsim: -%s is ignored with -trace-replay; the trace fixes the workload and its data\n", name)
			}
		}
		if *ckptEvry > 0 {
			fmt.Fprintln(os.Stderr, "sdvsim: -ckpt-every is ignored with -trace-replay; checkpoints are embedded at recording time")
		}
		if err := replayRun(cfg, *trcIn, *max, *shards, *parallel, *hotStats); err != nil {
			fatal(err)
		}
		return
	}
	if *asmFile != "" && *shards > 1 {
		fatal(fmt.Errorf("-shards needs a workload or -trace-replay (assembly runs have no recorded checkpoints)"))
	}

	var prog *isa.Program
	switch {
	case *asmFile != "":
		src, err := os.ReadFile(*asmFile)
		if err != nil {
			fatal(err)
		}
		prog, err = asm.Assemble(*asmFile, string(src))
		if err != nil {
			fatal(err)
		}
	case *wl != "":
		names, err := workloadNames(*wl)
		if err != nil {
			fatal(err)
		}
		if len(names) > 1 || *shards > 1 {
			if *trcOut != "" {
				fatal(fmt.Errorf("-trace-record records a single run; got %d workloads", len(names)))
			}
			// The experiments Runner caps every run at -scale; -max only
			// applies to single runs.
			if flagSet("max") && *max != uint64(*scale) {
				fmt.Fprintf(os.Stderr, "sdvsim: -max is ignored with multiple workloads or -shards; each run commits up to -scale (%d) instructions\n", *scale)
			}
			if err := runSuite(cfg, names, *scale, *seed, *parallel, *shards, *ckptEvry); err != nil {
				fatal(err)
			}
			return
		}
		b, err := workload.Get(names[0])
		if err != nil {
			fatal(err)
		}
		prog = b.Build(*scale, *seed)
	default:
		fatal(fmt.Errorf("need -workload or -asm (see -workloads)"))
	}

	if *ckptEvry > 0 && *trcOut == "" {
		// Checkpoints live inside a recorded trace; without -trace-record
		// (or the Runner path above, which records internally) there is
		// nothing to embed them in.
		fmt.Fprintln(os.Stderr, "sdvsim: -ckpt-every is ignored without -trace-record or -shards")
	}

	var rec *trace.Recorder
	var sim *pipeline.Simulator
	if *trcOut != "" {
		mach, err := emu.New(prog)
		if err != nil {
			fatal(err)
		}
		rec, err = trace.NewRecorder(mach, prog, pipeline.SourceWindow(cfg))
		if err != nil {
			fatal(err)
		}
		if *ckptEvry > 0 {
			if err := rec.EnableCheckpoints(*ckptEvry); err != nil {
				fatal(err)
			}
		}
		sim, err = pipeline.NewFromSource(cfg, rec)
		if err != nil {
			fatal(err)
		}
	} else {
		sim, err = pipeline.New(cfg, prog)
		if err != nil {
			fatal(err)
		}
	}
	st, err := sim.Run(*max)
	if err != nil {
		fatal(err)
	}
	printRun(prog.Name, cfg.Name, st, sim, *hotStats)
	if rec != nil {
		if err := writeTrace(rec, *trcOut, *max); err != nil {
			fatal(err)
		}
	}
}

// writeTrace completes a recording and writes it out. The trace is
// extended past the commit limit by more than any configuration's
// in-flight capacity, so a replay under a wider processor observes
// exactly the records a live run would have.
func writeTrace(rec *trace.Recorder, path string, maxInsts uint64) error {
	tr, err := rec.Finish(int(maxInsts) + trace.RecordSlack)
	if err != nil {
		return err
	}
	if err := tr.WriteFile(path); err != nil {
		return err
	}
	state := "halted"
	if tr.Truncated() {
		state = fmt.Sprintf("truncated (replayable up to -max %d)", maxInsts)
	}
	// The announcement goes to stderr so a recording run's stdout stays
	// byte-identical to the live and replayed runs (CI diffs them).
	fmt.Fprintf(os.Stderr, "recorded %d instructions (%d distinct operand tuples, %s) to %s\n",
		tr.Len(), tr.TupleCount(), state, path)
	return nil
}

// replayRun simulates from a recorded trace: no workload, no functional
// emulation, no memory image. With shards > 1 the run is split into
// checkpoint-fast-forwarded intervals executed concurrently and merged.
func replayRun(cfg config.Config, path string, maxInsts uint64, shards, workers int, hotStats bool) error {
	tr, err := trace.ReadFile(path)
	if err != nil {
		return err
	}
	if tr.Truncated() && tr.Len() < int(maxInsts)+pipeline.SourceWindow(cfg) {
		fmt.Fprintf(os.Stderr, "sdvsim: warning: truncated trace (%d records) may starve -max %d; rerun the recording with a higher -max\n",
			tr.Len(), maxInsts)
	}
	if shards > 1 {
		if hotStats {
			fmt.Fprintln(os.Stderr, "sdvsim: -hotstats is ignored with -shards (counters are per-shard)")
		}
		if len(tr.Checkpoints()) == 0 {
			fmt.Fprintln(os.Stderr, "sdvsim: warning: trace has no checkpoints; every shard replays from record 0 (record with -ckpt-every to fast-forward)")
		}
		st, err := experiments.ShardedReplay(cfg, tr, maxInsts, shards, 0, workers)
		if err != nil {
			return err
		}
		printRun(tr.Name(), cfg.Name, st, nil, false)
		return nil
	}
	sim, err := pipeline.NewFromSource(cfg, trace.NewReplayer(tr, pipeline.SourceWindow(cfg)))
	if err != nil {
		return err
	}
	st, err := sim.Run(maxInsts)
	if err != nil {
		return err
	}
	printRun(tr.Name(), cfg.Name, st, sim, hotStats)
	return nil
}

// printRun renders one run's statistics (identically for live, recorded
// and replayed runs, so outputs can be diffed).
func printRun(prog, cfg string, st *stats.Sim, sim *pipeline.Simulator, hotStats bool) {
	fmt.Printf("program %s on %s\n\n%s", prog, cfg, st.String())
	if hotStats && sim != nil {
		h := sim.HotStats()
		fmt.Printf("\nhot path (steady state allocates nothing: news flat, recycles grow)\n")
		fmt.Printf("uop pool             %d heap / %d recycled\n", h.UopNews, h.UopRecycles)
		fmt.Printf("vop pool             %d heap / %d recycled\n", h.VopNews, h.VopRecycles)
		fmt.Printf("journal depth        %d live undo records\n", h.JournalDepth)
	}
}

// workloadNames expands a -workload argument: one name, a comma-separated
// list, or "all" for the full suite plus any registered spec workloads.
func workloadNames(arg string) ([]string, error) {
	if arg == "all" {
		return append(workload.Names(), workload.GeneratedNames()...), nil
	}
	var names []string
	for _, n := range strings.Split(arg, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if _, err := workload.Get(n); err != nil {
			return nil, err
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("empty -workload argument %q", arg)
	}
	return names, nil
}

// flagSet reports whether the named flag was given on the command line.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) { set = set || f.Name == name })
	return set
}

// runSuite fans one or more workloads out over the experiments Runner's
// worker pool — sharding each simulation when shards > 1 — and prints
// their statistics in the requested order.
func runSuite(cfg config.Config, names []string, scale int, seed int64, parallel, shards, ckptEvery int) error {
	r := experiments.NewRunner(experiments.Options{
		Scale: scale, Seed: seed, Workers: parallel,
		Shards: shards, CheckpointEvery: ckptEvery,
	})
	specs := make([]experiments.RunSpec, len(names))
	for i, n := range names {
		specs[i] = experiments.RunSpec{Cfg: cfg, Bench: n}
	}
	sims, err := r.RunAll(specs)
	if err != nil {
		return err
	}
	for i, st := range sims {
		fmt.Printf("workload %s on %s\n\n%s\n", names[i], cfg.Name, st.String())
	}
	return nil
}

// parseConfig resolves a paper-style configuration name.
func parseConfig(name string) (config.Config, error) {
	for _, c := range config.Matrix() {
		if c.Name == name {
			return c, nil
		}
	}
	return config.Config{}, fmt.Errorf("unknown config %q (want e.g. %s)",
		name, strings.Join([]string{"4w-1pV", "8w-4pnoIM"}, ", "))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sdvsim:", err)
	os.Exit(1)
}
