// Command sdvsim runs one workload (or an assembly file) on one processor
// configuration and prints the simulation statistics.
//
// Usage:
//
//	sdvsim -workload swim -config 4w-1pV -max 500000
//	sdvsim -asm kernel.s -config 8w-2pIM
//	sdvsim -workloads            # list available workloads
//
// Configuration names follow the paper: <width>w-<ports>p<mode> with mode
// one of noIM (scalar buses), IM (wide bus) and V (wide bus + speculative
// dynamic vectorization).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"specvec/internal/asm"
	"specvec/internal/config"
	"specvec/internal/isa"
	"specvec/internal/pipeline"
	"specvec/internal/workload"
)

func main() {
	var (
		wl       = flag.String("workload", "", "benchmark name (see -workloads)")
		asmFile  = flag.String("asm", "", "assembly file to run instead of a workload")
		cfgName  = flag.String("config", "4w-1pV", "configuration name, e.g. 4w-1pV, 8w-4pnoIM")
		max      = flag.Uint64("max", 500_000, "maximum committed instructions")
		scale    = flag.Int("scale", 500_000, "workload scale (approximate dynamic instructions)")
		seed     = flag.Int64("seed", 1, "workload data seed")
		listWLs  = flag.Bool("workloads", false, "list workloads and exit")
		listCfgs = flag.Bool("configs", false, "list configurations and exit")
	)
	flag.Parse()

	if *listWLs {
		for _, b := range workload.All() {
			kind := "int"
			if b.FP {
				kind = "fp"
			}
			fmt.Printf("%-9s [%s] %s\n", b.Name, kind, b.Description)
		}
		return
	}
	if *listCfgs {
		for _, c := range config.Matrix() {
			fmt.Println(c.Name)
		}
		return
	}

	cfg, err := parseConfig(*cfgName)
	if err != nil {
		fatal(err)
	}

	var prog *isa.Program
	switch {
	case *asmFile != "":
		src, err := os.ReadFile(*asmFile)
		if err != nil {
			fatal(err)
		}
		prog, err = asm.Assemble(*asmFile, string(src))
		if err != nil {
			fatal(err)
		}
	case *wl != "":
		b, err := workload.Get(*wl)
		if err != nil {
			fatal(err)
		}
		prog = b.Build(*scale, *seed)
	default:
		fatal(fmt.Errorf("need -workload or -asm (see -workloads)"))
	}

	sim, err := pipeline.New(cfg, prog)
	if err != nil {
		fatal(err)
	}
	st, err := sim.Run(*max)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("program %s on %s\n\n%s", prog.Name, cfg.Name, st.String())
}

// parseConfig resolves a paper-style configuration name.
func parseConfig(name string) (config.Config, error) {
	for _, c := range config.Matrix() {
		if c.Name == name {
			return c, nil
		}
	}
	return config.Config{}, fmt.Errorf("unknown config %q (want e.g. %s)",
		name, strings.Join([]string{"4w-1pV", "8w-4pnoIM"}, ", "))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sdvsim:", err)
	os.Exit(1)
}
