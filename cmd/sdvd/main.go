// Command sdvd is the long-running simulation daemon: it serves the
// experiment/simulation engine over an HTTP JSON API with a bounded job
// scheduler, a content-addressed result cache and streaming progress.
//
// Usage:
//
//	sdvd -addr 127.0.0.1:8077
//	sdvd -addr :8077 -cache-dir /var/lib/sdvd -jobs 4
//
// Submit work and read results:
//
//	curl -s localhost:8077/v1/experiments
//	curl -s -X POST localhost:8077/v1/jobs -d '{"exp":"fig11","scale":50000}'
//	curl -s localhost:8077/v1/jobs/j000001
//	curl -N localhost:8077/v1/jobs/j000001/events      # SSE progress
//	curl -s localhost:8077/metrics
//
// The existing CLI runs against a warm daemon with byte-identical
// output: sdvexp -exp fig11 -server http://localhost:8077.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"syscall"
	"time"

	"specvec/internal/cliutil"
	"specvec/internal/server"
	"specvec/internal/wspec"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:8077", "listen address")
		cacheDir      = flag.String("cache-dir", "", "persist results and trace artifacts under this directory (empty = memory only)")
		cacheEntries  = flag.Int("cache-entries", 512, "in-memory result cache entry bound")
		cacheBytes    = flag.Int64("cache-bytes", 256<<20, "in-memory result cache byte bound")
		traceEntries  = flag.Int("trace-entries", 16, "in-memory trace artifact cache entry bound")
		queueDepth    = flag.Int("queue", 64, "job queue depth (submissions beyond it get 503)")
		jobs          = flag.Int("jobs", 2, "jobs executing concurrently")
		jobHistory    = flag.Int("job-history", 512, "terminal jobs retained in the registry (older ids answer 404; results stay in the cache)")
		workers       = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulations per job (0 = all cores)")
		gang          = flag.Int("gang", 0, "gang replay within each job: 0 = gang all configurations per benchmark walk, 1 = off, K >= 2 caps gang size (results and cache keys unaffected)")
		specArg       = flag.String("spec", "", "workload-spec file(s) (YAML/JSON, comma-separated): register their generated workloads for /v1/workloads discovery and by-name sim jobs")
		quiet         = flag.Bool("quiet", false, "suppress operational logging")
		coordinator   = flag.Bool("coordinator", false, "accept cluster workers (-join) and place replay work across them; results stay byte-identical to a single process")
		workerRole    = flag.Bool("worker", false, "join a coordinator (-join) and execute shards for it")
		joinURL       = flag.String("join", "", "coordinator base URL a -worker registers with (e.g. http://127.0.0.1:8077)")
		advertise     = flag.String("advertise", "", "URL a -worker advertises to the coordinator (default: derived from -addr)")
		pprofAddr     = flag.String("pprof", "", "serve net/http/pprof on this address (opt-in; empty = disabled)")
		metricsSample = flag.Duration("metrics-sample", 10*time.Second, "how often the sdvd_go_* runtime gauges are refreshed; /metrics reports them at most one interval stale")
	)
	flag.Parse()

	if *specArg != "" {
		paths, err := cliutil.SplitSpecPaths(*specArg)
		if err != nil {
			cliutil.Fatal("sdvd", err)
		}
		for _, p := range paths {
			if _, err := wspec.LoadAndRegister(p); err != nil {
				cliutil.Fatal("sdvd", err)
			}
		}
	}

	for _, f := range []struct {
		name string
		v    int
		min  int
	}{
		{"cache-entries", *cacheEntries, 1},
		{"trace-entries", *traceEntries, 1},
		{"queue", *queueDepth, 1},
		{"jobs", *jobs, 1},
		{"job-history", *jobHistory, 1},
		{"workers", *workers, 0},
	} {
		if f.v < f.min {
			cliutil.Fatal("sdvd", cliutil.FlagError(f.name, f.v, ">= "+strconv.Itoa(f.min)))
		}
	}
	if *cacheBytes < 1 {
		cliutil.Fatal("sdvd", cliutil.FlagError("cache-bytes", *cacheBytes, ">= 1"))
	}
	if err := cliutil.ValidateGang(*gang); err != nil {
		cliutil.Fatal("sdvd", err)
	}
	if err := cliutil.ValidateClusterFlags(*coordinator, *workerRole, *joinURL, *advertise); err != nil {
		cliutil.Fatal("sdvd", err)
	}
	if *pprofAddr != "" {
		if err := cliutil.ValidateListenAddr("pprof", *pprofAddr); err != nil {
			cliutil.Fatal("sdvd", err)
		}
	}
	if *metricsSample <= 0 {
		cliutil.Fatal("sdvd", cliutil.FlagError("metrics-sample", *metricsSample, "> 0"))
	}

	logf := log.New(os.Stderr, "sdvd: ", log.LstdFlags).Printf
	if *quiet {
		logf = nil
	}
	srv := server.New(server.Options{
		CacheDir:     *cacheDir,
		CacheEntries: *cacheEntries,
		CacheBytes:   *cacheBytes,
		TraceEntries: *traceEntries,
		QueueDepth:   *queueDepth,
		Jobs:         *jobs,
		JobHistory:   *jobHistory,
		SimWorkers:   *workers,
		Gang:         *gang,
		Logf:         logf,
		Coordinator:  *coordinator,
		Worker:       *workerRole,
		JoinURL:      *joinURL,
		AdvertiseURL: *advertise,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv.StartRuntimeSampler(ctx, *metricsSample)
	if *pprofAddr != "" {
		// Profiling binds its own listener so the API surface never carries
		// /debug/pprof by accident; failures are fatal (an explicitly
		// requested profiler that silently isn't there is worse than an
		// early exit).
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			cliutil.Fatal("sdvd", err)
		}
		if logf != nil {
			logf("pprof serving on http://%s/debug/pprof/", ln.Addr())
		}
		go func() { _ = http.Serve(ln, server.PprofHandler()) }()
	}
	if err := srv.ListenAndServe(ctx, *addr); err != nil {
		cliutil.Fatal("sdvd", err)
	}
}
