// Command sdvexp regenerates the figures and tables of "Speculative
// Dynamic Vectorization" (ISCA 2002).
//
// Usage:
//
//	sdvexp -list
//	sdvexp -exp fig11 [-scale 300000] [-seed 1] [-parallel N]
//	sdvexp -exp all
//	sdvexp -exp fig11 -server http://127.0.0.1:8077
//
// Each experiment prints one or more benchmark × series tables with INT /
// FP / Spec95 aggregate rows, plus the paper's reference values. With
// -server the spec is submitted to a running sdvd daemon and the result
// tables are rendered locally — stdout is byte-identical to a local run
// of the same scale/seed/shards (timing goes to stderr), and repeated
// submissions are served from the daemon's result cache without
// re-simulating.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"specvec/internal/cliutil"
	"specvec/internal/experiments"
	"specvec/internal/server"
	"specvec/internal/wspec"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment id (fig1, fig3, fig7, fig9, fig10, fig11, fig12, fig13, fig14, fig15, table1, headline, veclen, ablation) or 'all'")
		scale     = flag.Int("scale", 300_000, "approximate dynamic instructions per run")
		seed      = flag.Int64("seed", 1, "workload data seed")
		parallel  = flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent simulations (1 = sequential; output is identical either way)")
		shards    = flag.Int("shards", 1, "split each simulation into K checkpoint-fast-forwarded intervals (1 = exact single pass, byte-identical output; K > 1 trades warmup tolerance for intra-benchmark parallelism)")
		ckptEvry  = flag.Int("ckpt-every", 0, "checkpoint interval in instructions for recorded traces (0 = auto when -shards > 1)")
		gang      = flag.Int("gang", 0, "gang replay: configurations sharing a benchmark recording replay one pre-decoded trace walk (0 = gang all, 1 = off, K >= 2 caps gang size; output is byte-identical in every mode)")
		serverURL = flag.String("server", "", "submit to a running sdvd daemon at this base URL instead of simulating locally (output is byte-identical)")
		specArg   = flag.String("spec", "", "workload-spec file(s) (YAML/JSON, comma-separated): run the generated workloads through the headline sweep; without an explicit -exp only the sweep runs")
		list      = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-9s %s\n", e.ID, e.Title)
		}
		return
	}
	if err := cliutil.ValidateRunFlags(*scale, *shards, *parallel); err != nil {
		cliutil.Fatal("sdvexp", err)
	}
	if *ckptEvry < 0 {
		cliutil.Fatal("sdvexp", cliutil.FlagError("ckpt-every", *ckptEvry, ">= 0"))
	}
	if err := cliutil.ValidateGang(*gang); err != nil {
		cliutil.Fatal("sdvexp", err)
	}

	// Load and register workload specs. The generated workloads are
	// swept separately from the paper's experiments: with -spec alone
	// only the sweep runs; adding an explicit -exp runs both.
	var specFiles []*wspec.File
	if *specArg != "" {
		paths, err := cliutil.SplitSpecPaths(*specArg)
		if err != nil {
			cliutil.Fatal("sdvexp", err)
		}
		for _, p := range paths {
			f, err := wspec.LoadAndRegister(p)
			if err != nil {
				cliutil.Fatal("sdvexp", err)
			}
			specFiles = append(specFiles, f)
		}
	}

	var toRun []experiments.Experiment
	if *specArg == "" || flagSet("exp") {
		if *exp == "all" {
			toRun = experiments.All()
		} else {
			e, err := experiments.Get(*exp)
			if err != nil {
				cliutil.Fatal("sdvexp", err)
			}
			toRun = []experiments.Experiment{e}
		}
	}

	if *serverURL != "" {
		if err := runRemote(*serverURL, toRun, specFiles, *scale, *seed, *shards, *ckptEvry); err != nil {
			cliutil.Fatal("sdvexp", err)
		}
		return
	}

	runner := experiments.NewRunner(experiments.Options{
		Scale: *scale, Seed: *seed, Workers: *parallel,
		Shards: *shards, CheckpointEvery: *ckptEvry, Gang: *gang,
	})
	for _, e := range toRun {
		start := time.Now()
		tables, err := e.Run(runner)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		render(tables)
		timing(e.ID, start)
	}
	// One sweep per spec file, matching the one-job-per-file served path
	// so local and -server output stay byte-diffable.
	for _, f := range specFiles {
		start := time.Now()
		tables, err := experiments.SpecSweep(runner, f.Names())
		if err != nil {
			fmt.Fprintf(os.Stderr, "specsweep: %v\n", err)
			os.Exit(1)
		}
		render(tables)
		timing("specsweep", start)
	}
}

// flagSet reports whether the named flag was given on the command line.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) { set = set || f.Name == name })
	return set
}

// render prints tables exactly the same way for local and served runs,
// so the two paths are byte-diffable.
func render(tables []*experiments.Table) {
	for _, t := range tables {
		fmt.Println(t.Render())
	}
}

// timing reports wall clock on stderr: it varies run to run, so it must
// not pollute the diffable stdout.
func timing(id string, start time.Time) {
	fmt.Fprintf(os.Stderr, "[%s in %.1fs]\n", id, time.Since(start).Seconds())
}

// runRemote submits one job per experiment — plus one sweep job per
// loaded spec file — to an sdvd daemon and renders the returned tables.
// Each experiment is its own job so the daemon caches — and a later
// invocation reuses — every figure independently; a sweep job carries
// the spec file's canonical form, so its cache entry is addressed by
// workload content, not file name.
func runRemote(base string, toRun []experiments.Experiment, specFiles []*wspec.File, scale int, seed int64, shards, ckptEvery int) error {
	base = strings.TrimRight(base, "/")
	submit := func(id string, spec server.JobSpec) error {
		start := time.Now()
		tables, view, err := submitAndWait(base, spec)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		render(tables)
		source := view.Source
		if source == "" {
			source = "computed"
		}
		fmt.Fprintf(os.Stderr, "[%s via %s (%s) in %.1fs]\n", id, base, source, time.Since(start).Seconds())
		return nil
	}
	for _, e := range toRun {
		spec := server.JobSpec{
			Kind: server.KindExperiment, Exp: e.ID,
			Scale: scale, Seed: seed, Shards: shards, CheckpointEvery: ckptEvery,
		}
		if err := submit(e.ID, spec); err != nil {
			return err
		}
	}
	for _, f := range specFiles {
		spec := server.JobSpec{
			Kind: server.KindSweep, Specs: f.Canonical(),
			Scale: scale, Seed: seed, Shards: shards, CheckpointEvery: ckptEvery,
		}
		if err := submit("specsweep", spec); err != nil {
			return err
		}
	}
	return nil
}

// submitAndWait posts spec with ?wait=1 and decodes the resolved job.
func submitAndWait(base string, spec server.JobSpec) ([]*experiments.Table, *server.JobView, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, nil, err
	}
	resp, err := http.Post(base+"/v1/jobs?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var apiErr struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(payload, &apiErr) == nil && apiErr.Error != "" {
			return nil, nil, fmt.Errorf("server: %s", apiErr.Error)
		}
		return nil, nil, fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(payload)))
	}
	var view server.JobView
	if err := json.Unmarshal(payload, &view); err != nil {
		return nil, nil, fmt.Errorf("decoding job: %w", err)
	}
	if view.State != server.StateDone {
		return nil, nil, fmt.Errorf("job %s resolved %s: %s", view.ID, view.State, view.Error)
	}
	var res server.Result
	if err := json.Unmarshal(view.Result, &res); err != nil {
		return nil, nil, fmt.Errorf("decoding result: %w", err)
	}
	return res.Tables, &view, nil
}
