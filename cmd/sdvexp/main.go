// Command sdvexp regenerates the figures and tables of "Speculative
// Dynamic Vectorization" (ISCA 2002).
//
// Usage:
//
//	sdvexp -list
//	sdvexp -exp fig11 [-scale 300000] [-seed 1] [-parallel N]
//	sdvexp -exp all
//
// Each experiment prints one or more benchmark × series tables with INT /
// FP / Spec95 aggregate rows, plus the paper's reference values.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"specvec/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (fig1, fig3, fig7, fig9, fig10, fig11, fig12, fig13, fig14, fig15, table1, headline, veclen, ablation) or 'all'")
		scale    = flag.Int("scale", 300_000, "approximate dynamic instructions per run")
		seed     = flag.Int64("seed", 1, "workload data seed")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent simulations (1 = sequential; output is identical either way)")
		shards   = flag.Int("shards", 1, "split each simulation into K checkpoint-fast-forwarded intervals (1 = exact single pass, byte-identical output; K > 1 trades warmup tolerance for intra-benchmark parallelism)")
		ckptEvry = flag.Int("ckpt-every", 0, "checkpoint interval in instructions for recorded traces (0 = auto when -shards > 1)")
		list     = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-9s %s\n", e.ID, e.Title)
		}
		return
	}

	runner := experiments.NewRunner(experiments.Options{
		Scale: *scale, Seed: *seed, Workers: *parallel,
		Shards: *shards, CheckpointEvery: *ckptEvry,
	})
	var toRun []experiments.Experiment
	if *exp == "all" {
		toRun = experiments.All()
	} else {
		e, err := experiments.Get(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		toRun = []experiments.Experiment{e}
	}

	for _, e := range toRun {
		start := time.Now()
		tables, err := e.Run(runner)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t.Render())
		}
		fmt.Printf("[%s in %.1fs]\n\n", e.ID, time.Since(start).Seconds())
	}
}
