// Command sdvcheck runs the repository's static-analysis suite
// (internal/lint): five analyzers that machine-enforce the determinism,
// hot-path and cache-key invariants the simulator's caching and
// distribution layers rest on.
//
// Usage:
//
//	go run ./cmd/sdvcheck ./...
//	sdvcheck [-list] [packages]
//
// Exit status is 0 when every package is clean, 1 when any analyzer
// reported a diagnostic, 2 on a load or usage error. Diagnostics print
// one per line as file:line:col: analyzer: message, the format editors
// and CI annotate directly.
package main

import (
	"flag"
	"fmt"
	"os"

	"specvec/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sdvcheck [-list] [packages]\n\nruns the specvec static-analysis suite (default packages: ./...)\n\nanalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-11s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdvcheck: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(wd, flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdvcheck: %v\n", err)
		os.Exit(2)
	}
	diags := lint.RunAnalyzers(pkgs, lint.Analyzers())
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "sdvcheck: %d diagnostic(s) in %d package(s)\n", len(diags), countTargets(pkgs))
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "sdvcheck: %d package(s) clean\n", countTargets(pkgs))
}

func countTargets(pkgs []*lint.Package) int {
	n := 0
	for _, p := range pkgs {
		if p.Target {
			n++
		}
	}
	return n
}
