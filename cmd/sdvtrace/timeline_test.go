package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"specvec/internal/obs"
)

// buildTimeline assembles a deterministic three-phase job timeline on a
// manual clock: 1ms queue wait, 2ms lookup, 40ms compute holding one
// run with a grafted remote shard.
func buildTimeline() obs.Timeline {
	clk := obs.NewManualClock(time.Unix(100, 0))
	tr := obs.NewTrace("t01", clk, "job")
	q := tr.Start(obs.RootSpan, "queue-wait")
	clk.Advance(time.Millisecond)
	tr.End(q)
	l := tr.Start(obs.RootSpan, "cache-lookup")
	clk.Advance(2 * time.Millisecond)
	tr.End(l)
	comp := tr.Start(obs.RootSpan, "compute")
	run := tr.StartRun(comp, "run", "sdv", "swim")
	clk.Advance(40 * time.Millisecond)
	tr.Graft(run, "shard-remote", "http://w1", 35*time.Millisecond, true)
	tr.End(run)
	tr.End(comp)
	tr.Finish()
	return obs.NewTimeline("j000007", "experiment", "done", tr, clk.Now())
}

func TestRenderTimeline(t *testing.T) {
	var sb strings.Builder
	renderTimeline(&sb, buildTimeline(), 20)
	out := sb.String()

	for _, want := range []string{
		"job j000007 (experiment, done): 6 spans, 43ms",
		"queue-wait",
		"cache-lookup",
		"compute",
		"run sdv/swim",
		"shard-remote (http://w1) [remote]",
		"|====================|  job",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered timeline missing %q:\n%s", want, out)
		}
	}
	// Depth is conveyed by indentation: the run nests two levels under
	// the root, its remote graft three.
	if !strings.Contains(out, "|      run sdv/swim") {
		t.Errorf("run span not indented two levels:\n%s", out)
	}
}

func TestFetchTimeline(t *testing.T) {
	tl := buildTimeline()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/{id}/timeline", func(w http.ResponseWriter, r *http.Request) {
		if r.PathValue("id") != "j000007" {
			w.WriteHeader(http.StatusNotFound)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": "unknown job"})
			return
		}
		_ = json.NewEncoder(w).Encode(tl)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	got, err := fetchTimeline(ts.URL, "j000007")
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != tl.ID || got.Spans != tl.Spans || got.Root == nil {
		t.Errorf("fetched timeline diverges: %+v", got)
	}
	if _, err := fetchTimeline(ts.URL, "nope"); err == nil || !strings.Contains(err.Error(), "unknown job") {
		t.Errorf("missing job: err = %v, want the daemon's message", err)
	}
}
