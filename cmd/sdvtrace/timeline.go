package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"specvec/internal/obs"
)

// timelineCmd implements `sdvtrace timeline JOB_ID`: fetch a completed
// job's span tree from a daemon and render it as an indented waterfall
// — one line per span with its offset, duration and a bar scaled to the
// job's total time. Spans that ran on a cluster worker are marked
// [remote]; their durations were reported by the worker and grafted
// into the coordinator's timeline.
func timelineCmd(args []string) int {
	fs := flag.NewFlagSet("sdvtrace timeline", flag.ExitOnError)
	server := fs.String("server", "http://127.0.0.1:8077", "daemon base URL")
	width := fs.Int("width", 32, "waterfall bar width in characters")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: sdvtrace timeline [-server URL] [-width N] JOB_ID")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if fs.NArg() != 1 || *width < 1 {
		fs.Usage()
		return 2
	}
	tl, err := fetchTimeline(*server, fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdvtrace:", err)
		return 1
	}
	renderTimeline(os.Stdout, tl, *width)
	return 0
}

// fetchTimeline GETs one job's timeline from the daemon.
func fetchTimeline(server, jobID string) (obs.Timeline, error) {
	url := strings.TrimSuffix(server, "/") + "/v1/jobs/" + jobID + "/timeline"
	resp, err := http.Get(url)
	if err != nil {
		return obs.Timeline{}, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return obs.Timeline{}, err
	}
	if resp.StatusCode != http.StatusOK {
		var apiErr struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(payload, &apiErr) == nil && apiErr.Error != "" {
			return obs.Timeline{}, fmt.Errorf("%s: %s", url, apiErr.Error)
		}
		return obs.Timeline{}, fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	var tl obs.Timeline
	if err := json.Unmarshal(payload, &tl); err != nil {
		return obs.Timeline{}, fmt.Errorf("decoding timeline: %w", err)
	}
	return tl, nil
}

// renderTimeline prints the waterfall: a summary line, then one line
// per span in tree order.
func renderTimeline(w io.Writer, tl obs.Timeline, width int) {
	fmt.Fprintf(w, "job %s (%s, %s): %d spans, %s\n", tl.ID, tl.Kind, tl.State, tl.Spans, fmtUs(tl.DurationUs))
	if tl.DroppedSpans > 0 {
		fmt.Fprintf(w, "  (%d spans dropped at the trace bound)\n", tl.DroppedSpans)
	}
	total := tl.DurationUs
	if total <= 0 {
		total = 1
	}
	renderNode(w, tl.Root, 0, total, width)
}

func renderNode(w io.Writer, n *obs.TreeNode, depth int, total int64, width int) {
	if n == nil {
		return
	}
	label := n.Name
	if n.Cfg != "" || n.Bench != "" {
		label += " " + strings.TrimSpace(n.Cfg+"/"+n.Bench)
	}
	if n.Detail != "" {
		label += " (" + n.Detail + ")"
	}
	if n.Remote {
		label += " [remote]"
	}
	fmt.Fprintf(w, "%10s %10s  |%s|  %s%s\n",
		"+"+fmtUs(n.StartUs), fmtUs(n.DurationUs),
		bar(n.StartUs, n.DurationUs, total, width),
		strings.Repeat("  ", depth), label)
	for _, c := range n.Children {
		renderNode(w, c, depth+1, total, width)
	}
}

// bar renders a span's extent within the job as width columns; every
// span occupies at least one column so short phases stay visible.
func bar(start, dur, total int64, width int) string {
	b := make([]byte, width)
	for i := range b {
		b[i] = ' '
	}
	s := int(start * int64(width) / total)
	e := int((start + dur) * int64(width) / total)
	if s >= width {
		s = width - 1
	}
	if e <= s {
		e = s + 1
	}
	if e > width {
		e = width
	}
	for i := s; i < e; i++ {
		b[i] = '='
	}
	return string(b)
}

// fmtUs renders a microsecond count compactly (1.234ms, 2.5s).
func fmtUs(us int64) string {
	d := time.Duration(us) * time.Microsecond
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.String()
	}
}
