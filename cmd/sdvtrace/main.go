// Command sdvtrace inspects recorded dynamic-instruction traces (the
// files written by sdvsim -trace-record and consumed by -trace-replay).
//
// Usage:
//
//	sdvtrace trace.sdvt              # header and summary statistics
//	sdvtrace -dump 20 trace.sdvt     # additionally print the first 20 records
//	sdvtrace -dump 20 -start 1000 trace.sdvt
//	sdvtrace -ckpts trace.sdvt       # list the embedded checkpoints
//	sdvtrace -verify trace.sdvt      # decode fully, checksum included; exit status only
//
// Multiple files may be given; each is reported in turn.
//
// The timeline subcommand renders a daemon job's span tree as an
// indented waterfall instead of inspecting a trace file:
//
//	sdvtrace timeline -server http://127.0.0.1:8077 j000001
package main

import (
	"flag"
	"fmt"
	"os"

	"specvec/internal/cliutil"
	"specvec/internal/emu"
	"specvec/internal/trace"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "timeline" {
		os.Exit(timelineCmd(os.Args[2:]))
	}
	var (
		dump   = flag.Int("dump", 0, "print the first N records (after -start)")
		start  = flag.Int("start", 0, "first record to dump")
		ckpts  = flag.Bool("ckpts", false, "list the embedded checkpoints")
		verify = flag.Bool("verify", false, "decode and checksum only; print nothing on success")
	)
	flag.Parse()
	if *dump < 0 {
		cliutil.Fatal("sdvtrace", cliutil.FlagError("dump", *dump, ">= 0"))
	}
	if *start < 0 {
		cliutil.Fatal("sdvtrace", cliutil.FlagError("start", *start, ">= 0"))
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: sdvtrace [-dump N] [-start S] [-ckpts] [-verify] FILE...")
		os.Exit(2)
	}
	status := 0
	for _, path := range flag.Args() {
		if err := inspect(path, *dump, *start, *ckpts, *verify); err != nil {
			fmt.Fprintln(os.Stderr, "sdvtrace:", err)
			status = 1
		}
	}
	os.Exit(status)
}

func inspect(path string, dump, start int, listCkpts, verify bool) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	t, err := trace.ReadFile(path)
	if err != nil {
		return err
	}
	if verify {
		return nil
	}

	state := "halted"
	if t.Truncated() {
		state = "truncated"
	}
	fmt.Printf("%s: trace of %q (format v%d, checksum OK)\n", path, t.Name(), t.FormatVersion())
	fmt.Printf("  records     %d dynamic instructions, %s\n", t.Len(), state)
	fmt.Printf("  text        %d static instructions\n", t.StaticLen())
	if n := t.Len(); n > 0 {
		fmt.Printf("  tuples      %d distinct operand tuples (%.1f%% of records)\n",
			t.TupleCount(), 100*float64(t.TupleCount())/float64(n))
		aos := n * 104 // unsafe.Sizeof(emu.DynInst{}) on 64-bit
		fmt.Printf("  size        %d B on disk, %d B decoded (%.1fx smaller than %d B array-of-structs)\n",
			fi.Size(), t.SizeBytes(), float64(aos)/float64(t.SizeBytes()), aos)
	}
	if cks := t.Checkpoints(); len(cks) > 0 {
		pages := 0
		for i := range cks {
			pages += len(cks[i].Pages)
		}
		fmt.Printf("  checkpoints %d (first at %d, last at %d, %d dirty pages total)\n",
			len(cks), cks[0].Seq, cks[len(cks)-1].Seq, pages)
	}

	if listCkpts {
		if len(t.Checkpoints()) == 0 {
			fmt.Println("  checkpoints none (record with sdvsim -ckpt-every to embed them)")
		}
		for _, c := range t.Checkpoints() {
			fmt.Printf("  ckpt @%-10d pc=%-6d pages=%-4d bhr=%#016x\n",
				c.Seq, c.PC, len(c.Pages), c.BHR)
		}
	}

	if dump > 0 {
		var d emu.DynInst
		for i := start; i < start+dump && i < t.Len(); i++ {
			t.Record(i, &d)
			extra := ""
			switch {
			case d.Inst.IsMem():
				extra = fmt.Sprintf("  addr=%#x", d.EffAddr)
			case d.Inst.IsBranch():
				extra = fmt.Sprintf("  taken=%v", d.Taken)
			}
			fmt.Printf("  %8d  pc=%-6d %-24s%s\n", d.Seq, d.PC, d.Inst.String(), extra)
		}
	}
	return nil
}
