// Command sdvasm assembles, disassembles and functionally executes specvec
// assembly programs (no timing model — use sdvsim for that).
//
// Usage:
//
//	sdvasm -run prog.s              # assemble and execute, dump registers
//	sdvasm -dis prog.s              # assemble and print the listing
//	sdvasm -run prog.s -trace 20    # also print the first N dynamic instructions
package main

import (
	"flag"
	"fmt"
	"os"

	"specvec/internal/asm"
	"specvec/internal/emu"
	"specvec/internal/isa"
)

func main() {
	var (
		runFile = flag.String("run", "", "assemble and functionally execute this file")
		disFile = flag.String("dis", "", "assemble and disassemble this file")
		trace   = flag.Int("trace", 0, "print the first N executed instructions")
		limit   = flag.Uint64("limit", 10_000_000, "instruction budget")
	)
	flag.Parse()

	switch {
	case *disFile != "":
		prog := mustAssemble(*disFile)
		fmt.Print(asm.Disassemble(prog))
	case *runFile != "":
		prog := mustAssemble(*runFile)
		m, err := emu.New(prog)
		if err != nil {
			fatal(err)
		}
		var executed uint64
		for !m.Halted() && executed < *limit {
			d := m.Step()
			executed++
			if int(executed) <= *trace {
				fmt.Printf("%6d  pc=%-5d %s\n", d.Seq, d.PC, d.Inst)
			}
		}
		if !m.Halted() {
			fatal(fmt.Errorf("instruction budget exhausted after %d", executed))
		}
		fmt.Printf("halted after %d instructions\n\nnon-zero integer registers:\n", executed)
		for i := 0; i < 32; i++ {
			if v := m.IntReg(i); v != 0 {
				fmt.Printf("  r%-2d = %d\n", i, v)
			}
		}
		fmt.Println("non-zero FP registers:")
		for i := 0; i < 32; i++ {
			if v := m.FPReg(i); v != 0 {
				fmt.Printf("  f%-2d = %g\n", i, v)
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func mustAssemble(path string) *isa.Program {
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	prog, err := asm.Assemble(path, string(src))
	if err != nil {
		fatal(err)
	}
	return prog
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sdvasm:", err)
	os.Exit(1)
}
