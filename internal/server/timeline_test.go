package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"specvec/internal/obs"
)

// getTimeline fetches a job's timeline, returning the decoded body on
// 200 and the error text otherwise.
func getTimeline(t *testing.T, base, id string) (obs.Timeline, int, string) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/timeline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var tl obs.Timeline
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(payload, &tl); err != nil {
			t.Fatalf("decoding timeline: %v\n%s", err, payload)
		}
	}
	return tl, resp.StatusCode, string(payload)
}

// findSpans collects every node named name in the tree.
func findSpans(n *obs.TreeNode, name string) []*obs.TreeNode {
	if n == nil {
		return nil
	}
	var out []*obs.TreeNode
	if n.Name == name {
		out = append(out, n)
	}
	for _, c := range n.Children {
		out = append(out, findSpans(c, name)...)
	}
	return out
}

// TestJobTimelineAcceptance is the timeline acceptance pin: a computed
// job's span tree covers its wall time — the root duration matches the
// job view's created→finished interval, and the top-level phases
// (queue-wait, cache-lookup, compute) account for the root within 10% —
// and the compute subtree carries the runner's per-run phase spans.
func TestJobTimelineAcceptance(t *testing.T) {
	const scale = 20_000
	_, ts := testServer(t, Options{})

	view, code := postJob(t, ts.URL, JobSpec{Exp: "fig1", Scale: scale}, true)
	if code != http.StatusOK {
		t.Fatalf("submit: HTTP %d", code)
	}
	decodeResult(t, view)

	tl, code, body := getTimeline(t, ts.URL, view.ID)
	if code != http.StatusOK {
		t.Fatalf("timeline: HTTP %d: %s", code, body)
	}
	if tl.ID != view.ID || tl.Kind != KindExperiment || tl.State != string(StateDone) {
		t.Errorf("timeline identity: id=%s kind=%s state=%s", tl.ID, tl.Kind, tl.State)
	}
	if tl.Root == nil || tl.Root.Name != "job" {
		t.Fatalf("timeline root: %+v", tl.Root)
	}
	if tl.Spans != tl.Root.Spans() {
		t.Errorf("span count %d != tree size %d", tl.Spans, tl.Root.Spans())
	}
	if tl.DroppedSpans != 0 {
		t.Errorf("dropped %d spans", tl.DroppedSpans)
	}

	// Root duration ≈ job wall time. The trace opens at submission and
	// closes just after the job resolves, so allow 10% plus a small
	// absolute slop for the publish step itself.
	wall := view.Finished.Sub(view.Created).Microseconds()
	slop := wall/10 + (20 * time.Millisecond).Microseconds()
	if diff := tl.DurationUs - wall; diff < -slop || diff > slop {
		t.Errorf("root duration %dus vs job wall time %dus (slop %dus)", tl.DurationUs, wall, slop)
	}

	// The top-level phases partition the job: queue-wait, cache-lookup
	// and compute are sequential and must sum to the root within 10%.
	var phases int64
	seen := map[string]int{}
	for _, c := range tl.Root.Children {
		phases += c.DurationUs
		seen[c.Name]++
	}
	for _, want := range []string{"queue-wait", "cache-lookup", "compute"} {
		if seen[want] != 1 {
			t.Errorf("root has %d %q children, want 1 (children: %v)", seen[want], want, seen)
		}
	}
	if lo := tl.DurationUs * 9 / 10; phases < lo || phases > tl.DurationUs+slop {
		t.Errorf("phase spans sum to %dus, root is %dus", phases, tl.DurationUs)
	}

	// The compute subtree carries the runner's spans: fig1 simulates the
	// 12-benchmark suite, so 12 per-run spans, each leader recording.
	runs := findSpans(tl.Root, "run")
	if len(runs) != 12 {
		t.Errorf("timeline has %d run spans, want 12", len(runs))
	}
	for _, run := range runs {
		if run.Cfg == "" || run.Bench == "" {
			t.Errorf("run span missing labels: cfg=%q bench=%q", run.Cfg, run.Bench)
		}
	}
	if rec := findSpans(tl.Root, "record"); len(rec) == 0 {
		t.Error("timeline has no record spans")
	}
}

// TestJobTimelineCacheHit pins the cache-hit shape: the second
// submission's timeline has the queue and lookup phases but no compute
// span — the result never touched the runner.
func TestJobTimelineCacheHit(t *testing.T) {
	const scale = 12_000
	_, ts := testServer(t, Options{})

	first, _ := postJob(t, ts.URL, JobSpec{Exp: "fig3", Scale: scale}, true)
	decodeResult(t, first)
	second, _ := postJob(t, ts.URL, JobSpec{Exp: "fig3", Scale: scale}, true)
	if !second.CacheHit {
		t.Fatalf("second submission missed the cache (source %s)", second.Source)
	}

	tl, code, body := getTimeline(t, ts.URL, second.ID)
	if code != http.StatusOK {
		t.Fatalf("timeline: HTTP %d: %s", code, body)
	}
	if n := findSpans(tl.Root, "compute"); len(n) != 0 {
		t.Errorf("cache-hit timeline has %d compute spans", len(n))
	}
	if n := findSpans(tl.Root, "cache-lookup"); len(n) != 1 {
		t.Errorf("cache-hit timeline has %d cache-lookup spans, want 1", len(n))
	}
}

// TestJobTimelineNotFound pins the two 404 shapes: an unknown id, and a
// job that exists but has not resolved yet.
func TestJobTimelineNotFound(t *testing.T) {
	_, ts := testServer(t, Options{Jobs: 1})

	if _, code, body := getTimeline(t, ts.URL, "nope"); code != http.StatusNotFound {
		t.Errorf("unknown id: HTTP %d: %s", code, body)
	} else if want := `unknown job \"nope\"`; !strings.Contains(body, want) {
		t.Errorf("unknown id: body %q missing %q", body, want)
	}

	// With one worker slot, a second submission stays queued behind the
	// first — long enough to observe its no-timeline-yet answer.
	running, code := postJob(t, ts.URL, JobSpec{Exp: "fig1", Scale: 60_000}, false)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	queued, code := postJob(t, ts.URL, JobSpec{Exp: "fig3", Scale: 60_000}, false)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	_, code, body := getTimeline(t, ts.URL, queued.ID)
	if code != http.StatusNotFound || !strings.Contains(body, "no timeline yet") {
		t.Errorf("queued job: HTTP %d: %s", code, body)
	}
	for _, id := range []string{running.ID, queued.ID} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		if _, err := http.DefaultClient.Do(req); err != nil {
			t.Fatal(err)
		}
	}
}
