package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime/debug"
	"sync"

	"specvec/internal/config"
	"specvec/internal/experiments"
	"specvec/internal/stats"
	"specvec/internal/workload"
	"specvec/internal/wspec"
)

// resultSchema versions the Result encoding itself. Bump it when the JSON
// shape of Result/Table/stats.Sim changes incompatibly: the version is
// hashed into every cache key, so persisted entries from an older schema
// miss instead of decoding wrongly.
const resultSchema = 1

// JobSpec names one unit of servable work: either a full experiment (the
// sdvexp figures/tables) or a single (workload, configuration)
// simulation. The zero values of Scale/Seed/Shards resolve to the same
// defaults the batch CLIs use, so a spec submitted with and without
// explicit defaults is the same cache entry.
type JobSpec struct {
	// Kind is "experiment" or "sim". Empty is inferred: Exp set implies
	// "experiment", Workload set implies "sim".
	Kind string `json:"kind"`
	// Exp is the experiment id (see GET /v1/experiments). "all" is not
	// accepted server-side: clients submit one job per experiment so each
	// figure is cached — and invalidated — independently.
	Exp string `json:"exp,omitempty"`
	// Workload and Config select a single simulation (sim kind), by
	// benchmark name and paper-style configuration name.
	Workload string `json:"workload,omitempty"`
	Config   string `json:"config,omitempty"`
	// Scale, Seed, Shards and CheckpointEvery mirror the sdvexp flags of
	// the same names and participate in the cache key: changing any of
	// them is a different result.
	Scale           int   `json:"scale,omitempty"`
	Seed            int64 `json:"seed,omitempty"`
	Shards          int   `json:"shards,omitempty"`
	CheckpointEvery int   `json:"ckptEvery,omitempty"`
	// Specs carries a workload-spec document (internal/wspec, YAML or
	// JSON; Normalize stores the canonical form). Required for the sweep
	// kind; for the sim kind it may define the generated workload being
	// simulated. It participates in the cache key, so a generated
	// workload's cache entry is addressed by its full definition, never
	// just its name.
	Specs string `json:"specs,omitempty"`
}

const (
	KindExperiment = "experiment"
	KindSim        = "sim"
	// KindSweep runs every workload defined by Specs through the
	// headline configurations (experiments.SpecSweep).
	KindSweep = "sweep"
)

// Normalize validates s and resolves every default, returning the
// canonical form used for keying and execution. Two specs that normalize
// equal are the same content-addressed result.
func (s JobSpec) Normalize() (JobSpec, error) {
	switch {
	case s.Kind == "" && s.Exp != "" && s.Workload == "":
		s.Kind = KindExperiment
	case s.Kind == "" && s.Workload != "" && s.Exp == "":
		s.Kind = KindSim
	case s.Kind == "" && s.Specs != "" && s.Exp == "" && s.Workload == "":
		s.Kind = KindSweep
	}
	// Parse and re-canonicalize the workload-spec payload, so two
	// submissions that format the same spec differently share a cache
	// entry and a malformed payload fails at submission, not mid-job.
	var specFile *wspec.File
	if s.Specs != "" {
		f, err := wspec.Parse([]byte(s.Specs))
		if err != nil {
			return s, err
		}
		specFile = f
		s.Specs = f.Canonical()
	}
	switch s.Kind {
	case KindExperiment:
		if s.Workload != "" || s.Config != "" {
			return s, fmt.Errorf("experiment spec must not set workload/config")
		}
		if s.Specs != "" {
			return s, fmt.Errorf("experiment results never depend on workload specs: drop specs")
		}
		if s.Exp == "all" {
			return s, fmt.Errorf("exp %q is client-side sugar: submit one job per experiment id", s.Exp)
		}
		if _, err := experiments.Get(s.Exp); err != nil {
			return s, err
		}
	case KindSim:
		if s.Exp != "" {
			return s, fmt.Errorf("sim spec must not set exp")
		}
		if err := s.resolveSimWorkload(specFile); err != nil {
			return s, err
		}
		if s.Config == "" {
			s.Config = "4w-1pV"
		}
		if _, err := configByName(s.Config); err != nil {
			return s, err
		}
	case KindSweep:
		if s.Exp != "" || s.Workload != "" || s.Config != "" {
			return s, fmt.Errorf("sweep spec must not set exp/workload/config")
		}
		if s.Specs == "" {
			return s, fmt.Errorf("sweep spec needs a specs payload (a wspec workload-spec document)")
		}
	default:
		return s, fmt.Errorf("spec needs exactly one of exp (experiment), workload (sim) or specs (sweep)")
	}
	if s.Scale == 0 {
		s.Scale = experiments.DefaultOptions().Scale
	}
	if s.Scale <= 0 {
		return s, fmt.Errorf("invalid scale %d: want > 0", s.Scale)
	}
	if s.Seed == 0 {
		s.Seed = experiments.DefaultOptions().Seed
	}
	if s.Shards == 0 {
		s.Shards = 1
	}
	if s.Shards < 1 {
		return s, fmt.Errorf("invalid shards %d: want >= 1", s.Shards)
	}
	if s.CheckpointEvery < 0 {
		return s, fmt.Errorf("invalid ckptEvery %d: want >= 0", s.CheckpointEvery)
	}
	// Resolve the sharded-mode auto checkpoint spacing exactly the way the
	// Runner will (experiments.Options.WithDefaults), so an omitted and an
	// explicitly-default ckptEvery are the same cache entry.
	s.CheckpointEvery = experiments.Options{
		Shards: s.Shards, CheckpointEvery: s.CheckpointEvery,
	}.WithDefaults().CheckpointEvery
	return s, nil
}

// resolveSimWorkload checks the sim kind's workload name. A built-in
// always resolves. A generated name must come with its definition: either
// the submission already carries it in Specs, or the daemon loaded it at
// startup (-spec) and its definition is folded into Specs here — either
// way the cache key ends up covering the workload's content, so two
// specs reusing a name can never alias each other's results.
func (s *JobSpec) resolveSimWorkload(specFile *wspec.File) error {
	for _, n := range workload.Names() {
		if n == s.Workload {
			return nil
		}
	}
	if specFile != nil {
		for _, n := range specFile.Names() {
			if n == s.Workload {
				return nil
			}
		}
		return fmt.Errorf("workload %q is not defined by the submitted specs payload", s.Workload)
	}
	if def, ok := wspec.Lookup(s.Workload); ok {
		f := wspec.File{Version: wspec.Version, Workloads: []wspec.Spec{def}}
		s.Specs = f.Canonical()
		return nil
	}
	_, err := workload.Get(s.Workload)
	if err == nil {
		// Registered in-process but not through wspec: no definition to
		// carry, so refuse rather than cache under an unsound key.
		return fmt.Errorf("workload %q has no spec definition to key the result by", s.Workload)
	}
	return err
}

// Key returns the spec's content address: a hex SHA-256 over the
// canonical JSON of the normalized spec, the module version (a daemon
// built from different code is a different result space) and the result
// schema version. Worker counts and other execution-shape knobs are
// deliberately absent — results are byte-identical regardless of
// parallelism, so they would only fragment the cache.
//
//sdv:cachekey
func (s JobSpec) Key() string {
	canon, err := json.Marshal(s)
	if err != nil {
		// JobSpec is plain data; Marshal cannot fail.
		panic(fmt.Sprintf("server: marshalling JobSpec: %v", err))
	}
	h := sha256.New()
	fmt.Fprintf(h, "specvec/%d\x00%s\x00", resultSchema, moduleVersion())
	h.Write(canon)
	return hex.EncodeToString(h.Sum(nil))
}

// Title renders the spec for logs and job listings.
func (s JobSpec) Title() string {
	switch s.Kind {
	case KindSim:
		return fmt.Sprintf("sim %s on %s (scale %d, seed %d, shards %d)",
			s.Workload, s.Config, s.Scale, s.Seed, s.Shards)
	case KindSweep:
		return fmt.Sprintf("sweep over %d spec workloads (scale %d, seed %d, shards %d)",
			s.specWorkloadCount(), s.Scale, s.Seed, s.Shards)
	}
	return fmt.Sprintf("experiment %s (scale %d, seed %d, shards %d)",
		s.Exp, s.Scale, s.Seed, s.Shards)
}

func (s JobSpec) specWorkloadCount() int {
	f, err := wspec.Parse([]byte(s.Specs))
	if err != nil {
		return 0
	}
	return len(f.Workloads)
}

// Result is the servable outcome of a job: rendered-table inputs for
// experiments, raw statistics for single simulations. Encoded with the
// stable stats.Sim JSON and cached by the spec's content address.
type Result struct {
	Spec   JobSpec              `json:"spec"`
	Tables []*experiments.Table `json:"tables,omitempty"`
	Stats  *stats.Sim           `json:"stats,omitempty"`
}

// configByName resolves a paper-style configuration name.
func configByName(name string) (config.Config, error) {
	for _, c := range config.Matrix() {
		if c.Name == name {
			return c, nil
		}
	}
	return config.Config{}, fmt.Errorf("unknown config %q (see GET /v1/configs)", name)
}

var (
	moduleOnce sync.Once
	moduleVer  string
)

// moduleVersion identifies the running build for cache keying: module
// version and sum when built from a module, VCS revision when embedded,
// "devel" otherwise. vcs.modified and vcs.time are included so a dirty
// build does not share cache entries with the clean build of the same
// commit (it would serve that build's persisted results as current).
// Two successive dirty builds still collide — development against a
// persistent -cache-dir should use a scratch directory.
func moduleVersion() string {
	moduleOnce.Do(func() {
		moduleVer = "devel"
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		v := bi.Main.Version + "+" + bi.Main.Sum
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision", "vcs.modified", "vcs.time":
				v += "+" + s.Key + "=" + s.Value
			}
		}
		moduleVer = v
	})
	return moduleVer
}
