// Package server is the simulation service behind cmd/sdvd: a
// long-running daemon that executes simulation and experiment specs on a
// bounded job scheduler, caches results by content address and streams
// progress to clients.
//
// # API surface
//
//	POST   /v1/jobs              submit a JobSpec (?wait=1 blocks until resolved)
//	GET    /v1/jobs              list jobs
//	GET    /v1/jobs/{id}         job status + result when done
//	DELETE /v1/jobs/{id}         cancel a queued or running job
//	GET    /v1/jobs/{id}/events  SSE progress stream (history replay + live)
//	GET    /v1/experiments       experiment ids and titles (sdvexp -list)
//	GET    /v1/workloads         benchmark suite
//	GET    /v1/configs           configuration matrix
//	GET    /healthz              liveness + uptime
//	GET    /metrics              Prometheus-style counters and gauges
//
// # Exactness
//
// A job executes on the same experiments.Runner machinery as the batch
// CLIs, with the same normalized defaults, so a served result is
// byte-identical to a local run of the same spec (the CI server smoke job
// diffs `sdvexp -server` against local `sdvexp`). The cache key is a
// SHA-256 over the canonical spec plus the module version and result
// schema, so nothing built from different code or shapes is ever served
// as equal.
//
// # Caching and deduplication
//
// Results live in an in-memory LRU bounded by entries and bytes, with
// optional disk persistence (Options.CacheDir) that survives restarts.
// Identical in-flight specs are deduplicated (singleflight): concurrent
// submissions of the same work simulate once and share the outcome.
// Recorded benchmark traces are kept in a separate artifact store scoped
// by (scale, seed, checkpoint spacing), so later jobs replay instead of
// re-recording even when their result key differs (e.g. a different
// experiment over the same workloads).
//
// # Cancellation
//
// Every job owns a context. DELETE cancels it; a synchronous (?wait=1)
// submission is additionally tied to its HTTP request, so an abandoned
// request stops burning workers: the context is plumbed through
// experiments.Runner into the cycle loop of every in-flight simulation
// (pipeline.Simulator.SetContext) and into trace recording
// (trace.Recorder.SetContext). Cancelled runs are evicted from the
// runner memo and the cache singleflight, never poisoning later
// requests.
package server
