package server

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"specvec/internal/obs"
)

// Source says where GetOrCompute found a value.
type Source int

const (
	// SourceComputed: this call ran the compute function (a true miss).
	SourceComputed Source = iota
	// SourceMemory: served from the in-memory LRU.
	SourceMemory
	// SourceDisk: served from the persistence directory (and promoted to
	// memory).
	SourceDisk
	// SourceCoalesced: joined an identical in-flight computation
	// (singleflight) and shared its result.
	SourceCoalesced
)

// String names the source for job views and metrics.
func (s Source) String() string {
	switch s {
	case SourceComputed:
		return "computed"
	case SourceMemory:
		return "memory"
	case SourceDisk:
		return "disk"
	case SourceCoalesced:
		return "coalesced"
	default:
		return "unknown"
	}
}

// Hit reports whether the value was served without computing.
func (s Source) Hit() bool { return s != SourceComputed }

// Cache is a content-addressed result cache: an in-memory LRU bounded by
// entry count and total value bytes, singleflight deduplication of
// identical in-flight computations, and optional disk persistence (one
// file per key; the disk tier survives restarts and is not bounded by the
// memory limits). Values are opaque byte slices — callers must not
// mutate a returned slice. Safe for concurrent use.
type Cache struct {
	maxEntries int
	maxBytes   int64
	dir        string // "" = memory only

	mu       sync.Mutex
	entries  map[string]*list.Element // key -> element in order
	order    *list.List               // front = most recently used
	bytes    int64
	inflight map[string]*flight

	// obs counters carrying their final /metrics names; registered by
	// Server.buildRegistry.
	hits, misses, diskHits, coalesced, evictions *obs.Counter
}

type cacheEntry struct {
	key string
	val []byte
}

// flight is one in-progress computation; followers block on done.
type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

// NewCache returns a cache bounded to maxEntries values and maxBytes
// total value size (<= 0 for the defaults: 512 entries, 256 MiB). dir
// enables disk persistence when non-empty; it is created on first write.
func NewCache(maxEntries int, maxBytes int64, dir string) *Cache {
	if maxEntries <= 0 {
		maxEntries = 512
	}
	if maxBytes <= 0 {
		maxBytes = 256 << 20
	}
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		dir:        dir,
		entries:    map[string]*list.Element{},
		order:      list.New(),
		inflight:   map[string]*flight{},
		hits:       obs.NewCounter("sdvd_cache_hits_total"),
		misses:     obs.NewCounter("sdvd_cache_misses_total"),
		diskHits:   obs.NewCounter("sdvd_cache_disk_hits_total"),
		coalesced:  obs.NewCounter("sdvd_cache_coalesced_total"),
		evictions:  obs.NewCounter("sdvd_cache_evictions_total"),
	}
}

// Len returns the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Bytes returns the total in-memory value size.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Counters returns the lifetime hit/miss/disk/coalesced/eviction counts.
func (c *Cache) Counters() (hits, misses, diskHits, coalesced, evictions int64) {
	return c.hits.Value(), c.misses.Value(), c.diskHits.Value(), c.coalesced.Value(), c.evictions.Value()
}

// lookup returns the in-memory value for key, refreshing its recency.
func (c *Cache) lookup(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// put inserts val under key and evicts from the LRU tail until both
// bounds hold. A value larger than maxBytes is not cached at all (it
// would evict everything and still not fit).
func (c *Cache) put(key string, val []byte) {
	if int64(len(val)) > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.bytes += int64(len(val)) - int64(len(el.Value.(*cacheEntry).val))
		el.Value.(*cacheEntry).val = val
		c.order.MoveToFront(el)
	} else {
		c.entries[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
		c.bytes += int64(len(val))
	}
	for c.order.Len() > c.maxEntries || c.bytes > c.maxBytes {
		tail := c.order.Back()
		if tail == nil {
			break
		}
		e := tail.Value.(*cacheEntry)
		c.order.Remove(tail)
		delete(c.entries, e.key)
		c.bytes -= int64(len(e.val))
		c.evictions.Add(1)
	}
}

// diskPath maps a key to its persistence file.
func (c *Cache) diskPath(key string) string {
	return filepath.Join(c.dir, "results", key+".json")
}

// loadDisk reads a persisted value, if the disk tier is enabled.
func (c *Cache) loadDisk(key string) ([]byte, bool) {
	if c.dir == "" {
		return nil, false
	}
	b, err := os.ReadFile(c.diskPath(key))
	if err != nil {
		return nil, false
	}
	return b, true
}

// storeDisk persists a value, best effort (an unwritable directory
// degrades to memory-only caching rather than failing the job).
func (c *Cache) storeDisk(key string, val []byte) {
	if c.dir == "" {
		return
	}
	path := c.diskPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, val, 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, path) // atomic publish: readers never see a torn file
}

// errFlightAbandoned marks a singleflight whose leader was cancelled; a
// follower with a live context retries the computation itself.
var errFlightAbandoned = errors.New("server: in-flight computation abandoned")

// GetOrCompute returns the value for key, from (in order) the in-memory
// LRU, the disk tier, an identical in-flight computation, or by running
// compute. Concurrent calls for the same key run compute once
// (singleflight); followers share the leader's result. A leader whose
// compute fails caches nothing. If the leader is cancelled, waiting
// followers whose own context is still live retry the computation instead
// of inheriting the cancellation.
func (c *Cache) GetOrCompute(ctx context.Context, key string, compute func() ([]byte, error)) ([]byte, Source, error) {
	for {
		if val, ok := c.lookup(key); ok {
			c.hits.Add(1)
			return val, SourceMemory, nil
		}
		if val, ok := c.loadDisk(key); ok {
			c.diskHits.Add(1)
			c.put(key, val)
			return val, SourceDisk, nil
		}

		c.mu.Lock()
		if f, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, SourceCoalesced, ctx.Err()
			}
			if f.err == nil {
				c.coalesced.Add(1)
				return f.val, SourceCoalesced, nil
			}
			if errors.Is(f.err, errFlightAbandoned) && ctx.Err() == nil {
				continue // the leader was cancelled, not the work: retry
			}
			return nil, SourceCoalesced, f.err
		}
		f := &flight{done: make(chan struct{})}
		c.inflight[key] = f
		c.mu.Unlock()

		c.misses.Add(1)
		val, err := compute()
		if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			f.err = fmt.Errorf("%w: %w", errFlightAbandoned, err)
		} else {
			f.val, f.err = val, err
		}
		if f.err == nil {
			c.put(key, val)
			c.storeDisk(key, val)
		}
		c.mu.Lock()
		delete(c.inflight, key)
		c.mu.Unlock()
		close(f.done)
		if f.err != nil && errors.Is(f.err, errFlightAbandoned) {
			return nil, SourceComputed, err
		}
		return val, SourceComputed, f.err
	}
}
