package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"specvec/internal/experiments"
)

func mustNorm(t *testing.T, s JobSpec) JobSpec {
	t.Helper()
	norm, err := s.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	return norm
}

// TestCacheLRUEntryBound fills the cache past its entry bound and checks
// the oldest entries were evicted, the newest retained, and the bound
// never exceeded.
func TestCacheLRUEntryBound(t *testing.T) {
	c := NewCache(4, 1<<20, "")
	for i := 0; i < 10; i++ {
		c.put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	if c.Len() != 4 {
		t.Fatalf("entries = %d, want 4", c.Len())
	}
	for i := 0; i < 6; i++ {
		if _, ok := c.lookup(fmt.Sprintf("k%d", i)); ok {
			t.Errorf("k%d survived past the entry bound", i)
		}
	}
	for i := 6; i < 10; i++ {
		if _, ok := c.lookup(fmt.Sprintf("k%d", i)); !ok {
			t.Errorf("k%d (recent) was evicted", i)
		}
	}
	_, _, _, _, ev := c.Counters()
	if ev != 6 {
		t.Errorf("evictions = %d, want 6", ev)
	}
}

// TestCacheLRUByteBound checks the byte bound evicts independently of the
// entry bound, and that recency (lookup) protects an entry.
func TestCacheLRUByteBound(t *testing.T) {
	c := NewCache(100, 100, "")
	c.put("a", make([]byte, 40))
	c.put("b", make([]byte, 40))
	c.lookup("a") // refresh a: b becomes the LRU victim
	c.put("c", make([]byte, 40))
	if c.Bytes() > 100 {
		t.Fatalf("bytes = %d, want <= 100", c.Bytes())
	}
	if _, ok := c.lookup("b"); ok {
		t.Error("b (least recently used) survived")
	}
	if _, ok := c.lookup("a"); !ok {
		t.Error("a (refreshed) was evicted")
	}
	// A value larger than the whole bound must not wipe the cache.
	c.put("huge", make([]byte, 200))
	if _, ok := c.lookup("huge"); ok {
		t.Error("over-bound value was cached")
	}
	if _, ok := c.lookup("a"); !ok {
		t.Error("over-bound put evicted existing entries")
	}
}

// TestCacheSingleflight hammers one key from many goroutines and checks
// the compute function ran exactly once, with every caller seeing the
// same value. Run under -race in CI.
func TestCacheSingleflight(t *testing.T) {
	c := NewCache(16, 1<<20, "")
	var computes atomic.Int32
	var onceEnter sync.Once
	entered := make(chan struct{})
	release := make(chan struct{})
	const callers = 32
	var wg sync.WaitGroup
	vals := make([][]byte, callers)
	srcs := make([]Source, callers)
	call := func(i int) {
		defer wg.Done()
		v, src, err := c.GetOrCompute(context.Background(), "shared", func() ([]byte, error) {
			computes.Add(1)
			onceEnter.Do(func() { close(entered) })
			<-release // hold the leader so followers pile into the flight
			return []byte("result"), nil
		})
		if err != nil {
			t.Error(err)
		}
		vals[i], srcs[i] = v, src
	}
	wg.Add(1)
	go call(0)
	<-entered // the leader is inside compute; now add the followers
	for i := 1; i < callers; i++ {
		wg.Add(1)
		go call(i)
	}
	time.Sleep(50 * time.Millisecond) // let the followers reach the flight
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1 (singleflight)", n)
	}
	computed, coalesced := 0, 0
	for i := range vals {
		if string(vals[i]) != "result" {
			t.Fatalf("caller %d saw %q", i, vals[i])
		}
		switch srcs[i] {
		case SourceComputed:
			computed++
		case SourceCoalesced:
			coalesced++
		case SourceDisk:
			t.Errorf("caller %d hit disk in a memory-only cache", i)
		}
	}
	if computed != 1 {
		t.Errorf("%d callers computed, want exactly 1", computed)
	}
	if coalesced == 0 {
		t.Error("no caller joined the in-flight computation")
	}
}

// TestCacheFlightAbandoned: a follower with a live context retries when
// the leader is cancelled, instead of inheriting the cancellation.
func TestCacheFlightAbandoned(t *testing.T) {
	c := NewCache(16, 1<<20, "")
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	entered := make(chan struct{})
	var once sync.Once

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := c.GetOrCompute(leaderCtx, "k", func() ([]byte, error) {
			once.Do(func() { close(entered) })
			<-leaderCtx.Done()
			return nil, leaderCtx.Err()
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("leader: want context.Canceled, got %v", err)
		}
	}()

	<-entered
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, _, err := c.GetOrCompute(context.Background(), "k", func() ([]byte, error) {
			return []byte("retried"), nil
		})
		if err != nil || string(v) != "retried" {
			t.Errorf("follower: got %q, %v; want retried", v, err)
		}
	}()
	cancelLeader()
	wg.Wait()
	<-done
}

// TestCacheKeySensitivity: changing any of seed, scale, shards, exp,
// workload or config produces a different content address; normalization
// makes explicit defaults and omitted fields the same address.
func TestCacheKeySensitivity(t *testing.T) {
	base := mustNorm(t, JobSpec{Exp: "fig11", Scale: 50_000, Seed: 1, Shards: 1})
	variants := []JobSpec{
		{Exp: "fig11", Scale: 50_000, Seed: 2, Shards: 1},
		{Exp: "fig11", Scale: 60_000, Seed: 1, Shards: 1},
		{Exp: "fig11", Scale: 50_000, Seed: 1, Shards: 4},
		{Exp: "fig12", Scale: 50_000, Seed: 1, Shards: 1},
		{Exp: "fig11", Scale: 50_000, Seed: 1, Shards: 1, CheckpointEvery: 1000},
		{Workload: "swim", Config: "4w-1pV", Scale: 50_000, Seed: 1},
		{Workload: "swim", Config: "8w-1pV", Scale: 50_000, Seed: 1},
		{Workload: "compress", Config: "4w-1pV", Scale: 50_000, Seed: 1},
	}
	seen := map[string]string{base.Key(): "base"}
	for _, v := range variants {
		norm := mustNorm(t, v)
		key := norm.Key()
		if prev, dup := seen[key]; dup {
			t.Errorf("spec %+v collides with %s", v, prev)
		}
		seen[key] = norm.Title()
	}
	// Defaults normalize to the same address as their explicit form.
	implicit := mustNorm(t, JobSpec{Exp: "fig11", Scale: 50_000})
	if implicit.Key() != base.Key() {
		t.Error("omitted defaults produced a different key than explicit ones")
	}
	// ... including the sharded-mode auto checkpoint spacing.
	autoCkpt := experiments.Options{Shards: 4}.WithDefaults().CheckpointEvery
	if autoCkpt <= 0 {
		t.Fatalf("test premise broken: auto ckpt spacing %d", autoCkpt)
	}
	shardedImplicit := mustNorm(t, JobSpec{Exp: "fig11", Scale: 50_000, Shards: 4})
	shardedExplicit := mustNorm(t, JobSpec{Exp: "fig11", Scale: 50_000, Shards: 4, CheckpointEvery: autoCkpt})
	if shardedImplicit.Key() != shardedExplicit.Key() {
		t.Error("omitted auto ckptEvery produced a different key than its explicit value")
	}
	if base.Key() != base.Key() {
		t.Error("key not deterministic")
	}
}

// TestCacheDiskPersistence: a value survives into a fresh Cache over the
// same directory, and is promoted back into memory on first read.
func TestCacheDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	a := NewCache(8, 1<<20, dir)
	v, src, err := a.GetOrCompute(context.Background(), "k", func() ([]byte, error) {
		return []byte("persisted"), nil
	})
	if err != nil || src != SourceComputed || string(v) != "persisted" {
		t.Fatalf("compute: %q %v %v", v, src, err)
	}

	b := NewCache(8, 1<<20, dir)
	v, src, err = b.GetOrCompute(context.Background(), "k", func() ([]byte, error) {
		t.Fatal("disk hit must not recompute")
		return nil, nil
	})
	if err != nil || src != SourceDisk || string(v) != "persisted" {
		t.Fatalf("disk read: %q %v %v", v, src, err)
	}
	if v, src, _ = b.GetOrCompute(context.Background(), "k", nil); src != SourceMemory || string(v) != "persisted" {
		t.Fatalf("promotion: %q %v", v, src)
	}
}

// TestCacheComputeErrorNotCached: a failed computation caches nothing and
// the next call retries.
func TestCacheComputeErrorNotCached(t *testing.T) {
	c := NewCache(8, 1<<20, "")
	boom := errors.New("boom")
	if _, _, err := c.GetOrCompute(context.Background(), "k", func() ([]byte, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	v, src, err := c.GetOrCompute(context.Background(), "k", func() ([]byte, error) {
		return []byte("ok"), nil
	})
	if err != nil || src != SourceComputed || string(v) != "ok" {
		t.Fatalf("retry after error: %q %v %v", v, src, err)
	}
}
