package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"specvec/internal/config"
	"specvec/internal/experiments"
)

// testServer boots a Server over httptest with small bounds.
func testServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.SimWorkers == 0 {
		opts.SimWorkers = 2
	}
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJob(t *testing.T, base string, spec JobSpec, wait bool) (JobView, int) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	url := base + "/v1/jobs"
	if wait {
		url += "?wait=1"
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var view JobView
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(payload, &view); err != nil {
			t.Fatalf("decoding job view: %v\n%s", err, payload)
		}
	}
	return view, resp.StatusCode
}

func decodeResult(t *testing.T, view JobView) Result {
	t.Helper()
	if view.State != StateDone {
		t.Fatalf("job %s state %s (%s)", view.ID, view.State, view.Error)
	}
	var res Result
	if err := json.Unmarshal(view.Result, &res); err != nil {
		t.Fatal(err)
	}
	return res
}

// TestServedExperimentByteIdentical is the acceptance pin: tables served
// by the daemon, rendered client-side, are byte-identical to a local
// runner at the same scale/seed — and a repeated submission is served
// from the cache without re-simulating.
func TestServedExperimentByteIdentical(t *testing.T) {
	const scale = 20_000
	s, ts := testServer(t, Options{})

	view, code := postJob(t, ts.URL, JobSpec{Exp: "fig1", Scale: scale}, true)
	if code != http.StatusOK {
		t.Fatalf("submit: HTTP %d", code)
	}
	res := decodeResult(t, view)
	if view.CacheHit {
		t.Error("first submission claims a cache hit")
	}

	local, err := experiments.Get("fig1")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := local.Run(experiments.NewRunner(experiments.Options{Scale: scale, Seed: 1, Workers: 2}))
	if err != nil {
		t.Fatal(err)
	}
	want := renderAll(tables)
	got := renderAll(res.Tables)
	if want != got {
		t.Fatalf("served tables diverge from local run:\n--- local ---\n%s\n--- served ---\n%s", want, got)
	}

	// Resubmit: same spec, different job — served from cache.
	again, _ := postJob(t, ts.URL, JobSpec{Exp: "fig1", Scale: scale}, true)
	res2 := decodeResult(t, again)
	if !again.CacheHit || again.Source != "memory" {
		t.Errorf("resubmission not served from cache: hit=%v source=%s", again.CacheHit, again.Source)
	}
	if renderAll(res2.Tables) != want {
		t.Error("cached tables diverge")
	}
	if got := s.sched.sims.Value(); got != 12 {
		// fig1 runs the 12-benchmark suite once; the resubmission must not
		// have simulated anything.
		t.Errorf("daemon executed %d simulations, want 12", got)
	}
}

func renderAll(tables []*experiments.Table) string {
	var sb strings.Builder
	for _, t := range tables {
		sb.WriteString(t.Render())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestServedSimMatchesLocal pins the sim kind against a direct runner.
func TestServedSimMatchesLocal(t *testing.T) {
	_, ts := testServer(t, Options{})
	view, _ := postJob(t, ts.URL, JobSpec{Workload: "compress", Config: "4w-1pV", Scale: 10_000}, true)
	res := decodeResult(t, view)

	r := experiments.NewRunner(experiments.Options{Scale: 10_000, Seed: 1, Workers: 1})
	want, err := r.Run(config.MustNamed(4, 1, config.ModeV), "compress")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats == nil || res.Stats.String() != want.String() {
		t.Fatalf("served stats diverge:\n%v\nvs\n%s", res.Stats, want)
	}
}

// TestJobEventsSSE submits asynchronously and reads the SSE stream to the
// terminal state, checking ordering and progress presence.
func TestJobEventsSSE(t *testing.T) {
	_, ts := testServer(t, Options{})
	view, code := postJob(t, ts.URL, JobSpec{Exp: "fig3", Scale: 20_000}, false)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}
	var states []JobState
	progress := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad event %q: %v", line, err)
		}
		switch ev.Kind {
		case "state":
			states = append(states, ev.State)
		case "progress":
			progress++
		}
		if ev.Kind == "state" && ev.State.Terminal() {
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	wantStates := []JobState{StateQueued, StateRunning, StateDone}
	if fmt.Sprint(states) != fmt.Sprint(wantStates) {
		t.Errorf("states %v, want %v", states, wantStates)
	}
	if progress == 0 {
		t.Error("no progress events streamed")
	}
}

// readEvents streams /v1/jobs/{id}/events until the terminal state
// event, returning every event in arrival order. firstShardDone, if
// non-nil, is closed when the first shard-done event arrives.
func readEvents(t *testing.T, base, id string, firstShardDone chan<- struct{}) []Event {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var evs []Event
	signalled := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Errorf("bad event %q: %v", line, err)
			return evs
		}
		evs = append(evs, ev)
		if firstShardDone != nil && !signalled && ev.Phase == "shard-done" {
			signalled = true
			close(firstShardDone)
		}
		if ev.Kind == "state" && ev.State.Terminal() {
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Error(err)
	}
	if firstShardDone != nil && !signalled {
		close(firstShardDone)
	}
	return evs
}

// checkEventStream asserts the per-subscriber SSE invariants: sequence
// numbers strictly increasing and gap-free across the history→live
// handoff, run-started preceding every shard-done and run-done of the
// same (cfg,bench) run, and the stream ending in exactly one terminal
// state event.
func checkEventStream(t *testing.T, who string, evs []Event, wantShards int) {
	t.Helper()
	if len(evs) == 0 {
		t.Errorf("%s: empty event stream", who)
		return
	}
	if evs[0].Seq != 0 {
		t.Errorf("%s: history replay starts at seq %d, want 0", who, evs[0].Seq)
	}
	started := map[string]bool{}
	shardsDone := map[string]int{}
	for i, ev := range evs {
		if i > 0 && ev.Seq != evs[i-1].Seq+1 {
			t.Errorf("%s: seq %d follows %d (gap or duplicate at the history→live handoff)", who, ev.Seq, evs[i-1].Seq)
		}
		run := ev.Cfg + "/" + ev.Bench
		switch ev.Phase {
		case "run-started":
			if started[run] {
				t.Errorf("%s: duplicate run-started for %s", who, run)
			}
			started[run] = true
		case "shard-done":
			if !started[run] {
				t.Errorf("%s: shard-done %d/%d for %s before its run-started", who, ev.Shard, ev.Shards, run)
			}
			shardsDone[run]++
		case "run-done":
			if !ev.Cached && !started[run] {
				t.Errorf("%s: run-done for %s before its run-started", who, run)
			}
		}
		if terminal := ev.Kind == "state" && ev.State.Terminal(); terminal != (i == len(evs)-1) {
			t.Errorf("%s: terminal state event at %d/%d", who, i, len(evs)-1)
		}
	}
	for run, n := range shardsDone {
		if n != wantShards {
			t.Errorf("%s: %s completed %d shards, want %d", who, run, n, wantShards)
		}
	}
	if len(shardsDone) != len(started) {
		t.Errorf("%s: %d runs started but %d reported shards", who, len(started), len(shardsDone))
	}
}

// TestSSEOrderingConcurrentPublishers pins event ordering and history
// replay under concurrent publishers: a sharded fig1 run fans 12 runs × 2
// shards across the worker pool, so run-started/shard-done/run-done
// events are published from many goroutines at once. An immediate
// subscriber watches live; a late subscriber connects only after the
// first shard-done has already been published and must still see every
// event from seq 0 — RunStarted before ShardDone for every shard — via
// history replay. Run under -race, this also hammers publish/subscribe.
func TestSSEOrderingConcurrentPublishers(t *testing.T) {
	_, ts := testServer(t, Options{SimWorkers: 4})
	view, code := postJob(t, ts.URL, JobSpec{Exp: "fig1", Scale: 20_000, Shards: 2}, false)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}

	firstShardDone := make(chan struct{})
	earlyDone := make(chan []Event, 1)
	go func() {
		earlyDone <- readEvents(t, ts.URL, view.ID, firstShardDone)
	}()

	// The late subscriber joins mid-job, after shard completions are
	// already flowing from concurrent pool goroutines.
	<-firstShardDone
	late := readEvents(t, ts.URL, view.ID, nil)
	early := <-earlyDone

	checkEventStream(t, "early", early, 2)
	checkEventStream(t, "late", late, 2)

	// Both subscribers saw the same total history.
	if len(early) != len(late) {
		t.Errorf("early saw %d events, late saw %d", len(early), len(late))
	}
}

// TestJobCancellation cancels a large running job over the API and checks
// it resolves cancelled well before it could have finished.
func TestJobCancellation(t *testing.T) {
	_, ts := testServer(t, Options{SimWorkers: 1})
	view, _ := postJob(t, ts.URL, JobSpec{Exp: "fig11", Scale: 2_000_000}, false)

	// Wait for it to start running, then cancel.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var cur JobView
		resp, err := http.Get(ts.URL + "/v1/jobs/" + view.ID)
		if err != nil {
			t.Fatal(err)
		}
		json.NewDecoder(resp.Body).Decode(&cur)
		resp.Body.Close()
		if cur.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started (state %s)", cur.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+view.ID, nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	for {
		var cur JobView
		resp, err := http.Get(ts.URL + "/v1/jobs/" + view.ID)
		if err != nil {
			t.Fatal(err)
		}
		json.NewDecoder(resp.Body).Decode(&cur)
		resp.Body.Close()
		if cur.State.Terminal() {
			if cur.State != StateCancelled {
				t.Fatalf("state %s, want cancelled", cur.State)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("cancelled job never resolved")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestQueueBound fills the single worker and the one-deep queue, then
// expects 503 on the next submission.
func TestQueueBound(t *testing.T) {
	_, ts := testServer(t, Options{Jobs: 1, QueueDepth: 1, SimWorkers: 1})
	// Two slow jobs: one occupies the worker, one the queue.
	a, _ := postJob(t, ts.URL, JobSpec{Exp: "fig11", Scale: 1_000_000}, false)
	b, _ := postJob(t, ts.URL, JobSpec{Exp: "fig12", Scale: 1_000_000}, false)
	_, code := postJob(t, ts.URL, JobSpec{Exp: "fig13", Scale: 1_000_000}, false)
	if code != http.StatusServiceUnavailable {
		t.Errorf("third submission got HTTP %d, want 503", code)
	}
	for _, id := range []string{a.ID, b.ID} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		http.DefaultClient.Do(req)
	}
}

// TestSpecValidationHTTP maps invalid specs to 400 with a one-line error.
func TestSpecValidationHTTP(t *testing.T) {
	_, ts := testServer(t, Options{})
	for _, body := range []string{
		`{"exp":"nosuch"}`,
		`{"exp":"all"}`,
		`{"exp":"fig1","scale":-1}`,
		`{"exp":"fig1","shards":-2}`,
		`{"workload":"nosuch"}`,
		`{"workload":"swim","config":"9w-9pX"}`,
		`{"exp":"fig1","workload":"swim"}`,
		`{}`,
		`{"unknown":"field"}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %s got HTTP %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestMetricsAndHealth checks the observability endpoints carry the
// job/cache counters the acceptance criteria rely on.
func TestMetricsAndHealth(t *testing.T) {
	_, ts := testServer(t, Options{})
	if _, code := postJob(t, ts.URL, JobSpec{Exp: "fig3", Scale: 10_000}, true); code != http.StatusOK {
		t.Fatalf("submit: HTTP %d", code)
	}
	postJob(t, ts.URL, JobSpec{Exp: "fig3", Scale: 10_000}, true) // warm hit

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"sdvd_jobs_submitted_total 2",
		"sdvd_jobs_completed_total 2",
		"sdvd_cache_hits_total 1",
		"sdvd_cache_misses_total 1",
		"sdvd_sims_total",
		"sdvd_gang_batches_total",
		"sdvd_gang_runs_total",
		"sdvd_gang_decoded_blocks_total",
		"sdvd_gang_decode_saved_total",
		"sdvd_hotpath_uop_recycles_total",
		"sdvd_go_goroutines",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" {
		t.Errorf("healthz: %v", health)
	}
}

// TestMetricsGangCounters submits a sweep-shaped experiment (headline
// prefetches four configurations per benchmark) and checks the gang
// gauges moved: the daemon ganged the sweep's replays over shared
// decoded walks and saved decode work doing so.
func TestMetricsGangCounters(t *testing.T) {
	_, ts := testServer(t, Options{})
	if _, code := postJob(t, ts.URL, JobSpec{Exp: "headline", Scale: 10_000}, true); code != http.StatusOK {
		t.Fatalf("submit: HTTP %d", code)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	vals := map[string]int64{}
	for _, line := range strings.Split(string(body), "\n") {
		var name string
		var v int64
		if _, err := fmt.Sscanf(line, "%s %d", &name, &v); err == nil {
			vals[name] = v
		}
	}
	if vals["sdvd_gang_batches_total"] < 1 {
		t.Errorf("sdvd_gang_batches_total = %d, want >= 1", vals["sdvd_gang_batches_total"])
	}
	if vals["sdvd_gang_runs_total"] < 2*vals["sdvd_gang_batches_total"] {
		t.Errorf("sdvd_gang_runs_total = %d for %d batches, want >= 2 per batch",
			vals["sdvd_gang_runs_total"], vals["sdvd_gang_batches_total"])
	}
	if vals["sdvd_gang_decode_saved_total"] < 1 {
		t.Errorf("sdvd_gang_decode_saved_total = %d, want >= 1 (no decode work shared)",
			vals["sdvd_gang_decode_saved_total"])
	}
}

// TestTraceArtifactsCrossJobs: two different experiments over the same
// workloads share recordings through the artifact store — the second job
// loads instead of re-recording.
func TestTraceArtifactsCrossJobs(t *testing.T) {
	s, ts := testServer(t, Options{})
	if _, code := postJob(t, ts.URL, JobSpec{Exp: "fig1", Scale: 10_000}, true); code != http.StatusOK {
		t.Fatalf("fig1: HTTP %d", code)
	}
	recordedAfterFirst := s.sched.recorded.Value()
	if recordedAfterFirst == 0 {
		t.Fatal("first job recorded nothing")
	}
	if _, code := postJob(t, ts.URL, JobSpec{Exp: "fig3", Scale: 10_000}, true); code != http.StatusOK {
		t.Fatalf("fig3: HTTP %d", code)
	}
	if s.sched.recorded.Value() != recordedAfterFirst {
		t.Errorf("second job re-recorded traces: %d -> %d", recordedAfterFirst, s.sched.recorded.Value())
	}
	if s.sched.traceLoads.Value() == 0 {
		t.Error("second job loaded no stored traces")
	}
}

// TestJobHistoryBound: terminal jobs beyond the retention bound are
// evicted (404), the newest retained, and results stay reachable through
// the cache by resubmitting.
func TestJobHistoryBound(t *testing.T) {
	_, ts := testServer(t, Options{JobHistory: 2})
	var ids []string
	for _, seed := range []int64{1, 2, 3, 4} {
		view, code := postJob(t, ts.URL, JobSpec{Workload: "compress", Config: "4w-1pV", Scale: 3_000, Seed: seed}, true)
		if code != http.StatusOK {
			t.Fatalf("seed %d: HTTP %d", seed, code)
		}
		ids = append(ids, view.ID)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var listed []JobView
	json.NewDecoder(resp.Body).Decode(&listed)
	resp.Body.Close()
	if len(listed) != 2 {
		t.Fatalf("%d jobs retained, want 2", len(listed))
	}
	for _, id := range ids[:2] {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("evicted job %s answered HTTP %d, want 404", id, resp.StatusCode)
		}
	}
	// The evicted jobs' results are still one resubmission away.
	view, _ := postJob(t, ts.URL, JobSpec{Workload: "compress", Config: "4w-1pV", Scale: 3_000, Seed: 1}, true)
	if !view.CacheHit {
		t.Error("evicted job's result was not served from cache on resubmission")
	}
}

// TestCloseResolvesQueuedJobs: shutting the scheduler down must resolve
// every queued job (a ?wait=1 client must never hang on a job nobody
// will run).
func TestCloseResolvesQueuedJobs(t *testing.T) {
	s := New(Options{Jobs: 1, QueueDepth: 4, SimWorkers: 1})
	// One slow job occupies the worker; the rest sit in the queue.
	var jobs []*Job
	for i, spec := range []JobSpec{
		{Exp: "fig11", Scale: 2_000_000},
		{Exp: "fig12", Scale: 2_000_000},
		{Exp: "fig13", Scale: 2_000_000},
	} {
		norm := mustNorm(t, spec)
		job, err := s.sched.Submit(norm, nil)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs = append(jobs, job)
	}
	done := make(chan struct{})
	go func() {
		s.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close did not return")
	}
	for _, job := range jobs {
		select {
		case <-job.Done():
			if st := job.State(); st != StateCancelled {
				t.Errorf("job %s resolved %s, want cancelled", job.ID, st)
			}
		default:
			t.Errorf("job %s (%s) left unresolved after Close", job.ID, job.State())
		}
	}
	if _, err := s.sched.Submit(mustNorm(t, JobSpec{Exp: "fig1"}), nil); !errors.Is(err, ErrShutdown) {
		t.Errorf("post-Close submit: %v, want ErrShutdown", err)
	}
}

// TestExperimentListing mirrors sdvexp -list.
func TestExperimentListing(t *testing.T) {
	_, ts := testServer(t, Options{})
	resp, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got []struct{ ID, Title string }
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	all := experiments.All()
	if len(got) != len(all) {
		t.Fatalf("%d experiments listed, want %d", len(got), len(all))
	}
	for i := range all {
		if got[i].ID != all[i].ID {
			t.Errorf("experiment %d: %s, want %s", i, got[i].ID, all[i].ID)
		}
	}
}

// TestResultJSONRoundTrip pins the exactness chain at the encoding level:
// a Result with tables survives JSON and renders identically.
func TestResultJSONRoundTrip(t *testing.T) {
	local, err := experiments.Get("fig13")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := local.Run(experiments.NewRunner(experiments.Options{Scale: 10_000, Seed: 1, Workers: 2}))
	if err != nil {
		t.Fatal(err)
	}
	res := Result{Tables: tables}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if renderAll(back.Tables) != renderAll(tables) {
		t.Fatal("tables do not survive a JSON round trip byte-identically")
	}
}
