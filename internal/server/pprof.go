package server

import (
	"net/http"
	"net/http/pprof"
)

// PprofHandler serves the standard net/http/pprof endpoints under
// /debug/pprof/. Profiling is opt-in — the daemon binds it on its own
// listener (-pprof addr) rather than exposing it on the API port, so a
// production API surface never carries the profiler by accident.
func PprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
