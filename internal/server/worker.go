package server

import (
	"bytes"
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"specvec/internal/experiments"
	"specvec/internal/obs"
	"specvec/internal/trace"
)

// Cluster mode, worker half: a worker process joins a coordinator with
// -join, re-registers on a heartbeat so the coordinator's liveness
// window stays open, and serves POST /v1/shards — one replay interval
// per request. Recordings arrive by content address: the worker keeps a
// small LRU of decoded traces and pulls GET /v1/artifacts/{id} from the
// coordinator on miss, verifying the bytes against the address they
// were requested by before trusting them.

const (
	// defaultWorkerTraces bounds the worker's decoded-trace LRU.
	defaultWorkerTraces = 8
	// artifactPullAttempts is how many times a worker tries one artifact
	// pull before failing the shard (the coordinator then requeues or
	// runs it locally).
	artifactPullAttempts = 3
)

// workerAgent is the worker-side state: the coordinator to heartbeat,
// the trace cache, and the execution bound.
type workerAgent struct {
	joinURL   string // coordinator base URL
	cores     int
	heartbeat time.Duration
	logf      func(format string, args ...any)
	client    *http.Client
	clock     obs.Clock // times shard execution and artifact pulls

	sem chan struct{} // bounds concurrent shard executions

	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	pending map[string]*tracePull

	selfURL atomic.Value // string; set when the heartbeat loop starts

	executed *obs.Counter // shard tasks completed
	fetches  *obs.Counter // artifact pulls performed (misses)
	retries  *obs.Counter // pull attempts beyond the first
}

// tracePull coalesces concurrent fetches of one artifact. dur is the
// leader's pull time, reported by every coalesced shard as its own
// artifact cost (set before done closes).
type tracePull struct {
	done chan struct{}
	tr   *trace.Trace
	dur  time.Duration
	err  error
}

type workerTraceEntry struct {
	id string
	tr *trace.Trace
}

func newWorkerAgent(joinURL string, cores int, heartbeat time.Duration, logf func(string, ...any)) *workerAgent {
	if cores <= 0 {
		cores = 1
	}
	if heartbeat <= 0 {
		heartbeat = defaultHeartbeat
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &workerAgent{
		joinURL:   joinURL,
		cores:     cores,
		heartbeat: heartbeat,
		logf:      logf,
		client:    &http.Client{Timeout: 30 * time.Second},
		clock:     obs.RealClock(),
		sem:       make(chan struct{}, cores),
		entries:   map[string]*list.Element{},
		order:     list.New(),
		pending:   map[string]*tracePull{},
		executed:  obs.NewCounter("sdvd_worker_shards_executed_total"),
		fetches:   obs.NewCounter("sdvd_worker_artifact_fetches_total"),
		retries:   obs.NewCounter("sdvd_worker_artifact_fetch_retries_total"),
	}
}

// run joins the coordinator immediately and then heartbeats — each
// heartbeat is a re-join, which also revives this worker if a transient
// dispatch failure got it marked dead — until ctx is cancelled.
func (a *workerAgent) run(ctx context.Context, selfURL string) {
	a.selfURL.Store(selfURL)
	if err := a.join(ctx); err != nil {
		a.logf("worker: joining %s failed (will retry): %v", a.joinURL, err)
	} else {
		a.logf("worker: joined %s as %s (%d cores)", a.joinURL, selfURL, a.cores)
	}
	t := time.NewTicker(a.heartbeat)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := a.join(ctx); err != nil {
				a.logf("worker: heartbeat to %s failed: %v", a.joinURL, err)
			}
		}
	}
}

// join POSTs this worker's advertisement to the coordinator.
func (a *workerAgent) join(ctx context.Context) error {
	self, _ := a.selfURL.Load().(string)
	body, _ := json.Marshal(joinRequest{URL: self, Cores: a.cores})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, a.joinURL+"/v1/cluster/join", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, apiErrorText(payload))
	}
	return nil
}

// joinRequest is the registration body: where to dispatch shards and
// how many to dispatch at once.
type joinRequest struct {
	URL   string `json:"url"`
	Cores int    `json:"cores"`
}

// execute runs one shard task: resolve the recording (cache or pull),
// replay the interval, return the statistics plus how the time was
// spent (replay, artifact pull) for the coordinator to graft into the
// job timeline. Bounded by the worker's simulation pool.
func (a *workerAgent) execute(ctx context.Context, task experiments.ShardTask) (payload []byte, exec, pull time.Duration, err error) {
	select {
	case a.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, 0, 0, ctx.Err()
	}
	defer func() { <-a.sem }()
	tr, pull, err := a.traceFor(ctx, task.Trace)
	if err != nil {
		return nil, 0, pull, err
	}
	start := a.clock.Now()
	st, err := experiments.ExecuteShardTask(ctx, task, tr)
	exec = a.clock.Now().Sub(start)
	if err != nil {
		return nil, exec, pull, err
	}
	a.executed.Add(1)
	payload, err = json.Marshal(st)
	return payload, exec, pull, err
}

// traceFor resolves a recording by content address: LRU hit, or a
// coalesced pull from the coordinator's artifact store with retry,
// backoff and content verification. dur is the pull cost this shard
// paid: zero on a cache hit, the fetch time otherwise (coalesced
// followers report the leader's).
func (a *workerAgent) traceFor(ctx context.Context, id string) (tr *trace.Trace, dur time.Duration, err error) {
	if id == "" {
		return nil, 0, fmt.Errorf("shard task has no trace address")
	}
	a.mu.Lock()
	if el, ok := a.entries[id]; ok {
		a.order.MoveToFront(el)
		tr := el.Value.(*workerTraceEntry).tr
		a.mu.Unlock()
		return tr, 0, nil
	}
	if p, ok := a.pending[id]; ok {
		a.mu.Unlock()
		select {
		case <-p.done:
			return p.tr, p.dur, p.err
		case <-ctx.Done():
			return nil, 0, ctx.Err()
		}
	}
	p := &tracePull{done: make(chan struct{})}
	a.pending[id] = p
	a.mu.Unlock()

	start := a.clock.Now()
	p.tr, p.err = a.pull(ctx, id)
	p.dur = a.clock.Now().Sub(start)
	a.mu.Lock()
	delete(a.pending, id)
	if p.err == nil {
		a.entries[id] = a.order.PushFront(&workerTraceEntry{id: id, tr: p.tr})
		for a.order.Len() > defaultWorkerTraces {
			tail := a.order.Back()
			a.order.Remove(tail)
			delete(a.entries, tail.Value.(*workerTraceEntry).id)
		}
	}
	a.mu.Unlock()
	close(p.done)
	return p.tr, p.dur, p.err
}

// pull fetches one artifact with bounded retry and exponential backoff,
// verifying the bytes against the content address before decoding.
func (a *workerAgent) pull(ctx context.Context, id string) (*trace.Trace, error) {
	a.fetches.Add(1)
	backoff := 50 * time.Millisecond
	var lastErr error
	for attempt := 0; attempt < artifactPullAttempts; attempt++ {
		if attempt > 0 {
			a.retries.Add(1)
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			backoff *= 2
		}
		enc, err := a.fetch(ctx, id)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			continue
		}
		if err := trace.VerifyContentID(enc, id); err != nil {
			lastErr = err
			continue // corrupted transfer; retry
		}
		tr, err := trace.DecodeBytes(enc)
		if err != nil {
			lastErr = err
			continue
		}
		return tr, nil
	}
	return nil, fmt.Errorf("pulling artifact %.12s… after %d attempts: %w", id, artifactPullAttempts, lastErr)
}

// fetch performs one GET of an artifact from the coordinator.
func (a *workerAgent) fetch(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, a.joinURL+"/v1/artifacts/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := a.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, apiErrorText(payload))
	}
	return payload, nil
}
