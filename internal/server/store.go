package server

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"specvec/internal/experiments"
	"specvec/internal/obs"
	"specvec/internal/trace"
)

// traceCache holds decoded benchmark recordings across jobs: an LRU
// bounded by entry count (recordings are the big artifacts — SizeBytes of
// a full-scale trace runs to megabytes) with optional disk persistence of
// the encoded form. Entries are keyed by benchmark plus the effective
// (scale, seed, checkpoint spacing) scope, so a runner never sees a
// recording made under different options (the experiments.TraceStore
// contract). One traceCache serves every scope; scopedTraces is the
// per-job view handed to a Runner.
type traceCache struct {
	maxEntries int
	dir        string // "" = memory only

	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recently used

	loads, diskLoads, stores, evictions *obs.Counter
}

type traceEntry struct {
	key string
	tr  *trace.Trace
}

func newTraceCache(maxEntries int, dir string) *traceCache {
	if maxEntries <= 0 {
		maxEntries = 16
	}
	return &traceCache{
		maxEntries: maxEntries,
		dir:        dir,
		entries:    map[string]*list.Element{},
		order:      list.New(),
		loads:      obs.NewCounter("sdvd_trace_store_loads_total"),
		diskLoads:  obs.NewCounter("sdvd_trace_store_disk_loads_total"),
		stores:     obs.NewCounter("sdvd_trace_store_stores_total"),
		evictions:  obs.NewCounter("sdvd_trace_store_evictions_total"),
	}
}

func (tc *traceCache) lookup(key string) (*trace.Trace, bool) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	el, ok := tc.entries[key]
	if !ok {
		return nil, false
	}
	tc.order.MoveToFront(el)
	return el.Value.(*traceEntry).tr, true
}

func (tc *traceCache) put(key string, tr *trace.Trace) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if el, ok := tc.entries[key]; ok {
		el.Value.(*traceEntry).tr = tr
		tc.order.MoveToFront(el)
		return
	}
	tc.entries[key] = tc.order.PushFront(&traceEntry{key: key, tr: tr})
	for tc.order.Len() > tc.maxEntries {
		tail := tc.order.Back()
		e := tail.Value.(*traceEntry)
		tc.order.Remove(tail)
		delete(tc.entries, e.key)
		tc.evictions.Add(1)
	}
}

func (tc *traceCache) diskPath(key string) string {
	return filepath.Join(tc.dir, "traces", key+".sdvt")
}

// scope renders the option triple a recording is only valid under.
//
//sdv:cachekey
func traceScope(o experiments.Options) string {
	return fmt.Sprintf("s%d-d%d-c%d", o.Scale, o.Seed, o.CheckpointEvery)
}

// scopedTraces is the experiments.TraceStore view of a traceCache for one
// effective option set.
type scopedTraces struct {
	tc    *traceCache
	scope string
}

// forOptions returns the store view a Runner built with o may use. o must
// already have its defaults resolved (Options.WithDefaults) so the scope
// reflects the effective checkpoint spacing.
func (tc *traceCache) forOptions(o experiments.Options) experiments.TraceStore {
	return scopedTraces{tc: tc, scope: traceScope(o)}
}

// forOptionsWith returns the store view for o with an extra scope
// component. Jobs carrying a workload-spec payload pass a hash of its
// canonical form, so two specs that reuse a workload name with
// different definitions can never share a recorded trace.
func (tc *traceCache) forOptionsWith(o experiments.Options, extra string) experiments.TraceStore {
	scope := traceScope(o)
	if extra != "" {
		scope += "-" + extra
	}
	return scopedTraces{tc: tc, scope: scope}
}

// Load implements experiments.TraceStore: memory first, then the disk
// tier (promoting a disk hit to memory).
func (s scopedTraces) Load(bench string) (*trace.Trace, bool) {
	key := bench + "-" + s.scope
	if tr, ok := s.tc.lookup(key); ok {
		s.tc.loads.Add(1)
		return tr, true
	}
	if s.tc.dir == "" {
		return nil, false
	}
	tr, err := trace.ReadFile(s.tc.diskPath(key))
	if err != nil {
		return nil, false
	}
	s.tc.diskLoads.Add(1)
	s.tc.put(key, tr)
	return tr, true
}

// Store implements experiments.TraceStore, best effort on the disk tier.
func (s scopedTraces) Store(bench string, tr *trace.Trace) {
	key := bench + "-" + s.scope
	s.tc.put(key, tr)
	s.tc.stores.Add(1)
	if s.tc.dir == "" {
		return
	}
	path := s.tc.diskPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	tmp := path + ".tmp"
	if err := tr.WriteFile(tmp); err != nil {
		_ = os.Remove(tmp)
		return
	}
	_ = os.Rename(tmp, path)
}
