package server

import (
	"context"
	"encoding/json"
	"sync"
	"time"

	"specvec/internal/experiments"
	"specvec/internal/obs"
)

// JobState is the lifecycle of one submitted job.
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Event is one entry of a job's progress stream, delivered over SSE.
// State events bracket the lifecycle; progress events relay the runner's
// ProgressEvents (per-run start/finish, committed-instruction motion and
// per-interval shard completion).
type Event struct {
	Seq   int       `json:"seq"`
	Time  time.Time `json:"time"`
	Kind  string    `json:"kind"` // "state" or "progress"
	State JobState  `json:"state,omitempty"`
	// Progress payload (runner events).
	Phase     string `json:"phase,omitempty"` // run-started, run-progress, shard-done, run-done
	Cfg       string `json:"cfg,omitempty"`
	Bench     string `json:"bench,omitempty"`
	Committed uint64 `json:"committed,omitempty"`
	Target    uint64 `json:"target,omitempty"`
	Shard     int    `json:"shard,omitempty"`
	Shards    int    `json:"shards,omitempty"`
	Cached    bool   `json:"cached,omitempty"`
	Error     string `json:"error,omitempty"`
}

// maxJobEvents bounds a job's retained event history; beyond it the
// oldest events are dropped (SSE replay then starts at the gap — Seq
// numbers make the gap visible to clients).
const maxJobEvents = 8192

// Job is one submitted spec moving through the scheduler.
type Job struct {
	ID   string
	Spec JobSpec // normalized
	Key  string  // content address of the result

	// trace is the job's span tree (set by Submit, on the scheduler's
	// clock); queueSpan is its queue-wait child, opened at submission
	// and ended when a worker picks the job up.
	trace     *obs.Trace
	queueSpan obs.SpanID

	mu       sync.Mutex
	state    JobState
	err      string
	source   Source // where the result came from (valid when done)
	created  time.Time
	started  time.Time
	finished time.Time
	result   []byte // encoded Result (valid when done)
	events   []Event
	firstSeq int // Seq of events[0] (history may be trimmed)
	nextSeq  int
	subs     map[chan Event]struct{}
	ctx      context.Context    // the job's own lifetime (set at submission)
	cancel   context.CancelFunc // cancels ctx; usable from submission on
	done     chan struct{}
	tied     context.Context // optional request context a waited job dies with
}

func newJob(id string, spec JobSpec, key string) *Job {
	j := &Job{
		ID:      id,
		Spec:    spec,
		Key:     key,
		state:   StateQueued,
		created: time.Now(),
		subs:    map[chan Event]struct{}{},
		done:    make(chan struct{}),
	}
	j.publishState(StateQueued)
	return j
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the job's current state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Cancel requests cancellation. A queued job resolves to cancelled when a
// worker picks it up; a running job aborts through its context.
func (j *Job) Cancel() {
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// publish appends ev to the history (assigning its sequence number) and
// fans it out to subscribers. Slow subscribers lose events rather than
// stalling the scheduler: their SSE stream resyncs from history on
// reconnect.
func (j *Job) publish(ev Event) {
	j.mu.Lock()
	ev.Seq = j.nextSeq
	j.nextSeq++
	ev.Time = time.Now()
	j.events = append(j.events, ev)
	if len(j.events) > maxJobEvents {
		drop := len(j.events) - maxJobEvents
		j.events = j.events[drop:]
		j.firstSeq += drop
	}
	// Every subscriber receives every event; the order subscribers are
	// visited in cannot reorder any one subscriber's stream.
	//sdv:ignore detrange -- fan-out order is subscriber-independent
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	j.mu.Unlock()
}

func (j *Job) publishState(s JobState) {
	j.publish(Event{Kind: "state", State: s})
}

// progressHook adapts runner progress events into the job stream.
func (j *Job) progressHook(ev experiments.ProgressEvent) {
	e := Event{
		Kind:      "progress",
		Phase:     ev.Kind.String(),
		Cfg:       ev.Cfg,
		Bench:     ev.Bench,
		Committed: ev.Committed,
		Target:    ev.Target,
		Shard:     ev.Shard,
		Shards:    ev.Shards,
		Cached:    ev.Cached,
	}
	if ev.Err != nil {
		e.Error = ev.Err.Error()
	}
	j.publish(e)
}

// subscribe registers a live event channel and returns it with a snapshot
// of the history to replay first.
func (j *Job) subscribe() (history []Event, ch chan Event) {
	ch = make(chan Event, 256)
	j.mu.Lock()
	history = append([]Event(nil), j.events...)
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return history, ch
}

func (j *Job) unsubscribe(ch chan Event) {
	j.mu.Lock()
	delete(j.subs, ch)
	j.mu.Unlock()
}

// eventsSince returns the retained events with Seq > seq. The SSE
// handler uses it to resync after the bounded live channel dropped
// events (a slow client), in particular to deliver the terminal state
// event that closes the stream.
func (j *Job) eventsSince(seq int) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i, ev := range j.events {
		if ev.Seq > seq {
			return append([]Event(nil), j.events[i:]...)
		}
	}
	return nil
}

// setRunning transitions queued -> running.
func (j *Job) setRunning() {
	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()
	j.publishState(StateRunning)
}

// finish resolves the job. err == nil means done with result; a context
// cancellation resolves to cancelled, any other error to failed.
func (j *Job) finish(result []byte, src Source, err error, cancelledErr bool) {
	j.mu.Lock()
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = StateDone
		j.result = result
		j.source = src
	case cancelledErr:
		j.state = StateCancelled
		j.err = err.Error()
	default:
		j.state = StateFailed
		j.err = err.Error()
	}
	state := j.state
	j.mu.Unlock()
	j.publishState(state)
	close(j.done)
}

// JobView is the wire representation of a job.
type JobView struct {
	ID       string    `json:"id"`
	Spec     JobSpec   `json:"spec"`
	Key      string    `json:"key"`
	State    JobState  `json:"state"`
	Error    string    `json:"error,omitempty"`
	CacheHit bool      `json:"cacheHit"`
	Source   string    `json:"source,omitempty"` // computed | memory | disk | coalesced
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
	// Result is present on done jobs when the view was built with
	// includeResult.
	Result json.RawMessage `json:"result,omitempty"`
}

// View snapshots the job for serving.
func (j *Job) View(includeResult bool) JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:      j.ID,
		Spec:    j.Spec,
		Key:     j.Key,
		State:   j.state,
		Error:   j.err,
		Created: j.created,
	}
	v.Started = j.started
	v.Finished = j.finished
	if j.state == StateDone {
		v.CacheHit = j.source.Hit()
		v.Source = j.source.String()
		if includeResult {
			v.Result = json.RawMessage(j.result)
		}
	}
	return v
}
