package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"specvec/internal/config"
	"specvec/internal/experiments"
	"specvec/internal/profile"
	"specvec/internal/workload"
)

// handler builds the daemon's route table. The API is versioned under
// /v1 and everything speaks JSON except /metrics (Prometheus-style text)
// and the SSE event stream.
func (s *Server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	mux.HandleFunc("GET /v1/configs", s.handleConfigs)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cluster != nil {
		mux.HandleFunc("POST /v1/cluster/join", s.handleClusterJoin)
		mux.HandleFunc("GET /v1/cluster/workers", s.handleClusterWorkers)
		mux.HandleFunc("GET /v1/artifacts/{id}", s.handleArtifact)
	}
	if s.agent != nil {
		mux.HandleFunc("POST /v1/shards", s.handleShard)
	}
	return mux
}

// handleClusterJoin registers (or heartbeats) a worker on the
// coordinator.
func (s *Server) handleClusterJoin(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding join request: %v", err)
		return
	}
	id, err := s.cluster.join(req.URL, req.Cores)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": id})
}

// handleClusterWorkers lists the registered workers.
func (s *Server) handleClusterWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cluster.workerViews())
}

// handleArtifact serves an encoded trace recording by content address.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	enc, ok := s.cluster.artifacts.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown artifact %.12s…", id)
		return
	}
	s.cluster.artifacts.pulls.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(len(enc)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(enc)
}

// handleShard executes one replay interval on a worker and returns its
// statistics. Failures map to the requeue contract: a 4xx means the
// task itself is bad (it would fail on any node — the coordinator
// surfaces it), a 5xx means this node failed it (the coordinator
// requeues elsewhere).
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	var task experiments.ShardTask
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&task); err != nil {
		writeError(w, http.StatusBadRequest, "decoding shard task: %v", err)
		return
	}
	if task.Trace == "" {
		writeError(w, http.StatusBadRequest, "shard task has no trace address")
		return
	}
	payload, err := s.agent.execute(r.Context(), task)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "shard %s/%s@%d: %v", task.Cfg.Name, task.Bench, task.ReplayFrom, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(payload)
}

// writeJSON sends v with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// handleSubmit accepts a JobSpec, normalizes it and queues a job.
// ?wait=1 blocks until the job resolves and returns it with its result;
// an abandoned waiting request cancels the job it submitted.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding spec: %v", err)
		return
	}
	norm, err := spec.Normalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid spec: %v", err)
		return
	}
	wait := r.URL.Query().Get("wait") == "1" || r.URL.Query().Get("wait") == "true"
	var tied context.Context
	if wait {
		// A synchronous submission dies with its request: abandoning the
		// wait cancels the job.
		tied = r.Context()
	}
	job, err := s.sched.Submit(norm, tied)
	if errors.Is(err, ErrQueueFull) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if !wait {
		w.Header().Set("Location", "/v1/jobs/"+job.ID)
		writeJSON(w, http.StatusAccepted, job.View(false))
		return
	}
	select {
	case <-job.Done():
		writeJSON(w, http.StatusOK, job.View(true))
	case <-r.Context().Done():
		// The AfterFunc tied to the request context cancels the job; there
		// is no client left to answer.
	}
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.sched.Jobs()
	views := make([]JobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.View(false)
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.sched.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, job.View(true))
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.sched.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusOK, job.View(false))
}

// handleJobEvents streams a job's progress as Server-Sent Events: the
// retained history first, then live events until the job resolves or the
// client disconnects. Event data is the JSON Event; the SSE event name is
// the Event kind.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.sched.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	history, ch := job.subscribe()
	defer job.unsubscribe(ch)
	send := func(ev Event) bool {
		b, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", ev.Kind, ev.Seq, b)
		fl.Flush()
		return !(ev.Kind == "state" && ev.State.Terminal())
	}
	seen := -1
	for _, ev := range history {
		if !send(ev) {
			return
		}
		seen = ev.Seq
	}
	for {
		select {
		case ev := <-ch:
			if ev.Seq <= seen {
				continue // raced with the history snapshot
			}
			if !send(ev) {
				return
			}
			seen = ev.Seq
		case <-job.Done():
			// The live channel is bounded and drops under a slow client —
			// possibly including the terminal state event. Resync from
			// history so the stream always closes once the job resolves.
			for _, ev := range job.eventsSince(seen) {
				if !send(ev) {
					return
				}
				seen = ev.Seq
			}
			return
		case <-r.Context().Done():
			return
		case <-time.After(15 * time.Second):
			// Keep-alive comment so intermediaries don't reap idle streams.
			fmt.Fprint(w, ": keep-alive\n\n")
			fl.Flush()
		}
	}
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type expView struct {
		ID    string `json:"id"`
		Title string `json:"title"`
	}
	var out []expView
	for _, e := range experiments.All() {
		out = append(out, expView{ID: e.ID, Title: e.Title})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	type wlView struct {
		Name        string `json:"name"`
		FP          bool   `json:"fp"`
		Generated   bool   `json:"generated,omitempty"`
		Description string `json:"description"`
	}
	var out []wlView
	for _, b := range workload.All() {
		out = append(out, wlView{Name: b.Name, FP: b.FP, Generated: b.Generated, Description: b.Description})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleConfigs(w http.ResponseWriter, r *http.Request) {
	var out []string
	for _, c := range config.Matrix() {
		out = append(out, c.Name)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"uptimeSeconds": int64(time.Since(s.started).Seconds()),
	})
}

// handleMetrics renders Prometheus-style text: job and cache counters
// (the warm-path observability the acceptance criteria diff against),
// aggregated runner and pipeline hot-path counters, and process gauges
// from internal/profile.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	p := func(format string, args ...any) { fmt.Fprintf(w, format+"\n", args...) }

	sc := s.sched
	p("sdvd_uptime_seconds %d", int64(time.Since(s.started).Seconds()))
	p("sdvd_jobs_submitted_total %d", sc.submitted.Load())
	p("sdvd_jobs_completed_total %d", sc.completed.Load())
	p("sdvd_jobs_failed_total %d", sc.failed.Load())
	p("sdvd_jobs_cancelled_total %d", sc.cancelled.Load())
	p("sdvd_jobs_running %d", sc.running.Load())
	p("sdvd_jobs_queued %d", sc.QueueDepth())

	hits, misses, diskHits, coalesced, evictions := s.cache.Counters()
	p("sdvd_cache_hits_total %d", hits)
	p("sdvd_cache_misses_total %d", misses)
	p("sdvd_cache_disk_hits_total %d", diskHits)
	p("sdvd_cache_coalesced_total %d", coalesced)
	p("sdvd_cache_evictions_total %d", evictions)
	p("sdvd_cache_entries %d", s.cache.Len())
	p("sdvd_cache_bytes %d", s.cache.Bytes())

	if s.traces != nil {
		p("sdvd_trace_store_loads_total %d", s.traces.loads.Load())
		p("sdvd_trace_store_disk_loads_total %d", s.traces.diskLoads.Load())
		p("sdvd_trace_store_stores_total %d", s.traces.stores.Load())
		p("sdvd_trace_store_evictions_total %d", s.traces.evictions.Load())
	}

	p("sdvd_sims_total %d", sc.sims.Load())
	p("sdvd_trace_recordings_total %d", sc.recorded.Load())
	p("sdvd_trace_replays_total %d", sc.replayed.Load())
	p("sdvd_runner_trace_loads_total %d", sc.traceLoads.Load())

	// Gang replay: batches is the number of shared trace walks, runs the
	// member simulations they fed (runs/batches = configs per walk), and
	// decode_saved the block decodes the sharing avoided (fetches that hit
	// an already-decoded block instead of decoding their own copy).
	p("sdvd_gang_batches_total %d", sc.gangBatches.Load())
	p("sdvd_gang_runs_total %d", sc.gangRuns.Load())
	p("sdvd_gang_decoded_blocks_total %d", sc.decodedBlocks.Load())
	p("sdvd_gang_decode_saved_total %d", sc.decodedBlockLoads.Load()-sc.decodedBlocks.Load())

	if s.cluster != nil {
		// Cluster, coordinator side: live workers, placement and failover
		// activity, and artifact pulls served to workers.
		p("sdvd_cluster_workers %d", s.cluster.liveWorkers())
		p("sdvd_cluster_shards_dispatched_total %d", s.cluster.dispatched.Load())
		p("sdvd_cluster_shards_remote_total %d", s.cluster.remoteRuns.Load())
		p("sdvd_cluster_shards_local_total %d", s.cluster.localRuns.Load())
		p("sdvd_cluster_requeues_total %d", s.cluster.requeues.Load())
		p("sdvd_cluster_artifact_pulls_total %d", s.cluster.artifacts.pulls.Load())
		p("sdvd_cluster_artifacts %d", s.cluster.artifacts.len())
	}
	if s.agent != nil {
		// Cluster, worker side: shards executed for a coordinator and the
		// artifact fetches (plus retried attempts) that fed them.
		p("sdvd_worker_shards_executed_total %d", s.agent.executed.Load())
		p("sdvd_worker_artifact_fetches_total %d", s.agent.fetches.Load())
		p("sdvd_worker_artifact_fetch_retries_total %d", s.agent.retries.Load())
	}

	h := sc.hotStats()
	p("sdvd_hotpath_uop_news_total %d", h.UopNews)
	p("sdvd_hotpath_uop_recycles_total %d", h.UopRecycles)
	p("sdvd_hotpath_vop_news_total %d", h.VopNews)
	p("sdvd_hotpath_vop_recycles_total %d", h.VopRecycles)

	rt := profile.ReadRuntime()
	p("sdvd_go_goroutines %d", rt.Goroutines)
	p("sdvd_go_heap_alloc_bytes %d", rt.HeapAllocBytes)
	p("sdvd_go_total_alloc_bytes %d", rt.TotalAllocBytes)
	p("sdvd_go_mallocs_total %d", rt.Mallocs)
	p("sdvd_go_frees_total %d", rt.Frees)
	p("sdvd_go_gc_total %d", rt.NumGC)
}
