package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"specvec/internal/config"
	"specvec/internal/experiments"
	"specvec/internal/obs"
	"specvec/internal/workload"
)

// handler builds the daemon's route table. The API is versioned under
// /v1 and everything speaks JSON except /metrics (Prometheus-style text)
// and the SSE event stream.
func (s *Server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/timeline", s.handleJobTimeline)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	mux.HandleFunc("GET /v1/configs", s.handleConfigs)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cluster != nil {
		mux.HandleFunc("POST /v1/cluster/join", s.handleClusterJoin)
		mux.HandleFunc("GET /v1/cluster/workers", s.handleClusterWorkers)
		mux.HandleFunc("GET /v1/artifacts/{id}", s.handleArtifact)
	}
	if s.agent != nil {
		mux.HandleFunc("POST /v1/shards", s.handleShard)
	}
	return mux
}

// handleClusterJoin registers (or heartbeats) a worker on the
// coordinator.
func (s *Server) handleClusterJoin(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding join request: %v", err)
		return
	}
	id, err := s.cluster.join(req.URL, req.Cores)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": id})
}

// handleClusterWorkers lists the registered workers.
func (s *Server) handleClusterWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cluster.workerViews())
}

// handleArtifact serves an encoded trace recording by content address.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	enc, ok := s.cluster.artifacts.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown artifact %.12s…", id)
		return
	}
	s.cluster.artifacts.pulls.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(len(enc)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(enc)
}

// handleShard executes one replay interval on a worker and returns its
// statistics. Failures map to the requeue contract: a 4xx means the
// task itself is bad (it would fail on any node — the coordinator
// surfaces it), a 5xx means this node failed it (the coordinator
// requeues elsewhere).
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	var task experiments.ShardTask
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&task); err != nil {
		writeError(w, http.StatusBadRequest, "decoding shard task: %v", err)
		return
	}
	if task.Trace == "" {
		writeError(w, http.StatusBadRequest, "shard task has no trace address")
		return
	}
	payload, exec, pull, err := s.agent.execute(r.Context(), task)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "shard %s/%s@%d: %v", task.Cfg.Name, task.Bench, task.ReplayFrom, err)
		return
	}
	// The worker cannot append to the coordinator's trace; it echoes the
	// trace header and reports its time split, and the coordinator grafts
	// the remote spans into the job timeline.
	if h := r.Header.Get(obs.TraceHeader); h != "" {
		if _, _, ok := obs.ParseTraceHeader(h); ok {
			w.Header().Set(obs.TraceHeader, h)
		}
	}
	w.Header().Set(obs.SpanDurationHeader, obs.EncodeDurations(exec, pull))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(payload)
}

// handleJobTimeline serves a completed job's span tree. Timelines are
// published when a job resolves, so a queued or running job answers 404
// with a distinct message from an unknown id.
func (s *Server) handleJobTimeline(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if tl, ok := s.sched.timelines.Get(id); ok {
		writeJSON(w, http.StatusOK, tl)
		return
	}
	if job, ok := s.sched.Job(id); ok {
		writeError(w, http.StatusNotFound, "job %s has no timeline yet (state %s)", id, job.State())
		return
	}
	writeError(w, http.StatusNotFound, "unknown job %q", id)
}

// writeJSON sends v with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// handleSubmit accepts a JobSpec, normalizes it and queues a job.
// ?wait=1 blocks until the job resolves and returns it with its result;
// an abandoned waiting request cancels the job it submitted.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding spec: %v", err)
		return
	}
	norm, err := spec.Normalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid spec: %v", err)
		return
	}
	wait := r.URL.Query().Get("wait") == "1" || r.URL.Query().Get("wait") == "true"
	var tied context.Context
	if wait {
		// A synchronous submission dies with its request: abandoning the
		// wait cancels the job.
		tied = r.Context()
	}
	job, err := s.sched.Submit(norm, tied)
	if errors.Is(err, ErrQueueFull) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if !wait {
		w.Header().Set("Location", "/v1/jobs/"+job.ID)
		writeJSON(w, http.StatusAccepted, job.View(false))
		return
	}
	select {
	case <-job.Done():
		writeJSON(w, http.StatusOK, job.View(true))
	case <-r.Context().Done():
		// The AfterFunc tied to the request context cancels the job; there
		// is no client left to answer.
	}
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.sched.Jobs()
	views := make([]JobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.View(false)
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.sched.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, job.View(true))
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.sched.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusOK, job.View(false))
}

// handleJobEvents streams a job's progress as Server-Sent Events: the
// retained history first, then live events until the job resolves or the
// client disconnects. Event data is the JSON Event; the SSE event name is
// the Event kind.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.sched.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	history, ch := job.subscribe()
	defer job.unsubscribe(ch)
	send := func(ev Event) bool {
		b, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", ev.Kind, ev.Seq, b)
		fl.Flush()
		return !(ev.Kind == "state" && ev.State.Terminal())
	}
	seen := -1
	for _, ev := range history {
		if !send(ev) {
			return
		}
		seen = ev.Seq
	}
	for {
		select {
		case ev := <-ch:
			if ev.Seq <= seen {
				continue // raced with the history snapshot
			}
			if !send(ev) {
				return
			}
			seen = ev.Seq
		case <-job.Done():
			// The live channel is bounded and drops under a slow client —
			// possibly including the terminal state event. Resync from
			// history so the stream always closes once the job resolves.
			for _, ev := range job.eventsSince(seen) {
				if !send(ev) {
					return
				}
				seen = ev.Seq
			}
			return
		case <-r.Context().Done():
			return
		case <-time.After(15 * time.Second):
			// Keep-alive comment so intermediaries don't reap idle streams.
			fmt.Fprint(w, ": keep-alive\n\n")
			fl.Flush()
		}
	}
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type expView struct {
		ID    string `json:"id"`
		Title string `json:"title"`
	}
	var out []expView
	for _, e := range experiments.All() {
		out = append(out, expView{ID: e.ID, Title: e.Title})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	type wlView struct {
		Name        string `json:"name"`
		FP          bool   `json:"fp"`
		Generated   bool   `json:"generated,omitempty"`
		Description string `json:"description"`
	}
	var out []wlView
	for _, b := range workload.All() {
		out = append(out, wlView{Name: b.Name, FP: b.FP, Generated: b.Generated, Description: b.Description})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleConfigs(w http.ResponseWriter, r *http.Request) {
	var out []string
	for _, c := range config.Matrix() {
		out = append(out, c.Name)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"uptimeSeconds": int64(time.Since(s.started).Seconds()),
	})
}

// handleMetrics renders the obs registry in Prometheus-style text: job
// and cache counters (the warm-path observability the acceptance
// criteria diff against), aggregated runner and pipeline hot-path
// counters, sampled process gauges, and the latency histograms. Every
// metric name predating the registry is preserved byte-for-byte; the
// registration order in buildRegistry is the render order.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.reg.WriteText(w)
}
