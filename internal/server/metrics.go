package server

import (
	"context"
	"time"

	"specvec/internal/obs"
	"specvec/internal/profile"
)

// serverMetrics holds the daemon's latency histograms. The counters and
// gauges live with the components that own them (scheduler, cache,
// cluster, worker agent) as obs types; this struct adds the timing
// families the span layer feeds, and buildRegistry assembles everything
// into one registry for /metrics.
type serverMetrics struct {
	// jobDuration is sdvd_job_duration_seconds{kind,phase}: phase
	// "total" is the job's wall time, the other phases are the root
	// span's direct children (queue-wait, cache-lookup, compute).
	jobDuration *obs.HistogramVec
	// queueWait is sdvd_queue_wait_seconds: submission to worker pickup.
	queueWait *obs.Histogram
	// shardRTT is sdvd_shard_rtt_seconds: coordinator-observed round
	// trip of one remote shard dispatch (network + queueing + replay).
	shardRTT *obs.Histogram
	// cacheLookup is sdvd_cache_lookup_seconds: the result-cache check
	// (memory, disk, or joining an in-flight computation) before any
	// compute starts.
	cacheLookup *obs.Histogram
}

func newServerMetrics() *serverMetrics {
	return &serverMetrics{
		jobDuration: obs.NewHistogramVec("sdvd_job_duration_seconds", []string{"kind", "phase"}, obs.DefaultLatencyBuckets),
		queueWait:   obs.NewHistogram("sdvd_queue_wait_seconds", obs.DefaultLatencyBuckets),
		shardRTT:    obs.NewHistogram("sdvd_shard_rtt_seconds", obs.DefaultLatencyBuckets),
		cacheLookup: obs.NewHistogram("sdvd_cache_lookup_seconds", obs.DefaultLatencyBuckets),
	}
}

// runtimeGauges are the sdvd_go_* process gauges. They are sampled into
// the registry — once at construction and then by StartRuntimeSampler's
// ticker — rather than computed at scrape time, so a scrape never pays
// a runtime.ReadMemStats and the documented staleness bound is the
// sampling interval.
type runtimeGauges struct {
	goroutines *obs.Gauge
	heapAlloc  *obs.Gauge
	totalAlloc *obs.Gauge
	mallocs    *obs.Gauge
	frees      *obs.Gauge
	gcs        *obs.Gauge
}

func newRuntimeGauges() *runtimeGauges {
	return &runtimeGauges{
		goroutines: obs.NewGauge("sdvd_go_goroutines"),
		heapAlloc:  obs.NewGauge("sdvd_go_heap_alloc_bytes"),
		totalAlloc: obs.NewGauge("sdvd_go_total_alloc_bytes"),
		mallocs:    obs.NewGauge("sdvd_go_mallocs_total"),
		frees:      obs.NewGauge("sdvd_go_frees_total"),
		gcs:        obs.NewGauge("sdvd_go_gc_total"),
	}
}

// sample reads the Go runtime into the gauges.
func (g *runtimeGauges) sample() {
	rt := profile.ReadRuntime()
	g.goroutines.Set(int64(rt.Goroutines))
	g.heapAlloc.Set(int64(rt.HeapAllocBytes))
	g.totalAlloc.Set(int64(rt.TotalAllocBytes))
	g.mallocs.Set(int64(rt.Mallocs))
	g.frees.Set(int64(rt.Frees))
	g.gcs.Set(int64(rt.NumGC))
}

// SampleRuntime refreshes the sdvd_go_* gauges now. Serve-layer callers
// normally rely on StartRuntimeSampler instead.
func (s *Server) SampleRuntime() { s.runtime.sample() }

// StartRuntimeSampler refreshes the runtime gauges every interval until
// ctx is cancelled (<= 0 means 10s). /metrics then reports runtime
// state at most one interval stale.
func (s *Server) StartRuntimeSampler(ctx context.Context, every time.Duration) {
	if every <= 0 {
		every = 10 * time.Second
	}
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				s.runtime.sample()
			}
		}
	}()
}

// buildRegistry assembles the /metrics registry. Registration order is
// render order and every pre-registry metric name is preserved
// byte-for-byte; the histogram families are appended after them.
func (s *Server) buildRegistry() *obs.Registry {
	reg := obs.NewRegistry()
	sc := s.sched
	reg.Register(obs.NewFunc("sdvd_uptime_seconds", func() int64 {
		return int64(s.clock.Now().Sub(s.started).Seconds())
	}))
	reg.Register(
		sc.submitted, sc.completed, sc.failed, sc.cancelled, sc.running,
		obs.NewFunc("sdvd_jobs_queued", func() int64 { return int64(sc.QueueDepth()) }),
	)
	reg.Register(
		s.cache.hits, s.cache.misses, s.cache.diskHits, s.cache.coalesced, s.cache.evictions,
		obs.NewFunc("sdvd_cache_entries", func() int64 { return int64(s.cache.Len()) }),
		obs.NewFunc("sdvd_cache_bytes", s.cache.Bytes),
	)
	if s.traces != nil {
		reg.Register(s.traces.loads, s.traces.diskLoads, s.traces.stores, s.traces.evictions)
	}
	reg.Register(sc.sims, sc.recorded, sc.replayed, sc.traceLoads)
	reg.Register(
		sc.gangBatches, sc.gangRuns, sc.decodedBlocks,
		// decode_saved is derived: block fetches that reused an
		// already-decoded block instead of decoding their own copy.
		obs.NewFunc("sdvd_gang_decode_saved_total", func() int64 {
			return sc.decodedBlockLoads.Value() - sc.decodedBlocks.Value()
		}),
	)
	if s.cluster != nil {
		reg.Register(
			obs.NewFunc("sdvd_cluster_workers", func() int64 { return int64(s.cluster.liveWorkers()) }),
			s.cluster.dispatched, s.cluster.remoteRuns, s.cluster.localRuns, s.cluster.requeues,
			s.cluster.artifacts.pulls,
			obs.NewFunc("sdvd_cluster_artifacts", func() int64 { return int64(s.cluster.artifacts.len()) }),
		)
	}
	if s.agent != nil {
		reg.Register(s.agent.executed, s.agent.fetches, s.agent.retries)
	}
	reg.Register(
		obs.NewFunc("sdvd_hotpath_uop_news_total", func() int64 { return int64(sc.hotStats().UopNews) }),
		obs.NewFunc("sdvd_hotpath_uop_recycles_total", func() int64 { return int64(sc.hotStats().UopRecycles) }),
		obs.NewFunc("sdvd_hotpath_vop_news_total", func() int64 { return int64(sc.hotStats().VopNews) }),
		obs.NewFunc("sdvd_hotpath_vop_recycles_total", func() int64 { return int64(sc.hotStats().VopRecycles) }),
	)
	reg.Register(
		s.runtime.goroutines, s.runtime.heapAlloc, s.runtime.totalAlloc,
		s.runtime.mallocs, s.runtime.frees, s.runtime.gcs,
	)
	m := sc.metrics
	reg.Register(m.jobDuration, m.queueWait, m.shardRTT, m.cacheLookup)
	return reg
}
