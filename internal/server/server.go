package server

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"specvec/internal/obs"
)

// Options configure a daemon instance. Zero values mean the documented
// defaults.
type Options struct {
	// CacheDir enables disk persistence of results and trace artifacts
	// under this directory ("" = memory only).
	CacheDir string
	// CacheEntries / CacheBytes bound the in-memory result LRU
	// (defaults 512 entries / 256 MiB).
	CacheEntries int
	CacheBytes   int64
	// TraceEntries bounds the in-memory trace artifact LRU (default 16 —
	// recordings are the big artifacts).
	TraceEntries int
	// QueueDepth bounds the job queue; submissions beyond it are rejected
	// with 503 (default 64).
	QueueDepth int
	// Jobs is the number of jobs executing concurrently (default 2).
	Jobs int
	// JobHistory bounds how many terminal jobs the registry retains
	// (default 512). Older ones are evicted — their ids answer 404, but
	// their results stay reachable through the cache by resubmitting.
	JobHistory int
	// SimWorkers bounds concurrent simulations per job (default
	// GOMAXPROCS).
	SimWorkers int
	// Gang controls gang replay inside each job's Runner: 0 (default)
	// gangs every configuration sharing a benchmark recording over one
	// decoded trace walk, 1 disables ganging, K >= 2 caps gang size.
	// Execution shape only — results and cache keys are unaffected, so a
	// daemon restarted with a different Gang still hits its result cache.
	Gang int
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)

	// Coordinator enables cluster mode on this daemon: workers may join
	// via POST /v1/cluster/join and the scheduler places replay work
	// across them (local cores keep competing as one more node).
	// Execution shape only — replay determinism keeps results
	// byte-identical with and without a cluster.
	Coordinator bool
	// Worker enables the worker role: the daemon registers with the
	// coordinator at JoinURL, heartbeats, and serves POST /v1/shards.
	Worker bool
	// JoinURL is the coordinator base URL a worker registers with
	// (required when Worker is set).
	JoinURL string
	// AdvertiseURL overrides the URL a worker advertises to the
	// coordinator (default: derived from the bound listener address).
	AdvertiseURL string
	// HeartbeatEvery is the worker re-registration period (default 1s).
	HeartbeatEvery time.Duration
	// WorkerExpiry is how stale a worker's heartbeat may be before the
	// coordinator stops placing work on it (default 5s).
	WorkerExpiry time.Duration
}

// Server is the sdvd daemon: the scheduler, the result cache and the
// HTTP API in front of them.
type Server struct {
	opts    Options
	cache   *Cache
	traces  *traceCache
	sched   *scheduler
	cluster *Cluster     // non-nil on a coordinator
	agent   *workerAgent // non-nil on a worker
	mux     http.Handler
	clock   obs.Clock
	started time.Time
	reg     *obs.Registry  // everything /metrics renders
	runtime *runtimeGauges // sdvd_go_* (sampled, not scrape-time)
}

// New assembles a Server from opts.
func New(opts Options) *Server {
	clock := obs.RealClock()
	s := &Server{
		opts:    opts,
		cache:   NewCache(opts.CacheEntries, opts.CacheBytes, opts.CacheDir),
		traces:  newTraceCache(opts.TraceEntries, opts.CacheDir),
		clock:   clock,
		started: clock.Now(),
		runtime: newRuntimeGauges(),
	}
	s.sched = newScheduler(opts.Jobs, opts.QueueDepth, opts.SimWorkers, opts.JobHistory, s.cache, s.traces, opts.Logf)
	s.sched.gang = opts.Gang
	if opts.Coordinator {
		s.cluster = newCluster(opts.SimWorkers, 0, opts.WorkerExpiry, opts.Logf)
		s.cluster.rtt = s.sched.metrics.shardRTT
		s.sched.remote = s.cluster
	}
	if opts.Worker {
		s.agent = newWorkerAgent(opts.JoinURL, opts.SimWorkers, opts.HeartbeatEvery, opts.Logf)
	}
	s.runtime.sample() // a scrape before the sampler's first tick still sees real values
	s.reg = s.buildRegistry()
	s.mux = s.handler()
	return s
}

// Cluster exposes the coordinator placement layer (nil unless
// Options.Coordinator), for embedding and tests.
func (s *Server) Cluster() *Cluster { return s.cluster }

// StartWorker begins the worker role out-of-band of Serve: register
// with the coordinator as selfURL and heartbeat until ctx is cancelled.
// Serve calls it automatically on a Worker daemon; tests and embedders
// that serve the handler themselves (httptest) call it directly.
func (s *Server) StartWorker(ctx context.Context, selfURL string) {
	if s.agent == nil {
		return
	}
	go s.agent.run(ctx, selfURL)
}

// Handler returns the daemon's HTTP handler (for httptest and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the worker pool; in-flight jobs abort.
func (s *Server) Close() { s.sched.Close() }

// ListenAndServe serves the API on addr until ctx is cancelled, then
// shuts down gracefully (draining handlers for up to 5 seconds) and
// closes the scheduler. The listener is bound before returning control
// to the serve loop, so callers that need the bound address should use
// Serve with their own listener.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// advertiseURL is the URL a worker registers under: the explicit
// override, or one derived from the bound listener (an unspecified
// host — 0.0.0.0, [::] — becomes 127.0.0.1, the single-machine
// default; multi-host deployments set AdvertiseURL).
func (s *Server) advertiseURL(addr net.Addr) string {
	if s.opts.AdvertiseURL != "" {
		return s.opts.AdvertiseURL
	}
	host, port, err := net.SplitHostPort(addr.String())
	if err != nil {
		return "http://" + addr.String()
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

// Serve runs the API on ln with the lifecycle described at
// ListenAndServe.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{Handler: s.mux}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	if s.opts.Logf != nil {
		s.opts.Logf("sdvd serving on http://%s", ln.Addr())
	}
	if s.agent != nil {
		workerCtx, stopWorker := context.WithCancel(ctx)
		defer stopWorker()
		s.StartWorker(workerCtx, s.advertiseURL(ln.Addr()))
	}
	select {
	case err := <-errc:
		s.Close()
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := hs.Shutdown(shutdownCtx)
	s.Close()
	if err != nil {
		return fmt.Errorf("server: shutdown: %w", err)
	}
	return nil
}
