package server

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Options configure a daemon instance. Zero values mean the documented
// defaults.
type Options struct {
	// CacheDir enables disk persistence of results and trace artifacts
	// under this directory ("" = memory only).
	CacheDir string
	// CacheEntries / CacheBytes bound the in-memory result LRU
	// (defaults 512 entries / 256 MiB).
	CacheEntries int
	CacheBytes   int64
	// TraceEntries bounds the in-memory trace artifact LRU (default 16 —
	// recordings are the big artifacts).
	TraceEntries int
	// QueueDepth bounds the job queue; submissions beyond it are rejected
	// with 503 (default 64).
	QueueDepth int
	// Jobs is the number of jobs executing concurrently (default 2).
	Jobs int
	// JobHistory bounds how many terminal jobs the registry retains
	// (default 512). Older ones are evicted — their ids answer 404, but
	// their results stay reachable through the cache by resubmitting.
	JobHistory int
	// SimWorkers bounds concurrent simulations per job (default
	// GOMAXPROCS).
	SimWorkers int
	// Gang controls gang replay inside each job's Runner: 0 (default)
	// gangs every configuration sharing a benchmark recording over one
	// decoded trace walk, 1 disables ganging, K >= 2 caps gang size.
	// Execution shape only — results and cache keys are unaffected, so a
	// daemon restarted with a different Gang still hits its result cache.
	Gang int
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
}

// Server is the sdvd daemon: the scheduler, the result cache and the
// HTTP API in front of them.
type Server struct {
	opts    Options
	cache   *Cache
	traces  *traceCache
	sched   *scheduler
	mux     http.Handler
	started time.Time
}

// New assembles a Server from opts.
func New(opts Options) *Server {
	s := &Server{
		opts:    opts,
		cache:   NewCache(opts.CacheEntries, opts.CacheBytes, opts.CacheDir),
		traces:  newTraceCache(opts.TraceEntries, opts.CacheDir),
		started: time.Now(),
	}
	s.sched = newScheduler(opts.Jobs, opts.QueueDepth, opts.SimWorkers, opts.JobHistory, s.cache, s.traces, opts.Logf)
	s.sched.gang = opts.Gang
	s.mux = s.handler()
	return s
}

// Handler returns the daemon's HTTP handler (for httptest and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the worker pool; in-flight jobs abort.
func (s *Server) Close() { s.sched.Close() }

// ListenAndServe serves the API on addr until ctx is cancelled, then
// shuts down gracefully (draining handlers for up to 5 seconds) and
// closes the scheduler. The listener is bound before returning control
// to the serve loop, so callers that need the bound address should use
// Serve with their own listener.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Serve runs the API on ln with the lifecycle described at
// ListenAndServe.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{Handler: s.mux}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	if s.opts.Logf != nil {
		s.opts.Logf("sdvd serving on http://%s", ln.Addr())
	}
	select {
	case err := <-errc:
		s.Close()
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := hs.Shutdown(shutdownCtx)
	s.Close()
	if err != nil {
		return fmt.Errorf("server: shutdown: %w", err)
	}
	return nil
}
