package server

import (
	"net/http"
	"testing"

	"specvec/internal/experiments"
	"specvec/internal/workload"
	"specvec/internal/wspec"
)

const sweepSpecYAML = `
wspec: 1
workloads:
  - name: gen.srv
    seed: 9
    blocks:
      - gen: stride
        elems: 256
        stride: 4
      - gen: branch
        count: 256
        entropy: 50
`

// A differently-formatted JSON rendering of the same spec content.
const sweepSpecJSON = `{"workloads":[{"seed":9,"name":"gen.srv",` +
	`"blocks":[{"stride":4,"gen":"stride","elems":256},{"entropy":50,"count":256,"gen":"branch"}]}],"wspec":1}`

// TestServedSpecSweep pins the sweep kind: a sweep job over a spec
// payload serves tables byte-identical to a local SpecSweep at the same
// scale/seed, and resubmitting the same content in different formatting
// is a cache hit, not a new simulation.
func TestServedSpecSweep(t *testing.T) {
	const scale = 20_000
	s, ts := testServer(t, Options{})

	view, code := postJob(t, ts.URL, JobSpec{Kind: KindSweep, Specs: sweepSpecYAML, Scale: scale}, true)
	if code != http.StatusOK {
		t.Fatalf("submit: HTTP %d", code)
	}
	res := decodeResult(t, view)
	if view.CacheHit {
		t.Error("first submission claims a cache hit")
	}

	f, err := wspec.Parse([]byte(sweepSpecYAML))
	if err != nil {
		t.Fatal(err)
	}
	compiled := map[string]workload.Benchmark{}
	for _, w := range f.Workloads {
		compiled[w.Name] = wspec.CompileSpec(w)
	}
	r := experiments.NewRunner(experiments.Options{
		Scale: scale, Seed: 1, Workers: 2,
		Workloads: func(n string) (workload.Benchmark, error) {
			if b, ok := compiled[n]; ok {
				return b, nil
			}
			return workload.Get(n)
		},
	})
	tables, err := experiments.SpecSweep(r, f.Names())
	if err != nil {
		t.Fatal(err)
	}
	want := renderAll(tables)
	if got := renderAll(res.Tables); got != want {
		t.Fatalf("served sweep diverges from local run:\n--- local ---\n%s\n--- served ---\n%s", want, got)
	}

	// Same content, different formatting: the canonical form keys the
	// cache, so this must be a hit and must not simulate.
	before := s.sched.sims.Value()
	again, _ := postJob(t, ts.URL, JobSpec{Kind: KindSweep, Specs: sweepSpecJSON, Scale: scale}, true)
	res2 := decodeResult(t, again)
	if !again.CacheHit {
		t.Errorf("reformatted resubmission missed the cache (source %s)", again.Source)
	}
	if renderAll(res2.Tables) != want {
		t.Error("cached sweep tables diverge")
	}
	if after := s.sched.sims.Value(); after != before {
		t.Errorf("cache hit ran %d simulations", after-before)
	}

	// Different seed: a different result space.
	seeded, _ := postJob(t, ts.URL, JobSpec{Kind: KindSweep, Specs: sweepSpecYAML, Scale: scale, Seed: 2}, true)
	if seeded.CacheHit {
		t.Error("different seed served from the seed-1 cache entry")
	}
}

// TestSweepSpecValidation pins Normalize's handling of the specs payload.
func TestSweepSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		spec JobSpec
	}{
		{"sweep without specs", JobSpec{Kind: KindSweep}},
		{"sweep with workload", JobSpec{Kind: KindSweep, Specs: sweepSpecYAML, Workload: "gcc"}},
		{"experiment with specs", JobSpec{Kind: KindExperiment, Exp: "fig1", Specs: sweepSpecYAML}},
		{"malformed specs", JobSpec{Kind: KindSweep, Specs: "wspec: [\n"}},
		{"sim of undefined generated workload", JobSpec{Kind: KindSim, Workload: "gen.ghost", Specs: sweepSpecYAML}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.spec.Normalize(); err == nil {
				t.Error("Normalize accepted an invalid spec")
			}
		})
	}

	// Kind inference: a bare specs payload is a sweep.
	n, err := JobSpec{Specs: sweepSpecYAML}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Kind != KindSweep {
		t.Errorf("inferred kind %q, want %q", n.Kind, KindSweep)
	}

	// A sim job may name a workload defined by its specs payload.
	sim, err := JobSpec{Kind: KindSim, Workload: "gen.srv", Specs: sweepSpecYAML}.Normalize()
	if err != nil {
		t.Fatalf("sim of spec-defined workload rejected: %v", err)
	}
	if sim.Specs == "" {
		t.Error("normalized sim spec dropped its specs payload")
	}
}

// TestServedSimOfGeneratedWorkload runs a sim job whose workload exists
// only in the job's specs payload — no global registration involved.
func TestServedSimOfGeneratedWorkload(t *testing.T) {
	_, ts := testServer(t, Options{})
	view, code := postJob(t, ts.URL,
		JobSpec{Kind: KindSim, Workload: "gen.srv", Config: "4w-1pV", Scale: 10_000, Specs: sweepSpecYAML}, true)
	if code != http.StatusOK {
		t.Fatalf("submit: HTTP %d", code)
	}
	res := decodeResult(t, view)
	if res.Stats == nil || res.Stats.Committed == 0 {
		t.Fatalf("sim of generated workload returned no stats: %+v", res.Stats)
	}
}
