package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// clusterHarness boots a coordinator plus n workers over httptest,
// wiring the workers' heartbeats at a fast cadence so tests never wait
// on the production 1s period.
type clusterHarness struct {
	coord   *Server
	coordTS *httptest.Server
	workers []*Server
	workTS  []*httptest.Server
}

func newClusterHarness(t *testing.T, n int, coordOpts Options) *clusterHarness {
	t.Helper()
	coordOpts.Coordinator = true
	if coordOpts.SimWorkers == 0 {
		coordOpts.SimWorkers = 2
	}
	h := &clusterHarness{}
	h.coord = New(coordOpts)
	h.coordTS = httptest.NewServer(h.coord.Handler())
	t.Cleanup(func() {
		h.coordTS.Close()
		h.coord.Close()
	})
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	for i := 0; i < n; i++ {
		w := New(Options{
			Worker:         true,
			JoinURL:        h.coordTS.URL,
			SimWorkers:     2,
			HeartbeatEvery: 50 * time.Millisecond,
		})
		ts := httptest.NewServer(w.Handler())
		t.Cleanup(func() {
			ts.Close()
			w.Close()
		})
		w.StartWorker(ctx, ts.URL)
		h.workers = append(h.workers, w)
		h.workTS = append(h.workTS, ts)
	}
	h.waitWorkers(t, n)
	return h
}

// waitWorkers blocks until the coordinator sees n live workers.
func (h *clusterHarness) waitWorkers(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if h.coord.cluster.liveWorkers() >= n {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("coordinator never saw %d live workers (have %d)", n, h.coord.cluster.liveWorkers())
}

func metricsText(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func metricValue(t *testing.T, text, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		var v int64
		if n, _ := fmt.Sscanf(line, name+" %d", &v); n == 1 && strings.HasPrefix(line, name+" ") {
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, text)
	return 0
}

// TestClusterByteIdentical is the tentpole acceptance pin: an
// experiment served by a coordinator with two workers is byte-identical
// to the same spec on a plain single-process daemon, the work actually
// went remote, and the ISSUE's cluster metrics are live.
func TestClusterByteIdentical(t *testing.T) {
	const scale = 20_000
	spec := JobSpec{Exp: "fig1", Scale: scale, Shards: 2, CheckpointEvery: 2000}

	_, plainTS := testServer(t, Options{})
	plainView, code := postJob(t, plainTS.URL, spec, true)
	if code != http.StatusOK {
		t.Fatalf("plain submit: HTTP %d", code)
	}
	want := renderAll(decodeResult(t, plainView).Tables)

	h := newClusterHarness(t, 2, Options{})
	view, code := postJob(t, h.coordTS.URL, spec, true)
	if code != http.StatusOK {
		t.Fatalf("cluster submit: HTTP %d", code)
	}
	got := renderAll(decodeResult(t, view).Tables)
	if got != want {
		t.Fatalf("clustered result diverges from single process:\n--- plain ---\n%s\n--- cluster ---\n%s", want, got)
	}

	m := metricsText(t, h.coordTS.URL)
	if v := metricValue(t, m, "sdvd_cluster_workers"); v != 2 {
		t.Errorf("sdvd_cluster_workers = %d, want 2", v)
	}
	if v := metricValue(t, m, "sdvd_cluster_shards_dispatched_total"); v == 0 {
		t.Error("sdvd_cluster_shards_dispatched_total = 0, want > 0")
	}
	if v := metricValue(t, m, "sdvd_cluster_shards_remote_total"); v == 0 {
		t.Error("sdvd_cluster_shards_remote_total = 0: nothing actually ran on a worker")
	}
	if v := metricValue(t, m, "sdvd_cluster_artifact_pulls_total"); v == 0 {
		t.Error("sdvd_cluster_artifact_pulls_total = 0: workers never pulled a recording")
	}
	metricValue(t, m, "sdvd_cluster_requeues_total") // present even when 0

	executed := int64(0)
	for i, w := range h.workers {
		wm := metricsText(t, h.workTS[i].URL)
		executed += metricValue(t, wm, "sdvd_worker_shards_executed_total")
		_ = w
	}
	if executed == 0 {
		t.Error("no worker executed any shard")
	}

	// Observability rides the same harness: the job's timeline must show
	// the dispatch fan-out with remote halves grafted in — spans marked
	// remote carrying the worker's reported execution time — and the
	// latency histograms must have observed the traffic.
	tl, code, body := getTimeline(t, h.coordTS.URL, view.ID)
	if code != http.StatusOK {
		t.Fatalf("cluster timeline: HTTP %d: %s", code, body)
	}
	if n := findSpans(tl.Root, "shard-fanout"); len(n) == 0 {
		t.Error("cluster timeline has no shard-fanout spans")
	}
	if n := findSpans(tl.Root, "shard-remote"); len(n) == 0 {
		t.Error("cluster timeline has no shard-remote spans")
	} else {
		for _, sp := range n {
			if !sp.Remote || sp.Detail == "" {
				t.Errorf("shard-remote span not marked remote or missing worker id: %+v", sp)
			}
		}
	}
	if n := findSpans(tl.Root, "shard-exec"); len(n) == 0 {
		t.Error("cluster timeline has no shard-exec spans (worker never reported exec_us)")
	}
	if !strings.Contains(m, "# TYPE sdvd_shard_rtt_seconds histogram") {
		t.Error("coordinator /metrics missing sdvd_shard_rtt_seconds histogram")
	}
	if v := metricValue(t, m, "sdvd_shard_rtt_seconds_count"); v == 0 {
		t.Error("sdvd_shard_rtt_seconds_count = 0: no RTT observed")
	}
}

// failingWorker answers /v1/shards with 500 after optionally succeeding
// for a while — a worker that dies mid-sweep.
type failingWorker struct {
	inner    http.Handler
	failAt   int64 // shard requests served successfully before failing
	requests atomic.Int64
}

func (f *failingWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/shards" && f.requests.Add(1) > f.failAt {
		writeError(w, http.StatusInternalServerError, "injected worker failure")
		return
	}
	f.inner.ServeHTTP(w, r)
}

// TestClusterRequeueByteIdentical is the chaos pin: a worker that
// advertises many cores (so placement prefers it) and then fails every
// shard mid-sweep forces requeues, and the sweep still completes with
// byte-identical output. Determinism is what makes the requeued
// re-runs safe.
func TestClusterRequeueByteIdentical(t *testing.T) {
	const scale = 20_000
	spec := JobSpec{Exp: "fig1", Scale: scale, Shards: 2, CheckpointEvery: 2000}

	_, plainTS := testServer(t, Options{})
	plainView, code := postJob(t, plainTS.URL, spec, true)
	if code != http.StatusOK {
		t.Fatalf("plain submit: HTTP %d", code)
	}
	want := renderAll(decodeResult(t, plainView).Tables)

	// One healthy worker plus one poison worker: the poison node
	// advertises 64 cores, so the least-loaded placement sends it
	// (nearly) everything — each such dispatch fails after the second
	// request and must requeue.
	h := newClusterHarness(t, 1, Options{})
	poison := New(Options{
		Worker:         true,
		JoinURL:        h.coordTS.URL,
		SimWorkers:     64,
		HeartbeatEvery: 50 * time.Millisecond,
	})
	ph := &failingWorker{inner: poison.Handler(), failAt: 2}
	pts := httptest.NewServer(ph)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(func() {
		cancel()
		pts.Close()
		poison.Close()
	})
	poison.StartWorker(ctx, pts.URL)
	h.waitWorkers(t, 2)

	view, code := postJob(t, h.coordTS.URL, spec, true)
	if code != http.StatusOK {
		t.Fatalf("cluster submit: HTTP %d", code)
	}
	got := renderAll(decodeResult(t, view).Tables)
	if got != want {
		t.Fatal("result diverges after mid-sweep worker failure — requeue broke byte-identity")
	}
	m := metricsText(t, h.coordTS.URL)
	if v := metricValue(t, m, "sdvd_cluster_requeues_total"); v == 0 {
		t.Error("sdvd_cluster_requeues_total = 0: the poison worker never forced a requeue")
	}
}

// TestClusterWorkerExpiry pins liveness: a worker whose heartbeats stop
// drops out of placement after the expiry window.
func TestClusterWorkerExpiry(t *testing.T) {
	coord := New(Options{Coordinator: true, SimWorkers: 1, WorkerExpiry: 50 * time.Millisecond})
	defer coord.Close()
	if _, err := coord.cluster.join("http://127.0.0.1:1", 2); err != nil {
		t.Fatal(err)
	}
	if n := coord.cluster.liveWorkers(); n != 1 {
		t.Fatalf("live workers = %d, want 1", n)
	}
	time.Sleep(80 * time.Millisecond)
	if n := coord.cluster.liveWorkers(); n != 0 {
		t.Fatalf("live workers = %d after expiry, want 0", n)
	}
	// A fresh heartbeat revives it.
	if _, err := coord.cluster.join("http://127.0.0.1:1", 2); err != nil {
		t.Fatal(err)
	}
	if n := coord.cluster.liveWorkers(); n != 1 {
		t.Fatalf("live workers = %d after re-join, want 1", n)
	}
}

// TestClusterJoinValidation pins the join endpoint's input checks.
func TestClusterJoinValidation(t *testing.T) {
	h := newClusterHarness(t, 0, Options{})
	for _, body := range []string{
		`{"url":"","cores":2}`,
		`{"url":"not-a-url","cores":2}`,
		`{"url":"http://ok:1","cores":1,"junk":true}`,
	} {
		resp, err := http.Post(h.coordTS.URL+"/v1/cluster/join", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("join %s: HTTP %d, want 400", body, resp.StatusCode)
		}
	}
	resp, err := http.Get(h.coordTS.URL + "/v1/cluster/workers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var views []WorkerView
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	if len(views) != 0 {
		t.Errorf("rejected joins still registered workers: %v", views)
	}
}

// flakyArtifacts serves the coordinator's API but corrupts the first
// artifact response and 500s the second, exercising the worker's
// verify-and-retry pull path.
type flakyArtifacts struct {
	inner http.Handler
	gets  atomic.Int64
}

func (f *flakyArtifacts) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/v1/artifacts/") {
		switch f.gets.Add(1) {
		case 1:
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte("corrupted bytes"))
			return
		case 2:
			writeError(w, http.StatusInternalServerError, "transient artifact failure")
			return
		}
	}
	f.inner.ServeHTTP(w, r)
}

// TestWorkerPullRetryAndVerify pins the artifact fetch contract: a
// corrupted transfer is detected by content-address verification, a 5xx
// is retried, and the third attempt succeeds — the shard result is
// still byte-identical to a healthy cluster's.
func TestWorkerPullRetryAndVerify(t *testing.T) {
	const scale = 15_000
	// Sharded so the recording is replayed (a single-config experiment
	// records each benchmark on its only run and would never dispatch).
	spec := JobSpec{Exp: "fig1", Scale: scale, Shards: 2, CheckpointEvery: 2000}

	_, plainTS := testServer(t, Options{})
	plainView, code := postJob(t, plainTS.URL, spec, true)
	if code != http.StatusOK {
		t.Fatalf("plain submit: HTTP %d", code)
	}
	want := renderAll(decodeResult(t, plainView).Tables)

	coord := New(Options{Coordinator: true, SimWorkers: 1})
	fa := &flakyArtifacts{inner: coord.Handler()}
	cts := httptest.NewServer(fa)
	t.Cleanup(func() {
		cts.Close()
		coord.Close()
	})

	w := New(Options{Worker: true, JoinURL: cts.URL, SimWorkers: 8, HeartbeatEvery: 50 * time.Millisecond})
	wts := httptest.NewServer(w.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(func() {
		cancel()
		wts.Close()
		w.Close()
	})
	w.StartWorker(ctx, wts.URL)
	deadline := time.Now().Add(5 * time.Second)
	for coord.cluster.liveWorkers() < 1 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}

	view, code := postJob(t, cts.URL, spec, true)
	if code != http.StatusOK {
		t.Fatalf("cluster submit: HTTP %d", code)
	}
	if got := renderAll(decodeResult(t, view).Tables); got != want {
		t.Fatal("result diverges after corrupted + failed artifact pulls")
	}
	wm := metricsText(t, wts.URL)
	if v := metricValue(t, wm, "sdvd_worker_artifact_fetch_retries_total"); v < 2 {
		t.Errorf("sdvd_worker_artifact_fetch_retries_total = %d, want >= 2 (corruption + 5xx)", v)
	}
}

// TestShardEndpointValidation pins the worker's /v1/shards input
// checks: bad JSON and an addressless task are 4xx (the coordinator
// must not requeue those), an unknown artifact is 5xx.
func TestShardEndpointValidation(t *testing.T) {
	w := New(Options{Worker: true, JoinURL: "http://127.0.0.1:1", SimWorkers: 1})
	defer w.Close()
	ts := httptest.NewServer(w.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		body string
		want int
	}{
		{`{not json`, http.StatusBadRequest},
		{`{"cfg":{},"bench":"x","replayFrom":0,"warmup":0,"measure":10}`, http.StatusBadRequest}, // no trace address
	} {
		resp, err := http.Post(ts.URL+"/v1/shards", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("POST /v1/shards %q: HTTP %d, want %d", tc.body, resp.StatusCode, tc.want)
		}
	}
}

// TestPprofHandler pins the opt-in profiling satellite: the handler
// serves the pprof index and a profile endpoint, and the daemon's API
// mux does NOT carry /debug/pprof (it is a separate listener by
// design).
func TestPprofHandler(t *testing.T) {
	ts := httptest.NewServer(PprofHandler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(b), "goroutine") {
		t.Errorf("pprof index: HTTP %d, body %.80q", resp.StatusCode, b)
	}
	resp, err = http.Get(ts.URL + "/debug/pprof/symbol")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof symbol: HTTP %d", resp.StatusCode)
	}

	_, api := testServer(t, Options{})
	resp, err = http.Get(api.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("API mux serves /debug/pprof/ (HTTP %d); profiling must stay on its own listener", resp.StatusCode)
	}
}
