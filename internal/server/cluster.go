package server

import (
	"bytes"
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"specvec/internal/experiments"
	"specvec/internal/obs"
	"specvec/internal/stats"
	"specvec/internal/trace"
)

// Cluster mode, coordinator half: workers register (and heartbeat) over
// the same HTTP API jobs are submitted through, and the coordinator's
// scheduler places replay work — whole (configuration, benchmark) runs
// and checkpointed shards — across them instead of only the local
// worker pool. Trace recordings ship by content address: the
// coordinator publishes each recording to its artifact store, tasks
// carry only the address, and a worker pulls the bytes on miss (see
// worker.go). Failover rides the determinism guarantee: a task on a
// dead or failing worker is requeued to another node (or run locally)
// and the re-run is byte-identical, so worker death never changes a
// sweep's output — only its wall clock.

const (
	// defaultHeartbeat is how often a worker re-registers; registration
	// doubles as the heartbeat.
	defaultHeartbeat = time.Second
	// defaultWorkerExpiry is how stale a worker's last heartbeat may be
	// before placement skips it.
	defaultWorkerExpiry = 5 * time.Second
	// defaultArtifactEntries bounds the coordinator's in-memory artifact
	// store (recordings are the big artifacts).
	defaultArtifactEntries = 32
)

// workerNode is one registered worker.
type workerNode struct {
	id       string
	url      string // advertised base URL, the registry key
	cores    int    // advertised simulation slots, the placement weight
	inflight int    // tasks currently dispatched to it
	lastSeen time.Time
	dead     bool // a dispatch failed; revived by the next heartbeat
}

// score is the load metric placement minimizes: in-flight tasks per
// advertised core.
func (w *workerNode) score() float64 {
	return float64(w.inflight) / float64(max(w.cores, 1))
}

// Cluster is the coordinator's placement layer. It implements
// experiments.RemoteShards; the scheduler threads it into every job's
// runner options.
type Cluster struct {
	logf   func(format string, args ...any)
	expiry time.Duration
	client *http.Client
	clock  obs.Clock      // times remote dispatch round trips
	rtt    *obs.Histogram // sdvd_shard_rtt_seconds; nil outside a Server

	mu      sync.Mutex
	workers map[string]*workerNode // by advertised URL
	seq     int

	// Local fallback executes on the coordinator's own cores, bounded
	// like a worker's simulation pool.
	localSem      chan struct{}
	localInflight atomic.Int64

	artifacts *artifactStore

	dispatched *obs.Counter // tasks entering RunShard
	remoteRuns *obs.Counter // tasks completed on a worker
	localRuns  *obs.Counter // tasks completed by local fallback
	requeues   *obs.Counter // tasks re-placed after a worker failure
}

func newCluster(localWorkers, artifactEntries int, expiry time.Duration, logf func(string, ...any)) *Cluster {
	if localWorkers <= 0 {
		localWorkers = runtime.GOMAXPROCS(0)
	}
	if expiry <= 0 {
		expiry = defaultWorkerExpiry
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Cluster{
		logf:       logf,
		expiry:     expiry,
		client:     &http.Client{}, // no timeout: a shard runs for seconds; contexts bound it
		clock:      obs.RealClock(),
		workers:    map[string]*workerNode{},
		localSem:   make(chan struct{}, localWorkers),
		artifacts:  newArtifactStore(artifactEntries),
		dispatched: obs.NewCounter("sdvd_cluster_shards_dispatched_total"),
		remoteRuns: obs.NewCounter("sdvd_cluster_shards_remote_total"),
		localRuns:  obs.NewCounter("sdvd_cluster_shards_local_total"),
		requeues:   obs.NewCounter("sdvd_cluster_requeues_total"),
	}
}

// join registers (or heartbeats) a worker by its advertised URL,
// returning its id. A worker marked dead by a dispatch failure is
// revived — a restarted process re-joins under the same URL.
func (c *Cluster) join(rawURL string, cores int) (string, error) {
	u, err := url.Parse(rawURL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", fmt.Errorf("worker url %q: want an absolute http(s) URL", rawURL)
	}
	if cores < 1 {
		cores = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[rawURL]
	if !ok {
		c.seq++
		w = &workerNode{id: fmt.Sprintf("w%03d", c.seq), url: rawURL}
		c.workers[rawURL] = w
		c.logf("cluster: worker %s joined from %s (%d cores)", w.id, rawURL, cores)
	} else if w.dead {
		c.logf("cluster: worker %s revived by heartbeat", w.id)
	}
	w.cores = cores
	w.lastSeen = time.Now()
	w.dead = false
	return w.id, nil
}

// liveWorkers counts workers placement would currently consider.
func (c *Cluster) liveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	now := time.Now()
	for _, w := range c.workers {
		if !w.dead && now.Sub(w.lastSeen) <= c.expiry {
			n++
		}
	}
	return n
}

// workerViews snapshots the registry for GET /v1/cluster/workers.
func (c *Cluster) workerViews() []WorkerView {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	out := make([]WorkerView, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, WorkerView{
			ID: w.id, URL: w.url, Cores: w.cores, Inflight: w.inflight,
			Live: !w.dead && now.Sub(w.lastSeen) <= c.expiry,
		})
	}
	// Registry order is map order; present deterministically by id.
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// WorkerView is the wire representation of a registered worker.
type WorkerView struct {
	ID       string `json:"id"`
	URL      string `json:"url"`
	Cores    int    `json:"cores"`
	Inflight int    `json:"inflight"`
	Live     bool   `json:"live"`
}

// pick reserves the least-loaded live worker not yet tried for this
// task, or nil to run locally. The coordinator's own cores compete as
// one more node; ties go remote so an idle cluster actually spreads.
func (c *Cluster) pick(tried map[string]bool) *workerNode {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	var best *workerNode
	for _, w := range c.workers {
		if tried[w.url] || w.dead || now.Sub(w.lastSeen) > c.expiry {
			continue
		}
		if best == nil || w.score() < best.score() ||
			(w.score() == best.score() && w.url < best.url) {
			best = w
		}
	}
	if best == nil {
		return nil
	}
	local := float64(c.localInflight.Load()) / float64(cap(c.localSem))
	if best.score() > local {
		return nil
	}
	best.inflight++
	return best
}

// release returns a reservation made by pick.
func (c *Cluster) release(w *workerNode) {
	c.mu.Lock()
	w.inflight--
	c.mu.Unlock()
}

// fail marks a worker dead after a dispatch failure. Its queued
// heartbeats revive it; until then placement skips it.
func (c *Cluster) fail(w *workerNode, err error) {
	c.mu.Lock()
	w.dead = true
	c.mu.Unlock()
	c.logf("cluster: worker %s (%s) marked dead: %v", w.id, w.url, err)
}

// RunShard implements experiments.RemoteShards: publish the recording
// once, then place the task on the least-loaded live worker, requeuing
// on node failure — determinism makes the re-run byte-identical — and
// falling back to local execution when no worker can take it. Only
// context cancellation and genuine simulation errors surface to the
// caller.
func (c *Cluster) RunShard(ctx context.Context, task experiments.ShardTask, tr *trace.Trace) (*stats.Sim, error) {
	c.dispatched.Add(1)
	id, err := c.artifacts.publish(tr)
	if err != nil {
		c.logf("cluster: publishing %s recording failed (%v); running shard locally", task.Bench, err)
		return c.runLocal(ctx, task, tr)
	}
	task.Trace = id
	sc := obs.FromContext(ctx)
	tried := map[string]bool{}
	for {
		w := c.pick(tried)
		if w == nil {
			return c.runLocal(ctx, task, tr)
		}
		start := c.clock.Now()
		st, exec, pull, retryable, err := c.post(ctx, w, task, sc)
		rtt := c.clock.Now().Sub(start)
		c.release(w)
		if err == nil {
			c.remoteRuns.Add(1)
			if c.rtt != nil {
				c.rtt.Observe(rtt.Seconds())
			}
			// The worker's clock is not ours: it reports how the shard's
			// time was spent and the coordinator grafts those spans under
			// the dispatch, so the job timeline shows per-worker remote
			// execution (and the rtt-minus-exec gap is transfer+queueing).
			remote := sc.Graft("shard-remote", w.id, rtt, true)
			if exec > 0 {
				remote.Graft("shard-exec", "", exec, true)
			}
			if pull > 0 {
				remote.Graft("artifact-pull", trace.ShortID(task.Trace), pull, true)
			}
			return st, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if !retryable {
			return nil, err
		}
		c.fail(w, err)
		tried[w.url] = true
		c.requeues.Add(1)
		c.logf("cluster: requeuing %s/%s shard @%d after failure on %s", task.Cfg.Name, task.Bench, task.ReplayFrom, w.url)
	}
}

// post dispatches one task to a worker, propagating the span context on
// the trace header and decoding the worker's span-duration header
// (exec, pull) alongside the result. retryable reports whether a
// failure is the node's fault (network error, 5xx — requeue elsewhere)
// rather than the task's (4xx — the task would fail anywhere, surface
// it).
func (c *Cluster) post(ctx context.Context, w *workerNode, task experiments.ShardTask, sc obs.SpanContext) (st *stats.Sim, exec, pull time.Duration, retryable bool, err error) {
	body, err := json.Marshal(task)
	if err != nil {
		return nil, 0, 0, false, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+"/v1/shards", bytes.NewReader(body))
	if err != nil {
		return nil, 0, 0, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	if h := sc.Header(); h != "" {
		req.Header.Set(obs.TraceHeader, h)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, 0, 0, true, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, 0, true, err
	}
	if resp.StatusCode != http.StatusOK {
		err := fmt.Errorf("worker %s: HTTP %d: %s", w.id, resp.StatusCode, apiErrorText(payload))
		return nil, 0, 0, resp.StatusCode < 400 || resp.StatusCode >= 500, err
	}
	st = stats.New()
	if err := json.Unmarshal(payload, st); err != nil {
		return nil, 0, 0, true, fmt.Errorf("worker %s: decoding shard result: %w", w.id, err)
	}
	if e, p, ok := obs.ParseDurations(resp.Header.Get(obs.SpanDurationHeader)); ok {
		exec, pull = e, p
	}
	return st, exec, pull, false, nil
}

// runLocal executes a task on the coordinator's own cores, bounded by
// the local semaphore — the fallback that keeps a cluster of one (or a
// cluster whose workers all died) fully functional.
func (c *Cluster) runLocal(ctx context.Context, task experiments.ShardTask, tr *trace.Trace) (*stats.Sim, error) {
	select {
	case c.localSem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	c.localInflight.Add(1)
	defer func() {
		c.localInflight.Add(-1)
		<-c.localSem
	}()
	c.localRuns.Add(1)
	lsp := obs.FromContext(ctx).Start("shard-local")
	defer lsp.End()
	return experiments.ExecuteShardTask(ctx, task, tr)
}

// apiErrorText extracts the uniform error body, falling back to the
// raw payload.
func apiErrorText(payload []byte) string {
	var e apiError
	if json.Unmarshal(payload, &e) == nil && e.Error != "" {
		return e.Error
	}
	return string(bytes.TrimSpace(payload))
}

// artifactStore holds encoded trace recordings by content address so
// workers can pull them. Publication memoizes by trace identity — a
// sweep publishes each recording once, not once per task — and the
// live *trace.Trace is retained alongside the bytes so local fallback
// never re-decodes.
type artifactStore struct {
	maxEntries int

	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List              // front = most recently used
	byTrace map[*trace.Trace]string // publish memo

	published atomic.Int64
	pulls     *obs.Counter // artifact GETs served to workers
}

type artifactEntry struct {
	id  string
	enc []byte
	tr  *trace.Trace
}

func newArtifactStore(maxEntries int) *artifactStore {
	if maxEntries <= 0 {
		maxEntries = defaultArtifactEntries
	}
	return &artifactStore{
		maxEntries: maxEntries,
		entries:    map[string]*list.Element{},
		order:      list.New(),
		byTrace:    map[*trace.Trace]string{},
		pulls:      obs.NewCounter("sdvd_cluster_artifact_pulls_total"),
	}
}

// publish encodes tr (once per trace) and stores the bytes under their
// content address.
func (s *artifactStore) publish(tr *trace.Trace) (string, error) {
	s.mu.Lock()
	if id, ok := s.byTrace[tr]; ok {
		s.mu.Unlock()
		return id, nil
	}
	s.mu.Unlock()
	// Encode outside the lock: recordings run to megabytes. A concurrent
	// duplicate publish of the same trace encodes twice and converges on
	// the same content address — wasteful but correct, and the memo makes
	// it rare.
	enc, err := tr.EncodeBytes()
	if err != nil {
		return "", err
	}
	id := trace.ContentID(enc)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byTrace[tr] = id
	if el, ok := s.entries[id]; ok {
		s.order.MoveToFront(el)
		return id, nil
	}
	s.entries[id] = s.order.PushFront(&artifactEntry{id: id, enc: enc, tr: tr})
	s.published.Add(1)
	for s.order.Len() > s.maxEntries {
		tail := s.order.Back()
		e := tail.Value.(*artifactEntry)
		s.order.Remove(tail)
		delete(s.entries, e.id)
		delete(s.byTrace, e.tr)
	}
	return id, nil
}

// get returns the encoded artifact, counting the pull.
func (s *artifactStore) get(id string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[id]
	if !ok {
		return nil, false
	}
	s.order.MoveToFront(el)
	return el.Value.(*artifactEntry).enc, true
}

// len reports stored artifact count.
func (s *artifactStore) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}
