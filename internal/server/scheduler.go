package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"specvec/internal/experiments"
	"specvec/internal/obs"
	"specvec/internal/profile"
	"specvec/internal/workload"
	"specvec/internal/wspec"
)

// ErrQueueFull rejects submissions when the bounded job queue is at
// capacity; clients should retry with backoff (the HTTP layer maps it to
// 503 + Retry-After).
var ErrQueueFull = errors.New("server: job queue full")

// ErrShutdown rejects submissions after Close.
var ErrShutdown = errors.New("server: shutting down")

// scheduler owns the bounded job queue and the worker pool that drains
// it. Each job executes on its own experiments.Runner (bounded to
// SimWorkers concurrent simulations) with its own cancellable context;
// results flow through the content-addressed cache, so identical specs —
// concurrent or repeated — simulate at most once.
type scheduler struct {
	cache   *Cache
	traces  *traceCache
	workers int // per-job simulation workers
	gang    int // gang replay mode for each job's Runner (Options.Gang)
	// remote, when non-nil, is the cluster placement layer every job's
	// replay work dispatches through (set on a coordinator). Execution
	// shape only: results and cache keys are unaffected.
	remote  experiments.RemoteShards
	history int // terminal jobs retained in the registry
	logf    func(format string, args ...any)

	baseCtx context.Context
	stop    context.CancelFunc
	queue   chan *Job
	wg      sync.WaitGroup

	mu     sync.Mutex
	closed bool // set by Close under mu; rejects further submissions
	jobs   map[string]*Job
	order  []string // submission order, for listing
	seq    int64

	// clock times jobs (queue wait, phase spans); tests inject a manual
	// one. The obs counters below carry their final /metrics names and
	// are registered by Server.buildRegistry.
	clock     obs.Clock
	metrics   *serverMetrics
	timelines *obs.TimelineStore // completed job span trees

	submitted, completed, failed, cancelled *obs.Counter
	running                                 *obs.Gauge

	// Runner counters aggregated across every job.
	sims, recorded, replayed, traceLoads *obs.Counter
	gangBatches, gangRuns                *obs.Counter
	decodedBlocks, decodedBlockLoads     *obs.Counter
	hotMu                                sync.Mutex
	hot                                  profile.HotStats
}

func newScheduler(jobWorkers, queueDepth, simWorkers, history int, cache *Cache, traces *traceCache, logf func(string, ...any)) *scheduler {
	if jobWorkers <= 0 {
		jobWorkers = 2
	}
	if queueDepth <= 0 {
		queueDepth = 64
	}
	if simWorkers <= 0 {
		simWorkers = runtime.GOMAXPROCS(0)
	}
	if history <= 0 {
		history = 512
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &scheduler{
		cache:     cache,
		traces:    traces,
		workers:   simWorkers,
		history:   history,
		logf:      logf,
		baseCtx:   ctx,
		stop:      stop,
		queue:     make(chan *Job, queueDepth),
		jobs:      map[string]*Job{},
		clock:     obs.RealClock(),
		metrics:   newServerMetrics(),
		timelines: obs.NewTimelineStore(history),

		submitted: obs.NewCounter("sdvd_jobs_submitted_total"),
		completed: obs.NewCounter("sdvd_jobs_completed_total"),
		failed:    obs.NewCounter("sdvd_jobs_failed_total"),
		cancelled: obs.NewCounter("sdvd_jobs_cancelled_total"),
		running:   obs.NewGauge("sdvd_jobs_running"),

		sims:              obs.NewCounter("sdvd_sims_total"),
		recorded:          obs.NewCounter("sdvd_trace_recordings_total"),
		replayed:          obs.NewCounter("sdvd_trace_replays_total"),
		traceLoads:        obs.NewCounter("sdvd_runner_trace_loads_total"),
		gangBatches:       obs.NewCounter("sdvd_gang_batches_total"),
		gangRuns:          obs.NewCounter("sdvd_gang_runs_total"),
		decodedBlocks:     obs.NewCounter("sdvd_gang_decoded_blocks_total"),
		decodedBlockLoads: obs.NewCounter("sdvd_gang_decoded_block_loads_total"),
	}
	for i := 0; i < jobWorkers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Close stops the workers. Queued jobs resolve as cancelled; the running
// ones abort through their contexts. The closed flag is flipped under
// the same mutex Submit enqueues under, and the queue is drained again
// after the workers exit, so no job can slip in unresolved — a ?wait=1
// client never blocks on a job nobody will run.
func (s *scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.stop()
	s.wg.Wait()
	for {
		select {
		case job := <-s.queue:
			job.finish(nil, SourceComputed, ErrShutdown, true)
		default:
			return
		}
	}
}

// Submit queues a normalized spec. tied, when non-nil, is a request
// context the job is additionally bound to (an abandoned synchronous
// request cancels its job). Returns ErrQueueFull when the queue is at
// capacity.
func (s *scheduler) Submit(spec JobSpec, tied context.Context) (*Job, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrShutdown
	}
	s.seq++
	id := fmt.Sprintf("j%06d", s.seq)
	job := newJob(id, spec, spec.Key())
	job.tied = tied
	// The job's trace opens at submission: the root span is the job's
	// whole lifetime and queue-wait measures submission to pickup.
	job.trace = obs.NewTrace(id, s.clock, "job")
	job.queueSpan = job.trace.Start(obs.RootSpan, "queue-wait")
	// The job's context exists from submission so cancelling a queued job
	// works; the worker that eventually picks it up observes the
	// already-cancelled context and resolves it without simulating.
	job.ctx, job.cancel = context.WithCancel(s.baseCtx)
	// Enqueue under the mutex: the send never blocks (bounded channel,
	// non-blocking select) and holding mu here is what makes Close's
	// closed-then-drain sequence airtight.
	select {
	case s.queue <- job:
	default:
		s.mu.Unlock()
		job.cancel() // release the context before dropping the job
		return nil, ErrQueueFull
	}
	s.jobs[id] = job
	s.order = append(s.order, id)
	s.mu.Unlock()
	s.submitted.Add(1)
	s.logf("job %s queued: %s (key %.12s…)", id, spec.Title(), job.Key)
	return job, nil
}

// Job returns a job by id.
func (s *scheduler) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists every job in submission order.
func (s *scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// QueueDepth returns the number of jobs waiting for a worker.
func (s *scheduler) QueueDepth() int { return len(s.queue) }

func (s *scheduler) worker() {
	defer s.wg.Done()
	for {
		select {
		case job := <-s.queue:
			s.run(job)
		case <-s.baseCtx.Done():
			// Drain whatever is left so queued jobs resolve instead of
			// dangling.
			for {
				select {
				case job := <-s.queue:
					job.finish(nil, SourceComputed, ErrShutdown, true)
				default:
					return
				}
			}
		}
	}
}

// run executes one job to a terminal state.
func (s *scheduler) run(job *Job) {
	ctx := job.ctx
	defer job.cancel()
	if job.tied != nil {
		// A job submitted synchronously dies with its request: when the
		// client abandons the wait, the simulations stop burning workers.
		stop := context.AfterFunc(job.tied, job.cancel)
		defer stop()
	}

	job.setRunning()
	s.running.Add(1)
	defer s.running.Add(-1)

	tr := job.trace
	tr.End(job.queueSpan)
	s.metrics.queueWait.Observe(tr.Duration(job.queueSpan).Seconds())

	// cache-lookup covers the time before any computation: the memory
	// and disk checks, or — for a coalesced follower — the whole wait on
	// the in-flight leader. A true miss ends it the moment the compute
	// closure starts and opens the compute span in its place; the
	// trailing End is the idempotent no-op on that path.
	lookup := tr.Start(obs.RootSpan, "cache-lookup")
	val, src, err := s.cache.GetOrCompute(ctx, job.Key, func() ([]byte, error) {
		tr.End(lookup)
		comp := tr.Start(obs.RootSpan, "compute")
		defer tr.End(comp)
		cctx := obs.ContextWith(ctx, obs.SpanContext{T: tr, Span: comp})
		return s.compute(cctx, job)
	})
	tr.End(lookup)
	s.metrics.cacheLookup.Observe(tr.Duration(lookup).Seconds())

	cancelledErr := err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
	switch {
	case err == nil:
		s.completed.Add(1)
		s.logf("job %s %s (%s, %d bytes)", job.ID, StateDone, src, len(val))
	case cancelledErr:
		s.cancelled.Add(1)
		s.logf("job %s cancelled", job.ID)
	default:
		s.failed.Add(1)
		s.logf("job %s failed: %v", job.ID, err)
	}
	// The timeline is published before the job resolves: finish closes
	// job.done, which wakes synchronous submitters, and a client that
	// then GETs the timeline immediately must find it.
	state := StateDone
	switch {
	case cancelledErr:
		state = StateCancelled
	case err != nil:
		state = StateFailed
	}
	s.finishTimeline(job, state)
	job.finish(val, src, err, cancelledErr)
	s.prune()
}

// finishTimeline closes the job's trace, feeds the duration histograms
// and publishes the span tree to the timeline ring.
func (s *scheduler) finishTimeline(job *Job, state JobState) {
	tr := job.trace
	tr.Finish()
	kind := job.Spec.Kind
	s.metrics.jobDuration.With(kind, "total").Observe(tr.Duration(obs.RootSpan).Seconds())
	for _, sp := range tr.Snapshot() {
		if sp.Parent == obs.RootSpan && sp.End >= 0 {
			s.metrics.jobDuration.With(kind, sp.Name).Observe((sp.End - sp.Start).Seconds())
		}
	}
	s.timelines.Add(obs.NewTimeline(job.ID, kind, string(state), tr, s.clock.Now()))
}

// prune evicts the oldest terminal jobs past the retention bound, so a
// long-running daemon's registry — jobs carry their result bytes and
// event history — stays bounded by history + queue depth + workers
// (queued and running jobs are never evicted). Evicted job ids answer
// 404; their results remain reachable through the content-addressed
// cache by resubmitting the spec.
func (s *scheduler) prune() {
	s.mu.Lock()
	defer s.mu.Unlock()
	terminal := 0
	for _, id := range s.order {
		if s.jobs[id].State().Terminal() {
			terminal++
		}
	}
	if terminal <= s.history {
		return
	}
	keep := s.order[:0]
	for _, id := range s.order {
		if terminal > s.history && s.jobs[id].State().Terminal() {
			delete(s.jobs, id)
			terminal--
			continue
		}
		keep = append(keep, id)
	}
	s.order = keep
}

// compute runs the spec on a fresh Runner and encodes the Result. The
// runner's counters fold into the scheduler aggregates even on failure.
func (s *scheduler) compute(ctx context.Context, job *Job) ([]byte, error) {
	spec := job.Spec
	opts := experiments.Options{
		Scale:           spec.Scale,
		Seed:            spec.Seed,
		Workers:         s.workers,
		Shards:          spec.Shards,
		CheckpointEvery: spec.CheckpointEvery,
		Context:         ctx,
		Progress:        job.progressHook,
		Gang:            s.gang,
	}.WithDefaults()
	opts.Remote = s.remote
	// A job carrying a workload-spec payload resolves its generated
	// workloads through a per-job resolver, so concurrent jobs with
	// different spec files never observe each other's definitions, and
	// its trace artifacts are additionally scoped by the payload's hash
	// (same name, different definition, different recording).
	var specFile *wspec.File
	if spec.Specs != "" {
		f, err := wspec.Parse([]byte(spec.Specs))
		if err != nil {
			return nil, err
		}
		specFile = f
		compiled := map[string]workload.Benchmark{}
		for _, w := range f.Workloads {
			compiled[w.Name] = wspec.CompileSpec(w)
		}
		opts.Workloads = func(name string) (workload.Benchmark, error) {
			if b, ok := compiled[name]; ok {
				return b, nil
			}
			return workload.Get(name)
		}
	}
	if s.traces != nil {
		if spec.Specs != "" {
			sum := sha256.Sum256([]byte(spec.Specs))
			opts.Traces = s.traces.forOptionsWith(opts, hex.EncodeToString(sum[:6]))
		} else {
			opts.Traces = s.traces.forOptions(opts)
		}
	}
	runner := experiments.NewRunner(opts)
	defer s.collect(runner)

	res := Result{Spec: spec}
	switch spec.Kind {
	case KindExperiment:
		exp, err := experiments.Get(spec.Exp)
		if err != nil {
			return nil, err
		}
		tables, err := exp.Run(runner)
		if err != nil {
			return nil, err
		}
		res.Tables = tables
	case KindSim:
		cfg, err := configByName(spec.Config)
		if err != nil {
			return nil, err
		}
		st, err := runner.Run(cfg, spec.Workload)
		if err != nil {
			return nil, err
		}
		res.Stats = st
	case KindSweep:
		tables, err := experiments.SpecSweep(runner, specFile.Names())
		if err != nil {
			return nil, err
		}
		res.Tables = tables
	default:
		return nil, fmt.Errorf("server: unknown spec kind %q", spec.Kind)
	}
	return json.Marshal(res)
}

// collect folds a finished runner's counters into the scheduler
// aggregates (served at /metrics).
func (s *scheduler) collect(r *experiments.Runner) {
	s.sims.Add(r.Simulations())
	s.recorded.Add(r.TraceRecordings())
	s.replayed.Add(r.TraceReplays())
	s.traceLoads.Add(r.TraceLoads())
	s.gangBatches.Add(r.GangBatches())
	s.gangRuns.Add(r.GangRuns())
	s.decodedBlocks.Add(r.DecodedBlocks())
	s.decodedBlockLoads.Add(r.DecodedBlockLoads())
	s.hotMu.Lock()
	s.hot.Add(r.HotStats())
	s.hotMu.Unlock()
}

// hotStats returns the aggregated pipeline pool counters.
func (s *scheduler) hotStats() profile.HotStats {
	s.hotMu.Lock()
	defer s.hotMu.Unlock()
	return s.hot
}
