package stats

import (
	"reflect"
	"testing"
)

// TestHistogramCountContract pins the documented out-of-range rule:
// every index outside [0, len) — negative ones included — reads the
// shared overflow bucket, mirroring where Add routes such indexes.
func TestHistogramCountContract(t *testing.T) {
	h := NewHistogram(3)
	h.Add(0)
	h.AddN(2, 5)
	h.Add(-1) // overflow
	h.Add(3)  // overflow
	h.Add(7)  // overflow

	if got := h.Count(0); got != 1 {
		t.Errorf("Count(0) = %d, want 1", got)
	}
	if got := h.Count(2); got != 5 {
		t.Errorf("Count(2) = %d, want 5", got)
	}
	for _, i := range []int{-1, -100, 3, 4, 1 << 20} {
		if got := h.Count(i); got != 3 {
			t.Errorf("Count(%d) = %d, want the overflow bucket (3)", i, got)
		}
	}
	if got := h.Total(); got != 9 {
		t.Errorf("Total() = %d, want 9", got)
	}
	if got := h.Fraction(-1); got != 3.0/9.0 {
		t.Errorf("Fraction(-1) = %v, want 3/9", got)
	}
}

// TestHistogramMergeMismatch pins Merge's behaviour for mismatched
// bucket counts: counts beyond the receiver's range spill into its
// overflow, and a shorter source leaves the extra buckets untouched —
// nothing is dropped in either direction.
func TestHistogramMergeMismatch(t *testing.T) {
	short := NewHistogram(2)
	short.Add(0)
	short.Add(1)
	short.Add(5) // overflow

	long := NewHistogram(4)
	long.AddN(0, 10)
	long.AddN(2, 20)
	long.AddN(3, 30)
	long.AddN(-1, 40)

	sum := short.Clone()
	sum.Merge(long)
	if want := []uint64{11, 1}; !reflect.DeepEqual(sum.Buckets, want) {
		t.Errorf("short+long buckets = %v, want %v", sum.Buckets, want)
	}
	// long's buckets 2 and 3 spill into overflow alongside both overflows.
	if want := uint64(1 + 20 + 30 + 40); sum.Overflow != want {
		t.Errorf("short+long overflow = %d, want %d", sum.Overflow, want)
	}
	if sum.Total() != short.Total()+long.Total() {
		t.Errorf("merge dropped counts: %d != %d", sum.Total(), short.Total()+long.Total())
	}

	sum2 := long.Clone()
	sum2.Merge(short)
	if want := []uint64{11, 1, 20, 30}; !reflect.DeepEqual(sum2.Buckets, want) {
		t.Errorf("long+short buckets = %v, want %v", sum2.Buckets, want)
	}
	if sum2.Total() != short.Total()+long.Total() {
		t.Errorf("merge dropped counts: %d != %d", sum2.Total(), short.Total()+long.Total())
	}
}

// fillSim sets every uint64 field of a Sim to a distinct value and puts
// distinct counts into every histogram, reflectively, so the test keeps
// covering fields added later.
func fillSim(t *testing.T, s *Sim, base uint64) {
	t.Helper()
	v := reflect.ValueOf(s).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Uint64:
			f.SetUint(base + uint64(i))
		case reflect.Pointer:
			h, ok := f.Interface().(*Histogram)
			if !ok {
				t.Fatalf("Sim field %s is a pointer but not a *Histogram", v.Type().Field(i).Name)
			}
			for j := range h.Buckets {
				h.Buckets[j] = base + uint64(i*10+j)
			}
			h.Overflow = base + uint64(i)
		default:
			t.Fatalf("Sim field %s has kind %s; Clone/Merge/Sub and this test must learn it",
				v.Type().Field(i).Name, f.Kind())
		}
	}
}

// TestSimFieldCoverage drives Clone, Merge and Sub over a Sim whose
// every field is populated: merge-then-subtract must round-trip back to
// the original, and Clone must be deep (mutating the clone's histograms
// leaves the original alone).
func TestSimFieldCoverage(t *testing.T) {
	a, b := New(), New()
	fillSim(t, a, 1000)
	fillSim(t, b, 55)

	orig := a.Clone()
	if !reflect.DeepEqual(orig, a) {
		t.Fatal("clone differs from original")
	}
	orig.StrideHist.Add(0)
	if reflect.DeepEqual(orig.StrideHist, a.StrideHist) {
		t.Fatal("clone shares histogram storage with the original")
	}

	sum := a.Clone()
	sum.Merge(b)
	if sum.Cycles != a.Cycles+b.Cycles {
		t.Errorf("merged Cycles = %d, want %d", sum.Cycles, a.Cycles+b.Cycles)
	}
	if got := sum.StrideHist.Count(1); got != a.StrideHist.Count(1)+b.StrideHist.Count(1) {
		t.Errorf("merged StrideHist[1] = %d", got)
	}
	sum.Sub(b)
	if !reflect.DeepEqual(sum, a) {
		t.Error("merge then subtract does not round-trip")
	}
}
