package stats

import (
	"fmt"
	"reflect"
)

// This file gives Sim interval arithmetic for checkpointed sharded runs
// (internal/experiments): a shard measures (final − at-warmup-end) and a
// sharded sweep sums the per-interval deltas. The operations walk Sim's
// fields reflectively so a counter added later is combined automatically
// — an unsupported field kind panics instead of being silently dropped,
// and TestSimFieldCoverage exercises every field to keep that loud.

// Clone returns a deep copy of s, histograms included.
func (s *Sim) Clone() *Sim {
	out := *s
	v := reflect.ValueOf(&out).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		if f.Kind() == reflect.Pointer {
			f.Set(reflect.ValueOf(histogramField(v.Type().Field(i).Name, f).Clone()))
		}
	}
	return &out
}

// Merge adds every counter and histogram of other into s. Sharded runs
// use it to combine per-interval results; ratio metrics (IPC, rates,
// fractions) are then computed from the merged sums, never averaged.
func (s *Sim) Merge(other *Sim) { s.combine(other, false) }

// Sub subtracts base from s field by field. Counters grow monotonically
// during a run, so subtracting the snapshot taken at the end of a warmup
// window isolates the measured interval.
func (s *Sim) Sub(base *Sim) { s.combine(base, true) }

func (s *Sim) combine(o *Sim, sub bool) {
	sv := reflect.ValueOf(s).Elem()
	ov := reflect.ValueOf(o).Elem()
	for i := 0; i < sv.NumField(); i++ {
		f, g := sv.Field(i), ov.Field(i)
		switch f.Kind() {
		case reflect.Uint64:
			if sub {
				f.SetUint(f.Uint() - g.Uint())
			} else {
				f.SetUint(f.Uint() + g.Uint())
			}
		case reflect.Pointer:
			h := histogramField(sv.Type().Field(i).Name, f)
			hg := histogramField(sv.Type().Field(i).Name, g)
			if sub {
				h.Sub(hg)
			} else {
				h.Merge(hg)
			}
		default:
			panic(fmt.Sprintf("stats: Sim field %s has kind %s; teach Clone/Merge/Sub about it",
				sv.Type().Field(i).Name, f.Kind()))
		}
	}
}

func histogramField(name string, v reflect.Value) *Histogram {
	h, ok := v.Interface().(*Histogram)
	if !ok {
		panic(fmt.Sprintf("stats: Sim field %s is a pointer but not a *Histogram", name))
	}
	return h
}
