// Package stats collects the simulator's counters and histograms.
//
// One Sim value is shared by the pipeline, caches, predictor and SDV
// engine for a run; the experiments package derives every figure of the
// paper from these fields. Histograms are fixed-bucket (no allocation on
// the simulation hot path), and some counters are incremented
// speculatively at decode and decremented through the journal on a squash
// — see the PushDec records in internal/core.
package stats
