package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-bucket counter with an overflow bucket.
type Histogram struct {
	Buckets  []uint64
	Overflow uint64
}

// NewHistogram returns a histogram with n buckets [0,n).
func NewHistogram(n int) *Histogram { return &Histogram{Buckets: make([]uint64, n)} }

// Add increments bucket i (negative or >= len counts as overflow).
func (h *Histogram) Add(i int) { h.AddN(i, 1) }

// AddN adds n to bucket i.
func (h *Histogram) AddN(i int, n uint64) {
	if i < 0 || i >= len(h.Buckets) {
		h.Overflow += n
		return
	}
	h.Buckets[i] += n
}

// Count returns the count in bucket i. Every out-of-range index —
// negative indexes included — addresses the single shared overflow
// bucket, mirroring Add/AddN which route the same indexes there;
// Count(-1) is the idiomatic read of the overflow count (Figure 1's
// "other" column uses it via Fraction). TestHistogramCountContract pins
// this.
func (h *Histogram) Count(i int) uint64 {
	if i < 0 || i >= len(h.Buckets) {
		return h.Overflow
	}
	return h.Buckets[i]
}

// Total returns the sum over all buckets including overflow.
func (h *Histogram) Total() uint64 {
	t := h.Overflow
	for _, b := range h.Buckets {
		t += b
	}
	return t
}

// Fraction returns bucket i's share of the total (0 if empty).
func (h *Histogram) Fraction(i int) float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	return float64(h.Count(i)) / float64(t)
}

// Merge adds other's counts into h. Mismatched bucket counts are
// tolerated: counts from buckets beyond h's range spill into h's
// overflow (exactly where AddN would have put them), so no count is ever
// dropped. TestHistogramMergeMismatch pins this.
func (h *Histogram) Merge(other *Histogram) {
	for i, b := range other.Buckets {
		if i < len(h.Buckets) {
			h.Buckets[i] += b
		} else {
			h.Overflow += b
		}
	}
	h.Overflow += other.Overflow
}

// Clone returns a deep copy of h.
func (h *Histogram) Clone() *Histogram {
	return &Histogram{Buckets: append([]uint64(nil), h.Buckets...), Overflow: h.Overflow}
}

// Sub subtracts other's counts from h. Both histograms must have the
// same bucket count and other must be an earlier snapshot of h (counts
// only grow during a run), so the difference isolates an interval.
func (h *Histogram) Sub(other *Histogram) {
	for i, b := range other.Buckets {
		h.Buckets[i] -= b
	}
	h.Overflow -= other.Overflow
}

// Sim aggregates all counters for one simulation run.
type Sim struct {
	// Core progress.
	Cycles    uint64
	Committed uint64 // architectural instructions committed
	Fetched   uint64
	Squashed  uint64 // instructions flushed by store-conflict squashes

	// Instruction mix (committed).
	CommittedLoads    uint64
	CommittedStores   uint64
	CommittedBranches uint64
	CommittedArith    uint64

	// Branch prediction.
	BranchMispredicts uint64
	JumpMispredicts   uint64

	// Memory system.
	MemAccesses     uint64 // data-port acquisitions (the paper's "memory requests")
	ScalarAccesses  uint64 // accesses serving scalar loads/stores
	VectorAccesses  uint64 // accesses issued by vector load instances
	StoreAccesses   uint64
	LoadsMerged     uint64 // extra loads served by an already-issued wide access
	PortBusyCycles  uint64 // sum over ports of busy cycles
	L1DHits         uint64
	L1DMisses       uint64
	L1IHits         uint64
	L1IMisses       uint64
	L2Hits          uint64
	L2Misses        uint64
	Writebacks      uint64
	MSHRStallCycles uint64

	// Stride profile (Figure 1): bucket = |stride| in elements, 0..9.
	StrideHist *Histogram

	// Dynamic vectorization (Figures 3, 14).
	VectorLoadInstances  uint64 // vector load instances dispatched
	VectorArithInstances uint64 // vector arithmetic instances dispatched
	LoadValidations      uint64 // committed load validations
	ArithValidations     uint64 // committed arithmetic validations
	ValidationFailures   uint64 // validations that fell back to scalar
	StoreConflicts       uint64 // stores hitting a vector register range (§3.6)
	VRegAllocFailures    uint64 // vectorization skipped: no free register
	DecodeBlockCycles    uint64 // decode stalls on not-ready scalar operand (Fig. 7)

	// Vector element accounting (Figure 15), accumulated at register free.
	ElemsComputedUsed   uint64
	ElemsComputedUnused uint64
	ElemsNotComputed    uint64
	VRegsFreed          uint64

	// Offsets of vector source operands (Figure 9).
	VectorInstsOffsetZero    uint64
	VectorInstsOffsetNonZero uint64

	// Wide-bus effectiveness (Figure 13): buckets 1..4 words useful; bucket
	// 0 counts speculative accesses whose words were never used.
	WideBusWords *Histogram

	// Control independence (Figure 10): among the first 100 instructions
	// after each mispredicted branch, how many were reusable validations.
	PostMispredictInsts  uint64
	PostMispredictReused uint64
}

// New returns a Sim with histograms allocated.
func New() *Sim {
	return &Sim{
		StrideHist:   NewHistogram(10),
		WideBusWords: NewHistogram(5),
	}
}

// IPC returns committed instructions per cycle.
func (s *Sim) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// PortOccupancy returns the busy fraction of the data ports given the
// number of ports in the configuration.
func (s *Sim) PortOccupancy(ports int) float64 {
	if s.Cycles == 0 || ports == 0 {
		return 0
	}
	return float64(s.PortBusyCycles) / float64(s.Cycles*uint64(ports))
}

// BranchMispredictRate returns mispredicts per committed branch.
func (s *Sim) BranchMispredictRate() float64 {
	if s.CommittedBranches == 0 {
		return 0
	}
	return float64(s.BranchMispredicts) / float64(s.CommittedBranches)
}

// Validations returns total committed validations.
func (s *Sim) Validations() uint64 { return s.LoadValidations + s.ArithValidations }

// ValidationFraction returns the share of committed instructions that were
// turned into validations (Figure 14).
func (s *Sim) ValidationFraction() float64 {
	if s.Committed == 0 {
		return 0
	}
	return float64(s.Validations()) / float64(s.Committed)
}

// MemRequestsPerInst returns data-port requests per committed instruction,
// the metric behind the paper's "15%/20% fewer memory requests".
func (s *Sim) MemRequestsPerInst() float64 {
	if s.Committed == 0 {
		return 0
	}
	return float64(s.MemAccesses) / float64(s.Committed)
}

// ElemAverages returns the Figure 15 triple averaged per freed vector
// register: computed&used, computed-not-used, not-computed.
func (s *Sim) ElemAverages() (used, unused, notComp float64) {
	if s.VRegsFreed == 0 {
		return 0, 0, 0
	}
	n := float64(s.VRegsFreed)
	return float64(s.ElemsComputedUsed) / n,
		float64(s.ElemsComputedUnused) / n,
		float64(s.ElemsNotComputed) / n
}

// ControlIndepFraction returns the Figure 10 metric.
func (s *Sim) ControlIndepFraction() float64 {
	if s.PostMispredictInsts == 0 {
		return 0
	}
	return float64(s.PostMispredictReused) / float64(s.PostMispredictInsts)
}

// OffsetNonZeroFraction returns the Figure 9 metric.
func (s *Sim) OffsetNonZeroFraction() float64 {
	total := s.VectorInstsOffsetZero + s.VectorInstsOffsetNonZero
	if total == 0 {
		return 0
	}
	return float64(s.VectorInstsOffsetNonZero) / float64(total)
}

// String renders a readable multi-line summary.
func (s *Sim) String() string {
	var sb strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&sb, format+"\n", args...) }
	w("cycles               %12d", s.Cycles)
	w("committed            %12d  (IPC %.3f)", s.Committed, s.IPC())
	w("  loads              %12d", s.CommittedLoads)
	w("  stores             %12d", s.CommittedStores)
	w("  branches           %12d  (mispredict rate %.2f%%)",
		s.CommittedBranches, 100*s.BranchMispredictRate())
	w("mem requests         %12d  (%.3f per inst)", s.MemAccesses, s.MemRequestsPerInst())
	w("  scalar/vector/store %11s", fmt.Sprintf("%d/%d/%d", s.ScalarAccesses, s.VectorAccesses, s.StoreAccesses))
	w("  merged wide loads  %12d", s.LoadsMerged)
	w("L1D hits/misses      %12d / %d", s.L1DHits, s.L1DMisses)
	w("validations          %12d  (%.1f%% of committed)", s.Validations(), 100*s.ValidationFraction())
	w("  load/arith         %12s", fmt.Sprintf("%d/%d", s.LoadValidations, s.ArithValidations))
	w("  failures           %12d", s.ValidationFailures)
	w("vector instances     %12d  (load %d, arith %d)",
		s.VectorLoadInstances+s.VectorArithInstances, s.VectorLoadInstances, s.VectorArithInstances)
	w("store conflicts      %12d", s.StoreConflicts)
	used, unused, notComp := s.ElemAverages()
	w("vreg elements        used %.2f / unused %.2f / not computed %.2f", used, unused, notComp)
	return sb.String()
}

// Ratio is a small helper for safe division used across experiments.
func Ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// GeoMean returns the geometric mean of xs, ignoring non-positive entries.
func GeoMean(xs []float64) float64 {
	prod, n := 1.0, 0
	for _, x := range xs {
		if x > 0 {
			prod *= x
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Pow(prod, 1/float64(n))
}

// SortedKeys returns map keys in sorted order (deterministic reports).
func SortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
