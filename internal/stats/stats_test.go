package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(4)
	h.Add(0)
	h.Add(3)
	h.Add(3)
	h.Add(9)  // overflow
	h.Add(-1) // overflow
	if h.Count(3) != 2 || h.Count(0) != 1 {
		t.Errorf("counts: %+v", h)
	}
	if h.Overflow != 2 {
		t.Errorf("overflow = %d, want 2", h.Overflow)
	}
	if h.Total() != 5 {
		t.Errorf("total = %d, want 5", h.Total())
	}
	if got := h.Fraction(3); got != 0.4 {
		t.Errorf("fraction(3) = %v, want 0.4", got)
	}
}

func TestHistogramTotalProperty(t *testing.T) {
	f := func(adds []uint8) bool {
		h := NewHistogram(8)
		for _, a := range adds {
			h.Add(int(a) % 12)
		}
		return h.Total() == uint64(len(adds))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(3), NewHistogram(3)
	a.Add(0)
	b.Add(0)
	b.Add(2)
	b.Add(5)
	a.Merge(b)
	if a.Count(0) != 2 || a.Count(2) != 1 || a.Overflow != 1 {
		t.Errorf("merged = %+v", a)
	}
}

func TestDerivedMetrics(t *testing.T) {
	s := New()
	s.Cycles = 100
	s.Committed = 250
	if got := s.IPC(); got != 2.5 {
		t.Errorf("IPC = %v", got)
	}
	s.PortBusyCycles = 50
	if got := s.PortOccupancy(2); got != 0.25 {
		t.Errorf("occupancy = %v", got)
	}
	s.LoadValidations, s.ArithValidations = 30, 20
	if got := s.ValidationFraction(); got != 0.2 {
		t.Errorf("validation fraction = %v", got)
	}
	s.MemAccesses = 125
	if got := s.MemRequestsPerInst(); got != 0.5 {
		t.Errorf("mem requests per inst = %v", got)
	}
}

func TestZeroDivisionSafety(t *testing.T) {
	s := New()
	for name, v := range map[string]float64{
		"IPC":        s.IPC(),
		"occupancy":  s.PortOccupancy(4),
		"validation": s.ValidationFraction(),
		"mispredict": s.BranchMispredictRate(),
		"controlind": s.ControlIndepFraction(),
		"offsets":    s.OffsetNonZeroFraction(),
		"memreq":     s.MemRequestsPerInst(),
	} {
		if v != 0 || math.IsNaN(v) {
			t.Errorf("%s on empty stats = %v, want 0", name, v)
		}
	}
	u, un, nc := s.ElemAverages()
	if u != 0 || un != 0 || nc != 0 {
		t.Error("ElemAverages on empty stats non-zero")
	}
}

func TestElemAverages(t *testing.T) {
	s := New()
	s.VRegsFreed = 4
	s.ElemsComputedUsed = 7
	s.ElemsComputedUnused = 8
	s.ElemsNotComputed = 1
	u, un, nc := s.ElemAverages()
	if u != 1.75 || un != 2.0 || nc != 0.25 {
		t.Errorf("averages = %v/%v/%v", u, un, nc)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %v", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v", got)
	}
	if got := GeoMean([]float64{0, -1}); got != 0 {
		t.Errorf("GeoMean nonpositive = %v", got)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("Ratio div by zero")
	}
	if Ratio(3, 4) != 0.75 {
		t.Error("Ratio(3,4)")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("SortedKeys = %v", got)
	}
}

func TestStringRendersKeyFields(t *testing.T) {
	s := New()
	s.Cycles = 10
	s.Committed = 20
	out := s.String()
	for _, want := range []string{"IPC 2.000", "validations", "store conflicts"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q", want)
		}
	}
}
