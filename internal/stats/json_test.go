package stats

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// fillDistinct sets every Sim field to a distinct non-zero value so a
// round-trip that drops or swaps any field is caught.
func fillDistinct(t *testing.T) *Sim {
	t.Helper()
	s := New()
	v := reflect.ValueOf(s).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Uint64:
			f.SetUint(uint64(1000 + i))
		case reflect.Pointer:
			h := &Histogram{Buckets: make([]uint64, 3+i%3), Overflow: uint64(7 + i)}
			for j := range h.Buckets {
				h.Buckets[j] = uint64(100*i + j + 1)
			}
			f.Set(reflect.ValueOf(h))
		default:
			t.Fatalf("Sim field %s has kind %s; extend fillDistinct", v.Type().Field(i).Name, f.Kind())
		}
	}
	return s
}

func TestSimJSONRoundTrip(t *testing.T) {
	s := fillDistinct(t)
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got Sim
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(s, &got) {
		t.Fatalf("round trip diverged:\n in: %+v\nout: %+v", s, &got)
	}
}

// TestSimJSONStable asserts the encoding is deterministic and follows
// struct declaration order, so cached and freshly computed results are
// byte-comparable.
func TestSimJSONStable(t *testing.T) {
	s := fillDistinct(t)
	a, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	b, err := json.Marshal(s.Clone())
	if err != nil {
		t.Fatalf("marshal clone: %v", err)
	}
	if string(a) != string(b) {
		t.Fatalf("encoding not stable:\n%s\n%s", a, b)
	}
	typ := reflect.TypeOf(Sim{})
	want := -1
	for i := 0; i < typ.NumField(); i++ {
		at := strings.Index(string(a), `"`+typ.Field(i).Name+`":`)
		if at < 0 {
			t.Fatalf("field %s missing from encoding", typ.Field(i).Name)
		}
		if at < want {
			t.Fatalf("field %s out of declaration order", typ.Field(i).Name)
		}
		want = at
	}
}

func TestSimJSONUnknownField(t *testing.T) {
	var s Sim
	err := json.Unmarshal([]byte(`{"Cycles":1,"NotACounter":2}`), &s)
	if err == nil || !strings.Contains(err.Error(), "NotACounter") {
		t.Fatalf("want unknown-field error naming NotACounter, got %v", err)
	}
}

func TestSimJSONMissingFieldsZero(t *testing.T) {
	var s Sim
	if err := json.Unmarshal([]byte(`{"Cycles":42}`), &s); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if s.Cycles != 42 || s.Committed != 0 || s.StrideHist != nil {
		t.Fatalf("missing fields not zero: %+v", s)
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	h := &Histogram{Buckets: []uint64{1, 2, 3}, Overflow: 9}
	b, err := json.Marshal(h)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got Histogram
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(h, &got) {
		t.Fatalf("round trip diverged: %+v vs %+v", h, &got)
	}
}
