package stats

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
)

// randomSim fills every Sim field reflectively from rng — uint64
// counters get arbitrary values, histograms get arbitrary bucket counts
// plus overflow — so a counter added to Sim later is automatically part
// of the property without this test changing.
func randomSim(t *testing.T, rng *rand.Rand) *Sim {
	t.Helper()
	s := New()
	v := reflect.ValueOf(s).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Uint64:
			f.SetUint(uint64(rng.Int63n(1 << 40)))
		case reflect.Pointer:
			h := f.Interface().(*Histogram)
			for j := range h.Buckets {
				h.Buckets[j] = uint64(rng.Int63n(1 << 30))
			}
			h.Overflow = uint64(rng.Int63n(1 << 30))
		default:
			t.Fatalf("Sim field %s has kind %s; teach randomSim about it",
				v.Type().Field(i).Name, f.Kind())
		}
	}
	return s
}

// mergeAll folds sims into a fresh Sim in the given order, cloning each
// input so the fold never aliases or mutates them.
func mergeAll(sims []*Sim, order []int) *Sim {
	out := New()
	for _, i := range order {
		out.Merge(sims[i].Clone())
	}
	return out
}

func marshal(t *testing.T, s *Sim) string {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestMergeOrderIndependent is the distribution contract remote shard
// dispatch rests on: merging per-shard Sims must be commutative and
// associative, so the figures a sweep reports cannot depend on which
// cluster node finished which shard first. The property is checked at
// the serialized-bytes level — the same representation shard results
// cross the wire in.
func TestMergeOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(6)
		sims := make([]*Sim, n)
		for i := range sims {
			sims[i] = randomSim(t, rng)
		}
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		want := marshal(t, mergeAll(sims, order))
		for shuffle := 0; shuffle < 5; shuffle++ {
			rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
			if got := marshal(t, mergeAll(sims, order)); got != want {
				t.Fatalf("trial %d: merge order %v changes the result:\nwant %s\ngot  %s",
					trial, order, want, got)
			}
		}
		// Associativity: left fold vs right-grouped pairwise fold.
		right := sims[n-1].Clone()
		for i := n - 2; i >= 0; i-- {
			next := sims[i].Clone()
			next.Merge(right)
			right = next
		}
		acc := New()
		acc.Merge(right)
		if got := marshal(t, acc); got != want {
			t.Fatalf("trial %d: right-grouped merge diverges:\nwant %s\ngot  %s", trial, want, got)
		}
	}
}

// TestMergeDoesNotMutateOther pins that Merge only writes the receiver:
// the executor merges shard results it may also retain (requeue
// bookkeeping), so the argument must come back untouched.
func TestMergeDoesNotMutateOther(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, b := randomSim(t, rng), randomSim(t, rng)
	before := marshal(t, b)
	a.Merge(b)
	if after := marshal(t, b); after != before {
		t.Fatalf("Merge mutated its argument:\nbefore %s\nafter  %s", before, after)
	}
}
