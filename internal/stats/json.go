package stats

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
)

// This file gives Sim a stable JSON round-trip so simulation results are
// servable (internal/server, sdvexp -server): field names and order follow
// the struct declaration, uint64 counters encode as JSON numbers and
// histograms as {"Buckets":[...],"Overflow":n}. Like Clone/Merge/Sub
// (delta.go) the walk is reflective, so a counter added later is encoded
// automatically and an unsupported field kind panics instead of being
// silently dropped. Decoding is strict about unknown fields — a client and
// a daemon built from different module versions fail loudly instead of
// silently zeroing counters — but tolerates missing ones (an older
// producer simply has fewer counters; they stay zero).

// MarshalJSON encodes s as a single JSON object, one member per Sim field
// in declaration order.
func (s *Sim) MarshalJSON() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte('{')
	v := reflect.ValueOf(s).Elem()
	t := v.Type()
	for i := 0; i < v.NumField(); i++ {
		if i > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(&buf, "%q:", t.Field(i).Name)
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Uint64:
			fmt.Fprintf(&buf, "%d", f.Uint())
		case reflect.Pointer:
			b, err := json.Marshal(histogramField(t.Field(i).Name, f))
			if err != nil {
				return nil, err
			}
			buf.Write(b)
		default:
			panic(fmt.Sprintf("stats: Sim field %s has kind %s; teach MarshalJSON about it",
				t.Field(i).Name, f.Kind()))
		}
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}

// UnmarshalJSON decodes an object produced by MarshalJSON. Unknown members
// are an error; absent fields are left at their zero value.
func (s *Sim) UnmarshalJSON(b []byte) error {
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(b, &raw); err != nil {
		return fmt.Errorf("stats: decoding Sim: %w", err)
	}
	v := reflect.ValueOf(s).Elem()
	t := v.Type()
	for i := 0; i < v.NumField(); i++ {
		name := t.Field(i).Name
		msg, ok := raw[name]
		if !ok {
			continue
		}
		delete(raw, name)
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Uint64:
			var n uint64
			if err := json.Unmarshal(msg, &n); err != nil {
				return fmt.Errorf("stats: Sim field %s: %w", name, err)
			}
			f.SetUint(n)
		case reflect.Pointer:
			histogramField(name, f) // keep the *Histogram-only invariant loud
			var h *Histogram
			if err := json.Unmarshal(msg, &h); err != nil {
				return fmt.Errorf("stats: Sim field %s: %w", name, err)
			}
			f.Set(reflect.ValueOf(h))
		default:
			panic(fmt.Sprintf("stats: Sim field %s has kind %s; teach UnmarshalJSON about it",
				name, f.Kind()))
		}
	}
	if len(raw) > 0 {
		return fmt.Errorf("stats: unknown Sim field(s) in JSON: %v", SortedKeys(raw))
	}
	return nil
}
