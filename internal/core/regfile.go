package core

import (
	"fmt"
	"math/bits"

	"specvec/internal/stats"
)

// ElemState carries the per-element flags of Figure 8. The paper's R
// (Ready) flag is derived: an element is ready when it has been Computed
// by a functional unit or memory, or when it is Skipped — allocated below
// the instance's start offset and never to be produced (§3.4).
type ElemState struct {
	Computed   bool
	ComputedAt uint64 // cycle at which the element's data becomes available
	Skipped    bool
	V          bool // committed data: the element's validation committed
	U          bool // a validation is in flight for this element
	F          bool // architecturally dead: the next write to the logical dest committed
}

// Ready reports the paper's R flag.
func (e ElemState) Ready() bool { return e.Computed || e.Skipped }

// LineUse records one wide-bus line access made by a vector load instance
// and the element indices it supplied (Figure 13 accounting).
type LineUse struct {
	Line  uint64
	Elems []int
}

// VReg is one vector register with its allocation metadata: the MRBB tag
// (§3.3) and, for loads, the accessed address range (§3.6).
type VReg struct {
	id     int // index in the register file (set once at construction)
	InUse  bool
	Epoch  uint64 // bumped on every alloc/free; stale references compare epochs
	PC     uint64
	MRBB   uint64
	IsLoad bool
	Base   uint64 // address of element 0 (loads only)
	Stride int64  // bytes between elements (loads only)
	Start  int    // first element actually computed (initial offset, §3.4)
	Elems  []ElemState

	// pins counts in-flight vector instances reading this register as a
	// source; a pinned register is never reclaimed (the paper's vector
	// datapath holds the physical register until the instance drains).
	pins     int
	lineUses []LineUse
	// lineElems backs the Elems slices of lineUses, so AddLineUse can copy
	// the caller's (reusable) scratch without allocating per use.
	lineElems []int
}

// ElemAddr returns the predicted address of element i (loads).
func (r *VReg) ElemAddr(i int) uint64 { return r.Base + uint64(int64(i)*r.Stride) }

// AddrRange returns the inclusive first/last byte addresses of the
// register's elements (loads; §3.6's two range fields).
func (r *VReg) AddrRange(wordBytes int) (first, last uint64) {
	first = r.Base
	last = r.ElemAddr(len(r.Elems) - 1)
	if last < first {
		first, last = last, first
	}
	return first, last + uint64(wordBytes) - 1
}

// RegFile is the vector register file (Table 1: 128 registers of 4
// elements); unbounded mode grows on demand for the Figure 3 limit study.
type RegFile struct {
	regs      []VReg
	vl        int
	unbounded bool
	sim       *stats.Sim
	inUse     int

	// freeBits is a bitmap of free register ids (bit set = free), so Alloc
	// finds the lowest free id in O(words) instead of scanning every VReg.
	freeBits []uint64

	// Sweep memoization. A full Sweep scans every register and every
	// element; in steady state the file is often full with nothing
	// freeable, and decode retries the scan each time an allocation fails.
	// muts counts mutations that can change any register's freeability
	// (element flags, pins, allocations, releases); after a scan the
	// (muts, gmrbb) pair is recorded, and a repeat Sweep with the same
	// gmrbb and no intervening mutation returns 0 without scanning — the
	// previous pass already freed everything freeable at that state. Every
	// mutation path must bump muts, including journal rollbacks: undoAlloc
	// is reached through the RegFile, and the element-U undo record
	// carries the RegFile pointer for exactly this purpose.
	muts       uint64
	sweepMuts  uint64
	sweepGmrbb uint64
	sweepValid bool
}

// noteMut invalidates the Sweep memo; every mutation that can affect
// freeable must route through it.
func (rf *RegFile) noteMut() { rf.muts++ }

// NewRegFile builds a register file of n registers with vl elements each;
// n <= 0 selects unbounded mode.
func NewRegFile(n, vl int, sim *stats.Sim) *RegFile {
	rf := &RegFile{vl: vl, sim: sim}
	if n <= 0 {
		rf.unbounded = true
		return rf
	}
	rf.regs = make([]VReg, n)
	rf.freeBits = make([]uint64, (n+63)/64)
	for i := 0; i < n; i++ {
		rf.regs[i].id = i
		rf.freeBits[i/64] |= 1 << (i % 64)
	}
	return rf
}

func (rf *RegFile) markFree(id int)  { rf.freeBits[id/64] |= 1 << (id % 64) }
func (rf *RegFile) clearFree(id int) { rf.freeBits[id/64] &^= 1 << (id % 64) }

// VL returns the vector length.
func (rf *RegFile) VL() int { return rf.vl }

// InUse returns the number of allocated registers.
func (rf *RegFile) InUse() int { return rf.inUse }

// Cap returns the register count (grown count when unbounded).
func (rf *RegFile) Cap() int { return len(rf.regs) }

// Reg returns the register by id (read-mostly accessor for the pipeline).
func (rf *RegFile) Reg(id int) *VReg { return &rf.regs[id] }

// ValidRef reports whether (id, epoch) still names the same allocation.
func (rf *RegFile) ValidRef(id int, epoch uint64) bool {
	return id >= 0 && id < len(rf.regs) && rf.regs[id].InUse && rf.regs[id].Epoch == epoch
}

// Alloc claims a free register for the instruction at pc. start marks the
// first element that will actually be computed; earlier elements are
// Skipped (ready but never produced). Returns ok=false when no register is
// free (the instruction then stays scalar, §3.3). The allocation is
// journalled: undoing it frees the register and bumps the epoch so any
// in-flight vector instance's writes are discarded.
func (rf *RegFile) Alloc(seq, pc, mrbb uint64, isLoad bool, start int, j *Journal) (id int, epoch uint64, ok bool) {
	id = -1
	for w, word := range rf.freeBits {
		if word != 0 {
			id = w*64 + bits.TrailingZeros64(word)
			break
		}
	}
	if id < 0 {
		if !rf.unbounded {
			return -1, 0, false
		}
		rf.regs = append(rf.regs, VReg{id: len(rf.regs)})
		id = len(rf.regs) - 1
		if id/64 >= len(rf.freeBits) {
			rf.freeBits = append(rf.freeBits, 0)
		}
	}
	rf.clearFree(id)
	r := &rf.regs[id]
	r.Epoch++
	r.InUse = true
	r.PC = pc
	r.MRBB = mrbb
	r.IsLoad = isLoad
	r.Base, r.Stride = 0, 0
	r.Start = start
	r.lineUses = r.lineUses[:0]
	r.lineElems = r.lineElems[:0]
	if cap(r.Elems) < rf.vl {
		r.Elems = make([]ElemState, rf.vl)
	} else {
		r.Elems = r.Elems[:rf.vl]
		for i := range r.Elems {
			r.Elems[i] = ElemState{}
		}
	}
	for i := 0; i < start && i < rf.vl; i++ {
		r.Elems[i].Skipped = true
		r.Elems[i].F = true
	}
	rf.inUse++
	rf.noteMut()
	epoch = r.Epoch
	j.pushRegAlloc(seq, rf, id, epoch)
	return id, epoch, true
}

// undoAlloc is the journalled rollback of Alloc: free the register and
// bump its epoch so any in-flight vector instance's writes are discarded.
// A no-op when the allocation was already released (epoch moved on). The
// journal records the register by index — unbounded mode can reallocate
// the regs backing array between push and rewind, so a stored pointer
// would go stale.
func (rf *RegFile) undoAlloc(id int, epoch uint64) {
	r := &rf.regs[id]
	if r.InUse && r.Epoch == epoch {
		r.InUse = false
		r.Epoch++
		rf.inUse--
		rf.markFree(id)
		rf.noteMut()
	}
}

// SetRange records the address window of a vectorized load (§3.6).
func (rf *RegFile) SetRange(id int, base uint64, stride int64) {
	rf.regs[id].Base = base
	rf.regs[id].Stride = stride
}

// MarkComputed flags element elem as produced with its data available at
// cycle at; stale (id, epoch) references are ignored (the register was
// squashed and reallocated).
func (rf *RegFile) MarkComputed(id int, epoch uint64, elem int, at uint64) {
	if !rf.ValidRef(id, epoch) {
		return
	}
	e := &rf.regs[id].Elems[elem]
	e.Computed = true
	e.ComputedAt = at
	rf.noteMut()
}

// ElemReady reports whether element elem's data is available at cycle.
func (rf *RegFile) ElemReady(id int, epoch uint64, elem int, cycle uint64) bool {
	if !rf.ValidRef(id, epoch) {
		return false
	}
	e := rf.regs[id].Elems[elem]
	return e.Computed && e.ComputedAt <= cycle
}

// ElemScheduled reports whether element elem has been scheduled for
// production (its data may still be in flight).
func (rf *RegFile) ElemScheduled(id int, epoch uint64, elem int) bool {
	if !rf.ValidRef(id, epoch) {
		return false
	}
	return rf.regs[id].Elems[elem].Computed
}

// ClearUsed drops the U flag of element elem (a validation abandoned its
// claim by falling back to scalar execution).
func (rf *RegFile) ClearUsed(id int, epoch uint64, elem int) {
	if !rf.ValidRef(id, epoch) {
		return
	}
	rf.regs[id].Elems[elem].U = false
	rf.noteMut()
}

// Pin marks the register as a live source of an in-flight vector instance;
// pinned registers are exempt from reclamation.
func (rf *RegFile) Pin(id int, epoch uint64) {
	if rf.ValidRef(id, epoch) {
		rf.regs[id].pins++
		rf.noteMut()
	}
}

// Unpin releases a Pin.
func (rf *RegFile) Unpin(id int, epoch uint64) {
	if rf.ValidRef(id, epoch) && rf.regs[id].pins > 0 {
		rf.regs[id].pins--
		rf.noteMut()
	}
}

// AddLineUse records a wide-bus line access by a vector load (Figure 13).
// elems is copied: callers may reuse their scratch buffer.
func (rf *RegFile) AddLineUse(id int, epoch uint64, line uint64, elems []int) {
	if !rf.ValidRef(id, epoch) {
		return
	}
	r := &rf.regs[id]
	start := len(r.lineElems)
	r.lineElems = append(r.lineElems, elems...)
	r.lineUses = append(r.lineUses, LineUse{Line: line, Elems: r.lineElems[start:len(r.lineElems):len(r.lineElems)]})
}

// SetUsed marks a validation in flight for element elem (journalled; a
// squash must clear U again).
func (rf *RegFile) SetUsed(seq uint64, id int, epoch uint64, elem int, j *Journal) {
	if !rf.ValidRef(id, epoch) {
		return
	}
	e := &rf.regs[id].Elems[elem]
	j.pushElemU(seq, rf, e)
	e.U = true
	rf.noteMut()
}

// CommitValidation finalises element elem: V set, U cleared (§3.3).
// Commit-side effects are never journalled.
func (rf *RegFile) CommitValidation(id int, epoch uint64, elem int) {
	if !rf.ValidRef(id, epoch) {
		return
	}
	e := &rf.regs[id].Elems[elem]
	e.V = true
	e.U = false
	rf.noteMut()
}

// SetElemFree marks element elem architecturally dead (F flag): the next
// instruction writing the same logical destination committed.
func (rf *RegFile) SetElemFree(id int, epoch uint64, elem int) {
	if !rf.ValidRef(id, epoch) {
		return
	}
	rf.regs[id].Elems[elem].F = true
	rf.noteMut()
}

// freeable implements §3.3's two release conditions, fused into one pass:
// both require every element Ready, condition 1 additionally that every
// element is dead (F), condition 2 that the register's MRBB is no longer
// the global one and no element has a validation in flight or committed
// data still live (V without F).
func (r *VReg) freeable(gmrbb uint64) bool {
	if r.pins > 0 {
		return false
	}
	allDead := true
	stale := r.MRBB != gmrbb
	for i := range r.Elems {
		e := &r.Elems[i]
		if !e.Computed && !e.Skipped { // R flag
			return false
		}
		if !e.F {
			allDead = false
			if e.V {
				stale = false
			}
		}
		if e.U {
			stale = false
		}
	}
	return allDead || stale
}

// Sweep releases every register satisfying a free condition and folds its
// element outcome into the Figure 15 statistics. It returns the number
// freed. The VRMT is not consulted: a freed register that is still mapped
// is detected later through the epoch check. A Sweep repeated with the
// same gmrbb and no intervening mutation is answered from the memo
// without scanning: the previous pass freed everything freeable, so the
// outcome is 0 by construction.
//
//sdv:hotpath
func (rf *RegFile) Sweep(gmrbb uint64) int {
	if rf.sweepValid && rf.sweepGmrbb == gmrbb && rf.sweepMuts == rf.muts {
		return 0
	}
	freed := 0
	for i := range rf.regs {
		r := &rf.regs[i]
		if !r.InUse || !r.freeable(gmrbb) {
			continue
		}
		rf.release(r)
		freed++
	}
	// Record post-scan state: releases above bumped muts, and every
	// register left is unfreeable at this gmrbb until something mutates.
	rf.sweepValid = true
	rf.sweepGmrbb = gmrbb
	rf.sweepMuts = rf.muts
	return freed
}

// Finalize releases every remaining register at end of run so Figure 15
// accounting covers all allocations.
func (rf *RegFile) Finalize() {
	for i := range rf.regs {
		if rf.regs[i].InUse {
			rf.release(&rf.regs[i])
		}
	}
}

func (rf *RegFile) release(r *VReg) {
	for _, e := range r.Elems {
		switch {
		case e.V:
			rf.sim.ElemsComputedUsed++
		case e.Computed:
			rf.sim.ElemsComputedUnused++
		default:
			rf.sim.ElemsNotComputed++
		}
	}
	// Figure 13: attribute each wide-bus line access of a vectorized load
	// to the number of its words that were eventually validated.
	for _, lu := range r.lineUses {
		used := 0
		for _, el := range lu.Elems {
			if r.Elems[el].V {
				used++
			}
		}
		rf.sim.WideBusWords.Add(used) // bucket 0 = speculative, unused
	}
	rf.sim.VRegsFreed++
	r.InUse = false
	r.Epoch++
	r.pins = 0
	rf.inUse--
	rf.markFree(r.id)
	rf.noteMut()
}

// CheckStoreConflict scans allocated load registers for one that the
// committing store invalidates (§3.6). The [first,last] range fields act
// as the hardware's fast filter; within a hit, only elements whose data
// could still be consumed speculatively matter — §3.1 phrases the check
// per element ("the loaded element has not been invalidated by a
// succeeding store"), and an element whose validation has already
// committed (V set) was architecturally read before this store, so
// overwriting its address is harmless. Without the per-element refinement
// every read-modify-write loop (a[i] = f(a[i])) would squash once per
// iteration. Returns the conflicting register id, or -1.
func (rf *RegFile) CheckStoreConflict(addr uint64, wordBytes int) int {
	return rf.checkStoreConflict(addr, wordBytes, false)
}

// CheckStoreConflictRangeOnly applies only the coarse [first,last] filter
// of §3.6 with no per-element refinement (ablation studies).
func (rf *RegFile) CheckStoreConflictRangeOnly(addr uint64, wordBytes int) int {
	return rf.checkStoreConflict(addr, wordBytes, true)
}

func (rf *RegFile) checkStoreConflict(addr uint64, wordBytes int, rangeOnly bool) int {
	end := addr + uint64(wordBytes) - 1
	for i := range rf.regs {
		r := &rf.regs[i]
		if !r.InUse || !r.IsLoad {
			continue
		}
		first, last := r.AddrRange(wordBytes)
		if end < first || addr > last {
			continue
		}
		if rangeOnly {
			return i
		}
		for e := range r.Elems {
			es := &r.Elems[e]
			if es.V || es.Skipped {
				continue
			}
			ea := r.ElemAddr(e)
			if end >= ea && addr <= ea+uint64(wordBytes)-1 {
				return i
			}
		}
	}
	return -1
}

// String summarises occupancy (debugging).
func (rf *RegFile) String() string {
	return fmt.Sprintf("regfile{%d/%d in use, vl=%d}", rf.inUse, len(rf.regs), rf.vl)
}
