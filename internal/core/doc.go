// Package core implements the paper's contribution: the speculative
// dynamic vectorization engine that a superscalar pipeline consults at
// decode time.
//
// It contains the three hardware structures added by the paper (§3):
//
//   - TableOfLoads (TL): per-static-load stride history with a confidence
//     counter; when confidence reaches the threshold, the load becomes a
//     candidate for vectorization (§3.2, Figure 4).
//   - VRMT (Vector Register Map Table): maps the PC of a vectorized
//     instruction to its vector register, the next element to validate
//     (offset) and the source operands it was vectorized with (§3.2,
//     Figure 5).
//   - RegFile: the vector register file — 128 registers × 4 × 64-bit
//     elements, each element carrying the V/R/U/F flags, and each register
//     the MRBB tag and, for loads, the accessed address range used by the
//     store coherence check (§3.3, §3.6, Figure 8).
//
// A Journal records decode-time side effects so the pipeline can rewind
// them when a store/vector-register conflict squashes in-flight
// instructions (§3.6). Commit-time effects (V and F flags, register
// reclamation) are never rolled back and are not journalled.
//
// The pipeline package drives these structures; this package holds all
// state transitions so they can be unit- and property-tested in isolation.
package core
