package core

import "testing"

func TestVRMTInsertLookup(t *testing.T) {
	v := NewVRMT(64, 4)
	j := NewJournal()
	e := Entry{PC: 100, VReg: 5, Src1: Operand{Kind: OperandVector, VReg: 2}}
	v.Insert(0, e, j)
	got, ok := v.Lookup(100)
	if !ok || got.VReg != 5 || got.Src1.VReg != 2 {
		t.Errorf("lookup = %+v, %v", got, ok)
	}
	if _, ok := v.Lookup(101); ok {
		t.Error("phantom entry")
	}
}

func TestVRMTAdvanceAndRewind(t *testing.T) {
	v := NewVRMT(64, 4)
	j := NewJournal()
	v.Insert(0, Entry{PC: 100, VReg: 1}, j)
	v.Advance(1, 100, j)
	v.Advance(2, 100, j)
	if e, _ := v.Lookup(100); e.Offset != 2 {
		t.Errorf("offset = %d, want 2", e.Offset)
	}
	j.RewindTo(2)
	if e, _ := v.Lookup(100); e.Offset != 1 {
		t.Errorf("offset after rewind = %d, want 1", e.Offset)
	}
	j.RewindTo(0)
	if _, ok := v.Lookup(100); ok {
		t.Error("entry survived rewind past insert")
	}
}

func TestVRMTInvalidate(t *testing.T) {
	v := NewVRMT(64, 4)
	j := NewJournal()
	v.Insert(0, Entry{PC: 100, VReg: 1}, j)
	v.Invalidate(1, 100, j)
	if _, ok := v.Lookup(100); ok {
		t.Error("entry survived invalidate")
	}
	j.RewindTo(1)
	if _, ok := v.Lookup(100); !ok {
		t.Error("invalidate not undone by rewind")
	}
}

func TestVRMTInvalidateByVReg(t *testing.T) {
	v := NewVRMT(64, 4)
	j := NewJournal()
	v.Insert(0, Entry{PC: 100, VReg: 7}, j)
	v.Insert(1, Entry{PC: 200, VReg: 9}, j)
	pc, found := v.InvalidateByVReg(2, 7, j)
	if !found || pc != 100 {
		t.Errorf("InvalidateByVReg = %d, %v", pc, found)
	}
	if _, ok := v.Lookup(100); ok {
		t.Error("entry survived")
	}
	if _, ok := v.Lookup(200); !ok {
		t.Error("wrong entry removed")
	}
	if _, found := v.InvalidateByVReg(3, 42, j); found {
		t.Error("found non-existent vreg")
	}
}

func TestVRMTReinsertSamePC(t *testing.T) {
	v := NewVRMT(64, 4)
	j := NewJournal()
	v.Insert(0, Entry{PC: 100, VReg: 1, Offset: 3}, j)
	// Roll-over to a fresh register resets the offset.
	v.Insert(1, Entry{PC: 100, VReg: 2}, j)
	e, _ := v.Lookup(100)
	if e.VReg != 2 || e.Offset != 0 {
		t.Errorf("after reinsert: %+v", e)
	}
}

func TestVRMTEviction(t *testing.T) {
	v := NewVRMT(1, 2) // one set, two ways
	j := NewJournal()
	v.Insert(0, Entry{PC: 1, VReg: 1}, j)
	v.Insert(1, Entry{PC: 2, VReg: 2}, j)
	v.Lookup(1) // make PC 2 the LRU
	evicted, had := v.Insert(2, Entry{PC: 3, VReg: 3}, j)
	if !had || evicted.PC != 2 {
		t.Errorf("evicted = %+v, %v", evicted, had)
	}
	if _, ok := v.Lookup(2); ok {
		t.Error("victim still present")
	}
	if _, ok := v.Lookup(1); !ok {
		t.Error("MRU entry evicted")
	}
}

func TestVRMTUnbounded(t *testing.T) {
	v := NewVRMT(0, 0)
	j := NewJournal()
	for pc := uint64(0); pc < 3000; pc++ {
		if _, had := v.Insert(pc, Entry{PC: pc, VReg: int(pc)}, j); had {
			t.Fatal("unbounded VRMT evicted")
		}
	}
	for pc := uint64(0); pc < 3000; pc++ {
		if e, ok := v.Lookup(pc); !ok || e.VReg != int(pc) {
			t.Fatalf("entry %d missing", pc)
		}
	}
}

func TestOperandMatches(t *testing.T) {
	cases := []struct {
		a, b Operand
		want bool
	}{
		{Operand{Kind: OperandVector, VReg: 3}, Operand{Kind: OperandVector, VReg: 3}, true},
		{Operand{Kind: OperandVector, VReg: 3}, Operand{Kind: OperandVector, VReg: 4}, false},
		{Operand{Kind: OperandScalar, Value: 9}, Operand{Kind: OperandScalar, Value: 9}, true},
		{Operand{Kind: OperandScalar, Value: 9}, Operand{Kind: OperandScalar, Value: 8}, false},
		{Operand{Kind: OperandImm, Value: 1}, Operand{Kind: OperandImm, Value: 1}, true},
		{Operand{Kind: OperandScalar, Value: 9}, Operand{Kind: OperandVector, VReg: 9}, false},
		{Operand{Kind: OperandNone}, Operand{Kind: OperandNone}, true},
	}
	for i, c := range cases {
		if got := c.a.Matches(c.b); got != c.want {
			t.Errorf("case %d: Matches = %v, want %v", i, got, c.want)
		}
	}
}

func TestStorageAuditMatchesPaper(t *testing.T) {
	s := StorageBytes(128, 4, 64, 4, 512, 4)
	if s.VRFBytes != 4096 {
		t.Errorf("VRF = %d, want 4096", s.VRFBytes)
	}
	if s.VRMTBytes != 4608 {
		t.Errorf("VRMT = %d, want 4608", s.VRMTBytes)
	}
	if s.TLBytes != 49152 {
		t.Errorf("TL = %d, want 49152", s.TLBytes)
	}
	if s.Total() != 57856 { // the paper rounds to "56 Kbytes"
		t.Errorf("total = %d, want 57856", s.Total())
	}
	if s.Total()/1024 != 56 {
		t.Errorf("total KB = %d, want 56", s.Total()/1024)
	}
}
