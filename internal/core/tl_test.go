package core

import (
	"testing"
	"testing/quick"
)

func TestTLStrideZeroFiresOnThird(t *testing.T) {
	tl := NewTL(512, 4, 2)
	j := NewJournal()
	obs := tl.Observe(0, 100, 0x1000, j)
	if !obs.FirstSeen || obs.Confident {
		t.Errorf("first: %+v", obs)
	}
	obs = tl.Observe(1, 100, 0x1000, j)
	if obs.Confident || obs.Stride != 0 {
		t.Errorf("second: %+v", obs)
	}
	obs = tl.Observe(2, 100, 0x1000, j)
	if !obs.Confident || obs.Stride != 0 {
		t.Errorf("third (stride 0) should be confident: %+v", obs)
	}
}

func TestTLNonZeroStrideFiresOnFourth(t *testing.T) {
	tl := NewTL(512, 4, 2)
	j := NewJournal()
	// Stride 8: insert, learn stride, conf 1, conf 2.
	for i, want := range []bool{false, false, false, true} {
		obs := tl.Observe(uint64(i), 100, 0x1000+uint64(i)*8, j)
		if obs.Confident != want {
			t.Errorf("instance %d confident = %v, want %v", i, obs.Confident, want)
		}
	}
	e, ok := tl.Lookup(100)
	if !ok || e.Stride != 8 || e.Conf != 2 {
		t.Errorf("entry = %+v, %v", e, ok)
	}
}

func TestTLStrideChangeResets(t *testing.T) {
	tl := NewTL(512, 4, 2)
	j := NewJournal()
	for i := 0; i < 4; i++ {
		tl.Observe(uint64(i), 100, 0x1000+uint64(i)*8, j)
	}
	// Break the pattern.
	obs := tl.Observe(4, 100, 0x9000, j)
	if obs.Confident {
		t.Error("confidence survived stride change")
	}
	e, _ := tl.Lookup(100)
	if e.Conf != 0 {
		t.Errorf("conf = %d, want 0", e.Conf)
	}
	// The new stride must be adopted so it can re-learn.
	obs = tl.Observe(5, 100, 0x9000+16, j)
	if e, _ := tl.Lookup(100); e.Stride != 16 {
		t.Errorf("stride = %d, want 16", e.Stride)
	}
	_ = obs
}

func TestTLNegativeStride(t *testing.T) {
	tl := NewTL(512, 4, 2)
	j := NewJournal()
	base := uint64(0x8000)
	var obs Observation
	for i := 0; i < 4; i++ {
		obs = tl.Observe(uint64(i), 7, base-uint64(i)*8, j)
	}
	if !obs.Confident || obs.Stride != -8 {
		t.Errorf("negative stride: %+v", obs)
	}
}

func TestTLResetConfidence(t *testing.T) {
	tl := NewTL(512, 4, 2)
	j := NewJournal()
	for i := 0; i < 3; i++ {
		tl.Observe(uint64(i), 100, 0x1000, j)
	}
	tl.ResetConfidence(3, 100, j)
	e, _ := tl.Lookup(100)
	if e.Conf != 0 {
		t.Errorf("conf = %d after reset", e.Conf)
	}
	// Undo restores it.
	j.RewindTo(3)
	e, _ = tl.Lookup(100)
	if e.Conf != 2 {
		t.Errorf("conf = %d after rewind, want 2", e.Conf)
	}
}

func TestTLEviction(t *testing.T) {
	tl := NewTL(2, 2, 2) // 2 sets x 2 ways
	j := NewJournal()
	// Fill set 0 (even PCs) with 2 entries, then insert a third.
	tl.Observe(0, 0, 0x100, j)
	tl.Observe(1, 2, 0x200, j)
	tl.Observe(2, 0, 0x108, j) // touch pc 0 so pc 2 is LRU
	tl.Observe(3, 4, 0x300, j) // evicts pc 2
	if _, ok := tl.Lookup(2); ok {
		t.Error("LRU entry not evicted")
	}
	if _, ok := tl.Lookup(0); !ok {
		t.Error("MRU entry evicted")
	}
	if _, ok := tl.Lookup(4); !ok {
		t.Error("new entry missing")
	}
}

func TestTLUnbounded(t *testing.T) {
	tl := NewTL(0, 0, 2)
	j := NewJournal()
	// Thousands of distinct PCs, none evicted.
	for pc := uint64(0); pc < 5000; pc++ {
		tl.Observe(pc, pc, 0x1000*pc, j)
	}
	for pc := uint64(0); pc < 5000; pc++ {
		if _, ok := tl.Lookup(pc); !ok {
			t.Fatalf("pc %d evicted from unbounded TL", pc)
		}
	}
}

func TestTLJournalRewind(t *testing.T) {
	tl := NewTL(512, 4, 2)
	j := NewJournal()
	for i := 0; i < 3; i++ {
		tl.Observe(uint64(i), 100, 0x1000+uint64(i)*8, j)
	}
	snapshot, _ := tl.Lookup(100)
	// Two more observations, then rewind them.
	tl.Observe(3, 100, 0x1018, j)
	tl.Observe(4, 100, 0x1020, j)
	j.RewindTo(3)
	got, _ := tl.Lookup(100)
	if got.Conf != snapshot.Conf || got.LastAddr != snapshot.LastAddr || got.Stride != snapshot.Stride {
		t.Errorf("rewound entry %+v != snapshot %+v", got, snapshot)
	}
	// Replaying produces the same states.
	obs := tl.Observe(3, 100, 0x1018, j)
	if obs.Stride != 8 {
		t.Errorf("replay stride = %d", obs.Stride)
	}
}

// TestTLMatchesReferenceModel drives random (pc, addr) sequences through
// the unbounded TL and a direct reference implementation of §3.2.
func TestTLMatchesReferenceModel(t *testing.T) {
	type ref struct {
		last   uint64
		stride int64
		conf   int
		seen   bool
	}
	f := func(pcs []uint8, deltas []int8) bool {
		tl := NewTL(0, 0, 2)
		j := NewJournal()
		model := map[uint64]*ref{}
		addr := map[uint64]uint64{}
		n := len(pcs)
		if len(deltas) < n {
			n = len(deltas)
		}
		for i := 0; i < n; i++ {
			pc := uint64(pcs[i] % 8)
			addr[pc] += uint64(int64(deltas[i]))
			obs := tl.Observe(uint64(i), pc, addr[pc], j)

			m := model[pc]
			if m == nil {
				m = &ref{last: addr[pc], seen: true}
				model[pc] = m
				if !obs.FirstSeen {
					return false
				}
				continue
			}
			ns := int64(addr[pc] - m.last)
			if ns == m.stride {
				m.conf++
			} else {
				m.conf = 0
				m.stride = ns
			}
			m.last = addr[pc]
			if obs.Confident != (m.conf >= 2) || obs.Stride != m.stride {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
