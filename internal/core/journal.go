package core

// Journal is an undo log for decode-time state changes. Entries are pushed
// in program (sequence) order as instructions decode; RewindTo undoes, in
// reverse order, every entry belonging to squashed instructions so the
// replayed decodes start from exactly the pre-squash state.
type Journal struct {
	entries []jentry
	head    int // index of the oldest live entry
}

type jentry struct {
	seq  uint64
	undo func()
}

// NewJournal returns an empty journal.
func NewJournal() *Journal { return &Journal{} }

// Push records an undo action for the instruction with sequence seq.
// Sequences must be non-decreasing (decode is in order). A nil journal
// discards the record — commit-time effects are never rolled back, so
// callers mutating state at commit pass nil.
func (j *Journal) Push(seq uint64, undo func()) {
	if j == nil {
		return
	}
	j.entries = append(j.entries, jentry{seq: seq, undo: undo})
}

// RewindTo undoes every entry with sequence >= seq, newest first.
func (j *Journal) RewindTo(seq uint64) {
	for len(j.entries) > j.head {
		last := j.entries[len(j.entries)-1]
		if last.seq < seq {
			return
		}
		last.undo()
		j.entries = j.entries[:len(j.entries)-1]
	}
}

// Prune forgets entries with sequence < seq (already committed; a squash
// can never reach behind the commit point). Memory is compacted when the
// dead prefix grows large.
func (j *Journal) Prune(seq uint64) {
	for j.head < len(j.entries) && j.entries[j.head].seq < seq {
		j.entries[j.head].undo = nil
		j.head++
	}
	if j.head > 4096 && j.head > len(j.entries)/2 {
		n := copy(j.entries, j.entries[j.head:])
		j.entries = j.entries[:n]
		j.head = 0
	}
}

// Len returns the number of live entries (tests).
func (j *Journal) Len() int { return len(j.entries) - j.head }
