package core

// Journal is an undo log for decode-time state changes. Entries are pushed
// in program (sequence) order as instructions decode; RewindTo undoes, in
// reverse order, every entry belonging to squashed instructions so the
// replayed decodes start from exactly the pre-squash state.
//
// The journal is on the simulator's per-instruction hot path, so the
// common undo shapes (restore a TL/VRMT slot, undo a register allocation,
// clear a flag, decrement a counter) are recorded as typed records in
// preallocated stacks instead of heap-allocated closures: a central log
// keeps (seq, kind) in push order, and each kind's payload lives in its own
// typed stack that is pushed and popped in lock-step with the central log.
// After warm-up the stacks reach their steady-state high-water marks and
// pushing is allocation-free. Push (the closure form) remains available for
// cold paths and tests.
type Journal struct {
	recs []jrec
	head int // index of the oldest live central record

	closures  jstack[func()]
	tlRecs    jstack[tlRestore]
	tlConfs   jstack[tlConf]
	tlDels    jstack[tlDelete]
	vrmtRecs  jstack[vrmtRestore]
	vrmtOffs  jstack[vrmtOffset]
	vrmtDels  jstack[vrmtDelete]
	vrmtReins jstack[vrmtReinsert]
	regAllocs jstack[regAllocUndo]
	elemUs    jstack[elemU]
	vsRecs    jstack[vsRestore]
	u8s       jstack[u8Restore]
	decs      jstack[*uint64]
}

type jkind uint8

const (
	jClosure jkind = iota
	jTLRestore
	jTLConf
	jTLDelete
	jVRMTRestore
	jVRMTOffset
	jVRMTDelete
	jVRMTReinsert
	jRegAlloc
	jElemU
	jVS
	jU8
	jDecU64
)

type jrec struct {
	seq  uint64
	kind jkind
}

// Typed payloads. Each mirrors exactly the closure it replaced.
type tlRestore struct {
	e   *TLEntry
	old TLEntry
}
type tlConf struct {
	e   *TLEntry
	old int
}
type tlDelete struct {
	t  *TL
	pc uint64
}
type vrmtRestore struct {
	e   *Entry
	old Entry
}
type vrmtOffset struct {
	e   *Entry
	old int
}
type vrmtDelete struct {
	v  *VRMT
	pc uint64
}
type vrmtReinsert struct {
	v    *VRMT
	pc   uint64
	prev *Entry
}
type regAllocUndo struct {
	rf    *RegFile
	id    int // register index, not pointer: unbounded mode may reallocate regs
	epoch uint64
}
type elemU struct {
	rf  *RegFile // memo invalidation: the undo mutates an element flag
	e   *ElemState
	old bool
}
type vsRestore struct {
	e   *VSEntry
	old VSEntry
}
type u8Restore struct {
	p   *uint8
	old uint8
}

// jstack is one typed payload stack: pushed at the tail, popped at the
// tail on rewind, and consumed from the head on prune, in lock-step with
// the central record log.
type jstack[T any] struct {
	items []T
	head  int
}

func (s *jstack[T]) push(v T) { s.items = append(s.items, v) }

func (s *jstack[T]) pop() T {
	v := s.items[len(s.items)-1]
	s.items = s.items[:len(s.items)-1]
	return v
}

// dropOldest forgets the head item (zeroing it so closures release their
// captures) and compacts when the dead prefix dominates.
func (s *jstack[T]) dropOldest() {
	var zero T
	s.items[s.head] = zero
	s.head++
	if s.head > 1024 && s.head > len(s.items)/2 {
		n := copy(s.items, s.items[s.head:])
		s.items = s.items[:n]
		s.head = 0
	}
}

// NewJournal returns an empty journal.
func NewJournal() *Journal { return &Journal{} }

// record appends one central record. A nil journal discards it —
// commit-time effects are never rolled back, so callers mutating state at
// commit pass nil (the typed push methods each nil-check before calling).
func (j *Journal) record(seq uint64, kind jkind) {
	j.recs = append(j.recs, jrec{seq: seq, kind: kind})
}

// Push records a closure undo action for the instruction with sequence
// seq. Sequences must be non-decreasing (decode is in order). Cold paths
// and tests use this form; hot paths use the typed pushes below.
func (j *Journal) Push(seq uint64, undo func()) {
	if j == nil {
		return
	}
	j.record(seq, jClosure)
	j.closures.push(undo)
}

func (j *Journal) pushTLRestore(seq uint64, e *TLEntry) {
	if j == nil {
		return
	}
	j.record(seq, jTLRestore)
	j.tlRecs.push(tlRestore{e: e, old: *e})
}

func (j *Journal) pushTLConf(seq uint64, e *TLEntry) {
	if j == nil {
		return
	}
	j.record(seq, jTLConf)
	j.tlConfs.push(tlConf{e: e, old: e.Conf})
}

func (j *Journal) pushTLDelete(seq uint64, t *TL, pc uint64) {
	if j == nil {
		return
	}
	j.record(seq, jTLDelete)
	j.tlDels.push(tlDelete{t: t, pc: pc})
}

func (j *Journal) pushVRMTRestore(seq uint64, e *Entry) {
	if j == nil {
		return
	}
	j.record(seq, jVRMTRestore)
	j.vrmtRecs.push(vrmtRestore{e: e, old: *e})
}

func (j *Journal) pushVRMTOffset(seq uint64, e *Entry) {
	if j == nil {
		return
	}
	j.record(seq, jVRMTOffset)
	j.vrmtOffs.push(vrmtOffset{e: e, old: e.Offset})
}

func (j *Journal) pushVRMTDelete(seq uint64, v *VRMT, pc uint64) {
	if j == nil {
		return
	}
	j.record(seq, jVRMTDelete)
	j.vrmtDels.push(vrmtDelete{v: v, pc: pc})
}

func (j *Journal) pushVRMTReinsert(seq uint64, v *VRMT, pc uint64, prev *Entry) {
	if j == nil {
		return
	}
	j.record(seq, jVRMTReinsert)
	j.vrmtReins.push(vrmtReinsert{v: v, pc: pc, prev: prev})
}

func (j *Journal) pushRegAlloc(seq uint64, rf *RegFile, id int, epoch uint64) {
	if j == nil {
		return
	}
	j.record(seq, jRegAlloc)
	j.regAllocs.push(regAllocUndo{rf: rf, id: id, epoch: epoch})
}

func (j *Journal) pushElemU(seq uint64, rf *RegFile, e *ElemState) {
	if j == nil {
		return
	}
	j.record(seq, jElemU)
	j.elemUs.push(elemU{rf: rf, e: e, old: e.U})
}

// PushVS snapshots one V/S rename-table entry (Figure 6 state owned by the
// pipeline's decode stage).
func (j *Journal) PushVS(seq uint64, e *VSEntry) {
	if j == nil {
		return
	}
	j.record(seq, jVS)
	j.vsRecs.push(vsRestore{e: e, old: *e})
}

// PushU8 snapshots one byte-sized counter (the pipeline's churn-cooldown
// levels).
func (j *Journal) PushU8(seq uint64, p *uint8) {
	if j == nil {
		return
	}
	j.record(seq, jU8)
	j.u8s.push(u8Restore{p: p, old: *p})
}

// PushDec records "decrement *p on rewind" — the undo of a statistics
// counter increment.
func (j *Journal) PushDec(seq uint64, p *uint64) {
	if j == nil {
		return
	}
	j.record(seq, jDecU64)
	j.decs.push(p)
}

// undoNewest pops and applies the newest record.
//
//sdv:hotpath
func (j *Journal) undoNewest() {
	rec := j.recs[len(j.recs)-1]
	j.recs = j.recs[:len(j.recs)-1]
	switch rec.kind {
	case jClosure:
		j.closures.pop()()
	case jTLRestore:
		r := j.tlRecs.pop()
		*r.e = r.old
	case jTLConf:
		r := j.tlConfs.pop()
		r.e.Conf = r.old
	case jTLDelete:
		r := j.tlDels.pop()
		delete(r.t.unbounded, r.pc)
	case jVRMTRestore:
		r := j.vrmtRecs.pop()
		*r.e = r.old
	case jVRMTOffset:
		r := j.vrmtOffs.pop()
		r.e.Offset = r.old
	case jVRMTDelete:
		r := j.vrmtDels.pop()
		delete(r.v.unbounded, r.pc)
	case jVRMTReinsert:
		r := j.vrmtReins.pop()
		r.v.unbounded[r.pc] = r.prev
	case jRegAlloc:
		r := j.regAllocs.pop()
		r.rf.undoAlloc(r.id, r.epoch)
	case jElemU:
		r := j.elemUs.pop()
		r.e.U = r.old
		// The write bypasses the RegFile's mutators (raw element pointer),
		// so the Sweep memo must be invalidated here.
		r.rf.noteMut()
	case jVS:
		r := j.vsRecs.pop()
		*r.e = r.old
	case jU8:
		r := j.u8s.pop()
		*r.p = r.old
	case jDecU64:
		*j.decs.pop()--
	}
}

// RewindTo undoes every entry with sequence >= seq, newest first.
func (j *Journal) RewindTo(seq uint64) {
	for len(j.recs) > j.head {
		if j.recs[len(j.recs)-1].seq < seq {
			return
		}
		j.undoNewest()
	}
}

// Prune forgets entries with sequence < seq (already committed; a squash
// can never reach behind the commit point). Memory is compacted when the
// dead prefix grows large.
func (j *Journal) Prune(seq uint64) {
	for j.head < len(j.recs) && j.recs[j.head].seq < seq {
		switch j.recs[j.head].kind {
		case jClosure:
			j.closures.dropOldest()
		case jTLRestore:
			j.tlRecs.dropOldest()
		case jTLConf:
			j.tlConfs.dropOldest()
		case jTLDelete:
			j.tlDels.dropOldest()
		case jVRMTRestore:
			j.vrmtRecs.dropOldest()
		case jVRMTOffset:
			j.vrmtOffs.dropOldest()
		case jVRMTDelete:
			j.vrmtDels.dropOldest()
		case jVRMTReinsert:
			j.vrmtReins.dropOldest()
		case jRegAlloc:
			j.regAllocs.dropOldest()
		case jElemU:
			j.elemUs.dropOldest()
		case jVS:
			j.vsRecs.dropOldest()
		case jU8:
			j.u8s.dropOldest()
		case jDecU64:
			j.decs.dropOldest()
		}
		j.head++
	}
	if j.head > 4096 && j.head > len(j.recs)/2 {
		n := copy(j.recs, j.recs[j.head:])
		j.recs = j.recs[:n]
		j.head = 0
	}
}

// Len returns the number of live entries (tests).
func (j *Journal) Len() int { return len(j.recs) - j.head }
