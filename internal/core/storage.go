package core

// Storage reproduces the §4.1 hardware-cost audit of the added structures.
type Storage struct {
	VRFBytes  int // vector register file
	VRMTBytes int
	TLBytes   int
}

// Per-entry byte costs from §4.1: a VRMT entry is 18 bytes, a TL entry 24.
const (
	VRMTEntryBytes = 18
	TLEntryBytes   = 24
	elemBytes      = 8
)

// StorageBytes computes the extra state for a configuration. With the
// Table 1 parameters (128×4 registers, 4×64 VRMT, 4×512 TL) it reproduces
// the paper's arithmetic: 4 KB + 4608 B + 49152 B ≈ 56 KB.
func StorageBytes(vregs, vlen, vrmtSets, vrmtWays, tlSets, tlWays int) Storage {
	return Storage{
		VRFBytes:  vregs * vlen * elemBytes,
		VRMTBytes: vrmtWays * vrmtSets * VRMTEntryBytes,
		TLBytes:   tlWays * tlSets * TLEntryBytes,
	}
}

// Total returns the summed extra storage in bytes.
func (s Storage) Total() int { return s.VRFBytes + s.VRMTBytes + s.TLBytes }
