package core

// VSEntry is the decode-side vector/scalar rename state of one logical
// register — the V/S flag and offset columns of the modified rename table
// (Figure 6): which vector register and element currently hold the logical
// register's latest value. The pipeline owns the table itself (one entry
// per logical register); the type lives here with the other SDV rename
// structures so the journal can snapshot entries without allocating.
type VSEntry struct {
	IsVector bool
	VReg     int
	VEpoch   uint64
	Offset   int
}
