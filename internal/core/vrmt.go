package core

// OperandKind classifies a source operand recorded in a VRMT entry.
type OperandKind uint8

const (
	// OperandNone marks an unused source slot.
	OperandNone OperandKind = iota
	// OperandVector names a vector register.
	OperandVector
	// OperandScalar records the value of a scalar register source; later
	// instances compare the current value against it (§3.2).
	OperandScalar
	// OperandImm marks an immediate source, which is part of the static
	// instruction and therefore always matches.
	OperandImm
)

// Operand is one recorded source of a vectorized instruction.
type Operand struct {
	Kind  OperandKind
	VReg  int    // OperandVector: the source vector register
	Value uint64 // OperandScalar/OperandImm: the value at vectorization time
}

// Matches reports whether a later dynamic instance's operand is compatible
// with the recorded one.
func (o Operand) Matches(cur Operand) bool {
	if o.Kind != cur.Kind {
		return false
	}
	switch o.Kind {
	case OperandVector:
		return o.VReg == cur.VReg
	case OperandScalar, OperandImm:
		return o.Value == cur.Value
	default:
		return true
	}
}

// Entry is one VRMT record (Figure 5): the vectorized instruction's PC,
// its destination vector register, the offset of the next element to be
// validated, and the recorded source operands.
type Entry struct {
	PC     uint64
	VReg   int
	VEpoch uint64 // allocation epoch of VReg; stale mappings are detected by comparing with the register file
	Offset int
	Src1   Operand
	Src2   Operand

	valid bool
	lru   uint64
}

// VRMT is the Vector Register Map Table: 4-way set-associative, 64 sets in
// Table 1, or unbounded for the Figure 3 limit study.
type VRMT struct {
	sets      [][]Entry
	ways      int
	stamp     uint64
	unbounded map[uint64]*Entry
}

// NewVRMT builds the table; sets <= 0 selects the unbounded variant.
func NewVRMT(sets, ways int) *VRMT {
	v := &VRMT{ways: ways}
	if sets <= 0 {
		v.unbounded = make(map[uint64]*Entry)
		return v
	}
	v.sets = make([][]Entry, sets)
	for i := range v.sets {
		v.sets[i] = make([]Entry, ways)
	}
	return v
}

// Lookup returns the live entry for pc, touching its LRU stamp. The
// pointer stays valid until the entry's slot is reused by a later Insert;
// callers must treat it as read-only and not hold it across inserts.
func (v *VRMT) Lookup(pc uint64) (*Entry, bool) {
	e := v.find(pc)
	if e == nil {
		return nil, false
	}
	v.stamp++
	e.lru = v.stamp
	return e, true
}

// Insert installs a new entry for e.PC, evicting an LRU victim if the set
// is full. It returns the evicted entry (valid=true in the returned copy)
// so the caller can account for the orphaned vector register. The
// insertion is journalled.
func (v *VRMT) Insert(seq uint64, e Entry, j *Journal) (evicted Entry, hadEvict bool) {
	e.valid = true
	v.stamp++
	e.lru = v.stamp

	if v.unbounded != nil {
		pc := e.PC
		if prev := v.unbounded[pc]; prev != nil {
			j.pushVRMTRestore(seq, prev)
			*prev = e
			return Entry{}, false
		}
		slot := new(Entry)
		*slot = e
		v.unbounded[pc] = slot
		j.pushVRMTDelete(seq, v, pc)
		return Entry{}, false
	}

	set := v.sets[e.PC%uint64(len(v.sets))]
	victim := &set[0]
	for i := range set {
		if set[i].valid && set[i].PC == e.PC {
			victim = &set[i]
			break
		}
		if !set[i].valid {
			victim = &set[i]
		} else if victim.valid && set[i].lru < victim.lru {
			victim = &set[i]
		}
	}
	j.pushVRMTRestore(seq, victim)
	if victim.valid && victim.PC != e.PC {
		evicted, hadEvict = *victim, true
	}
	*victim = e
	return evicted, hadEvict
}

// Advance increments the offset of pc's entry (one more element has a
// validation in flight), journalled.
func (v *VRMT) Advance(seq, pc uint64, j *Journal) {
	e := v.find(pc)
	if e == nil {
		return
	}
	v.AdvanceEntry(seq, e, j)
}

// AdvanceEntry is Advance for a caller that already holds the live entry
// (the pipeline's decode stage amortizes one find per instruction).
func (v *VRMT) AdvanceEntry(seq uint64, e *Entry, j *Journal) {
	j.pushVRMTOffset(seq, e)
	e.Offset++
}

// Invalidate removes pc's entry (validation failure or store conflict),
// journalled.
func (v *VRMT) Invalidate(seq, pc uint64, j *Journal) {
	if v.unbounded != nil {
		if prev := v.unbounded[pc]; prev != nil {
			j.pushVRMTReinsert(seq, v, pc, prev)
			delete(v.unbounded, pc)
		}
		return
	}
	e := v.find(pc)
	if e == nil {
		return
	}
	j.pushVRMTRestore(seq, e)
	*e = Entry{}
}

// InvalidateEntry is Invalidate for a caller that already holds the live
// entry returned by Lookup.
func (v *VRMT) InvalidateEntry(seq uint64, e *Entry, j *Journal) {
	if v.unbounded != nil {
		pc := e.PC
		if prev := v.unbounded[pc]; prev != nil {
			j.pushVRMTReinsert(seq, v, pc, prev)
			delete(v.unbounded, pc)
		}
		return
	}
	j.pushVRMTRestore(seq, e)
	*e = Entry{}
}

// InvalidateByVReg removes the entry whose destination is vreg (store
// coherence, §3.6). Returns the PC of the invalidated entry.
func (v *VRMT) InvalidateByVReg(seq uint64, vreg int, j *Journal) (pc uint64, found bool) {
	visit := func(e *Entry) bool {
		if e.valid && e.VReg == vreg {
			j.pushVRMTRestore(seq, e)
			pcOut := e.PC
			*e = Entry{}
			pc, found = pcOut, true
			return true
		}
		return false
	}
	if v.unbounded != nil {
		for key, e := range v.unbounded {
			if e.VReg == vreg {
				j.pushVRMTReinsert(seq, v, key, e)
				delete(v.unbounded, key)
				return e.PC, true
			}
		}
		return 0, false
	}
	for s := range v.sets {
		for w := range v.sets[s] {
			if visit(&v.sets[s][w]) {
				return pc, found
			}
		}
	}
	return 0, false
}

func (v *VRMT) find(pc uint64) *Entry {
	if v.unbounded != nil {
		return v.unbounded[pc]
	}
	set := v.sets[pc%uint64(len(v.sets))]
	for i := range set {
		if set[i].valid && set[i].PC == pc {
			return &set[i]
		}
	}
	return nil
}
