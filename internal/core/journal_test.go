package core

import "testing"

func TestJournalRewindOrder(t *testing.T) {
	j := NewJournal()
	var log []int
	j.Push(1, func() { log = append(log, 1) })
	j.Push(2, func() { log = append(log, 2) })
	j.Push(2, func() { log = append(log, 22) })
	j.Push(3, func() { log = append(log, 3) })
	j.RewindTo(2)
	// Entries with seq >= 2 undone newest-first.
	if len(log) != 3 || log[0] != 3 || log[1] != 22 || log[2] != 2 {
		t.Errorf("undo order = %v", log)
	}
	if j.Len() != 1 {
		t.Errorf("live entries = %d, want 1", j.Len())
	}
	// Entry for seq 1 untouched.
	j.RewindTo(0)
	if len(log) != 4 || log[3] != 1 {
		t.Errorf("final log = %v", log)
	}
}

func TestJournalPrune(t *testing.T) {
	j := NewJournal()
	ran := false
	j.Push(1, func() { ran = true })
	j.Push(5, func() {})
	j.Prune(3)
	if j.Len() != 1 {
		t.Errorf("live = %d, want 1", j.Len())
	}
	// Rewinding cannot reach pruned entries.
	j.RewindTo(0)
	if ran {
		t.Error("pruned undo executed")
	}
}

func TestJournalPruneCompaction(t *testing.T) {
	j := NewJournal()
	for i := 0; i < 20000; i++ {
		j.Push(uint64(i), func() {})
	}
	j.Prune(15000)
	if j.Len() != 5000 {
		t.Errorf("live = %d, want 5000", j.Len())
	}
	// Push/rewind still behave after compaction.
	hit := false
	j.Push(20000, func() { hit = true })
	j.RewindTo(20000)
	if !hit {
		t.Error("undo after compaction not executed")
	}
}

func TestJournalEmptyRewind(t *testing.T) {
	j := NewJournal()
	j.RewindTo(0) // must not panic
	j.Prune(100)
	if j.Len() != 0 {
		t.Error("empty journal has entries")
	}
}
