package core

// TLEntry is one Table of Loads record (Figure 4): the load's PC, its last
// effective address, the current stride and a confidence counter.
type TLEntry struct {
	pc       uint64
	valid    bool
	LastAddr uint64
	Stride   int64
	Conf     int
	lru      uint64
}

// Observation is the result of recording one dynamic load in the TL.
type Observation struct {
	Stride    int64 // stride after the update (bytes)
	Confident bool  // confidence reached the vectorization threshold
	FirstSeen bool  // the PC was just inserted
}

// TL is the Table of Loads: 4-way set-associative, 512 sets in Table 1,
// or unbounded for the Figure 3 limit study.
type TL struct {
	sets      [][]TLEntry
	ways      int
	threshold int
	stamp     uint64
	unbounded map[uint64]*TLEntry
}

// NewTL builds a table with the given geometry; sets <= 0 selects the
// unbounded variant.
func NewTL(sets, ways, threshold int) *TL {
	t := &TL{ways: ways, threshold: threshold}
	if sets <= 0 {
		t.unbounded = make(map[uint64]*TLEntry)
		return t
	}
	t.sets = make([][]TLEntry, sets)
	for i := range t.sets {
		t.sets[i] = make([]TLEntry, ways)
	}
	return t
}

// Observe records the dynamic instance (seq) of the load at pc accessing
// addr, per §3.2: first sight initialises the entry; later sights compute
// the new stride, bump confidence on a match or reset it (and adopt the
// new stride) on a mismatch; the last address always updates. All
// mutations are journalled for squash replay.
func (t *TL) Observe(seq, pc, addr uint64, j *Journal) Observation {
	e, evict := t.locate(pc)
	if e == nil || !e.valid || e.pc != pc {
		// Miss: insert, possibly evicting another load's history.
		var slot *TLEntry
		if t.unbounded != nil {
			slot = &TLEntry{}
			t.unbounded[pc] = slot
		} else {
			slot = evict
			j.pushTLRestore(seq, slot)
		}
		t.stamp++
		*slot = TLEntry{pc: pc, valid: true, LastAddr: addr, lru: t.stamp}
		if t.unbounded != nil {
			j.pushTLDelete(seq, t, pc)
		}
		return Observation{FirstSeen: true}
	}

	j.pushTLRestore(seq, e)

	newStride := int64(addr - e.LastAddr)
	if newStride == e.Stride {
		e.Conf++
	} else {
		e.Conf = 0
		e.Stride = newStride
	}
	e.LastAddr = addr
	t.stamp++
	e.lru = t.stamp
	return Observation{Stride: e.Stride, Confident: e.Conf >= t.threshold}
}

// ResetConfidence clears the confidence counter for pc after a
// vectorization misspeculation, so scalar mode persists "until the
// vectorizing engine detects again a new vectorizable pattern" (§3.1).
func (t *TL) ResetConfidence(seq, pc uint64, j *Journal) {
	e, _ := t.locate(pc)
	if e == nil || !e.valid || e.pc != pc {
		return
	}
	j.pushTLConf(seq, e)
	e.Conf = 0
}

// Lookup returns the entry for pc without modifying it.
func (t *TL) Lookup(pc uint64) (TLEntry, bool) {
	e, _ := t.locate(pc)
	if e == nil || !e.valid || e.pc != pc {
		return TLEntry{}, false
	}
	return *e, true
}

// locate returns the matching entry if present; otherwise (nil-or-miss,
// eviction victim).
func (t *TL) locate(pc uint64) (match, victim *TLEntry) {
	if t.unbounded != nil {
		return t.unbounded[pc], nil
	}
	set := t.sets[pc%uint64(len(t.sets))]
	victim = &set[0]
	for i := range set {
		if set[i].valid && set[i].pc == pc {
			return &set[i], nil
		}
		if !set[i].valid {
			victim = &set[i]
		} else if victim.valid && set[i].lru < victim.lru {
			victim = &set[i]
		}
	}
	return nil, victim
}
