package core

import (
	"math/rand"
	"testing"

	"specvec/internal/stats"
)

func newRF(n int) (*RegFile, *stats.Sim) {
	sim := stats.New()
	return NewRegFile(n, 4, sim), sim
}

func TestAllocExhaustion(t *testing.T) {
	rf, _ := newRF(2)
	j := NewJournal()
	_, _, ok := rf.Alloc(0, 100, 0, true, 0, j)
	if !ok {
		t.Fatal("first alloc failed")
	}
	_, _, ok = rf.Alloc(1, 200, 0, true, 0, j)
	if !ok {
		t.Fatal("second alloc failed")
	}
	if _, _, ok := rf.Alloc(2, 300, 0, true, 0, j); ok {
		t.Error("third alloc on 2-register file succeeded")
	}
	if rf.InUse() != 2 {
		t.Errorf("in use = %d", rf.InUse())
	}
}

func TestAllocUndoFreesAndBumpsEpoch(t *testing.T) {
	rf, _ := newRF(4)
	j := NewJournal()
	id, epoch, _ := rf.Alloc(5, 100, 0, true, 0, j)
	if !rf.ValidRef(id, epoch) {
		t.Fatal("fresh ref invalid")
	}
	j.RewindTo(5)
	if rf.ValidRef(id, epoch) {
		t.Error("ref valid after undo")
	}
	if rf.InUse() != 0 {
		t.Errorf("in use = %d after undo", rf.InUse())
	}
	// Writes through the stale ref are discarded.
	rf.MarkComputed(id, epoch, 0, 0)
	id2, epoch2, _ := rf.Alloc(6, 100, 0, true, 0, j)
	if id2 != id {
		t.Fatalf("expected register reuse, got %d", id2)
	}
	if rf.Reg(id2).Elems[0].Computed {
		t.Error("stale write leaked into new allocation")
	}
	_ = epoch2
}

func TestUnboundedGrows(t *testing.T) {
	rf, _ := newRF(0)
	j := NewJournal()
	for i := 0; i < 500; i++ {
		if _, _, ok := rf.Alloc(uint64(i), uint64(i), 0, false, 0, j); !ok {
			t.Fatalf("unbounded alloc %d failed", i)
		}
	}
	if rf.InUse() != 500 {
		t.Errorf("in use = %d", rf.InUse())
	}
}

func TestSkippedElementsAreReadyAndFree(t *testing.T) {
	rf, _ := newRF(4)
	j := NewJournal()
	id, _, _ := rf.Alloc(0, 100, 0, false, 2, j)
	r := rf.Reg(id)
	for i := 0; i < 2; i++ {
		if !r.Elems[i].Ready() || !r.Elems[i].F || !r.Elems[i].Skipped {
			t.Errorf("elem %d below start not skipped/ready/free: %+v", i, r.Elems[i])
		}
	}
	for i := 2; i < 4; i++ {
		if r.Elems[i].Ready() {
			t.Errorf("elem %d unexpectedly ready", i)
		}
	}
}

func TestFreeCondition1AllReadyAndFree(t *testing.T) {
	rf, sim := newRF(4)
	j := NewJournal()
	id, ep, _ := rf.Alloc(0, 100, 77, true, 0, j)
	for e := 0; e < 4; e++ {
		rf.MarkComputed(id, ep, e, 0)
		rf.CommitValidation(id, ep, e)
		rf.SetElemFree(id, ep, e)
	}
	// MRBB == GMRBB, but condition 1 does not need the loop to end.
	if n := rf.Sweep(77); n != 1 {
		t.Fatalf("swept %d, want 1", n)
	}
	if sim.ElemsComputedUsed != 4 {
		t.Errorf("used = %d, want 4", sim.ElemsComputedUsed)
	}
	if rf.ValidRef(id, ep) {
		t.Error("freed register still valid")
	}
}

func TestFreeCondition2LoopEnded(t *testing.T) {
	rf, sim := newRF(4)
	j := NewJournal()
	id, ep, _ := rf.Alloc(0, 100, 77, true, 0, j)
	// Two elements validated and dead, two computed but never validated.
	for e := 0; e < 4; e++ {
		rf.MarkComputed(id, ep, e, 0)
	}
	for e := 0; e < 2; e++ {
		rf.CommitValidation(id, ep, e)
		rf.SetElemFree(id, ep, e)
	}
	// Same loop still running: not freeable.
	if n := rf.Sweep(77); n != 0 {
		t.Fatalf("swept %d while loop running", n)
	}
	// Loop terminated (GMRBB changed): freeable.
	if n := rf.Sweep(88); n != 1 {
		t.Fatalf("swept %d after loop end, want 1", n)
	}
	if sim.ElemsComputedUsed != 2 || sim.ElemsComputedUnused != 2 {
		t.Errorf("used/unused = %d/%d", sim.ElemsComputedUsed, sim.ElemsComputedUnused)
	}
}

func TestFreeBlockedByInFlightValidation(t *testing.T) {
	rf, _ := newRF(4)
	j := NewJournal()
	id, ep, _ := rf.Alloc(0, 100, 77, true, 0, j)
	for e := 0; e < 4; e++ {
		rf.MarkComputed(id, ep, e, 0)
	}
	rf.SetUsed(1, id, ep, 3, j) // validation in flight
	if n := rf.Sweep(88); n != 0 {
		t.Fatal("freed a register with U set")
	}
	rf.CommitValidation(id, ep, 3) // commits: V set, U cleared
	// Now element 3 has V but not F: still blocked by condition 2.
	if n := rf.Sweep(88); n != 0 {
		t.Fatal("freed a register with V&&!F element")
	}
	rf.SetElemFree(id, ep, 3)
	if n := rf.Sweep(88); n != 1 {
		t.Fatal("register not freed once validation dead")
	}
}

func TestSetUsedUndo(t *testing.T) {
	rf, _ := newRF(4)
	j := NewJournal()
	id, ep, _ := rf.Alloc(0, 100, 0, true, 0, j)
	rf.SetUsed(3, id, ep, 1, j)
	if !rf.Reg(id).Elems[1].U {
		t.Fatal("U not set")
	}
	j.RewindTo(3)
	if rf.Reg(id).Elems[1].U {
		t.Error("U survived rewind")
	}
}

func TestNotComputedAccounting(t *testing.T) {
	rf, sim := newRF(4)
	j := NewJournal()
	id, ep, _ := rf.Alloc(0, 100, 77, false, 2, j)
	rf.MarkComputed(id, ep, 2, 0) // element 3 never computed
	rf.Finalize()
	if sim.ElemsNotComputed != 3 { // 2 skipped + 1 unfinished
		t.Errorf("not computed = %d, want 3", sim.ElemsNotComputed)
	}
	if sim.ElemsComputedUnused != 1 {
		t.Errorf("unused = %d, want 1", sim.ElemsComputedUnused)
	}
	if sim.VRegsFreed != 1 {
		t.Errorf("freed = %d", sim.VRegsFreed)
	}
}

func TestAddrRange(t *testing.T) {
	rf, _ := newRF(4)
	j := NewJournal()
	id, _, _ := rf.Alloc(0, 100, 0, true, 0, j)
	rf.SetRange(id, 0x1000, 16)
	first, last := rf.Reg(id).AddrRange(8)
	if first != 0x1000 || last != 0x1000+48+7 {
		t.Errorf("range = [%#x,%#x]", first, last)
	}
	// Negative stride flips the order.
	rf.SetRange(id, 0x1000, -8)
	first, last = rf.Reg(id).AddrRange(8)
	if first != 0x1000-24 || last != 0x1000+7 {
		t.Errorf("negative-stride range = [%#x,%#x]", first, last)
	}
}

func TestCheckStoreConflict(t *testing.T) {
	rf, _ := newRF(4)
	j := NewJournal()
	id, _, _ := rf.Alloc(0, 100, 0, true, 0, j)
	rf.SetRange(id, 0x1000, 8)
	// Arithmetic registers never conflict.
	aid, _, _ := rf.Alloc(1, 200, 0, false, 0, j)
	rf.SetRange(aid, 0x1000, 8)
	rf.Reg(aid).IsLoad = false

	if got := rf.CheckStoreConflict(0x1008, 8); got != id {
		t.Errorf("in-range store conflict = %d, want %d", got, id)
	}
	if got := rf.CheckStoreConflict(0x0ff8, 8); got != -1 {
		t.Errorf("store below range = %d", got)
	}
	// Store overlapping the first word partially still conflicts.
	if got := rf.CheckStoreConflict(0x0ffc, 8); got != id {
		t.Errorf("partially overlapping store = %d, want %d", got, id)
	}
	if got := rf.CheckStoreConflict(0x1020, 8); got != -1 {
		t.Errorf("store above range = %d", got)
	}
}

// TestStoreConflictSparesValidatedElements: a read-modify-write loop
// stores to the element it just validated; that must not invalidate the
// remaining prefetched elements (§3.1's per-element phrasing).
func TestStoreConflictSparesValidatedElements(t *testing.T) {
	rf, _ := newRF(4)
	j := NewJournal()
	id, ep, _ := rf.Alloc(0, 100, 0, true, 0, j)
	rf.SetRange(id, 0x1000, 8)
	rf.CommitValidation(id, ep, 0)
	if got := rf.CheckStoreConflict(0x1000, 8); got != -1 {
		t.Errorf("store to validated element conflicted: %d", got)
	}
	if got := rf.CheckStoreConflict(0x1008, 8); got != id {
		t.Errorf("store to unvalidated element = %d, want %d", got, id)
	}
	// Skipped elements never conflict either.
	id2, _, _ := rf.Alloc(1, 200, 0, true, 2, j)
	rf.SetRange(id2, 0x2000, 8)
	if got := rf.CheckStoreConflict(0x2000, 8); got != -1 {
		t.Errorf("store to skipped element conflicted: %d", got)
	}
	if got := rf.CheckStoreConflict(0x2010, 8); got != id2 {
		t.Errorf("store to live element = %d, want %d", got, id2)
	}
}

func TestLineUseAccounting(t *testing.T) {
	rf, sim := newRF(4)
	j := NewJournal()
	id, ep, _ := rf.Alloc(0, 100, 77, true, 0, j)
	rf.SetRange(id, 0x1000, 8)
	// One line supplied elements 0-3; elements 0,1 validated.
	rf.AddLineUse(id, ep, 0x1000, []int{0, 1, 2, 3})
	for e := 0; e < 4; e++ {
		rf.MarkComputed(id, ep, e, 0)
	}
	rf.CommitValidation(id, ep, 0)
	rf.CommitValidation(id, ep, 1)
	rf.Finalize()
	if sim.WideBusWords.Count(2) != 1 {
		t.Errorf("wide-bus histogram: %+v", sim.WideBusWords)
	}
	// A line never validated counts as unused (bucket 0).
	id2, ep2, _ := rf.Alloc(1, 200, 77, true, 0, j)
	rf.AddLineUse(id2, ep2, 0x2000, []int{0, 1})
	rf.Finalize()
	if sim.WideBusWords.Count(0) != 1 {
		t.Errorf("unused bucket = %d, want 1", sim.WideBusWords.Count(0))
	}
}

// TestAllocFreeInvariant hammers the register file with random alloc,
// flag-set and sweep operations, checking occupancy invariants throughout.
func TestAllocFreeInvariant(t *testing.T) {
	rf, _ := newRF(16)
	j := NewJournal()
	rng := rand.New(rand.NewSource(7))
	live := map[int]uint64{}
	seq := uint64(0)
	for step := 0; step < 5000; step++ {
		seq++
		switch rng.Intn(4) {
		case 0:
			if id, ep, ok := rf.Alloc(seq, uint64(rng.Intn(50)), uint64(rng.Intn(3)), rng.Intn(2) == 0, rng.Intn(4), j); ok {
				live[id] = ep
			}
		case 1:
			for id, ep := range live {
				e := rng.Intn(4)
				rf.MarkComputed(id, ep, e, 0)
				if rng.Intn(2) == 0 {
					rf.CommitValidation(id, ep, e)
					rf.SetElemFree(id, ep, e)
				}
				break
			}
		case 2:
			rf.Sweep(uint64(rng.Intn(3)))
			for id, ep := range live {
				if !rf.ValidRef(id, ep) {
					delete(live, id)
				}
			}
		case 3:
			// Occupancy invariant.
			n := 0
			for i := 0; i < rf.Cap(); i++ {
				if rf.Reg(i).InUse {
					n++
				}
			}
			if n != rf.InUse() {
				t.Fatalf("step %d: counted %d in use, tracked %d", step, n, rf.InUse())
			}
		}
	}
}
