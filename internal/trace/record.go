package trace

import (
	"context"
	"fmt"
	"math"

	"specvec/internal/emu"
	"specvec/internal/isa"
)

// RecordSlack is how far past its commit limit a recording should extend
// (the Finish target is maxInsts + RecordSlack): a replaying pipeline can
// fetch at most its in-flight capacity — pipeline.SourceWindow(cfg) bounds
// it — beyond the last committed instruction, so the slack must exceed
// the source window of every configuration meant to replay the trace.
// TestRecordSlackCoversMatrix pins that against the experiment sweep.
const RecordSlack = 1 << 13

// Recorder wraps a live emu.Machine: it serves the timing pipeline exactly
// like emu.Stream (bounded replay window, rewind on squash) while
// appending every newly produced record to a Trace. After the recording
// simulation finishes, Finish runs the machine to completion so the trace
// covers the full dynamic stream — a wider configuration replaying it
// later may fetch further ahead of the commit limit than the recording
// one did.
type Recorder struct {
	m      *emu.Machine
	t      *Trace
	intern map[[tupleWords]uint64]uint32

	window []emu.DynInst // ring buffer indexed by Seq % len
	pos    uint64        // next Seq to hand out
	err    error         // first recording fault (PC overflow)

	every uint64 // checkpoint interval in records (0 = no checkpoints)
	bhr   uint64 // rolling conditional-branch outcome history

	ctx context.Context // polled by Finish; nil never cancels
}

// SetContext attaches ctx to the recorder: Finish polls it every few
// thousand records and returns its error early, so an abandoned service
// job does not emulate a long program to its record target. A cancelled
// Finish leaves the trace unusable (the error says why); the recording
// simulation itself is cancelled through the pipeline's own context.
func (r *Recorder) SetContext(ctx context.Context) { r.ctx = ctx }

// NewRecorder wraps m, which must be freshly constructed (no instructions
// executed), with a replay window of n records (emu.DefaultWindow if
// n <= 0). prog must be the program loaded into m; its text is embedded in
// the trace so replay needs no program object.
func NewRecorder(m *emu.Machine, prog *isa.Program, n int) (*Recorder, error) {
	if m.InstCount() != 0 {
		return nil, fmt.Errorf("trace: recorder needs a fresh machine (%d instructions already executed)", m.InstCount())
	}
	if n <= 0 {
		n = emu.DefaultWindow
	}
	return &Recorder{
		m:      m,
		t:      &Trace{name: prog.Name, insts: prog.Insts, version: Version},
		intern: make(map[[tupleWords]uint64]uint32),
		window: make([]emu.DynInst, n),
	}, nil
}

// EnableCheckpoints makes the recorder embed an architectural checkpoint
// in the trace every n records, turning on dirty-page tracking so the
// snapshots stay proportional to the written footprint. It must be
// called before the first record is produced: a checkpoint captures the
// machine exactly at a record boundary, and tracking enabled mid-stream
// would miss earlier writes.
//
// Each checkpoint is self-contained — it carries every page dirtied
// since load, so restoring needs no earlier checkpoints — which makes
// total checkpoint weight O(checkpoints × dirty pages): for very long,
// write-heavy recordings choose n accordingly (the experiments runner
// spaces checkpoints by warmup need, not by trace length). Per-ckpt
// deltas would trade that for chained restores if it ever dominates.
func (r *Recorder) EnableCheckpoints(n int) error {
	if n <= 0 {
		return fmt.Errorf("trace: non-positive checkpoint interval %d", n)
	}
	if r.t.Len() != 0 {
		return fmt.Errorf("trace: checkpoints enabled after %d records", r.t.Len())
	}
	r.every = uint64(n)
	r.m.TrackDirtyPages()
	return nil
}

// produce steps the machine once, appending the record to the trace and
// the replay window. It reports whether the machine produced a halt.
func (r *Recorder) produce() bool {
	// The machine steps in lockstep with the trace, so at entry its state
	// is "after Len() instructions" — exactly the snapshot a checkpoint
	// at this boundary must carry.
	if n := uint64(r.t.Len()); r.every > 0 && n > 0 && n%r.every == 0 {
		r.t.ckpts = append(r.t.ckpts, Checkpoint{Snapshot: r.m.Snapshot(), BHR: r.bhr})
	}
	d := r.m.Step()
	if d.PC > math.MaxUint32 && r.err == nil {
		// A register-indirect jump far outside the text cannot be encoded
		// in the compact PC column; the recording run still proceeds (the
		// window serves it), but the trace is unusable.
		r.err = fmt.Errorf("trace: PC %#x exceeds the recordable range", d.PC)
	}
	if d.Inst.IsBranch() {
		r.bhr <<= 1
		if d.Taken {
			r.bhr |= 1
		}
	}
	r.t.append(&d, r.intern)
	r.window[d.Seq%uint64(len(r.window))] = d
	return d.Halt
}

// NextRef returns a pointer to the record at the current position,
// producing it from the machine if it has not been generated yet. The
// pointer stays valid until the window wraps past its sequence number. ok
// is false once the stream is positioned past the halt record.
func (r *Recorder) NextRef() (*emu.DynInst, bool) {
	filled := uint64(r.t.Len())
	if r.t.Halted() && r.pos >= filled {
		return nil, false
	}
	for r.pos >= filled {
		if r.produce() {
			filled = uint64(r.t.Len())
			break
		}
		filled = uint64(r.t.Len())
	}
	if r.pos >= filled { // halted before reaching pos
		return nil, false
	}
	d := &r.window[r.pos%uint64(len(r.window))]
	r.pos++
	return d, true
}

// Next returns the current record by value.
func (r *Recorder) Next() (emu.DynInst, bool) {
	d, ok := r.NextRef()
	if !ok {
		return emu.DynInst{}, false
	}
	return *d, true
}

// Pos returns the sequence number of the next record NextRef will return.
func (r *Recorder) Pos() uint64 { return r.pos }

// Reserve pre-sizes the trace columns and the interning table for about n
// records, sparing the recording hot path the incremental growth (the
// caller usually knows the Finish target up front).
func (r *Recorder) Reserve(n int) {
	if n <= len(r.t.pcs) {
		return
	}
	r.t.pcs = append(make([]uint32, 0, n), r.t.pcs...)
	r.t.flags = append(make([]uint8, 0, n), r.t.flags...)
	r.t.tupleIdx = append(make([]uint32, 0, n), r.t.tupleIdx...)
	r.t.tuples = append(make([]uint64, 0, n*tupleWords/2), r.t.tuples...)
	if len(r.intern) == 0 {
		r.intern = make(map[[tupleWords]uint64]uint32, n/2)
	}
}

// Rewind repositions the stream so that NextRef returns the record with
// sequence number seq again, with the same window contract as
// emu.Stream.Rewind.
func (r *Recorder) Rewind(seq uint64) {
	if seq > r.pos {
		panic(fmt.Sprintf("trace: rewind forward from %d to %d", r.pos, seq))
	}
	filled := uint64(r.t.Len())
	if filled > uint64(len(r.window)) && seq < filled-uint64(len(r.window)) {
		panic(fmt.Sprintf("trace: rewind to %d outside window (oldest %d)",
			seq, filled-uint64(len(r.window))))
	}
	r.pos = seq
}

// Finish completes the trace: the machine keeps running until it halts or
// until target records exist (the recording simulation usually stops at a
// commit limit short of either). A replaying pipeline never looks past
// its commit limit plus its in-flight capacity, so a target of
// maxInsts + SourceWindow(cfg) of the widest consuming configuration
// makes the recording exactly as long as any replay can observe — there
// is no need to emulate a long-running program to its halt. A trace that
// stops before halt is marked truncated; Replayer documents how far such
// a trace can feed a simulation. The error is non-nil only when the
// recording is unusable outright (an unrecordable PC was produced).
func (r *Recorder) Finish(target int) (*Trace, error) {
	const ctxPoll = 4096 // records between context cancellation checks
	poll := ctxPoll
	for !r.t.Halted() && r.t.Len() < target {
		r.produce()
		if poll--; poll <= 0 {
			poll = ctxPoll
			if r.ctx != nil {
				if err := r.ctx.Err(); err != nil {
					return r.t, err
				}
			}
		}
	}
	r.t.truncated = !r.t.Halted()
	if r.err != nil {
		return r.t, r.err
	}
	return r.t, nil
}
