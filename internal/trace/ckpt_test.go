package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"specvec/internal/emu"
	"specvec/internal/isa"
)

// recordWithCheckpoints records prog with a checkpoint every `every`
// records, up to cap.
func recordWithCheckpoints(t testing.TB, prog *isa.Program, every, cap int) *Trace {
	t.Helper()
	rec, err := NewRecorder(newMachine(t, prog), prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.EnableCheckpoints(every); err != nil {
		t.Fatal(err)
	}
	tr, err := rec.Finish(cap)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestCheckpointRestoreMatchesTail is the determinism contract of the
// checkpoint subsystem: restoring the machine at every checkpoint
// boundary and stepping it forward must reproduce exactly the tail of
// the straight-line recording, sequence numbers included.
func TestCheckpointRestoreMatchesTail(t *testing.T) {
	for _, bench := range []string{"compress", "swim"} {
		prog := buildBench(t, bench, 4000)
		tr := recordWithCheckpoints(t, prog, 1500, 1<<22)
		if len(tr.Checkpoints()) < 2 {
			t.Fatalf("%s: only %d checkpoints in %d records", bench, len(tr.Checkpoints()), tr.Len())
		}
		var want, got emu.DynInst
		for _, ck := range tr.Checkpoints() {
			m, err := emu.Restore(prog, &ck.Snapshot)
			if err != nil {
				t.Fatal(err)
			}
			for i := int(ck.Seq); i < tr.Len(); i++ {
				got = m.Step()
				tr.Record(i, &want)
				if got != want {
					t.Fatalf("%s: restored at %d, record %d differs:\ntrace:    %+v\nrestored: %+v",
						bench, ck.Seq, i, want, got)
				}
			}
		}
	}
}

// TestCheckpointBHRMatchesOutcomes re-derives the branch history from
// the recorded outcomes and compares it to each checkpoint's BHR.
func TestCheckpointBHRMatchesOutcomes(t *testing.T) {
	prog := buildBench(t, "go", 4000)
	tr := recordWithCheckpoints(t, prog, 1000, 1<<22)
	var bhr uint64
	var d emu.DynInst
	next := 0
	cks := tr.Checkpoints()
	for i := 0; i < tr.Len() && next < len(cks); i++ {
		if uint64(i) == cks[next].Seq {
			if cks[next].BHR != bhr {
				t.Fatalf("checkpoint at %d: BHR %#x, outcomes say %#x", cks[next].Seq, cks[next].BHR, bhr)
			}
			next++
		}
		tr.Record(i, &d)
		if d.Inst.IsBranch() {
			bhr <<= 1
			if d.Taken {
				bhr |= 1
			}
		}
	}
	if next != len(cks) {
		t.Fatalf("only %d of %d checkpoints visited", next, len(cks))
	}
}

// TestCheckpointRoundTrip pins the codec's checkpoint section: encode,
// decode, deep-equal — registers, pages and BHR included.
func TestCheckpointRoundTrip(t *testing.T) {
	tr := recordWithCheckpoints(t, buildBench(t, "compress", 3000), 1000, 1<<22)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Fatal("checkpointed trace changed across round-trip")
	}
}

// TestCheckpointSectionRejectsCorruption sweeps single-byte corruptions
// and truncations across a checkpointed encoding, exactly like the
// corruption test for the base sections: every one must be rejected.
func TestCheckpointSectionRejectsCorruption(t *testing.T) {
	tr := recordWithCheckpoints(t, buildBench(t, "compress", 2000), 800, 1<<22)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if _, err := Decode(bytes.NewReader(good)); err != nil {
		t.Fatalf("pristine checkpointed file rejected: %v", err)
	}
	step := 1 + len(good)/257
	if testing.Short() {
		step = 1 + len(good)/64 // the race run samples; the full run sweeps
	}
	for off := 0; off < len(good); off += step {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x40
		if _, err := Decode(bytes.NewReader(bad)); err == nil {
			t.Errorf("corruption at offset %d/%d accepted", off, len(good))
		}
	}
	for _, n := range []int{len(good) - 1, len(good) - 4, len(good) - emu.PageSize/2, len(good) / 2} {
		if _, err := Decode(bytes.NewReader(good[:n])); err == nil {
			t.Errorf("truncated file (%d of %d bytes) accepted", n, len(good))
		}
	}
}

// TestCheckpointBefore covers the boundary-picking rule shards rely on.
func TestCheckpointBefore(t *testing.T) {
	tr := recordWithCheckpoints(t, buildBench(t, "compress", 4000), 1000, 1<<22)
	if _, ok := tr.CheckpointBefore(0); ok {
		t.Error("found a checkpoint before record 0")
	}
	if _, ok := tr.CheckpointBefore(999); ok {
		t.Error("found a checkpoint before the first boundary")
	}
	for _, seq := range []uint64{1000, 1500, 2000, 3999, 1 << 30} {
		ck, ok := tr.CheckpointBefore(seq)
		if !ok {
			t.Fatalf("no checkpoint at or before %d", seq)
		}
		want := (seq / 1000) * 1000
		if max := tr.Checkpoints()[len(tr.Checkpoints())-1].Seq; want > max {
			want = max
		}
		if ck.Seq != want {
			t.Errorf("CheckpointBefore(%d) = %d, want %d", seq, ck.Seq, want)
		}
	}
}

// TestReplayerAt checks that an offset replayer serves exactly the tail
// of the trace with original sequence numbers, refuses to rewind below
// its base, and keeps Peek honest about never-materialized records.
func TestReplayerAt(t *testing.T) {
	tr := record(t, buildBench(t, "compress", 3000), 1<<22)
	const start = 1000
	full := NewReplayer(tr, 512)
	for i := 0; i < start; i++ {
		if _, ok := full.NextRef(); !ok {
			t.Fatal("trace too short")
		}
	}
	at := NewReplayerAt(tr, 512, start)
	if at.Pos() != start {
		t.Fatalf("offset replayer starts at %d, want %d", at.Pos(), start)
	}
	if _, ok := at.Peek(start - 1); ok {
		t.Error("Peek returned a record before the replay base")
	}
	// Same randomized advance/rewind comparison as walk, with rewinds
	// clamped to the replay base (a pipeline never squashes below the
	// first record it fetched).
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10_000; i++ {
		if rng.Intn(64) == 0 && full.Pos() > start {
			back := uint64(rng.Intn(100)) + 1
			if back > full.Pos()-start {
				back = full.Pos() - start
			}
			full.Rewind(full.Pos() - back)
			at.Rewind(at.Pos() - back)
		}
		w, wok := full.Next()
		g, gok := at.Next()
		if wok != gok {
			t.Fatalf("step %d: ok %v vs %v", i, wok, gok)
		}
		if !wok {
			break
		}
		if w != g {
			t.Fatalf("step %d: record mismatch\nfull:   %+v\noffset: %+v", i, w, g)
		}
	}

	at2 := NewReplayerAt(tr, 512, start)
	at2.NextRef()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("rewind below the replay base did not panic")
			}
		}()
		at2.Rewind(start - 1)
	}()
}

// FuzzDecodeCheckpoints feeds arbitrary bytes — seeded with valid plain
// and checkpointed encodings — to Decode: it must never panic, and
// anything it accepts must survive an encode/decode round-trip
// unchanged.
func FuzzDecodeCheckpoints(f *testing.F) {
	plain := record(f, buildBench(f, "compress", 600), 1<<22)
	var buf bytes.Buffer
	if err := plain.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	buf.Reset()

	prog := buildBench(f, "compress", 600)
	rec, err := NewRecorder(newMachine(f, prog), prog, 0)
	if err != nil {
		f.Fatal(err)
	}
	if err := rec.EnableCheckpoints(200); err != nil {
		f.Fatal(err)
	}
	ck, err := rec.Finish(1 << 22)
	if err != nil {
		f.Fatal(err)
	}
	if err := ck.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("SDVT"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := tr.Encode(&out); err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		back, err := Decode(&out)
		if err != nil {
			t.Fatalf("re-encoded trace rejected: %v", err)
		}
		// Re-encoding legitimately upgrades the format version (a decoded
		// v1 file writes back as the current version); everything else
		// must round-trip unchanged.
		back.version = tr.version
		if !reflect.DeepEqual(tr, back) {
			t.Fatal("decode(encode(decode(data))) differs from decode(data)")
		}
	})
}
