package trace

import (
	"fmt"

	"specvec/internal/emu"
	"specvec/internal/isa"
)

// Record flag bits.
const (
	flagTaken uint8 = 1 << iota // branch outcome
	flagHalt                    // program terminated at this record
)

// tupleWords is the number of operand values interned per record:
// EffAddr, StoreVal, Result, Src1Val, Src2Val.
const tupleWords = 5

// Trace is the compact recorded form of a dynamic instruction stream. It
// is structure-of-arrays: per-record columns hold only what cannot be
// re-derived (PC, branch outcome, halt), the five data values of a record
// are interned as tuples (loops repeat operand patterns; distinct tuples
// are stored once and referenced by index), and the static instruction is
// looked up from the embedded program text. Seq is the record index and
// NextPC is derived from the instruction, the branch outcome and the
// source value, exactly mirroring emu.Machine.Step.
type Trace struct {
	name  string
	insts []isa.Inst // static program text, indexed by PC

	pcs      []uint32 // PC per record
	flags    []uint8  // flagTaken / flagHalt per record
	tupleIdx []uint32 // operand-tuple index per record
	tuples   []uint64 // interned tuples, flat (tupleWords values each)

	truncated bool // recording hit its cap before the program halted
}

// Name returns the name of the traced program.
func (t *Trace) Name() string { return t.name }

// Len returns the number of recorded dynamic instructions.
func (t *Trace) Len() int { return len(t.pcs) }

// StaticLen returns the number of static instructions in the embedded
// program text.
func (t *Trace) StaticLen() int { return len(t.insts) }

// TupleCount returns the number of distinct interned operand tuples.
func (t *Trace) TupleCount() int { return len(t.tuples) / tupleWords }

// Truncated reports whether recording stopped (at its target length)
// before the program halted. A truncated trace replays exactly like the
// live stream for any simulation whose commit limit plus in-flight
// capacity fits within Len; past that the replayer runs dry instead of
// producing further records.
func (t *Trace) Truncated() bool { return t.truncated }

// Halted reports whether the trace ends with a halt record.
func (t *Trace) Halted() bool {
	n := len(t.flags)
	return n > 0 && t.flags[n-1]&flagHalt != 0
}

// SizeBytes returns the approximate in-memory footprint of the columns
// (the inspect tool reports it next to the equivalent array-of-structs
// size).
func (t *Trace) SizeBytes() int {
	return len(t.pcs)*4 + len(t.flags) + len(t.tupleIdx)*4 + len(t.tuples)*8 + len(t.insts)*24
}

// inst returns the static instruction at pc, mirroring isa.Program.Inst:
// running off the end of the text executes as a halt.
func (t *Trace) inst(pc uint64) isa.Inst {
	if pc >= uint64(len(t.insts)) {
		return isa.Inst{Op: isa.OpHalt}
	}
	return t.insts[pc]
}

// Record materializes record i into d. It panics if i is out of range.
func (t *Trace) Record(i int, d *emu.DynInst) {
	pc := uint64(t.pcs[i])
	in := t.inst(pc)
	f := t.flags[i]
	tu := t.tuples[int(t.tupleIdx[i])*tupleWords:]
	*d = emu.DynInst{
		Seq:      uint64(i),
		PC:       pc,
		Inst:     in,
		Taken:    f&flagTaken != 0,
		Halt:     f&flagHalt != 0,
		EffAddr:  tu[0],
		StoreVal: tu[1],
		Result:   tu[2],
		Src1Val:  tu[3],
		Src2Val:  tu[4],
	}
	d.NextPC = emu.SuccessorPC(in, pc, d.Src1Val, d.Taken)
}

// append adds one machine-produced record. The caller guarantees records
// arrive in sequence order starting at 0.
func (t *Trace) append(d *emu.DynInst, intern map[[tupleWords]uint64]uint32) {
	t.pcs = append(t.pcs, uint32(d.PC))
	var f uint8
	if d.Taken {
		f |= flagTaken
	}
	if d.Halt {
		f |= flagHalt
	}
	t.flags = append(t.flags, f)
	key := [tupleWords]uint64{d.EffAddr, d.StoreVal, d.Result, d.Src1Val, d.Src2Val}
	idx, ok := intern[key]
	if !ok {
		idx = uint32(len(t.tuples) / tupleWords)
		t.tuples = append(t.tuples, key[:]...)
		intern[key] = idx
	}
	t.tupleIdx = append(t.tupleIdx, idx)
}

// validate checks internal consistency (Decode calls it so a logically
// corrupt file cannot panic the replayer later).
func (t *Trace) validate() error {
	if len(t.flags) != len(t.pcs) || len(t.tupleIdx) != len(t.pcs) {
		return fmt.Errorf("trace: column lengths disagree (%d pcs, %d flags, %d tuple indexes)",
			len(t.pcs), len(t.flags), len(t.tupleIdx))
	}
	if len(t.tuples)%tupleWords != 0 {
		return fmt.Errorf("trace: tuple pool length %d not a multiple of %d", len(t.tuples), tupleWords)
	}
	n := uint32(len(t.tuples) / tupleWords)
	for i, idx := range t.tupleIdx {
		if idx >= n {
			return fmt.Errorf("trace: record %d references tuple %d of %d", i, idx, n)
		}
	}
	// PCs need no bounds check: any PC outside the text materializes as a
	// halt, exactly as the emulator executes it (a register-indirect jump
	// may legitimately land past the text end).
	return nil
}
