package trace

import (
	"fmt"
	"sort"

	"specvec/internal/emu"
	"specvec/internal/isa"
)

// Record flag bits.
const (
	flagTaken uint8 = 1 << iota // branch outcome
	flagHalt                    // program terminated at this record
)

// tupleWords is the number of operand values interned per record:
// EffAddr, StoreVal, Result, Src1Val, Src2Val.
const tupleWords = 5

// Trace is the compact recorded form of a dynamic instruction stream. It
// is structure-of-arrays: per-record columns hold only what cannot be
// re-derived (PC, branch outcome, halt), the five data values of a record
// are interned as tuples (loops repeat operand patterns; distinct tuples
// are stored once and referenced by index), and the static instruction is
// looked up from the embedded program text. Seq is the record index and
// NextPC is derived from the instruction, the branch outcome and the
// source value, exactly mirroring emu.Machine.Step.
type Trace struct {
	name  string
	insts []isa.Inst // static program text, indexed by PC

	pcs      []uint32 // PC per record
	flags    []uint8  // flagTaken / flagHalt per record
	tupleIdx []uint32 // operand-tuple index per record
	tuples   []uint64 // interned tuples, flat (tupleWords values each)

	ckpts []Checkpoint // optional checkpoints, ascending by Seq

	truncated bool   // recording hit its cap before the program halted
	version   uint16 // on-disk format this trace was decoded from (or Version)
}

// FormatVersion returns the on-disk format version the trace was decoded
// from; for traces recorded in memory it is the current Version (what
// Encode will write).
func (t *Trace) FormatVersion() uint16 { return t.version }

// Checkpoint is an architectural snapshot embedded in the trace at a
// record boundary: the machine state after Seq committed instructions
// (emu.Snapshot: registers, dirty pages, PC) plus the conditional-branch
// outcome history up to the boundary, which seeds the replaying
// pipeline's predictor. A checkpoint restores architectural state only —
// a run fast-forwarded to one resumes with empty pipelines and no
// wrong-path history, so timing near the boundary differs from a
// straight-line run until a warmup window has passed (the same caveat
// restored speculative state carries in ARCHITECTURE.md's
// "Speculative vs. architectural state").
type Checkpoint struct {
	emu.Snapshot
	BHR uint64 // last 64 conditional-branch outcomes, youngest in bit 0
}

// Checkpoints returns the embedded checkpoints, ascending by Seq. The
// slice is shared with the trace; callers must not mutate it.
func (t *Trace) Checkpoints() []Checkpoint { return t.ckpts }

// CheckpointBefore returns the latest checkpoint whose Seq is <= seq,
// or ok=false when no checkpoint precedes it (replay then starts at
// record zero).
func (t *Trace) CheckpointBefore(seq uint64) (*Checkpoint, bool) {
	i := sort.Search(len(t.ckpts), func(i int) bool { return t.ckpts[i].Seq > seq })
	if i == 0 {
		return nil, false
	}
	return &t.ckpts[i-1], true
}

// Name returns the name of the traced program.
func (t *Trace) Name() string { return t.name }

// Len returns the number of recorded dynamic instructions.
func (t *Trace) Len() int { return len(t.pcs) }

// StaticLen returns the number of static instructions in the embedded
// program text.
func (t *Trace) StaticLen() int { return len(t.insts) }

// TupleCount returns the number of distinct interned operand tuples.
func (t *Trace) TupleCount() int { return len(t.tuples) / tupleWords }

// Truncated reports whether recording stopped (at its target length)
// before the program halted. A truncated trace replays exactly like the
// live stream for any simulation whose commit limit plus in-flight
// capacity fits within Len; past that the replayer runs dry instead of
// producing further records.
func (t *Trace) Truncated() bool { return t.truncated }

// Halted reports whether the trace ends with a halt record.
func (t *Trace) Halted() bool {
	n := len(t.flags)
	return n > 0 && t.flags[n-1]&flagHalt != 0
}

// SizeBytes returns the approximate in-memory footprint of the columns
// (the inspect tool reports it next to the equivalent array-of-structs
// size).
func (t *Trace) SizeBytes() int {
	n := len(t.pcs)*4 + len(t.flags) + len(t.tupleIdx)*4 + len(t.tuples)*8 + len(t.insts)*24
	for i := range t.ckpts {
		n += (3 + len(t.ckpts[i].Regs)) * 8
		n += len(t.ckpts[i].Pages) * (8 + emu.PageSize)
	}
	return n
}

// inst returns the static instruction at pc, mirroring isa.Program.Inst:
// running off the end of the text executes as a halt.
func (t *Trace) inst(pc uint64) isa.Inst {
	if pc >= uint64(len(t.insts)) {
		return isa.Inst{Op: isa.OpHalt}
	}
	return t.insts[pc]
}

// Record materializes record i into d. It panics if i is out of range.
func (t *Trace) Record(i int, d *emu.DynInst) {
	pc := uint64(t.pcs[i])
	in := t.inst(pc)
	f := t.flags[i]
	tu := t.tuples[int(t.tupleIdx[i])*tupleWords:]
	*d = emu.DynInst{
		Seq:      uint64(i),
		PC:       pc,
		Inst:     in,
		Taken:    f&flagTaken != 0,
		Halt:     f&flagHalt != 0,
		EffAddr:  tu[0],
		StoreVal: tu[1],
		Result:   tu[2],
		Src1Val:  tu[3],
		Src2Val:  tu[4],
	}
	d.NextPC = emu.SuccessorPC(in, pc, d.Src1Val, d.Taken)
}

// append adds one machine-produced record. The caller guarantees records
// arrive in sequence order starting at 0.
func (t *Trace) append(d *emu.DynInst, intern map[[tupleWords]uint64]uint32) {
	t.pcs = append(t.pcs, uint32(d.PC))
	var f uint8
	if d.Taken {
		f |= flagTaken
	}
	if d.Halt {
		f |= flagHalt
	}
	t.flags = append(t.flags, f)
	key := [tupleWords]uint64{d.EffAddr, d.StoreVal, d.Result, d.Src1Val, d.Src2Val}
	idx, ok := intern[key]
	if !ok {
		idx = uint32(len(t.tuples) / tupleWords)
		t.tuples = append(t.tuples, key[:]...)
		intern[key] = idx
	}
	t.tupleIdx = append(t.tupleIdx, idx)
}

// validate checks internal consistency (Decode calls it so a logically
// corrupt file cannot panic the replayer later).
func (t *Trace) validate() error {
	if len(t.flags) != len(t.pcs) || len(t.tupleIdx) != len(t.pcs) {
		return fmt.Errorf("trace: column lengths disagree (%d pcs, %d flags, %d tuple indexes)",
			len(t.pcs), len(t.flags), len(t.tupleIdx))
	}
	if len(t.tuples)%tupleWords != 0 {
		return fmt.Errorf("trace: tuple pool length %d not a multiple of %d", len(t.tuples), tupleWords)
	}
	n := uint32(len(t.tuples) / tupleWords)
	for i, idx := range t.tupleIdx {
		if idx >= n {
			return fmt.Errorf("trace: record %d references tuple %d of %d", i, idx, n)
		}
	}
	// PCs need no bounds check: any PC outside the text materializes as a
	// halt, exactly as the emulator executes it (a register-indirect jump
	// may legitimately land past the text end).
	var prev uint64
	for i := range t.ckpts {
		c := &t.ckpts[i]
		if i > 0 && c.Seq <= prev {
			return fmt.Errorf("trace: checkpoint %d at seq %d not after %d", i, c.Seq, prev)
		}
		if c.Seq == 0 || c.Seq > uint64(len(t.pcs)) {
			return fmt.Errorf("trace: checkpoint %d at seq %d outside (0, %d]", i, c.Seq, len(t.pcs))
		}
		prev = c.Seq
		var prevBase uint64
		for j, pg := range c.Pages {
			if len(pg.Data) != emu.PageSize || pg.Base%emu.PageSize != 0 {
				return fmt.Errorf("trace: checkpoint %d page %d malformed (base %#x, %d bytes)",
					i, j, pg.Base, len(pg.Data))
			}
			if j > 0 && pg.Base <= prevBase {
				return fmt.Errorf("trace: checkpoint %d pages out of order at %d", i, j)
			}
			prevBase = pg.Base
		}
	}
	return nil
}
