package trace

import (
	"fmt"
	"sync"
	"testing"

	"specvec/internal/emu"
)

// TestCursorMatchesStream walks a Cursor against a live stream with the
// same randomized Next/Rewind schedule used for Recorder and Replayer,
// demanding identical records at every step.
func TestCursorMatchesStream(t *testing.T) {
	for _, bench := range []string{"compress", "swim"} {
		prog := buildBench(t, bench, 4000)
		tr := record(t, prog, 1<<22)
		if tr.Truncated() {
			t.Fatalf("%s: recording truncated at %d records", bench, tr.Len())
		}
		strm := emu.NewStream(newMachine(t, prog), 512)
		walk(t, bench+"/cursor", strm, NewDecoded(tr).Cursor(), 20_000)
	}
}

// TestCursorMatchesReplayer drives a Cursor and a Replayer over the same
// recording with the shared walk schedule: the decoded form must be
// record-for-record indistinguishable from the windowed one.
func TestCursorMatchesReplayer(t *testing.T) {
	tr := record(t, buildBench(t, "swim", 4000), 1<<22)
	walk(t, "swim/cursor-vs-replayer", NewReplayer(tr, 512), NewDecoded(tr).Cursor(), 20_000)
}

// TestCursorAtMatchesReplayerAt starts both sources mid-trace (the
// checkpointed fast-forward shape) and walks them together, including a
// start beyond the trace end, which must clamp to an immediately-dry
// source on both.
func TestCursorAtMatchesReplayerAt(t *testing.T) {
	tr := record(t, buildBench(t, "compress", 4000), 1<<22)
	d := NewDecoded(tr)
	for _, start := range []uint64{0, 1, 4095, 4096, 5000, uint64(tr.Len()), uint64(tr.Len()) + 99} {
		rep := NewReplayerAt(tr, 512, start)
		cur := d.CursorAt(start)
		if rep.Pos() != cur.Pos() {
			t.Fatalf("start %d: pos %d vs %d", start, rep.Pos(), cur.Pos())
		}
		walkFrom(t, "compress/cursor-at", rep, cur, min(start, uint64(tr.Len())), 10_000)
	}
}

// walkFrom is walk with rewinds floored at base, for sources positioned
// mid-trace (rewinding below the replay base is a contract violation on
// both sides, not a comparison).
func walkFrom(t *testing.T, name string, want, got source, base uint64, steps int) {
	t.Helper()
	for i := 0; i < steps; i++ {
		if i%61 == 60 && want.Pos() > base {
			back := uint64(i%97) + 1
			if back > want.Pos()-base {
				back = want.Pos() - base
			}
			want.Rewind(want.Pos() - back)
			got.Rewind(got.Pos() - back)
		}
		w, wok := want.Next()
		g, gok := got.Next()
		if wok != gok {
			t.Fatalf("%s: step %d: ok %v vs %v", name, i, wok, gok)
		}
		if !wok {
			return
		}
		if w != g {
			t.Fatalf("%s: step %d: record mismatch\nwant: %+v\ngot:  %+v", name, i, w, g)
		}
	}
}

// TestCursorRewindContract pins the panic contract shared with Replayer:
// forward rewinds and rewinds below the base are programming errors.
func TestCursorRewindContract(t *testing.T) {
	tr := record(t, buildBench(t, "compress", 2000), 1<<22)
	d := NewDecoded(tr)

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}

	c := d.CursorAt(100)
	for i := 0; i < 50; i++ {
		c.NextRef()
	}
	c.Rewind(100) // to base: fine
	for i := 0; i < 50; i++ {
		c.NextRef()
	}
	mustPanic("rewind forward", func() { c.Rewind(c.Pos() + 1) })
	mustPanic("rewind below base", func() { c.Rewind(99) })

	// Unlike a windowed source, any rewind within [base, pos] is valid —
	// even one reaching back past a block boundary far behind the window
	// a Replayer would keep.
	far := d.Cursor()
	for i := 0; i < 3*(1<<decodedBlockShift)/2; i++ {
		far.NextRef()
	}
	far.Rewind(0)
	if rec, ok := far.NextRef(); !ok || rec.Seq != 0 {
		t.Fatalf("deep rewind: got seq %v ok=%v, want 0 true", rec, ok)
	}
}

// TestCursorPeek mirrors Replayer.Peek: served records are peekable,
// unserved and below-base ones are not.
func TestCursorPeek(t *testing.T) {
	tr := record(t, buildBench(t, "compress", 2000), 1<<22)
	c := NewDecoded(tr).CursorAt(10)
	if _, ok := c.Peek(10); ok {
		t.Error("peek before first NextRef succeeded")
	}
	want, _ := c.Next()
	got, ok := c.Peek(10)
	if !ok || got != want {
		t.Fatalf("peek(10) = %+v ok=%v, want %+v true", got, ok, want)
	}
	if _, ok := c.Peek(9); ok {
		t.Error("peek below base succeeded")
	}
	if _, ok := c.Peek(c.Pos()); ok {
		t.Error("peek at unserved position succeeded")
	}
}

// TestDecodedBlocksDecodeOnce checks the sharing arithmetic: K sequential
// cursors over one Decoded trigger K block loads per block but only one
// decode per block, so BlockLoads - BlockDecodes is the decode work saved.
func TestDecodedBlocksDecodeOnce(t *testing.T) {
	tr := record(t, buildBench(t, "swim", 6000), 1<<22)
	d := NewDecoded(tr)
	nblocks := int64((tr.Len() + (1 << decodedBlockShift) - 1) >> decodedBlockShift)
	const k = 4
	for i := 0; i < k; i++ {
		c := d.Cursor()
		for {
			if _, ok := c.NextRef(); !ok {
				break
			}
		}
	}
	if got := d.BlockDecodes(); got != nblocks {
		t.Errorf("BlockDecodes = %d, want %d (sequential cursors must share)", got, nblocks)
	}
	if got := d.BlockLoads(); got != k*nblocks {
		t.Errorf("BlockLoads = %d, want %d", got, k*nblocks)
	}
}

// TestDecodedConcurrentCursors runs many cursors over one Decoded at
// once — the gang shape — and verifies every one observes the exact
// recorded stream. Run with -race this also proves the lazy block publish
// is sound under concurrent first touch.
func TestDecodedConcurrentCursors(t *testing.T) {
	tr := record(t, buildBench(t, "swim", 6000), 1<<22)
	want := make([]emu.DynInst, tr.Len())
	for i := range want {
		tr.Record(i, &want[i])
	}
	d := NewDecoded(tr)
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := d.Cursor()
			served := 0
			for i := 0; ; i++ {
				rec, ok := c.NextRef()
				if !ok {
					if i != len(want) {
						errc <- fmt.Errorf("cursor %d: stream ended at %d of %d", g, i, len(want))
					}
					return
				}
				if *rec != want[i] {
					errc <- fmt.Errorf("cursor %d: record %d mismatch", g, i)
					return
				}
				// Periodic squash-style rewinds stress shared blocks. The
				// trigger counts served records, not positions, so each
				// rewind's replayed stretch cannot re-trigger it.
				if served++; served%1777 == 0 && i > 32 {
					c.Rewind(uint64(i - 31))
					i -= 32
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestCursorSteadyStateAllocs pins the shared-replay hot path at zero
// allocations per served record once its blocks are decoded, including
// across rewinds — the same discipline TestReplayerSteadyStateAllocs pins
// for the windowed form.
func TestCursorSteadyStateAllocs(t *testing.T) {
	tr := record(t, buildBench(t, "swim", 4000), 1<<22)
	d := NewDecoded(tr)
	warm := d.Cursor()
	for {
		if _, ok := warm.NextRef(); !ok {
			break
		}
	}
	cur := d.Cursor()
	avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < 64; i++ {
			if _, ok := cur.NextRef(); !ok {
				cur.Rewind(0)
			}
		}
		cur.Rewind(cur.Pos() - 32) // squash-style replay
	})
	if avg != 0 {
		t.Errorf("cursor steady state allocates %.2f allocs per 64-record batch, want 0", avg)
	}
}
