// Package trace records and replays the dynamic instruction stream that
// the timing pipeline consumes.
//
// The stream produced by functional emulation is config-independent: one
// (benchmark, scale, seed) triple yields the same emu.DynInst sequence
// under every processor configuration, because the workload program is
// built from those knobs alone. A sweep that simulates the same benchmark
// under many configurations therefore re-derives identical streams over
// and over. This package removes that redundancy — the record-once /
// replay-many leverage of offline dynamic analysis — and turns recorded
// streams into a workload input of their own (sdvsim -trace-record /
// -trace-replay, inspected with sdvtrace).
//
// Three faces:
//
//   - Recorder wraps a live emu.Machine and captures records while the
//     first simulation runs. It serves the pipeline exactly like
//     emu.Stream (bounded window, rewind on squash), so the recording run
//     is byte-identical to an unrecorded one. Finish then runs the
//     machine to halt so the trace covers the complete dynamic stream.
//   - Replayer serves a recorded Trace with the same semantics, without a
//     machine, a memory image, or per-instruction interpretation; its
//     steady state allocates nothing.
//   - Encode/Decode stream a Trace to and from a compact, versioned,
//     checksummed file (format in codec.go).
//
// The in-memory form is structure-of-arrays: a PC column, a flag column
// (branch outcome, halt) and an interned-tuple index per record, plus one
// pool of distinct five-value operand tuples. Everything else in a
// DynInst (Seq, the static instruction, NextPC) is re-derived on
// materialization from the embedded program text, mirroring
// emu.Machine.Step. On disk, PC and tuple-index columns are
// zigzag-varint delta encoded (loops keep both locally repetitive).
//
// A trace may additionally carry Checkpoints
// (Recorder.EnableCheckpoints): compact architectural snapshots —
// registers, dirty memory pages, PC, branch-outcome history — taken
// every N records. NewReplayerAt starts a replay at a checkpoint
// boundary with original sequence numbers, which is what lets
// internal/experiments shard one benchmark's simulation across the
// worker pool (see ARCHITECTURE.md "Checkpoints & sharded sweeps" for
// the speculative-vs-architectural caveat on restored state).
package trace
