package trace

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Artifact hooks: a recorded trace ships between cluster nodes as an
// immutable blob addressed by the SHA-256 of its encoded form. The
// codec is deterministic (same trace, same bytes), so the content
// address doubles as an equality check: a worker that re-fetches a
// recording after a coordinator restart either gets byte-identical
// data or detects the mismatch before replaying a single record.

// EncodeBytes renders the trace in the versioned on-disk format and
// returns the raw bytes (see Encode for the layout).
func (t *Trace) EncodeBytes() ([]byte, error) {
	var buf bytes.Buffer
	buf.Grow(t.SizeBytes() / 2)
	if err := t.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeBytes decodes a trace from its encoded form, verifying the
// embedded checksum like Decode.
func DecodeBytes(b []byte) (*Trace, error) {
	return Decode(bytes.NewReader(b))
}

// ContentID returns the content address of an encoded trace: the hex
// SHA-256 over the encoded bytes. Artifact stores key recordings by it
// and pullers verify what they fetched against it.
//
//sdv:cachekey
func ContentID(encoded []byte) string {
	sum := sha256.Sum256(encoded)
	return hex.EncodeToString(sum[:])
}

// VerifyContentID checks fetched artifact bytes against the content
// address they were requested by, returning a one-line error on
// mismatch (a truncated or corrupted transfer).
func VerifyContentID(encoded []byte, id string) error {
	if got := ContentID(encoded); got != id {
		return fmt.Errorf("trace: artifact content mismatch: want %.12s…, got %.12s…", id, got)
	}
	return nil
}

// ShortID abbreviates a content address for logs and span details: the
// first 12 hex digits, enough to disambiguate any plausible artifact
// population. Shorter inputs pass through unchanged.
func ShortID(id string) string {
	if len(id) <= 12 {
		return id
	}
	return id[:12]
}
