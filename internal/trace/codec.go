package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"

	"specvec/internal/emu"
	"specvec/internal/isa"
)

// On-disk format (version 2), little-endian, streamed:
//
//	magic   [4]byte "SDVT"
//	version uint16
//	fflags  uint16            bit 0: truncated, bit 1: checkpoint section
//	name    uvarint len + bytes
//	counts  uvarint ×3        static instructions, records, tuples
//	text    per instruction: op, rd, rs1, rs2 (bytes) + zigzag-varint imm
//	pcs     zigzag-varint delta from the previous record's PC
//	flags   one byte per record
//	tupleIdx zigzag-varint delta from the previous record's index
//	tuples  uvarint per value (tupleWords values per tuple)
//	ckpts   (only with fflags bit 1) uvarint count, then per checkpoint:
//	        seq, pc, bhr uvarints; one uvarint per logical register; page
//	        count uvarint; per page a base-address uvarint + emu.PageSize
//	        raw bytes
//	crc32   uint32 (IEEE) over every preceding byte, header included
//
// PCs and tuple indexes are delta-encoded because both are locally
// repetitive (loops revisit nearby PCs and recent operand tuples), which
// keeps most deltas in one or two varint bytes. Version 1 files (no
// checkpoint section) remain decodable; version 2 only appends the
// optional section.

var magic = [4]byte{'S', 'D', 'V', 'T'}

// Version is the current on-disk format version. Decode accepts every
// version from 1 up to it.
const Version = 2

const (
	fmtTruncated   uint16 = 1 << 0
	fmtCheckpoints uint16 = 1 << 1

	// maxCount bounds decoded element counts so a corrupt header cannot
	// drive allocation before the checksum is verified.
	maxCount = 1 << 31
)

// cwriter counts a CRC over everything written.
type cwriter struct {
	w   *bufio.Writer
	crc hash.Hash32
}

func (c *cwriter) Write(p []byte) (int, error) {
	c.crc.Write(p)
	return c.w.Write(p)
}

func (c *cwriter) byte(b byte) error {
	c.crc.Write([]byte{b})
	return c.w.WriteByte(b)
}

func (c *cwriter) uvarint(v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := c.Write(buf[:n])
	return err
}

func (c *cwriter) varint(v int64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	_, err := c.Write(buf[:n])
	return err
}

// Encode streams the trace to w in the versioned on-disk format.
func (t *Trace) Encode(w io.Writer) error {
	c := &cwriter{w: bufio.NewWriter(w), crc: crc32.NewIEEE()}
	if _, err := c.Write(magic[:]); err != nil {
		return err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint16(hdr[0:], Version)
	var ff uint16
	if t.truncated {
		ff |= fmtTruncated
	}
	if len(t.ckpts) > 0 {
		ff |= fmtCheckpoints
	}
	binary.LittleEndian.PutUint16(hdr[2:], ff)
	if _, err := c.Write(hdr[:]); err != nil {
		return err
	}
	if err := c.uvarint(uint64(len(t.name))); err != nil {
		return err
	}
	if _, err := c.Write([]byte(t.name)); err != nil {
		return err
	}
	for _, n := range []int{len(t.insts), len(t.pcs), t.TupleCount()} {
		if err := c.uvarint(uint64(n)); err != nil {
			return err
		}
	}
	for _, in := range t.insts {
		if _, err := c.Write([]byte{byte(in.Op), byte(in.Rd), byte(in.Rs1), byte(in.Rs2)}); err != nil {
			return err
		}
		if err := c.varint(in.Imm); err != nil {
			return err
		}
	}
	prev := int64(0)
	for _, pc := range t.pcs {
		if err := c.varint(int64(pc) - prev); err != nil {
			return err
		}
		prev = int64(pc)
	}
	if _, err := c.Write(t.flags); err != nil {
		return err
	}
	prev = 0
	for _, idx := range t.tupleIdx {
		if err := c.varint(int64(idx) - prev); err != nil {
			return err
		}
		prev = int64(idx)
	}
	for _, v := range t.tuples {
		if err := c.uvarint(v); err != nil {
			return err
		}
	}
	if len(t.ckpts) > 0 {
		if err := c.uvarint(uint64(len(t.ckpts))); err != nil {
			return err
		}
		for i := range t.ckpts {
			ck := &t.ckpts[i]
			for _, v := range []uint64{ck.Seq, ck.PC, ck.BHR} {
				if err := c.uvarint(v); err != nil {
					return err
				}
			}
			for _, reg := range ck.Regs {
				if err := c.uvarint(reg); err != nil {
					return err
				}
			}
			if err := c.uvarint(uint64(len(ck.Pages))); err != nil {
				return err
			}
			for _, pg := range ck.Pages {
				if err := c.uvarint(pg.Base); err != nil {
					return err
				}
				if _, err := c.Write(pg.Data); err != nil {
					return err
				}
			}
		}
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], c.crc.Sum32())
	if _, err := c.w.Write(sum[:]); err != nil { // the checksum is not part of itself
		return err
	}
	return c.w.Flush()
}

// creader counts a CRC over everything read.
type creader struct {
	r   *bufio.Reader
	crc hash.Hash32
}

func (c *creader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.crc.Write([]byte{b})
	}
	return b, err
}

func (c *creader) full(p []byte) error {
	if _, err := io.ReadFull(c.r, p); err != nil {
		return err
	}
	c.crc.Write(p)
	return nil
}

func (c *creader) uvarint() (uint64, error) {
	return binary.ReadUvarint(c)
}

func (c *creader) varint() (int64, error) {
	return binary.ReadVarint(c)
}

// clampCap bounds an initial slice capacity; decode appends beyond it.
func clampCap(n int) int { return min(n, 1<<20) }

func (c *creader) count(what string) (int, error) {
	v, err := c.uvarint()
	if err != nil {
		return 0, err
	}
	if v > maxCount {
		return 0, fmt.Errorf("trace: implausible %s count %d", what, v)
	}
	return int(v), nil
}

// Decode reads a trace in the on-disk format, verifying the version and
// the trailing checksum and validating internal consistency.
func Decode(r io.Reader) (*Trace, error) {
	c := &creader{r: bufio.NewReader(r), crc: crc32.NewIEEE()}
	var hdr [8]byte
	if err := c.full(hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if [4]byte(hdr[:4]) != magic {
		return nil, fmt.Errorf("trace: bad magic %q (not a trace file)", hdr[:4])
	}
	v := binary.LittleEndian.Uint16(hdr[4:])
	if v < 1 || v > Version {
		return nil, fmt.Errorf("trace: unsupported format version %d (have 1..%d)", v, Version)
	}
	ff := binary.LittleEndian.Uint16(hdr[6:])

	nameLen, err := c.count("name")
	if err != nil {
		return nil, err
	}
	name := make([]byte, nameLen)
	if err := c.full(name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	nInsts, err := c.count("instruction")
	if err != nil {
		return nil, err
	}
	nRecs, err := c.count("record")
	if err != nil {
		return nil, err
	}
	nTuples, err := c.count("tuple")
	if err != nil {
		return nil, err
	}

	// Initial capacities are clamped so a corrupt count cannot drive a
	// huge allocation before the data (and finally the checksum) is seen.
	t := &Trace{
		name:      string(name),
		version:   v,
		truncated: ff&fmtTruncated != 0,
		insts:     make([]isa.Inst, 0, clampCap(nInsts)),
		pcs:       make([]uint32, 0, clampCap(nRecs)),
		flags:     make([]uint8, 0, clampCap(nRecs)),
		tupleIdx:  make([]uint32, 0, clampCap(nRecs)),
		tuples:    make([]uint64, 0, clampCap(nTuples*tupleWords)),
	}
	var quad [4]byte
	for i := 0; i < nInsts; i++ {
		if err := c.full(quad[:]); err != nil {
			return nil, fmt.Errorf("trace: reading text: %w", err)
		}
		imm, err := c.varint()
		if err != nil {
			return nil, fmt.Errorf("trace: reading text: %w", err)
		}
		t.insts = append(t.insts, isa.Inst{
			Op: isa.Op(quad[0]), Rd: isa.Reg(quad[1]), Rs1: isa.Reg(quad[2]), Rs2: isa.Reg(quad[3]),
			Imm: imm,
		})
	}
	prev := int64(0)
	for i := 0; i < nRecs; i++ {
		d, err := c.varint()
		if err != nil {
			return nil, fmt.Errorf("trace: reading PCs: %w", err)
		}
		prev += d
		if prev < 0 || prev > math.MaxUint32 {
			return nil, fmt.Errorf("trace: record %d PC %d out of range", i, prev)
		}
		t.pcs = append(t.pcs, uint32(prev))
	}
	var chunk [4096]byte
	for got := 0; got < nRecs; {
		n := min(nRecs-got, len(chunk))
		if err := c.full(chunk[:n]); err != nil {
			return nil, fmt.Errorf("trace: reading flags: %w", err)
		}
		t.flags = append(t.flags, chunk[:n]...)
		got += n
	}
	prev = 0
	for i := 0; i < nRecs; i++ {
		d, err := c.varint()
		if err != nil {
			return nil, fmt.Errorf("trace: reading tuple indexes: %w", err)
		}
		prev += d
		if prev < 0 || prev > math.MaxUint32 {
			return nil, fmt.Errorf("trace: record %d tuple index %d out of range", i, prev)
		}
		t.tupleIdx = append(t.tupleIdx, uint32(prev))
	}
	for i := 0; i < nTuples*tupleWords; i++ {
		v, err := c.uvarint()
		if err != nil {
			return nil, fmt.Errorf("trace: reading tuples: %w", err)
		}
		t.tuples = append(t.tuples, v)
	}
	if ff&fmtCheckpoints != 0 {
		nCkpts, err := c.count("checkpoint")
		if err != nil {
			return nil, err
		}
		t.ckpts = make([]Checkpoint, 0, clampCap(nCkpts))
		for i := 0; i < nCkpts; i++ {
			var ck Checkpoint
			for _, dst := range []*uint64{&ck.Seq, &ck.PC, &ck.BHR} {
				if *dst, err = c.uvarint(); err != nil {
					return nil, fmt.Errorf("trace: reading checkpoint %d: %w", i, err)
				}
			}
			for r := range ck.Regs {
				if ck.Regs[r], err = c.uvarint(); err != nil {
					return nil, fmt.Errorf("trace: reading checkpoint %d registers: %w", i, err)
				}
			}
			nPages, err := c.count("checkpoint page")
			if err != nil {
				return nil, err
			}
			// Pages are read one at a time (4 KiB each), so a corrupt page
			// count cannot drive a large allocation: the stream runs out
			// long before the loop does.
			for j := 0; j < nPages; j++ {
				pg := emu.PageImage{Data: make([]byte, emu.PageSize)}
				if pg.Base, err = c.uvarint(); err != nil {
					return nil, fmt.Errorf("trace: reading checkpoint %d page %d: %w", i, j, err)
				}
				if err := c.full(pg.Data); err != nil {
					return nil, fmt.Errorf("trace: reading checkpoint %d page %d: %w", i, j, err)
				}
				ck.Pages = append(ck.Pages, pg)
			}
			t.ckpts = append(t.ckpts, ck)
		}
	}

	want := c.crc.Sum32()
	var sum [4]byte
	if _, err := io.ReadFull(c.r, sum[:]); err != nil {
		return nil, fmt.Errorf("trace: reading checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(sum[:]); got != want {
		return nil, fmt.Errorf("trace: checksum mismatch (file %#x, computed %#x)", got, want)
	}
	if err := t.validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// WriteFile encodes the trace to path.
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Encode(f); err != nil {
		_ = f.Close() // the Encode error is the one worth surfacing
		return err
	}
	return f.Close()
}

// ReadFile decodes a trace from path.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}
