package trace

import (
	"fmt"
	"sync/atomic"

	"specvec/internal/emu"
)

// Decoded is the shared, pre-decoded form of a Trace: records are
// materialized into immutable fixed-size blocks of emu.DynInst, each
// block decoded at most once (modulo a benign publication race) and then
// served by reference to any number of concurrent Cursors. A gang of
// simulators replaying the same recording pays the column decode —
// tuple-pool lookups, static-instruction fetch, successor-PC derivation —
// once per block instead of once per simulator, and a Cursor needs no
// replay window at all: every decoded record stays addressable, so Rewind
// is a pure position move.
//
// Blocks decode lazily, on first touch by any cursor, so a short replay
// (a sharded warmup interval, a cancelled run) never pays for the whole
// trace. The decoded form is about 5x the size of the column form
// (DynInst is ~100 bytes per record against ~20 compressed); callers that
// care about memory hold a Decoded only while a gang is draining it (see
// experiments.Runner) rather than for the life of the trace.
type Decoded struct {
	t      *Trace
	blocks []atomic.Pointer[[]emu.DynInst]

	decodes atomic.Int64 // blocks actually decoded (including lost races)
	loads   atomic.Int64 // block fetches by cursors (hits + decodes)
}

// decodedBlockShift sets the block granularity: 1<<12 = 4096 records
// (~400KB decoded) — coarse enough that the per-block bookkeeping
// disappears from the replay hot path, fine enough that lazy decoding
// tracks a cursor's actual reach.
const decodedBlockShift = 12

// NewDecoded wraps t. Decoding happens lazily, block by block, as
// cursors reach into the trace; the wrapper itself allocates only the
// block directory.
func NewDecoded(t *Trace) *Decoded {
	n := (t.Len() + (1 << decodedBlockShift) - 1) >> decodedBlockShift
	return &Decoded{t: t, blocks: make([]atomic.Pointer[[]emu.DynInst], n)}
}

// Trace returns the trace being decoded.
func (d *Decoded) Trace() *Trace { return d.t }

// Len returns the number of records, mirroring Trace.Len.
func (d *Decoded) Len() int { return d.t.Len() }

// BlockLoads returns how many block fetches cursors have performed
// (decodes plus shared hits). BlockLoads - BlockDecodes is the decode
// work the sharing saved.
func (d *Decoded) BlockLoads() int64 { return d.loads.Load() }

// BlockDecodes returns how many blocks were actually decoded. Concurrent
// first touches of one block may decode it twice (one result wins the
// publish; both are counted), so this can exceed the block count by the
// number of lost races — the counters stay honest about work done.
func (d *Decoded) BlockDecodes() int64 { return d.decodes.Load() }

// block returns the decoded block containing record seq, decoding and
// publishing it if no cursor has touched it yet. The returned slice is
// immutable once published.
func (d *Decoded) block(i int) []emu.DynInst {
	d.loads.Add(1)
	if p := d.blocks[i].Load(); p != nil {
		return *p
	}
	lo := i << decodedBlockShift
	hi := min(lo+(1<<decodedBlockShift), d.t.Len())
	blk := make([]emu.DynInst, hi-lo)
	for j := range blk {
		d.t.Record(lo+j, &blk[j])
	}
	d.decodes.Add(1)
	if d.blocks[i].CompareAndSwap(nil, &blk) {
		return blk
	}
	return *d.blocks[i].Load()
}

// Cursor returns a new cursor positioned at record zero. Cursors are
// independent — each belongs to one simulator goroutine — while the
// decoded blocks they walk are shared.
func (d *Decoded) Cursor() *Cursor { return d.CursorAt(0) }

// CursorAt is Cursor positioned at record start: the first NextRef
// returns that record (with its original sequence number). Rewind cannot
// go below start, mirroring NewReplayerAt — checkpointed fast-forward
// starts each shard at a boundary the pipeline never fetched behind.
func (d *Decoded) CursorAt(start uint64) *Cursor {
	if start > uint64(d.t.Len()) {
		start = uint64(d.t.Len())
	}
	return &Cursor{d: d, base: start, pos: start}
}

// Cursor walks a Decoded trace as a pipeline.Source. It satisfies the
// same contract as Replayer — records in sequence order, ok=false past
// the halt (or, for a truncated trace, past the last record), Rewind to
// any previously served record — but with no materialization window:
// NextRef hands out pointers into the shared immutable blocks, so the
// steady state does no copying and no allocation, and a squash's Rewind
// is a position move that can never fall out of a window.
type Cursor struct {
	d    *Decoded
	base uint64 // first record this cursor serves; Rewind floor
	pos  uint64 // next Seq to hand out

	blk   []emu.DynInst // current block (fast path)
	blkLo uint64        // sequence number of blk[0]
	blkHi uint64        // blkLo + len(blk); 0 until the first load
}

// NextRef returns a pointer to the record at the current position. The
// pointer aliases the shared decoded block and stays valid for the life
// of the Decoded; consumers treat records as read-only (the pipeline
// copies what it keeps), exactly as with Replayer's window pointers.
//
//sdv:hotpath
func (c *Cursor) NextRef() (*emu.DynInst, bool) {
	if c.pos < c.blkLo || c.pos >= c.blkHi {
		if c.pos >= uint64(c.d.t.Len()) {
			return nil, false
		}
		i := int(c.pos >> decodedBlockShift)
		c.blk = c.d.block(i)
		c.blkLo = uint64(i) << decodedBlockShift
		c.blkHi = c.blkLo + uint64(len(c.blk))
	}
	rec := &c.blk[c.pos-c.blkLo]
	c.pos++
	return rec, true
}

// Next returns the current record by value.
func (c *Cursor) Next() (emu.DynInst, bool) {
	d, ok := c.NextRef()
	if !ok {
		return emu.DynInst{}, false
	}
	return *d, true
}

// Pos returns the sequence number of the next record NextRef will return.
func (c *Cursor) Pos() uint64 { return c.pos }

// Rewind repositions the stream so that NextRef returns the record with
// sequence number seq again. Unlike a windowed source there is no oldest
// reachable record — any seq in [base, pos] is valid.
func (c *Cursor) Rewind(seq uint64) {
	if seq > c.pos {
		panic(fmt.Sprintf("trace: rewind forward from %d to %d", c.pos, seq))
	}
	if seq < c.base {
		panic(fmt.Sprintf("trace: rewind to %d before replay base %d", seq, c.base))
	}
	c.pos = seq
}

// Peek returns a previously served record without repositioning,
// mirroring Replayer.Peek (a decoded block never expires, so any record
// in [base, pos) is available).
func (c *Cursor) Peek(seq uint64) (emu.DynInst, bool) {
	if seq >= c.pos || seq < c.base {
		return emu.DynInst{}, false
	}
	if seq >= c.blkLo && seq < c.blkHi {
		return c.blk[seq-c.blkLo], true
	}
	return *c.d.Record(seq), true
}

// Record returns a pointer to record seq, decoding its block if needed.
// It panics if seq is out of range (mirroring Trace.Record).
func (d *Decoded) Record(seq uint64) *emu.DynInst {
	blk := d.block(int(seq >> decodedBlockShift))
	return &blk[seq&(1<<decodedBlockShift-1)]
}
