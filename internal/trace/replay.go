package trace

import (
	"fmt"

	"specvec/internal/emu"
)

// Replayer serves a recorded Trace to the timing pipeline with the same
// semantics emu.Stream gives fetch: records come out in sequence order,
// a bounded window of recent records stays addressable so a squash can
// rewind and replay, and the stream ends after the halt record. Replay
// needs no machine, memory image or per-instruction interpretation; its
// steady state allocates nothing.
type Replayer struct {
	t      *Trace
	window []emu.DynInst // ring buffer indexed by Seq % len
	base   uint64        // first record this replayer serves (NewReplayerAt)
	filled uint64        // records materialized into the window so far
	pos    uint64        // next Seq to hand out
}

// NewReplayer wraps t with a replay window of n records (emu.DefaultWindow
// if n <= 0). The window must exceed the maximum number of in-flight
// instructions of the consuming pipeline, exactly as for emu.NewStream.
func NewReplayer(t *Trace, n int) *Replayer {
	if n <= 0 {
		n = emu.DefaultWindow
	}
	return &Replayer{t: t, window: make([]emu.DynInst, n)}
}

// NewReplayerAt is NewReplayer positioned at record start: the first
// NextRef returns that record (with its original sequence number) and
// records before it are never materialized. Checkpointed fast-forward
// starts each shard's replay at a checkpoint boundary instead of
// replaying from instruction zero; Rewind cannot go below start, which
// is safe for a pipeline that never fetched anything older.
func NewReplayerAt(t *Trace, n int, start uint64) *Replayer {
	r := NewReplayer(t, n)
	if start > uint64(t.Len()) {
		start = uint64(t.Len())
	}
	r.base, r.pos, r.filled = start, start, start
	return r
}

// Trace returns the trace being replayed.
func (r *Replayer) Trace() *Trace { return r.t }

// NextRef returns a pointer to the record at the current position,
// materializing it from the trace columns on first touch. The pointer
// stays valid until the window wraps past its sequence number. ok is
// false once the stream is positioned past the halt record — or, for a
// truncated trace, past the last recorded instruction.
//
//sdv:hotpath
func (r *Replayer) NextRef() (*emu.DynInst, bool) {
	if r.pos >= uint64(r.t.Len()) {
		return nil, false
	}
	for r.filled <= r.pos {
		r.t.Record(int(r.filled), &r.window[r.filled%uint64(len(r.window))])
		r.filled++
	}
	d := &r.window[r.pos%uint64(len(r.window))]
	r.pos++
	return d, true
}

// Next returns the current record by value.
func (r *Replayer) Next() (emu.DynInst, bool) {
	d, ok := r.NextRef()
	if !ok {
		return emu.DynInst{}, false
	}
	return *d, true
}

// Pos returns the sequence number of the next record NextRef will return.
func (r *Replayer) Pos() uint64 { return r.pos }

// Rewind repositions the stream so that NextRef returns the record with
// sequence number seq again, with the same window contract as
// emu.Stream.Rewind.
func (r *Replayer) Rewind(seq uint64) {
	if seq > r.pos {
		panic(fmt.Sprintf("trace: rewind forward from %d to %d", r.pos, seq))
	}
	if seq < r.base {
		panic(fmt.Sprintf("trace: rewind to %d before replay base %d", seq, r.base))
	}
	if r.filled > uint64(len(r.window)) && seq < r.filled-uint64(len(r.window)) {
		panic(fmt.Sprintf("trace: rewind to %d outside window (oldest %d)",
			seq, r.filled-uint64(len(r.window))))
	}
	r.pos = seq
}

// Peek returns a previously materialized record without repositioning.
func (r *Replayer) Peek(seq uint64) (emu.DynInst, bool) {
	if seq >= r.filled || seq < r.base {
		return emu.DynInst{}, false
	}
	if r.filled > uint64(len(r.window)) && seq < r.filled-uint64(len(r.window)) {
		return emu.DynInst{}, false
	}
	return r.window[seq%uint64(len(r.window))], true
}
