package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"specvec/internal/emu"
	"specvec/internal/isa"
	"specvec/internal/workload"
)

// controlProgram exercises every control-flow shape nextPC must re-derive:
// taken and not-taken branches, direct and indirect jumps, call/return and
// the final halt.
func controlProgram(t *testing.T) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("control")
	b.Li(isa.IntReg(1), 0)
	b.Li(isa.IntReg(2), 5)
	b.Label("loop")
	b.Addi(isa.IntReg(1), isa.IntReg(1), 1)
	b.Jal(isa.IntReg(10), "sub") // call
	b.Blt(isa.IntReg(1), isa.IntReg(2), "loop")
	b.Beq(isa.IntReg(1), isa.IntReg(2), "out") // taken
	b.Label("sub")
	b.Ld(isa.IntReg(3), isa.IntReg(0), int64(isa.HeapBase))
	b.St(isa.IntReg(1), isa.IntReg(0), int64(isa.HeapBase))
	b.Jr(isa.IntReg(10), 0) // return
	b.Label("out")
	b.J("end")
	b.Nop()
	b.Label("end")
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func buildBench(t testing.TB, name string, scale int) *isa.Program {
	t.Helper()
	b, err := workload.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return b.Build(scale, 1)
}

func newMachine(t testing.TB, prog *isa.Program) *emu.Machine {
	t.Helper()
	m, err := emu.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// record runs prog to completion (or cap) through a Recorder and returns
// the trace.
func record(t testing.TB, prog *isa.Program, cap int) *Trace {
	t.Helper()
	rec, err := NewRecorder(newMachine(t, prog), prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := rec.Finish(cap)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestRecorderMatchesStream drives a Recorder and an emu.Stream over the
// same program with an identical randomized Next/Rewind walk and demands
// identical records at every step.
func TestRecorderMatchesStream(t *testing.T) {
	for _, bench := range []string{"compress", "swim"} {
		prog := buildBench(t, bench, 4000)
		strm := emu.NewStream(newMachine(t, prog), 512)
		rec, err := NewRecorder(newMachine(t, prog), prog, 512)
		if err != nil {
			t.Fatal(err)
		}
		walk(t, bench+"/recorder", strm, rec, 20_000)
	}
}

// TestReplayerMatchesStream replays a finished recording against a live
// stream under the same walk.
func TestReplayerMatchesStream(t *testing.T) {
	for _, bench := range []string{"compress", "swim"} {
		prog := buildBench(t, bench, 4000)
		tr := record(t, prog, 1<<22)
		if tr.Truncated() {
			t.Fatalf("%s: recording truncated at %d records", bench, tr.Len())
		}
		strm := emu.NewStream(newMachine(t, prog), 512)
		walk(t, bench+"/replayer", strm, NewReplayer(tr, 512), 20_000)
	}
}

// source is the common face of emu.Stream, Recorder and Replayer.
type source interface {
	Next() (emu.DynInst, bool)
	Pos() uint64
	Rewind(seq uint64)
}

// walk advances both sources together, randomly rewinding within the
// window, and compares every record.
func walk(t *testing.T, name string, want, got source, steps int) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < steps; i++ {
		if rng.Intn(64) == 0 && want.Pos() > 0 {
			// Rewind up to 100 records, bounded by the window (512).
			back := uint64(rng.Intn(100)) + 1
			if back > want.Pos() {
				back = want.Pos()
			}
			want.Rewind(want.Pos() - back)
			got.Rewind(got.Pos() - back)
		}
		w, wok := want.Next()
		g, gok := got.Next()
		if wok != gok {
			t.Fatalf("%s: step %d: ok %v vs %v", name, i, wok, gok)
		}
		if !wok {
			return // both ended together
		}
		if w != g {
			t.Fatalf("%s: step %d: record mismatch\nlive:   %+v\nreplay: %+v", name, i, w, g)
		}
	}
}

// TestNextPCDerivation checks every control-flow shape against the
// machine's own NextPC, including running off the end of the text.
func TestNextPCDerivation(t *testing.T) {
	prog := controlProgram(t)
	tr := record(t, prog, 1<<20)
	m := newMachine(t, prog)
	var d emu.DynInst
	for i := 0; i < tr.Len(); i++ {
		want := m.Step()
		tr.Record(i, &d)
		if d != want {
			t.Fatalf("record %d:\nmachine: %+v\ntrace:   %+v", i, want, d)
		}
	}
	if !tr.Halted() {
		t.Error("control program trace does not end in halt")
	}

	// Running off the end of the text must also round-trip: the machine
	// synthesizes a halt there.
	b := isa.NewBuilder("offend")
	b.Li(isa.IntReg(1), 7)
	b.Addi(isa.IntReg(1), isa.IntReg(1), 1)
	offend, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tr = record(t, offend, 1<<20)
	m = newMachine(t, offend)
	for i := 0; i < tr.Len(); i++ {
		want := m.Step()
		tr.Record(i, &d)
		if d != want {
			t.Fatalf("off-end record %d:\nmachine: %+v\ntrace:   %+v", i, want, d)
		}
	}
	if !tr.Halted() {
		t.Error("off-end trace does not end in halt")
	}
}

// TestRoundTripFarIndirectJump covers the regression where a trace whose
// jr lands far past the text end (the machine executes any off-text PC
// as a halt) was recordable but rejected by Decode's validation.
func TestRoundTripFarIndirectJump(t *testing.T) {
	prog := &isa.Program{Name: "jrfar", Insts: []isa.Inst{
		{Op: isa.OpLi, Rd: isa.IntReg(1), Imm: 100},
		{Op: isa.OpJr, Rs1: isa.IntReg(1)},
	}}
	tr := record(t, prog, 1<<20)
	if !tr.Halted() {
		t.Fatal("off-text jump did not record a halt")
	}

	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatalf("decode rejected a legitimately recorded trace: %v", err)
	}
	m := newMachine(t, prog)
	var d emu.DynInst
	for i := 0; i < back.Len(); i++ {
		want := m.Step()
		back.Record(i, &d)
		if d != want {
			t.Fatalf("record %d:\nmachine: %+v\ntrace:   %+v", i, want, d)
		}
	}
}

// TestRoundTrip encodes a recorded trace and decodes it back, requiring
// identical metadata and records.
func TestRoundTrip(t *testing.T) {
	for _, bench := range []string{"compress", "fpppp"} {
		prog := buildBench(t, bench, 3000)
		tr := record(t, prog, 1<<22)

		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := Decode(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if back.Name() != tr.Name() || back.Len() != tr.Len() ||
			back.StaticLen() != tr.StaticLen() || back.TupleCount() != tr.TupleCount() ||
			back.Truncated() != tr.Truncated() || back.Halted() != tr.Halted() {
			t.Fatalf("%s: metadata changed across round-trip:\nin:  %+v\nout: %+v", bench, tr, back)
		}
		if !reflect.DeepEqual(tr, back) {
			t.Fatalf("%s: trace changed across round-trip", bench)
		}
		var a, b emu.DynInst
		for i := 0; i < tr.Len(); i++ {
			tr.Record(i, &a)
			back.Record(i, &b)
			if a != b {
				t.Fatalf("%s: record %d differs after round-trip:\nin:  %+v\nout: %+v", bench, i, a, b)
			}
		}
	}
}

// TestDecodeRejectsCorruption flips bytes across the file and requires
// every corruption to be rejected (bad magic, bad version, checksum
// mismatch or structural error) — never silently accepted with different
// content.
func TestDecodeRejectsCorruption(t *testing.T) {
	tr := record(t, buildBench(t, "compress", 2000), 1<<22)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if _, err := Decode(bytes.NewReader(good)); err != nil {
		t.Fatalf("pristine file rejected: %v", err)
	}

	// Deterministically corrupt one byte at a spread of offsets covering
	// the header, every section and the trailing checksum.
	for off := 0; off < len(good); off += 1 + len(good)/257 {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x40
		if _, err := Decode(bytes.NewReader(bad)); err == nil {
			t.Errorf("corruption at offset %d/%d accepted", off, len(good))
		}
	}

	// Truncations at every section boundary region must also fail.
	for _, n := range []int{len(good) - 1, len(good) - 4, len(good) / 2,
		len(good) / 4, len(good) / 16, 6, 0} {
		if _, err := Decode(bytes.NewReader(good[:n])); err == nil {
			t.Errorf("truncated file (%d of %d bytes) accepted", n, len(good))
		}
	}

	// Wrong version specifically.
	bad := append([]byte(nil), good...)
	bad[4] = 0x7f
	if _, err := Decode(bytes.NewReader(bad)); err == nil {
		t.Error("future format version accepted")
	}
}

// TestReplayerSteadyStateAllocs pins the replay hot path at zero
// allocations per served record, including across rewinds.
func TestReplayerSteadyStateAllocs(t *testing.T) {
	tr := record(t, buildBench(t, "swim", 4000), 1<<22)
	rep := NewReplayer(tr, 1024)
	// Warm up: materialize the first window.
	for i := 0; i < 256; i++ {
		if _, ok := rep.NextRef(); !ok {
			t.Fatal("trace too short for warmup")
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < 64; i++ {
			if _, ok := rep.NextRef(); !ok {
				rep.Rewind(0)
			}
		}
		rep.Rewind(rep.Pos() - 32) // squash-style replay
	})
	if avg != 0 {
		t.Errorf("replay steady state allocates %.2f allocs per 64-record batch, want 0", avg)
	}
}

// TestFinishTarget pins the bounded-recording contract: a long-running
// program is recorded only to the target, marked truncated, and a halting
// program records exactly through its halt.
func TestFinishTarget(t *testing.T) {
	prog := buildBench(t, "go", 50_000) // runs well past 1000 instructions
	rec, err := NewRecorder(newMachine(t, prog), prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := rec.Finish(1000)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Truncated() || tr.Halted() {
		t.Errorf("bounded recording: truncated=%v halted=%v", tr.Truncated(), tr.Halted())
	}
	if tr.Len() != 1000 {
		t.Errorf("bounded recording length %d, want 1000", tr.Len())
	}

	tr = record(t, controlProgram(t), 1<<20)
	if tr.Truncated() || !tr.Halted() {
		t.Errorf("halting recording: truncated=%v halted=%v", tr.Truncated(), tr.Halted())
	}
}

// TestRecorderRequiresFreshMachine covers the constructor guard.
func TestRecorderRequiresFreshMachine(t *testing.T) {
	prog := controlProgram(t)
	m := newMachine(t, prog)
	m.Step()
	if _, err := NewRecorder(m, prog, 0); err == nil {
		t.Error("recorder accepted a machine with executed instructions")
	}
}
