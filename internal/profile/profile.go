// Package profile carries lightweight hot-path health counters for the
// cycle-level simulator, so the allocation-free steady state is measured
// rather than asserted. The pipeline reports pool traffic (heap news vs
// recycles) and journal depth through HotStats; MeasureAllocs gives a
// dependency-free allocations-per-operation probe for benchmarks and
// examples that cannot use testing.AllocsPerRun.
package profile

import "runtime"

// HotStats is a snapshot of the simulator's hot-path recycling behaviour.
// In steady state the News counters stay flat (every structure comes from
// a free list) while the Recycles counters grow with simulated work.
type HotStats struct {
	UopNews      uint64 // uops allocated from the heap (pool misses)
	UopRecycles  uint64 // uops returned to the free list
	VopNews      uint64 // vector instances allocated from the heap
	VopRecycles  uint64 // vector instances returned to the free list
	JournalDepth uint64 // live undo records (bounded by the in-flight window)
}

// Add folds another snapshot's counters into h (aggregation across
// simulators). JournalDepth is point-in-time state, not a rate, so it is
// not summed: aggregates report it as zero.
func (h *HotStats) Add(o HotStats) {
	h.UopNews += o.UopNews
	h.UopRecycles += o.UopRecycles
	h.VopNews += o.VopNews
	h.VopRecycles += o.VopRecycles
	h.JournalDepth = 0
}

// Sub returns the change from an earlier snapshot.
func (h HotStats) Sub(prev HotStats) HotStats {
	return HotStats{
		UopNews:      h.UopNews - prev.UopNews,
		UopRecycles:  h.UopRecycles - prev.UopRecycles,
		VopNews:      h.VopNews - prev.VopNews,
		VopRecycles:  h.VopRecycles - prev.VopRecycles,
		JournalDepth: h.JournalDepth,
	}
}

// Runtime is a snapshot of process-wide health gauges, read by the
// service layer's /metrics endpoint.
type Runtime struct {
	Goroutines      int
	HeapAllocBytes  uint64
	TotalAllocBytes uint64
	Mallocs         uint64
	Frees           uint64
	NumGC           uint32
}

// ReadRuntime samples the current process gauges (without forcing a GC —
// this is a monitoring probe, not a measurement barrier like
// MeasureAllocs).
func ReadRuntime() Runtime {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return Runtime{
		Goroutines:      runtime.NumGoroutine(),
		HeapAllocBytes:  m.HeapAlloc,
		TotalAllocBytes: m.TotalAlloc,
		Mallocs:         m.Mallocs,
		Frees:           m.Frees,
		NumGC:           m.NumGC,
	}
}

// MeasureAllocs runs fn rounds times and returns the mean number of heap
// allocations per round, measured with runtime.MemStats (GC is forced
// first so concurrent sweeps do not pollute the count). It is the
// non-testing-package analogue of testing.AllocsPerRun.
func MeasureAllocs(rounds int, fn func()) float64 {
	if rounds <= 0 {
		return 0
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < rounds; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(rounds)
}
