package wspec

import (
	"strings"
	"testing"
)

const yamlMinimal = `
wspec: 1
workloads:
  - name: gen.t
    blocks:
      - gen: stride
`

func mustParse(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return f
}

func TestDefaultsResolved(t *testing.T) {
	f := mustParse(t, yamlMinimal)
	b := f.Workloads[0].Blocks[0]
	if b.Elems != 1024 || b.Stride != 1 {
		t.Fatalf("stride defaults: got elems=%d stride=%d, want 1024/1", b.Elems, b.Stride)
	}

	// An explicit stride: 0 is the stride-0 pattern, not "use the default".
	f = mustParse(t, `
wspec: 1
workloads:
  - name: gen.t
    blocks:
      - gen: stride
        stride: 0
`)
	if got := f.Workloads[0].Blocks[0].Stride; got != 0 {
		t.Fatalf("explicit stride 0 resolved to %d", got)
	}

	f = mustParse(t, `
wspec: 1
workloads:
  - name: gen.t
    blocks:
      - gen: gather
      - gen: chase
      - gen: depchain
`)
	blocks := f.Workloads[0].Blocks
	if b := blocks[0]; b.Table != 512 || b.Span != 4096 || b.Count != 512 {
		t.Fatalf("gather defaults: %+v", b)
	}
	if b := blocks[1]; b.Nodes != 1024 || b.Depth != 1023 {
		t.Fatalf("chase defaults: %+v", b)
	}
	if b := blocks[2]; b.Count != 1024 || b.Distance != 1 {
		t.Fatalf("depchain defaults: %+v", b)
	}
}

func TestYAMLAndJSONEquivalent(t *testing.T) {
	jsonSrc := `{"wspec":1,"workloads":[{"name":"gen.t","blocks":[{"gen":"stride"}]}]}`
	yf := mustParse(t, yamlMinimal)
	jf := mustParse(t, jsonSrc)
	if yf.Canonical() != jf.Canonical() {
		t.Fatalf("canonical forms differ:\nyaml: %s\njson: %s", yf.Canonical(), jf.Canonical())
	}
}

func TestCanonicalIgnoresFormatting(t *testing.T) {
	a := mustParse(t, `
wspec: 1
workloads:
  - name: "gen.t"   # quoted, commented
    seed: 7
    blocks:
      - gen: stride
        stride: 2
        elems: 1024
`)
	b := mustParse(t, `
wspec: 1
workloads:
  - blocks:
      - elems: 1024
        gen: stride
        stride: 2
    seed: 7
    name: gen.t
`)
	if a.Canonical() != b.Canonical() {
		t.Fatalf("formatting leaked into canonical form:\n%s\n%s", a.Canonical(), b.Canonical())
	}
}

func TestStrictRejections(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown top-level field", `
wspec: 1
extra: true
workloads:
  - name: gen.t
    blocks:
      - gen: stride
`, `unknown field "extra"`},
		{"unknown workload field", `
wspec: 1
workloads:
  - name: gen.t
    speed: 9
    blocks:
      - gen: stride
`, `unknown field "speed"`},
		{"unknown block field", `
wspec: 1
workloads:
  - name: gen.t
    blocks:
      - gen: stride
        bogus: 1
`, `unknown field "bogus"`},
		{"wrong-family field", `
wspec: 1
workloads:
  - name: gen.t
    blocks:
      - gen: stride
        entropy: 50
`, `does not apply to generator "stride"`},
		{"unknown generator", `
wspec: 1
workloads:
  - name: gen.t
    blocks:
      - gen: warp
`, `unknown generator "warp"`},
		{"bad version", `
wspec: 2
workloads:
  - name: gen.t
    blocks:
      - gen: stride
`, "unsupported version 2"},
		{"no workloads", `{"wspec":1,"workloads":[]}`, "no workloads defined"},
		{"builtin collision", `
wspec: 1
workloads:
  - name: gcc
    blocks:
      - gen: stride
`, "collides with a built-in"},
		{"duplicate names", `
wspec: 1
workloads:
  - name: gen.t
    blocks:
      - gen: stride
  - name: gen.t
    blocks:
      - gen: branch
`, `duplicate workload name "gen.t"`},
		{"reserved name", `
wspec: 1
workloads:
  - name: all
    blocks:
      - gen: stride
`, "reserved"},
		{"bad name", `
wspec: 1
workloads:
  - name: Gen T
    blocks:
      - gen: stride
`, "invalid name"},
		{"range violation", `
wspec: 1
workloads:
  - name: gen.t
    blocks:
      - gen: stride
        stride: 65
`, "out of range"},
		{"footprint violation", `
wspec: 1
workloads:
  - name: gen.t
    blocks:
      - gen: stride
        elems: 1048576
        stride: 64
`, "over the"},
		{"entropy percent", `
wspec: 1
workloads:
  - name: gen.t
    blocks:
      - gen: branch
        entropy: 101
`, "out of range [0,100]"},
		{"type mismatch", `
wspec: 1
workloads:
  - name: gen.t
    blocks:
      - gen: stride
        elems: lots
`, "want an integer"},
		{"tab indentation", "wspec: 1\n\tworkloads: []\n", "tab in indentation"},
		{"flow syntax", `
wspec: 1
workloads: [a, b]
`, "unsupported YAML syntax"},
		{"empty document", "   \n\n", "empty spec document"},
		{"json trailing content", `{"wspec":1,"workloads":[{"name":"gen.t","blocks":[{"gen":"stride"}]}]} extra`, "trailing content"},
		{"json unknown field", `{"wspec":1,"workloads":[{"name":"gen.t","nope":1,"blocks":[{"gen":"stride"}]}]}`, `unknown field "nope"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.src))
			if err == nil {
				t.Fatalf("accepted invalid spec")
			}
			if strings.Contains(err.Error(), "\n") {
				t.Fatalf("multi-line error: %q", err.Error())
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err.Error(), tc.want)
			}
		})
	}
}

func TestAllFamiliesCompileAndRun(t *testing.T) {
	src := `
wspec: 1
workloads:
  - name: gen.everything
    blocks:
      - gen: stride
        elems: 64
      - gen: gather
        table: 32
        span: 64
      - gen: scatter
        table: 32
        span: 64
      - gen: chase
        nodes: 32
        shuffle: true
      - gen: branch
        count: 64
        entropy: 50
      - gen: depchain
        count: 64
        distance: 4
      - gen: mix
        count: 64
        fpPercent: 50
`
	f := mustParse(t, src)
	b := CompileSpec(f.Workloads[0])
	if !b.Generated {
		t.Fatal("compiled benchmark not marked Generated")
	}
	prog := b.Build(10_000, 1)
	if prog == nil || len(prog.Insts) == 0 {
		t.Fatal("empty program")
	}
}

func TestRegisterFileIdempotent(t *testing.T) {
	src := `
wspec: 1
workloads:
  - name: gen.regtest
    blocks:
      - gen: stride
`
	f := mustParse(t, src)
	if err := RegisterFile(f); err != nil {
		t.Fatalf("first RegisterFile: %v", err)
	}
	// Identical definition: a no-op.
	if err := RegisterFile(mustParse(t, src)); err != nil {
		t.Fatalf("idempotent re-register: %v", err)
	}
	if _, ok := Lookup("gen.regtest"); !ok {
		t.Fatal("Lookup missed a registered workload")
	}
	// Conflicting definition behind the same name: an error.
	conflicting := mustParse(t, `
wspec: 1
workloads:
  - name: gen.regtest
    blocks:
      - gen: branch
`)
	if err := RegisterFile(conflicting); err == nil {
		t.Fatal("conflicting re-register accepted")
	}
}
