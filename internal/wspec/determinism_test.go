package wspec_test

// The determinism contract, pinned end to end: the same (spec, seed)
// pair must compile to a byte-identical program, record a byte-identical
// trace and address the same server cache entry, while distinct seeds —
// runner or spec — produce distinct programs. Every downstream layer
// (shared trace memo, gang replay, shards, the sdvd result cache)
// assumes exactly this.

import (
	"bytes"
	"encoding/json"
	"testing"

	"specvec/internal/emu"
	"specvec/internal/isa"
	"specvec/internal/server"
	"specvec/internal/trace"
	"specvec/internal/wspec"
)

// propSpecs cover three generator families (stride, pointer-chase,
// branch-entropy) plus the irregular and mix knobs.
var propSpecs = map[string]string{
	"stride": `
wspec: 1
workloads:
  - name: gen.prop
    blocks:
      - gen: stride
        elems: 256
        stride: 4
        stores: 50
`,
	"chase": `
wspec: 1
workloads:
  - name: gen.prop
    blocks:
      - gen: chase
        nodes: 128
        shuffle: true
`,
	"branch": `
wspec: 1
workloads:
  - name: gen.prop
    blocks:
      - gen: branch
        count: 256
        entropy: 50
`,
	"gather-mix": `
wspec: 1
workloads:
  - name: gen.prop
    blocks:
      - gen: gather
        table: 64
        span: 256
      - gen: mix
        count: 128
        fpPercent: 50
`,
}

func buildProp(t *testing.T, src string, scale int, seed int64) *isa.Program {
	t.Helper()
	f, err := wspec.Parse([]byte(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return wspec.CompileSpec(f.Workloads[0]).Build(scale, seed)
}

// programBytes is a canonical byte encoding of a program: JSON with
// sorted map keys, covering instructions, data segments and symbols.
func programBytes(t *testing.T, p *isa.Program) []byte {
	t.Helper()
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func recordBytes(t *testing.T, p *isa.Program) []byte {
	t.Helper()
	m, err := emu.New(p)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := trace.NewRecorder(m, p, 64)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := rec.Finish(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSameSpecSameSeedByteIdentical(t *testing.T) {
	const scale = 8_000
	for name, src := range propSpecs {
		t.Run(name, func(t *testing.T) {
			a := buildProp(t, src, scale, 1)
			b := buildProp(t, src, scale, 1)
			ab, bb := programBytes(t, a), programBytes(t, b)
			if !bytes.Equal(ab, bb) {
				t.Fatal("same (spec, seed) built different programs")
			}
			if !bytes.Equal(recordBytes(t, a), recordBytes(t, b)) {
				t.Fatal("same (spec, seed) recorded different traces")
			}
		})
	}
}

func TestDistinctSeedsDistinctPrograms(t *testing.T) {
	const scale = 8_000
	for name, src := range propSpecs {
		t.Run(name, func(t *testing.T) {
			a := programBytes(t, buildProp(t, src, scale, 1))
			b := programBytes(t, buildProp(t, src, scale, 2))
			if bytes.Equal(a, b) {
				t.Fatal("distinct runner seeds built identical programs")
			}
		})
	}
}

func TestSpecSeedParticipates(t *testing.T) {
	withSeed := func(seed string) string {
		return `
wspec: 1
workloads:
  - name: gen.prop
    seed: ` + seed + `
    blocks:
      - gen: branch
        count: 256
        entropy: 50
`
	}
	a := programBytes(t, buildProp(t, withSeed("1"), 8_000, 1))
	b := programBytes(t, buildProp(t, withSeed("2"), 8_000, 1))
	if bytes.Equal(a, b) {
		t.Fatal("distinct spec seeds built identical programs")
	}
}

// TestCacheKeyFollowsContent pins the server-side half of the contract:
// two submissions of the same spec content — formatted differently —
// share a cache key, and seed or content changes split it.
func TestCacheKeyFollowsContent(t *testing.T) {
	key := func(specs string, seed int64) string {
		t.Helper()
		js, err := server.JobSpec{Kind: server.KindSweep, Specs: specs, Seed: seed}.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		return js.Key()
	}
	yaml := `
wspec: 1
workloads:
  - name: gen.prop
    blocks:
      - gen: stride
        elems: 256
        stride: 4
`
	reordered := `{"wspec":1,"workloads":[{"blocks":[{"stride":4,"elems":256,"gen":"stride"}],"name":"gen.prop"}]}`
	if key(yaml, 1) != key(reordered, 1) {
		t.Fatal("equivalent specs got different cache keys")
	}
	if key(yaml, 1) == key(yaml, 2) {
		t.Fatal("seed did not participate in the cache key")
	}
	changed := `{"wspec":1,"workloads":[{"name":"gen.prop","blocks":[{"gen":"stride","elems":256,"stride":8}]}]}`
	if key(yaml, 1) == key(changed, 1) {
		t.Fatal("content change did not change the cache key")
	}
}
