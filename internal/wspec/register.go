package wspec

import (
	"fmt"
	"sync"

	"specvec/internal/workload"
)

// Registration makes spec workloads resolvable by name through
// workload.Get, which is how the CLIs and the daemon pick them up. The
// package remembers the canonical definition behind each name so
// re-registering an identical definition (the same file loaded twice,
// or two files sharing a workload) is a no-op, while a conflicting one
// is an error — a name must mean one program.

var (
	regMu  sync.Mutex
	regDef = map[string]regEntry{}
)

type regEntry struct {
	spec      Spec
	canonical string
}

// canonicalSpec renders one workload spec in the same normalized form
// Canonical uses for whole files, for definition-identity comparison.
//
//sdv:cachekey
func canonicalSpec(s Spec) string {
	one := File{Version: Version, Workloads: []Spec{s}}
	return one.Canonical()
}

// RegisterFile compiles and registers every workload in a parsed file.
// Identical re-registration is a no-op; a name already bound to a
// different definition (or to a built-in) is an error.
func RegisterFile(f *File) error {
	regMu.Lock()
	defer regMu.Unlock()
	for _, s := range f.Workloads {
		canon := canonicalSpec(s)
		if prev, ok := regDef[s.Name]; ok {
			if prev.canonical == canon {
				continue
			}
			return fmt.Errorf("wspec: workload %q is already registered with a different definition", s.Name)
		}
		if err := workload.Register(CompileSpec(s)); err != nil {
			return err
		}
		regDef[s.Name] = regEntry{spec: s, canonical: canon}
	}
	return nil
}

// LoadAndRegister parses the spec file at path and registers its
// workloads, returning the parsed file.
func LoadAndRegister(path string) (*File, error) {
	f, err := ParseFile(path)
	if err != nil {
		return nil, err
	}
	if err := RegisterFile(f); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return f, nil
}

// Lookup returns the registered spec behind a generated workload name.
// The daemon uses it to fold `-spec`-registered definitions into job
// specs so cache keys always cover workload content.
func Lookup(name string) (Spec, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	e, ok := regDef[name]
	return e.spec, ok
}
