package wspec

import (
	"strings"
	"testing"
)

// FuzzParseSpec is the robustness half of the spec contract: arbitrary
// bytes fed to Parse never panic, every rejection is a one-line error,
// and anything accepted canonicalizes to a fixed point (parsing the
// canonical form reproduces it byte for byte).
func FuzzParseSpec(f *testing.F) {
	seeds := []string{
		"wspec: 1\nworkloads:\n  - name: gen.t\n    blocks:\n      - gen: stride\n",
		"wspec: 1\nworkloads:\n  - name: gen.t\n    seed: 7\n    fp: true\n    blocks:\n      - gen: mix\n        count: 64\n        fpPercent: 50\n",
		"wspec: 1\nworkloads:\n  - name: gen.t\n    blocks:\n      - gen: chase\n        nodes: 32\n        shuffle: true\n      - gen: branch\n        entropy: 100\n",
		`{"wspec":1,"workloads":[{"name":"gen.t","blocks":[{"gen":"gather","table":16,"span":64}]}]}`,
		`{"wspec":1,"workloads":[{"name":"gen.t","blocks":[{"gen":"depchain","distance":16}]}]}`,
		"wspec: 1\nworkloads:\n  - name: \"gen.q\" # comment\n    blocks:\n      - gen: stride\n        stride: 0\n",
		"wspec: 2\nworkloads: []\n",
		"not: even: close\n",
		"- just\n- a\n- list\n",
		"{]",
		"\twspec: 1\n",
		"wspec: 1\nworkloads: [inline, flow]\n",
		"",
		"\x00\xff\xfe",
		strings.Repeat("a", 100),
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := Parse(data) // must never panic
		if err != nil {
			if strings.Contains(err.Error(), "\n") {
				t.Fatalf("multi-line error: %q", err.Error())
			}
			return
		}
		// Accepted input: the canonical form must be a fixed point.
		canon := spec.Canonical()
		again, err := Parse([]byte(canon))
		if err != nil {
			t.Fatalf("canonical form rejected: %v\n%s", err, canon)
		}
		if got := again.Canonical(); got != canon {
			t.Fatalf("canonical form not a fixed point:\n%s\n%s", canon, got)
		}
	})
}
