package wspec

import (
	"bytes"
	"encoding/json"
	"fmt"

	"specvec/internal/workload"
)

// Version is the schema version this package reads and writes. The
// version is part of the spec file (`wspec: 1`) and therefore of every
// canonical encoding and cache key derived from one.
const Version = 1

// Bounds on spec shape. They exist so a fuzzer (or a typo) cannot ask a
// generator for gigabytes of embedded data: every limit is far above
// anything a realistic workload needs.
const (
	maxWorkloads = 64
	maxBlocks    = 64
	maxElems     = 1 << 20
	maxStride    = 64
	maxDistance  = 16
	maxNameLen   = 64
)

// File is one parsed workload-spec file.
type File struct {
	Version   int    `json:"wspec"`
	Workloads []Spec `json:"workloads"`
}

// Spec is one named workload: a composition of generator blocks executed
// in order inside a shared outer loop, exactly like the hand-written
// benchmarks in internal/workload.
type Spec struct {
	// Name identifies the workload in CLIs, job specs and tables. It must
	// be lowercase, start with a letter and not collide with a built-in
	// benchmark name.
	Name string `json:"name"`
	// FP classifies the workload for INT/FP aggregate rows.
	FP bool `json:"fp,omitempty"`
	// Seed is mixed into the runner's seed, so two workloads with
	// identical blocks still embed distinct data.
	Seed int64 `json:"seed,omitempty"`
	// Blocks are the generator phases, executed in order.
	Blocks []Block `json:"blocks"`
}

// Block is one parameterized generator phase. Gen selects the family;
// only that family's parameters may be set (the decoder rejects the
// rest), and zero parameters resolve to the documented defaults.
type Block struct {
	// Gen is the generator family: stride, gather, scatter, chase,
	// branch, depchain or mix.
	Gen string `json:"gen"`

	// stride: walk Elems words at Stride elements per step (0 = the same
	// address every step), accumulating loads; then store back into a
	// separate array over Stores percent of the walked elements.
	Elems  int `json:"elems,omitempty"`
	Stride int `json:"stride,omitempty"`
	Stores int `json:"stores,omitempty"`

	// gather/scatter: Count probes through a Table-entry index array into
	// a Span-word target (loads for gather, stores for scatter). Index
	// values are seed-random, so the probe addresses never gain stride
	// confidence.
	Table int `json:"table,omitempty"`
	Span  int `json:"span,omitempty"`
	Count int `json:"count,omitempty"`

	// chase: walk a linked list of Nodes cells for Depth steps (0 = the
	// whole list). Shuffle links the cells in a seed-random cycle instead
	// of address order, turning a learnable stride into a true pointer
	// chase.
	Nodes   int  `json:"nodes,omitempty"`
	Depth   int  `json:"depth,omitempty"`
	Shuffle bool `json:"shuffle,omitempty"`

	// branch: Count data-dependent branches; Entropy percent of them take
	// a seed-random direction, the rest fall through (0 = perfectly
	// predictable, 100 = coin flips).
	Entropy int `json:"entropy,omitempty"`

	// depchain: Count accumulations with loop-carried dependence
	// Distance: the chain is split over Distance rotating accumulators,
	// so iteration i depends on iteration i-Distance.
	Distance int `json:"distance,omitempty"`

	// mix: Count iterations each issuing eight arithmetic slots,
	// FPPercent of them floating-point.
	FPPercent int `json:"fpPercent,omitempty"`
}

// generator describes one family: which Block fields it may set and the
// defaults filled into absent ones. Field names here are the JSON/YAML
// keys; has reports whether a key appeared in the source, so an explicit
// zero (e.g. stride: 0, the stride-0 pattern) survives defaulting.
type generator struct {
	fields   map[string]bool
	defaults func(b *Block, has map[string]bool)
	validate func(*Block) error
}

func pctRange(name string, v int) error {
	if v < 0 || v > 100 {
		return fmt.Errorf("%s %d out of range [0,100]", name, v)
	}
	return nil
}

func sizeRange(name string, v, min int) error {
	if v < min || v > maxElems {
		return fmt.Errorf("%s %d out of range [%d,%d]", name, v, min, maxElems)
	}
	return nil
}

var generators = map[string]generator{
	"stride": {
		fields: map[string]bool{"elems": true, "stride": true, "stores": true},
		defaults: func(b *Block, has map[string]bool) {
			if b.Elems == 0 {
				b.Elems = 1024
			}
			if !has["stride"] {
				b.Stride = 1
			}
		},
		validate: func(b *Block) error {
			if err := sizeRange("elems", b.Elems, 1); err != nil {
				return err
			}
			if b.Stride < 0 || b.Stride > maxStride {
				return fmt.Errorf("stride %d out of range [0,%d]", b.Stride, maxStride)
			}
			if foot := (b.Elems-1)*b.Stride + 1; foot > maxElems {
				return fmt.Errorf("elems %d x stride %d spans %d words, over the %d-word limit", b.Elems, b.Stride, foot, maxElems)
			}
			return pctRange("stores", b.Stores)
		},
	},
	"gather": {
		fields:   map[string]bool{"table": true, "span": true, "count": true},
		defaults: defaultProbe,
		validate: validateProbe,
	},
	"scatter": {
		fields:   map[string]bool{"table": true, "span": true, "count": true},
		defaults: defaultProbe,
		validate: validateProbe,
	},
	"chase": {
		fields: map[string]bool{"nodes": true, "depth": true, "shuffle": true},
		defaults: func(b *Block, has map[string]bool) {
			if b.Nodes == 0 {
				b.Nodes = 1024
			}
			if b.Depth == 0 {
				b.Depth = b.Nodes - 1
			}
		},
		validate: func(b *Block) error {
			if err := sizeRange("nodes", b.Nodes, 2); err != nil {
				return err
			}
			return sizeRange("depth", b.Depth, 1)
		},
	},
	"branch": {
		fields: map[string]bool{"count": true, "entropy": true},
		defaults: func(b *Block, has map[string]bool) {
			if b.Count == 0 {
				b.Count = 1024
			}
		},
		validate: func(b *Block) error {
			if err := sizeRange("count", b.Count, 1); err != nil {
				return err
			}
			return pctRange("entropy", b.Entropy)
		},
	},
	"depchain": {
		fields: map[string]bool{"count": true, "distance": true},
		defaults: func(b *Block, has map[string]bool) {
			if b.Count == 0 {
				b.Count = 1024
			}
			if b.Distance == 0 {
				b.Distance = 1
			}
		},
		validate: func(b *Block) error {
			if err := sizeRange("count", b.Count, 1); err != nil {
				return err
			}
			if b.Distance < 1 || b.Distance > maxDistance {
				return fmt.Errorf("distance %d out of range [1,%d]", b.Distance, maxDistance)
			}
			return nil
		},
	},
	"mix": {
		fields: map[string]bool{"count": true, "fpPercent": true},
		defaults: func(b *Block, has map[string]bool) {
			if b.Count == 0 {
				b.Count = 1024
			}
		},
		validate: func(b *Block) error {
			if err := sizeRange("count", b.Count, 1); err != nil {
				return err
			}
			return pctRange("fpPercent", b.FPPercent)
		},
	},
}

// MarshalJSON emits every field of the block's generator family
// explicitly, in schema order. omitempty would drop an explicit zero
// (stride: 0) and let the default (1) re-apply on the next parse — the
// canonical form must be a fixed point, and two different specs must
// never share one.
func (b Block) MarshalJSON() ([]byte, error) {
	var sb bytes.Buffer
	fmt.Fprintf(&sb, `{"gen":%q`, b.Gen)
	field := func(name string, v int) { fmt.Fprintf(&sb, `,%q:%d`, name, v) }
	switch b.Gen {
	case "stride":
		field("elems", b.Elems)
		field("stride", b.Stride)
		field("stores", b.Stores)
	case "gather", "scatter":
		field("table", b.Table)
		field("span", b.Span)
		field("count", b.Count)
	case "chase":
		field("nodes", b.Nodes)
		field("depth", b.Depth)
		fmt.Fprintf(&sb, `,"shuffle":%v`, b.Shuffle)
	case "branch":
		field("count", b.Count)
		field("entropy", b.Entropy)
	case "depchain":
		field("count", b.Count)
		field("distance", b.Distance)
	case "mix":
		field("count", b.Count)
		field("fpPercent", b.FPPercent)
	}
	sb.WriteByte('}')
	return sb.Bytes(), nil
}

func defaultProbe(b *Block, has map[string]bool) {
	if b.Table == 0 {
		b.Table = 512
	}
	if b.Span == 0 {
		b.Span = 4096
	}
	if b.Count == 0 {
		b.Count = b.Table
	}
}

func validateProbe(b *Block) error {
	if err := sizeRange("table", b.Table, 1); err != nil {
		return err
	}
	if err := sizeRange("span", b.Span, 1); err != nil {
		return err
	}
	return sizeRange("count", b.Count, 1)
}

// GeneratorFamilies returns the known generator names in a fixed order
// (for docs and error messages).
func GeneratorFamilies() []string {
	return []string{"stride", "gather", "scatter", "chase", "branch", "depchain", "mix"}
}

// validName reports whether a workload name fits the schema: lowercase,
// leading letter, then letters/digits/._- up to maxNameLen.
func validName(name string) bool {
	if len(name) == 0 || len(name) > maxNameLen {
		return false
	}
	if name[0] < 'a' || name[0] > 'z' {
		return false
	}
	for i := 1; i < len(name); i++ {
		c := name[i]
		ok := (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-'
		if !ok {
			return false
		}
	}
	return true
}

// validate checks the parsed file, resolves every generator default in
// place and rejects anything out of schema with a one-line error.
func (f *File) validate() error {
	if f.Version != Version {
		return fmt.Errorf("wspec: unsupported version %d (want wspec: %d)", f.Version, Version)
	}
	if len(f.Workloads) == 0 {
		return fmt.Errorf("wspec: empty spec: no workloads defined")
	}
	if len(f.Workloads) > maxWorkloads {
		return fmt.Errorf("wspec: %d workloads exceeds the limit of %d", len(f.Workloads), maxWorkloads)
	}
	builtins := map[string]bool{}
	for _, n := range workload.Names() {
		builtins[n] = true
	}
	seen := map[string]bool{}
	for wi := range f.Workloads {
		w := &f.Workloads[wi]
		switch {
		case !validName(w.Name):
			return fmt.Errorf("wspec: workload %d: invalid name %q (want lowercase [a-z][a-z0-9._-]{0,%d})", wi, w.Name, maxNameLen-1)
		case w.Name == "all":
			return fmt.Errorf("wspec: workload %d: name %q is reserved by the CLIs", wi, w.Name)
		case builtins[w.Name]:
			return fmt.Errorf("wspec: workload %q collides with a built-in benchmark", w.Name)
		case seen[w.Name]:
			return fmt.Errorf("wspec: duplicate workload name %q", w.Name)
		}
		seen[w.Name] = true
		if len(w.Blocks) == 0 {
			return fmt.Errorf("wspec: workload %q: no generator blocks", w.Name)
		}
		if len(w.Blocks) > maxBlocks {
			return fmt.Errorf("wspec: workload %q: %d blocks exceeds the limit of %d", w.Name, len(w.Blocks), maxBlocks)
		}
		for bi := range w.Blocks {
			b := &w.Blocks[bi]
			g, ok := generators[b.Gen]
			if !ok {
				return fmt.Errorf("wspec: workload %q block %d: unknown generator %q (have %v)", w.Name, bi, b.Gen, GeneratorFamilies())
			}
			if err := g.validate(b); err != nil {
				return fmt.Errorf("wspec: workload %q block %d (%s): %v", w.Name, bi, b.Gen, err)
			}
		}
	}
	return nil
}

// Canonical renders the validated file as normalized JSON: schema-ordered
// fields, defaults resolved, no insignificant whitespace. Two spec files
// that differ only in formatting, key order or omitted defaults share a
// canonical form — and therefore a cache key.
//
//sdv:cachekey
func (f *File) Canonical() string {
	b, err := json.Marshal(f)
	if err != nil {
		// File is plain data; Marshal cannot fail.
		panic(fmt.Sprintf("wspec: marshalling File: %v", err))
	}
	return string(b)
}

// Names returns the workload names in file order.
func (f *File) Names() []string {
	out := make([]string, len(f.Workloads))
	for i, w := range f.Workloads {
		out[i] = w.Name
	}
	return out
}
