package wspec

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// The strict decoder walks the generic tree produced by parseYAML or the
// JSON decoder and builds a File, rejecting unknown fields, wrong types
// and out-of-family generator parameters. Both input formats flow
// through the same code, so "strict" means the same thing for each.

// decodeFile converts a generic tree into a validated File with every
// generator default resolved.
func decodeFile(v any) (*File, error) {
	obj, err := asObject(v, "spec")
	if err != nil {
		return nil, err
	}
	if err := obj.allow("wspec", "workloads"); err != nil {
		return nil, err
	}
	f := &File{}
	if f.Version, err = obj.requireInt("wspec"); err != nil {
		return nil, err
	}
	items, err := obj.requireList("workloads")
	if err != nil {
		return nil, err
	}
	for i, item := range items {
		w, err := decodeWorkload(item, i)
		if err != nil {
			return nil, err
		}
		f.Workloads = append(f.Workloads, w)
	}
	if err := f.validate(); err != nil {
		return nil, err
	}
	return f, nil
}

func decodeWorkload(v any, idx int) (Spec, error) {
	where := fmt.Sprintf("workload %d", idx)
	obj, err := asObject(v, where)
	if err != nil {
		return Spec{}, err
	}
	if err := obj.allow("name", "fp", "seed", "blocks"); err != nil {
		return Spec{}, err
	}
	var w Spec
	if w.Name, err = obj.requireString("name"); err != nil {
		return Spec{}, err
	}
	if w.FP, _, err = obj.optionalBool("fp"); err != nil {
		return Spec{}, err
	}
	if w.Seed, _, err = obj.optionalInt64("seed"); err != nil {
		return Spec{}, err
	}
	items, err := obj.requireList("blocks")
	if err != nil {
		return Spec{}, err
	}
	for i, item := range items {
		b, err := decodeBlock(item, w.Name, i)
		if err != nil {
			return Spec{}, err
		}
		w.Blocks = append(w.Blocks, b)
	}
	return w, nil
}

// blockFields maps schema keys to Block field setters. Every generator
// parameter is an int except shuffle; gen itself is handled separately.
var blockFields = map[string]func(*Block, int){
	"elems":     func(b *Block, v int) { b.Elems = v },
	"stride":    func(b *Block, v int) { b.Stride = v },
	"stores":    func(b *Block, v int) { b.Stores = v },
	"table":     func(b *Block, v int) { b.Table = v },
	"span":      func(b *Block, v int) { b.Span = v },
	"count":     func(b *Block, v int) { b.Count = v },
	"nodes":     func(b *Block, v int) { b.Nodes = v },
	"depth":     func(b *Block, v int) { b.Depth = v },
	"entropy":   func(b *Block, v int) { b.Entropy = v },
	"distance":  func(b *Block, v int) { b.Distance = v },
	"fpPercent": func(b *Block, v int) { b.FPPercent = v },
}

func decodeBlock(v any, wl string, idx int) (Block, error) {
	where := fmt.Sprintf("workload %q block %d", wl, idx)
	obj, err := asObject(v, where)
	if err != nil {
		return Block{}, err
	}
	var b Block
	if b.Gen, err = obj.requireString("gen"); err != nil {
		return Block{}, err
	}
	g, ok := generators[b.Gen]
	if !ok {
		return Block{}, fmt.Errorf("wspec: %s: unknown generator %q (have %v)", where, b.Gen, GeneratorFamilies())
	}
	has := map[string]bool{}
	for _, key := range obj.sortedKeys() {
		if key == "gen" {
			continue
		}
		if !g.fields[key] {
			if _, known := blockFields[key]; known || key == "shuffle" {
				return Block{}, fmt.Errorf("wspec: %s: field %q does not apply to generator %q", where, key, b.Gen)
			}
			return Block{}, fmt.Errorf("wspec: %s: unknown field %q", where, key)
		}
		has[key] = true
		if key == "shuffle" {
			if b.Shuffle, _, err = obj.optionalBool("shuffle"); err != nil {
				return Block{}, err
			}
			continue
		}
		n, err := obj.requireInt(key)
		if err != nil {
			return Block{}, err
		}
		blockFields[key](&b, n)
	}
	g.defaults(&b, has)
	return b, nil
}

// ---- generic-tree accessors ----

// object wraps a decoded map with a location for error messages.
type object struct {
	where string
	m     map[string]any
}

func asObject(v any, where string) (object, error) {
	m, ok := v.(map[string]any)
	if !ok {
		return object{}, fmt.Errorf("wspec: %s: want a mapping, got %s", where, typeName(v))
	}
	return object{where: where, m: m}, nil
}

// allow rejects keys outside the given set. The lexicographically first
// offender is reported so the message is deterministic.
func (o object) allow(keys ...string) error {
	ok := map[string]bool{}
	for _, k := range keys {
		ok[k] = true
	}
	var bad []string
	for k := range o.m {
		if !ok[k] {
			bad = append(bad, k)
		}
	}
	if len(bad) == 0 {
		return nil
	}
	sort.Strings(bad)
	return fmt.Errorf("wspec: %s: unknown field %q", o.where, bad[0])
}

func (o object) sortedKeys() []string {
	keys := make([]string, 0, len(o.m))
	for k := range o.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (o object) requireString(key string) (string, error) {
	v, ok := o.m[key]
	if !ok {
		return "", fmt.Errorf("wspec: %s: missing required field %q", o.where, key)
	}
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("wspec: %s: field %q: want a string, got %s", o.where, key, typeName(v))
	}
	return s, nil
}

func (o object) requireList(key string) ([]any, error) {
	v, ok := o.m[key]
	if !ok {
		return nil, fmt.Errorf("wspec: %s: missing required field %q", o.where, key)
	}
	l, ok := v.([]any)
	if !ok {
		return nil, fmt.Errorf("wspec: %s: field %q: want a list, got %s", o.where, key, typeName(v))
	}
	return l, nil
}

func (o object) requireInt(key string) (int, error) {
	n, _, err := o.optionalInt64(key)
	if err != nil {
		return 0, err
	}
	if n < math.MinInt32 || n > math.MaxInt32 {
		return 0, fmt.Errorf("wspec: %s: field %q: %d overflows", o.where, key, n)
	}
	return int(n), nil
}

func (o object) optionalInt64(key string) (int64, bool, error) {
	v, ok := o.m[key]
	if !ok {
		return 0, false, nil
	}
	n, err := toInt64(v)
	if err != nil {
		return 0, true, fmt.Errorf("wspec: %s: field %q: %v", o.where, key, err)
	}
	return n, true, nil
}

func (o object) optionalBool(key string) (bool, bool, error) {
	v, ok := o.m[key]
	if !ok {
		return false, false, nil
	}
	b, ok := v.(bool)
	if !ok {
		return false, true, fmt.Errorf("wspec: %s: field %q: want a boolean, got %s", o.where, key, typeName(v))
	}
	return b, true, nil
}

// toInt64 accepts the integer representations the two front ends
// produce: int64 (YAML), json.Number (JSON) and exact float64s.
func toInt64(v any) (int64, error) {
	switch n := v.(type) {
	case int64:
		return n, nil
	case json.Number:
		i, err := n.Int64()
		if err != nil {
			return 0, fmt.Errorf("want an integer, got %q", n.String())
		}
		return i, nil
	case float64:
		if n != math.Trunc(n) || math.Abs(n) > 1<<53 {
			return 0, fmt.Errorf("want an integer, got %v", n)
		}
		return int64(n), nil
	default:
		return 0, fmt.Errorf("want an integer, got %s", typeName(v))
	}
}

func typeName(v any) string {
	switch v.(type) {
	case nil:
		return "null"
	case map[string]any:
		return "a mapping"
	case []any:
		return "a list"
	case string:
		return "a string"
	case bool:
		return "a boolean"
	case int64, float64, json.Number:
		return "a number"
	default:
		return fmt.Sprintf("%T", v)
	}
}
