package wspec

import (
	"fmt"
	"strconv"
	"strings"
)

// This file implements the YAML subset workload specs are written in:
// block-style maps and lists with two-space-per-level indentation,
// scalars (strings, integers, floats, booleans, null), `#` comments and
// quoted strings. Flow collections ([a, b] / {k: v}), anchors, tags and
// multi-line scalars are out of scope — a spec that needs them can use
// JSON. The parser is fuzzed: it must reject anything outside the subset
// with a one-line error and never panic.

const (
	maxSpecBytes = 1 << 20
	maxYAMLDepth = 16
)

type yamlLine struct {
	num    int // 1-based source line
	indent int
	text   string // content with indentation stripped
}

type yamlParser struct {
	lines []yamlLine
	pos   int
}

func yamlErr(line int, format string, args ...any) error {
	return fmt.Errorf("yaml line %d: %s", line, fmt.Sprintf(format, args...))
}

// parseYAML decodes data into the generic tree (map[string]any, []any,
// string, int64, float64, bool, nil) shared with the JSON path.
func parseYAML(data []byte) (any, error) {
	if len(data) > maxSpecBytes {
		return nil, fmt.Errorf("yaml: input %d bytes exceeds the %d-byte limit", len(data), maxSpecBytes)
	}
	p := &yamlParser{}
	for i, raw := range strings.Split(string(data), "\n") {
		line, err := splitLine(i+1, raw)
		if err != nil {
			return nil, err
		}
		if line.text == "" {
			continue
		}
		p.lines = append(p.lines, line)
	}
	if len(p.lines) == 0 {
		return nil, fmt.Errorf("yaml: empty document")
	}
	v, err := p.parseBlock(p.lines[0].indent, 0)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		l := p.lines[p.pos]
		return nil, yamlErr(l.num, "unexpected content %q after the document (bad indentation?)", l.text)
	}
	return v, nil
}

// splitLine measures indentation and strips comments and trailing space.
func splitLine(num int, raw string) (yamlLine, error) {
	raw = strings.TrimSuffix(raw, "\r")
	indent := 0
	for indent < len(raw) && raw[indent] == ' ' {
		indent++
	}
	if indent < len(raw) && raw[indent] == '\t' {
		return yamlLine{}, yamlErr(num, "tab in indentation (use spaces)")
	}
	text := stripComment(raw[indent:])
	text = strings.TrimRight(text, " \t")
	if text == "" {
		return yamlLine{num: num}, nil
	}
	return yamlLine{num: num, indent: indent, text: text}, nil
}

// stripComment removes a trailing `# ...` comment, respecting quotes.
func stripComment(s string) string {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '#' && (i == 0 || s[i-1] == ' ' || s[i-1] == '\t'):
			return s[:i]
		}
	}
	return s
}

func (p *yamlParser) cur() (yamlLine, bool) {
	if p.pos >= len(p.lines) {
		return yamlLine{}, false
	}
	return p.lines[p.pos], true
}

// parseBlock parses the map or list starting at the current line, which
// must sit exactly at indent.
func (p *yamlParser) parseBlock(indent, depth int) (any, error) {
	if depth > maxYAMLDepth {
		l, _ := p.cur()
		return nil, yamlErr(l.num, "nesting deeper than %d levels", maxYAMLDepth)
	}
	l, ok := p.cur()
	if !ok {
		return nil, fmt.Errorf("yaml: unexpected end of document")
	}
	if l.indent != indent {
		return nil, yamlErr(l.num, "bad indentation: got %d spaces, want %d", l.indent, indent)
	}
	if strings.HasPrefix(l.text, "- ") || l.text == "-" {
		return p.parseList(indent, depth)
	}
	return p.parseMap(indent, depth)
}

func (p *yamlParser) parseList(indent, depth int) (any, error) {
	var out []any
	for {
		l, ok := p.cur()
		if !ok || l.indent != indent || !(strings.HasPrefix(l.text, "- ") || l.text == "-") {
			if ok && l.indent > indent {
				return nil, yamlErr(l.num, "bad indentation inside list (got %d spaces, want %d)", l.indent, indent)
			}
			return out, nil
		}
		rest := strings.TrimPrefix(strings.TrimPrefix(l.text, "-"), " ")
		switch {
		case rest == "":
			// `-` alone: the item is the indented block below.
			p.pos++
			next, ok := p.cur()
			if !ok || next.indent <= indent {
				return nil, yamlErr(l.num, "empty list item")
			}
			item, err := p.parseBlock(next.indent, depth+1)
			if err != nil {
				return nil, err
			}
			out = append(out, item)
		case looksLikeKey(rest):
			// `- key: ...`: an inline map whose further keys align with
			// `key` (two columns past the dash).
			inner := indent + (len(l.text) - len(rest))
			p.lines[p.pos] = yamlLine{num: l.num, indent: inner, text: rest}
			item, err := p.parseMap(inner, depth+1)
			if err != nil {
				return nil, err
			}
			out = append(out, item)
		default:
			p.pos++
			v, err := parseScalar(l.num, rest)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
	}
}

func (p *yamlParser) parseMap(indent, depth int) (any, error) {
	out := map[string]any{}
	for {
		l, ok := p.cur()
		if !ok || l.indent != indent {
			if ok && l.indent > indent {
				return nil, yamlErr(l.num, "bad indentation inside mapping (got %d spaces, want %d)", l.indent, indent)
			}
			if len(out) == 0 {
				return nil, fmt.Errorf("yaml: empty mapping at end of document")
			}
			return out, nil
		}
		if strings.HasPrefix(l.text, "- ") || l.text == "-" {
			return nil, yamlErr(l.num, "list item inside a mapping")
		}
		key, rest, err := splitKey(l.num, l.text)
		if err != nil {
			return nil, err
		}
		if _, dup := out[key]; dup {
			return nil, yamlErr(l.num, "duplicate key %q", key)
		}
		p.pos++
		if rest == "" {
			next, ok := p.cur()
			if !ok || next.indent <= indent {
				out[key] = nil // `key:` with nothing nested is null
				continue
			}
			v, err := p.parseBlock(next.indent, depth+1)
			if err != nil {
				return nil, err
			}
			out[key] = v
			continue
		}
		v, err := parseScalar(l.num, rest)
		if err != nil {
			return nil, err
		}
		out[key] = v
	}
}

// looksLikeKey reports whether s begins a `key: value` / `key:` mapping
// entry (a colon at top level, outside quotes, followed by space or EOL).
func looksLikeKey(s string) bool {
	_, _, err := splitKey(0, s)
	return err == nil
}

// splitKey splits `key: rest` (rest possibly empty). The key may be
// quoted; an unquoted key stops at the first colon.
func splitKey(num int, s string) (string, string, error) {
	if s == "" {
		return "", "", yamlErr(num, "empty mapping entry")
	}
	if s[0] == '"' || s[0] == '\'' {
		key, n, err := unquote(num, s)
		if err != nil {
			return "", "", err
		}
		tail := s[n:]
		if !strings.HasPrefix(tail, ":") {
			return "", "", yamlErr(num, "missing ':' after quoted key")
		}
		return key, strings.TrimLeft(tail[1:], " "), nil
	}
	i := strings.IndexByte(s, ':')
	if i < 0 {
		return "", "", yamlErr(num, "missing ':' in mapping entry %q", s)
	}
	if i+1 < len(s) && s[i+1] != ' ' {
		return "", "", yamlErr(num, "missing space after ':' in %q", s)
	}
	key := strings.TrimRight(s[:i], " ")
	if key == "" {
		return "", "", yamlErr(num, "empty key in %q", s)
	}
	return key, strings.TrimLeft(s[i+1:], " "), nil
}

// unquote reads a leading quoted string and returns it with the number
// of source bytes consumed.
func unquote(num int, s string) (string, int, error) {
	q := s[0]
	var sb strings.Builder
	for i := 1; i < len(s); i++ {
		c := s[i]
		switch {
		case q == '"' && c == '\\':
			if i+1 >= len(s) {
				return "", 0, yamlErr(num, "dangling escape in %q", s)
			}
			i++
			switch s[i] {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '\\', '"', '\'':
				sb.WriteByte(s[i])
			default:
				return "", 0, yamlErr(num, "unsupported escape \\%c", s[i])
			}
		case c == q:
			if q == '\'' && i+1 < len(s) && s[i+1] == '\'' {
				sb.WriteByte('\'') // YAML doubles single quotes
				i++
				continue
			}
			return sb.String(), i + 1, nil
		default:
			sb.WriteByte(c)
		}
	}
	return "", 0, yamlErr(num, "unterminated quoted string %q", s)
}

// parseScalar decodes a scalar value: quoted string, boolean, null,
// integer, float, or a bare string.
func parseScalar(num int, s string) (any, error) {
	if s[0] == '"' || s[0] == '\'' {
		v, n, err := unquote(num, s)
		if err != nil {
			return nil, err
		}
		if n != len(s) {
			return nil, yamlErr(num, "trailing content %q after quoted scalar", s[n:])
		}
		return v, nil
	}
	switch s {
	case "true", "True":
		return true, nil
	case "false", "False":
		return false, nil
	case "null", "~":
		return nil, nil
	}
	if i, err := strconv.ParseInt(s, 0, 64); err == nil {
		return i, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	if strings.HasPrefix(s, "[") || strings.HasPrefix(s, "{") || strings.HasPrefix(s, "&") || strings.HasPrefix(s, "*") || strings.HasPrefix(s, "|") || strings.HasPrefix(s, ">") {
		return nil, yamlErr(num, "unsupported YAML syntax %q (flow collections, anchors and block scalars are outside the spec subset; use JSON)", s)
	}
	return s, nil
}
