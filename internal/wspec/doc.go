// Package wspec implements declarative workload specifications: a
// versioned YAML/JSON schema that composes parameterized program
// generators — stride/gather/scatter sweeps, pointer chasing,
// branch-entropy knobs, loop-carried dependence distance, INT/FP mix —
// into named synthetic benchmarks that run everywhere a built-in
// workload does (sdvsim, sdvexp sweeps, gang replay, shards, the sdvd
// result cache).
//
// The package upholds a determinism contract every downstream layer
// depends on: the same (spec, seed) pair compiles to a byte-identical
// isa.Program, which records to a byte-identical trace and therefore an
// equal content-addressed cache key, while distinct seeds produce
// distinct programs. The contract is pinned by the property tests and
// the FuzzParseSpec harness in this package.
//
// Specs are parsed strictly: unknown fields, parameters outside their
// documented ranges, duplicate or built-in-colliding workload names and
// malformed YAML/JSON are all rejected with one-line errors, and
// decoding arbitrary bytes never panics. Canonical() renders the parsed
// file as normalized JSON (defaults resolved, fields in schema order),
// which is the form the server hashes into job cache keys.
package wspec
