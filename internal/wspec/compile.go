package wspec

import (
	"fmt"
	"strings"

	"specvec/internal/isa"
	"specvec/internal/workload"
)

// The compiler turns a validated Spec into a workload.Benchmark whose
// Build emits an isa.Program. Generation is fully deterministic: data
// arrays come from a splitmix64 stream seeded by mixSeed(runner seed,
// spec seed, block index), instruction sequences depend only on the
// block parameters, and nothing reads maps in iteration order — so the
// same (spec, seed) always yields a byte-identical program.

// Register conventions, mirroring internal/workload: r29/r28 are the
// outer-loop counter and bound, r0 stays zero, everything below is
// scratch the block emitters may clobber.
var (
	rZero = isa.IntReg(0)
	rIter = isa.IntReg(29)
	rLim  = isa.IntReg(28)
)

func ri(i int) isa.Reg { return isa.IntReg(i) }
func rf(i int) isa.Reg { return isa.FPReg(i) }

// sm64 is splitmix64 — a different family from internal/workload's LCG,
// so generated data streams never alias built-in ones.
type sm64 struct{ s uint64 }

func (r *sm64) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *sm64) words(n int, mod uint64) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		if mod == 0 {
			out[i] = r.next()
		} else {
			out[i] = r.next() % mod
		}
	}
	return out
}

func (r *sm64) floats(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(r.next()%1_000_000+1) / 1_000_000
	}
	return out
}

// blockRng derives the data stream for one block. The runner seed, the
// workload's spec seed and the block index all feed the state, so
// distinct seeds (and distinct blocks) draw from distinct streams.
func blockRng(runnerSeed, specSeed int64, block int) *sm64 {
	r := &sm64{s: uint64(runnerSeed)}
	r.s = r.next() ^ uint64(specSeed)
	r.s = r.next() + uint64(block)*0x9e3779b97f4a7c15
	return r
}

// CompileSpec compiles one workload spec into a runnable benchmark. The
// spec must come from Parse (defaults resolved, validated).
func CompileSpec(s Spec) workload.Benchmark {
	spec := s
	spec.Blocks = append([]Block{}, s.Blocks...)
	return workload.Benchmark{
		Name:        spec.Name,
		FP:          spec.FP,
		Generated:   true,
		Description: describe(spec),
		Build: func(scale int, seed int64) *isa.Program {
			return buildSpec(spec, scale, seed)
		},
	}
}

// describe summarises the block composition for workload listings.
func describe(s Spec) string {
	parts := make([]string, len(s.Blocks))
	for i, b := range s.Blocks {
		parts[i] = blockLabel(b)
	}
	return "Spec-generated workload: " + strings.Join(parts, ", ") + "."
}

func blockLabel(b Block) string {
	switch b.Gen {
	case "stride":
		return fmt.Sprintf("stride(elems=%d stride=%d stores=%d%%)", b.Elems, b.Stride, b.Stores)
	case "gather", "scatter":
		return fmt.Sprintf("%s(table=%d span=%d count=%d)", b.Gen, b.Table, b.Span, b.Count)
	case "chase":
		shuf := ""
		if b.Shuffle {
			shuf = " shuffled"
		}
		return fmt.Sprintf("chase(nodes=%d depth=%d%s)", b.Nodes, b.Depth, shuf)
	case "branch":
		return fmt.Sprintf("branch(count=%d entropy=%d%%)", b.Count, b.Entropy)
	case "depchain":
		return fmt.Sprintf("depchain(count=%d distance=%d)", b.Count, b.Distance)
	case "mix":
		return fmt.Sprintf("mix(count=%d fp=%d%%)", b.Count, b.FPPercent)
	default:
		return b.Gen
	}
}

func buildSpec(s Spec, scale int, seed int64) *isa.Program {
	b := isa.NewBuilder(s.Name)
	var bodies []func()
	total := 0
	for i, blk := range s.Blocks {
		body, cost := emitBlock(b, fmt.Sprintf("b%d", i), blk, blockRng(seed, s.Seed, i))
		bodies = append(bodies, body)
		total += cost
	}
	reps := scale / total
	if reps < 1 {
		reps = 1
	}
	b.Li(rIter, 0)
	b.Li(rLim, int64(reps))
	b.Label("spec_outer")
	for _, body := range bodies {
		body()
	}
	b.Addi(rIter, rIter, 1)
	b.Blt(rIter, rLim, "spec_outer")
	b.Halt()
	return b.MustBuild()
}

// emitBlock places the block's data now and returns the code emitter for
// the outer-loop body plus an analytic per-outer-iteration dynamic
// instruction cost used to size the trip count.
func emitBlock(b *isa.Builder, pfx string, blk Block, r *sm64) (func(), int) {
	switch blk.Gen {
	case "stride":
		return emitStride(b, pfx, blk, r)
	case "gather":
		return emitProbe(b, pfx, blk, r, false)
	case "scatter":
		return emitProbe(b, pfx, blk, r, true)
	case "chase":
		return emitChase(b, pfx, blk, r)
	case "branch":
		return emitBranch(b, pfx, blk, r)
	case "depchain":
		return emitDepchain(b, pfx, blk)
	case "mix":
		return emitMix(b, pfx, blk, r)
	default:
		// validate() guarantees a known generator.
		panic("wspec: unknown generator " + blk.Gen)
	}
}

// emitStride: walk elems loads at a fixed element stride, accumulating,
// then store the sum back over stores% of the walked elements. Every
// static load keeps a constant address delta, so the stride predictor
// gains full confidence (including the stride-0 case).
func emitStride(b *isa.Builder, pfx string, blk Block, r *sm64) (func(), int) {
	footprint := (blk.Elems-1)*blk.Stride + 1
	b.DataWords(pfx+"_arr", r.words(footprint, 1<<20))
	storeCount := blk.Elems * blk.Stores / 100
	if storeCount > 0 {
		b.DataZero(pfx+"_out", storeCount)
	}
	body := func() {
		b.LoadAddr(ri(1), pfx+"_arr")
		b.Li(ri(2), 0)
		b.Li(ri(3), int64(blk.Elems))
		b.Li(ri(5), 0) // accumulator
		b.Label(pfx + "_walk")
		b.Ld(ri(4), ri(1), 0)
		b.Add(ri(5), ri(5), ri(4))
		b.Addi(ri(1), ri(1), int64(blk.Stride)*isa.WordBytes)
		b.Addi(ri(2), ri(2), 1)
		b.Blt(ri(2), ri(3), pfx+"_walk")
		if storeCount > 0 {
			b.LoadAddr(ri(1), pfx+"_out")
			b.Li(ri(2), 0)
			b.Li(ri(3), int64(storeCount))
			b.Label(pfx + "_store")
			b.St(ri(5), ri(1), 0)
			b.Addi(ri(1), ri(1), isa.WordBytes)
			b.Addi(ri(2), ri(2), 1)
			b.Blt(ri(2), ri(3), pfx+"_store")
		}
	}
	cost := 4 + blk.Elems*5
	if storeCount > 0 {
		cost += 3 + storeCount*4
	}
	return body, cost
}

// emitProbe: gather (loads) or scatter (stores) through a seed-random
// index table into a span-word target, wrapping over the table when
// count exceeds it. Probe addresses are data-dependent, so they defeat
// stride prediction the way hash probes do.
func emitProbe(b *isa.Builder, pfx string, blk Block, r *sm64, store bool) (func(), int) {
	b.DataWords(pfx+"_idx", r.words(blk.Table, uint64(blk.Span)))
	if store {
		b.DataZero(pfx+"_tgt", blk.Span)
	} else {
		b.DataWords(pfx+"_tgt", r.words(blk.Span, 1<<20))
	}
	body := func() {
		b.LoadAddr(ri(1), pfx+"_idx")
		b.LoadAddr(ri(2), pfx+"_tgt")
		b.Li(ri(3), 0) // probes issued
		b.Li(ri(4), int64(blk.Count))
		b.Li(ri(8), 0) // accumulator
		b.Li(ri(9), 0) // table cursor
		b.Li(ri(10), int64(blk.Table))
		b.Label(pfx + "_probe")
		b.Ld(ri(5), ri(1), 0)
		b.Slli(ri(5), ri(5), 3)
		b.Add(ri(6), ri(2), ri(5))
		if store {
			b.St(ri(3), ri(6), 0)
		} else {
			b.Ld(ri(7), ri(6), 0)
			b.Add(ri(8), ri(8), ri(7))
		}
		b.Addi(ri(1), ri(1), isa.WordBytes)
		b.Addi(ri(9), ri(9), 1)
		b.Blt(ri(9), ri(10), pfx+"_nowrap")
		b.LoadAddr(ri(1), pfx+"_idx")
		b.Li(ri(9), 0)
		b.Label(pfx + "_nowrap")
		b.Addi(ri(3), ri(3), 1)
		b.Blt(ri(3), ri(4), pfx+"_probe")
	}
	per := 9
	if !store {
		per = 10
	}
	return body, 7 + blk.Count*per
}

// emitChase: walk a linked list of two-word cells [next index, payload]
// for depth steps. The next-index load feeds the following iteration's
// address, forming a true pointer chase; with shuffle the links are a
// Sattolo cycle, otherwise sequential (a learnable stride-2 pattern).
func emitChase(b *isa.Builder, pfx string, blk Block, r *sm64) (func(), int) {
	n := blk.Nodes
	next := make([]int, n)
	if blk.Shuffle {
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		// Sattolo's algorithm: the resulting permutation is one cycle.
		for i := n - 1; i > 0; i-- {
			j := int(r.next() % uint64(i))
			perm[i], perm[j] = perm[j], perm[i]
		}
		copy(next, perm)
	} else {
		for i := range next {
			next[i] = (i + 1) % n
		}
	}
	cells := make([]uint64, 2*n)
	for i := 0; i < n; i++ {
		cells[2*i] = uint64(next[i])
		cells[2*i+1] = r.next() % (1 << 20)
	}
	b.DataWords(pfx+"_list", cells)
	body := func() {
		b.LoadAddr(ri(1), pfx+"_list")
		b.Li(ri(2), 0) // current node index
		b.Li(ri(3), 0) // steps taken
		b.Li(ri(4), int64(blk.Depth))
		b.Li(ri(8), 0) // accumulator
		b.Label(pfx + "_chase")
		b.Slli(ri(5), ri(2), 4) // 16-byte cells
		b.Add(ri(6), ri(1), ri(5))
		b.Ld(ri(7), ri(6), isa.WordBytes)
		b.Add(ri(8), ri(8), ri(7))
		b.Ld(ri(2), ri(6), 0)
		b.Addi(ri(3), ri(3), 1)
		b.Blt(ri(3), ri(4), pfx+"_chase")
	}
	return body, 5 + blk.Depth*7
}

// emitBranch: count data-dependent branches over an outcome array.
// entropy% of the outcomes are coin flips, the rest always fall
// through, dialling predictability from perfect to none.
func emitBranch(b *isa.Builder, pfx string, blk Block, r *sm64) (func(), int) {
	outcomes := make([]uint64, blk.Count)
	for i := range outcomes {
		if r.next()%100 < uint64(blk.Entropy) {
			outcomes[i] = r.next() & 1
		}
	}
	b.DataWords(pfx+"_dir", outcomes)
	body := func() {
		b.LoadAddr(ri(1), pfx+"_dir")
		b.Li(ri(2), 0)
		b.Li(ri(3), int64(blk.Count))
		b.Li(ri(5), 0)
		b.Label(pfx + "_loop")
		b.Ld(ri(4), ri(1), 0)
		b.Bne(ri(4), rZero, pfx+"_taken")
		b.Addi(ri(5), ri(5), 1)
		b.J(pfx + "_join")
		b.Label(pfx + "_taken")
		b.Addi(ri(5), ri(5), 3)
		b.Xor(ri(6), ri(5), ri(2))
		b.Label(pfx + "_join")
		b.Addi(ri(1), ri(1), isa.WordBytes)
		b.Addi(ri(2), ri(2), 1)
		b.Blt(ri(2), ri(3), pfx+"_loop")
	}
	return body, 4 + blk.Count*7
}

// emitDepchain: count accumulations split across distance rotating
// accumulator registers, so each update depends on the one distance
// logical iterations earlier — the serialisation knob for loop-carried
// dependences.
func emitDepchain(b *isa.Builder, pfx string, blk Block) (func(), int) {
	d := blk.Distance
	trips := blk.Count / d
	if trips < 1 {
		trips = 1
	}
	body := func() {
		for k := 0; k < d; k++ {
			b.Li(ri(1+k), int64(k+1))
		}
		b.Li(ri(20), 0)
		b.Li(ri(21), int64(trips))
		b.Label(pfx + "_chain")
		for k := 0; k < d; k++ {
			b.Addi(ri(1+k), ri(1+k), 3)
		}
		b.Addi(ri(20), ri(20), 1)
		b.Blt(ri(20), ri(21), pfx+"_chain")
	}
	return body, d + 2 + trips*(d+2)
}

// emitMix: count iterations each loading one int and one float operand
// and issuing eight arithmetic slots, fpPercent of them floating-point,
// interleaved Bresenham-style so the mix is even rather than clustered.
func emitMix(b *isa.Builder, pfx string, blk Block, r *sm64) (func(), int) {
	const opTab = 64
	b.DataWords(pfx+"_ia", r.words(opTab, 1<<20))
	b.DataFloats(pfx+"_fa", r.floats(opTab))
	body := func() {
		b.LoadAddr(ri(1), pfx+"_ia")
		b.LoadAddr(ri(2), pfx+"_fa")
		b.Li(ri(3), 0)
		b.Li(ri(4), int64(blk.Count))
		b.Li(ri(9), 0)
		b.Ldf(rf(2), ri(2), 0)
		b.Ldf(rf(3), ri(2), isa.WordBytes)
		b.Label(pfx + "_mix")
		b.Andi(ri(5), ri(3), opTab-1)
		b.Slli(ri(5), ri(5), 3)
		b.Add(ri(6), ri(1), ri(5))
		b.Ld(ri(7), ri(6), 0)
		b.Add(ri(8), ri(2), ri(5))
		b.Ldf(rf(1), ri(8), 0)
		acc := 0
		for slot := 0; slot < 8; slot++ {
			acc += blk.FPPercent
			if acc >= 100 {
				acc -= 100
				if slot%2 == 0 {
					b.Fmul(rf(2), rf(2), rf(1))
				} else {
					b.Fadd(rf(3), rf(3), rf(1))
				}
			} else {
				if slot%2 == 0 {
					b.Add(ri(9), ri(9), ri(7))
				} else {
					b.Xor(ri(9), ri(9), ri(7))
				}
			}
		}
		b.Addi(ri(3), ri(3), 1)
		b.Blt(ri(3), ri(4), pfx+"_mix")
	}
	return body, 7 + blk.Count*16
}
