package wspec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Parse decodes a workload-spec file from YAML or JSON. The format is
// sniffed from the first non-space byte: `{` selects JSON, anything else
// the YAML subset. Both paths feed the same strict decoder, so unknown
// fields, type mismatches and out-of-range parameters are rejected
// identically, always with a one-line error.
func Parse(data []byte) (*File, error) {
	if len(data) > maxSpecBytes {
		return nil, fmt.Errorf("wspec: input %d bytes exceeds the %d-byte limit", len(data), maxSpecBytes)
	}
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("wspec: empty spec document")
	}
	var (
		tree any
		err  error
	)
	if trimmed[0] == '{' {
		tree, err = parseJSON(trimmed)
	} else {
		tree, err = parseYAML(data)
	}
	if err != nil {
		return nil, err
	}
	return decodeFile(tree)
}

// ParseFile reads and parses the spec at path, prefixing errors with the
// file name so multi-file CLI flags stay diagnosable.
func ParseFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("wspec: %v", err)
	}
	f, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return f, nil
}

// parseJSON decodes one JSON object into the generic tree, preserving
// integer precision via json.Number and rejecting trailing content.
func parseJSON(data []byte) (any, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("json: %v", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("json: trailing content after the spec object")
	}
	return v, nil
}
