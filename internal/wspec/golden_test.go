package wspec_test

// Golden-spec tests: every example spec under examples/workloads parses,
// compiles and sweeps to a pinned headline table. The goldens pin the
// whole chain — YAML parsing, defaults, program generation, trace
// recording, timing simulation, table rendering — the way
// TestServedExperimentByteIdentical pins the served experiment path.
// Regenerate with: go test ./internal/wspec -run TestGoldenSpecs -update

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"specvec/internal/experiments"
	"specvec/internal/workload"
	"specvec/internal/wspec"
)

var update = flag.Bool("update", false, "rewrite golden files")

const goldenScale = 20_000

func TestGoldenSpecs(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "workloads", "*.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 4 {
		t.Fatalf("want at least 4 example specs, found %d", len(paths))
	}
	for _, path := range paths {
		name := strings.TrimSuffix(filepath.Base(path), ".yaml")
		t.Run(name, func(t *testing.T) {
			f, err := wspec.ParseFile(path)
			if err != nil {
				t.Fatalf("example spec rejected: %v", err)
			}
			compiled := map[string]workload.Benchmark{}
			for _, w := range f.Workloads {
				compiled[w.Name] = wspec.CompileSpec(w)
			}
			r := experiments.NewRunner(experiments.Options{
				Scale: goldenScale, Seed: 1,
				Workloads: func(n string) (workload.Benchmark, error) {
					if b, ok := compiled[n]; ok {
						return b, nil
					}
					return workload.Get(n)
				},
			})
			tables, err := experiments.SpecSweep(r, f.Names())
			if err != nil {
				t.Fatal(err)
			}
			var sb strings.Builder
			for _, tab := range tables {
				sb.WriteString(tab.Render())
				sb.WriteString("\n")
			}
			got := sb.String()
			goldenPath := filepath.Join("testdata", "golden", name+".txt")
			if *update {
				if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Fatalf("sweep output diverged from golden %s:\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
			}
		})
	}
}
