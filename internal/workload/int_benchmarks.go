package workload

import "specvec/internal/isa"

// The SpecInt95 substitute suite. Each generator documents the behaviour
// of the real program it stands in for and how that maps onto the
// mechanism-relevant characteristics: stride mix (Figure 1), branch
// predictability, instruction mix and store/vector-range conflicts (§3.6).

func init() {
	register(Benchmark{
		Name: "go",
		Description: "Game-playing program: board-array scans with " +
			"neighbour offsets (stride 1), data-dependent evaluation " +
			"branches with poor predictability, irregular pattern-table " +
			"probes.",
		Build: buildGo,
	})
	register(Benchmark{
		Name: "m88ksim",
		Description: "Microprocessor simulator: fetch/decode/execute loop " +
			"over an instruction image (stride 1), opcode dispatch trees, " +
			"register-file and counter updates (stride 0).",
		Build: buildM88ksim,
	})
	register(Benchmark{
		Name: "gcc",
		Description: "Compiler: many distinct phases over IR arrays and " +
			"hashed symbol tables; large static code footprint, stride-0 " +
			"globals, irregular probes.",
		Build: buildGcc,
	})
	register(Benchmark{
		Name: "compress",
		Description: "LZW compression: stride-1 input stream, " +
			"data-dependent hash-table probes with effectively random " +
			"addresses (many useless speculative fetches), unpredictable " +
			"hit/miss branches.",
		Build: buildCompress,
	})
	register(Benchmark{
		Name: "li",
		Description: "Lisp interpreter: cons-cell list walks (pointer " +
			"chasing that is stride 16 over a contiguous heap), explicit " +
			"evaluation stack (stride 0/8), occasional destructive list " +
			"updates that hit prefetched ranges.",
		Build: buildLi,
	})
	register(Benchmark{
		Name: "ijpeg",
		Description: "Image compression: 8x8 block transforms with row " +
			"(stride 1) and column (stride 8) passes, quantisation table " +
			"lookups, saturating clamps; arithmetic-dense and highly " +
			"vectorizable.",
		Build: buildIjpeg,
	})
	register(Benchmark{
		Name: "perl",
		Description: "Interpreter: bytecode dispatch loop with a biased " +
			"branch tree, operand stack traffic, string hashing (stride " +
			"1) and hashed table probes.",
		Build: buildPerl,
	})
	register(Benchmark{
		Name: "vortex",
		Description: "Object-oriented database: record walks with " +
			"struct-sized strides (stride 8), field validation with " +
			"well-predicted branches, memcpy-like copies, occasional " +
			"in-place record updates (store/range conflicts).",
		Build: buildVortex,
	})
}

// buildGo: evaluation sweeps over a 19x19 board plus a pattern-matcher
// with irregular indices. Roughly 24 dynamic instructions per inner
// iteration; branch outcomes depend on pseudo-random board data.
func buildGo(scale int, seed int64) *isa.Program {
	b := isa.NewBuilder("go")
	r := newRng(seed)
	const bw = 19
	board := r.words(bw*bw+2*bw, 4) // cell states 0..3
	b.DataWords("board", board)
	b.DataWords("patterns", r.words(512, 1<<32))
	b.DataWords("locals", []uint64{3, 11})
	b.DataZero("score", 4)

	inner := bw*bw - 2*bw
	perIter := 26
	reps := clampScale(scale, 1) / (inner * perIter)
	reps = clampScale(reps, 1)

	outer(b, "game", reps, func() {
		// Phase 1: liberty scan. Five neighbour loads per point share the
		// base register: each static load walks the board with stride 1.
		b.LoadAddr(ri(1), "board")
		b.Addi(ri(1), ri(1), bw*8) // skip first row
		b.Li(ri(2), 0)
		b.Li(ri(3), int64(inner))
		b.Li(ri(4), 0) // liberties accumulator
		b.LoadAddr(ri(25), "locals")
		b.Label("scan")
		b.Ld(ri(23), ri(25), 0)      // urgency weight (local: stride 0)
		b.Ld(ri(24), ri(25), 8)      // ko threshold  (local: stride 0)
		b.Ld(ri(5), ri(1), 0)        // point
		b.Ld(ri(6), ri(1), 8)        // east
		b.Ld(ri(7), ri(1), -8)       // west
		b.Ld(ri(8), ri(1), bw*8)     // south
		b.Ld(ri(9), ri(1), -bw*8)    // north
		b.Beq(ri(5), rZero, "empty") // data-dependent: ~25% taken
		b.Add(ri(10), ri(6), ri(7))
		b.Add(ri(11), ri(8), ri(9))
		b.Add(ri(12), ri(10), ri(11))
		b.Slt(ri(13), ri(12), ri(23)) // few liberties?
		b.Beq(ri(13), rZero, "safe")
		b.Add(ri(4), ri(4), ri(24)) // urgent point
		b.J("next")
		b.Label("safe")
		b.Addi(ri(4), ri(4), 1)
		b.J("next")
		b.Label("empty")
		b.Sub(ri(4), ri(4), ri(5))
		b.Label("next")
		b.Addi(ri(1), ri(1), 8)
		b.Addi(ri(2), ri(2), 1)
		b.Blt(ri(2), ri(3), "scan")

		// Phase 2: pattern probes with data-derived indices (irregular
		// stride: these loads never gain TL confidence).
		b.LoadAddr(ri(14), "patterns")
		b.Li(ri(15), 0)
		b.Li(ri(16), 96)
		b.Andi(ri(17), ri(4), 511)
		b.Label("probe")
		b.Slli(ri(18), ri(17), 3)
		b.Add(ri(19), ri(14), ri(18))
		b.Ld(ri(20), ri(19), 0)
		b.Xor(ri(17), ri(17), ri(20))
		b.Andi(ri(17), ri(17), 511)
		b.Addi(ri(15), ri(15), 1)
		b.Blt(ri(15), ri(16), "probe")

		// Fold the scores into a global (stride-0 read-modify-write, kept
		// rare: once per outer iteration).
		b.LoadAddr(ri(21), "score")
		b.Ld(ri(22), ri(21), 0)
		b.Add(ri(22), ri(22), ri(4))
		b.St(ri(22), ri(21), 0)
	})
	b.Halt()
	return b.MustBuild()
}

// buildM88ksim: a fetch/decode/execute loop over a synthetic instruction
// image; dispatch is a short biased branch tree; the simulated register
// file and cycle counters are stride-0 traffic.
func buildM88ksim(scale int, seed int64) *isa.Program {
	b := isa.NewBuilder("m88ksim")
	r := newRng(seed)
	const ilen = 2048
	// Packed "instructions": low 2 bits opcode (biased), next bits operands.
	img := make([]uint64, ilen)
	for i := range img {
		w := r.next()
		op := w % 8 // 0..3 with bias below
		if op > 3 {
			op = 0 // ~60% opcode 0
		}
		img[i] = op | (w>>3)<<2
	}
	b.DataWords("image", img)
	b.DataZero("regfile", 32)
	b.DataWords("cpustate", []uint64{0x400000, 0x13}) // simulated PC, PSW
	b.DataZero("counters", 4)

	perIter := 24
	reps := clampScale(scale, 1) / (ilen * perIter)
	reps = clampScale(reps, 1)

	outer(b, "sim", reps, func() {
		b.LoadAddr(ri(1), "image")
		b.LoadAddr(ri(2), "regfile")
		b.LoadAddr(ri(3), "counters")
		b.Li(ri(4), 0)
		b.Li(ri(5), ilen)
		b.LoadAddr(ri(13), "cpustate")
		b.Label("fde")
		b.Ld(ri(14), ri(13), 0) // simulated PC (stride 0)
		b.Ld(ri(15), ri(13), 8) // simulated PSW (stride 0)
		b.Ld(ri(6), ri(1), 0)   // fetch (stride 1)
		b.Andi(ri(7), ri(6), 3)
		b.Srli(ri(8), ri(6), 2)
		b.Andi(ri(9), ri(8), 31) // dest reg index
		b.Slli(ri(9), ri(9), 3)
		b.Add(ri(9), ri(9), ri(2))
		// Dispatch tree (biased: op0 60%, others data-dependent).
		b.Beq(ri(7), rZero, "op0")
		b.Slti(ri(10), ri(7), 2)
		b.Bne(ri(10), rZero, "op1")
		b.Slti(ri(10), ri(7), 3)
		b.Bne(ri(10), rZero, "op2")
		// op3: multiply
		b.Ld(ri(11), ri(9), 0)
		b.Mul(ri(11), ri(11), ri(8))
		b.St(ri(11), ri(9), 0)
		b.J("retire")
		b.Label("op0") // add immediate
		b.Ld(ri(11), ri(9), 0)
		b.Add(ri(11), ri(11), ri(8))
		b.St(ri(11), ri(9), 0)
		b.J("retire")
		b.Label("op1") // logical
		b.Ld(ri(11), ri(9), 0)
		b.Xor(ri(11), ri(11), ri(8))
		b.St(ri(11), ri(9), 0)
		b.J("retire")
		b.Label("op2") // shift
		b.Ld(ri(11), ri(9), 0)
		b.Srli(ri(11), ri(11), 1)
		b.St(ri(11), ri(9), 0)
		b.Label("retire")
		b.Add(ri(15), ri(15), ri(14)) // fold CPU state into flags
		b.Addi(ri(1), ri(1), 8)
		b.Addi(ri(4), ri(4), 1)
		b.Blt(ri(4), ri(5), "fde")
		// Cycle counter (stride-0 RMW once per image pass).
		b.Ld(ri(12), ri(3), 0)
		b.Add(ri(12), ri(12), ri(4))
		b.St(ri(12), ri(3), 0)
	})
	b.Halt()
	return b.MustBuild()
}

// buildGcc: four small compiler-like phases with distinct access
// behaviour and a comparatively large amount of static code, repeated.
func buildGcc(scale int, seed int64) *isa.Program {
	b := isa.NewBuilder("gcc")
	r := newRng(seed)
	const n = 1024
	b.DataWords("tokens", r.words(n, 64))
	b.DataWords("ir", r.words(2*n, 1<<20))
	b.DataWords("symtab", r.words(512, 1<<30))
	b.DataWords("globals", []uint64{17, 29})
	b.DataZero("live", n/8)
	b.DataZero("out", 2*n)

	perPass := n*9 + n*9 + (n/2)*10 + (n/8)*7
	reps := clampScale(scale, 1) / perPass
	reps = clampScale(reps, 1)

	outer(b, "compile", reps, func() {
		// Lex: classify tokens (stride 1, data-dependent branch).
		b.LoadAddr(ri(1), "tokens")
		b.Li(ri(2), 0)
		b.Li(ri(3), n)
		b.Li(ri(4), 0)
		b.LoadAddr(ri(25), "globals")
		b.Label("lex")
		b.Ld(ri(26), ri(25), 0) // language flags (stride 0)
		b.Ld(ri(5), ri(1), 0)
		b.Slt(ri(6), ri(5), ri(26))
		b.Beq(ri(6), rZero, "ident")
		b.Addi(ri(4), ri(4), 1)
		b.Label("ident")
		b.Addi(ri(1), ri(1), 8)
		b.Addi(ri(2), ri(2), 1)
		b.Blt(ri(2), ri(3), "lex")

		// Fold: walk IR two words at a time (stride 2), simplify.
		b.LoadAddr(ri(7), "ir")
		b.LoadAddr(ri(8), "out")
		b.Li(ri(9), 0)
		b.Li(ri(10), n)
		b.Label("fold")
		b.Ld(ri(11), ri(7), 0)
		b.Ld(ri(12), ri(7), 8)
		b.Add(ri(13), ri(11), ri(12))
		b.St(ri(13), ri(8), 0)
		b.Addi(ri(7), ri(7), 16)
		b.Addi(ri(8), ri(8), 8)
		b.Addi(ri(9), ri(9), 1)
		b.Blt(ri(9), ri(10), "fold")

		// Symbol probes: hashed, irregular addresses.
		b.LoadAddr(ri(14), "symtab")
		b.Li(ri(15), 0)
		b.Li(ri(16), n/2)
		b.Andi(ri(17), ri(4), 255)
		b.Label("sym")
		b.Ld(ri(27), ri(25), 8) // obstack base (stride 0)
		b.Slli(ri(18), ri(17), 3)
		b.Add(ri(19), ri(14), ri(18))
		b.Ld(ri(20), ri(19), 0)
		b.Add(ri(17), ri(17), ri(20))
		b.Add(ri(17), ri(17), ri(27))
		b.Andi(ri(17), ri(17), 255)
		b.Addi(ri(15), ri(15), 1)
		b.Blt(ri(15), ri(16), "sym")

		// Liveness: word-wise bitset OR (stride 1 RMW over a small array;
		// the stores chase the loads and occasionally hit prefetched
		// ranges, like real dataflow iteration).
		b.LoadAddr(ri(21), "live")
		b.Li(ri(22), 0)
		b.Li(ri(23), n/8)
		b.Label("livel")
		b.Ld(ri(24), ri(21), 0)
		b.Or(ri(24), ri(24), ri(17))
		b.St(ri(24), ri(21), 0)
		b.Addi(ri(21), ri(21), 8)
		b.Addi(ri(22), ri(22), 1)
		b.Blt(ri(22), ri(23), "livel")
	})
	b.Halt()
	return b.MustBuild()
}

// buildCompress: rolling hash over a stride-1 input with data-dependent
// probes into a large table — the probe addresses are effectively random,
// so speculative wide-bus fetches are mostly useless (the paper singles
// compress out for exactly this).
func buildCompress(scale int, seed int64) *isa.Program {
	b := isa.NewBuilder("compress")
	r := newRng(seed)
	const n, tab = 4096, 8192
	b.DataWords("input", r.words(n, 256))
	b.DataWords("table", r.words(tab, 1<<40))
	b.DataWords("globals", []uint64{4096, 77}) // maxcode, ratio
	b.DataZero("output", n)

	perIter := 21
	reps := clampScale(scale, 1) / (n * perIter)
	reps = clampScale(reps, 1)

	outer(b, "pass", reps, func() {
		b.LoadAddr(ri(1), "input")
		b.LoadAddr(ri(2), "table")
		b.LoadAddr(ri(3), "output")
		b.Li(ri(4), 0)
		b.Li(ri(5), n)
		b.Li(ri(6), 1) // prefix code
		b.LoadAddr(ri(11), "globals")
		b.Label("code")
		b.Ld(ri(12), ri(11), 0) // maxcode (stride 0)
		b.Ld(ri(13), ri(11), 8) // ratio   (stride 0)
		b.Ld(ri(7), ri(1), 0)   // input byte (stride 1)
		b.Slli(ri(8), ri(7), 5)
		b.Xor(ri(8), ri(8), ri(6))
		b.Andi(ri(8), ri(8), tab-1) // hash
		b.Slli(ri(9), ri(8), 3)
		b.Add(ri(9), ri(9), ri(2))
		b.Ld(ri(10), ri(9), 0) // probe: effectively random address
		b.Beq(ri(10), ri(7), "hit")
		// miss: emit code, update prefix (the common path).
		b.St(ri(6), ri(3), 0)
		b.Addi(ri(3), ri(3), 8)
		b.Addi(ri(6), ri(6), 1)
		b.Andi(ri(6), ri(6), 4095)
		b.J("adv")
		b.Label("hit")
		b.Add(ri(6), ri(6), ri(10))
		b.Andi(ri(6), ri(6), 4095)
		b.Label("adv")
		b.Add(ri(13), ri(13), ri(12)) // in-register ratio update
		b.Addi(ri(1), ri(1), 8)
		b.Addi(ri(4), ri(4), 1)
		b.Blt(ri(4), ri(5), "code")
	})
	b.Halt()
	return b.MustBuild()
}

// buildLi: walks contiguous cons cells (car/cdr pairs), so the "pointer
// chase" is a stride-16 pattern the TL can learn; an evaluation stack adds
// stride-0/8 traffic and a rare destructive update phase stores into
// recently prefetched cells.
func buildLi(scale int, seed int64) *isa.Program {
	b := isa.NewBuilder("li")
	r := newRng(seed)
	const cells = 2048
	heap := make([]uint64, 2*cells)
	base := uint64(isa.DataBase)
	for i := 0; i < cells; i++ {
		heap[2*i] = r.next() % 1000 // car: small value
		if i < cells-1 {
			heap[2*i+1] = base + uint64((i+1)*16) // cdr: next cell
		}
	}
	b.DataWords("heap", heap) // first data block: lands at DataBase
	b.DataWords("env", []uint64{500})
	b.DataZero("stack", 256)

	perWalk := cells * 11
	reps := clampScale(scale, 1) / perWalk
	reps = clampScale(reps, 1)

	outer(b, "eval", reps, func() {
		b.LoadAddr(ri(1), "heap") // current cell
		b.LoadAddr(ri(2), "stack")
		b.Li(ri(3), 0) // sum
		b.Li(ri(4), 0)
		b.Li(ri(5), cells-1)
		b.LoadAddr(ri(15), "env")
		b.Label("walk")
		b.Ld(ri(16), ri(15), 0) // environment (stride 0)
		b.Ld(ri(6), ri(1), 0)   // car (stride 16)
		b.Ld(ri(7), ri(1), 8)   // cdr (stride 16)
		b.Slt(ri(8), ri(6), ri(16))
		b.Beq(ri(8), rZero, "big") // ~50/50 data-dependent
		b.Add(ri(3), ri(3), ri(6))
		b.J("cont")
		b.Label("big")
		b.St(ri(6), ri(2), 0) // push on eval stack
		b.Sub(ri(3), ri(3), ri(6))
		b.Label("cont")
		b.Add(ri(1), ri(7), rZero) // follow cdr
		b.Addi(ri(4), ri(4), 1)
		b.Blt(ri(4), ri(5), "walk")

		// Rare destructive update: rewrite a handful of cars near the
		// front of the heap (stores landing inside prefetched ranges).
		b.LoadAddr(ri(9), "heap")
		b.Li(ri(10), 0)
		b.Li(ri(11), 8)
		b.Label("mutate")
		b.Ld(ri(12), ri(9), 0)
		b.Addi(ri(12), ri(12), 1)
		b.St(ri(12), ri(9), 0)
		b.Addi(ri(9), ri(9), 16)
		b.Addi(ri(10), ri(10), 1)
		b.Blt(ri(10), ri(11), "mutate")
	})
	b.Halt()
	return b.MustBuild()
}

// buildIjpeg: 8x8 block transform: a stride-1 row pass, a stride-8 column
// pass, quantisation against a table, and a saturating clamp. Arithmetic
// dominates; branches are ~90% predictable.
func buildIjpeg(scale int, seed int64) *isa.Program {
	b := isa.NewBuilder("ijpeg")
	r := newRng(seed)
	const blocks = 48
	b.DataWords("pix", r.words(blocks*64, 256))
	b.DataWords("quant", r.words(64, 31))
	b.DataZero("coef", blocks*64)

	perBlock := 64*7 + 64*8 + 64*10
	reps := clampScale(scale, 1) / (blocks * perBlock)
	reps = clampScale(reps, 1)

	outer(b, "frame", reps, func() {
		b.LoadAddr(ri(1), "pix")
		b.LoadAddr(ri(2), "coef")
		b.Li(ri(3), 0)
		b.Li(ri(4), blocks)
		b.Label("block")

		// Row pass: stride-1 smoothing into coef.
		b.Li(ri(5), 0)
		b.Li(ri(6), 63)
		b.Label("rows")
		b.Ld(ri(7), ri(1), 0)
		b.Ld(ri(8), ri(1), 8)
		b.Add(ri(9), ri(7), ri(8))
		b.St(ri(9), ri(2), 0)
		b.Addi(ri(1), ri(1), 8)
		b.Addi(ri(2), ri(2), 8)
		b.Addi(ri(5), ri(5), 1)
		b.Blt(ri(5), ri(6), "rows")
		b.Addi(ri(1), ri(1), 8) // finish the block
		b.Addi(ri(2), ri(2), 8)

		// Column pass over the coef block just written: stride 8.
		b.Addi(ri(10), ri(2), -512) // back to block start
		b.Li(ri(5), 0)
		b.Li(ri(6), 56)
		b.Label("cols")
		b.Ld(ri(7), ri(10), 0)
		b.Ld(ri(8), ri(10), 64) // next row, same column
		b.Sub(ri(9), ri(7), ri(8))
		b.Sra(ri(9), ri(9), rZero)
		b.Mul(ri(11), ri(9), ri(9))
		b.Addi(ri(10), ri(10), 8)
		b.Addi(ri(5), ri(5), 1)
		b.Blt(ri(5), ri(6), "cols")

		// Quantise (fixed-point reciprocal multiply, as libjpeg does) and
		// clamp; the saturation branch is rarely taken.
		b.Addi(ri(10), ri(2), -512)
		b.LoadAddr(ri(12), "quant")
		b.Li(ri(5), 0)
		b.Li(ri(6), 64)
		b.Label("quantl")
		b.Ld(ri(7), ri(10), 0)
		b.Ld(ri(8), ri(12), 0)
		b.Addi(ri(8), ri(8), 1)
		b.Mul(ri(9), ri(7), ri(8))
		b.Srai(ri(9), ri(9), 5)
		b.Slti(ri(13), ri(9), 1<<40)
		b.Bne(ri(13), rZero, "noclamp")
		b.Li(ri(9), (1<<40)-1)
		b.Label("noclamp")
		b.St(ri(9), ri(10), 0)
		b.Addi(ri(10), ri(10), 8)
		b.Addi(ri(12), ri(12), 8)
		b.Addi(ri(5), ri(5), 1)
		b.Blt(ri(5), ri(6), "quantl")
		b.LoadAddr(ri(12), "quant") // reset table cursor

		b.Addi(ri(3), ri(3), 1)
		b.Blt(ri(3), ri(4), "block")
	})
	b.Halt()
	return b.MustBuild()
}

// buildPerl: a bytecode dispatch loop (biased branch tree over op kinds),
// operand-stack pushes/pops, and a string-hashing phase.
func buildPerl(scale int, seed int64) *isa.Program {
	b := isa.NewBuilder("perl")
	r := newRng(seed)
	const prog, str = 1024, 512
	ops := make([]uint64, prog)
	for i := range ops {
		w := r.next()
		op := w % 16
		if op > 4 {
			op %= 2 // bias towards push/add
		}
		ops[i] = op | (w>>8)<<4
	}
	b.DataWords("ops", ops)
	b.DataWords("str", r.words(str, 128))
	b.DataZero("stk", 512)
	b.DataWords("interp", []uint64{1, 8})
	b.DataZero("hashtab", 256)

	perIter := prog*16 + str*8
	reps := clampScale(scale, 1) / perIter
	reps = clampScale(reps, 1)

	outer(b, "interp", reps, func() {
		b.LoadAddr(ri(1), "ops")
		b.LoadAddr(ri(2), "stk")
		b.Li(ri(3), 0)
		b.Li(ri(4), prog)
		b.Li(ri(5), 0) // top-of-stack value cached in a register
		b.LoadAddr(ri(20), "interp")
		b.Label("dispatch")
		b.Ld(ri(21), ri(20), 0) // curcop (stride 0)
		b.Ld(ri(22), ri(20), 8) // stack base (stride 0)
		b.Ld(ri(6), ri(1), 0)
		b.Andi(ri(7), ri(6), 15)
		b.Srli(ri(8), ri(6), 4)
		b.Beq(ri(7), rZero, "push")
		b.Slti(ri(9), ri(7), 2)
		b.Bne(ri(9), rZero, "addop")
		b.Slti(ri(9), ri(7), 4)
		b.Bne(ri(9), rZero, "cmp")
		// call-ish: spill top of stack
		b.St(ri(5), ri(2), 0)
		b.Addi(ri(2), ri(2), 8)
		b.J("advance")
		b.Label("push")
		b.Add(ri(5), ri(8), rZero)
		b.J("advance")
		b.Label("addop")
		b.Add(ri(5), ri(5), ri(8))
		b.J("advance")
		b.Label("cmp")
		b.Slt(ri(5), ri(5), ri(8))
		b.Label("advance")
		b.Add(ri(5), ri(5), ri(21))
		b.Xor(ri(5), ri(5), ri(22))
		b.Addi(ri(1), ri(1), 8)
		b.Addi(ri(3), ri(3), 1)
		b.Blt(ri(3), ri(4), "dispatch")

		// String hash (stride 1) feeding sparse table updates.
		b.LoadAddr(ri(10), "str")
		b.LoadAddr(ri(11), "hashtab")
		b.Li(ri(12), 0)
		b.Li(ri(13), str)
		b.Li(ri(14), 5381)
		b.Label("hash")
		b.Ld(ri(15), ri(10), 0)
		b.Slli(ri(16), ri(14), 5)
		b.Add(ri(14), ri(16), ri(14))
		b.Xor(ri(14), ri(14), ri(15))
		b.Addi(ri(10), ri(10), 8)
		b.Addi(ri(12), ri(12), 1)
		b.Blt(ri(12), ri(13), "hash")
		b.Andi(ri(17), ri(14), 255)
		b.Slli(ri(17), ri(17), 3)
		b.Add(ri(17), ri(17), ri(11))
		b.St(ri(14), ri(17), 0)
	})
	b.Halt()
	return b.MustBuild()
}

// buildVortex: record-oriented database traffic: walks 8-word records
// (field loads at stride 64 bytes = 8 elements), validates fields with
// well-predicted branches, copies payloads stride-1, and occasionally
// rewrites a record in place (store into a prefetched range).
func buildVortex(scale int, seed int64) *isa.Program {
	b := isa.NewBuilder("vortex")
	r := newRng(seed)
	const recs = 512
	db := make([]uint64, recs*8)
	for i := 0; i < recs; i++ {
		db[i*8] = uint64(i)        // key
		db[i*8+1] = r.next() % 100 // status
		for f := 2; f < 8; f++ {
			db[i*8+f] = r.next() % (1 << 32)
		}
	}
	b.DataWords("db", db)
	b.DataWords("schema", []uint64{8})
	b.DataZero("copy", recs)
	b.DataZero("status", recs)

	perRec := 20
	reps := clampScale(scale, 1) / (recs * perRec)
	reps = clampScale(reps, 1)

	outer(b, "txn", reps, func() {
		b.LoadAddr(ri(1), "db")
		b.LoadAddr(ri(2), "copy")
		b.LoadAddr(ri(3), "status")
		b.Li(ri(4), 0)
		b.Li(ri(5), recs)
		b.LoadAddr(ri(14), "schema")
		b.Label("rec")
		b.Ld(ri(15), ri(14), 0) // schema descriptor (stride 0)
		b.Ld(ri(6), ri(1), 0)   // key     (stride 8 elements)
		b.Ld(ri(7), ri(1), 8)   // status  (stride 8 elements)
		b.Ld(ri(8), ri(1), 16)  // payload head
		b.Ld(ri(12), ri(1), 24) // owner
		b.Ld(ri(13), ri(1), 32) // checksum
		b.Slti(ri(9), ri(7), 95)
		b.Beq(ri(9), rZero, "stale") // ~5% taken: well predicted
		b.Add(ri(10), ri(6), ri(8))
		b.Add(ri(10), ri(10), ri(12))
		b.Xor(ri(10), ri(10), ri(13))
		b.Add(ri(10), ri(10), ri(15))
		b.St(ri(10), ri(2), 0) // copy out
		b.St(ri(7), ri(3), 0)  // status log (separate array)
		b.J("nextrec")
		b.Label("stale")
		// In-place refresh: store back into the record region that the
		// field loads have prefetched (a §3.6 conflict).
		b.Addi(ri(11), ri(7), 1)
		b.St(ri(11), ri(1), 8)
		b.Label("nextrec")
		b.Addi(ri(1), ri(1), 64)
		b.Addi(ri(2), ri(2), 8)
		b.Addi(ri(3), ri(3), 8)
		b.Addi(ri(4), ri(4), 1)
		b.Blt(ri(4), ri(5), "rec")
	})
	b.Halt()
	return b.MustBuild()
}
