package workload

import "specvec/internal/isa"

// The SpecFP95 substitute suite (the four programs the paper evaluates:
// swim, applu, turb3d, fpppp).

func init() {
	register(Benchmark{
		Name: "swim",
		FP:   true,
		Description: "Shallow-water stencil: multi-stream stride-1 sweeps " +
			"over several grids with neighbour offsets, unrolled by two " +
			"(so half the static loads walk at stride 2); loop branches " +
			"are near-perfectly predicted.",
		Build: buildSwim,
	})
	register(Benchmark{
		Name: "applu",
		FP:   true,
		Description: "SSOR solver: stride-1 relaxation with per-point FP " +
			"division, plus a blocked pass whose static loads walk at " +
			"stride 4.",
		Build: buildApplu,
	})
	register(Benchmark{
		Name: "turb3d",
		FP:   true,
		Description: "Turbulence FFT: butterfly stages at strides 1, 2, 4 " +
			"and 8 (the power-of-two strides of Figure 1) plus an " +
			"irregular bit-reversal copy.",
		Build: buildTurb3d,
	})
	register(Benchmark{
		Name: "fpppp",
		FP:   true,
		Description: "Quantum chemistry: very large straight-line basic " +
			"blocks, stride-0 spill reloads, dense FP multiply/add " +
			"chains with rare divisions; branches almost only close " +
			"loops.",
		Build: buildFpppp,
	})
}

// buildSwim: unew[i] = u[i] + cu*(v[i+1]-v[i-1]) + cv*(p[i+W]-p[i-W]),
// unrolled by two.
func buildSwim(scale int, seed int64) *isa.Program {
	b := isa.NewBuilder("swim")
	r := newRng(seed)
	const w, n = 64, 4096
	b.DataFloats("u", r.floats(n+2*w))
	b.DataFloats("v", r.floats(n+2*w))
	b.DataFloats("p", r.floats(n+2*w))
	b.DataFloats("uold", r.floats(n+2*w))
	b.DataFloats("pold", r.floats(n+2*w))
	b.DataZero("unew", n+2*w)
	b.DataFloats("consts", []float64{0.25, 0.125})

	inner := (n - 2*w) / 2
	perIter := 29
	reps := clampScale(scale, 1) / (inner * perIter)
	reps = clampScale(reps, 1)

	outer(b, "tstep", reps, func() {
		b.LoadAddr(ri(1), "u")
		b.LoadAddr(ri(2), "v")
		b.LoadAddr(ri(3), "p")
		b.LoadAddr(ri(4), "unew")
		b.LoadAddr(ri(8), "uold")
		b.LoadAddr(ri(9), "pold")
		b.LoadAddr(ri(5), "consts")
		b.Ldf(rf(10), ri(5), 0) // cu
		b.Ldf(rf(11), ri(5), 8) // cv
		// Start after the halo.
		b.Addi(ri(1), ri(1), w*8)
		b.Addi(ri(2), ri(2), w*8)
		b.Addi(ri(3), ri(3), w*8)
		b.Addi(ri(4), ri(4), w*8)
		b.Addi(ri(8), ri(8), w*8)
		b.Addi(ri(9), ri(9), w*8)
		b.Li(ri(6), 0)
		b.Li(ri(7), int64(inner))
		b.Label("sweep")
		// Unrolled iteration 0: every load below advances by 16 per trip
		// (stride 2 elements). Real swim touches six grids per point, so
		// the loop is load-dominated.
		b.Ldf(rf(1), ri(1), 0)
		b.Ldf(rf(2), ri(2), 8)
		b.Ldf(rf(3), ri(2), -8)
		b.Ldf(rf(4), ri(3), w*8)
		b.Ldf(rf(5), ri(3), -w*8)
		b.Ldf(rf(12), ri(8), 0)
		b.Ldf(rf(13), ri(9), 0)
		b.Fsub(rf(6), rf(2), rf(3))
		b.Fsub(rf(7), rf(4), rf(5))
		b.Fmul(rf(6), rf(6), rf(10))
		b.Fmul(rf(7), rf(7), rf(11))
		b.Fadd(rf(8), rf(1), rf(6))
		b.Fadd(rf(8), rf(8), rf(7))
		b.Fadd(rf(8), rf(8), rf(12))
		b.Stf(rf(8), ri(4), 0)
		// Unrolled iteration 1.
		b.Ldf(rf(1), ri(1), 8)
		b.Ldf(rf(2), ri(2), 16)
		b.Ldf(rf(14), ri(8), 8)
		b.Fsub(rf(6), rf(2), rf(1))
		b.Fmul(rf(6), rf(6), rf(10))
		b.Fadd(rf(8), rf(6), rf(1))
		b.Fadd(rf(8), rf(8), rf(13))
		b.Fadd(rf(8), rf(8), rf(14))
		b.Stf(rf(8), ri(4), 8)
		b.Addi(ri(1), ri(1), 16)
		b.Addi(ri(2), ri(2), 16)
		b.Addi(ri(3), ri(3), 16)
		b.Addi(ri(4), ri(4), 16)
		b.Addi(ri(8), ri(8), 16)
		b.Addi(ri(9), ri(9), 16)
		b.Addi(ri(6), ri(6), 1)
		b.Blt(ri(6), ri(7), "sweep")
	})
	b.Halt()
	return b.MustBuild()
}

// buildApplu: a relaxation loop with an FP divide on the critical path and
// a blocked pass at stride 4.
func buildApplu(scale int, seed int64) *isa.Program {
	b := isa.NewBuilder("applu")
	r := newRng(seed)
	// Working set ~4x64KB: resident in L2 but not L1, like the real
	// program's grids relative to its caches.
	const n = 8192
	b.DataFloats("a", r.floats(n+8))
	b.DataFloats("c", r.floats(n+8)) // strictly positive: safe divisor
	b.DataFloats("x", r.floats(n+8))
	b.DataFloats("omega", []float64{1.2})
	b.DataZero("d", n+8)

	perIter := 18
	blocked := n / 4
	perBlocked := 8
	perPass := n*perIter + blocked*perBlocked
	reps := clampScale(scale, 1) / perPass
	reps = clampScale(reps, 1)

	outer(b, "ssor", reps, func() {
		// Relaxation: d[i] = (a[i]*x[i] + x[i+1]) * rc[i], with a true
		// division only at block pivots (every 8th point), like the
		// factored solver.
		b.LoadAddr(ri(1), "a")
		b.LoadAddr(ri(2), "c")
		b.LoadAddr(ri(3), "x")
		b.LoadAddr(ri(4), "d")
		b.LoadAddr(ri(12), "omega")
		b.Li(ri(5), 0)
		b.Li(ri(6), n)
		b.Li(ri(10), 7)
		b.Label("relax")
		b.Ldf(rf(9), ri(12), 0) // omega relaxation factor (stride 0)
		b.Ldf(rf(1), ri(1), 0)
		b.Ldf(rf(2), ri(3), 0)
		b.Ldf(rf(3), ri(3), 8)
		b.Ldf(rf(4), ri(2), 0)
		b.Fmul(rf(5), rf(1), rf(2))
		b.Fadd(rf(5), rf(5), rf(3))
		b.Fmul(rf(5), rf(5), rf(9))
		b.Fmul(rf(6), rf(5), rf(4))
		b.Andi(ri(11), ri(5), 7)
		b.Bne(ri(11), ri(10), "nopivot")
		b.Fdiv(rf(6), rf(5), rf(4)) // pivot division
		b.Label("nopivot")
		b.Stf(rf(6), ri(4), 0)
		b.Addi(ri(1), ri(1), 8)
		b.Addi(ri(2), ri(2), 8)
		b.Addi(ri(3), ri(3), 8)
		b.Addi(ri(4), ri(4), 8)
		b.Addi(ri(5), ri(5), 1)
		b.Blt(ri(5), ri(6), "relax")

		// Blocked pass: accumulate every fourth element (stride 4).
		b.LoadAddr(ri(7), "d")
		b.Li(ri(8), 0)
		b.Li(ri(9), int64(blocked))
		b.Fmov(rf(7), rf(6))
		b.Label("blockp")
		b.Ldf(rf(8), ri(7), 0)
		b.Fadd(rf(7), rf(7), rf(8))
		b.Addi(ri(7), ri(7), 32)
		b.Addi(ri(8), ri(8), 1)
		b.Blt(ri(8), ri(9), "blockp")
	})
	b.Halt()
	return b.MustBuild()
}

// buildTurb3d: four butterfly stages with strides 1, 2, 4 and 8, each its
// own loop (so each static load has a constant power-of-two stride), plus
// an irregular bit-reversal gather.
func buildTurb3d(scale int, seed int64) *isa.Program {
	b := isa.NewBuilder("turb3d")
	r := newRng(seed)
	// Large enough that the butterfly passes stream from L2.
	const n = 8192
	b.DataFloats("re", r.floats(n+16))
	b.DataFloats("im", r.floats(n+16))
	b.DataFloats("tw", r.floats(64))
	b.DataZero("outre", n+16)
	// Precomputed bit-reversed indices (byte offsets).
	rev := make([]uint64, 256)
	for i := range rev {
		x := uint64(i)
		x = (x&0xAA)>>1 | (x&0x55)<<1
		x = (x&0xCC)>>2 | (x&0x33)<<2
		x = (x&0xF0)>>4 | (x&0x0F)<<4
		rev[i] = x * 8
	}
	b.DataWords("rev", rev)

	stages := []struct {
		label  string
		stride int64
		trips  int
	}{
		{"s1", 8, n / 2},
		{"s2", 16, n / 4},
		{"s4", 32, n / 8},
		{"s8", 64, n / 16},
	}
	perPass := 0
	for _, st := range stages {
		perPass += st.trips * 12
	}
	perPass += 256 * 7
	reps := clampScale(scale, 1) / perPass
	reps = clampScale(reps, 1)

	outer(b, "fft", reps, func() {
		for _, st := range stages {
			b.LoadAddr(ri(1), "re")
			b.LoadAddr(ri(2), "im")
			b.LoadAddr(ri(3), "tw")
			b.Li(ri(4), 0)
			b.Li(ri(5), int64(st.trips))
			b.Label(st.label)
			b.Ldf(rf(10), ri(3), 0) // twiddle reload (stride 0)
			b.Ldf(rf(1), ri(1), 0)
			b.Ldf(rf(2), ri(1), st.stride)
			b.Ldf(rf(3), ri(2), 0)
			b.Fmul(rf(4), rf(2), rf(10))
			b.Fadd(rf(5), rf(1), rf(4))
			b.Fsub(rf(6), rf(1), rf(4))
			b.Stf(rf(5), ri(1), 0)
			b.Fadd(rf(3), rf(3), rf(6))
			b.Addi(ri(1), ri(1), 2*st.stride)
			b.Addi(ri(2), ri(2), 2*st.stride)
			b.Addi(ri(4), ri(4), 1)
			b.Blt(ri(4), ri(5), st.label)
		}
		// Bit-reversal gather: the data loads are index-driven and
		// irregular (no constant stride).
		b.LoadAddr(ri(6), "rev")
		b.LoadAddr(ri(7), "re")
		b.LoadAddr(ri(8), "outre")
		b.Li(ri(9), 0)
		b.Li(ri(10), 256)
		b.Label("brv")
		b.Ld(ri(11), ri(6), 0) // index (stride 1)
		b.Add(ri(12), ri(7), ri(11))
		b.Ldf(rf(1), ri(12), 0) // gathered: irregular
		b.Stf(rf(1), ri(8), 0)
		b.Addi(ri(6), ri(6), 8)
		b.Addi(ri(8), ri(8), 8)
		b.Addi(ri(9), ri(9), 1)
		b.Blt(ri(9), ri(10), "brv")
	})
	b.Halt()
	return b.MustBuild()
}

// buildFpppp: one enormous straight-line basic block per iteration,
// dominated by FP multiply/add chains over stride-1 integral data plus
// stride-0 reloads of spilled coefficients; a single divide per block.
func buildFpppp(scale int, seed int64) *isa.Program {
	b := isa.NewBuilder("fpppp")
	r := newRng(seed)
	const n = 1024
	b.DataFloats("ints", r.floats(n+64))
	b.DataFloats("spill", r.floats(16)) // read-mostly spill slots
	b.DataZero("fock", n+64)

	// Big unrolled block: 16 groups of ~18 instructions.
	const groups = 16
	perIter := groups*18 + 12
	reps := clampScale(scale, 1) / ((n / groups) * perIter)
	reps = clampScale(reps, 1)

	outer(b, "scf", reps, func() {
		b.LoadAddr(ri(1), "ints")
		b.LoadAddr(ri(2), "spill")
		b.LoadAddr(ri(3), "fock")
		b.Li(ri(4), 0)
		b.Li(ri(5), n/groups)
		b.Label("block")
		for g := 0; g < groups; g++ {
			off := int64(g * 8)
			sp := int64((g % 4) * 8)
			// Stride-0 spill reload: the same slot every iteration.
			b.Ldf(rf(1), ri(2), sp)
			b.Ldf(rf(2), ri(1), off)
			b.Ldf(rf(3), ri(1), off+8)
			b.Fmul(rf(4), rf(2), rf(1))
			b.Fmul(rf(5), rf(3), rf(3))
			b.Fadd(rf(6), rf(4), rf(5))
			b.Fmul(rf(7), rf(6), rf(1))
			b.Fadd(rf(8), rf(7), rf(4))
			b.Fsub(rf(9), rf(8), rf(5))
			b.Fmul(rf(9), rf(9), rf(2))
			// The fock contribution combines two vectorizable operands
			// (the integral load and the spill reload); the long scalar
			// chain in rf(9) accumulates separately so vectorized
			// instructions rarely wait on a not-ready scalar register.
			b.Ldf(rf(11), ri(3), off)
			b.Fadd(rf(11), rf(11), rf(4))
			b.Stf(rf(11), ri(3), off)
			b.Fadd(rf(15), rf(15), rf(9)) // running scalar energy
		}
		// One division and a spill-slot refresh per block (rare stores
		// into the stride-0 ranges: §3.6 conflicts at a low rate).
		b.Fdiv(rf(12), rf(15), rf(1))
		b.Stf(rf(12), ri(2), 120) // slot 15: not reloaded in the block
		b.Addi(ri(1), ri(1), groups*8)
		b.Addi(ri(3), ri(3), groups*8)
		b.Addi(ri(4), ri(4), 1)
		b.Blt(ri(4), ri(5), "block")
	})
	b.Halt()
	return b.MustBuild()
}
