package workload

import (
	"fmt"
	"sort"
	"sync"

	"specvec/internal/isa"
)

// Benchmark is one generated program family.
type Benchmark struct {
	Name string
	FP   bool
	// Generated marks a workload compiled from a declarative spec
	// (internal/wspec) rather than one of the built-in Spec95 substitutes.
	Generated bool
	// Description summarises the real program this stands in for and the
	// behaviour the generator reproduces.
	Description string
	// Build generates the program. scale is the approximate dynamic
	// instruction count of a full run; seed perturbs embedded data.
	Build func(scale int, seed int64) *isa.Program
}

var registry = map[string]Benchmark{}

func register(b Benchmark) {
	if _, dup := registry[b.Name]; dup {
		panic("workload: duplicate benchmark " + b.Name)
	}
	registry[b.Name] = b
}

// The generated registry holds spec-compiled workloads added after init.
// It is separate from the built-in registry so the paper's experiment
// suite (Names) never changes shape under a loaded spec file, and guarded
// by a mutex because CLIs and the daemon register at startup while tests
// exercise registration concurrently.
var (
	genMu    sync.Mutex
	genOrder []string
	genReg   = map[string]Benchmark{}
)

// Register adds a generated benchmark to the registry, making it
// resolvable by Get alongside the built-ins. Registering a name that is
// already taken — by a built-in or an earlier registration — is an error;
// callers that support idempotent re-registration (internal/wspec) dedupe
// by definition identity before calling.
func Register(b Benchmark) error {
	if b.Name == "" || b.Build == nil {
		return fmt.Errorf("workload: registering %q: need a name and a Build function", b.Name)
	}
	if _, dup := registry[b.Name]; dup {
		return fmt.Errorf("workload: %q is a built-in benchmark", b.Name)
	}
	genMu.Lock()
	defer genMu.Unlock()
	if _, dup := genReg[b.Name]; dup {
		return fmt.Errorf("workload: duplicate generated benchmark %q", b.Name)
	}
	b.Generated = true
	genReg[b.Name] = b
	genOrder = append(genOrder, b.Name)
	return nil
}

// GeneratedNames returns the registered generated workloads in
// registration order.
func GeneratedNames() []string {
	genMu.Lock()
	defer genMu.Unlock()
	return append([]string{}, genOrder...)
}

// Get returns the named benchmark, built-in or generated.
func Get(name string) (Benchmark, error) {
	if b, ok := registry[name]; ok {
		return b, nil
	}
	genMu.Lock()
	b, ok := genReg[name]
	genMu.Unlock()
	if !ok {
		return Benchmark{}, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, append(Names(), GeneratedNames()...))
	}
	return b, nil
}

// Names returns all benchmark names, integer suite first, in the paper's
// presentation order.
func Names() []string {
	return append(append([]string{}, IntNames()...), FPNames()...)
}

// IntNames returns the SpecInt95 substitute suite in the paper's order.
func IntNames() []string {
	return []string{"go", "m88ksim", "gcc", "compress", "li", "ijpeg", "perl", "vortex"}
}

// FPNames returns the SpecFP95 substitute suite in the paper's order.
func FPNames() []string {
	return []string{"swim", "applu", "turb3d", "fpppp"}
}

// All returns every benchmark in presentation order: the built-in suite
// first, then generated workloads in registration order.
func All() []Benchmark {
	var out []Benchmark
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	genMu.Lock()
	defer genMu.Unlock()
	for _, n := range genOrder {
		out = append(out, genReg[n])
	}
	return out
}

// sortedRegistryNames is used by tests to confirm registration coverage.
func sortedRegistryNames() []string {
	var out []string
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ---- shared generator helpers ----

type rng struct{ s uint64 }

func newRng(seed int64) *rng { return &rng{s: uint64(seed)*2862933555777941757 + 3037000493} }

func (r *rng) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s >> 16
}

// words returns n pseudo-random 64-bit values bounded below mod.
func (r *rng) words(n int, mod uint64) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		if mod == 0 {
			out[i] = r.next()
		} else {
			out[i] = r.next() % mod
		}
	}
	return out
}

// floats returns n pseudo-random doubles in (0, 1].
func (r *rng) floats(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(r.next()%1_000_000+1) / 1_000_000
	}
	return out
}

// Conventional register roles used across generators to keep them readable.
var (
	rZero = isa.IntReg(0)
	rIter = isa.IntReg(29) // outer-loop counter
	rLim  = isa.IntReg(28) // outer-loop bound
)

func ri(i int) isa.Reg { return isa.IntReg(i) }
func rf(i int) isa.Reg { return isa.FPReg(i) }

// outer wraps body in `for rIter = 0; rIter < n; rIter++` so generators
// can dial dynamic length with one knob.
func outer(b *isa.Builder, name string, n int, body func()) {
	b.Li(rIter, 0)
	b.Li(rLim, int64(n))
	b.Label(name)
	body()
	b.Addi(rIter, rIter, 1)
	b.Blt(rIter, rLim, name)
}

// clampScale keeps generated trip counts sane.
func clampScale(scale, min int) int {
	if scale < min {
		return min
	}
	return scale
}
