// Package workload generates the synthetic Spec95-like benchmark programs
// used by the evaluation, substituting for the proprietary SpecInt95 /
// SpecFP95 suites (see DESIGN.md §3).
//
// Each generator emits a real program for the specvec ISA whose dynamic
// behaviour matches the published characteristics that drive the paper's
// mechanism: the per-benchmark stride mix of Figure 1, branch
// predictability, instruction mix, and loop structure. The suite is the
// eight SpecInt95 programs and the four SpecFP95 programs the paper uses
// (swim, applu, turb3d, fpppp). Build(scale, seed) returns a program of
// approximately scale dynamic instructions with seed-determined data, so
// experiments are reproducible bit-for-bit at any size.
package workload
