package workload

import (
	"testing"

	"specvec/internal/config"
	"specvec/internal/emu"
	"specvec/internal/pipeline"
)

func TestRegistryComplete(t *testing.T) {
	if got := len(sortedRegistryNames()); got != 12 {
		t.Fatalf("registered %d benchmarks, want 12", got)
	}
	if len(IntNames()) != 8 || len(FPNames()) != 4 {
		t.Error("suite split wrong")
	}
	for _, n := range Names() {
		b, err := Get(n)
		if err != nil {
			t.Fatal(err)
		}
		if b.Name != n || b.Description == "" || b.Build == nil {
			t.Errorf("benchmark %q incomplete", n)
		}
	}
	if _, err := Get("nonesuch"); err == nil {
		t.Error("Get accepted unknown name")
	}
}

func TestFPFlag(t *testing.T) {
	for _, n := range IntNames() {
		if b, _ := Get(n); b.FP {
			t.Errorf("%s marked FP", n)
		}
	}
	for _, n := range FPNames() {
		if b, _ := Get(n); !b.FP {
			t.Errorf("%s not marked FP", n)
		}
	}
}

// TestAllBenchmarksRunFunctionally executes every generated program on the
// emulator: it must halt within a bounded budget and touch memory.
func TestAllBenchmarksRunFunctionally(t *testing.T) {
	for _, bench := range All() {
		bench := bench
		t.Run(bench.Name, func(t *testing.T) {
			prog := bench.Build(60_000, 1)
			if err := prog.Validate(); err != nil {
				t.Fatal(err)
			}
			m, err := emu.New(prog)
			if err != nil {
				t.Fatal(err)
			}
			n, err := m.Run(3_000_000)
			if err != nil {
				t.Fatalf("did not halt: %v", err)
			}
			if n < 10_000 {
				t.Errorf("only %d dynamic instructions; generator mis-scaled", n)
			}
		})
	}
}

// TestScaleKnob: larger scales produce proportionally longer runs.
func TestScaleKnob(t *testing.T) {
	b, _ := Get("swim")
	short := dynLen(t, b, 30_000)
	long := dynLen(t, b, 120_000)
	if float64(long) < 1.8*float64(short) {
		t.Errorf("scale knob weak: %d vs %d", short, long)
	}
}

func dynLen(t *testing.T, b Benchmark, scale int) uint64 {
	t.Helper()
	m, err := emu.New(b.Build(scale, 1))
	if err != nil {
		t.Fatal(err)
	}
	n, err := m.Run(50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestDeterministicGeneration: same seed, same program.
func TestDeterministicGeneration(t *testing.T) {
	b, _ := Get("compress")
	p1 := b.Build(50_000, 7)
	p2 := b.Build(50_000, 7)
	if len(p1.Insts) != len(p2.Insts) {
		t.Fatal("instruction counts differ")
	}
	for i := range p1.Insts {
		if p1.Insts[i] != p2.Insts[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
}

// TestBenchmarksOnPipeline runs every workload through the full V
// configuration and sanity-checks the mechanism-relevant behaviour.
func TestBenchmarksOnPipeline(t *testing.T) {
	cfg := config.MustNamed(4, 1, config.ModeV)
	for _, bench := range All() {
		bench := bench
		t.Run(bench.Name, func(t *testing.T) {
			s, err := pipeline.New(cfg, bench.Build(50_000, 1))
			if err != nil {
				t.Fatal(err)
			}
			st, err := s.Run(80_000)
			if err != nil {
				t.Fatal(err)
			}
			if st.IPC() <= 0.1 || st.IPC() > float64(cfg.IssueWidth) {
				t.Errorf("implausible IPC %.3f", st.IPC())
			}
			if st.Validations() == 0 {
				t.Errorf("no validations: dynamic vectorization never fired")
			}
			if st.StrideHist.Total() == 0 {
				t.Error("no stride samples")
			}
		})
	}
}

// TestStrideCharacters checks the per-benchmark stride signatures that
// Figure 1 depends on.
func TestStrideCharacters(t *testing.T) {
	cfg := config.MustNamed(4, 1, config.ModeV)
	frac := func(name string, bucket int) float64 {
		b, _ := Get(name)
		s, err := pipeline.New(cfg, b.Build(60_000, 1))
		if err != nil {
			t.Fatal(err)
		}
		st, err := s.Run(60_000)
		if err != nil {
			t.Fatal(err)
		}
		return st.StrideHist.Fraction(bucket)
	}
	if f := frac("swim", 2); f < 0.2 {
		t.Errorf("swim stride-2 fraction %.2f, want >= 0.2 (unrolled loads)", f)
	}
	if f := frac("vortex", 8); f < 0.10 {
		t.Errorf("vortex stride-8 fraction %.2f, want >= 0.10 (record walks)", f)
	}
	if f := frac("li", 2); f < 0.3 {
		t.Errorf("li stride-2 fraction %.2f, want >= 0.3 (cons cells)", f)
	}
	if f := frac("fpppp", 0); f < 0.15 {
		t.Errorf("fpppp stride-0 fraction %.2f, want >= 0.15 (spill reloads)", f)
	}
	if f := frac("compress", -1); f < 0.2 {
		t.Errorf("compress irregular fraction %.2f, want >= 0.2 (hash probes)", f)
	}
}

// TestBranchCharacters: go must mispredict much more than swim.
func TestBranchCharacters(t *testing.T) {
	cfg := config.MustNamed(4, 1, config.ModeV)
	rate := func(name string) float64 {
		b, _ := Get(name)
		s, err := pipeline.New(cfg, b.Build(60_000, 1))
		if err != nil {
			t.Fatal(err)
		}
		st, err := s.Run(60_000)
		if err != nil {
			t.Fatal(err)
		}
		return st.BranchMispredictRate()
	}
	goRate, swimRate := rate("go"), rate("swim")
	if goRate < 2*swimRate {
		t.Errorf("go mispredict rate %.3f not clearly above swim %.3f", goRate, swimRate)
	}
	if goRate < 0.03 {
		t.Errorf("go mispredict rate %.3f implausibly low", goRate)
	}
}

// TestWorkloadOracleEquivalence: for a sample of real workloads, a timed
// run under full vectorization must leave exactly the architectural state
// of a pure functional run (the strongest end-to-end correctness check).
func TestWorkloadOracleEquivalence(t *testing.T) {
	cfg := config.MustNamed(4, 1, config.ModeV)
	for _, name := range []string{"vortex", "li", "fpppp"} {
		b, _ := Get(name)
		prog := b.Build(40_000, 3)

		gold, err := emu.New(prog)
		if err != nil {
			t.Fatal(err)
		}
		goldN, err := gold.Run(5_000_000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}

		s, err := pipeline.New(cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		st, err := s.Run(1 << 62)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.Committed != goldN-1 { // halt is not counted as committed
			t.Errorf("%s: committed %d, emulator ran %d", name, st.Committed, goldN)
		}
		for i := 0; i < 32; i++ {
			if s.Machine().IntReg(i) != gold.IntReg(i) {
				t.Errorf("%s: r%d = %d, want %d", name, i, s.Machine().IntReg(i), gold.IntReg(i))
			}
			if s.Machine().FPReg(i) != gold.FPReg(i) {
				t.Errorf("%s: f%d = %v, want %v", name, i, s.Machine().FPReg(i), gold.FPReg(i))
			}
		}
	}
}

// TestStoreConflictsPresent: the suite must exercise §3.6 at a low but
// non-zero rate overall.
func TestStoreConflictsPresent(t *testing.T) {
	cfg := config.MustNamed(4, 1, config.ModeV)
	var conflicts, stores uint64
	for _, name := range []string{"vortex", "li", "gcc", "fpppp"} {
		b, _ := Get(name)
		s, err := pipeline.New(cfg, b.Build(50_000, 1))
		if err != nil {
			t.Fatal(err)
		}
		st, err := s.Run(50_000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		conflicts += st.StoreConflicts
		stores += st.CommittedStores
	}
	if conflicts == 0 {
		t.Fatal("no store/range conflicts anywhere in the suite")
	}
	if rate := float64(conflicts) / float64(stores); rate > 0.25 {
		t.Errorf("conflict rate %.3f pathologically high", rate)
	}
}
