package branch

import "specvec/internal/isa"

// Config sizes the predictor structures.
type Config struct {
	TableBits   int // log2 of the counter table size (16 -> 64K entries)
	HistoryBits int // global history length
	BTBEntries  int // direct-mapped BTB size for indirect targets
	RASDepth    int // return address stack depth
}

// DefaultConfig matches Table 1 (gshare, 64K entries).
func DefaultConfig() Config {
	return Config{TableBits: 16, HistoryBits: 16, BTBEntries: 2048, RASDepth: 32}
}

// Predictor holds all front-end prediction state.
type Predictor struct {
	cfg      Config
	table    []uint8 // 2-bit saturating counters
	history  uint64
	histMask uint64

	btbTags    []uint64
	btbTargets []uint64

	ras    []uint64
	rasTop int
}

// New returns a predictor for cfg.
func New(cfg Config) *Predictor {
	if cfg.TableBits <= 0 {
		cfg = DefaultConfig()
	}
	p := &Predictor{
		cfg:        cfg,
		table:      make([]uint8, 1<<cfg.TableBits),
		histMask:   (1 << cfg.HistoryBits) - 1,
		btbTags:    make([]uint64, cfg.BTBEntries),
		btbTargets: make([]uint64, cfg.BTBEntries),
		ras:        make([]uint64, cfg.RASDepth),
	}
	// Weakly taken initial state: loops predict well immediately, matching
	// the usual simulator warm state.
	for i := range p.table {
		p.table[i] = 2
	}
	return p
}

// SeedHistory sets the global history register. Checkpointed
// fast-forward (internal/trace) records the conditional-branch outcome
// history at every checkpoint boundary and seeds it here, so a shard's
// warmup starts from representative gshare indices instead of an
// all-zero history.
func (p *Predictor) SeedHistory(h uint64) { p.history = h }

func (p *Predictor) index(pc uint64) uint64 {
	return (pc ^ (p.history & p.histMask)) & uint64(len(p.table)-1)
}

// PredictCond predicts the direction of the conditional branch at pc.
func (p *Predictor) PredictCond(pc uint64) bool {
	return p.table[p.index(pc)] >= 2
}

// UpdateCond trains the predictor with the resolved outcome and shifts the
// global history. The simulator is trace-driven, so prediction and update
// happen at the same model point; accuracy matches a speculatively-updated,
// repair-on-mispredict history.
func (p *Predictor) UpdateCond(pc uint64, taken bool) {
	idx := p.index(pc)
	c := p.table[idx]
	if taken {
		if c < 3 {
			c++
		}
	} else if c > 0 {
		c--
	}
	p.table[idx] = c
	p.history = (p.history << 1) | boolBit(taken)
}

// PredictIndirect predicts the target of a register-indirect jump at pc.
// ok is false when the BTB has no entry (a cold miss — always mispredicted).
func (p *Predictor) PredictIndirect(pc uint64) (target uint64, ok bool) {
	i := pc % uint64(len(p.btbTags))
	if p.btbTags[i] != pc+1 { // +1 so the zero value means empty
		return 0, false
	}
	return p.btbTargets[i], true
}

// UpdateIndirect records the resolved target of the indirect jump at pc.
func (p *Predictor) UpdateIndirect(pc, target uint64) {
	i := pc % uint64(len(p.btbTags))
	p.btbTags[i] = pc + 1
	p.btbTargets[i] = target
}

// Call pushes a return address on the RAS (jal).
func (p *Predictor) Call(returnPC uint64) {
	p.ras[p.rasTop%len(p.ras)] = returnPC
	p.rasTop++
}

// PredictReturn pops the RAS; ok is false when the stack is empty.
func (p *Predictor) PredictReturn() (target uint64, ok bool) {
	if p.rasTop == 0 {
		return 0, false
	}
	p.rasTop--
	return p.ras[p.rasTop%len(p.ras)], true
}

// Predict classifies one control instruction and returns the predicted
// next PC plus whether the (direction, target) prediction was correct given
// the actual outcome. It also trains all structures. Non-control
// instructions return (pc+1, true).
func (p *Predictor) Predict(pc uint64, in isa.Inst, actualTaken bool, actualTarget uint64) (predictedNext uint64, correct bool) {
	switch {
	case in.IsBranch():
		pred := p.PredictCond(pc)
		p.UpdateCond(pc, actualTaken)
		if pred {
			predictedNext = uint64(in.Imm)
		} else {
			predictedNext = pc + 1
		}
		return predictedNext, pred == actualTaken
	case in.Op == isa.OpJ:
		return uint64(in.Imm), true
	case in.Op == isa.OpJal:
		p.Call(pc + 1)
		return uint64(in.Imm), true
	case in.Op == isa.OpJr:
		// Returns (jr r31) consult the RAS; other indirect jumps the BTB.
		var pred uint64
		var ok bool
		if in.Rs1 == isa.IntReg(31) {
			pred, ok = p.PredictReturn()
		}
		if !ok {
			pred, ok = p.PredictIndirect(pc)
		}
		p.UpdateIndirect(pc, actualTarget)
		return pred, ok && pred == actualTarget
	default:
		return pc + 1, true
	}
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
