// Package branch implements the front-end predictors from Table 1 of the
// paper: a gshare conditional-branch predictor with 64K two-bit counters,
// a branch target buffer for indirect jumps and a return address stack.
//
// The pipeline consults the predictor at fetch; a wrong prediction stalls
// fetch until the branch resolves plus a redirect penalty (trace-driven
// recovery — wrong-path instructions are not simulated). Prediction state
// updates immediately at fetch, which matches the in-order front end of
// the paper's SimpleScalar substrate.
package branch
