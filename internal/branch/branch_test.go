package branch

import (
	"testing"

	"specvec/internal/isa"
)

func TestLoopBranchConverges(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(100)
	// A loop branch taken 99 times then not taken: after warmup the
	// predictor should be right on every taken iteration.
	wrong := 0
	for i := 0; i < 99; i++ {
		if !p.PredictCond(pc) {
			wrong++
		}
		p.UpdateCond(pc, true)
	}
	if wrong > 2 {
		t.Errorf("taken loop mispredicted %d times", wrong)
	}
}

func TestAlternatingWithHistory(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(64)
	// Strictly alternating T/N/T/N is perfectly predictable with global
	// history once warmed up.
	wrong := 0
	for i := 0; i < 2000; i++ {
		taken := i%2 == 0
		if p.PredictCond(pc) != taken {
			wrong++
		}
		p.UpdateCond(pc, taken)
	}
	if wrong > 200 {
		t.Errorf("alternating pattern mispredicted %d/2000 times", wrong)
	}
}

func TestCountersSaturate(t *testing.T) {
	p := New(Config{TableBits: 4, HistoryBits: 0, BTBEntries: 4, RASDepth: 4})
	pc := uint64(3)
	for i := 0; i < 10; i++ {
		p.UpdateCond(pc, true)
	}
	if !p.PredictCond(pc) {
		t.Error("saturated taken counter predicts not-taken")
	}
	for i := 0; i < 10; i++ {
		p.UpdateCond(pc, false)
	}
	if p.PredictCond(pc) {
		t.Error("saturated not-taken counter predicts taken")
	}
}

func TestBTB(t *testing.T) {
	p := New(DefaultConfig())
	if _, ok := p.PredictIndirect(7); ok {
		t.Error("cold BTB produced a prediction")
	}
	p.UpdateIndirect(7, 1234)
	target, ok := p.PredictIndirect(7)
	if !ok || target != 1234 {
		t.Errorf("BTB = %d,%v want 1234,true", target, ok)
	}
}

func TestRAS(t *testing.T) {
	p := New(DefaultConfig())
	p.Call(11)
	p.Call(22)
	if tgt, ok := p.PredictReturn(); !ok || tgt != 22 {
		t.Errorf("first return = %d,%v", tgt, ok)
	}
	if tgt, ok := p.PredictReturn(); !ok || tgt != 11 {
		t.Errorf("second return = %d,%v", tgt, ok)
	}
	if _, ok := p.PredictReturn(); ok {
		t.Error("empty RAS produced a prediction")
	}
}

func TestPredictDispatch(t *testing.T) {
	p := New(DefaultConfig())

	// Direct jump: always correct.
	next, ok := p.Predict(5, isa.Inst{Op: isa.OpJ, Imm: 42}, false, 42)
	if !ok || next != 42 {
		t.Errorf("j predict = %d,%v", next, ok)
	}

	// Call then return through the RAS: correct.
	p.Predict(10, isa.Inst{Op: isa.OpJal, Rd: isa.IntReg(31), Imm: 100}, false, 100)
	next, ok = p.Predict(105, isa.Inst{Op: isa.OpJr, Rs1: isa.IntReg(31)}, false, 11)
	if !ok || next != 11 {
		t.Errorf("return predict = %d,%v want 11,true", next, ok)
	}

	// Indirect jump through a non-link register: BTB cold miss first.
	_, ok = p.Predict(200, isa.Inst{Op: isa.OpJr, Rs1: isa.IntReg(5)}, false, 300)
	if ok {
		t.Error("cold indirect predicted correctly")
	}
	next, ok = p.Predict(200, isa.Inst{Op: isa.OpJr, Rs1: isa.IntReg(5)}, false, 300)
	if !ok || next != 300 {
		t.Errorf("warm indirect = %d,%v", next, ok)
	}

	// Non-control falls through.
	next, ok = p.Predict(7, isa.Inst{Op: isa.OpAdd}, false, 0)
	if !ok || next != 8 {
		t.Errorf("non-control = %d,%v", next, ok)
	}
}

func TestConditionalPredictOutcome(t *testing.T) {
	p := New(DefaultConfig())
	br := isa.Inst{Op: isa.OpBne, Imm: 3}
	// Train taken.
	for i := 0; i < 8; i++ {
		p.Predict(50, br, true, 3)
	}
	next, correct := p.Predict(50, br, true, 3)
	if !correct || next != 3 {
		t.Errorf("trained branch: next=%d correct=%v", next, correct)
	}
	// A not-taken outcome now is a mispredict and predicted next is the
	// taken target (what fetch would have followed).
	next, correct = p.Predict(50, br, false, 3)
	if correct {
		t.Error("surprise not-taken reported as correct")
	}
	if next != 3 {
		t.Errorf("predicted next = %d, want taken target 3", next)
	}
}
