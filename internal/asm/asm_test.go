package asm

import (
	"strings"
	"testing"

	"specvec/internal/emu"
	"specvec/internal/isa"
)

const sumProgram = `
        .data
arr:    .word 1, 2, 3, 4, 5      ; five values
        .text
main:   li    r1, arr
        li    r2, 0              ; i
        li    r3, 5              ; n
        li    r4, 0              ; sum
loop:   slli  r5, r2, 3
        add   r6, r1, r5
        ld    r7, 0(r6)
        add   r4, r4, r7
        addi  r2, r2, 1
        blt   r2, r3, loop
        halt
`

func TestAssembleAndRun(t *testing.T) {
	p, err := Assemble("sum", sumProgram)
	if err != nil {
		t.Fatal(err)
	}
	m, err := emu.New(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	if got := m.IntReg(4); got != 15 {
		t.Errorf("sum = %d, want 15", got)
	}
}

func TestForwardDataReference(t *testing.T) {
	src := `
        .text
        li   r1, later
        ld   r2, 0(r1)
        halt
        .data
later:  .word 77
`
	p, err := Assemble("fwd", src)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := emu.New(p)
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if got := m.IntReg(2); got != 77 {
		t.Errorf("r2 = %d, want 77", got)
	}
}

func TestFloatsAndSpace(t *testing.T) {
	src := `
        .data
vals:   .float 2.5, -0.5
buf:    .space 16
        .text
        li   r1, vals
        li   r2, buf
        ldf  f1, 0(r1)
        ldf  f2, 8(r1)
        fmul f3, f1, f2
        stf  f3, 8(r2)
        halt
`
	p, err := Assemble("f", src)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := emu.New(p)
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	got := m.Mem().ReadFloat(p.DataSyms["buf"] + 8)
	if got != -1.25 {
		t.Errorf("buf[1] = %v, want -1.25", got)
	}
}

func TestAllMnemonicsAssemble(t *testing.T) {
	src := `
        .data
d:      .word 0
        .text
        nop
        ld   r1, 0(r2)
        ldf  f1, 8(r2)
        st   r1, 0(r2)
        stf  f1, -8(r2)
        add  r1, r2, r3
        sub  r1, r2, r3
        mul  r1, r2, r3
        div  r1, r2, r3
        rem  r1, r2, r3
        and  r1, r2, r3
        or   r1, r2, r3
        xor  r1, r2, r3
        sll  r1, r2, r3
        srl  r1, r2, r3
        sra  r1, r2, r3
        slt  r1, r2, r3
        sltu r1, r2, r3
        addi r1, r2, 10
        andi r1, r2, 0xff
        ori  r1, r2, 1
        xori r1, r2, -1
        slli r1, r2, 3
        srli r1, r2, 3
        srai r1, r2, 3
        slti r1, r2, 5
        li   r1, 'x'
        fadd f1, f2, f3
        fsub f1, f2, f3
        fmul f1, f2, f3
        fdiv f1, f2, f3
        fneg f1, f2
        fabs f1, f2
        fmov f1, f2
        fcvt.if f1, r2
        fcvt.fi r1, f2
        flt  r1, f2, f3
        fle  r1, f2, f3
        feq  r1, f2, f3
target: beq  r1, r2, target
        bne  r1, r2, target
        blt  r1, r2, target
        bge  r1, r2, target
        bltu r1, r2, target
        bgeu r1, r2, target
        j    target
        jal  r31, target
        jr   r31
        jr   r31, 4
        halt
`
	p, err := Assemble("all", src)
	if err != nil {
		t.Fatal(err)
	}
	// One instruction per non-blank, non-directive line.
	if len(p.Insts) != 50 {
		t.Errorf("assembled %d instructions, want 50", len(p.Insts))
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown-mnemonic", "frob r1, r2", "unknown mnemonic"},
		{"bad-register", "add r1, r99, r2", "out of range"},
		{"bad-mem", "ld r1, 8[r2]", "bad memory operand"},
		{"missing-operand", "add r1, r2", "needs 3 operands"},
		{"undefined-branch", "beq r1, r2, nowhere", "undefined label"},
		{"inst-in-data", ".data\nadd r1, r2, r3", "in .data section"},
		{"unknown-directive", ".bss", "unknown directive"},
		{"bad-float", ".data\nx: .float 1.5, zap", "bad float"},
		{"bad-space", ".data\nx: .space -1", "bad .space"},
		{"dup-label", "x: nop\nx: nop", "duplicate label"},
		{"word-in-text", ".word 5", "outside .data"},
		{"bad-li", "li r1, nosuchdata", "unknown immediate"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble("bad", c.src)
			if err == nil {
				t.Fatalf("assembled successfully, want error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error = %q, want substring %q", err, c.want)
			}
		})
	}
}

func TestErrorLineNumbers(t *testing.T) {
	_, err := Assemble("bad", "nop\nnop\nfrob r1\n")
	aerr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if aerr.Line != 3 {
		t.Errorf("error line = %d, want 3", aerr.Line)
	}
}

func TestMultipleLabelsOneBlock(t *testing.T) {
	src := `
        .data
a:
b:      .word 42
        .text
        li r1, a
        li r2, b
        halt
`
	p, err := Assemble("alias", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.DataSyms["a"] != p.DataSyms["b"] {
		t.Errorf("aliased labels differ: a=%#x b=%#x", p.DataSyms["a"], p.DataSyms["b"])
	}
}

func TestCharLiteral(t *testing.T) {
	p, err := Assemble("ch", "li r1, 'A'\nhalt\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[0].Imm != 65 {
		t.Errorf("imm = %d, want 65", p.Insts[0].Imm)
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	p, err := Assemble("sum", sumProgram)
	if err != nil {
		t.Fatal(err)
	}
	text := Disassemble(p)
	for _, want := range []string{"main:", "loop:", "ld r7, 0(r6)", "blt r2, r3, @4"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
}

// TestAssembleStringRoundTrip re-assembles every instruction's String()
// rendering (with label targets patched) and checks the decoded form
// matches — a weak but broad encoder/decoder consistency check.
func TestAssembleStringRoundTrip(t *testing.T) {
	p, err := Assemble("sum", sumProgram)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range p.Insts {
		s := in.String()
		if strings.Contains(s, "@") {
			continue // branch targets render as @N, not a label
		}
		src := ".text\n" + s + "\n"
		p2, err := Assemble("rt", src)
		if err != nil {
			t.Errorf("re-assembling %q: %v", s, err)
			continue
		}
		if p2.Insts[0] != in {
			t.Errorf("round trip %q: got %+v, want %+v", s, p2.Insts[0], in)
		}
	}
}

func TestEmptyProgram(t *testing.T) {
	p, err := Assemble("empty", "; just a comment\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Insts) != 0 {
		t.Errorf("insts = %d, want 0", len(p.Insts))
	}
	m, err := emu.New(p)
	if err != nil {
		t.Fatal(err)
	}
	m.Step() // off-the-end fetch is a halt
	if !m.Halted() {
		t.Error("empty program did not halt")
	}
}

var _ = isa.OpNop // keep isa imported for future table additions
