package asm

import (
	"fmt"
	"strconv"
	"strings"

	"specvec/internal/isa"
)

// Error describes an assembly failure with its source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type section int

const (
	secText section = iota
	secData
)

type assembler struct {
	b    *isa.Builder
	sec  section
	line int

	// Data labels must be usable before their definition (forward refs in
	// li), so assembly is two-pass: pass 1 lays out data, pass 2 emits code.
	dataOnly bool

	// pendingData holds labels seen in .data that bind to the next
	// data directive.
	pendingData []string
}

// Assemble parses source and returns the program.
func Assemble(name, source string) (*isa.Program, error) {
	b := isa.NewBuilder(name)

	// Pass 1: data directives only, so code can reference any data label.
	p1 := &assembler{b: b, dataOnly: true}
	if err := p1.run(source); err != nil {
		return nil, err
	}
	// Pass 2: code only.
	p2 := &assembler{b: b}
	if err := p2.run(source); err != nil {
		return nil, err
	}
	prog, err := b.Build()
	if err != nil {
		return nil, &Error{Line: 0, Msg: err.Error()}
	}
	return prog, nil
}

func (a *assembler) run(source string) error {
	a.sec = secText
	for i, raw := range strings.Split(source, "\n") {
		a.line = i + 1
		if err := a.statement(raw); err != nil {
			return err
		}
		if a.b.Err() != nil {
			return &Error{Line: a.line, Msg: a.b.Err().Error()}
		}
	}
	return nil
}

func (a *assembler) errf(format string, args ...any) error {
	return &Error{Line: a.line, Msg: fmt.Sprintf(format, args...)}
}

func (a *assembler) statement(raw string) error {
	line := raw
	if i := strings.IndexAny(line, ";#"); i >= 0 {
		line = line[:i]
	}
	line = strings.TrimSpace(line)
	if line == "" {
		return nil
	}

	// Peel off any leading "label:" prefixes.
	for {
		i := strings.Index(line, ":")
		if i < 0 || strings.ContainsAny(line[:i], " \t,(") {
			break
		}
		label := line[:i]
		if err := a.defineLabel(label); err != nil {
			return err
		}
		line = strings.TrimSpace(line[i+1:])
		if line == "" {
			return nil
		}
	}

	fields := strings.SplitN(line, " ", 2)
	mnem := strings.ToLower(strings.TrimSpace(fields[0]))
	rest := ""
	if len(fields) > 1 {
		rest = strings.TrimSpace(fields[1])
	}

	if strings.HasPrefix(mnem, ".") {
		return a.directive(mnem, rest)
	}
	if a.sec == secData {
		return a.errf("instruction %q in .data section", mnem)
	}
	if a.dataOnly {
		return nil
	}
	return a.instruction(mnem, rest)
}

func (a *assembler) defineLabel(label string) error {
	if a.sec == secData {
		// Data labels bind to the *next* directive; remember it.
		a.pendingData = append(a.pendingData, label)
		return nil
	}
	if a.dataOnly {
		return nil
	}
	a.b.Label(label)
	return nil
}

func (a *assembler) directive(name, rest string) error {
	switch name {
	case ".text":
		a.sec = secText
		return nil
	case ".data":
		a.sec = secData
		return nil
	case ".word", ".float", ".space":
		if a.sec != secData {
			return a.errf("%s outside .data", name)
		}
		if !a.dataOnly {
			a.pendingData = nil // already laid out in pass 1
			return nil
		}
		label := ""
		aliases := []string(nil)
		if n := len(a.pendingData); n > 0 {
			label = a.pendingData[0]
			aliases = a.pendingData[1:]
			a.pendingData = nil
		}
		var addr uint64
		switch name {
		case ".word":
			vals, err := a.parseInts(rest)
			if err != nil {
				return err
			}
			words := make([]uint64, len(vals))
			for i, v := range vals {
				words[i] = uint64(v)
			}
			addr = a.b.DataWords(label, words)
		case ".float":
			var vals []float64
			for _, f := range splitOperands(rest) {
				v, err := strconv.ParseFloat(f, 64)
				if err != nil {
					return a.errf("bad float %q", f)
				}
				vals = append(vals, v)
			}
			addr = a.b.DataFloats(label, vals)
		case ".space":
			n, err := strconv.Atoi(strings.TrimSpace(rest))
			if err != nil || n < 0 {
				return a.errf("bad .space size %q", rest)
			}
			addr = a.b.DataBytes(label, make([]byte, n))
		}
		for _, alias := range aliases {
			a.b.BindDataLabel(alias, addr)
		}
		return nil
	default:
		return a.errf("unknown directive %q", name)
	}
}

func (a *assembler) parseInts(rest string) ([]int64, error) {
	var out []int64
	for _, f := range splitOperands(rest) {
		v, err := parseIntLit(f)
		if err != nil {
			return nil, a.errf("bad integer %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

func splitOperands(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseIntLit(s string) (int64, error) {
	if len(s) == 3 && s[0] == '\'' && s[2] == '\'' {
		return int64(s[1]), nil
	}
	return strconv.ParseInt(s, 0, 64)
}
