package asm

import (
	"fmt"
	"strings"

	"specvec/internal/isa"
)

// operand shapes understood by the instruction parser.
type form int

const (
	formNone   form = iota // halt, nop
	formMem                // op rX, imm(rY)
	formRRR                // op rd, rs1, rs2
	formRRI                // op rd, rs1, imm
	formRR                 // op rd, rs1
	formRImm               // op rd, imm-or-data-label
	formBranch             // op rs1, rs2, codelabel
	formJump               // op codelabel
	formJal                // op rd, codelabel
	formJr                 // op rs1 [, imm]
)

type opSpec struct {
	op   isa.Op
	form form
}

var mnemonics = map[string]opSpec{
	"nop":  {isa.OpNop, formNone},
	"halt": {isa.OpHalt, formNone},

	"ld":  {isa.OpLd, formMem},
	"ldf": {isa.OpLdf, formMem},
	"st":  {isa.OpSt, formMem},
	"stf": {isa.OpStf, formMem},

	"add":  {isa.OpAdd, formRRR},
	"sub":  {isa.OpSub, formRRR},
	"mul":  {isa.OpMul, formRRR},
	"div":  {isa.OpDiv, formRRR},
	"rem":  {isa.OpRem, formRRR},
	"and":  {isa.OpAnd, formRRR},
	"or":   {isa.OpOr, formRRR},
	"xor":  {isa.OpXor, formRRR},
	"sll":  {isa.OpSll, formRRR},
	"srl":  {isa.OpSrl, formRRR},
	"sra":  {isa.OpSra, formRRR},
	"slt":  {isa.OpSlt, formRRR},
	"sltu": {isa.OpSltu, formRRR},

	"addi": {isa.OpAddi, formRRI},
	"andi": {isa.OpAndi, formRRI},
	"ori":  {isa.OpOri, formRRI},
	"xori": {isa.OpXori, formRRI},
	"slli": {isa.OpSlli, formRRI},
	"srli": {isa.OpSrli, formRRI},
	"srai": {isa.OpSrai, formRRI},
	"slti": {isa.OpSlti, formRRI},
	"li":   {isa.OpLi, formRImm},

	"fadd":    {isa.OpFadd, formRRR},
	"fsub":    {isa.OpFsub, formRRR},
	"fmul":    {isa.OpFmul, formRRR},
	"fdiv":    {isa.OpFdiv, formRRR},
	"fneg":    {isa.OpFneg, formRR},
	"fabs":    {isa.OpFabs, formRR},
	"fmov":    {isa.OpFmov, formRR},
	"fcvt.if": {isa.OpFcvtIF, formRR},
	"fcvt.fi": {isa.OpFcvtFI, formRR},
	"flt":     {isa.OpFlt, formRRR},
	"fle":     {isa.OpFle, formRRR},
	"feq":     {isa.OpFeq, formRRR},

	"beq":  {isa.OpBeq, formBranch},
	"bne":  {isa.OpBne, formBranch},
	"blt":  {isa.OpBlt, formBranch},
	"bge":  {isa.OpBge, formBranch},
	"bltu": {isa.OpBltu, formBranch},
	"bgeu": {isa.OpBgeu, formBranch},
	"j":    {isa.OpJ, formJump},
	"jal":  {isa.OpJal, formJal},
	"jr":   {isa.OpJr, formJr},
}

func (a *assembler) instruction(mnem, rest string) error {
	spec, ok := mnemonics[mnem]
	if !ok {
		return a.errf("unknown mnemonic %q", mnem)
	}
	ops := splitOperands(rest)

	switch spec.form {
	case formNone:
		if len(ops) != 0 {
			return a.errf("%s takes no operands", mnem)
		}
		a.b.Emit(isa.Inst{Op: spec.op})

	case formMem:
		if len(ops) != 2 {
			return a.errf("%s needs 2 operands", mnem)
		}
		data, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		off, base, err := a.memOperand(ops[1])
		if err != nil {
			return err
		}
		in := isa.Inst{Op: spec.op, Rs1: base, Imm: off}
		if spec.op == isa.OpSt || spec.op == isa.OpStf {
			in.Rs2 = data
		} else {
			in.Rd = data
		}
		a.b.Emit(in)

	case formRRR:
		rd, rs1, rs2, err := a.regs3(mnem, ops)
		if err != nil {
			return err
		}
		a.b.Emit(isa.Inst{Op: spec.op, Rd: rd, Rs1: rs1, Rs2: rs2})

	case formRRI:
		if len(ops) != 3 {
			return a.errf("%s needs 3 operands", mnem)
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		rs1, err := a.reg(ops[1])
		if err != nil {
			return err
		}
		imm, err := a.immediate(ops[2])
		if err != nil {
			return err
		}
		a.b.Emit(isa.Inst{Op: spec.op, Rd: rd, Rs1: rs1, Imm: imm})

	case formRR:
		if len(ops) != 2 {
			return a.errf("%s needs 2 operands", mnem)
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		rs1, err := a.reg(ops[1])
		if err != nil {
			return err
		}
		a.b.Emit(isa.Inst{Op: spec.op, Rd: rd, Rs1: rs1})

	case formRImm:
		if len(ops) != 2 {
			return a.errf("%s needs 2 operands", mnem)
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		imm, err := a.immediate(ops[1])
		if err != nil {
			return err
		}
		a.b.Emit(isa.Inst{Op: spec.op, Rd: rd, Imm: imm})

	case formBranch:
		if len(ops) != 3 {
			return a.errf("%s needs 3 operands", mnem)
		}
		rs1, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		rs2, err := a.reg(ops[1])
		if err != nil {
			return err
		}
		switch spec.op {
		case isa.OpBeq:
			a.b.Beq(rs1, rs2, ops[2])
		case isa.OpBne:
			a.b.Bne(rs1, rs2, ops[2])
		case isa.OpBlt:
			a.b.Blt(rs1, rs2, ops[2])
		case isa.OpBge:
			a.b.Bge(rs1, rs2, ops[2])
		case isa.OpBltu:
			a.b.Bltu(rs1, rs2, ops[2])
		case isa.OpBgeu:
			a.b.Bgeu(rs1, rs2, ops[2])
		}

	case formJump:
		if len(ops) != 1 {
			return a.errf("j needs 1 operand")
		}
		a.b.J(ops[0])

	case formJal:
		if len(ops) != 2 {
			return a.errf("jal needs 2 operands")
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		a.b.Jal(rd, ops[1])

	case formJr:
		if len(ops) != 1 && len(ops) != 2 {
			return a.errf("jr needs 1 or 2 operands")
		}
		rs1, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		var off int64
		if len(ops) == 2 {
			off, err = parseIntLit(ops[1])
			if err != nil {
				return a.errf("bad jr offset %q", ops[1])
			}
		}
		a.b.Jr(rs1, off)
	}
	return nil
}

func (a *assembler) regs3(mnem string, ops []string) (rd, rs1, rs2 isa.Reg, err error) {
	if len(ops) != 3 {
		return 0, 0, 0, a.errf("%s needs 3 operands", mnem)
	}
	if rd, err = a.reg(ops[0]); err != nil {
		return
	}
	if rs1, err = a.reg(ops[1]); err != nil {
		return
	}
	rs2, err = a.reg(ops[2])
	return
}

func (a *assembler) reg(s string) (isa.Reg, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if len(s) < 2 {
		return 0, a.errf("bad register %q", s)
	}
	var fp bool
	switch s[0] {
	case 'r':
	case 'f':
		fp = true
	default:
		return 0, a.errf("bad register %q", s)
	}
	n := 0
	for _, c := range s[1:] {
		if c < '0' || c > '9' {
			return 0, a.errf("bad register %q", s)
		}
		n = n*10 + int(c-'0')
	}
	if n >= isa.NumIntRegs {
		return 0, a.errf("register %q out of range", s)
	}
	if fp {
		return isa.FPReg(n), nil
	}
	return isa.IntReg(n), nil
}

// memOperand parses "imm(rB)" or "(rB)".
func (a *assembler) memOperand(s string) (off int64, base isa.Reg, err error) {
	open := strings.Index(s, "(")
	close := strings.LastIndex(s, ")")
	if open < 0 || close <= open {
		return 0, 0, a.errf("bad memory operand %q", s)
	}
	if immStr := strings.TrimSpace(s[:open]); immStr != "" {
		off, err = parseIntLit(immStr)
		if err != nil {
			return 0, 0, a.errf("bad displacement %q", immStr)
		}
	}
	base, err = a.reg(s[open+1 : close])
	return off, base, err
}

// immediate parses an integer literal or a data label reference.
func (a *assembler) immediate(s string) (int64, error) {
	if v, err := parseIntLit(s); err == nil {
		return v, nil
	}
	// Data label. In the data-only pass the label may not exist yet — the
	// instruction is skipped anyway, so return a placeholder.
	if a.dataOnly {
		return 0, nil
	}
	addr := a.b.DataAddr(s)
	if a.b.Err() != nil {
		return 0, a.errf("unknown immediate or data label %q", s)
	}
	return int64(addr), nil
}

// Disassemble renders a program listing with labels and addresses.
func Disassemble(p *isa.Program) string {
	labelAt := map[uint64][]string{}
	for name, pc := range p.Symbols {
		labelAt[pc] = append(labelAt[pc], name)
	}
	var sb strings.Builder
	for pc, in := range p.Insts {
		for _, l := range labelAt[uint64(pc)] {
			fmt.Fprintf(&sb, "%s:\n", l)
		}
		fmt.Fprintf(&sb, "%6d:  %s\n", pc, in)
	}
	return sb.String()
}
