// Package asm implements a text assembler and disassembler for the specvec
// ISA. Examples and tests write small kernels in assembly; workload
// generators use the isa.Builder API directly.
//
// Syntax (one statement per line, ';' or '#' start a comment):
//
//	        .data
//	arr:    .word 1, 2, 3, 4        ; labelled 64-bit words
//	vals:   .float 1.5, -2.5        ; labelled IEEE-754 doubles
//	buf:    .space 32               ; labelled zero block (bytes)
//
//	        .text
//	main:   li    r1, arr           ; data labels are immediates
//	        ld    r2, 8(r1)
//	        add   r3, r2, r2
//	        beq   r3, r0, done
//	        j     main
//	done:   halt
//
// Branch and jump targets are code labels; `li` accepts integer literals,
// character literals ('a'), or data labels. cmd/sdvasm wraps the package
// as a command-line assembler/disassembler/runner.
package asm
