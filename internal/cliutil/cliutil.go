// Package cliutil carries the flag-validation helpers shared by the
// sdvsim/sdvexp/sdvtrace/sdvd commands, so every tool rejects nonsense
// values the same way: a one-line error on stderr and a nonzero exit,
// never a silent clamp or a panic deep in the stack.
package cliutil

import (
	"fmt"
	"net"
	"net/url"
	"os"
	"strings"
)

// FlagError reports an invalid flag value with the accepted range.
func FlagError(name string, value any, want string) error {
	return fmt.Errorf("invalid -%s %v: want %s", name, value, want)
}

// ValidateRunFlags checks the run-shape flags common to sdvsim and
// sdvexp, returning the first violation.
func ValidateRunFlags(scale, shards, parallel int) error {
	if scale <= 0 {
		return FlagError("scale", scale, "> 0")
	}
	if shards < 1 {
		return FlagError("shards", shards, ">= 1")
	}
	if parallel < 0 {
		return FlagError("parallel", parallel, ">= 0 (0 = all cores)")
	}
	return nil
}

// ValidateGang checks a -gang flag value: 0 gangs every configuration
// of a benchmark over one shared trace walk, 1 disables gang replay,
// K >= 2 caps members per gang. Negative values are rejected rather
// than silently treated as "disabled".
func ValidateGang(gang int) error {
	if gang < 0 {
		return FlagError("gang", gang, ">= 0 (0 = gang all configs, 1 = off)")
	}
	return nil
}

// ValidateSpecPath checks a -spec flag value before it is parsed as a
// workload-spec file: the path must name an existing, non-empty regular
// file. Content-level problems (bad YAML, empty workload lists,
// duplicate names) are wspec.Parse's job; this catches the pure
// flag-level mistakes with the same one-line shape as the other
// validators.
func ValidateSpecPath(path string) error {
	if path == "" {
		return FlagError("spec", "\"\"", "a workload-spec file path")
	}
	fi, err := os.Stat(path)
	if err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("invalid -spec %q: no such file", path)
		}
		return fmt.Errorf("invalid -spec %q: %v", path, err)
	}
	if fi.IsDir() {
		return fmt.Errorf("invalid -spec %q: is a directory, want a YAML/JSON spec file", path)
	}
	if fi.Size() == 0 {
		return fmt.Errorf("invalid -spec %q: file is empty", path)
	}
	return nil
}

// SplitSpecPaths expands a comma-separated -spec value and validates
// each path.
func SplitSpecPaths(arg string) ([]string, error) {
	var out []string
	for _, p := range strings.Split(arg, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if err := ValidateSpecPath(p); err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, FlagError("spec", fmt.Sprintf("%q", arg), "one or more workload-spec file paths")
	}
	return out, nil
}

// ValidateServerURL checks a flag naming a server base URL (sdvexp
// -server, sdvd -join, -advertise): it must parse as an absolute
// http(s) URL with a host and no trailing junk a join would silently
// mangle.
func ValidateServerURL(name, raw string) error {
	if raw == "" {
		return FlagError(name, "\"\"", "an http(s) base URL")
	}
	u, err := url.Parse(raw)
	if err != nil {
		return FlagError(name, fmt.Sprintf("%q", raw), "an absolute http(s) URL")
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return FlagError(name, fmt.Sprintf("%q", raw), "an absolute http(s) URL")
	}
	if u.Host == "" {
		return FlagError(name, fmt.Sprintf("%q", raw), "a URL with a host")
	}
	if u.RawQuery != "" || u.Fragment != "" {
		return FlagError(name, fmt.Sprintf("%q", raw), "a base URL without query or fragment")
	}
	return nil
}

// ValidateClusterFlags checks sdvd's cluster role flags as a set:
// -coordinator and -worker are mutually exclusive roles, -join is
// required by (and only meaningful with) -worker, and -advertise only
// makes sense on a worker. URL values are checked with
// ValidateServerURL.
func ValidateClusterFlags(coordinator, worker bool, joinURL, advertiseURL string) error {
	if coordinator && worker {
		return fmt.Errorf("invalid flags: -coordinator and -worker are mutually exclusive (a worker joins a coordinator, it is not one)")
	}
	if worker && joinURL == "" {
		return fmt.Errorf("invalid flags: -worker requires -join <coordinator URL>")
	}
	if !worker && joinURL != "" {
		return fmt.Errorf("invalid flags: -join requires -worker")
	}
	if !worker && advertiseURL != "" {
		return fmt.Errorf("invalid flags: -advertise requires -worker")
	}
	if joinURL != "" {
		if err := ValidateServerURL("join", joinURL); err != nil {
			return err
		}
	}
	if advertiseURL != "" {
		if err := ValidateServerURL("advertise", advertiseURL); err != nil {
			return err
		}
	}
	return nil
}

// ValidateListenAddr checks a flag naming a listen address (sdvd
// -pprof): host:port as net.Listen accepts, with a non-empty port.
func ValidateListenAddr(name, addr string) error {
	if addr == "" {
		return FlagError(name, "\"\"", "a host:port listen address")
	}
	_, port, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("invalid -%s %q: %v", name, addr, err)
	}
	if port == "" {
		return FlagError(name, fmt.Sprintf("%q", addr), "a listen address with a port")
	}
	return nil
}

// Fatal prints "tool: err" to stderr and exits 1.
func Fatal(tool string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	os.Exit(1)
}
