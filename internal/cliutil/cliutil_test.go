package cliutil

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFlagError(t *testing.T) {
	err := FlagError("scale", -3, "> 0")
	if err == nil {
		t.Fatal("nil error")
	}
	for _, want := range []string{"-scale", "-3", "> 0"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("FlagError message %q missing %q", err, want)
		}
	}
}

func TestValidateRunFlags(t *testing.T) {
	cases := []struct {
		name               string
		scale, shards, par int
		wantErr            bool
		flagNamedInMessage string
	}{
		{"all valid", 10_000, 1, 0, false, ""},
		{"parallel explicit", 10_000, 8, 4, false, ""},
		{"zero scale", 0, 1, 0, true, "-scale"},
		{"negative scale", -5, 1, 0, true, "-scale"},
		{"zero shards", 10_000, 0, 0, true, "-shards"},
		{"negative shards", 10_000, -2, 0, true, "-shards"},
		{"negative parallel", 10_000, 1, -1, true, "-parallel"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateRunFlags(tc.scale, tc.shards, tc.par)
			if (err != nil) != tc.wantErr {
				t.Fatalf("ValidateRunFlags(%d, %d, %d) = %v, wantErr %v",
					tc.scale, tc.shards, tc.par, err, tc.wantErr)
			}
			if err != nil && !strings.Contains(err.Error(), tc.flagNamedInMessage) {
				t.Errorf("error %q does not name %s", err, tc.flagNamedInMessage)
			}
		})
	}
}

// TestValidateRunFlagsFirstViolation pins the reporting order: scale,
// then shards, then parallel — so a command line with several bad flags
// gets a stable first diagnostic.
func TestValidateRunFlagsFirstViolation(t *testing.T) {
	err := ValidateRunFlags(0, 0, -1)
	if err == nil || !strings.Contains(err.Error(), "-scale") {
		t.Errorf("want the -scale violation first, got %v", err)
	}
	err = ValidateRunFlags(10_000, 0, -1)
	if err == nil || !strings.Contains(err.Error(), "-shards") {
		t.Errorf("want the -shards violation next, got %v", err)
	}
}

func TestValidateGang(t *testing.T) {
	for _, gang := range []int{0, 1, 2, 6, 128} {
		if err := ValidateGang(gang); err != nil {
			t.Errorf("ValidateGang(%d) = %v, want nil", gang, err)
		}
	}
	for _, gang := range []int{-1, -128} {
		err := ValidateGang(gang)
		if err == nil {
			t.Errorf("ValidateGang(%d) accepted a negative cap", gang)
			continue
		}
		if !strings.Contains(err.Error(), "-gang") {
			t.Errorf("error %q does not name -gang", err)
		}
	}
}

func TestValidateSpecPath(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.yaml")
	if err := os.WriteFile(good, []byte("wspec: 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	empty := filepath.Join(dir, "empty.yaml")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}

	if err := ValidateSpecPath(good); err != nil {
		t.Errorf("valid file rejected: %v", err)
	}
	cases := []struct {
		name, path, want string
	}{
		{"empty flag", "", "-spec"},
		{"missing file", filepath.Join(dir, "nope.yaml"), "no such file"},
		{"directory", dir, "is a directory"},
		{"empty file", empty, "file is empty"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateSpecPath(tc.path)
			if err == nil {
				t.Fatalf("ValidateSpecPath(%q) accepted", tc.path)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
			if strings.Contains(err.Error(), "\n") {
				t.Errorf("multi-line error: %q", err)
			}
		})
	}
}

func TestSplitSpecPaths(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.yaml")
	b := filepath.Join(dir, "b.yaml")
	for _, p := range []string{a, b} {
		if err := os.WriteFile(p, []byte("wspec: 1\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := SplitSpecPaths(a + ", " + b + ",")
	if err != nil {
		t.Fatalf("SplitSpecPaths: %v", err)
	}
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Errorf("got %v, want [%s %s]", got, a, b)
	}
	if _, err := SplitSpecPaths(",,"); err == nil {
		t.Error("all-empty -spec list accepted")
	}
	if _, err := SplitSpecPaths(a + "," + filepath.Join(dir, "gone.yaml")); err == nil {
		t.Error("list with a missing file accepted")
	}
}

func TestValidateServerURL(t *testing.T) {
	cases := []struct {
		name, raw string
		wantErr   bool
		want      string // substring the error must carry
	}{
		{"plain http", "http://127.0.0.1:8077", false, ""},
		{"https with path", "https://sim.example/api", false, ""},
		{"empty", "", true, "-join"},
		{"no scheme", "127.0.0.1:8077", true, "http(s)"},
		{"wrong scheme", "ftp://host:21", true, "http(s)"},
		{"scheme only", "http://", true, "host"},
		{"query junk", "http://host:1?x=1", true, "query"},
		{"fragment junk", "http://host:1#frag", true, "query or fragment"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateServerURL("join", tc.raw)
			if (err != nil) != tc.wantErr {
				t.Fatalf("ValidateServerURL(join, %q) = %v, wantErr %v", tc.raw, err, tc.wantErr)
			}
			if err == nil {
				return
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
			if strings.Contains(err.Error(), "\n") {
				t.Errorf("multi-line error: %q", err)
			}
		})
	}
}

func TestValidateClusterFlags(t *testing.T) {
	cases := []struct {
		name                string
		coordinator, worker bool
		join, advertise     string
		wantErr             bool
		want                string
	}{
		{"no cluster role", false, false, "", "", false, ""},
		{"coordinator alone", true, false, "", "", false, ""},
		{"worker with join", false, true, "http://127.0.0.1:8077", "", false, ""},
		{"worker with advertise", false, true, "http://c:1", "http://10.0.0.2:8078", false, ""},
		{"both roles", true, true, "http://c:1", "", true, "mutually exclusive"},
		{"worker without join", false, true, "", "", true, "-join"},
		{"join without worker", false, false, "http://c:1", "", true, "-worker"},
		{"advertise without worker", false, false, "", "http://w:1", true, "-worker"},
		{"bad join url", false, true, "c:1", "", true, "-join"},
		{"bad advertise url", false, true, "http://c:1", "not a url", true, "-advertise"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateClusterFlags(tc.coordinator, tc.worker, tc.join, tc.advertise)
			if (err != nil) != tc.wantErr {
				t.Fatalf("ValidateClusterFlags(%v, %v, %q, %q) = %v, wantErr %v",
					tc.coordinator, tc.worker, tc.join, tc.advertise, err, tc.wantErr)
			}
			if err == nil {
				return
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
			if strings.Contains(err.Error(), "\n") {
				t.Errorf("multi-line error: %q", err)
			}
		})
	}
}

func TestValidateListenAddr(t *testing.T) {
	for _, good := range []string{"127.0.0.1:6060", ":6060", "[::1]:6060", "localhost:0"} {
		if err := ValidateListenAddr("pprof", good); err != nil {
			t.Errorf("ValidateListenAddr(pprof, %q) = %v, want nil", good, err)
		}
	}
	for _, bad := range []string{"", "127.0.0.1", "host:", "http://host:6060"} {
		err := ValidateListenAddr("pprof", bad)
		if err == nil {
			t.Errorf("ValidateListenAddr(pprof, %q) accepted", bad)
			continue
		}
		if !strings.Contains(err.Error(), "-pprof") {
			t.Errorf("error %q does not mention -pprof", err)
		}
		if strings.Contains(err.Error(), "\n") {
			t.Errorf("multi-line error: %q", err)
		}
	}
}
