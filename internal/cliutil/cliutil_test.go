package cliutil

import (
	"strings"
	"testing"
)

func TestFlagError(t *testing.T) {
	err := FlagError("scale", -3, "> 0")
	if err == nil {
		t.Fatal("nil error")
	}
	for _, want := range []string{"-scale", "-3", "> 0"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("FlagError message %q missing %q", err, want)
		}
	}
}

func TestValidateRunFlags(t *testing.T) {
	cases := []struct {
		name               string
		scale, shards, par int
		wantErr            bool
		flagNamedInMessage string
	}{
		{"all valid", 10_000, 1, 0, false, ""},
		{"parallel explicit", 10_000, 8, 4, false, ""},
		{"zero scale", 0, 1, 0, true, "-scale"},
		{"negative scale", -5, 1, 0, true, "-scale"},
		{"zero shards", 10_000, 0, 0, true, "-shards"},
		{"negative shards", 10_000, -2, 0, true, "-shards"},
		{"negative parallel", 10_000, 1, -1, true, "-parallel"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateRunFlags(tc.scale, tc.shards, tc.par)
			if (err != nil) != tc.wantErr {
				t.Fatalf("ValidateRunFlags(%d, %d, %d) = %v, wantErr %v",
					tc.scale, tc.shards, tc.par, err, tc.wantErr)
			}
			if err != nil && !strings.Contains(err.Error(), tc.flagNamedInMessage) {
				t.Errorf("error %q does not name %s", err, tc.flagNamedInMessage)
			}
		})
	}
}

// TestValidateRunFlagsFirstViolation pins the reporting order: scale,
// then shards, then parallel — so a command line with several bad flags
// gets a stable first diagnostic.
func TestValidateRunFlagsFirstViolation(t *testing.T) {
	err := ValidateRunFlags(0, 0, -1)
	if err == nil || !strings.Contains(err.Error(), "-scale") {
		t.Errorf("want the -scale violation first, got %v", err)
	}
	err = ValidateRunFlags(10_000, 0, -1)
	if err == nil || !strings.Contains(err.Error(), "-shards") {
		t.Errorf("want the -shards violation next, got %v", err)
	}
}

func TestValidateGang(t *testing.T) {
	for _, gang := range []int{0, 1, 2, 6, 128} {
		if err := ValidateGang(gang); err != nil {
			t.Errorf("ValidateGang(%d) = %v, want nil", gang, err)
		}
	}
	for _, gang := range []int{-1, -128} {
		err := ValidateGang(gang)
		if err == nil {
			t.Errorf("ValidateGang(%d) accepted a negative cap", gang)
			continue
		}
		if !strings.Contains(err.Error(), "-gang") {
			t.Errorf("error %q does not name -gang", err)
		}
	}
}
