package mem

import "fmt"

// CacheConfig describes one cache level.
type CacheConfig struct {
	SizeBytes int
	LineBytes int
	Assoc     int
	HitLat    int // cycles from access to data for a hit
}

// Validate checks geometric consistency.
func (c CacheConfig) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("mem: non-positive cache geometry %+v", c)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Assoc)
	if sets == 0 || sets&(sets-1) != 0 {
		return fmt.Errorf("mem: sets %d not a power of two (%+v)", sets, c)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("mem: line size %d not a power of two", c.LineBytes)
	}
	return nil
}

// Sets returns the number of sets.
func (c CacheConfig) Sets() int { return c.SizeBytes / (c.LineBytes * c.Assoc) }

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // last-access stamp
}

// Cache is one set-associative, write-back, LRU cache level. The tag
// array is one contiguous slice (set i occupies lines[i*assoc:(i+1)*assoc])
// so constructing a cache is two allocations, not one per set — the
// experiment harness builds hundreds of simulators per sweep.
type Cache struct {
	cfg      CacheConfig
	lines    []line
	nsets    uint64
	assoc    int
	lineBits uint
	stamp    uint64

	// Counters owned by the cache; the hierarchy mirrors them into
	// stats.Sim fields per level.
	Hits       uint64
	Misses     uint64
	Writebacks uint64
}

// NewCache builds a cache level; it panics on invalid geometry (configs are
// static and validated in internal/config tests).
func NewCache(cfg CacheConfig) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	bits := uint(0)
	for l := cfg.LineBytes; l > 1; l >>= 1 {
		bits++
	}
	return &Cache{
		cfg:      cfg,
		lines:    make([]line, cfg.Sets()*cfg.Assoc),
		nsets:    uint64(cfg.Sets()),
		assoc:    cfg.Assoc,
		lineBits: bits,
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.lineBits << c.lineBits }

// Lookup probes for addr without modifying state.
func (c *Cache) Lookup(addr uint64) bool {
	set, tag := c.locate(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Access touches addr; write marks the line dirty. It returns hit and, for
// misses that evict a dirty victim, writeback=true.
func (c *Cache) Access(addr uint64, write bool) (hit, writeback bool) {
	c.stamp++
	set, tag := c.locate(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.stamp
			if write {
				set[i].dirty = true
			}
			c.Hits++
			return true, false
		}
	}
	c.Misses++
	// Fill: choose invalid way or LRU victim.
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	writeback = set[victim].valid && set[victim].dirty
	if writeback {
		c.Writebacks++
	}
	set[victim] = line{tag: tag, valid: true, dirty: write, lru: c.stamp}
	return false, writeback
}

// InvalidateAll clears the cache (context-switch style reset; used by
// tests).
func (c *Cache) InvalidateAll() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
}

func (c *Cache) locate(addr uint64) ([]line, uint64) {
	lineAddr := addr >> c.lineBits
	idx := lineAddr % c.nsets
	return c.lines[idx*uint64(c.assoc) : (idx+1)*uint64(c.assoc)], lineAddr / c.nsets
}
