// Package mem models the memory hierarchy of Table 1: split L1 caches, a
// unified L2, MSHR-limited outstanding misses and the scalar/wide data
// ports that the paper's evaluation sweeps over.
//
// The timing simulator is trace-driven — data values come from the
// functional emulator — so caches track only tags and timing. Cache tag
// arrays are single contiguous allocations (the experiment harness builds
// hundreds of simulators per sweep), and Ports arbitrates the L1D ports
// per cycle: with a wide bus one access transfers a whole line and may
// serve several pending loads (§3.7); with scalar buses an access moves a
// single 64-bit word.
package mem
