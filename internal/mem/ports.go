package mem

import "specvec/internal/stats"

// Ports arbitrates the L1 data cache ports. Each port accepts one access
// per cycle (the cache is pipelined). With a wide bus, one access transfers
// a whole cache line and may serve several pending loads (§3.7); with
// scalar buses an access transfers a single 64-bit word.
type Ports struct {
	n     int
	wide  bool
	sim   *stats.Sim
	cycle uint64
	used  int
}

// NewPorts returns a port set of n ports; wide selects line-wide transfers.
func NewPorts(n int, wide bool, sim *stats.Sim) *Ports {
	return &Ports{n: n, wide: wide, sim: sim}
}

// Count returns the number of ports.
func (p *Ports) Count() int { return p.n }

// Wide reports whether transfers are line-wide.
func (p *Ports) Wide() bool { return p.wide }

// BeginCycle resets per-cycle arbitration state.
func (p *Ports) BeginCycle(cycle uint64) {
	p.cycle = cycle
	p.used = 0
}

// TryAcquire claims a port for one access in the current cycle.
func (p *Ports) TryAcquire() bool {
	if p.used >= p.n {
		return false
	}
	p.used++
	p.sim.PortBusyCycles++
	p.sim.MemAccesses++
	return true
}

// FreeThisCycle returns how many ports remain available this cycle.
func (p *Ports) FreeThisCycle() int { return p.n - p.used }
