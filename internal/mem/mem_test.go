package mem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"specvec/internal/stats"
)

func TestCacheConfigValidate(t *testing.T) {
	good := CacheConfig{SizeBytes: 64 << 10, LineBytes: 32, Assoc: 2, HitLat: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []CacheConfig{
		{SizeBytes: 0, LineBytes: 32, Assoc: 2},
		{SizeBytes: 64 << 10, LineBytes: 33, Assoc: 2},
		{SizeBytes: 48 << 10, LineBytes: 32, Assoc: 2}, // 768 sets, not power of 2
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("invalid config accepted: %+v", c)
		}
	}
}

func TestCacheHitAfterMiss(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 1 << 10, LineBytes: 32, Assoc: 2, HitLat: 1})
	if hit, _ := c.Access(0x1000, false); hit {
		t.Error("cold access hit")
	}
	if hit, _ := c.Access(0x1008, false); !hit {
		t.Error("same-line access missed")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Errorf("hits/misses = %d/%d", c.Hits, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2 ways, 4 sets of 32B lines -> same set every 128 bytes.
	c := NewCache(CacheConfig{SizeBytes: 256, LineBytes: 32, Assoc: 2, HitLat: 1})
	a, b, d := uint64(0), uint64(128), uint64(256)
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a more recent than b
	c.Access(d, false) // evicts b (LRU)
	if !c.Lookup(a) {
		t.Error("a evicted, should have stayed")
	}
	if c.Lookup(b) {
		t.Error("b not evicted")
	}
	if !c.Lookup(d) {
		t.Error("d not resident")
	}
}

func TestCacheWritebackOnDirtyEviction(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 64, LineBytes: 32, Assoc: 1, HitLat: 1})
	c.Access(0, true)   // dirty
	c.Access(64, false) // evicts set 0? 64/32=line 2, set 0 with 2 sets
	if c.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Writebacks)
	}
	c.Access(128, false) // evicts clean line
	if c.Writebacks != 1 {
		t.Errorf("clean eviction caused writeback")
	}
}

// TestCacheVsOracle drives random accesses into the cache and an
// infinite-capacity oracle; hit implies the oracle has seen the line.
func TestCacheVsOracle(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 2 << 10, LineBytes: 32, Assoc: 4, HitLat: 1})
	seen := map[uint64]bool{}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 10000; i++ {
		addr := uint64(rng.Intn(1 << 14))
		lineAddr := c.LineAddr(addr)
		hit, _ := c.Access(addr, rng.Intn(2) == 0)
		if hit && !seen[lineAddr] {
			t.Fatalf("hit on never-seen line %#x", lineAddr)
		}
		seen[lineAddr] = true
	}
	if c.Hits == 0 || c.Misses == 0 {
		t.Error("degenerate access pattern")
	}
}

func TestLineAddrProperty(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 1 << 10, LineBytes: 32, Assoc: 2, HitLat: 1})
	f := func(addr uint64) bool {
		la := c.LineAddr(addr)
		return la%32 == 0 && la <= addr && addr-la < 32
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	sim := stats.New()
	h := NewHierarchy(DefaultHierarchy(), sim)
	// Cold: L1 miss, L2 miss -> memory latency.
	if lat := h.AccessData(0x1000, false, 0); lat != 18 {
		t.Errorf("cold access latency = %d, want 18", lat)
	}
	// Warm L1.
	if lat := h.AccessData(0x1000, false, 1); lat != 1 {
		t.Errorf("L1 hit latency = %d, want 1", lat)
	}
	if sim.L1DHits != 1 || sim.L1DMisses != 1 || sim.L2Misses != 1 {
		t.Errorf("counters: %+v", sim)
	}
}

func TestHierarchyL2Hit(t *testing.T) {
	sim := stats.New()
	cfg := DefaultHierarchy()
	// Tiny L1 so it conflicts quickly: 2 lines direct-mapped.
	cfg.DCache = CacheConfig{SizeBytes: 64, LineBytes: 32, Assoc: 1, HitLat: 1}
	h := NewHierarchy(cfg, sim)
	h.AccessData(0, false, 0)        // L1+L2 miss
	h.AccessData(64, false, 0)       // conflicts with 0 in L1, L2 miss
	lat := h.AccessData(0, false, 0) // L1 miss, L2 hit
	if lat != cfg.L2Lat {
		t.Errorf("L2 hit latency = %d, want %d", lat, cfg.L2Lat)
	}
}

func TestMSHRLimit(t *testing.T) {
	sim := stats.New()
	cfg := DefaultHierarchy()
	cfg.MSHRs = 2
	h := NewHierarchy(cfg, sim)
	if !h.CanAcceptData(0) {
		t.Fatal("empty MSHRs rejected access")
	}
	h.AccessData(0x10000, false, 0)
	h.AccessData(0x20000, false, 0)
	if h.CanAcceptData(0) {
		t.Error("MSHR limit not enforced")
	}
	// After both misses complete the hierarchy accepts again.
	if !h.CanAcceptData(100) {
		t.Error("MSHRs never freed")
	}
	if h.OutstandingMisses(100) != 0 {
		t.Error("outstanding misses not retired")
	}
}

func TestInstCacheSpatialLocality(t *testing.T) {
	sim := stats.New()
	h := NewHierarchy(DefaultHierarchy(), sim)
	h.AccessInst(0x400000)
	for off := uint64(8); off < 64; off += 8 {
		if lat := h.AccessInst(0x400000 + off); lat != 1 {
			t.Errorf("same-line inst fetch at +%d latency %d", off, lat)
		}
	}
	if sim.L1IMisses != 1 {
		t.Errorf("I-misses = %d, want 1", sim.L1IMisses)
	}
}

func TestPortsArbitration(t *testing.T) {
	sim := stats.New()
	p := NewPorts(2, true, sim)
	p.BeginCycle(0)
	if !p.TryAcquire() || !p.TryAcquire() {
		t.Fatal("ports not granted")
	}
	if p.TryAcquire() {
		t.Error("third acquire on 2 ports succeeded")
	}
	if p.FreeThisCycle() != 0 {
		t.Error("FreeThisCycle != 0")
	}
	p.BeginCycle(1)
	if !p.TryAcquire() {
		t.Error("port not freed next cycle")
	}
	if sim.MemAccesses != 3 || sim.PortBusyCycles != 3 {
		t.Errorf("accesses=%d busy=%d", sim.MemAccesses, sim.PortBusyCycles)
	}
}

func TestInvalidateAll(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 256, LineBytes: 32, Assoc: 2, HitLat: 1})
	c.Access(0, false)
	c.InvalidateAll()
	if c.Lookup(0) {
		t.Error("line survived InvalidateAll")
	}
}
