package mem

import "specvec/internal/stats"

// HierarchyConfig holds the full memory-system parameters (Table 1).
type HierarchyConfig struct {
	ICache CacheConfig
	DCache CacheConfig
	L2     CacheConfig
	L2Lat  int // total latency of an L1 miss that hits in L2
	MemLat int // total latency of an access that misses in L2
	MSHRs  int // max outstanding L1D misses
}

// DefaultHierarchy returns the Table 1 memory system: 64KB 2-way L1s (64B
// I-lines, 32B D-lines, 1-cycle hit, 6-cycle miss), 256KB 4-way L2 (6-cycle
// hit, 18-cycle miss), up to 16 outstanding misses.
func DefaultHierarchy() HierarchyConfig {
	return HierarchyConfig{
		ICache: CacheConfig{SizeBytes: 64 << 10, LineBytes: 64, Assoc: 2, HitLat: 1},
		DCache: CacheConfig{SizeBytes: 64 << 10, LineBytes: 32, Assoc: 2, HitLat: 1},
		L2:     CacheConfig{SizeBytes: 256 << 10, LineBytes: 32, Assoc: 4, HitLat: 6},
		L2Lat:  6,
		MemLat: 18,
		MSHRs:  16,
	}
}

// Hierarchy glues the cache levels together and applies the MSHR limit.
type Hierarchy struct {
	cfg HierarchyConfig
	l1i *Cache
	l1d *Cache
	l2  *Cache
	sim *stats.Sim

	// Outstanding L1D miss completion cycles (MSHR occupancy model).
	outstanding []uint64
}

// NewHierarchy builds the hierarchy and wires counters into sim.
func NewHierarchy(cfg HierarchyConfig, sim *stats.Sim) *Hierarchy {
	return &Hierarchy{
		cfg: cfg,
		l1i: NewCache(cfg.ICache),
		l1d: NewCache(cfg.DCache),
		l2:  NewCache(cfg.L2),
		sim: sim,
	}
}

// Config returns the hierarchy parameters.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// DLineBytes returns the L1D line size (the wide-bus transfer unit).
func (h *Hierarchy) DLineBytes() int { return h.cfg.DCache.LineBytes }

// DLineAddr returns the L1D line-aligned address containing addr.
func (h *Hierarchy) DLineAddr(addr uint64) uint64 { return h.l1d.LineAddr(addr) }

// AccessInst fetches the I-cache line containing byte address addr and
// returns the fetch latency.
func (h *Hierarchy) AccessInst(addr uint64) int {
	hit, _ := h.l1i.Access(addr, false)
	if hit {
		h.sim.L1IHits++
		return h.cfg.ICache.HitLat
	}
	h.sim.L1IMisses++
	return h.levelTwo(addr, false)
}

// CanAcceptData reports whether a new data access may start at cycle given
// the MSHR limit (a miss needs a free MSHR; we conservatively require one
// free slot for any access since hit/miss is unknown until the tag check).
func (h *Hierarchy) CanAcceptData(cycle uint64) bool {
	h.retire(cycle)
	return len(h.outstanding) < h.cfg.MSHRs
}

// AccessData performs a data access at cycle and returns its total latency.
// write=true marks the line dirty and counts stores.
func (h *Hierarchy) AccessData(addr uint64, write bool, cycle uint64) int {
	hit, wb := h.l1d.Access(addr, write)
	if wb {
		h.sim.Writebacks++
	}
	if hit {
		h.sim.L1DHits++
		return h.cfg.DCache.HitLat
	}
	h.sim.L1DMisses++
	lat := h.levelTwo(addr, write)
	h.outstanding = append(h.outstanding, cycle+uint64(lat))
	return lat
}

func (h *Hierarchy) levelTwo(addr uint64, write bool) int {
	hit, wb := h.l2.Access(addr, write)
	if wb {
		h.sim.Writebacks++
	}
	if hit {
		h.sim.L2Hits++
		return h.cfg.L2Lat
	}
	h.sim.L2Misses++
	return h.cfg.MemLat
}

func (h *Hierarchy) retire(cycle uint64) {
	live := h.outstanding[:0]
	for _, done := range h.outstanding {
		if done > cycle {
			live = append(live, done)
		}
	}
	h.outstanding = live
}

// OutstandingMisses returns current MSHR occupancy (tests).
func (h *Hierarchy) OutstandingMisses(cycle uint64) int {
	h.retire(cycle)
	return len(h.outstanding)
}
