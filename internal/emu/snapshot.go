package emu

import (
	"fmt"

	"specvec/internal/isa"
)

// PageSize is the granularity of memory snapshots: PageImage.Data is
// always exactly one page.
const PageSize = pageSize

// PageImage is the content of one memory page at snapshot time.
type PageImage struct {
	Base uint64 // page-aligned byte address
	Data []byte // PageSize bytes
}

// Snapshot is a compact architectural checkpoint of a Machine: the
// committed register file, the program counter, the dynamic instruction
// count, and the memory pages written since dirty tracking was enabled
// (every mapped page when it never was, which still restores exactly but
// is larger). It deliberately carries no speculative or
// microarchitectural state — a restored machine resumes from the
// architectural boundary with empty pipelines, cold caches and no
// wrong-path history, exactly the state an interrupt would expose (see
// ARCHITECTURE.md, "Speculative vs. architectural state").
type Snapshot struct {
	Seq   uint64 // instructions executed before the boundary
	PC    uint64 // next instruction index
	Regs  [isa.NumLogicalRegs]uint64
	Pages []PageImage // dirty pages, ascending by Base
}

// TrackDirtyPages starts recording which memory pages the program
// writes, keeping later Snapshot calls proportional to the written
// footprint rather than the whole image. Call it on a fresh machine,
// before the first Step.
func (m *Machine) TrackDirtyPages() { m.mem.TrackDirty(true) }

// Snapshot captures the machine's architectural state. Each snapshot is
// self-contained: restoring it needs the program plus this one snapshot,
// not any earlier ones (the dirty set only grows, so every snapshot
// carries all pages written since load).
func (m *Machine) Snapshot() Snapshot {
	return Snapshot{Seq: m.seq, PC: m.pc, Regs: m.regs, Pages: m.mem.SnapshotPages()}
}

// Restore builds a machine positioned exactly as a straight-line
// execution of prog after s.Seq instructions: a fresh load of prog with
// the snapshot's registers and pages applied. Stepping it produces the
// same dynamic records — sequence numbers included — as the tail of an
// uninterrupted run. prog must be the program the snapshot was taken
// from; a snapshot of a halted machine cannot exist (recording stops at
// the halt), so the restored machine is always runnable.
func Restore(prog *isa.Program, s *Snapshot) (*Machine, error) {
	m, err := New(prog)
	if err != nil {
		return nil, err
	}
	for _, pg := range s.Pages {
		if len(pg.Data) != PageSize || pg.Base%PageSize != 0 {
			return nil, fmt.Errorf("emu: malformed snapshot page at %#x (%d bytes)", pg.Base, len(pg.Data))
		}
		m.mem.WriteBytes(pg.Base, pg.Data)
	}
	m.regs = s.Regs
	m.pc = s.PC
	m.seq = s.Seq
	return m, nil
}
