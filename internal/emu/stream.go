package emu

import "fmt"

// Stream adapts a Machine into the replayable dynamic-instruction source
// the timing pipeline consumes. The pipeline fetches in commit order; on a
// squash (store/vector-register conflict, §3.6 of the paper) it rewinds to
// an earlier sequence number and replays. A bounded window of recent
// records is retained for that purpose — it must exceed the maximum number
// of in-flight instructions (ROB + fetch buffer), and 8192 is far above any
// configuration in Table 1.
type Stream struct {
	m      *Machine
	window []DynInst // ring buffer indexed by Seq % len
	filled uint64    // total records ever produced
	pos    uint64    // next Seq to hand out
	done   bool      // machine halted; no records beyond the last
	last   uint64    // Seq of the halt record once done
}

// DefaultWindow is the default replay window size.
const DefaultWindow = 8192

// NewStream wraps m with a replay window of n records (DefaultWindow if
// n <= 0).
func NewStream(m *Machine, n int) *Stream {
	if n <= 0 {
		n = DefaultWindow
	}
	return &Stream{m: m, window: make([]DynInst, n)}
}

// Next returns the dynamic instruction with the current position's sequence
// number, producing it from the machine if it has not been generated yet.
// ok is false once the stream is positioned past the halt instruction.
func (s *Stream) Next() (DynInst, bool) {
	d, ok := s.NextRef()
	if !ok {
		return DynInst{}, false
	}
	return *d, true
}

// NextRef is Next without the copy: the returned pointer aims into the
// replay window and stays valid until the window wraps past its sequence
// number (at least the in-flight capacity of any caller). The timing
// pipeline's fetch stage uses it on the per-instruction hot path.
func (s *Stream) NextRef() (*DynInst, bool) {
	if s.done && s.pos > s.last {
		return nil, false
	}
	for s.pos >= s.filled {
		d := s.m.Step()
		s.window[d.Seq%uint64(len(s.window))] = d
		s.filled++
		if d.Halt {
			s.done = true
			s.last = d.Seq
			break
		}
	}
	if s.pos >= s.filled { // halted before reaching pos
		return nil, false
	}
	d := &s.window[s.pos%uint64(len(s.window))]
	s.pos++
	return d, true
}

// Pos returns the sequence number of the next record Next will return.
func (s *Stream) Pos() uint64 { return s.pos }

// Rewind repositions the stream so that Next returns the record with
// sequence number seq again. It panics if seq has fallen out of the replay
// window — that would be a pipeline bug (squashing something older than the
// machine's in-flight capacity).
func (s *Stream) Rewind(seq uint64) {
	if seq > s.pos {
		panic(fmt.Sprintf("emu: rewind forward from %d to %d", s.pos, seq))
	}
	if s.filled > uint64(len(s.window)) && seq < s.filled-uint64(len(s.window)) {
		panic(fmt.Sprintf("emu: rewind to %d outside window (oldest %d)",
			seq, s.filled-uint64(len(s.window))))
	}
	s.pos = seq
}

// Peek returns a previously produced record without repositioning.
func (s *Stream) Peek(seq uint64) (DynInst, bool) {
	if seq >= s.filled {
		return DynInst{}, false
	}
	if s.filled > uint64(len(s.window)) && seq < s.filled-uint64(len(s.window)) {
		return DynInst{}, false
	}
	return s.window[seq%uint64(len(s.window))], true
}
