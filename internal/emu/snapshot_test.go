package emu

import (
	"testing"

	"specvec/internal/isa"
	"specvec/internal/workload"
)

func snapshotMachine(t *testing.T, bench string, scale int) (*isa.Program, *Machine) {
	t.Helper()
	b, err := workload.Get(bench)
	if err != nil {
		t.Fatal(err)
	}
	prog := b.Build(scale, 1)
	m, err := New(prog)
	if err != nil {
		t.Fatal(err)
	}
	return prog, m
}

// TestSnapshotRestoreDeterminism runs a machine to several boundaries,
// snapshots, keeps running the original, and demands that a machine
// restored from each snapshot reproduces the identical record stream —
// sequence numbers included — and the identical final register state.
func TestSnapshotRestoreDeterminism(t *testing.T) {
	for _, bench := range []string{"compress", "swim"} {
		prog, m := snapshotMachine(t, bench, 4000)
		m.TrackDirtyPages()

		const boundary, tail = 2500, 1500
		for i := 0; i < boundary; i++ {
			m.Step()
		}
		snap := m.Snapshot()
		if snap.Seq != boundary {
			t.Fatalf("%s: snapshot at seq %d, want %d", bench, snap.Seq, boundary)
		}

		r, err := Restore(prog, &snap)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < tail; i++ {
			want := m.Step()
			got := r.Step()
			if got != want {
				t.Fatalf("%s: step %d after restore differs:\nstraight: %+v\nrestored: %+v", bench, i, want, got)
			}
		}
		for i := 0; i < isa.NumLogicalRegs; i++ {
			reg := isa.Reg(i)
			if m.Reg(reg) != r.Reg(reg) {
				t.Errorf("%s: register %d differs after tail: %#x vs %#x", bench, i, m.Reg(reg), r.Reg(reg))
			}
		}
	}
}

// TestSnapshotDirtyPagesCompact checks that dirty tracking captures a
// strict subset of the mapped pages (the program image does not count as
// dirty) while still restoring exactly.
func TestSnapshotDirtyPagesCompact(t *testing.T) {
	prog, m := snapshotMachine(t, "gcc", 4000)
	m.TrackDirtyPages()
	for i := 0; i < 2000; i++ {
		m.Step()
	}
	snap := m.Snapshot()
	if len(snap.Pages) >= m.Mem().PageCount() {
		t.Errorf("dirty snapshot has %d pages, mapped %d; tracking saved nothing",
			len(snap.Pages), m.Mem().PageCount())
	}

	// An untracked machine snapshots every mapped page; both restore to
	// the same observable state.
	_, full := snapshotMachine(t, "gcc", 4000)
	for i := 0; i < 2000; i++ {
		full.Step()
	}
	fullSnap := full.Snapshot()
	if len(fullSnap.Pages) != full.Mem().PageCount() {
		t.Fatalf("untracked snapshot has %d pages, mapped %d", len(fullSnap.Pages), full.Mem().PageCount())
	}
	a, err := Restore(prog, &snap)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Restore(prog, &fullSnap)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if x, y := a.Step(), b.Step(); x != y {
			t.Fatalf("step %d: dirty-page restore diverges from full restore:\n%+v\n%+v", i, x, y)
		}
	}
}

// TestRestoreRejectsMalformedPage covers the snapshot-shape guard.
func TestRestoreRejectsMalformedPage(t *testing.T) {
	prog, m := snapshotMachine(t, "compress", 2000)
	snap := m.Snapshot()
	snap.Pages = append(snap.Pages, PageImage{Base: 1, Data: make([]byte, 3)})
	if _, err := Restore(prog, &snap); err == nil {
		t.Error("restore accepted a malformed page")
	}
}
