// Package emu is the functional emulator for the specvec ISA.
//
// It plays two roles, mirroring how execute-driven simulators such as
// SimpleScalar are structured:
//
//   - It is the architectural oracle: Step executes one instruction with
//     exact semantics, so any timing model must commit precisely the stream
//     that the emulator produces.
//   - It generates the dynamic instruction records (DynInst) that the
//     cycle-level pipeline consumes: effective addresses, branch outcomes
//     and results, which the timing model needs for scheduling, stride
//     detection and validation checks.
//
// Stream wraps a Machine with a bounded replay window so the pipeline can
// rewind and re-fetch after a squash (§3.6 store-conflict recovery);
// NextRef hands out records by pointer into that window, keeping the fetch
// hot path copy- and allocation-free.
//
// Snapshot and Restore checkpoint a Machine's architectural state
// (registers, PC, instruction count, dirty memory pages): a restored
// machine reproduces the straight-line record stream bit-for-bit from
// the boundary, which internal/trace embeds in recordings to
// fast-forward replays.
package emu
