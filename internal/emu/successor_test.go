package emu

import (
	"testing"

	"specvec/internal/isa"
)

// TestSuccessorPCMatchesStep pins SuccessorPC to Step for every opcode,
// both branch outcomes, register-indirect jumps and running off the end
// of the text — recorded traces re-derive NextPC with SuccessorPC, so
// the two must never drift.
func TestSuccessorPCMatchesStep(t *testing.T) {
	for op := 0; op < isa.NumOps; op++ {
		// Two variants per opcode flip the branch outcome: with r1=1,
		// r2=1 equal-style branches take and less-than-style don't; with
		// r1=0, r2=1 it is the reverse. Non-branches ignore the values.
		for variant, vals := range [][2]uint64{{1, 1}, {0, 1}} {
			in := isa.Inst{
				Op:  isa.Op(op),
				Rd:  isa.IntReg(3),
				Rs1: isa.IntReg(1),
				Rs2: isa.IntReg(2),
				Imm: 1, // a valid control target in a 2-instruction program
			}
			prog := &isa.Program{
				Name:  "successor",
				Insts: []isa.Inst{in, {Op: isa.OpHalt}},
			}
			m, err := New(prog)
			if err != nil {
				t.Fatalf("op %v: %v", in.Op, err)
			}
			m.SetReg(isa.IntReg(1), vals[0])
			m.SetReg(isa.IntReg(2), vals[1])
			d := m.Step()
			if got := SuccessorPC(d.Inst, d.PC, d.Src1Val, d.Taken); got != d.NextPC {
				t.Errorf("op %v variant %d: SuccessorPC = %d, Step.NextPC = %d",
					in.Op, variant, got, d.NextPC)
			}
		}
	}

	// Register-indirect jump to an arbitrary (off-text) target, and the
	// off-the-end halt the machine synthesizes there.
	prog := &isa.Program{Name: "jr", Insts: []isa.Inst{
		{Op: isa.OpLi, Rd: isa.IntReg(1), Imm: 100},
		{Op: isa.OpJr, Rs1: isa.IntReg(1), Imm: 7},
	}}
	m, err := New(prog)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		d := m.Step()
		if got := SuccessorPC(d.Inst, d.PC, d.Src1Val, d.Taken); got != d.NextPC {
			t.Errorf("jr step %d (%v at pc %d): SuccessorPC = %d, Step.NextPC = %d",
				i, d.Inst.Op, d.PC, got, d.NextPC)
		}
	}
	if !m.Halted() {
		t.Error("off-text execution did not halt")
	}
}
