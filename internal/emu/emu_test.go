package emu

import (
	"testing"
	"testing/quick"

	"specvec/internal/isa"
)

func r(i int) isa.Reg { return isa.IntReg(i) }
func f(i int) isa.Reg { return isa.FPReg(i) }

func runProg(t *testing.T, build func(b *isa.Builder)) *Machine {
	t.Helper()
	b := isa.NewBuilder("t")
	build(b)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestArithmeticLoop(t *testing.T) {
	m := runProg(t, func(b *isa.Builder) {
		b.Li(r(1), 0)  // sum
		b.Li(r(2), 1)  // i
		b.Li(r(3), 11) // bound
		b.Label("loop")
		b.Add(r(1), r(1), r(2))
		b.Addi(r(2), r(2), 1)
		b.Blt(r(2), r(3), "loop")
		b.Halt()
	})
	if got := m.IntReg(1); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestZeroRegister(t *testing.T) {
	m := runProg(t, func(b *isa.Builder) {
		b.Li(r(0), 42) // must be discarded
		b.Add(r(1), r(0), r(0))
		b.Halt()
	})
	if got := m.IntReg(0); got != 0 {
		t.Errorf("r0 = %d, want 0", got)
	}
	if got := m.IntReg(1); got != 0 {
		t.Errorf("r1 = %d, want 0", got)
	}
}

func TestLoadStore(t *testing.T) {
	m := runProg(t, func(b *isa.Builder) {
		b.DataWords("arr", []uint64{10, 20, 30, 40})
		b.LoadAddr(r(1), "arr")
		b.Ld(r(2), r(1), 8)     // 20
		b.Ld(r(3), r(1), 24)    // 40
		b.Add(r(4), r(2), r(3)) // 60
		b.St(r(4), r(1), 0)
		b.Ld(r(5), r(1), 0)
		b.Halt()
	})
	if got := m.IntReg(5); got != 60 {
		t.Errorf("r5 = %d, want 60", got)
	}
}

func TestFPPipeline(t *testing.T) {
	m := runProg(t, func(b *isa.Builder) {
		b.DataFloats("v", []float64{1.5, 2.5})
		b.LoadAddr(r(1), "v")
		b.Ldf(f(1), r(1), 0)
		b.Ldf(f(2), r(1), 8)
		b.Fadd(f(3), f(1), f(2))
		b.Fmul(f(4), f(3), f(3))
		b.Fsub(f(5), f(4), f(1))
		b.Fdiv(f(6), f(5), f(2))
		b.Halt()
	})
	want := (4.0*4.0 - 1.5) / 2.5
	if got := m.FPReg(6); got != want {
		t.Errorf("f6 = %v, want %v", got, want)
	}
}

func TestBranchVariants(t *testing.T) {
	cases := []struct {
		name string
		emit func(b *isa.Builder)
		want int64
	}{
		{"beq-taken", func(b *isa.Builder) { b.Beq(r(1), r(1), "yes") }, 1},
		{"bne-nottaken", func(b *isa.Builder) { b.Bne(r(1), r(1), "yes") }, 0},
		{"blt-signed", func(b *isa.Builder) { b.Li(r(2), -5); b.Blt(r(2), r(1), "yes") }, 1},
		{"bltu-unsigned", func(b *isa.Builder) { b.Li(r(2), -5); b.Bltu(r(2), r(1), "yes") }, 0},
		{"bge", func(b *isa.Builder) { b.Bge(r(1), r(1), "yes") }, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := runProg(t, func(b *isa.Builder) {
				b.Li(r(1), 7)
				c.emit(b)
				b.Li(r(9), 0)
				b.Halt()
				b.Label("yes")
				b.Li(r(9), 1)
				b.Halt()
			})
			if got := m.IntReg(9); got != c.want {
				t.Errorf("r9 = %d, want %d", got, c.want)
			}
		})
	}
}

func TestJalJr(t *testing.T) {
	m := runProg(t, func(b *isa.Builder) {
		b.Li(r(5), 0)
		b.Jal(r(31), "fn")
		b.Addi(r(5), r(5), 100) // after return
		b.Halt()
		b.Label("fn")
		b.Addi(r(5), r(5), 1)
		b.Jr(r(31), 0)
	})
	if got := m.IntReg(5); got != 101 {
		t.Errorf("r5 = %d, want 101", got)
	}
}

func TestDivRemEdgeCases(t *testing.T) {
	m := runProg(t, func(b *isa.Builder) {
		b.Li(r(1), 7)
		b.Li(r(2), 0)
		b.Div(r(3), r(1), r(2)) // div by zero -> -1
		b.Rem(r(4), r(1), r(2)) // rem by zero -> rs1
		b.Li(r(5), -9223372036854775808)
		b.Li(r(6), -1)
		b.Div(r(7), r(5), r(6)) // overflow wraps
		b.Rem(r(8), r(5), r(6)) // 0
		b.Halt()
	})
	if got := m.IntReg(3); got != -1 {
		t.Errorf("div by zero = %d, want -1", got)
	}
	if got := m.IntReg(4); got != 7 {
		t.Errorf("rem by zero = %d, want 7", got)
	}
	if got := m.IntReg(7); got != -9223372036854775808 {
		t.Errorf("overflow div = %d", got)
	}
	if got := m.IntReg(8); got != 0 {
		t.Errorf("overflow rem = %d", got)
	}
}

func TestShiftSemantics(t *testing.T) {
	m := runProg(t, func(b *isa.Builder) {
		b.Li(r(1), -16)
		b.Srai(r(2), r(1), 2) // -4 arithmetic
		b.Srli(r(3), r(1), 60)
		b.Li(r(4), 1)
		b.Slli(r(5), r(4), 63)
		b.Halt()
	})
	if got := m.IntReg(2); got != -4 {
		t.Errorf("srai = %d, want -4", got)
	}
	if got := uint64(m.IntReg(3)); got != 0xf {
		t.Errorf("srli = %#x, want 0xf", got)
	}
	if got := uint64(m.IntReg(5)); got != 1<<63 {
		t.Errorf("slli = %#x", got)
	}
}

func TestRunLimit(t *testing.T) {
	b := isa.NewBuilder("spin")
	b.Label("loop")
	b.J("loop")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	n, err := m.Run(1000)
	if err != ErrLimit {
		t.Fatalf("err = %v, want ErrLimit", err)
	}
	if n != 1000 {
		t.Errorf("ran %d, want 1000", n)
	}
}

func TestDynInstRecords(t *testing.T) {
	b := isa.NewBuilder("t")
	b.DataWords("x", []uint64{99})
	b.LoadAddr(r(1), "x")
	b.Ld(r(2), r(1), 0)
	b.St(r(2), r(1), 8)
	b.Halt()
	p, _ := b.Build()
	m, _ := New(p)
	addr := p.DataSyms["x"]

	d := m.Step() // li
	if d.Seq != 0 || d.PC != 0 || d.NextPC != 1 {
		t.Errorf("li record = %+v", d)
	}
	d = m.Step() // ld
	if d.EffAddr != addr || d.Result != 99 {
		t.Errorf("ld record addr=%#x result=%d", d.EffAddr, d.Result)
	}
	d = m.Step() // st
	if d.EffAddr != addr+8 || d.StoreVal != 99 {
		t.Errorf("st record addr=%#x val=%d", d.EffAddr, d.StoreVal)
	}
	d = m.Step() // halt
	if !d.Halt || !m.Halted() {
		t.Error("halt not recorded")
	}
}

func TestMemorySparse(t *testing.T) {
	m := NewMemory()
	m.Write64(0x1000_0000, 1)
	m.Write64(0x7000_0000, 2)
	if m.PageCount() != 2 {
		t.Errorf("pages = %d, want 2", m.PageCount())
	}
	if m.Read64(0x5000_0000) != 0 {
		t.Error("unmapped read != 0")
	}
}

func TestMemoryStraddle(t *testing.T) {
	m := NewMemory()
	addr := uint64(pageSize - 3) // straddles the first page boundary
	m.Write64(addr, 0x1122334455667788)
	if got := m.Read64(addr); got != 0x1122334455667788 {
		t.Errorf("straddle read = %#x", got)
	}
	if m.PageCount() != 2 {
		t.Errorf("pages = %d, want 2", m.PageCount())
	}
}

func TestMemoryRoundTripProperty(t *testing.T) {
	mem := NewMemory()
	fn := func(addr uint32, v uint64) bool {
		a := uint64(addr)
		mem.Write64(a, v)
		return mem.Read64(a) == v
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestMemoryBytesRoundTrip(t *testing.T) {
	mem := NewMemory()
	data := []byte("the quick brown fox jumps over the lazy dog")
	mem.WriteBytes(uint64(pageSize)-10, data) // straddle
	got := mem.ReadBytes(uint64(pageSize)-10, len(data))
	if string(got) != string(data) {
		t.Errorf("round trip = %q", got)
	}
}

// TestALUPropertyVsGo cross-checks emulated arithmetic against native Go
// semantics on random operands.
func TestALUPropertyVsGo(t *testing.T) {
	type alu struct {
		op   isa.Op
		gold func(a, b int64) int64
	}
	ops := []alu{
		{isa.OpAdd, func(a, b int64) int64 { return a + b }},
		{isa.OpSub, func(a, b int64) int64 { return a - b }},
		{isa.OpMul, func(a, b int64) int64 { return a * b }},
		{isa.OpAnd, func(a, b int64) int64 { return a & b }},
		{isa.OpOr, func(a, b int64) int64 { return a | b }},
		{isa.OpXor, func(a, b int64) int64 { return a ^ b }},
		{isa.OpSlt, func(a, b int64) int64 {
			if a < b {
				return 1
			}
			return 0
		}},
	}
	for _, c := range ops {
		c := c
		fn := func(a, b int64) bool {
			bld := isa.NewBuilder("t")
			bld.Li(r(1), a)
			bld.Li(r(2), b)
			bld.Emit(isa.Inst{Op: c.op, Rd: r(3), Rs1: r(1), Rs2: r(2)})
			bld.Halt()
			p, _ := bld.Build()
			m, _ := New(p)
			if _, err := m.Run(10); err != nil {
				return false
			}
			return m.IntReg(3) == c.gold(a, b)
		}
		if err := quick.Check(fn, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s: %v", c.op, err)
		}
	}
}

func TestStreamSequential(t *testing.T) {
	b := isa.NewBuilder("t")
	for i := 0; i < 20; i++ {
		b.Addi(r(1), r(1), 1)
	}
	b.Halt()
	p, _ := b.Build()
	m, _ := New(p)
	s := NewStream(m, 64)
	for i := uint64(0); i <= 20; i++ {
		d, ok := s.Next()
		if !ok {
			t.Fatalf("stream ended early at %d", i)
		}
		if d.Seq != i {
			t.Fatalf("seq = %d, want %d", d.Seq, i)
		}
	}
	if _, ok := s.Next(); ok {
		t.Error("stream continued past halt")
	}
}

func TestStreamRewindReplay(t *testing.T) {
	b := isa.NewBuilder("t")
	for i := 0; i < 50; i++ {
		b.Addi(r(1), r(1), 1)
	}
	b.Halt()
	p, _ := b.Build()
	m, _ := New(p)
	s := NewStream(m, 64)
	var first []DynInst
	for i := 0; i < 30; i++ {
		d, _ := s.Next()
		first = append(first, d)
	}
	s.Rewind(10)
	for i := 10; i < 30; i++ {
		d, ok := s.Next()
		if !ok {
			t.Fatal("stream ended during replay")
		}
		if d != first[i] {
			t.Fatalf("replayed record %d differs: %+v vs %+v", i, d, first[i])
		}
	}
}

func TestStreamRewindOutOfWindowPanics(t *testing.T) {
	b := isa.NewBuilder("t")
	for i := 0; i < 100; i++ {
		b.Addi(r(1), r(1), 1)
	}
	b.Halt()
	p, _ := b.Build()
	m, _ := New(p)
	s := NewStream(m, 16)
	for i := 0; i < 60; i++ {
		s.Next()
	}
	defer func() {
		if recover() == nil {
			t.Error("rewind outside window did not panic")
		}
	}()
	s.Rewind(2)
}

func TestStreamPeek(t *testing.T) {
	b := isa.NewBuilder("t")
	b.Li(r(1), 5)
	b.Halt()
	p, _ := b.Build()
	m, _ := New(p)
	s := NewStream(m, 16)
	s.Next()
	d, ok := s.Peek(0)
	if !ok || d.Inst.Op != isa.OpLi {
		t.Errorf("peek(0) = %+v, %v", d, ok)
	}
	if _, ok := s.Peek(5); ok {
		t.Error("peek beyond produced records succeeded")
	}
}
