package emu

import (
	"fmt"

	"specvec/internal/isa"
)

// DynInst is one dynamic instance of a static instruction, as executed by
// the functional core.
type DynInst struct {
	Seq      uint64   // 0-based dynamic instruction number
	PC       uint64   // instruction index
	Inst     isa.Inst // the static instruction
	NextPC   uint64   // instruction index of the next dynamic instruction
	Taken    bool     // branch outcome (conditional branches only)
	EffAddr  uint64   // effective address (memory ops only)
	StoreVal uint64   // value stored (stores only)
	Result   uint64   // destination register value (raw bits)
	Src1Val  uint64   // value of Rs1 at execution (raw bits)
	Src2Val  uint64   // value of Rs2 at execution (raw bits)
	Halt     bool     // program terminated at this instruction
}

// ErrLimit is returned by Run when the instruction budget is exhausted
// before the program halts.
var ErrLimit = fmt.Errorf("emu: instruction limit reached")

// Machine holds architectural state: PC, 64 logical registers and memory.
type Machine struct {
	prog *isa.Program
	pc   uint64
	regs [isa.NumLogicalRegs]uint64
	mem  *Memory
	seq  uint64
	halt bool
}

// New loads prog into a fresh machine.
func New(prog *isa.Program) (*Machine, error) {
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("emu: invalid program %q: %w", prog.Name, err)
	}
	m := &Machine{prog: prog, pc: prog.Entry, mem: NewMemory()}
	for _, seg := range prog.Segments {
		m.mem.WriteBytes(seg.Addr, seg.Data)
	}
	// Conventional ABI: r30 is the stack pointer.
	m.regs[30] = isa.StackBase
	return m, nil
}

// Program returns the loaded program.
func (m *Machine) Program() *isa.Program { return m.prog }

// Mem exposes the machine's memory (examples and tests inspect results).
func (m *Machine) Mem() *Memory { return m.mem }

// PC returns the current instruction index.
func (m *Machine) PC() uint64 { return m.pc }

// Halted reports whether the program has executed a halt.
func (m *Machine) Halted() bool { return m.halt }

// InstCount returns the number of instructions executed so far.
func (m *Machine) InstCount() uint64 { return m.seq }

// Reg returns the raw bits of a logical register.
func (m *Machine) Reg(r isa.Reg) uint64 {
	if r.IsZero() {
		return 0
	}
	return m.regs[r]
}

// SetReg sets the raw bits of a logical register (tests and loaders).
func (m *Machine) SetReg(r isa.Reg, v uint64) {
	if !r.IsZero() {
		m.regs[r] = v
	}
}

// IntReg returns an integer register as a signed value.
func (m *Machine) IntReg(i int) int64 { return int64(m.Reg(isa.IntReg(i))) }

// FPReg returns a floating-point register as a double.
func (m *Machine) FPReg(i int) float64 { return isa.FloatFromBits(m.Reg(isa.FPReg(i))) }

// Step executes one instruction and returns its dynamic record.
// Executing on a halted machine returns further halt records.
func (m *Machine) Step() DynInst {
	in := m.prog.Inst(m.pc)
	d := DynInst{Seq: m.seq, PC: m.pc, Inst: in, NextPC: m.pc + 1}
	m.seq++

	s1 := m.Reg(in.Rs1)
	s2 := m.Reg(in.Rs2)
	d.Src1Val, d.Src2Val = s1, s2

	switch in.Op {
	case isa.OpNop:
	case isa.OpHalt:
		d.Halt = true
		d.NextPC = m.pc
		m.halt = true

	case isa.OpLd, isa.OpLdf:
		d.EffAddr = s1 + uint64(in.Imm)
		d.Result = m.mem.Read64(d.EffAddr)
		m.write(in.Rd, d.Result)
	case isa.OpSt, isa.OpStf:
		d.EffAddr = s1 + uint64(in.Imm)
		d.StoreVal = s2
		m.mem.Write64(d.EffAddr, s2)

	case isa.OpAdd:
		d.Result = s1 + s2
		m.write(in.Rd, d.Result)
	case isa.OpSub:
		d.Result = s1 - s2
		m.write(in.Rd, d.Result)
	case isa.OpMul:
		d.Result = uint64(int64(s1) * int64(s2))
		m.write(in.Rd, d.Result)
	case isa.OpDiv:
		d.Result = uint64(safeDiv(int64(s1), int64(s2)))
		m.write(in.Rd, d.Result)
	case isa.OpRem:
		d.Result = uint64(safeRem(int64(s1), int64(s2)))
		m.write(in.Rd, d.Result)
	case isa.OpAnd:
		d.Result = s1 & s2
		m.write(in.Rd, d.Result)
	case isa.OpOr:
		d.Result = s1 | s2
		m.write(in.Rd, d.Result)
	case isa.OpXor:
		d.Result = s1 ^ s2
		m.write(in.Rd, d.Result)
	case isa.OpSll:
		d.Result = s1 << (s2 & 63)
		m.write(in.Rd, d.Result)
	case isa.OpSrl:
		d.Result = s1 >> (s2 & 63)
		m.write(in.Rd, d.Result)
	case isa.OpSra:
		d.Result = uint64(int64(s1) >> (s2 & 63))
		m.write(in.Rd, d.Result)
	case isa.OpSlt:
		d.Result = boolWord(int64(s1) < int64(s2))
		m.write(in.Rd, d.Result)
	case isa.OpSltu:
		d.Result = boolWord(s1 < s2)
		m.write(in.Rd, d.Result)

	case isa.OpAddi:
		d.Result = s1 + uint64(in.Imm)
		m.write(in.Rd, d.Result)
	case isa.OpAndi:
		d.Result = s1 & uint64(in.Imm)
		m.write(in.Rd, d.Result)
	case isa.OpOri:
		d.Result = s1 | uint64(in.Imm)
		m.write(in.Rd, d.Result)
	case isa.OpXori:
		d.Result = s1 ^ uint64(in.Imm)
		m.write(in.Rd, d.Result)
	case isa.OpSlli:
		d.Result = s1 << (uint64(in.Imm) & 63)
		m.write(in.Rd, d.Result)
	case isa.OpSrli:
		d.Result = s1 >> (uint64(in.Imm) & 63)
		m.write(in.Rd, d.Result)
	case isa.OpSrai:
		d.Result = uint64(int64(s1) >> (uint64(in.Imm) & 63))
		m.write(in.Rd, d.Result)
	case isa.OpSlti:
		d.Result = boolWord(int64(s1) < in.Imm)
		m.write(in.Rd, d.Result)
	case isa.OpLi:
		d.Result = uint64(in.Imm)
		m.write(in.Rd, d.Result)

	case isa.OpFadd:
		d.Result = fop(s1, s2, func(a, b float64) float64 { return a + b })
		m.write(in.Rd, d.Result)
	case isa.OpFsub:
		d.Result = fop(s1, s2, func(a, b float64) float64 { return a - b })
		m.write(in.Rd, d.Result)
	case isa.OpFmul:
		d.Result = fop(s1, s2, func(a, b float64) float64 { return a * b })
		m.write(in.Rd, d.Result)
	case isa.OpFdiv:
		d.Result = fop(s1, s2, func(a, b float64) float64 { return a / b })
		m.write(in.Rd, d.Result)
	case isa.OpFneg:
		d.Result = isa.FloatBits(-isa.FloatFromBits(s1))
		m.write(in.Rd, d.Result)
	case isa.OpFabs:
		f := isa.FloatFromBits(s1)
		if f < 0 {
			f = -f
		}
		d.Result = isa.FloatBits(f)
		m.write(in.Rd, d.Result)
	case isa.OpFmov:
		d.Result = s1
		m.write(in.Rd, d.Result)
	case isa.OpFcvtIF:
		d.Result = isa.FloatBits(float64(int64(s1)))
		m.write(in.Rd, d.Result)
	case isa.OpFcvtFI:
		d.Result = uint64(int64(isa.FloatFromBits(s1)))
		m.write(in.Rd, d.Result)
	case isa.OpFlt:
		d.Result = boolWord(isa.FloatFromBits(s1) < isa.FloatFromBits(s2))
		m.write(in.Rd, d.Result)
	case isa.OpFle:
		d.Result = boolWord(isa.FloatFromBits(s1) <= isa.FloatFromBits(s2))
		m.write(in.Rd, d.Result)
	case isa.OpFeq:
		d.Result = boolWord(isa.FloatFromBits(s1) == isa.FloatFromBits(s2))
		m.write(in.Rd, d.Result)

	case isa.OpBeq:
		d.Taken = s1 == s2
	case isa.OpBne:
		d.Taken = s1 != s2
	case isa.OpBlt:
		d.Taken = int64(s1) < int64(s2)
	case isa.OpBge:
		d.Taken = int64(s1) >= int64(s2)
	case isa.OpBltu:
		d.Taken = s1 < s2
	case isa.OpBgeu:
		d.Taken = s1 >= s2

	case isa.OpJ:
		d.NextPC = uint64(in.Imm)
	case isa.OpJal:
		d.Result = m.pc + 1
		m.write(in.Rd, d.Result)
		d.NextPC = uint64(in.Imm)
	case isa.OpJr:
		d.NextPC = s1 + uint64(in.Imm)

	default:
		// Unknown opcodes halt: the assembler/builder cannot produce them.
		d.Halt = true
		m.halt = true
	}

	if in.IsBranch() && d.Taken {
		d.NextPC = uint64(in.Imm)
	}
	m.pc = d.NextPC
	return d
}

// SuccessorPC returns the PC following one dynamic execution of in at pc,
// given the instruction's first source value and (for conditional
// branches) its outcome — the same rules Step applies: a halt re-executes
// in place, direct jumps use the immediate, register-indirect jumps use
// rs1+imm, taken branches use the immediate, and everything else (unknown
// opcodes included) falls through. It exists so that recorded traces
// (internal/trace) can re-derive NextPC instead of storing it; Step and
// this function are kept in lockstep by TestSuccessorPCMatchesStep.
func SuccessorPC(in isa.Inst, pc, s1 uint64, taken bool) uint64 {
	switch in.Op {
	case isa.OpHalt:
		return pc
	case isa.OpJ, isa.OpJal:
		return uint64(in.Imm)
	case isa.OpJr:
		return s1 + uint64(in.Imm)
	}
	if taken && in.IsBranch() {
		return uint64(in.Imm)
	}
	return pc + 1
}

// Run executes until halt or until limit instructions have run. It returns
// the number executed and ErrLimit if the budget was exhausted first.
func (m *Machine) Run(limit uint64) (uint64, error) {
	var n uint64
	for !m.halt && n < limit {
		m.Step()
		n++
	}
	if !m.halt {
		return n, ErrLimit
	}
	return n, nil
}

func (m *Machine) write(r isa.Reg, v uint64) {
	if r.IsZero() {
		return
	}
	m.regs[r] = v
}

func safeDiv(a, b int64) int64 {
	if b == 0 {
		return -1 // matches common RISC semantics for div-by-zero
	}
	if a == -1<<63 && b == -1 {
		return a // overflow wraps
	}
	return a / b
}

func safeRem(a, b int64) int64 {
	if b == 0 {
		return a
	}
	if a == -1<<63 && b == -1 {
		return 0
	}
	return a % b
}

func boolWord(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func fop(a, b uint64, f func(float64, float64) float64) uint64 {
	return isa.FloatBits(f(isa.FloatFromBits(a), isa.FloatFromBits(b)))
}
