package emu

import (
	"encoding/binary"
	"sort"

	"specvec/internal/isa"
)

// pageBits/pageSize define the sparse page granularity of emulated memory.
const (
	pageBits = 12
	pageSize = 1 << pageBits
	pageMask = pageSize - 1
)

// Memory is a sparse, byte-addressable 64-bit memory. Unmapped bytes read
// as zero; pages are allocated on first write.
type Memory struct {
	pages map[uint64]*[pageSize]byte
	// dirty marks pages written since TrackDirty(true); nil when tracking
	// is off, which keeps the write path a single nil check.
	dirty map[uint64]struct{}
}

// NewMemory returns an empty memory image.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageSize]byte)}
}

func (m *Memory) page(addr uint64, alloc bool) *[pageSize]byte {
	key := addr >> pageBits
	p := m.pages[key]
	if p == nil && alloc {
		p = new([pageSize]byte)
		m.pages[key] = p
	}
	if alloc && m.dirty != nil {
		m.dirty[key] = struct{}{}
	}
	return p
}

// TrackDirty starts (on) or stops (off) recording which pages are
// written, so SnapshotPages can capture only the delta against the image
// at enable time instead of every mapped page.
func (m *Memory) TrackDirty(on bool) {
	if on {
		if m.dirty == nil {
			m.dirty = make(map[uint64]struct{})
		}
		return
	}
	m.dirty = nil
}

// SnapshotPages copies the pages written since dirty tracking was enabled
// — every mapped page when it never was — ascending by address. The
// copies are immutable snapshots: later writes do not alter them.
func (m *Memory) SnapshotPages() []PageImage {
	var keys []uint64
	if m.dirty != nil {
		keys = make([]uint64, 0, len(m.dirty))
		for k := range m.dirty {
			keys = append(keys, k)
		}
	} else {
		keys = make([]uint64, 0, len(m.pages))
		for k := range m.pages {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]PageImage, 0, len(keys))
	for _, k := range keys {
		p := m.pages[k]
		if p == nil { // tracked but never allocated: cannot happen, but stay safe
			continue
		}
		data := make([]byte, pageSize)
		copy(data, p[:])
		out = append(out, PageImage{Base: k << pageBits, Data: data})
	}
	return out
}

// ByteAt returns the byte at addr (zero if unmapped).
func (m *Memory) ByteAt(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// SetByte stores one byte at addr.
func (m *Memory) SetByte(addr uint64, v byte) {
	m.page(addr, true)[addr&pageMask] = v
}

// Read64 loads the little-endian 64-bit word at addr. Accesses may straddle
// a page boundary.
func (m *Memory) Read64(addr uint64) uint64 {
	if addr&pageMask <= pageSize-8 {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		return binary.LittleEndian.Uint64(p[addr&pageMask:])
	}
	var buf [8]byte
	for i := range buf {
		buf[i] = m.ByteAt(addr + uint64(i))
	}
	return binary.LittleEndian.Uint64(buf[:])
}

// Write64 stores the little-endian 64-bit word at addr.
func (m *Memory) Write64(addr uint64, v uint64) {
	if addr&pageMask <= pageSize-8 {
		binary.LittleEndian.PutUint64(m.page(addr, true)[addr&pageMask:], v)
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	for i, b := range buf {
		m.SetByte(addr+uint64(i), b)
	}
}

// ReadFloat loads the IEEE-754 double at addr.
func (m *Memory) ReadFloat(addr uint64) float64 {
	return isa.FloatFromBits(m.Read64(addr))
}

// WriteFloat stores an IEEE-754 double at addr.
func (m *Memory) WriteFloat(addr uint64, v float64) {
	m.Write64(addr, isa.FloatBits(v))
}

// WriteBytes copies data into memory starting at addr.
func (m *Memory) WriteBytes(addr uint64, data []byte) {
	for len(data) > 0 {
		p := m.page(addr, true)
		off := addr & pageMask
		n := copy(p[off:], data)
		data = data[n:]
		addr += uint64(n)
	}
}

// ReadBytes copies n bytes starting at addr into a new slice.
func (m *Memory) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = m.ByteAt(addr + uint64(i))
	}
	return out
}

// PageCount returns the number of mapped pages (tests use this to check
// sparseness).
func (m *Memory) PageCount() int { return len(m.pages) }
