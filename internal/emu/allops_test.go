package emu

import (
	"math"
	"testing"

	"specvec/internal/isa"
)

// TestEveryOpcodeExecutes drives one instance of every opcode through the
// emulator via the Builder API and checks representative results, closing
// the coverage gap on rarely-used operations.
func TestEveryOpcodeExecutes(t *testing.T) {
	b := isa.NewBuilder("allops")
	b.DataWords("w", []uint64{7, 9})
	b.DataFloats("fl", []float64{2.0, -0.5})

	// Integer setup.
	b.Li(r(1), 12)
	b.Li(r(2), 5)
	b.Nop()
	b.Add(r(3), r(1), r(2))   // 17
	b.Sub(r(4), r(1), r(2))   // 7
	b.Mul(r(5), r(1), r(2))   // 60
	b.Div(r(6), r(1), r(2))   // 2
	b.Rem(r(7), r(1), r(2))   // 2
	b.And(r(8), r(1), r(2))   // 4
	b.Or(r(9), r(1), r(2))    // 13
	b.Xor(r(10), r(1), r(2))  // 9
	b.Sll(r(11), r(1), r(2))  // 384
	b.Srl(r(12), r(1), r(2))  // 0
	b.Sra(r(13), r(1), r(2))  // 0
	b.Slt(r(14), r(2), r(1))  // 1
	b.Sltu(r(15), r(1), r(2)) // 0
	b.Addi(r(16), r(1), -2)   // 10
	b.Andi(r(17), r(1), 8)    // 8
	b.Ori(r(18), r(1), 1)     // 13
	b.Xori(r(19), r(1), 1)    // 13
	b.Slli(r(20), r(1), 1)    // 24
	b.Srli(r(21), r(1), 1)    // 6
	b.Srai(r(22), r(1), 2)    // 3
	b.Slti(r(23), r(1), 100)  // 1

	// Memory.
	b.LoadAddr(r(24), "w")
	b.Ld(r(25), r(24), 8) // 9
	b.St(r(3), r(24), 0)  // w[0] = 17
	b.LoadAddr(r(26), "fl")
	b.Ldf(f(1), r(26), 0) // 2.0
	b.Ldf(f(2), r(26), 8) // -0.5
	b.Stf(f(1), r(26), 8)

	// Floating point.
	b.Fadd(f(3), f(1), f(2)) // 1.5
	b.Fsub(f(4), f(1), f(2)) // 2.5
	b.Fmul(f(5), f(1), f(2)) // -1.0
	b.Fdiv(f(6), f(1), f(2)) // -4.0
	b.Fneg(f(7), f(2))       // 0.5
	b.Fabs(f(8), f(2))       // 0.5
	b.Fmov(f(9), f(1))       // 2.0
	b.FcvtIF(f(10), r(1))    // 12.0
	b.FcvtFI(r(27), f(4))    // 2
	b.Flt(r(28), f(2), f(1)) // 1
	b.Fle(r(29), f(1), f(1)) // 1
	b.Feq(r(31), f(1), f(9)) // 1

	// Control.
	b.Bge(r(1), r(2), "takeit")
	b.Halt()
	b.Label("takeit")
	b.Bgeu(r(1), r(2), "takeit2")
	b.Halt()
	b.Label("takeit2")
	b.Jal(r(30), "sub")
	b.J("end")
	b.Label("sub")
	b.Jr(r(30), 0)
	b.Label("end")
	b.Halt()

	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(1000); err != nil {
		t.Fatal(err)
	}

	intWant := map[int]int64{
		3: 17, 4: 7, 5: 60, 6: 2, 7: 2, 8: 4, 9: 13, 10: 9,
		11: 384, 12: 0, 13: 0, 14: 1, 15: 0, 16: 10, 17: 8, 18: 13,
		19: 13, 20: 24, 21: 6, 22: 3, 23: 1, 25: 9, 27: 2, 28: 1, 29: 1, 31: 1,
	}
	for reg, want := range intWant {
		if got := m.IntReg(reg); got != want {
			t.Errorf("r%d = %d, want %d", reg, got, want)
		}
	}
	fpWant := map[int]float64{
		3: 1.5, 4: 2.5, 5: -1.0, 6: -4.0, 7: 0.5, 8: 0.5, 9: 2.0, 10: 12.0,
	}
	for reg, want := range fpWant {
		if got := m.FPReg(reg); math.Abs(got-want) > 1e-12 {
			t.Errorf("f%d = %v, want %v", reg, got, want)
		}
	}
	if got := m.Mem().Read64(p.DataSyms["w"]); got != 17 {
		t.Errorf("w[0] = %d, want 17", got)
	}
	if got := m.Mem().ReadFloat(p.DataSyms["fl"] + 8); got != 2.0 {
		t.Errorf("fl[1] = %v, want 2.0", got)
	}
}

// TestDynInstStringableOps: disassembly of every executed instruction is
// non-empty and stable (exercises isa.Inst.String across the opcode
// space).
func TestDynInstStringableOps(t *testing.T) {
	b := isa.NewBuilder("strings")
	b.Fneg(f(1), f(2))
	b.FcvtIF(f(1), r(2))
	b.Jal(r(31), "x")
	b.Label("x")
	b.Jr(r(31), 0)
	b.Li(r(1), 1)
	b.Halt()
	p, _ := b.Build()
	for _, in := range p.Insts {
		if in.String() == "" {
			t.Errorf("empty disassembly for %v", in.Op)
		}
	}
}
