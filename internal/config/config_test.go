package config

import (
	"testing"
)

func TestTable1FourWay(t *testing.T) {
	c := FourWay()
	if c.FetchWidth != 4 || c.CommitWidth != 4 || c.ROBSize != 128 || c.LSQSize != 32 {
		t.Errorf("4-way core params wrong: %+v", c)
	}
	if c.SimpleInt != 3 || c.IntMulDiv != 2 || c.SimpleFP != 2 || c.FPMulDiv != 1 {
		t.Errorf("4-way FU pools wrong: %+v", c)
	}
	if c.VectorRegs != 128 || c.VectorLen != 4 {
		t.Errorf("vector register file wrong: %+v", c)
	}
	if c.TLSets != 512 || c.TLWays != 4 || c.VRMTSets != 64 || c.VRMTWays != 4 {
		t.Errorf("TL/VRMT geometry wrong: %+v", c)
	}
	if c.StoreCommitLimit != 2 {
		t.Errorf("store commit limit = %d, want 2", c.StoreCommitLimit)
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
}

func TestTable1EightWay(t *testing.T) {
	c := EightWay()
	if c.FetchWidth != 8 || c.ROBSize != 256 || c.LSQSize != 64 {
		t.Errorf("8-way core params wrong: %+v", c)
	}
	if c.SimpleInt != 6 || c.IntMulDiv != 3 || c.SimpleFP != 4 || c.FPMulDiv != 2 {
		t.Errorf("8-way FU pools wrong: %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
}

func TestModeTransitions(t *testing.T) {
	c := FourWay().WithMode(ModeV)
	if !c.WideBus || !c.Vectorize {
		t.Errorf("ModeV: %+v", c)
	}
	if c.Mode() != ModeV {
		t.Errorf("Mode() = %v", c.Mode())
	}
	c = c.WithMode(ModeIM)
	if !c.WideBus || c.Vectorize {
		t.Errorf("ModeIM: %+v", c)
	}
	c = c.WithMode(ModeNoIM)
	if c.WideBus || c.Vectorize {
		t.Errorf("ModeNoIM: %+v", c)
	}
}

func TestNames(t *testing.T) {
	c := MustNamed(4, 1, ModeV)
	if c.Name != "4w-1pV" {
		t.Errorf("name = %q", c.Name)
	}
	c = MustNamed(8, 4, ModeNoIM)
	if c.Name != "8w-4pnoIM" {
		t.Errorf("name = %q", c.Name)
	}
}

func TestNamedRejectsBadParams(t *testing.T) {
	if _, err := Named(6, 1, ModeV); err == nil {
		t.Error("width 6 accepted")
	}
	if _, err := Named(4, 3, ModeV); err == nil {
		t.Error("3 ports accepted")
	}
}

func TestMatrixShape(t *testing.T) {
	m := Matrix()
	if len(m) != 18 {
		t.Fatalf("matrix size = %d, want 18", len(m))
	}
	seen := map[string]bool{}
	for _, c := range m {
		if seen[c.Name] {
			t.Errorf("duplicate config %q", c.Name)
		}
		seen[c.Name] = true
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
	// Spot-check ordering: first is 4w-1pnoIM, last is 8w-4pV.
	if m[0].Name != "4w-1pnoIM" || m[17].Name != "8w-4pV" {
		t.Errorf("ordering: first=%q last=%q", m[0].Name, m[17].Name)
	}
}

func TestValidateCatchesBrokenConfigs(t *testing.T) {
	c := FourWay()
	c.MemPorts = 0
	if err := c.Validate(); err == nil {
		t.Error("0 ports accepted")
	}
	c = FourWay().WithMode(ModeV)
	c.VectorRegs = 0
	if err := c.Validate(); err == nil {
		t.Error("vectorize without vregs accepted")
	}
	c = FourWay()
	c.Mem.DCache.LineBytes = 33
	if err := c.Validate(); err == nil {
		t.Error("bad cache geometry accepted")
	}
}
