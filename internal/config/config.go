package config

import (
	"fmt"

	"specvec/internal/branch"
	"specvec/internal/mem"
)

// Mode selects the memory/vectorization variant of a configuration, using
// the paper's naming: noIM = scalar buses, IM = wide buses ("intelligent
// memory"), V = wide buses + speculative dynamic vectorization.
type Mode int

const (
	ModeNoIM Mode = iota
	ModeIM
	ModeV
)

// String renders the paper's suffix for the mode.
func (m Mode) String() string {
	switch m {
	case ModeNoIM:
		return "noIM"
	case ModeIM:
		return "IM"
	case ModeV:
		return "V"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config is the full parameter set for one simulated processor.
type Config struct {
	Name string

	// Pipeline widths and windows (Table 1).
	FetchWidth  int // instructions per cycle, up to 1 taken branch
	DecodeWidth int
	IssueWidth  int
	CommitWidth int
	ROBSize     int // "instruction window size"
	LSQSize     int
	IQSize      int // scalar issue-queue capacity
	VIQSize     int // vector issue-queue capacity

	// Scalar functional-unit pools.
	SimpleInt int
	IntMulDiv int
	SimpleFP  int
	FPMulDiv  int

	// Memory ports.
	MemPorts int
	WideBus  bool
	// MaxLoadsPerWideAccess bounds how many pending loads one wide access
	// can serve (§3.7: "only 4 pending loads can be served at the same
	// cycle").
	MaxLoadsPerWideAccess int

	// Dynamic vectorization.
	Vectorize     bool
	VectorRegs    int // 128
	VectorLen     int // 4 elements of 64 bits
	TLSets        int // 512 sets, 4 ways
	TLWays        int
	VRMTSets      int // 64 sets, 4 ways
	VRMTWays      int
	ConfThreshold int // confidence needed to fire vectorization (2)
	// Unbounded lifts TL/VRMT/register-file capacity limits (Figure 3's
	// "unbounded resources" experiment).
	Unbounded bool
	// BlockScalarOperand controls whether a vector×scalar instruction whose
	// scalar register is not ready blocks decode (§3.2, Figure 7). The
	// "ideal" bars of Figure 7 set this to false.
	BlockScalarOperand bool
	// ChurnDamper enables the scalar-operand churn cooldown (DESIGN.md
	// §6); disabling it reverts to the paper's literal re-create-on-
	// mismatch rule. Ablation: experiments "ablation" table.
	ChurnDamper bool
	// RangeOnlyConflicts reverts the store coherence check to the coarse
	// [first,last] range of §3.6, without the per-element validated-
	// element refinement. Ablation only.
	RangeOnlyConflicts bool

	// Commit constraints.
	StoreCommitLimit int // ≤2 stores per cycle (§3.6)

	// Branch prediction and recovery.
	Branch            branch.Config
	MispredictPenalty int // extra front-end redirect cycles after resolution

	// Memory hierarchy.
	Mem mem.HierarchyConfig
}

// FourWay returns the 4-way configuration of Table 1 (1 port, scalar bus,
// no vectorization; use the With* helpers or Named for variants).
func FourWay() Config {
	return Config{
		Name:        "4w-1p-noIM",
		FetchWidth:  4,
		DecodeWidth: 4,
		IssueWidth:  4,
		CommitWidth: 4,
		ROBSize:     128,
		LSQSize:     32,
		IQSize:      64,
		VIQSize:     32,
		SimpleInt:   3,
		IntMulDiv:   2,
		SimpleFP:    2,
		FPMulDiv:    1,
		MemPorts:    1,

		MaxLoadsPerWideAccess: 4,

		VectorRegs:         128,
		VectorLen:          4,
		TLSets:             512,
		TLWays:             4,
		VRMTSets:           64,
		VRMTWays:           4,
		ConfThreshold:      2,
		BlockScalarOperand: true,
		ChurnDamper:        true,

		StoreCommitLimit:  2,
		Branch:            branch.DefaultConfig(),
		MispredictPenalty: 3,
		Mem:               mem.DefaultHierarchy(),
	}
}

// EightWay returns the 8-way configuration of Table 1.
func EightWay() Config {
	c := FourWay()
	c.Name = "8w-1p-noIM"
	c.FetchWidth = 8
	c.DecodeWidth = 8
	c.IssueWidth = 8
	c.CommitWidth = 8
	c.ROBSize = 256
	c.LSQSize = 64
	c.IQSize = 128
	c.VIQSize = 64
	c.SimpleInt = 6
	c.IntMulDiv = 3
	c.SimpleFP = 4
	c.FPMulDiv = 2
	return c
}

// WithPorts returns a copy with n L1 data ports.
func (c Config) WithPorts(n int) Config {
	c.MemPorts = n
	return c.rename()
}

// WithMode returns a copy configured for the given paper mode.
func (c Config) WithMode(m Mode) Config {
	switch m {
	case ModeNoIM:
		c.WideBus = false
		c.Vectorize = false
	case ModeIM:
		c.WideBus = true
		c.Vectorize = false
	case ModeV:
		c.WideBus = true
		c.Vectorize = true
	}
	return c.rename()
}

// Mode returns the paper mode this configuration corresponds to.
func (c Config) Mode() Mode {
	switch {
	case c.Vectorize:
		return ModeV
	case c.WideBus:
		return ModeIM
	default:
		return ModeNoIM
	}
}

func (c Config) rename() Config {
	c.Name = fmt.Sprintf("%dw-%dp%s", c.FetchWidth, c.MemPorts, c.Mode())
	return c
}

// Named builds the configuration for (width, ports, mode); width must be 4
// or 8 and ports 1, 2 or 4, matching the evaluation sweep.
func Named(width, ports int, mode Mode) (Config, error) {
	var c Config
	switch width {
	case 4:
		c = FourWay()
	case 8:
		c = EightWay()
	default:
		return Config{}, fmt.Errorf("config: unsupported width %d", width)
	}
	switch ports {
	case 1, 2, 4:
	default:
		return Config{}, fmt.Errorf("config: unsupported port count %d", ports)
	}
	return c.WithPorts(ports).WithMode(mode), nil
}

// MustNamed is Named for static experiment tables; it panics on error.
func MustNamed(width, ports int, mode Mode) Config {
	c, err := Named(width, ports, mode)
	if err != nil {
		panic(err)
	}
	return c
}

// Matrix returns the 18 configurations of Figures 11 and 12 in
// presentation order: for each width (4, 8) and port count (1, 2, 4), the
// noIM, IM and V variants.
func Matrix() []Config {
	var out []Config
	for _, width := range []int{4, 8} {
		for _, ports := range []int{1, 2, 4} {
			for _, mode := range []Mode{ModeNoIM, ModeIM, ModeV} {
				out = append(out, MustNamed(width, ports, mode))
			}
		}
	}
	return out
}

// Validate performs basic sanity checks.
func (c Config) Validate() error {
	if c.FetchWidth <= 0 || c.CommitWidth <= 0 || c.IssueWidth <= 0 {
		return fmt.Errorf("config %q: non-positive widths", c.Name)
	}
	if c.ROBSize <= 0 || c.LSQSize <= 0 {
		return fmt.Errorf("config %q: non-positive windows", c.Name)
	}
	if c.MemPorts <= 0 {
		return fmt.Errorf("config %q: no memory ports", c.Name)
	}
	if c.Vectorize && !c.Unbounded {
		if c.VectorRegs <= 0 || c.VectorLen <= 0 {
			return fmt.Errorf("config %q: vectorization without vector registers", c.Name)
		}
	}
	if err := c.Mem.ICache.Validate(); err != nil {
		return err
	}
	if err := c.Mem.DCache.Validate(); err != nil {
		return err
	}
	return c.Mem.L2.Validate()
}
