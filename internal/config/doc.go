// Package config defines processor configurations. FourWay and EightWay
// reproduce Table 1 of the paper; Mode and Matrix enumerate the
// 18-configuration sweep of Figures 11 and 12 (issue width × L1 data
// ports × {scalar bus, wide bus, wide bus + dynamic vectorization}).
//
// Configuration names follow the paper's shorthand: "4w-1pV" is a 4-way
// core with one L1D port and the full SDV proposal; "8w-2pIM" is an 8-way
// core with two ports and a wide (line-sized) bus but no vectorization.
// Unbounded turns the TL, VRMT and vector register file into the infinite
// structures of the Figure 3 limit study.
package config
