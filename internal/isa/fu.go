package isa

// FUClass identifies the functional-unit pool an instruction executes on,
// matching the pools of Table 1 in the paper. Mul and div share a pool but
// have different latencies; division is not pipelined.
type FUClass uint8

const (
	// FUNone marks instructions that need no functional unit (nop, halt,
	// unconditional jumps resolved at decode).
	FUNone FUClass = iota
	// FUIntALU is the simple integer pool (latency 1, pipelined).
	FUIntALU
	// FUIntMulDiv is the integer multiply/divide pool (mul 2 pipelined,
	// div 12 unpipelined).
	FUIntMulDiv
	// FUFPALU is the simple floating-point pool (latency 2, pipelined).
	FUFPALU
	// FUFPMulDiv is the FP multiply/divide pool (mul 4 pipelined, div 14
	// unpipelined).
	FUFPMulDiv
	// FUMem is the load/store port pool (cache access latency).
	FUMem

	// NumFUClasses is the number of pools (for table sizing).
	NumFUClasses
)

var fuNames = [...]string{
	FUNone: "none", FUIntALU: "int", FUIntMulDiv: "intMulDiv",
	FUFPALU: "fp", FUFPMulDiv: "fpMulDiv", FUMem: "mem",
}

// String returns a short pool name.
func (c FUClass) String() string { return fuNames[c] }

// Latencies from Table 1: simple int 1, int mul 2, int div 12, simple FP 2,
// FP mul 4, FP div 14. Memory latency comes from the cache model instead.
const (
	LatIntALU = 1
	LatIntMul = 2
	LatIntDiv = 12
	LatFPALU  = 2
	LatFPMul  = 4
	LatFPDiv  = 14
)

// ClassOf returns the functional-unit pool for op.
func ClassOf(op Op) FUClass {
	switch op {
	case OpLd, OpLdf, OpSt, OpStf:
		return FUMem
	case OpMul, OpDiv, OpRem:
		return FUIntMulDiv
	case OpFmul, OpFdiv:
		return FUFPMulDiv
	case OpFadd, OpFsub, OpFneg, OpFabs, OpFmov, OpFcvtIF, OpFcvtFI,
		OpFlt, OpFle, OpFeq:
		return FUFPALU
	case OpNop, OpHalt, OpJ, OpJal:
		return FUNone
	default:
		// Integer ALU also executes branches, jr target adds and li.
		return FUIntALU
	}
}

// LatencyOf returns the execution latency in cycles for op on its pool.
// Memory operations return the address-generation latency only; the cache
// access is modelled separately by the pipeline.
func LatencyOf(op Op) int {
	switch ClassOf(op) {
	case FUIntALU:
		return LatIntALU
	case FUIntMulDiv:
		if op == OpMul {
			return LatIntMul
		}
		return LatIntDiv
	case FUFPALU:
		return LatFPALU
	case FUFPMulDiv:
		if op == OpFmul {
			return LatFPMul
		}
		return LatFPDiv
	case FUMem:
		return 1 // address generation
	default:
		return 1
	}
}

// Pipelined reports whether back-to-back issue to the same unit is possible
// for op (divides occupy their unit for the full latency).
func Pipelined(op Op) bool {
	switch op {
	case OpDiv, OpRem, OpFdiv:
		return false
	}
	return true
}
