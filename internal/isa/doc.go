// Package isa defines the instruction set architecture simulated by this
// repository: a 64-bit load/store RISC machine with 32 integer and 32
// floating-point registers.
//
// The ISA plays the role of the Alpha subset that the paper's SimpleScalar
// substrate executes. It is deliberately regular: every instruction has at
// most one destination and two register sources, loads and stores move
// 64-bit words (the paper's vector element size), and branches carry
// absolute instruction-index targets resolved by the assembler.
//
// Program counters are instruction indices; TextBase and InstBytes map them
// to the byte addresses seen by the instruction cache. Functional-unit
// classes and latencies (ClassOf, LatencyOf, Pipelined) mirror Table 1 of
// the paper and drive both the scalar pools and the vector datapath.
//
// See ARCHITECTURE.md at the repository root for how the ISA threads
// through the emulator, pipeline and SDV engine.
package isa
