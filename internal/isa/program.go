package isa

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Segment is a chunk of initialised data memory.
type Segment struct {
	Addr uint64
	Data []byte
}

// Program is an executable image: code, entry point and initial data.
type Program struct {
	Name     string
	Insts    []Inst
	Entry    uint64 // instruction index of the first instruction
	Segments []Segment
	Symbols  map[string]uint64 // label -> instruction index
	DataSyms map[string]uint64 // data label -> byte address
}

// Inst returns the instruction at index pc, or a halt if out of range (the
// emulator treats running off the end as termination).
func (p *Program) Inst(pc uint64) Inst {
	if pc >= uint64(len(p.Insts)) {
		return Inst{Op: OpHalt}
	}
	return p.Insts[pc]
}

// Validate checks branch/jump targets and segment sanity.
func (p *Program) Validate() error {
	n := int64(len(p.Insts))
	for idx, in := range p.Insts {
		if in.IsBranch() || in.Op == OpJ || in.Op == OpJal {
			if in.Imm < 0 || in.Imm > n {
				return fmt.Errorf("inst %d (%s): control target %d out of range [0,%d]", idx, in, in.Imm, n)
			}
		}
	}
	if p.Entry >= uint64(n) && n > 0 {
		return fmt.Errorf("entry %d out of range", p.Entry)
	}
	segs := append([]Segment(nil), p.Segments...)
	sort.Slice(segs, func(i, j int) bool { return segs[i].Addr < segs[j].Addr })
	for i := 1; i < len(segs); i++ {
		prev := segs[i-1]
		if prev.Addr+uint64(len(prev.Data)) > segs[i].Addr {
			return fmt.Errorf("overlapping data segments at %#x and %#x", prev.Addr, segs[i].Addr)
		}
	}
	return nil
}

// Builder constructs a Program with label-based control flow. Workload
// generators and tests use it directly; the text assembler lowers onto it.
type Builder struct {
	name     string
	insts    []Inst
	labels   map[string]uint64
	fixups   []fixup // control instructions whose Imm is a label
	segments []Segment
	dataSyms map[string]uint64
	dataAddr uint64
	err      error
}

type fixup struct {
	index int
	label string
}

// NewBuilder returns an empty program builder.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:     name,
		labels:   map[string]uint64{},
		dataSyms: map[string]uint64{},
		dataAddr: DataBase,
	}
}

// Err returns the first error recorded by the builder, if any.
func (b *Builder) Err() error { return b.err }

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

// PC returns the index of the next instruction to be emitted.
func (b *Builder) PC() uint64 { return uint64(len(b.insts)) }

// Label binds name to the current PC.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.fail("duplicate label %q", name)
		return
	}
	b.labels[name] = b.PC()
}

// Emit appends a raw instruction.
func (b *Builder) Emit(in Inst) { b.insts = append(b.insts, in) }

// emitControl appends a control instruction targeting label.
func (b *Builder) emitControl(in Inst, label string) {
	b.fixups = append(b.fixups, fixup{index: len(b.insts), label: label})
	b.insts = append(b.insts, in)
}

// Instruction helpers. Naming follows the mnemonics.

func (b *Builder) Nop()                        { b.Emit(Inst{Op: OpNop}) }
func (b *Builder) Halt()                       { b.Emit(Inst{Op: OpHalt}) }
func (b *Builder) Ld(rd, base Reg, off int64)  { b.Emit(Inst{Op: OpLd, Rd: rd, Rs1: base, Imm: off}) }
func (b *Builder) Ldf(fd, base Reg, off int64) { b.Emit(Inst{Op: OpLdf, Rd: fd, Rs1: base, Imm: off}) }
func (b *Builder) St(val, base Reg, off int64) { b.Emit(Inst{Op: OpSt, Rs2: val, Rs1: base, Imm: off}) }
func (b *Builder) Stf(val, base Reg, off int64) {
	b.Emit(Inst{Op: OpStf, Rs2: val, Rs1: base, Imm: off})
}

func (b *Builder) op3(op Op, rd, rs1, rs2 Reg) { b.Emit(Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}) }
func (b *Builder) opImm(op Op, rd, rs1 Reg, imm int64) {
	b.Emit(Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
}

func (b *Builder) Add(rd, rs1, rs2 Reg)  { b.op3(OpAdd, rd, rs1, rs2) }
func (b *Builder) Sub(rd, rs1, rs2 Reg)  { b.op3(OpSub, rd, rs1, rs2) }
func (b *Builder) Mul(rd, rs1, rs2 Reg)  { b.op3(OpMul, rd, rs1, rs2) }
func (b *Builder) Div(rd, rs1, rs2 Reg)  { b.op3(OpDiv, rd, rs1, rs2) }
func (b *Builder) Rem(rd, rs1, rs2 Reg)  { b.op3(OpRem, rd, rs1, rs2) }
func (b *Builder) And(rd, rs1, rs2 Reg)  { b.op3(OpAnd, rd, rs1, rs2) }
func (b *Builder) Or(rd, rs1, rs2 Reg)   { b.op3(OpOr, rd, rs1, rs2) }
func (b *Builder) Xor(rd, rs1, rs2 Reg)  { b.op3(OpXor, rd, rs1, rs2) }
func (b *Builder) Sll(rd, rs1, rs2 Reg)  { b.op3(OpSll, rd, rs1, rs2) }
func (b *Builder) Srl(rd, rs1, rs2 Reg)  { b.op3(OpSrl, rd, rs1, rs2) }
func (b *Builder) Sra(rd, rs1, rs2 Reg)  { b.op3(OpSra, rd, rs1, rs2) }
func (b *Builder) Slt(rd, rs1, rs2 Reg)  { b.op3(OpSlt, rd, rs1, rs2) }
func (b *Builder) Sltu(rd, rs1, rs2 Reg) { b.op3(OpSltu, rd, rs1, rs2) }

func (b *Builder) Addi(rd, rs1 Reg, imm int64) { b.opImm(OpAddi, rd, rs1, imm) }
func (b *Builder) Andi(rd, rs1 Reg, imm int64) { b.opImm(OpAndi, rd, rs1, imm) }
func (b *Builder) Ori(rd, rs1 Reg, imm int64)  { b.opImm(OpOri, rd, rs1, imm) }
func (b *Builder) Xori(rd, rs1 Reg, imm int64) { b.opImm(OpXori, rd, rs1, imm) }
func (b *Builder) Slli(rd, rs1 Reg, imm int64) { b.opImm(OpSlli, rd, rs1, imm) }
func (b *Builder) Srli(rd, rs1 Reg, imm int64) { b.opImm(OpSrli, rd, rs1, imm) }
func (b *Builder) Srai(rd, rs1 Reg, imm int64) { b.opImm(OpSrai, rd, rs1, imm) }
func (b *Builder) Slti(rd, rs1 Reg, imm int64) { b.opImm(OpSlti, rd, rs1, imm) }
func (b *Builder) Li(rd Reg, imm int64)        { b.Emit(Inst{Op: OpLi, Rd: rd, Imm: imm}) }

func (b *Builder) Fadd(fd, fs1, fs2 Reg) { b.op3(OpFadd, fd, fs1, fs2) }
func (b *Builder) Fsub(fd, fs1, fs2 Reg) { b.op3(OpFsub, fd, fs1, fs2) }
func (b *Builder) Fmul(fd, fs1, fs2 Reg) { b.op3(OpFmul, fd, fs1, fs2) }
func (b *Builder) Fdiv(fd, fs1, fs2 Reg) { b.op3(OpFdiv, fd, fs1, fs2) }
func (b *Builder) Fneg(fd, fs1 Reg)      { b.Emit(Inst{Op: OpFneg, Rd: fd, Rs1: fs1}) }
func (b *Builder) Fabs(fd, fs1 Reg)      { b.Emit(Inst{Op: OpFabs, Rd: fd, Rs1: fs1}) }
func (b *Builder) Fmov(fd, fs1 Reg)      { b.Emit(Inst{Op: OpFmov, Rd: fd, Rs1: fs1}) }
func (b *Builder) FcvtIF(fd, rs1 Reg)    { b.Emit(Inst{Op: OpFcvtIF, Rd: fd, Rs1: rs1}) }
func (b *Builder) FcvtFI(rd, fs1 Reg)    { b.Emit(Inst{Op: OpFcvtFI, Rd: rd, Rs1: fs1}) }
func (b *Builder) Flt(rd, fs1, fs2 Reg)  { b.op3(OpFlt, rd, fs1, fs2) }
func (b *Builder) Fle(rd, fs1, fs2 Reg)  { b.op3(OpFle, rd, fs1, fs2) }
func (b *Builder) Feq(rd, fs1, fs2 Reg)  { b.op3(OpFeq, rd, fs1, fs2) }

func (b *Builder) Beq(rs1, rs2 Reg, label string) {
	b.emitControl(Inst{Op: OpBeq, Rs1: rs1, Rs2: rs2}, label)
}
func (b *Builder) Bne(rs1, rs2 Reg, label string) {
	b.emitControl(Inst{Op: OpBne, Rs1: rs1, Rs2: rs2}, label)
}
func (b *Builder) Blt(rs1, rs2 Reg, label string) {
	b.emitControl(Inst{Op: OpBlt, Rs1: rs1, Rs2: rs2}, label)
}
func (b *Builder) Bge(rs1, rs2 Reg, label string) {
	b.emitControl(Inst{Op: OpBge, Rs1: rs1, Rs2: rs2}, label)
}
func (b *Builder) Bltu(rs1, rs2 Reg, label string) {
	b.emitControl(Inst{Op: OpBltu, Rs1: rs1, Rs2: rs2}, label)
}
func (b *Builder) Bgeu(rs1, rs2 Reg, label string) {
	b.emitControl(Inst{Op: OpBgeu, Rs1: rs1, Rs2: rs2}, label)
}
func (b *Builder) J(label string)           { b.emitControl(Inst{Op: OpJ}, label) }
func (b *Builder) Jal(rd Reg, label string) { b.emitControl(Inst{Op: OpJal, Rd: rd}, label) }
func (b *Builder) Jr(rs1 Reg, off int64)    { b.Emit(Inst{Op: OpJr, Rs1: rs1, Imm: off}) }

// Data placement.

// DataWords reserves a labelled block of 64-bit words at the next free data
// address and returns its byte address.
func (b *Builder) DataWords(label string, words []uint64) uint64 {
	buf := make([]byte, len(words)*WordBytes)
	for i, w := range words {
		binary.LittleEndian.PutUint64(buf[i*WordBytes:], w)
	}
	return b.DataBytes(label, buf)
}

// DataFloats reserves a labelled block of float64 values.
func (b *Builder) DataFloats(label string, vals []float64) uint64 {
	words := make([]uint64, len(vals))
	for i, v := range vals {
		words[i] = floatBits(v)
	}
	return b.DataWords(label, words)
}

// DataBytes reserves a labelled raw block.
func (b *Builder) DataBytes(label string, data []byte) uint64 {
	addr := b.dataAddr
	b.segments = append(b.segments, Segment{Addr: addr, Data: data})
	if label != "" {
		if _, dup := b.dataSyms[label]; dup {
			b.fail("duplicate data label %q", label)
		}
		b.dataSyms[label] = addr
	}
	// Keep blocks word-aligned and leave a guard gap between blocks so a
	// workload bug cannot silently alias two arrays.
	sz := (uint64(len(data)) + WordBytes - 1) &^ uint64(WordBytes-1)
	b.dataAddr = addr + sz + WordBytes
	return addr
}

// DataZero reserves a labelled zero-initialised block of n words.
func (b *Builder) DataZero(label string, nWords int) uint64 {
	return b.DataBytes(label, make([]byte, nWords*WordBytes))
}

// BindDataLabel binds an additional label to an existing byte address
// (label aliases).
func (b *Builder) BindDataLabel(label string, addr uint64) {
	if _, dup := b.dataSyms[label]; dup {
		b.fail("duplicate data label %q", label)
		return
	}
	b.dataSyms[label] = addr
}

// DataAddr returns the byte address bound to a data label.
func (b *Builder) DataAddr(label string) uint64 {
	addr, ok := b.dataSyms[label]
	if !ok {
		b.fail("unknown data label %q", label)
	}
	return addr
}

// LoadAddr emits `li rd, addr-of(label)`.
func (b *Builder) LoadAddr(rd Reg, label string) { b.Li(rd, int64(b.DataAddr(label))) }

// Build resolves labels and returns the finished program.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("undefined label %q", f.label)
		}
		b.insts[f.index].Imm = int64(target)
	}
	p := &Program{
		Name:     b.name,
		Insts:    b.insts,
		Segments: b.segments,
		Symbols:  b.labels,
		DataSyms: b.dataSyms,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build for program constructions that cannot fail at run time
// (generators with fixed label sets); it panics on error.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
