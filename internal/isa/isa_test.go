package isa

import (
	"testing"
	"testing/quick"
)

func TestRegNaming(t *testing.T) {
	if got := IntReg(7).String(); got != "r7" {
		t.Errorf("IntReg(7) = %q, want r7", got)
	}
	if got := FPReg(3).String(); got != "f3" {
		t.Errorf("FPReg(3) = %q, want f3", got)
	}
	if !FPReg(0).IsFP() {
		t.Error("FPReg(0).IsFP() = false")
	}
	if IntReg(31).IsFP() {
		t.Error("IntReg(31).IsFP() = true")
	}
	if !IntReg(0).IsZero() {
		t.Error("r0 should be the zero register")
	}
	if FPReg(0).IsZero() {
		t.Error("f0 must not be treated as the zero register")
	}
	for i := 0; i < NumFPRegs; i++ {
		if FPReg(i).Index() != i {
			t.Fatalf("FPReg(%d).Index() = %d", i, FPReg(i).Index())
		}
	}
}

func TestOpPredicates(t *testing.T) {
	cases := []struct {
		in                         Inst
		load, store, branch, arith bool
	}{
		{Inst{Op: OpLd}, true, false, false, false},
		{Inst{Op: OpLdf}, true, false, false, false},
		{Inst{Op: OpSt}, false, true, false, false},
		{Inst{Op: OpStf}, false, true, false, false},
		{Inst{Op: OpAdd}, false, false, false, true},
		{Inst{Op: OpLi}, false, false, false, true},
		{Inst{Op: OpFdiv}, false, false, false, true},
		{Inst{Op: OpFeq}, false, false, false, true},
		{Inst{Op: OpBeq}, false, false, true, false},
		{Inst{Op: OpBgeu}, false, false, true, false},
		{Inst{Op: OpJ}, false, false, false, false},
		{Inst{Op: OpHalt}, false, false, false, false},
	}
	for _, c := range cases {
		if c.in.IsLoad() != c.load {
			t.Errorf("%s IsLoad = %v", c.in.Op, c.in.IsLoad())
		}
		if c.in.IsStore() != c.store {
			t.Errorf("%s IsStore = %v", c.in.Op, c.in.IsStore())
		}
		if c.in.IsBranch() != c.branch {
			t.Errorf("%s IsBranch = %v", c.in.Op, c.in.IsBranch())
		}
		if c.in.IsArith() != c.arith {
			t.Errorf("%s IsArith = %v", c.in.Op, c.in.IsArith())
		}
	}
}

func TestWritesReg(t *testing.T) {
	if (Inst{Op: OpAdd, Rd: IntReg(0)}).WritesReg() {
		t.Error("writes to r0 must be discarded")
	}
	if !(Inst{Op: OpFadd, Rd: FPReg(0)}).WritesReg() {
		t.Error("writes to f0 are architectural")
	}
	if (Inst{Op: OpSt}).WritesReg() {
		t.Error("stores write no register")
	}
	if !(Inst{Op: OpJal, Rd: IntReg(31)}).WritesReg() {
		t.Error("jal writes the link register")
	}
	if (Inst{Op: OpBeq}).WritesReg() {
		t.Error("branches write no register")
	}
}

func TestSrcRegs(t *testing.T) {
	in := Inst{Op: OpSt, Rs1: IntReg(2), Rs2: IntReg(3)}
	srcs, n := in.SrcRegs()
	if n != 2 || srcs[0] != IntReg(2) || srcs[1] != IntReg(3) {
		t.Errorf("store SrcRegs = %v/%d", srcs[:n], n)
	}
	in = Inst{Op: OpLd, Rs1: IntReg(4)}
	srcs, n = in.SrcRegs()
	if n != 1 || srcs[0] != IntReg(4) {
		t.Errorf("load SrcRegs = %v/%d", srcs[:n], n)
	}
	in = Inst{Op: OpLi, Rd: IntReg(1), Imm: 5}
	if _, n := in.SrcRegs(); n != 0 {
		t.Errorf("li reads %d registers, want 0", n)
	}
	in = Inst{Op: OpAddi, Rs1: IntReg(9)}
	srcs, n = in.SrcRegs()
	if n != 1 || srcs[0] != IntReg(9) {
		t.Errorf("addi SrcRegs = %v/%d", srcs[:n], n)
	}
}

func TestFUClasses(t *testing.T) {
	cases := []struct {
		op   Op
		cls  FUClass
		lat  int
		pipe bool
	}{
		{OpAdd, FUIntALU, 1, true},
		{OpMul, FUIntMulDiv, 2, true},
		{OpDiv, FUIntMulDiv, 12, false},
		{OpFadd, FUFPALU, 2, true},
		{OpFmul, FUFPMulDiv, 4, true},
		{OpFdiv, FUFPMulDiv, 14, false},
		{OpLd, FUMem, 1, true},
		{OpBeq, FUIntALU, 1, true},
		{OpJ, FUNone, 1, true},
	}
	for _, c := range cases {
		if got := ClassOf(c.op); got != c.cls {
			t.Errorf("ClassOf(%s) = %s, want %s", c.op, got, c.cls)
		}
		if got := LatencyOf(c.op); got != c.lat {
			t.Errorf("LatencyOf(%s) = %d, want %d", c.op, got, c.lat)
		}
		if got := Pipelined(c.op); got != c.pipe {
			t.Errorf("Pipelined(%s) = %v, want %v", c.op, got, c.pipe)
		}
	}
}

func TestPCByteRoundTrip(t *testing.T) {
	f := func(pc uint32) bool {
		return ByteToPC(PCToByte(uint64(pc))) == uint64(pc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBuilderControlFlow(t *testing.T) {
	b := NewBuilder("t")
	b.Li(IntReg(1), 0)
	b.Label("loop")
	b.Addi(IntReg(1), IntReg(1), 1)
	b.Slti(IntReg(2), IntReg(1), 10)
	b.Bne(IntReg(2), IntReg(0), "loop")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	br := p.Insts[3]
	if !br.IsBranch() || br.Imm != 1 {
		t.Errorf("branch target = %d, want 1 (%s)", br.Imm, br)
	}
	if p.Symbols["loop"] != 1 {
		t.Errorf("label loop = %d, want 1", p.Symbols["loop"])
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("t")
	b.J("nowhere")
	if _, err := b.Build(); err == nil {
		t.Fatal("Build succeeded with undefined label")
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder("t")
	b.Label("x")
	b.Nop()
	b.Label("x")
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Fatal("Build succeeded with duplicate label")
	}
}

func TestBuilderDataLayout(t *testing.T) {
	b := NewBuilder("t")
	a1 := b.DataWords("a", []uint64{1, 2, 3})
	a2 := b.DataZero("b", 4)
	if a1 == a2 {
		t.Fatal("data blocks alias")
	}
	if a2 <= a1+3*WordBytes {
		t.Errorf("no guard gap: a=%#x b=%#x", a1, a2)
	}
	if b.DataAddr("a") != a1 || b.DataAddr("b") != a2 {
		t.Error("DataAddr mismatch")
	}
	if a1%WordBytes != 0 || a2%WordBytes != 0 {
		t.Error("data blocks not word aligned")
	}
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Segments) != 2 {
		t.Fatalf("segments = %d, want 2", len(p.Segments))
	}
}

func TestProgramValidateOverlap(t *testing.T) {
	p := &Program{
		Insts: []Inst{{Op: OpHalt}},
		Segments: []Segment{
			{Addr: 100, Data: make([]byte, 16)},
			{Addr: 108, Data: make([]byte, 8)},
		},
	}
	if err := p.Validate(); err == nil {
		t.Fatal("Validate accepted overlapping segments")
	}
}

func TestProgramInstOutOfRange(t *testing.T) {
	p := &Program{Insts: []Inst{{Op: OpNop}}}
	if got := p.Inst(99); got.Op != OpHalt {
		t.Errorf("out-of-range fetch = %s, want halt", got)
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpLd, Rd: IntReg(1), Rs1: IntReg(2), Imm: 8}, "ld r1, 8(r2)"},
		{Inst{Op: OpSt, Rs2: IntReg(3), Rs1: IntReg(4), Imm: -16}, "st r3, -16(r4)"},
		{Inst{Op: OpAdd, Rd: IntReg(1), Rs1: IntReg(2), Rs2: IntReg(3)}, "add r1, r2, r3"},
		{Inst{Op: OpAddi, Rd: IntReg(1), Rs1: IntReg(2), Imm: 4}, "addi r1, r2, 4"},
		{Inst{Op: OpBeq, Rs1: IntReg(1), Rs2: IntReg(2), Imm: 7}, "beq r1, r2, @7"},
		{Inst{Op: OpFadd, Rd: FPReg(1), Rs1: FPReg(2), Rs2: FPReg(3)}, "fadd f1, f2, f3"},
		{Inst{Op: OpHalt}, "halt"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestFloatRoundTrip(t *testing.T) {
	f := func(v float64) bool { return FloatFromBits(FloatBits(v)) == v || v != v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
