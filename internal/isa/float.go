package isa

import "math"

// floatBits and FloatFromBits centralise the raw-bit view of float64 data.
// The register files and memory store 64-bit words; FP instructions
// interpret them as IEEE-754 doubles.

func floatBits(f float64) uint64 { return math.Float64bits(f) }

// FloatBits returns the word encoding of an IEEE-754 double.
func FloatBits(f float64) uint64 { return math.Float64bits(f) }

// FloatFromBits returns the IEEE-754 double encoded by a word.
func FloatFromBits(w uint64) float64 { return math.Float64frombits(w) }
