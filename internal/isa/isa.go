package isa

import "fmt"

// Machine layout constants shared by the emulator, caches and pipeline.
const (
	// WordBytes is the size of one data element (the paper uses 64-bit
	// vector register elements).
	WordBytes = 8
	// InstBytes is the encoded size of one instruction; with 64-byte
	// I-cache lines this yields 8 instructions per line.
	InstBytes = 8
	// TextBase is the byte address of instruction index 0.
	TextBase = 0x0040_0000
	// DataBase is the conventional start of static data segments.
	DataBase = 0x1000_0000
	// HeapBase is the conventional start of generated heap structures.
	HeapBase = 0x2000_0000
	// StackBase is the conventional top of the downward-growing stack.
	StackBase = 0x7fff_0000
)

// NumIntRegs and NumFPRegs give the architectural register file sizes.
const (
	NumIntRegs = 32
	NumFPRegs  = 32
	// NumLogicalRegs is the total logical register name space (integer
	// registers first, then floating point).
	NumLogicalRegs = NumIntRegs + NumFPRegs
)

// Reg names an architectural register. Values 0..31 are integer registers
// r0..r31 (r0 is hard-wired to zero); values 32..63 are floating-point
// registers f0..f31.
type Reg uint8

// IntReg returns the integer register ri.
func IntReg(i int) Reg { return Reg(i) }

// FPReg returns the floating-point register fi.
func FPReg(i int) Reg { return Reg(NumIntRegs + i) }

// IsFP reports whether r names a floating-point register.
func (r Reg) IsFP() bool { return r >= NumIntRegs }

// IsZero reports whether r is the hard-wired zero register r0.
func (r Reg) IsZero() bool { return r == 0 }

// Index returns the register number within its class (0..31).
func (r Reg) Index() int {
	if r.IsFP() {
		return int(r) - NumIntRegs
	}
	return int(r)
}

// String renders the conventional assembly name (r7, f3).
func (r Reg) String() string {
	if r.IsFP() {
		return fmt.Sprintf("f%d", r.Index())
	}
	return fmt.Sprintf("r%d", r.Index())
}

// Op enumerates the instruction opcodes.
type Op uint8

// Opcode space. The groups matter to the rest of the simulator: loads fire
// the vectorizer, arithmetic propagates vectorization, stores run the
// memory-coherence range check, branches drive the predictor and GMRBB.
const (
	OpNop Op = iota

	// Memory.
	OpLd  // ld  rd, imm(rs1)   : rd <- mem64[rs1+imm]
	OpLdf // ldf fd, imm(rs1)   : fd <- mem64[rs1+imm] (FP view)
	OpSt  // st  rs2, imm(rs1)  : mem64[rs1+imm] <- rs2
	OpStf // stf fs2, imm(rs1)  : mem64[rs1+imm] <- fs2

	// Integer register-register arithmetic.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpSll
	OpSrl
	OpSra
	OpSlt
	OpSltu

	// Integer register-immediate arithmetic.
	OpAddi
	OpAndi
	OpOri
	OpXori
	OpSlli
	OpSrli
	OpSrai
	OpSlti
	OpLi // li rd, imm : rd <- imm (full 64-bit immediate)

	// Floating point.
	OpFadd
	OpFsub
	OpFmul
	OpFdiv
	OpFneg
	OpFabs
	OpFmov
	OpFcvtIF // fcvt.if fd, rs1 : fd <- float64(int64 rs1)
	OpFcvtFI // fcvt.fi rd, fs1 : rd <- int64(float64 fs1)
	OpFlt    // flt rd, fs1, fs2 : rd <- fs1 < fs2
	OpFle    // fle rd, fs1, fs2 : rd <- fs1 <= fs2
	OpFeq    // feq rd, fs1, fs2 : rd <- fs1 == fs2

	// Control transfer. Branch/jump immediates are absolute instruction
	// indices (the assembler resolves labels).
	OpBeq
	OpBne
	OpBlt
	OpBge
	OpBltu
	OpBgeu
	OpJ   // j target
	OpJal // jal rd, target : rd <- return index
	OpJr  // jr rs1, imm    : pc <- rs1 + imm (register indirect)

	OpHalt

	opCount
)

var opNames = [...]string{
	OpNop: "nop",
	OpLd:  "ld", OpLdf: "ldf", OpSt: "st", OpStf: "stf",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpSll: "sll", OpSrl: "srl", OpSra: "sra", OpSlt: "slt", OpSltu: "sltu",
	OpAddi: "addi", OpAndi: "andi", OpOri: "ori", OpXori: "xori",
	OpSlli: "slli", OpSrli: "srli", OpSrai: "srai", OpSlti: "slti", OpLi: "li",
	OpFadd: "fadd", OpFsub: "fsub", OpFmul: "fmul", OpFdiv: "fdiv",
	OpFneg: "fneg", OpFabs: "fabs", OpFmov: "fmov",
	OpFcvtIF: "fcvt.if", OpFcvtFI: "fcvt.fi",
	OpFlt: "flt", OpFle: "fle", OpFeq: "feq",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge",
	OpBltu: "bltu", OpBgeu: "bgeu",
	OpJ: "j", OpJal: "jal", OpJr: "jr",
	OpHalt: "halt",
}

// String returns the assembler mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// NumOps is the number of defined opcodes (useful for table sizing).
const NumOps = int(opCount)

// Inst is one decoded instruction. Fields that an opcode does not use are
// zero; use the accessor predicates rather than switching on Op directly
// where possible.
type Inst struct {
	Op  Op
	Rd  Reg   // destination register (if WritesReg)
	Rs1 Reg   // first source register
	Rs2 Reg   // second source register (or store data register)
	Imm int64 // immediate / displacement / branch target index
}

// IsLoad reports whether the instruction reads data memory.
func (i Inst) IsLoad() bool { return i.Op == OpLd || i.Op == OpLdf }

// IsStore reports whether the instruction writes data memory.
func (i Inst) IsStore() bool { return i.Op == OpSt || i.Op == OpStf }

// IsMem reports whether the instruction accesses data memory.
func (i Inst) IsMem() bool { return i.IsLoad() || i.IsStore() }

// IsBranch reports whether the instruction is a conditional branch.
func (i Inst) IsBranch() bool { return i.Op >= OpBeq && i.Op <= OpBgeu }

// IsJump reports whether the instruction is an unconditional transfer.
func (i Inst) IsJump() bool { return i.Op == OpJ || i.Op == OpJal || i.Op == OpJr }

// IsControl reports whether the instruction may redirect fetch.
func (i Inst) IsControl() bool { return i.IsBranch() || i.IsJump() || i.Op == OpHalt }

// IsArith reports whether the instruction is a register-computing ALU/FPU
// operation — the class that the dynamic vectorizer may convert into vector
// instances when a source operand is vectorized (§3.2 of the paper).
func (i Inst) IsArith() bool {
	switch {
	case i.Op >= OpAdd && i.Op <= OpLi:
		return true
	case i.Op >= OpFadd && i.Op <= OpFeq:
		return true
	}
	return false
}

// IsFPOp reports whether the instruction executes on floating-point units.
func (i Inst) IsFPOp() bool { return i.Op >= OpFadd && i.Op <= OpFeq || i.Op == OpLdf || i.Op == OpStf }

// WritesReg reports whether the instruction produces a register result.
func (i Inst) WritesReg() bool {
	switch {
	case i.IsStore(), i.IsBranch(), i.Op == OpJ, i.Op == OpJr,
		i.Op == OpNop, i.Op == OpHalt:
		return false
	}
	// Writes to the zero register are architecturally discarded.
	return !i.Rd.IsZero() || i.Rd.IsFP()
}

// SrcRegs returns the source registers read by the instruction and how many
// of them are meaningful (0, 1 or 2).
func (i Inst) SrcRegs() (srcs [2]Reg, n int) {
	switch i.Op {
	case OpNop, OpHalt, OpJ, OpJal, OpLi:
		return srcs, 0
	case OpLd, OpLdf, OpJr:
		srcs[0] = i.Rs1
		return srcs, 1
	case OpSt, OpStf:
		srcs[0] = i.Rs1
		srcs[1] = i.Rs2
		return srcs, 2
	case OpAddi, OpAndi, OpOri, OpXori, OpSlli, OpSrli, OpSrai, OpSlti,
		OpFneg, OpFabs, OpFmov, OpFcvtIF, OpFcvtFI:
		srcs[0] = i.Rs1
		return srcs, 1
	default:
		srcs[0] = i.Rs1
		srcs[1] = i.Rs2
		return srcs, 2
	}
}

// HasImmOperand reports whether the instruction combines a register source
// with an immediate (relevant to vectorization: such instructions vectorize
// like vector×scalar operations whose scalar is constant, so no VRMT value
// check is needed).
func (i Inst) HasImmOperand() bool {
	switch i.Op {
	case OpAddi, OpAndi, OpOri, OpXori, OpSlli, OpSrli, OpSrai, OpSlti:
		return true
	}
	return false
}

// String disassembles the instruction.
func (i Inst) String() string {
	switch {
	case i.Op == OpNop || i.Op == OpHalt:
		return i.Op.String()
	case i.IsLoad():
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rd, i.Imm, i.Rs1)
	case i.IsStore():
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rs2, i.Imm, i.Rs1)
	case i.Op == OpLi:
		return fmt.Sprintf("li %s, %d", i.Rd, i.Imm)
	case i.HasImmOperand():
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	case i.IsBranch():
		return fmt.Sprintf("%s %s, %s, @%d", i.Op, i.Rs1, i.Rs2, i.Imm)
	case i.Op == OpJ:
		return fmt.Sprintf("j @%d", i.Imm)
	case i.Op == OpJal:
		return fmt.Sprintf("jal %s, @%d", i.Rd, i.Imm)
	case i.Op == OpJr:
		return fmt.Sprintf("jr %s, %d", i.Rs1, i.Imm)
	case i.Op == OpFneg || i.Op == OpFabs || i.Op == OpFmov ||
		i.Op == OpFcvtIF || i.Op == OpFcvtFI:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Rd, i.Rs1)
	default:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rd, i.Rs1, i.Rs2)
	}
}

// PCToByte converts an instruction index to its I-cache byte address.
func PCToByte(pc uint64) uint64 { return TextBase + pc*InstBytes }

// ByteToPC converts an I-cache byte address back to an instruction index.
func ByteToPC(addr uint64) uint64 { return (addr - TextBase) / InstBytes }
