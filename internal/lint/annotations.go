package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Annotation directives. They are written without a space after `//` so
// gofmt treats them as machine directives and never reflows them.
const (
	hotpathDirective  = "//sdv:hotpath"
	shapeDirective    = "//sdv:shape"
	cachekeyDirective = "//sdv:cachekey"
)

// HotFunc is one //sdv:hotpath-annotated function.
type HotFunc struct {
	PkgPath string
	Name    string // bare function or method name (receiver-less)
	Recv    string // receiver type name, "" for plain functions
	Pos     token.Position
	Decl    *ast.FuncDecl
}

// Annotations is the module-wide table of //sdv: source annotations,
// collected before analyzers run because shape fields and cache-key
// functions cross package boundaries (experiments.Options fields are
// consumed by internal/server key computations).
type Annotations struct {
	// HotFuncs lists every //sdv:hotpath function; hotalloc checks the
	// bodies, and the lint meta-test checks each one is exercised by an
	// allocation-measuring test.
	HotFuncs []HotFunc
	// Shape maps field objects annotated //sdv:shape to their names.
	Shape map[types.Object]string
	// ShapeStructs maps a named struct type to the shape fields it
	// contains, so marshalling the whole struct inside a cache-key
	// function is caught as well as reading a field.
	ShapeStructs map[*types.TypeName][]string
	// CacheKey is the set of //sdv:cachekey function objects.
	CacheKey map[types.Object]bool
}

// CollectAnnotations scans every package for //sdv: directives.
func CollectAnnotations(pkgs []*Package) *Annotations {
	ann := &Annotations{
		Shape:        map[types.Object]string{},
		ShapeStructs: map[*types.TypeName][]string{},
		CacheKey:     map[types.Object]bool{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ann.collectFile(pkg, f)
		}
	}
	return ann
}

// hasDirective reports whether the comment group contains the given
// machine directive. Directive comments are excluded from doc text by
// go/ast, so the raw comment list is scanned.
func hasDirective(cg *ast.CommentGroup, directive string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

func (ann *Annotations) collectFile(pkg *Package, f *ast.File) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if hasDirective(d.Doc, hotpathDirective) {
				ann.HotFuncs = append(ann.HotFuncs, HotFunc{
					PkgPath: pkg.Path,
					Name:    d.Name.Name,
					Recv:    recvTypeName(d),
					Pos:     pkg.Fset.Position(d.Pos()),
					Decl:    d,
				})
			}
			if hasDirective(d.Doc, cachekeyDirective) {
				if obj := pkg.Info.Defs[d.Name]; obj != nil {
					ann.CacheKey[obj] = true
				}
			}
		case *ast.GenDecl:
			if d.Tok != token.TYPE {
				continue
			}
			for _, spec := range d.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				ann.collectStruct(pkg, ts, st)
			}
		}
	}
}

func (ann *Annotations) collectStruct(pkg *Package, ts *ast.TypeSpec, st *ast.StructType) {
	var tn *types.TypeName
	if obj := pkg.Info.Defs[ts.Name]; obj != nil {
		tn, _ = obj.(*types.TypeName)
	}
	for _, field := range st.Fields.List {
		if !hasDirective(field.Doc, shapeDirective) && !hasDirective(field.Comment, shapeDirective) {
			continue
		}
		for _, name := range field.Names {
			obj := pkg.Info.Defs[name]
			if obj == nil {
				continue
			}
			ann.Shape[obj] = name.Name
			if tn != nil {
				ann.ShapeStructs[tn] = append(ann.ShapeStructs[tn], name.Name)
			}
		}
	}
}

// recvTypeName extracts the receiver's base type name ("" for plain
// functions).
func recvTypeName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// shapeStruct returns the shape fields of t (dereferencing pointers and
// following named types), or nil.
func (ann *Annotations) shapeStruct(t types.Type) []string {
	if t == nil {
		return nil
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return ann.ShapeStructs[named.Obj()]
}
