package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects a single package and reports
// through the Pass; the driver handles suppression, ordering and
// aggregation.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass is the per-(analyzer, package) analysis state — a deliberate
// subset of golang.org/x/tools/go/analysis.Pass so the analyzers port
// mechanically if x/tools ever enters the build.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Ann is the module-wide annotation table, collected over every
	// loaded package before any analyzer runs (shape fields and cache-key
	// functions cross package boundaries).
	Ann *Annotations

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expr, or nil.
func (p *Pass) TypeOf(expr ast.Expr) types.Type {
	if tv, ok := p.Pkg.Info.Types[expr]; ok {
		return tv.Type
	}
	return nil
}

// ObjectOf resolves an identifier to its object (use or def).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Pkg.Info.Uses[id]; o != nil {
		return o
	}
	return p.Pkg.Info.Defs[id]
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DetRange,
		ShapeTaint,
		HotAlloc,
		ErrDrop,
		NonDeterm,
	}
}

// RunAnalyzers runs each analyzer over every target package (dependency
// packages contribute annotations but are not themselves diagnosed
// unless they are targets too), filters //sdv:ignore suppressions, and
// returns the findings sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	ann := CollectAnnotations(pkgs)
	sup := collectSuppressions(pkgs)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if !pkg.Target {
			continue
		}
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, Ann: ann, diags: &diags}
			a.Run(pass)
		}
	}
	diags = sup.filter(diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// suppressions maps file -> line -> analyzer names silenced there. An
// entry on line L (a trailing comment or a comment-only line) silences
// diagnostics on L and L+1, so both of these work:
//
//	doThing() //sdv:ignore errdrop -- best effort
//
//	//sdv:ignore detrange -- fan-out order is subscriber-independent
//	for ch := range j.subs {
type suppressions map[string]map[int][]string

const ignoreDirective = "//sdv:ignore"

func collectSuppressions(pkgs []*Package) suppressions {
	sup := suppressions{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ignoreDirective) {
						continue
					}
					rest := strings.TrimPrefix(c.Text, ignoreDirective)
					if cut := strings.Index(rest, "--"); cut >= 0 {
						rest = rest[:cut] // trailing free-form reason
					}
					var names []string
					for _, n := range strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
						names = append(names, n)
					}
					pos := pkg.Fset.Position(c.Pos())
					m := sup[pos.Filename]
					if m == nil {
						m = map[int][]string{}
						sup[pos.Filename] = m
					}
					m[pos.Line] = names
				}
			}
		}
	}
	return sup
}

// filter drops diagnostics silenced by an //sdv:ignore on their line or
// the line above. An empty name list silences every analyzer.
func (s suppressions) filter(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		if s.silenced(d) {
			continue
		}
		out = append(out, d)
	}
	return out
}

func (s suppressions) silenced(d Diagnostic) bool {
	m := s[d.Pos.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		names, ok := m[line]
		if !ok {
			continue
		}
		if len(names) == 0 {
			return true
		}
		for _, n := range names {
			if n == d.Analyzer {
				return true
			}
		}
	}
	return false
}

// pathIn reports whether pkgPath falls under any of the given package
// path suffixes (matched on whole path segments, so "internal/stats"
// matches "specvec/internal/stats" but not "internal/statsdb").
func pathIn(pkgPath string, suffixes []string) bool {
	for _, suf := range suffixes {
		if pkgPath == suf || strings.HasSuffix(pkgPath, "/"+suf) {
			return true
		}
	}
	return false
}
