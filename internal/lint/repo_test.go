package lint

// Repo-level enforcement: the same checks `go run ./cmd/sdvcheck ./...`
// makes in CI run under plain `go test`, so a diagnostic or an
// unbenchmarked hot path fails tier-1 locally too.

import (
	"go/ast"
	"go/parser"
	"os/exec"
	"strings"
	"sync"
	"testing"
)

var (
	repoOnce sync.Once
	repoPkgs []*Package
	repoErr  error
)

// loadRepo loads and type-checks the whole module once per test binary.
func loadRepo(t *testing.T) []*Package {
	t.Helper()
	repoOnce.Do(func() {
		out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
		if err != nil {
			repoErr = err
			return
		}
		repoPkgs, repoErr = Load(strings.TrimSpace(string(out)), "./...")
	})
	if repoErr != nil {
		t.Fatalf("loading module packages: %v", repoErr)
	}
	return repoPkgs
}

// TestRepoIsClean runs the full analyzer suite over every module package
// and fails on any diagnostic — the in-process form of the CI sdvcheck
// gate.
func TestRepoIsClean(t *testing.T) {
	diags := RunAnalyzers(loadRepo(t), Analyzers())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestHotPathsCoveredByAllocBenchmarks asserts that every //sdv:hotpath
// function is reachable, through a name-based call graph, from a test
// that measures allocations (testing.AllocsPerRun or b.ReportAllocs).
// hotalloc catches allocation constructs statically; this meta-test makes
// sure the dynamic side exists too — annotating a function nobody
// measures would let regressions slip through the static analyzer's known
// blind spots (escape-analysis changes, callee-side allocations).
func TestHotPathsCoveredByAllocBenchmarks(t *testing.T) {
	pkgs := loadRepo(t)
	ann := CollectAnnotations(pkgs)
	if len(ann.HotFuncs) < 8 {
		t.Fatalf("collected only %d //sdv:hotpath annotations; the pipeline/trace/core hot loops alone carry more — annotation parsing is broken", len(ann.HotFuncs))
	}

	// Function bodies by bare name, across package files and test files.
	bodies := map[string][]*ast.FuncDecl{}
	var roots []*ast.FuncDecl
	addDecl := func(fd *ast.FuncDecl, testFile bool) {
		if fd.Body == nil {
			return
		}
		bodies[fd.Name.Name] = append(bodies[fd.Name.Name], fd)
		if testFile && mentionsAllocMeasure(fd.Body) {
			roots = append(roots, fd)
		}
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					addDecl(fd, false)
				}
			}
		}
		for _, name := range pkg.TestFiles {
			af, err := parser.ParseFile(pkg.Fset, name, nil, parser.SkipObjectResolution)
			if err != nil {
				t.Fatalf("parsing %s: %v", name, err)
			}
			for _, decl := range af.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					addDecl(fd, true)
				}
			}
		}
	}
	if len(roots) == 0 {
		t.Fatal("no allocation-measuring tests found (AllocsPerRun / ReportAllocs)")
	}

	// BFS over called names from the measuring tests.
	reached := map[string]bool{}
	queue := append([]*ast.FuncDecl(nil), roots...)
	for len(queue) > 0 {
		fd := queue[0]
		queue = queue[1:]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, _ := calleeName(call)
			if name == "" || reached[name] {
				return true
			}
			reached[name] = true
			queue = append(queue, bodies[name]...)
			return true
		})
	}

	for _, hf := range ann.HotFuncs {
		if !reached[hf.Name] {
			label := hf.Name
			if hf.Recv != "" {
				label = hf.Recv + "." + hf.Name
			}
			t.Errorf("//sdv:hotpath %s (%s) is not reached from any allocation-measuring test; add it to a steady-state-allocs test or drop the annotation", label, hf.Pos)
		}
	}
}

// mentionsAllocMeasure reports whether the body references the testing
// package's allocation-measuring API.
func mentionsAllocMeasure(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if id.Name == "AllocsPerRun" || id.Name == "ReportAllocs" {
				found = true
			}
		}
		return !found
	})
	return found
}
