package lint

import (
	"go/ast"
	"go/types"
)

// errDropNames are the method/function names whose errors this repo has
// actually swallowed or must never swallow: Finish (trace.Recorder — the
// PR 4 bug class: a nil-error Finish with a nil trace poisoned sweeps),
// Close/Flush/Sync on write paths, Encode on serializers, Publish on
// artifact stores. Scoped far tighter than errcheck on purpose: these
// names are the repo's resource-finalization vocabulary, so a bare call
// is almost always a bug rather than style.
var errDropNames = map[string]bool{
	"Finish":  true,
	"Close":   true,
	"Flush":   true,
	"Sync":    true,
	"Encode":  true,
	"Publish": true,
}

// ErrDrop flags bare statement calls to finalization/serialization
// methods that return an error. `defer f.Close()` is conventional on
// read-only paths and `_ = f.Close()` is a visible decision; only the
// silent form — the call as its own statement — is flagged.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "silently discarded errors from Finish/Close/Flush/Sync/Encode/Publish calls",
	Run:  runErrDrop,
}

func runErrDrop(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, recv := calleeName(call)
			if !errDropNames[name] {
				return true
			}
			if !returnsError(pass, call) {
				return true
			}
			pass.Reportf(call.Pos(), "error from %s silently discarded; handle it, or write `_ = %s(...)` to make the drop explicit", callLabel(recv, name), callLabel(recv, name))
			return true
		})
	}
}

// returnsError reports whether the call's results include an error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface) && types.IsInterface(t)
}
