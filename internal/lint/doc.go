// Package lint machine-enforces the repository's determinism, hot-path
// and cache-key invariants as a suite of static analyzers, run by
// cmd/sdvcheck and by this package's own tests (so `go test ./...`
// keeps the tree clean even where CI is not involved).
//
// The suite mirrors the golang.org/x/tools/go/analysis shape — an
// Analyzer is a named Run function over a type-checked package, and
// fixtures assert diagnostics against `// want` comments — but is built
// on the standard library alone (go/ast, go/types, `go list`), because
// this module deliberately has no dependencies. If x/tools ever becomes
// available, each Analyzer.Run ports mechanically: the Pass surface is a
// subset of analysis.Pass.
//
// # Analyzers
//
//   - detrange: map iteration whose values reach an ordered sink
//     (serialization, HTTP/stdout writes, appends that are never
//     sorted, channel sends) in determinism-critical packages.
//   - shapetaint: fields annotated //sdv:shape (execution-shape knobs
//     like Workers, Gang, Remote) must never be read inside functions
//     annotated //sdv:cachekey (Canonical/Key/ContentID computations).
//   - hotalloc: allocation-introducing constructs (closures, map/slice
//     literals, make/new, fmt.*, interface boxing, string building)
//     inside functions annotated //sdv:hotpath.
//   - errdrop: errors from Finish/Close/Flush/Encode/Publish/Sync
//     calls silently discarded as bare statements — the recording-error
//     bug class PR 4 fixed by hand. An explicit `_ =` or a `defer` is
//     a visible decision and is not flagged.
//   - nondeterm: time.Now/Since/Until, global math/rand, and selects
//     over multiple channels in packages whose output must be
//     byte-identical across runs.
//
// # Annotation vocabulary
//
//	//sdv:hotpath   on a function: its body must not allocate.
//	//sdv:shape     on a struct field: execution shape only, must never
//	                reach cache keys.
//	//sdv:cachekey  on a function: computes (part of) a cache key or
//	                canonical form; shape fields are forbidden inside.
//	//sdv:ignore a,b -- reason
//	                on or immediately above a line: suppress the named
//	                analyzers there (bare //sdv:ignore suppresses all).
//
// Run locally with:
//
//	go run ./cmd/sdvcheck ./...
package lint
