package lint

// The fixture layer is this suite's analysistest: each analyzer owns a
// testdata/<name>/ directory of small Go files where every line that must
// be flagged carries a `// want "regex"` comment and every clean idiom
// appears without one. The harness type-checks the fixture (stdlib
// imports only), runs the single analyzer through the real driver —
// annotations, suppressions and all — and fails on any diagnostic without
// a matching want, or any want without a matching diagnostic.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

func TestDetRangeFixture(t *testing.T)   { runFixture(t, DetRange) }
func TestShapeTaintFixture(t *testing.T) { runFixture(t, ShapeTaint) }
func TestHotAllocFixture(t *testing.T)   { runFixture(t, HotAlloc) }
func TestErrDropFixture(t *testing.T)    { runFixture(t, ErrDrop) }
func TestNonDetermFixture(t *testing.T)  { runFixture(t, NonDeterm) }

// fixturePathDirective overrides the fixture package's import path, so
// package-scoped analyzers (detrange, nondeterm) see a critical path.
const fixturePathDirective = "//sdvtest:path "

// loadFixture parses and type-checks testdata/<dir> into a lint Package.
func loadFixture(t *testing.T, dir string) *Package {
	t.Helper()
	names, err := filepath.Glob(filepath.Join("testdata", dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no fixture files in testdata/%s (%v)", dir, err)
	}
	sort.Strings(names)

	fset := token.NewFileSet()
	path := "specvec/testdata/" + dir
	var files []*ast.File
	for _, name := range names {
		af, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture %s: %v", name, err)
		}
		for _, cg := range af.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, fixturePathDirective) {
					path = strings.TrimSpace(strings.TrimPrefix(c.Text, fixturePathDirective))
				}
			}
		}
		files = append(files, af)
	}

	info := newInfo()
	conf := types.Config{Importer: fixtureImporter{importer.ForCompiler(fset, "source", nil)}}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}
	return &Package{
		Path:   path,
		Dir:    filepath.Join("testdata", dir),
		Target: true,
		Fset:   fset,
		Files:  files,
		Types:  tpkg,
		Info:   info,
	}
}

// fixtureImporter resolves stdlib imports through the source importer
// and fabricates empty packages for module-internal ("specvec/...")
// paths, so fixtures can exercise import-level bans (nondeterm's obs
// sanction) without the fixture actually depending on module code.
type fixtureImporter struct{ base types.Importer }

func (fi fixtureImporter) Import(path string) (*types.Package, error) {
	if strings.HasPrefix(path, "specvec/") {
		pkg := types.NewPackage(path, path[strings.LastIndexByte(path, '/')+1:])
		pkg.MarkComplete()
		return pkg, nil
	}
	return fi.base.Import(path)
}

var wantQuoted = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// collectWants maps "file:line" to the expectation regexes written there.
func collectWants(t *testing.T, pkg *Package) map[string][]*regexp.Regexp {
	t.Helper()
	wants := map[string][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "// want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, m := range wantQuoted.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, m[1], err)
					}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatal("fixture has no want expectations; a silently idle analyzer would pass")
	}
	return wants
}

// runFixture checks one analyzer's diagnostics against its fixture's
// wants, in both directions.
func runFixture(t *testing.T, a *Analyzer) {
	t.Helper()
	pkg := loadFixture(t, a.Name)
	wants := collectWants(t, pkg)
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})

	hit := map[string][]bool{}
	for key, res := range wants {
		hit[key] = make([]bool, len(res))
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		matched := false
		for i, re := range wants[key] {
			if re.MatchString(d.Message) {
				hit[key][i] = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, res := range wants {
		for i, re := range res {
			if !hit[key][i] {
				t.Errorf("%s: expected a diagnostic matching %q, got none", key, re)
			}
		}
	}
}
