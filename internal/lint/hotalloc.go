package lint

import (
	"go/ast"
	"go/types"
)

// HotAlloc keeps //sdv:hotpath functions allocation-free — the PR 2
// invariant behind the steady-state-zero-allocs cycle loop and the
// 0 allocs/op replay cursors. It flags the constructs that introduce
// heap allocations wholesale: closure literals, map/slice/pointer
// composite literals, make/new, any fmt call, boxing a non-pointer
// value into an interface parameter, runtime string building, and
// string<->byte-slice conversions. Cold branches inside a hot function
// (error paths taken once per run) carry an //sdv:ignore hotalloc with
// a reason.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "allocation-introducing constructs inside //sdv:hotpath functions",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, hotpathDirective) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(nn.Pos(), "closure literal in hot path %s allocates (captured variables escape)", fd.Name.Name)
			return false // don't double-report the closure's own body
		case *ast.CompositeLit:
			switch pass.TypeOf(nn).Underlying().(type) {
			case *types.Map:
				pass.Reportf(nn.Pos(), "map literal in hot path %s allocates", fd.Name.Name)
			case *types.Slice:
				pass.Reportf(nn.Pos(), "slice literal in hot path %s allocates", fd.Name.Name)
			}
		case *ast.UnaryExpr:
			if nn.Op.String() == "&" {
				if _, ok := nn.X.(*ast.CompositeLit); ok {
					pass.Reportf(nn.Pos(), "&composite literal in hot path %s heap-allocates; use a pool or preallocated storage", fd.Name.Name)
				}
			}
		case *ast.BinaryExpr:
			if nn.Op.String() == "+" && isStringType(pass.TypeOf(nn)) && !isConstExpr(pass, nn) {
				pass.Reportf(nn.Pos(), "string concatenation in hot path %s allocates", fd.Name.Name)
			}
		case *ast.CallExpr:
			checkHotCall(pass, fd, nn)
		}
		return true
	})
}

func checkHotCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	// Builtins that allocate.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.ObjectOf(id).(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				pass.Reportf(call.Pos(), "make in hot path %s allocates; preallocate in setup code", fd.Name.Name)
			case "new":
				pass.Reportf(call.Pos(), "new in hot path %s allocates; use pooled or preallocated storage", fd.Name.Name)
			case "append":
				// append is how the preallocated journal stacks and rings
				// grow back to high-water marks; amortized-zero by design,
				// so not flagged.
			}
			return
		}
	}

	// Conversions: string([]byte) and []byte(string) copy.
	if tv, ok := pass.Pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, pass.TypeOf(call.Args[0])
		if isStringByteConversion(to, from) {
			pass.Reportf(call.Pos(), "string/[]byte conversion in hot path %s copies and allocates", fd.Name.Name)
		}
		return
	}

	// Any fmt call formats through reflection and allocates.
	if obj := calleeObject(pass, call); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s in hot path %s allocates (boxing + formatting)", obj.Name(), fd.Name.Name)
		return
	}

	// Boxing: a non-pointer concrete value passed where an interface is
	// expected allocates (the value escapes into the interface).
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // passing an existing slice through does not box
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := pass.TypeOf(arg)
		if at == nil || types.IsInterface(at) || isUntypedNil(pass, arg) {
			continue
		}
		if _, isPtr := at.Underlying().(*types.Pointer); isPtr {
			continue // pointers fit in the interface word without allocating
		}
		pass.Reportf(arg.Pos(), "value of type %s boxed into interface parameter in hot path %s allocates", at, fd.Name.Name)
	}
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isConstExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[e]
	return ok && tv.Value != nil
}

func isUntypedNil(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

func isStringByteConversion(to, from types.Type) bool {
	return (isStringType(to) && isByteSlice(from)) || (isByteSlice(to) && isStringType(from))
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune)
}
