package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// deterministicPackages must produce byte-identical behaviour given the
// same inputs — they are the replay/simulation core whose determinism
// every cache key, gang replay and cluster-requeue guarantee rests on.
// The concurrency layers (experiments scheduling, the server) are
// excluded: they use wall-clock time and channels legitimately, and
// their determinism is enforced at the output level (detrange plus the
// byte-identity test suites).
var deterministicPackages = []string{
	"internal/asm",
	"internal/branch",
	"internal/config",
	"internal/core",
	"internal/emu",
	"internal/isa",
	"internal/mem",
	"internal/pipeline",
	"internal/stats",
	"internal/trace",
	"internal/workload",
	"internal/wspec",
}

// sanctionedPackages are the observability layer: obs is the one place
// the serving side reads the wall clock (clock injection lives there),
// so the analyzer never inspects it — and, in exchange, no
// deterministic package may import it. The import ban keeps the
// sanction from leaking: a sim-core package cannot launder a wall-clock
// read through obs.Clock.
var sanctionedPackages = []string{
	"internal/obs",
}

// NonDeterm flags ambient nondeterminism inside deterministic packages:
// wall-clock reads (time.Now/Since/Until), the globally-seeded
// math/rand sources (the repo's seeded splitmix64/LCG streams are the
// sanctioned randomness), and select statements over multiple channels
// (the runtime picks among ready cases pseudo-randomly).
var NonDeterm = &Analyzer{
	Name: "nondeterm",
	Doc:  "time.Now, global math/rand and multi-channel selects in deterministic packages",
	Run:  runNonDeterm,
}

var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// seededConstructors build a caller-owned source from an explicit seed
// and are therefore fine; everything else package-level on math/rand
// draws from the shared global source.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runNonDeterm(pass *Pass) {
	if !pathIn(pass.Pkg.Path, deterministicPackages) {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if pathIn(path, sanctionedPackages) {
				pass.Reportf(imp.Pos(), "deterministic package imports %s, which is sanctioned to read the wall clock; keep observability out of the simulation core (instrument from the caller instead)", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch nn := n.(type) {
			case *ast.SelectStmt:
				comms := 0
				for _, cl := range nn.Body.List {
					if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
						comms++
					}
				}
				if comms >= 2 {
					pass.Reportf(nn.Pos(), "select over %d channels chooses a ready case pseudo-randomly; deterministic packages must poll in a fixed order", comms)
				}
			case *ast.SelectorExpr:
				if !isPackageQualified(pass, nn) {
					return true
				}
				obj := pass.ObjectOf(nn.Sel)
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				switch obj.Pkg().Path() {
				case "time":
					if wallClockFuncs[obj.Name()] {
						pass.Reportf(nn.Pos(), "time.%s reads the wall clock in a deterministic package; thread cycle counts or explicit timestamps instead", obj.Name())
					}
				case "math/rand", "math/rand/v2":
					if !seededConstructors[obj.Name()] {
						pass.Reportf(nn.Pos(), "math/rand.%s uses the shared global source; derive a seeded stream instead (see workload.rng / the wspec splitmix64 streams)", obj.Name())
					}
				}
			}
			return true
		})
	}
}

// isPackageQualified reports whether sel is pkg.Name — a package
// qualifier resolves to a *types.PkgName — as opposed to a field or
// method selection on a value.
func isPackageQualified(pass *Pass, sel *ast.SelectorExpr) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	_, isPkgName := pass.Pkg.Info.Uses[id].(*types.PkgName)
	return isPkgName
}
