package lint

import (
	"go/ast"
)

// ShapeTaint enforces the invariant PRs 5-8 state in prose: execution
// shape — worker counts, gang sizes, cluster placement — never enters a
// cache key or canonical form, because results are byte-identical across
// all of them and keying on them would fragment (or worse, poison) the
// content-addressed caches. Fields annotated //sdv:shape must not be
// read inside functions annotated //sdv:cachekey, nor may a struct
// containing shape fields be handed whole to a formatter or serializer
// there.
var ShapeTaint = &Analyzer{
	Name: "shapetaint",
	Doc:  "//sdv:shape fields must never flow into //sdv:cachekey computations",
	Run:  runShapeTaint,
}

func runShapeTaint(pass *Pass) {
	if len(pass.Ann.Shape) == 0 && len(pass.Ann.ShapeStructs) == 0 {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.Pkg.Info.Defs[fd.Name]
			if obj == nil || !pass.Ann.CacheKey[obj] {
				continue
			}
			checkCacheKeyFunc(pass, fd)
		}
	}
}

func checkCacheKeyFunc(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.SelectorExpr:
			if obj := pass.ObjectOf(nn.Sel); obj != nil {
				if name, ok := pass.Ann.Shape[obj]; ok {
					pass.Reportf(nn.Pos(), "execution-shape field %s (//sdv:shape) read inside cache-key function %s; shape must never reach cache keys", name, fd.Name.Name)
				}
			}
		case *ast.CallExpr:
			// Handing a whole struct that contains shape fields to a
			// serializer or formatter leaks the shape implicitly.
			if !isSerializingCall(pass, nn) {
				return true
			}
			for _, arg := range nn.Args {
				if fields := pass.Ann.shapeStruct(pass.TypeOf(arg)); len(fields) > 0 {
					pass.Reportf(arg.Pos(), "whole struct with //sdv:shape fields %v serialized inside cache-key function %s; serialize the semantic fields explicitly", fields, fd.Name.Name)
				}
			}
		}
		return true
	})
}

// isSerializingCall reports whether the call renders its arguments:
// encoding/json Marshal/Encode, fmt formatting, or a hash/stream Write.
func isSerializingCall(pass *Pass, call *ast.CallExpr) bool {
	obj := calleeObject(pass, call)
	if obj != nil && obj.Pkg() != nil {
		switch obj.Pkg().Path() {
		case "fmt", "encoding/json", "encoding/gob":
			return true
		}
	}
	name, _ := calleeName(call)
	switch name {
	case "Write", "Encode", "Marshal", "MarshalJSON", "Sum", "Fprintf", "Sprintf":
		return true
	}
	return false
}
