package lint

import (
	"go/ast"
	"go/types"
)

// detCriticalPackages are the packages whose outputs must be
// byte-identical across runs: statistics and their JSON form, trace
// recordings (snapshots embed memory pages), workload-spec canonical
// forms, experiment tables, the HTTP service's responses, and the
// emulator state that trace checkpoints serialize.
var detCriticalPackages = []string{
	"internal/stats",
	"internal/trace",
	"internal/wspec",
	"internal/experiments",
	"internal/server",
	"internal/emu",
}

// DetRange flags map iteration whose per-iteration effect is
// order-sensitive — writing to a stream or serializer, appending to a
// slice that is never sorted, sending on a channel — inside
// determinism-critical packages. Order-neutral bodies (counting,
// summing, min/max selection, writing into another map) are not
// flagged, and the collect-then-sort idiom (append keys, sort, then
// iterate the slice — stats.SortedKeys) is recognized as the fix.
var DetRange = &Analyzer{
	Name: "detrange",
	Doc:  "unsorted map iteration reaching serialization or output paths in determinism-critical packages",
	Run:  runDetRange,
}

func runDetRange(pass *Pass) {
	if !pathIn(pass.Pkg.Path, detCriticalPackages) {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if !isMapType(pass.TypeOf(rs.X)) {
					return true
				}
				if sink := mapRangeSink(pass, fd, rs); sink != "" {
					pass.Reportf(rs.Pos(), "map iteration order is random and %s; sort the keys first (see stats.SortedKeys) or make the consumer order-independent", sink)
				}
				return true
			})
		}
	}
}

// isMapType reports whether t is a map, unwrapping type parameters whose
// constraint mentions maps (so generic helpers like stats.SortedKeys are
// analyzed too).
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	if tp, ok := t.(*types.TypeParam); ok {
		iface, ok := tp.Constraint().Underlying().(*types.Interface)
		if !ok {
			return false
		}
		for i := 0; i < iface.NumEmbeddeds(); i++ {
			emb := iface.EmbeddedType(i)
			if _, ok := emb.Underlying().(*types.Map); ok {
				return true
			}
			if un, ok := emb.(*types.Union); ok {
				for j := 0; j < un.Len(); j++ {
					if _, ok := un.Term(j).Type().Underlying().(*types.Map); ok {
						return true
					}
				}
			}
		}
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// mapRangeSink inspects the loop body for an order-sensitive effect and
// describes the first one found ("" means the body is order-neutral).
func mapRangeSink(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) string {
	var sink string
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch nn := n.(type) {
		case *ast.SendStmt:
			sink = "each iteration sends on a channel"
			return false
		case *ast.CallExpr:
			if s := callSink(pass, fd, rs, nn); s != "" {
				sink = s
				return false
			}
		}
		return true
	})
	return sink
}

// callSink classifies one call inside a map-range body.
func callSink(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, call *ast.CallExpr) string {
	// append(dst, ...) into a slice declared outside the loop: ordered
	// collection, unless dst is sorted later in the same function.
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
		if _, isBuiltin := pass.ObjectOf(id).(*types.Builtin); isBuiltin && len(call.Args) > 0 {
			dst, ok := call.Args[0].(*ast.Ident)
			if !ok {
				return ""
			}
			obj := pass.ObjectOf(dst)
			if obj == nil || !obj.Pos().IsValid() || obj.Pos() >= rs.Pos() {
				return "" // loop-local accumulator: out of scope after the loop
			}
			if sortedAfter(pass, fd, rs, obj) {
				return ""
			}
			return "each iteration appends to " + dst.Name + ", which is never sorted afterwards"
		}
		return ""
	}

	name, recv := calleeName(call)
	// Ordered emission through fmt.
	if obj := calleeObject(pass, call); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		return "each iteration formats output via fmt." + obj.Name()
	}
	// Serialization and stream writes by method name.
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Encode", "Marshal", "MarshalJSON":
		if recv != "" || name == "Marshal" {
			return "each iteration writes to a stream or serializer (" + callLabel(recv, name) + ")"
		}
	}
	return ""
}

// sortedAfter reports whether obj (a slice) is passed to a sort.* or
// slices.Sort* call after the range statement, anywhere in the enclosing
// function — the collect-then-sort idiom.
func sortedAfter(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		callee := calleeObject(pass, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		if p := callee.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if argMentions(pass, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// argMentions reports whether expr references obj (directly or inside a
// conversion / closure argument like sort.Slice(out, func...)).
func argMentions(pass *Pass, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}

// calleeName returns the called function's bare name and, for method
// calls, a receiver label.
func calleeName(call *ast.CallExpr) (name, recv string) {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name, ""
	case *ast.SelectorExpr:
		if id, ok := fn.X.(*ast.Ident); ok {
			return fn.Sel.Name, id.Name
		}
		return fn.Sel.Name, "_"
	}
	return "", ""
}

// calleeObject resolves the called function to its object, or nil.
func calleeObject(pass *Pass, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.ObjectOf(fn)
	case *ast.SelectorExpr:
		return pass.ObjectOf(fn.Sel)
	}
	return nil
}

func callLabel(recv, name string) string {
	if recv == "" {
		return name
	}
	return recv + "." + name
}
