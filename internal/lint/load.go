package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked package under analysis. Test files are
// deliberately absent: the invariants the suite enforces are about
// shipped code, and every analyzer's scope statement says "outside
// _test.go".
type Package struct {
	Path   string // import path
	Dir    string
	Target bool // matched the requested patterns (vs. pulled in as a dep)
	Fset   *token.FileSet
	Files  []*ast.File
	Types  *types.Package
	Info   *types.Info

	// TestFiles are the package's _test.go file paths (internal and
	// external test packages), parsed on demand by the meta-test layer;
	// they are never type-checked here.
	TestFiles []string
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath   string
	Dir          string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	Standard     bool
	DepOnly      bool
}

// Load type-checks the packages matching patterns (resolved by the go
// command from dir, so "./..." works anywhere inside the module) plus
// every module-local dependency, returning them in dependency order.
// Standard-library imports resolve through the compiler's source
// importer; nothing is fetched from the network.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.Bytes())
	}

	fset := token.NewFileSet()
	ld := &loader{
		fset:    fset,
		listed:  map[string]*listedPackage{},
		checked: map[string]*Package{},
		std:     importer.ForCompiler(fset, "source", nil),
	}
	var order []string
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		lp := p
		ld.listed[p.ImportPath] = &lp
		if !p.Standard {
			order = append(order, p.ImportPath)
		}
	}

	var pkgs []*Package
	for _, path := range order {
		pkg, err := ld.check(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// loader type-checks module packages in dependency order (`go list
// -deps` emits dependencies first), chaining to the source importer for
// the standard library.
type loader struct {
	fset    *token.FileSet
	listed  map[string]*listedPackage
	checked map[string]*Package
	std     types.Importer
}

// Import implements types.Importer for module-local and stdlib paths.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.checked[path]; ok {
		return p.Types, nil
	}
	if lp, ok := l.listed[path]; ok && !lp.Standard {
		p, err := l.check(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

func (l *loader) check(path string) (*Package, error) {
	if p, ok := l.checked[path]; ok {
		return p, nil
	}
	lp, ok := l.listed[path]
	if !ok {
		return nil, fmt.Errorf("lint: package %s not in go list output", path)
	}
	if len(lp.CgoFiles) > 0 {
		return nil, fmt.Errorf("lint: package %s uses cgo, which the analyzer loader does not support", path)
	}
	var files []*ast.File
	for _, name := range lp.GoFiles {
		af, err := parser.ParseFile(l.fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, af)
	}
	info := newInfo()
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	var testFiles []string
	for _, name := range lp.TestGoFiles {
		testFiles = append(testFiles, filepath.Join(lp.Dir, name))
	}
	for _, name := range lp.XTestGoFiles {
		testFiles = append(testFiles, filepath.Join(lp.Dir, name))
	}
	p := &Package{
		Path:      path,
		Dir:       lp.Dir,
		Target:    !lp.DepOnly,
		Fset:      l.fset,
		Files:     files,
		Types:     tpkg,
		Info:      info,
		TestFiles: testFiles,
	}
	l.checked[path] = p
	return p, nil
}

// newInfo allocates the types.Info maps every analyzer relies on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}
