//sdvtest:path specvec/internal/trace

package nondeterm

import (
	"math/rand"
	"time"

	// The observability layer is sanctioned to read the wall clock, so a
	// deterministic package cannot import it — not even blank — lest a
	// sim-core package launder time.Now through obs.Clock: flagged.
	_ "specvec/internal/obs" // want "deterministic package imports specvec/internal/obs"
)

// stamp reads the wall clock: flagged.
func stamp() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}

// jitter draws from the shared global source: flagged.
func jitter() int {
	return rand.Intn(8) // want "math/rand.Intn uses the shared global source"
}

// seeded builds a caller-owned source from an explicit seed: clean.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(8)
}

// merge races two channels; the runtime picks pseudo-randomly: flagged.
func merge(a, b <-chan int) int {
	select { // want "select over 2 channels"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// single polls one channel with a default arm, which is a fixed order:
// clean.
func single(a <-chan int) int {
	select {
	case v := <-a:
		return v
	default:
	}
	return 0
}

// elapsed subtracts explicit timestamps, not the wall clock: clean.
func elapsed(start, end time.Time) time.Duration {
	return end.Sub(start)
}
