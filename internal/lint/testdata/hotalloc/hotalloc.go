package hotalloc

import "fmt"

type sim struct {
	buf   []int
	cycle uint64
}

type sink interface{ accept(v any) }

// step is the per-cycle hot loop: every allocating construct is flagged.
//
//sdv:hotpath
func (s *sim) step() {
	s.cycle++
	s.buf = append(s.buf, int(s.cycle)) // amortized ring growth: clean
	m := map[string]int{}               // want "map literal in hot path step allocates"
	_ = m
	sl := []int{1, 2, 3} // want "slice literal in hot path step allocates"
	_ = sl
	p := &sim{} // want "composite literal in hot path step heap-allocates"
	_ = p
	q := make([]byte, 8) // want "make in hot path step allocates"
	_ = q
	fmt.Sprintf("cycle %d", s.cycle) // want "fmt.Sprintf in hot path step allocates"
}

// observe builds a closure on the hot path: flagged.
//
//sdv:hotpath
func (s *sim) observe() {
	cb := func() { s.cycle++ } // want "closure literal in hot path observe allocates"
	cb()
}

// publish boxes a value into an interface parameter: flagged for the
// value, clean for the pointer (it fits the interface word).
//
//sdv:hotpath
func (s *sim) publish(k sink) {
	k.accept(s.cycle) // want "boxed into interface parameter"
	k.accept(s)
}

// label concatenates at runtime: flagged.
//
//sdv:hotpath
func label(a, b string) string {
	return a + b // want "string concatenation in hot path label allocates"
}

// bytesOf converts string to bytes, which copies: flagged.
//
//sdv:hotpath
func bytesOf(s string) []byte {
	return []byte(s) // want "conversion in hot path bytesOf copies and allocates"
}

// fail is a cold error path inside a hot function family; the ignore
// carries the reason: clean.
//
//sdv:hotpath
func (s *sim) fail() string {
	return fmt.Sprintf("sim wedged at cycle %d", s.cycle) //sdv:ignore hotalloc -- fixture: cold error path
}

// setup runs once; no annotation, so nothing is flagged.
func setup() *sim {
	return &sim{buf: make([]int, 0, 1024)}
}
