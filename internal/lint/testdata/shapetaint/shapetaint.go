package shapetaint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Options mirrors the experiments option block: semantic fields that
// change results, plus execution-shape knobs that must never be keyed on.
type Options struct {
	Scale int
	Seed  int64

	//sdv:shape
	Workers int

	//sdv:shape
	Gang int
}

// Key hashes the semantic fields only: clean.
//
//sdv:cachekey
func Key(o Options) string {
	h := sha256.New()
	fmt.Fprintf(h, "%d/%d", o.Scale, o.Seed)
	return hex.EncodeToString(h.Sum(nil))
}

// BadKey reads a shape field inside the key computation: flagged.
//
//sdv:cachekey
func BadKey(o Options) string {
	h := sha256.New()
	fmt.Fprintf(h, "%d/%d/%d", o.Scale, o.Seed, o.Workers) // want "execution-shape field Workers"
	return hex.EncodeToString(h.Sum(nil))
}

// BadWholeStruct serializes the whole struct, leaking the shape fields
// implicitly: flagged.
//
//sdv:cachekey
func BadWholeStruct(o Options) string {
	b, _ := json.Marshal(o) // want "whole struct with //sdv:shape fields"
	return string(b)
}

// Schedule is not a cache-key function, so shape reads are fine: clean.
func Schedule(o Options) int {
	return o.Workers * o.Gang
}
