package errdrop

import "os"

type recorder struct{}

func (recorder) Finish() error { return nil }
func (recorder) Abort()        {}

// bad drops finalization errors silently: every call is flagged.
func bad(f *os.File, r recorder) {
	r.Finish() // want "error from r.Finish silently discarded"
	f.Close()  // want "error from f.Close silently discarded"
	f.Sync()   // want "error from f.Sync silently discarded"
}

// good handles, defers or visibly discards: clean.
func good(f *os.File, r recorder) error {
	defer f.Close()
	if err := r.Finish(); err != nil {
		return err
	}
	_ = f.Sync()
	r.Abort()
	return nil
}

// suppressed documents a deliberate best-effort drop: clean.
func suppressed(f *os.File) {
	f.Close() //sdv:ignore errdrop -- fixture: best-effort cleanup
}
