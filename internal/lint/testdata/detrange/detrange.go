//sdvtest:path specvec/internal/stats

package detrange

import (
	"fmt"
	"io"
	"sort"
)

// emitUnsorted streams entries straight out of the map: flagged.
func emitUnsorted(m map[string]int) {
	for k, v := range m { // want "map iteration order is random"
		fmt.Printf("%s=%d\n", k, v)
	}
}

// collectNoSort gathers keys in iteration order and hands them out
// unsorted: flagged.
func collectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want "never sorted afterwards"
		keys = append(keys, k)
	}
	return keys
}

// writeUnsorted serializes each entry as it comes: flagged.
func writeUnsorted(m map[string]int, w io.Writer) {
	for k := range m { // want "writes to a stream or serializer"
		w.Write([]byte(k))
	}
}

// fanOut sends per iteration: flagged.
func fanOut(m map[string]int, ch chan<- string) {
	for k := range m { // want "sends on a channel"
		ch <- k
	}
}

// sortedKeys is the sanctioned collect-then-sort idiom: clean.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sum is order-neutral accumulation: clean.
func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// invert writes into another map, which is order-neutral: clean.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// suppressed documents a deliberate exception: clean.
func suppressed(m map[string]int, ch chan<- string) {
	//sdv:ignore detrange -- fixture: order is consumer-independent here
	for k := range m {
		ch <- k
	}
}
