package pipeline

import (
	"testing"

	"specvec/internal/config"
	"specvec/internal/isa"
)

// bigCodeLoop builds a loop whose body exceeds the 64KB I-cache (8
// instructions per 64-byte line -> needs > 8192 instructions of code).
func bigCodeLoop() *isa.Program {
	b := isa.NewBuilder("bigcode")
	r := isa.IntReg
	b.Li(r(1), 0)
	b.Li(r(2), 12)
	b.Label("loop")
	for i := 0; i < 9000; i++ {
		b.Addi(r(3), r(3), 1)
	}
	b.Addi(r(1), r(1), 1)
	b.Blt(r(1), r(2), "loop")
	b.Halt()
	return b.MustBuild()
}

func TestICachePressure(t *testing.T) {
	st := run(t, config.FourWay(), bigCodeLoop())
	if st.L1IMisses == 0 {
		t.Error("64KB+ loop body produced no I-cache misses")
	}
	// Every loop iteration re-misses the whole body (capacity), so the
	// miss count must scale with iterations, not just the first pass.
	if st.L1IMisses < 2*9000/8 {
		t.Errorf("I-misses = %d, want capacity misses across iterations", st.L1IMisses)
	}
}

func TestMSHRLimitStallsLoads(t *testing.T) {
	// A load-dense streaming kernel against a tiny MSHR pool must record
	// MSHR stalls.
	cfg := config.MustNamed(4, 4, config.ModeNoIM)
	cfg.Mem.MSHRs = 2
	b := isa.NewBuilder("stream")
	r := isa.IntReg
	b.DataZero("a", 8192)
	b.LoadAddr(r(1), "a")
	b.Li(r(2), 0)
	b.Li(r(3), 2000)
	b.Label("loop")
	b.Ld(r(4), r(1), 0)
	b.Ld(r(5), r(1), 256) // distinct lines: misses
	b.Ld(r(6), r(1), 512)
	b.Ld(r(7), r(1), 768)
	b.Addi(r(1), r(1), 8)
	b.Addi(r(2), r(2), 1)
	b.Blt(r(2), r(3), "loop")
	b.Halt()
	st := run(t, cfg, b.MustBuild())
	if st.MSHRStallCycles == 0 {
		t.Error("2-entry MSHR pool never stalled a streaming kernel")
	}
}

func TestEightWayBeatsFourWayOnILP(t *testing.T) {
	// A wide independent-operation body should profit from the 8-way core.
	b := isa.NewBuilder("ilp")
	r := isa.IntReg
	b.Li(r(1), 0)
	b.Li(r(2), 3000)
	b.Label("loop")
	for i := 3; i < 27; i++ {
		b.Addi(r(i), r(i), 1) // 24 independent adds
	}
	b.Addi(r(1), r(1), 1)
	b.Blt(r(1), r(2), "loop")
	b.Halt()
	prog := b.MustBuild()
	ipc4 := run(t, config.MustNamed(4, 1, config.ModeNoIM), prog).IPC()
	ipc8 := run(t, config.MustNamed(8, 1, config.ModeNoIM), prog).IPC()
	if ipc8 < ipc4*1.3 {
		t.Errorf("8-way (%.2f) not clearly above 4-way (%.2f) on pure ILP", ipc8, ipc4)
	}
}

func TestIndirectJumpStalls(t *testing.T) {
	// Call/return through jal and jr: the return-address stack must
	// predict the returns, so jump mispredicts stay near zero and the
	// program completes correctly.
	b := isa.NewBuilder("indirect")
	r := isa.IntReg
	b.Li(r(1), 0)
	b.Li(r(2), 400)
	b.Label("loop")
	b.Jal(r(31), "fn")
	b.Addi(r(1), r(1), 1)
	b.Blt(r(1), r(2), "loop")
	b.Halt()
	b.Label("fn")
	b.Addi(r(6), r(6), 1)
	b.Jr(r(31), 0)
	st := run(t, config.FourWay(), b.MustBuild())
	if st.Committed == 0 {
		t.Fatal("no progress")
	}
	// Returns are RAS-predicted: near-zero jump mispredicts expected.
	if st.JumpMispredicts > st.Committed/50 {
		t.Errorf("RAS ineffective: %d jump mispredicts", st.JumpMispredicts)
	}
}

func TestStoreCommitLimit(t *testing.T) {
	// A store-only loop can commit at most 2 stores per cycle (§3.6):
	// IPC of a 4-store body is bounded accordingly.
	b := isa.NewBuilder("stores")
	r := isa.IntReg
	b.DataZero("a", 4096)
	b.LoadAddr(r(1), "a")
	b.Li(r(2), 0)
	b.Li(r(3), 4000)
	b.Label("loop")
	b.St(r(2), r(1), 0)
	b.St(r(2), r(1), 8)
	b.St(r(2), r(1), 16)
	b.St(r(2), r(1), 24)
	b.Addi(r(1), r(1), 32)
	b.Addi(r(2), r(2), 1)
	b.Blt(r(2), r(3), "loop")
	b.Halt()
	cfg := config.MustNamed(4, 4, config.ModeNoIM)
	st := run(t, cfg, b.MustBuild())
	// 7 instructions per iteration, 4 stores -> at least 2 cycles just for
	// store commit: IPC <= 3.5 even on a 4-wide core.
	if st.IPC() > 3.5 {
		t.Errorf("IPC %.2f exceeds the 2-stores-per-cycle commit bound", st.IPC())
	}
}
