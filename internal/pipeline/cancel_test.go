package pipeline

import (
	"context"
	"errors"
	"testing"

	"specvec/internal/config"
)

// TestRunCancelled pins the service-layer contract: a cancelled context
// stops a run early with the context's error, well before the commit
// limit.
func TestRunCancelled(t *testing.T) {
	prog := intervalProg(t, "compress")
	cfg := config.MustNamed(4, 1, config.ModeV)
	sim := intervalSim(t, cfg, prog)

	ctx, cancel := context.WithCancel(context.Background())
	sim.SetContext(ctx)
	var fired bool
	sim.SetProgress(500, func(committed uint64) {
		if !fired {
			fired = true
			cancel()
		}
	})
	st, err := sim.Run(1 << 62)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if !fired {
		t.Fatal("progress callback never fired")
	}
	// The poll interval (4096 cycles) bounds how far past the cancellation
	// the run got: at most one poll window of commits.
	if st.Committed > 500+uint64(cfg.CommitWidth)*2*4096 {
		t.Fatalf("run continued long after cancel: %d committed", st.Committed)
	}
}

// TestProgressDoesNotPerturbResults asserts a run observed through
// SetContext/SetProgress stays byte-identical to an unobserved one.
func TestProgressDoesNotPerturbResults(t *testing.T) {
	prog := intervalProg(t, "compress")
	cfg := config.MustNamed(4, 1, config.ModeV)

	plain, err := intervalSim(t, cfg, prog).Run(8000)
	if err != nil {
		t.Fatal(err)
	}
	observed := intervalSim(t, cfg, prog)
	observed.SetContext(context.Background())
	ticks := 0
	observed.SetProgress(1000, func(uint64) { ticks++ })
	got, err := observed.Run(8000)
	if err != nil {
		t.Fatal(err)
	}
	if ticks == 0 {
		t.Fatal("no progress ticks over 8000 committed instructions")
	}
	if plain.String() != got.String() {
		t.Fatalf("observed run diverged:\n%s\nvs\n%s", plain, got)
	}
}
