package pipeline

import (
	"math/rand"
	"testing"

	"specvec/internal/config"
	"specvec/internal/emu"
	"specvec/internal/isa"
)

// randomProgram generates a structurally valid program: a counted loop
// whose body is a random mix of arithmetic, loads and stores over a
// scratch array, with an occasional data-dependent branch. Every program
// halts; the interesting behaviour (strides, aliasing, vectorization,
// conflicts, mispredictions) emerges from the random body.
func randomProgram(rng *rand.Rand) *isa.Program {
	b := isa.NewBuilder("fuzz")
	words := make([]uint64, 256)
	for i := range words {
		words[i] = rng.Uint64() % 1000
	}
	b.DataWords("scratch", words)

	r := isa.IntReg
	// r1: array cursor, r2: loop counter, r3: bound, r4..r12: temps.
	b.LoadAddr(r(1), "scratch")
	b.Li(r(2), 0)
	b.Li(r(3), int64(50+rng.Intn(200)))
	for i := 4; i <= 12; i++ {
		b.Li(r(i), int64(rng.Intn(100)))
	}
	b.Label("loop")

	bodyLen := 3 + rng.Intn(12)
	skipLabel := ""
	for i := 0; i < bodyLen; i++ {
		dst := r(4 + rng.Intn(9))
		s1 := r(4 + rng.Intn(9))
		s2 := r(4 + rng.Intn(9))
		off := int64(rng.Intn(16) * 8)
		switch rng.Intn(10) {
		case 0, 1, 2:
			b.Ld(dst, r(1), off)
		case 3:
			b.St(s1, r(1), off)
		case 4:
			b.Add(dst, s1, s2)
		case 5:
			b.Sub(dst, s1, s2)
		case 6:
			b.Mul(dst, s1, s2)
		case 7:
			b.Xor(dst, s1, s2)
		case 8:
			b.Addi(dst, s1, int64(rng.Intn(64)))
		case 9:
			if skipLabel == "" {
				// Forward data-dependent branch over the next chunk.
				skipLabel = "skip"
				b.Slti(r(13), s1, int64(rng.Intn(1000)))
				b.Bne(r(13), r(0), "skip")
				b.Addi(dst, s1, 1)
				b.Label("skip")
			}
		}
	}

	// Advance cursor with a random (possibly zero) stride, wrapping inside
	// the scratch array via masking every 32 iterations.
	stride := int64(rng.Intn(4) * 8)
	b.Addi(r(1), r(1), stride)
	b.Andi(r(14), r(2), 31)
	b.Bne(r(14), r(0), "noreset")
	b.LoadAddr(r(1), "scratch")
	b.Label("noreset")

	b.Addi(r(2), r(2), 1)
	b.Blt(r(2), r(3), "loop")
	b.Halt()
	return b.MustBuild()
}

// TestFuzzOracleEquivalence: for random programs and every mode, the
// timing simulator must commit exactly the functional execution and end
// with identical architectural state.
func TestFuzzOracleEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20020525)) // ISCA 2002 ;-)
	for trial := 0; trial < 25; trial++ {
		prog := randomProgram(rng)

		gold, err := emu.New(prog)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := gold.Run(5_000_000); err != nil {
			t.Fatalf("trial %d: functional run: %v", trial, err)
		}

		for _, mode := range []config.Mode{config.ModeNoIM, config.ModeIM, config.ModeV} {
			cfg := config.MustNamed(4, 1, mode)
			s, err := New(cfg, prog)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Run(1 << 62); err != nil {
				t.Fatalf("trial %d mode %s: %v", trial, mode, err)
			}
			if s.Stats().Committed != gold.InstCount()-1 {
				t.Fatalf("trial %d mode %s: committed %d, want %d",
					trial, mode, s.Stats().Committed, gold.InstCount()-1)
			}
			for i := 0; i < isa.NumIntRegs; i++ {
				if s.Machine().IntReg(i) != gold.IntReg(i) {
					t.Fatalf("trial %d mode %s: r%d = %d, want %d",
						trial, mode, i, s.Machine().IntReg(i), gold.IntReg(i))
				}
			}
			// Memory effects must match too: compare the scratch array.
			base := prog.DataSyms["scratch"]
			for w := uint64(0); w < 256; w++ {
				got := s.Machine().Mem().Read64(base + w*8)
				want := gold.Mem().Read64(base + w*8)
				if got != want {
					t.Fatalf("trial %d mode %s: scratch[%d] = %d, want %d",
						trial, mode, w, got, want)
				}
			}
		}
	}
}

// TestValidationElementConservation: every committed validation sets
// exactly one element's V flag, and every V element is eventually
// accounted as "computed and used" — the two counters must agree.
func TestValidationElementConservation(t *testing.T) {
	cfg := config.MustNamed(4, 1, config.ModeV)
	for _, prog := range []*isa.Program{sumLoop(500), fpStencil(300), noisyBranchLoop(400), storeConflictLoop(300)} {
		s, err := New(cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		st, err := s.Run(1 << 62)
		if err != nil {
			t.Fatal(err)
		}
		if st.ElemsComputedUsed != st.Validations() {
			t.Errorf("%s: used elements %d != committed validations %d",
				prog.Name, st.ElemsComputedUsed, st.Validations())
		}
		total := st.ElemsComputedUsed + st.ElemsComputedUnused + st.ElemsNotComputed
		if total != st.VRegsFreed*uint64(cfg.VectorLen) {
			t.Errorf("%s: element accounting %d != 4 * %d freed registers",
				prog.Name, total, st.VRegsFreed)
		}
	}
}

// TestSquashReplayStatsStable: replayed decodes after store-conflict
// squashes must not double-count journalled statistics. The strided
// read/write loop squashes constantly; instance counters must stay
// consistent with validations.
func TestSquashReplayStatsStable(t *testing.T) {
	cfg := config.MustNamed(4, 1, config.ModeV)
	st := run(t, cfg, storeConflictLoop(400))
	if st.StoreConflicts == 0 {
		t.Fatal("expected store conflicts")
	}
	// Every load validation belongs to some dispatched load instance.
	if st.LoadValidations > st.VectorLoadInstances*uint64(cfg.VectorLen) {
		t.Errorf("validations %d exceed instances %d x VL",
			st.LoadValidations, st.VectorLoadInstances)
	}
	// The stride histogram counts each classified dynamic load once; it can
	// never exceed committed loads.
	if st.StrideHist.Total() > st.CommittedLoads {
		t.Errorf("stride samples %d exceed committed loads %d",
			st.StrideHist.Total(), st.CommittedLoads)
	}
}

// TestVectorStateSurvivesMispredict: after a mispredicted branch resolves,
// previously created vector state must still supply validations (§3.5) —
// sampled via the post-mispredict reuse counters.
func TestVectorStateSurvivesMispredict(t *testing.T) {
	cfg := config.MustNamed(4, 1, config.ModeV)
	st := run(t, cfg, noisyBranchLoop(600))
	if st.BranchMispredicts == 0 {
		t.Skip("no mispredictions at this scale")
	}
	if st.PostMispredictReused == 0 {
		t.Error("no vector-state reuse after mispredictions")
	}
}

// TestChurnCooldownEngages: a loop whose vectorized add consumes a scalar
// that changes every iteration must settle into scalar mode instead of
// churning an instance per iteration.
func TestChurnCooldownEngages(t *testing.T) {
	b := isa.NewBuilder("churny")
	r := isa.IntReg
	words := make([]uint64, 800)
	for i := range words {
		words[i] = uint64(i)
	}
	b.DataWords("a", words)
	b.LoadAddr(r(1), "a")
	b.Li(r(2), 0)
	b.Li(r(3), 700)
	b.Label("loop")
	b.Ld(r(5), r(1), 0)
	b.Mul(r(6), r(2), r(2)) // scalar that differs every iteration
	b.Add(r(7), r(5), r(6)) // vector x changing-scalar
	b.Addi(r(1), r(1), 8)
	b.Addi(r(2), r(2), 1)
	b.Blt(r(2), r(3), "loop")
	b.Halt()
	prog := b.MustBuild()

	st := run(t, config.MustNamed(4, 1, config.ModeV), prog)
	// Without the cooldown the add would create ~700 instances (one per
	// iteration); with it, creation must be an order of magnitude rarer.
	if st.VectorArithInstances > 150 {
		t.Errorf("churn cooldown ineffective: %d arithmetic instances", st.VectorArithInstances)
	}
	// The load itself must still be vectorized.
	if st.LoadValidations == 0 {
		t.Error("load vectorization disappeared")
	}
}
