package pipeline

import (
	"fmt"

	"specvec/internal/branch"
	"specvec/internal/config"
	"specvec/internal/core"
	"specvec/internal/emu"
	"specvec/internal/isa"
	"specvec/internal/mem"
	"specvec/internal/stats"
)

// vsEntry is the decode-side vector/scalar rename state per logical
// register (the V/S flag and offset of the modified rename table, Figure
// 6): which vector register and element currently hold the register's
// latest value.
type vsEntry struct {
	isVector bool
	vreg     int
	vepoch   uint64
	offset   int
}

// vref names a committed vector element mapping (for F-flag bookkeeping).
type vref struct {
	valid  bool
	vreg   int
	vepoch uint64
	elem   int
}

// Simulator is one configured processor running one program.
type Simulator struct {
	cfg  config.Config
	sim  *stats.Sim
	mach *emu.Machine
	strm *emu.Stream

	hier  *mem.Hierarchy
	ports *mem.Ports
	pred  *branch.Predictor

	// SDV engine.
	tl    *core.TL
	vrmt  *core.VRMT
	vrf   *core.RegFile
	jnl   *core.Journal
	gmrbb uint64

	cycle  uint64
	halted bool

	// Windows. rob/iq/lsq hold pointers in program order; viq holds vector
	// instances.
	rob []*uop
	iq  []*uop
	lsq []*uop
	viq []*vop

	// Front end.
	fetchBuf        []*uop
	pending         *emu.DynInst // fetched record waiting for the I-cache
	fetchReadyAt    uint64
	fetchStall      *uop // unresolved mispredicted control instruction
	fetchHalted     bool
	maxFetchedSeq   uint64 // high-water mark: replayed fetches skip stats
	hasFetched      bool
	maxStrideSeq    uint64 // high-water mark for the stride histogram
	hasStrideSample bool

	// Functional units.
	pools  [isa.NumFUClasses]*fuPool
	vpools [isa.NumFUClasses]*fuPool

	// Rename-side state.
	lastWriter [isa.NumLogicalRegs]*uop
	vs         [isa.NumLogicalRegs]vsEntry
	prevCommit [isa.NumLogicalRegs]vref

	// Per-cycle wide-bus merge state: line address -> merge record.
	merges map[uint64]*mergeState

	// Churn cooldown levels per PC slot (see decode.go).
	churn [churnSlots]uint8

	// Figure 10 window tracking.
	postMispredict int

	lastCommitCycle uint64
}

type mergeState struct {
	loads  int
	words  map[uint64]bool
	at     uint64 // completion cycle of the access
	vector bool   // issued by a vector load (words accounted via LineUse)
}

// New builds a simulator for prog under cfg.
func New(cfg config.Config, prog *isa.Program) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mach, err := emu.New(prog)
	if err != nil {
		return nil, err
	}
	sim := stats.New()
	s := &Simulator{
		cfg:    cfg,
		sim:    sim,
		mach:   mach,
		strm:   emu.NewStream(mach, 0),
		hier:   mem.NewHierarchy(cfg.Mem, sim),
		ports:  mem.NewPorts(cfg.MemPorts, cfg.WideBus, sim),
		pred:   branch.New(cfg.Branch),
		jnl:    core.NewJournal(),
		merges: make(map[uint64]*mergeState),
	}
	tlSets, vrmtSets, vregs := cfg.TLSets, cfg.VRMTSets, cfg.VectorRegs
	if cfg.Unbounded {
		tlSets, vrmtSets, vregs = 0, 0, 0
	}
	s.tl = core.NewTL(tlSets, cfg.TLWays, cfg.ConfThreshold)
	s.vrmt = core.NewVRMT(vrmtSets, cfg.VRMTWays)
	s.vrf = core.NewRegFile(vregs, cfg.VectorLen, sim)

	s.pools[isa.FUIntALU] = newFUPool(cfg.SimpleInt)
	s.pools[isa.FUIntMulDiv] = newFUPool(cfg.IntMulDiv)
	s.pools[isa.FUFPALU] = newFUPool(cfg.SimpleFP)
	s.pools[isa.FUFPMulDiv] = newFUPool(cfg.FPMulDiv)
	s.vpools[isa.FUIntALU] = newFUPool(cfg.SimpleInt)
	s.vpools[isa.FUIntMulDiv] = newFUPool(cfg.IntMulDiv)
	s.vpools[isa.FUFPALU] = newFUPool(cfg.SimpleFP)
	s.vpools[isa.FUFPMulDiv] = newFUPool(cfg.FPMulDiv)
	return s, nil
}

// Stats returns the statistics collected so far.
func (s *Simulator) Stats() *stats.Sim { return s.sim }

// Machine exposes the architectural state (tests compare it against a
// pure functional run).
func (s *Simulator) Machine() *emu.Machine { return s.mach }

// Cycle returns the current cycle number.
func (s *Simulator) Cycle() uint64 { return s.cycle }

// Run simulates until the program halts or maxInsts instructions commit,
// then finalises statistics. It errors if the pipeline deadlocks.
func (s *Simulator) Run(maxInsts uint64) (*stats.Sim, error) {
	const stallGuard = 200_000 // cycles without a commit = deadlock
	for !s.halted && s.sim.Committed < maxInsts {
		s.step()
		if s.cycle-s.lastCommitCycle > stallGuard {
			return s.sim, fmt.Errorf("pipeline: no commit in %d cycles at cycle %d (%s)",
				stallGuard, s.cycle, s.cfg.Name)
		}
	}
	s.vrf.Finalize()
	return s.sim, nil
}

// step advances one cycle: commit → issue → decode → fetch, so that a
// result produced in cycle N wakes consumers no earlier than N+1 and port
// arbitration gives committing stores priority over loads.
func (s *Simulator) step() {
	s.ports.BeginCycle(s.cycle)
	s.flushMerges()
	s.commit()
	if !s.halted {
		s.issueScalar()
		s.issueVector()
		s.decode()
		s.fetch()
	}
	s.cycle++
	s.sim.Cycles = s.cycle
}

// robFull reports whether dispatch must stall.
func (s *Simulator) robFull() bool { return len(s.rob) >= s.cfg.ROBSize }

// squash flushes every in-flight instruction with sequence >= fromSeq:
// decode-side SDV/rename state is rewound through the journal, the stream
// is repositioned, and the front end restarts after a redirect penalty.
// Vector instances are not squashed (§3.5, §3.6) unless their destination
// register allocation itself was rewound (epoch bump aborts them).
func (s *Simulator) squash(fromSeq uint64) {
	flushed := 0
	for _, u := range s.rob {
		if u.d.Seq >= fromSeq {
			flushed++
		}
	}
	s.sim.Squashed += uint64(flushed) + uint64(len(s.fetchBuf))

	s.jnl.RewindTo(fromSeq)
	s.strm.Rewind(fromSeq)
	s.pending = nil

	s.rob = s.rob[:0]
	s.iq = s.iq[:0]
	s.lsq = s.lsq[:0]
	s.fetchBuf = s.fetchBuf[:0]
	for i := range s.lastWriter {
		s.lastWriter[i] = nil
	}

	// Abort vector instances whose destination allocation was rewound.
	live := s.viq[:0]
	for _, v := range s.viq {
		if !s.vrf.ValidRef(v.vreg, v.vepoch) {
			v.aborted = true
			s.unpinSources(v)
			continue
		}
		live = append(live, v)
	}
	s.viq = live

	s.fetchStall = nil
	s.fetchHalted = false
	if at := s.cycle + uint64(s.cfg.MispredictPenalty); at > s.fetchReadyAt {
		s.fetchReadyAt = at
	}
}

// flushMerges retires completed wide-bus transactions: a line access stays
// mergeable while it is outstanding (MSHR secondary-miss merging), and its
// words-used count enters the Figure 13 histogram when the data arrives.
func (s *Simulator) flushMerges() {
	if len(s.merges) == 0 {
		return
	}
	for line, m := range s.merges {
		if m.at > s.cycle {
			continue
		}
		if s.ports.Wide() && !m.vector {
			s.sim.WideBusWords.Add(len(m.words))
		}
		delete(s.merges, line)
	}
}

func (s *Simulator) unpinSources(v *vop) {
	for _, src := range v.srcs {
		if src.kind == srcVector {
			s.vrf.Unpin(src.vreg, src.vepoch)
		}
	}
}
