package pipeline

import (
	"context"
	"fmt"

	"specvec/internal/branch"
	"specvec/internal/config"
	"specvec/internal/core"
	"specvec/internal/emu"
	"specvec/internal/isa"
	"specvec/internal/mem"
	"specvec/internal/profile"
	"specvec/internal/stats"
)

// vref names a committed vector element mapping (for F-flag bookkeeping).
type vref struct {
	valid  bool
	vreg   int
	vepoch uint64
	elem   int
}

// Source feeds fetch with the dynamic instruction stream. It is satisfied
// by emu.Stream (live functional emulation) and trace.Replayer (a recorded
// stream), keeping fetch agnostic to where records come from. NextRef
// returns the record at the current position by pointer (valid until the
// source's replay window wraps past its sequence number); Rewind
// repositions the stream after a squash, with at least the in-flight
// capacity of the pipeline addressable backwards (see SourceWindow).
type Source interface {
	NextRef() (*emu.DynInst, bool)
	Rewind(seq uint64)
}

// SourceWindow returns the replay-window size (in records) a Source must
// retain to serve the pipeline under cfg: every in-flight instruction
// (ROB + fetch buffer + the record held across an I-cache miss) may be
// rewound to, doubled for slack and rounded to a power of two.
func SourceWindow(cfg config.Config) int {
	inFlight := cfg.ROBSize + 3*cfg.FetchWidth + 1
	n := 64
	for n < 2*inFlight {
		n <<= 1
	}
	return n
}

// Simulator is one configured processor running one program.
//
// The per-cycle loop is allocation-free in steady state: uops and vector
// instances come from free-list pools (recycled at commit, squash or
// drain), the program-ordered windows are fixed-capacity rings, the issue
// queue is scheduled through a ready bitset fed by wakeup lists, and all
// decode-side speculative state is journalled through typed undo records.
type Simulator struct {
	cfg  config.Config
	sim  *stats.Sim
	mach *emu.Machine // nil when running from an external Source
	strm Source

	hier  *mem.Hierarchy
	ports *mem.Ports
	pred  *branch.Predictor

	// SDV engine.
	tl    *core.TL
	vrmt  *core.VRMT
	vrf   *core.RegFile
	jnl   *core.Journal
	gmrbb uint64

	cycle  uint64
	halted bool

	// Pools: recycle-on-commit/squash free lists.
	uops uopPool
	vops vopPool

	// Windows. rob/lsq are program-ordered rings; iq holds not-yet-issued
	// entries in program order with a parallel ready bitset (issue.go);
	// viq holds vector instances.
	rob *uopRing
	iq  []*uop
	lsq *uopRing
	viq []*vop

	// storePos mirrors the LSQ: the absolute ring positions of in-flight
	// stores, ascending. Loads checking the §3.6 ordering rules walk this
	// list instead of scanning every older LSQ entry (issue.go).
	storePos []uint64

	// readyBits marks iq positions whose register sources all have known
	// completion times (pendingDeps == 0); issue scans only these.
	readyBits []uint64

	// Front end.
	fetchBuf        *uopRing
	pendingInst     emu.DynInst // fetched record waiting for the I-cache
	pendingValid    bool
	fetchReadyAt    uint64
	fetchStall      *uop // unresolved mispredicted control instruction
	fetchHalted     bool
	maxFetchedSeq   uint64 // high-water mark: replayed fetches skip stats
	hasFetched      bool
	maxStrideSeq    uint64 // high-water mark for the stride histogram
	hasStrideSample bool

	// Functional units.
	pools  [isa.NumFUClasses]*fuPool
	vpools [isa.NumFUClasses]*fuPool

	// Rename-side state.
	lastWriter [isa.NumLogicalRegs]uopRef
	vs         [isa.NumLogicalRegs]core.VSEntry
	prevCommit [isa.NumLogicalRegs]vref

	// Outstanding wide-bus merge windows (MSHR secondary-miss merging),
	// in insertion order.
	merges mergeTable

	// Churn cooldown levels per PC slot (see decode.go).
	churn [churnSlots]uint8

	// Figure 10 window tracking.
	postMispredict int

	lastCommitCycle uint64

	// Service-layer observation hooks (SetContext/SetProgress). Neither
	// influences simulation results: the context is only polled, and
	// progress fires outside the per-cycle state machine.
	ctx           context.Context
	ctxCountdown  int
	progressEvery uint64
	nextProgress  uint64
	progressFn    func(committed uint64)
}

// mergeEntry is one outstanding wide-bus line access that later loads of
// the same line may merge into.
type mergeEntry struct {
	line   uint64
	loads  int
	at     uint64 // completion cycle of the access
	vector bool   // issued by a vector load (words accounted via LineUse)
	words  []uint64
}

// mergeTable holds the outstanding merge windows as a small ordered slice
// (bounded by the MSHR count), with pooled word-address scratch so lookups
// and retirement never allocate in steady state.
type mergeTable struct {
	entries []mergeEntry
	spare   [][]uint64
}

func (t *mergeTable) empty() bool { return len(t.entries) == 0 }

func (t *mergeTable) lookup(line uint64) *mergeEntry {
	for i := range t.entries {
		if t.entries[i].line == line {
			return &t.entries[i]
		}
	}
	return nil
}

// add opens a merge window for line. A still-outstanding window for the
// same line (its merge quota exhausted, forcing this new access) is
// replaced: its pending word accounting is discarded, exactly as the
// retired access never having entered the Figure 13 histogram.
func (t *mergeTable) add(line, at uint64, vector bool) *mergeEntry {
	m := t.lookup(line)
	if m == nil {
		var words []uint64
		if n := len(t.spare); n > 0 {
			words = t.spare[n-1][:0]
			t.spare = t.spare[:n-1]
		}
		t.entries = append(t.entries, mergeEntry{line: line, at: at, vector: vector, words: words})
		return &t.entries[len(t.entries)-1]
	}
	m.loads = 0
	m.at = at
	m.vector = vector
	m.words = m.words[:0]
	return m
}

// addWord records one distinct 8-byte word served by the access.
func (m *mergeEntry) addWord(addr uint64) {
	for _, w := range m.words {
		if w == addr {
			return
		}
	}
	m.words = append(m.words, addr)
}

// flush retires every window whose data has arrived, calling fn on each
// before removal; the remaining windows keep their insertion order.
func (t *mergeTable) flush(cycle uint64, fn func(*mergeEntry)) {
	live := t.entries[:0]
	for i := range t.entries {
		m := &t.entries[i]
		if m.at > cycle {
			live = append(live, *m)
			continue
		}
		fn(m)
		if m.words != nil {
			t.spare = append(t.spare, m.words[:0])
		}
	}
	t.entries = live
}

// New builds a simulator for prog under cfg, running live functional
// emulation (the machine is exposed through Machine for architectural
// comparison).
func New(cfg config.Config, prog *isa.Program) (*Simulator, error) {
	mach, err := emu.New(prog)
	if err != nil {
		return nil, err
	}
	s, err := NewFromSource(cfg, emu.NewStream(mach, SourceWindow(cfg)))
	if err != nil {
		return nil, err
	}
	s.mach = mach
	return s, nil
}

// NewFromSource builds a simulator for cfg fed by an external dynamic
// instruction source (e.g. a trace.Replayer, or a trace.Recorder wrapping
// a live machine). The simulator has no machine of its own: Machine
// returns nil, and the source must serve a stream recorded from — or
// equivalent to — a valid program.
func NewFromSource(cfg config.Config, src Source) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sim := stats.New()
	s := &Simulator{
		cfg:      cfg,
		sim:      sim,
		strm:     src,
		hier:     mem.NewHierarchy(cfg.Mem, sim),
		ports:    mem.NewPorts(cfg.MemPorts, cfg.WideBus, sim),
		pred:     branch.New(cfg.Branch),
		jnl:      core.NewJournal(),
		rob:      newUopRing(cfg.ROBSize),
		lsq:      newUopRing(cfg.LSQSize),
		fetchBuf: newUopRing(3 * cfg.FetchWidth),
		iq:       make([]*uop, 0, cfg.IQSize),
		viq:      make([]*vop, 0, cfg.VIQSize),
	}
	s.readyBits = make([]uint64, (cfg.IQSize+63)/64+1)
	tlSets, vrmtSets, vregs := cfg.TLSets, cfg.VRMTSets, cfg.VectorRegs
	if cfg.Unbounded {
		tlSets, vrmtSets, vregs = 0, 0, 0
	}
	s.tl = core.NewTL(tlSets, cfg.TLWays, cfg.ConfThreshold)
	s.vrmt = core.NewVRMT(vrmtSets, cfg.VRMTWays)
	s.vrf = core.NewRegFile(vregs, cfg.VectorLen, sim)

	s.pools[isa.FUIntALU] = newFUPool(cfg.SimpleInt)
	s.pools[isa.FUIntMulDiv] = newFUPool(cfg.IntMulDiv)
	s.pools[isa.FUFPALU] = newFUPool(cfg.SimpleFP)
	s.pools[isa.FUFPMulDiv] = newFUPool(cfg.FPMulDiv)
	s.vpools[isa.FUIntALU] = newFUPool(cfg.SimpleInt)
	s.vpools[isa.FUIntMulDiv] = newFUPool(cfg.IntMulDiv)
	s.vpools[isa.FUFPALU] = newFUPool(cfg.SimpleFP)
	s.vpools[isa.FUFPMulDiv] = newFUPool(cfg.FPMulDiv)
	return s, nil
}

// Stats returns the statistics collected so far.
func (s *Simulator) Stats() *stats.Sim { return s.sim }

// Machine exposes the architectural state (tests compare it against a
// pure functional run). It is nil for simulators built with
// NewFromSource: a replayed trace carries no architectural state.
func (s *Simulator) Machine() *emu.Machine { return s.mach }

// Cycle returns the current cycle number.
func (s *Simulator) Cycle() uint64 { return s.cycle }

// HotStats reports hot-path health counters: pool allocation misses vs
// recycles and the undo-journal depth. In steady state news stay flat
// while recycles grow.
func (s *Simulator) HotStats() profile.HotStats {
	return profile.HotStats{
		UopNews:      s.uops.news,
		UopRecycles:  s.uops.recycles,
		VopNews:      s.vops.news,
		VopRecycles:  s.vops.recycles,
		JournalDepth: uint64(s.jnl.Len()),
	}
}

// SetContext attaches ctx to the simulator: Run/RunInterval return ctx's
// error shortly after it is cancelled, so an abandoned run stops burning
// its worker instead of simulating to the commit limit. The context is
// polled every few thousand cycles (cancellation latency is microseconds,
// cost on the cycle loop is unmeasurable) and never alters statistics — a
// run that completes before cancellation is byte-identical to one without
// a context. A nil context (the default) never cancels.
func (s *Simulator) SetContext(ctx context.Context) { s.ctx = ctx }

// SetProgress registers fn to be invoked — on the simulating goroutine —
// each time the committed-instruction count crosses a multiple of every.
// The scheduler layer uses it to stream per-interval completion; fn must
// not call back into the simulator. every == 0 or fn == nil disables
// reporting.
func (s *Simulator) SetProgress(every uint64, fn func(committed uint64)) {
	if every == 0 || fn == nil {
		s.progressFn = nil
		return
	}
	s.progressEvery, s.progressFn, s.nextProgress = every, fn, every
}

// SeedBranchHistory sets the predictor's global outcome history.
// Checkpointed fast-forward (internal/experiments sharded runs) seeds it
// with the history recorded at the checkpoint boundary, so the warmup
// window trains the predictor from representative gshare indices.
func (s *Simulator) SeedBranchHistory(h uint64) { s.pred.SeedHistory(h) }

// Run simulates until the program halts or maxInsts instructions commit,
// then finalises statistics. It errors if the pipeline deadlocks.
func (s *Simulator) Run(maxInsts uint64) (*stats.Sim, error) {
	if err := s.runUntil(maxInsts); err != nil {
		return s.sim, err
	}
	s.vrf.Finalize()
	return s.sim, nil
}

// RunInterval simulates warmup+measure committed instructions and
// returns the measured interval's statistics alone: everything
// accumulated during the first warmup commits is subtracted back out.
// It is the sharded-sweep primitive — a simulator fed from a
// checkpoint-offset source re-warms caches, the predictor and the SDV
// structures across the warmup window, then measures. RunInterval(0, n)
// produces exactly Run(n)'s figures. The warmup boundary is observed at
// commit-width granularity, so measurement may begin up to
// CommitWidth-1 instructions past the nominal boundary; sharded and
// single-pass results therefore agree within the warmup tolerance, not
// byte-for-byte. Like Run, it finalises statistics (releasing live
// vector registers), so run each simulator at most once.
func (s *Simulator) RunInterval(warmup, measure uint64) (*stats.Sim, error) {
	if err := s.runUntil(warmup); err != nil {
		return s.sim, err
	}
	base := s.sim.Clone()
	if err := s.runUntil(warmup + measure); err != nil {
		return s.sim, err
	}
	s.vrf.Finalize()
	out := s.sim.Clone()
	out.Sub(base)
	return out, nil
}

// runUntil steps cycles until the program halts or target instructions
// have committed, erroring if the pipeline deadlocks.
func (s *Simulator) runUntil(target uint64) error {
	const stallGuard = 200_000 // cycles without a commit = deadlock
	const ctxPoll = 4096       // cycles between context cancellation checks
	for !s.halted && s.sim.Committed < target {
		s.step()
		if s.cycle-s.lastCommitCycle > stallGuard {
			return fmt.Errorf("pipeline: no commit in %d cycles at cycle %d (%s)",
				stallGuard, s.cycle, s.cfg.Name)
		}
		if s.progressFn != nil && s.sim.Committed >= s.nextProgress {
			s.progressFn(s.sim.Committed)
			for s.nextProgress <= s.sim.Committed {
				s.nextProgress += s.progressEvery
			}
		}
		if s.ctxCountdown--; s.ctxCountdown <= 0 {
			s.ctxCountdown = ctxPoll
			if s.ctx != nil {
				if err := s.ctx.Err(); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// step advances one cycle: commit → issue → decode → fetch, so that a
// result produced in cycle N wakes consumers no earlier than N+1 and port
// arbitration gives committing stores priority over loads.
//
//sdv:hotpath
func (s *Simulator) step() {
	s.ports.BeginCycle(s.cycle)
	s.flushMerges()
	s.commit()
	if !s.halted {
		s.issueScalar()
		s.issueVector()
		s.decode()
		s.fetch()
	}
	s.cycle++
	s.sim.Cycles = s.cycle
}

// robFull reports whether dispatch must stall.
func (s *Simulator) robFull() bool { return s.rob.len() >= s.cfg.ROBSize }

// squash flushes every in-flight instruction with sequence >= fromSeq:
// decode-side SDV/rename state is rewound through the journal, the stream
// is repositioned, and the front end restarts after a redirect penalty.
// Vector instances are not squashed (§3.5, §3.6) unless their destination
// register allocation itself was rewound (epoch bump aborts them). Flushed
// uops return to the pool; their generation bump invalidates every
// surviving reference.
func (s *Simulator) squash(fromSeq uint64) {
	flushed := 0
	for p := s.rob.head; p < s.rob.tail; p++ {
		if s.rob.at(p).d.Seq >= fromSeq {
			flushed++
		}
	}
	s.sim.Squashed += uint64(flushed) + uint64(s.fetchBuf.len())

	s.jnl.RewindTo(fromSeq)
	s.strm.Rewind(fromSeq)
	s.pendingValid = false

	for s.rob.len() > 0 {
		s.uops.put(s.rob.popFront())
	}
	for s.fetchBuf.len() > 0 {
		s.uops.put(s.fetchBuf.popFront())
	}
	s.rob.clear()
	s.lsq.clear()
	s.storePos = s.storePos[:0]
	s.fetchBuf.clear()
	s.iq = s.iq[:0]
	clear(s.readyBits)
	for i := range s.lastWriter {
		s.lastWriter[i] = uopRef{}
	}

	// Abort vector instances whose destination allocation was rewound.
	live := s.viq[:0]
	for _, v := range s.viq {
		if !s.vrf.ValidRef(v.vreg, v.vepoch) {
			v.aborted = true
			s.unpinSources(v)
			s.vops.put(v)
			continue
		}
		live = append(live, v)
	}
	s.viq = live

	s.fetchStall = nil
	s.fetchHalted = false
	if at := s.cycle + uint64(s.cfg.MispredictPenalty); at > s.fetchReadyAt {
		s.fetchReadyAt = at
	}
}

// flushMerges retires completed wide-bus transactions: a line access stays
// mergeable while it is outstanding (MSHR secondary-miss merging), and its
// words-used count enters the Figure 13 histogram when the data arrives.
func (s *Simulator) flushMerges() {
	if s.merges.empty() {
		return
	}
	wide := s.ports.Wide()
	s.merges.flush(s.cycle, func(m *mergeEntry) {
		if wide && !m.vector {
			s.sim.WideBusWords.Add(len(m.words))
		}
	})
}

func (s *Simulator) unpinSources(v *vop) {
	for _, src := range v.srcs {
		if src.kind == srcVector {
			s.vrf.Unpin(src.vreg, src.vepoch)
		}
	}
}
