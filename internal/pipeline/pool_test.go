package pipeline

import (
	"testing"

	"specvec/internal/config"
	"specvec/internal/emu"
	"specvec/internal/isa"
	"specvec/internal/workload"
)

// checkPooledUopClean asserts a free-listed uop carries no state from its
// previous life besides the bumped generation and the retained waiter
// capacity.
func checkPooledUopClean(t *testing.T, u *uop) {
	t.Helper()
	if u.issued || u.kind != kindNormal || u.inLSQ || u.fellBack ||
		u.mispredicted || u.statsCounted || u.blockedCycles != 0 {
		t.Fatalf("pooled uop keeps flags: %+v", u)
	}
	if u.deps[0].u != nil || u.deps[1].u != nil || u.producer != nil {
		t.Fatalf("pooled uop keeps references: %+v", u)
	}
	if len(u.waiters) != 0 || u.pendingDeps != 0 || u.readyAt != 0 {
		t.Fatalf("pooled uop keeps scheduling state: %+v", u)
	}
	if (u.d != emu.DynInst{}) {
		t.Fatalf("pooled uop keeps its dynamic record: %+v", u.d)
	}
}

// checkPoolInvariants walks the simulator's windows and pools and fails on
// a uop that is simultaneously free and in flight, or a free uop with
// stale state.
func checkPoolInvariants(t *testing.T, s *Simulator) {
	t.Helper()
	inFlight := map[*uop]string{}
	for p := s.rob.head; p < s.rob.tail; p++ {
		inFlight[s.rob.at(p)] = "rob"
	}
	for p := s.fetchBuf.head; p < s.fetchBuf.tail; p++ {
		inFlight[s.fetchBuf.at(p)] = "fetchBuf"
	}
	for _, u := range s.iq {
		if _, ok := inFlight[u]; !ok {
			t.Fatalf("iq entry not in rob: seq %d", u.d.Seq)
		}
	}
	for p := s.lsq.head; p < s.lsq.tail; p++ {
		if _, ok := inFlight[s.lsq.at(p)]; !ok {
			t.Fatalf("lsq entry not in rob")
		}
	}
	for _, u := range s.uops.free {
		if where, ok := inFlight[u]; ok {
			t.Fatalf("uop in free list and %s at once (seq %d)", where, u.d.Seq)
		}
		checkPooledUopClean(t, u)
	}
	for _, v := range s.vops.free {
		for _, live := range s.viq {
			if v == live {
				t.Fatal("vop in free list and viq at once")
			}
		}
	}
}

// mispredictStoreMix interleaves data-dependent branches with stores into
// the loaded range, so both squash paths (store conflicts) and fetch
// stalls (mispredicts) hammer recycling.
func mispredictStoreMix(n int) *isa.Program {
	b := isa.NewBuilder("recyclemix")
	words := make([]uint64, n+8)
	for i := range words {
		words[i] = uint64(i * 7 % 13)
	}
	b.DataWords("a", words)
	b.LoadAddr(r(1), "a")
	b.Li(r(2), 0)
	b.Li(r(3), int64(n))
	b.Li(r(6), 0)
	b.Label("loop")
	b.Ld(r(5), r(1), 0)
	b.Andi(r(7), r(5), 3)
	b.Beq(r(7), r(0), "skip") // data-dependent: mispredicts often
	b.Addi(r(6), r(6), 1)
	b.Label("skip")
	b.St(r(5), r(1), 16) // lands in the prefetched vector range (§3.6)
	b.Addi(r(1), r(1), 8)
	b.Addi(r(2), r(2), 1)
	b.Blt(r(2), r(3), "loop")
	b.Halt()
	return b.MustBuild()
}

// TestUopPoolRecycleNoStaleState hammers the squash and commit recycle
// paths and checks, throughout the run, that free-listed uops are fully
// reset and never aliased with in-flight ones — then that the architectural
// result still matches the functional oracle.
func TestUopPoolRecycleNoStaleState(t *testing.T) {
	for _, prog := range []*isa.Program{storeConflictLoop(400), mispredictStoreMix(400)} {
		gold, err := emu.New(prog)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := gold.Run(1 << 40); err != nil {
			t.Fatal(err)
		}
		cfg := config.MustNamed(4, 1, config.ModeV)
		s, err := New(cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		for !s.halted {
			s.step()
			if s.cycle%64 == 0 {
				checkPoolInvariants(t, s)
			}
			if s.cycle > 1<<22 {
				t.Fatalf("%s: runaway simulation", prog.Name)
			}
		}
		checkPoolInvariants(t, s)
		if s.sim.Squashed == 0 {
			t.Fatalf("%s: hammer produced no squashes", prog.Name)
		}
		if s.uops.recycles == 0 || s.vops.recycles == 0 {
			t.Fatalf("%s: pools never recycled (uop %d, vop %d)",
				prog.Name, s.uops.recycles, s.vops.recycles)
		}
		for i := 0; i < isa.NumIntRegs; i++ {
			if s.Machine().IntReg(i) != gold.IntReg(i) {
				t.Errorf("%s: r%d = %d, want %d", prog.Name, i, s.Machine().IntReg(i), gold.IntReg(i))
			}
		}
	}
}

// TestPoolHeapAllocationsBounded: after warm-up the pools stop hitting the
// heap — every uop/vop comes from the free lists, bounded by the in-flight
// window, not by the dynamic instruction count.
func TestPoolHeapAllocationsBounded(t *testing.T) {
	bench, err := workload.Get("swim")
	if err != nil {
		t.Fatal(err)
	}
	prog := bench.Build(60_000, 1)
	s, err := New(config.MustNamed(4, 1, config.ModeV), prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(1 << 62); err != nil {
		t.Fatal(err)
	}
	h := s.HotStats()
	window := uint64(s.cfg.ROBSize + 3*s.cfg.FetchWidth)
	if h.UopNews > window {
		t.Errorf("uop heap allocations %d exceed the in-flight window %d", h.UopNews, window)
	}
	if h.VopNews > uint64(s.cfg.VIQSize) {
		t.Errorf("vop heap allocations %d exceed the vector queue %d", h.VopNews, s.cfg.VIQSize)
	}
	if h.UopRecycles < s.sim.Fetched-window {
		t.Errorf("uop recycles %d lag fetched %d", h.UopRecycles, s.sim.Fetched)
	}
}

// TestSteadyStateAllocsPerCycle is the allocation regression gate for the
// hot path: once warm, stepping the pipeline allocates (approximately)
// nothing per cycle.
func TestSteadyStateAllocsPerCycle(t *testing.T) {
	bench, err := workload.Get("swim")
	if err != nil {
		t.Fatal(err)
	}
	prog := bench.Build(4_000_000, 1)
	s, err := New(config.MustNamed(4, 1, config.ModeV), prog)
	if err != nil {
		t.Fatal(err)
	}
	// Warm up: pools, journal stacks, rings and scratch reach their
	// steady-state high-water marks.
	for s.sim.Committed < 100_000 && !s.halted {
		s.step()
	}
	if s.halted {
		t.Fatal("program halted during warm-up")
	}
	const cyclesPerRound = 2048
	avg := testing.AllocsPerRun(20, func() {
		for i := 0; i < cyclesPerRound && !s.halted; i++ {
			s.step()
		}
	})
	if perCycle := avg / cyclesPerRound; perCycle > 0.01 {
		t.Errorf("steady-state allocations: %.4f per cycle (want ~0)", perCycle)
	}
}
