package pipeline

import (
	"testing"

	"specvec/internal/config"
	"specvec/internal/workload"
)

// BenchmarkSteadyStateCycleLoop measures the per-cycle cost of the warm
// pipeline (pools, journal stacks and rings at their high-water marks) —
// the figure every experiment sweep is made of. Run with -benchmem: the
// B/op column is the steady-state allocation regression number.
func BenchmarkSteadyStateCycleLoop(b *testing.B) {
	for _, mode := range []config.Mode{config.ModeIM, config.ModeV} {
		b.Run(mode.String(), func(b *testing.B) {
			bench, err := workload.Get("swim")
			if err != nil {
				b.Fatal(err)
			}
			prog := bench.Build(1<<30, 1)
			s, err := New(config.MustNamed(4, 1, mode), prog)
			if err != nil {
				b.Fatal(err)
			}
			for s.sim.Committed < 50_000 && !s.halted {
				s.step()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if s.halted {
					b.Fatal("program halted mid-benchmark: raise the build scale")
				}
				s.step()
			}
			b.ReportMetric(float64(s.sim.Committed)/float64(s.cycle), "IPC")
		})
	}
}

// BenchmarkSquashRecovery measures the squash-and-replay path (journal
// rewind, stream reposition, pool recycling) under the §3.6 store-conflict
// hammer.
func BenchmarkSquashRecovery(b *testing.B) {
	prog := storeConflictLoop(1 << 20)
	s, err := New(config.MustNamed(4, 1, config.ModeV), prog)
	if err != nil {
		b.Fatal(err)
	}
	for s.sim.Committed < 20_000 && !s.halted {
		s.step()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.halted {
			b.Fatal("program halted mid-benchmark: raise the loop count")
		}
		s.step()
	}
	b.ReportMetric(float64(s.sim.Squashed)/float64(s.cycle), "squashed/cycle")
}
