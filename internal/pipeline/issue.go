package pipeline

import (
	"math/bits"

	"specvec/internal/isa"
)

// Issue-stage scheduling. Instead of re-testing every issue-queue entry's
// register dependences each cycle, the queue keeps a ready bitset
// scoreboard over its (program-ordered) positions: a bit is set once every
// in-flight producer of the entry has issued, i.e. the entry's earliest
// possible issue cycle (readyAt = max producer completion) is known.
// Producers wake their waiters when they issue; entries whose readiness
// depends on non-register state (validations polling the vector register
// file, loads gated by the LSQ and memory ports) keep their bit set and
// are re-tested against that state only.

// setReady marks iq position idx as schedulable.
func (s *Simulator) setReady(idx int32) {
	s.readyBits[idx>>6] |= 1 << (idx & 63)
}

// dispatch places u in the issue queue and wires its wakeup state: known
// producers contribute their completion cycle to readyAt; still-unissued
// producers get u appended to their waiter list.
func (s *Simulator) dispatch(u *uop) {
	u.readyAt = 0
	u.pendingDeps = 0
	for i := range u.deps {
		d := u.deps[i]
		if d.u == nil || d.u.gen != d.gen {
			continue
		}
		if d.u.issued {
			if d.u.doneAt > u.readyAt {
				u.readyAt = d.u.doneAt
			}
		} else {
			d.u.waiters = append(d.u.waiters, uopRef{u: u, gen: u.gen})
			u.pendingDeps++
		}
	}
	u.iqIdx = int32(len(s.iq))
	s.iq = append(s.iq, u)
	if u.pendingDeps == 0 {
		s.setReady(u.iqIdx)
	}
}

// markIssued records u's issue and completion cycle and wakes consumers
// waiting on its result.
func (s *Simulator) markIssued(u *uop, doneAt uint64) {
	u.issued, u.doneAt = true, doneAt
	for _, w := range u.waiters {
		c := w.u
		if c == nil || c.gen != w.gen {
			continue
		}
		if doneAt > c.readyAt {
			c.readyAt = doneAt
		}
		if c.pendingDeps--; c.pendingDeps == 0 {
			s.setReady(c.iqIdx)
		}
	}
	u.waiters = u.waiters[:0]
}

// issueScalar selects up to IssueWidth ready instructions from the issue
// queue, oldest first, and starts their execution. Only positions flagged
// in the ready scoreboard are visited; a one-word comparison skips entries
// whose operands are scheduled but not yet complete.
//
//sdv:hotpath
func (s *Simulator) issueScalar() {
	budget := s.cfg.IssueWidth
	issued := 0
	nw := (len(s.iq) + 63) >> 6
scan:
	for w := 0; w < nw; w++ {
		// Re-read the scoreboard word after every visit: issuing a
		// validation completes it this cycle, which can make a younger
		// entry in the same word ready right now (same-cycle wakeup). The
		// visited mask keeps each position to one attempt per cycle.
		visited := uint64(0)
		for {
			word := s.readyBits[w] &^ visited
			if word == 0 {
				break
			}
			b := bits.TrailingZeros64(word)
			visited |= 1 << b
			u := s.iq[w<<6|b]
			if u.readyAt > s.cycle {
				continue
			}
			if s.tryIssue(u) {
				issued++
				if budget--; budget == 0 {
					break scan
				}
			}
		}
	}
	if issued > 0 {
		s.compactIQ()
	}
}

// compactIQ drops issued entries, renumbers the survivors and rebuilds the
// ready scoreboard (positions shift left; readiness is preserved).
func (s *Simulator) compactIQ() {
	clear(s.readyBits)
	live := s.iq[:0]
	for _, u := range s.iq {
		if u.issued {
			continue
		}
		u.iqIdx = int32(len(live))
		live = append(live, u)
		if u.pendingDeps == 0 {
			s.setReady(u.iqIdx)
		}
	}
	s.iq = live
}

func (s *Simulator) tryIssue(u *uop) bool {
	in := u.d.Inst
	switch {
	case u.kind == kindArithValidation:
		return s.issueArithValidation(u)
	case u.kind == kindLoadValidation:
		return s.issueLoadValidation(u)
	case in.IsLoad():
		return s.issueLoad(u)
	case in.IsStore():
		// The memory write happens at commit; the store is complete once
		// address and data are available.
		if !u.depsReady(s.cycle) {
			return false
		}
		s.markIssued(u, s.cycle+1)
		return true
	case u.d.Halt, in.Op == isa.OpNop, isa.ClassOf(in.Op) == isa.FUNone:
		if !u.depsReady(s.cycle) {
			return false
		}
		s.markIssued(u, s.cycle+1)
		return true
	default:
		if !u.depsReady(s.cycle) {
			return false
		}
		cls, lat := isa.ClassOf(in.Op), isa.LatencyOf(in.Op)
		if !s.pools[cls].tryIssue(s.cycle, lat, isa.Pipelined(in.Op)) {
			return false
		}
		s.markIssued(u, s.cycle+uint64(lat))
		return true
	}
}

// issueArithValidation completes once the awaited element has been
// computed by the vector datapath; no functional unit is needed. If the
// producing instance died without scheduling the element, the instruction
// falls back to scalar execution.
func (s *Simulator) issueArithValidation(u *uop) bool {
	if s.vrf.ElemReady(u.vreg, u.vepoch, u.elem, s.cycle) {
		// The element's data already exists in the vector register; the
		// check completes immediately (validations are off the data path).
		s.markIssued(u, s.cycle)
		return true
	}
	if s.elemDead(u) {
		s.fallBack(u)
		return s.tryIssue(u)
	}
	return false
}

// issueLoadValidation checks the predicted address (address operands must
// be ready — the check uses the AGU result) and waits for the element.
func (s *Simulator) issueLoadValidation(u *uop) bool {
	if !u.addrReady(s.cycle) {
		return false
	}
	if s.vrf.ElemReady(u.vreg, u.vepoch, u.elem, s.cycle) {
		s.markIssued(u, s.cycle)
		return true
	}
	if s.elemDead(u) {
		s.fallBack(u)
		return s.tryIssue(u)
	}
	return false
}

// elemDead reports that the awaited element will never be scheduled: the
// register reference went stale or the producing instance aborted before
// reaching it. A recycled producer reference is dead too — an instance is
// only recycled after scheduling every element (in which case
// ElemScheduled above reports true first) or after aborting.
func (s *Simulator) elemDead(u *uop) bool {
	if !s.vrf.ValidRef(u.vreg, u.vepoch) {
		return true
	}
	if s.vrf.ElemScheduled(u.vreg, u.vepoch, u.elem) {
		return false // data is on its way
	}
	p := u.liveProducer()
	return p == nil || p.aborted
}

// fallBack converts a validation into ordinary scalar execution and
// releases its U flag so the register can still be reclaimed.
func (s *Simulator) fallBack(u *uop) {
	s.vrf.ClearUsed(u.vreg, u.vepoch, u.elem)
	u.kind = kindNormal
	u.fellBack = true
}

// issueLoad models the load/store queue rules of Table 1 ("loads may
// execute when prior store addresses are known", store→load forwarding)
// and the scalar/wide data buses of §3.7.
func (s *Simulator) issueLoad(u *uop) bool {
	if !u.addrReady(s.cycle) {
		return false
	}
	// Walk older in-flight stores, youngest first (storePos mirrors the
	// program-ordered LSQ ring, so loads skip straight over other loads).
	for i := len(s.storePos) - 1; i >= 0; i-- {
		p := s.storePos[i]
		if p >= u.lsqPos {
			continue // younger than the load
		}
		st := s.lsq.at(p)
		if !st.addrReady(s.cycle) {
			return false // unknown address: conservative wait
		}
		if st.wordAddr() == u.wordAddr() {
			if !st.dataReady(s.cycle) {
				return false
			}
			s.markIssued(u, s.cycle+1) // forwarded, no port
			return true
		}
	}

	// Memory access, merging with an already-issued wide access when the
	// line matches (§3.7: up to 4 pending loads per access).
	if s.ports.Wide() {
		line := s.hier.DLineAddr(u.d.EffAddr)
		if m := s.merges.lookup(line); m != nil && m.loads < s.cfg.MaxLoadsPerWideAccess {
			m.loads++
			m.addWord(u.wordAddr())
			s.markIssued(u, m.at)
			s.sim.LoadsMerged++
			return true
		}
	}
	if !s.hier.CanAcceptData(s.cycle) {
		s.sim.MSHRStallCycles++
		return false
	}
	if !s.ports.TryAcquire() {
		return false
	}
	addr := u.d.EffAddr
	if s.ports.Wide() {
		addr = s.hier.DLineAddr(addr)
	}
	lat := s.hier.AccessData(addr, false, s.cycle)
	s.markIssued(u, s.cycle+uint64(lat))
	s.sim.ScalarAccesses++
	if s.ports.Wide() {
		m := s.merges.add(addr, u.doneAt, false)
		m.loads = 1
		m.addWord(u.wordAddr())
	}
	return true
}

// issueVector advances the vector datapath: loads fetch their line groups
// through the shared memory ports; arithmetic instances start one element
// per cycle on a pipelined vector unit once that element's sources are
// ready (chaining, §3.4). Drained and aborted instances return to the
// pool.
//
//sdv:hotpath
func (s *Simulator) issueVector() {
	live := s.viq[:0]
	for _, v := range s.viq {
		if v.aborted || !s.vrf.ValidRef(v.vreg, v.vepoch) {
			v.aborted = true
			s.unpinSources(v)
			s.vops.put(v)
			continue
		}
		if v.isLoad {
			for v.nextGroup < len(v.groups) {
				g := v.groups[v.nextGroup]
				// §3.7: one wide access serves every pending load of the
				// line, including other vector instances' elements.
				if s.ports.Wide() {
					if m := s.merges.lookup(g.addr); m != nil {
						for _, e := range g.elems {
							s.vrf.MarkComputed(v.vreg, v.vepoch, e, m.at)
						}
						s.vrf.AddLineUse(v.vreg, v.vepoch, g.addr, g.elems)
						s.sim.LoadsMerged++
						v.nextGroup++
						continue
					}
				}
				if !s.hier.CanAcceptData(s.cycle) || !s.ports.TryAcquire() {
					break
				}
				lat := s.hier.AccessData(g.addr, false, s.cycle)
				done := s.cycle + uint64(lat)
				for _, e := range g.elems {
					s.vrf.MarkComputed(v.vreg, v.vepoch, e, done)
				}
				if s.ports.Wide() {
					s.vrf.AddLineUse(v.vreg, v.vepoch, g.addr, g.elems)
					s.merges.add(g.addr, done, true)
				}
				s.sim.VectorAccesses++
				v.nextGroup++
			}
		} else if v.nextElem < v.vl && s.vsrcsReady(v, v.nextElem) {
			cls, lat := isa.ClassOf(v.op), isa.LatencyOf(v.op)
			if s.vpools[cls].tryIssue(s.cycle, lat, isa.Pipelined(v.op)) {
				s.vrf.MarkComputed(v.vreg, v.vepoch, v.nextElem, s.cycle+uint64(lat))
				v.nextElem++
			}
		}
		if v.done() {
			s.unpinSources(v)
			s.vops.put(v)
			continue
		}
		live = append(live, v)
	}
	s.viq = live
}

// vsrcsReady reports whether the source elements feeding dest element elem
// are available; a stale source aborts the instance.
func (s *Simulator) vsrcsReady(v *vop, elem int) bool {
	for _, src := range v.srcs {
		if src.kind != srcVector {
			continue
		}
		if !s.vrf.ValidRef(src.vreg, src.vepoch) {
			v.aborted = true
			return false
		}
		srcElem := src.start + (elem - v.destStart)
		if !s.vrf.ElemReady(src.vreg, src.vepoch, srcElem, s.cycle) {
			return false
		}
	}
	return true
}
