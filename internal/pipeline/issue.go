package pipeline

import "specvec/internal/isa"

// issueScalar selects up to IssueWidth ready instructions from the issue
// queue, oldest first, and starts their execution.
func (s *Simulator) issueScalar() {
	budget := s.cfg.IssueWidth
	for _, u := range s.iq {
		if budget == 0 {
			break
		}
		if u.issued {
			continue
		}
		if s.tryIssue(u) {
			budget--
		}
	}
	// Drop issued entries from the queue.
	live := s.iq[:0]
	for _, u := range s.iq {
		if !u.issued {
			live = append(live, u)
		}
	}
	s.iq = live
}

func (s *Simulator) tryIssue(u *uop) bool {
	in := u.d.Inst
	switch {
	case u.kind == kindArithValidation:
		return s.issueArithValidation(u)
	case u.kind == kindLoadValidation:
		return s.issueLoadValidation(u)
	case in.IsLoad():
		return s.issueLoad(u)
	case in.IsStore():
		// The memory write happens at commit; the store is complete once
		// address and data are available.
		if !u.depsReady(s.cycle) {
			return false
		}
		u.issued, u.doneAt = true, s.cycle+1
		return true
	case u.d.Halt, in.Op == isa.OpNop, isa.ClassOf(in.Op) == isa.FUNone:
		if !u.depsReady(s.cycle) {
			return false
		}
		u.issued, u.doneAt = true, s.cycle+1
		return true
	default:
		if !u.depsReady(s.cycle) {
			return false
		}
		cls, lat := isa.ClassOf(in.Op), isa.LatencyOf(in.Op)
		if !s.pools[cls].tryIssue(s.cycle, lat, isa.Pipelined(in.Op)) {
			return false
		}
		u.issued, u.doneAt = true, s.cycle+uint64(lat)
		return true
	}
}

// issueArithValidation completes once the awaited element has been
// computed by the vector datapath; no functional unit is needed. If the
// producing instance died without scheduling the element, the instruction
// falls back to scalar execution.
func (s *Simulator) issueArithValidation(u *uop) bool {
	if s.vrf.ElemReady(u.vreg, u.vepoch, u.elem, s.cycle) {
		// The element's data already exists in the vector register; the
		// check completes immediately (validations are off the data path).
		u.issued, u.doneAt = true, s.cycle
		return true
	}
	if s.elemDead(u) {
		s.fallBack(u)
		return s.tryIssue(u)
	}
	return false
}

// issueLoadValidation checks the predicted address (address operands must
// be ready — the check uses the AGU result) and waits for the element.
func (s *Simulator) issueLoadValidation(u *uop) bool {
	if !u.addrReady(s.cycle) {
		return false
	}
	if s.vrf.ElemReady(u.vreg, u.vepoch, u.elem, s.cycle) {
		u.issued, u.doneAt = true, s.cycle
		return true
	}
	if s.elemDead(u) {
		s.fallBack(u)
		return s.tryIssue(u)
	}
	return false
}

// elemDead reports that the awaited element will never be scheduled: the
// register reference went stale or the producing instance aborted before
// reaching it.
func (s *Simulator) elemDead(u *uop) bool {
	if !s.vrf.ValidRef(u.vreg, u.vepoch) {
		return true
	}
	if s.vrf.ElemScheduled(u.vreg, u.vepoch, u.elem) {
		return false // data is on its way
	}
	return u.producer == nil || u.producer.aborted
}

// fallBack converts a validation into ordinary scalar execution and
// releases its U flag so the register can still be reclaimed.
func (s *Simulator) fallBack(u *uop) {
	s.vrf.ClearUsed(u.vreg, u.vepoch, u.elem)
	u.kind = kindNormal
	u.fellBack = true
}

// issueLoad models the load/store queue rules of Table 1 ("loads may
// execute when prior store addresses are known", store→load forwarding)
// and the scalar/wide data buses of §3.7.
func (s *Simulator) issueLoad(u *uop) bool {
	if !u.addrReady(s.cycle) {
		return false
	}
	// Scan older stores in the LSQ.
	pos := -1
	for i, e := range s.lsq {
		if e == u {
			pos = i
			break
		}
	}
	for i := pos - 1; i >= 0; i-- {
		st := s.lsq[i]
		if !st.d.Inst.IsStore() {
			continue
		}
		if !st.addrReady(s.cycle) {
			return false // unknown address: conservative wait
		}
		if st.wordAddr() == u.wordAddr() {
			if !st.dataReady(s.cycle) {
				return false
			}
			u.issued, u.doneAt = true, s.cycle+1 // forwarded, no port
			return true
		}
	}

	// Memory access, merging with an already-issued wide access when the
	// line matches (§3.7: up to 4 pending loads per access).
	if s.ports.Wide() {
		line := s.hier.DLineAddr(u.d.EffAddr)
		if m := s.merges[line]; m != nil && m.loads < s.cfg.MaxLoadsPerWideAccess {
			m.loads++
			m.words[u.wordAddr()] = true
			u.issued, u.doneAt = true, m.at
			s.sim.LoadsMerged++
			return true
		}
	}
	if !s.hier.CanAcceptData(s.cycle) {
		s.sim.MSHRStallCycles++
		return false
	}
	if !s.ports.TryAcquire() {
		return false
	}
	addr := u.d.EffAddr
	if s.ports.Wide() {
		addr = s.hier.DLineAddr(addr)
	}
	lat := s.hier.AccessData(addr, false, s.cycle)
	u.issued, u.doneAt = true, s.cycle+uint64(lat)
	s.sim.ScalarAccesses++
	if s.ports.Wide() {
		s.merges[addr] = &mergeState{
			loads: 1,
			words: map[uint64]bool{u.wordAddr(): true},
			at:    u.doneAt,
		}
	}
	return true
}

// issueVector advances the vector datapath: loads fetch their line groups
// through the shared memory ports; arithmetic instances start one element
// per cycle on a pipelined vector unit once that element's sources are
// ready (chaining, §3.4).
func (s *Simulator) issueVector() {
	live := s.viq[:0]
	for _, v := range s.viq {
		if v.aborted || !s.vrf.ValidRef(v.vreg, v.vepoch) {
			v.aborted = true
			s.unpinSources(v)
			continue
		}
		if v.isLoad {
			for v.nextGroup < len(v.groups) {
				g := v.groups[v.nextGroup]
				// §3.7: one wide access serves every pending load of the
				// line, including other vector instances' elements.
				if s.ports.Wide() {
					if m := s.merges[g.addr]; m != nil {
						for _, e := range g.elems {
							s.vrf.MarkComputed(v.vreg, v.vepoch, e, m.at)
						}
						s.vrf.AddLineUse(v.vreg, v.vepoch, g.addr, g.elems)
						s.sim.LoadsMerged++
						v.nextGroup++
						continue
					}
				}
				if !s.hier.CanAcceptData(s.cycle) || !s.ports.TryAcquire() {
					break
				}
				lat := s.hier.AccessData(g.addr, false, s.cycle)
				done := s.cycle + uint64(lat)
				for _, e := range g.elems {
					s.vrf.MarkComputed(v.vreg, v.vepoch, e, done)
				}
				if s.ports.Wide() {
					s.vrf.AddLineUse(v.vreg, v.vepoch, g.addr, g.elems)
					s.merges[g.addr] = &mergeState{at: done, vector: true, words: map[uint64]bool{}}
				}
				s.sim.VectorAccesses++
				v.nextGroup++
			}
		} else if v.nextElem < v.vl && s.vsrcsReady(v, v.nextElem) {
			cls, lat := isa.ClassOf(v.op), isa.LatencyOf(v.op)
			if s.vpools[cls].tryIssue(s.cycle, lat, isa.Pipelined(v.op)) {
				s.vrf.MarkComputed(v.vreg, v.vepoch, v.nextElem, s.cycle+uint64(lat))
				v.nextElem++
			}
		}
		if v.done() {
			s.unpinSources(v)
			continue
		}
		live = append(live, v)
	}
	s.viq = live
}

// vsrcsReady reports whether the source elements feeding dest element elem
// are available; a stale source aborts the instance.
func (s *Simulator) vsrcsReady(v *vop, elem int) bool {
	for _, src := range v.srcs {
		if src.kind != srcVector {
			continue
		}
		if !s.vrf.ValidRef(src.vreg, src.vepoch) {
			v.aborted = true
			return false
		}
		srcElem := src.start + (elem - v.destStart)
		if !s.vrf.ElemReady(src.vreg, src.vepoch, srcElem, s.cycle) {
			return false
		}
	}
	return true
}
