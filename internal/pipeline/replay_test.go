package pipeline

import (
	"reflect"
	"testing"

	"specvec/internal/config"
	"specvec/internal/emu"
	"specvec/internal/trace"
	"specvec/internal/workload"
)

// TestReplayEquivalence runs every workload three ways under each
// configuration — live (emu.Stream), recording (trace.Recorder) and
// replaying the finished recording (trace.Replayer) — and requires the
// three statistics to be deeply identical. The V configurations exercise
// store-conflict squashes (stream rewinds), which is where a replayer
// with wrong window semantics would diverge.
func TestReplayEquivalence(t *testing.T) {
	const scale = 6000
	cfgs := []config.Config{
		config.MustNamed(4, 1, config.ModeV),
		config.MustNamed(8, 1, config.ModeV),
		config.MustNamed(4, 2, config.ModeIM),
	}
	squashes := uint64(0)
	for _, bench := range workload.Names() {
		b, err := workload.Get(bench)
		if err != nil {
			t.Fatal(err)
		}
		prog := b.Build(scale, 1)

		// One recording per benchmark, shared across configurations —
		// the exact shape the experiments Runner uses.
		mach, err := emu.New(prog)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := trace.NewRecorder(mach, prog, SourceWindow(cfgs[0]))
		if err != nil {
			t.Fatal(err)
		}
		recSim, err := NewFromSource(cfgs[0], rec)
		if err != nil {
			t.Fatal(err)
		}
		recStats, err := recSim.Run(scale)
		if err != nil {
			t.Fatalf("%s: recording run: %v", bench, err)
		}
		tr, err := rec.Finish(scale + trace.RecordSlack)
		if err != nil {
			t.Fatalf("%s: finish: %v", bench, err)
		}

		for i, cfg := range cfgs {
			live, err := New(cfg, prog)
			if err != nil {
				t.Fatal(err)
			}
			liveStats, err := live.Run(scale)
			if err != nil {
				t.Fatalf("%s/%s: live run: %v", bench, cfg.Name, err)
			}
			squashes += liveStats.Squashed

			if i == 0 && !reflect.DeepEqual(liveStats, recStats) {
				t.Errorf("%s/%s: recording run diverged from live:\nlive: %s\nrec:  %s",
					bench, cfg.Name, liveStats.String(), recStats.String())
			}

			replay, err := NewFromSource(cfg, trace.NewReplayer(tr, SourceWindow(cfg)))
			if err != nil {
				t.Fatal(err)
			}
			replayStats, err := replay.Run(scale)
			if err != nil {
				t.Fatalf("%s/%s: replay run: %v", bench, cfg.Name, err)
			}
			if !reflect.DeepEqual(liveStats, replayStats) {
				t.Errorf("%s/%s: replay diverged from live:\nlive:   %s\nreplay: %s",
					bench, cfg.Name, liveStats.String(), replayStats.String())
			}
			if replay.Machine() != nil {
				t.Errorf("%s/%s: replay simulator claims a machine", bench, cfg.Name)
			}
		}
	}
	if squashes == 0 {
		t.Error("no squash exercised across the suite; equivalence test lost its teeth")
	}
}

// TestRecordSlackCoversMatrix pins the invariant trace.RecordSlack
// documents: a recording extended RecordSlack past the commit limit can
// feed a replay under every configuration of the experiment sweep (the
// replayer fetches at most SourceWindow records past the last commit).
func TestRecordSlackCoversMatrix(t *testing.T) {
	for _, cfg := range config.Matrix() {
		if w := SourceWindow(cfg); w > trace.RecordSlack {
			t.Errorf("%s: SourceWindow %d exceeds trace.RecordSlack %d; recordings would silently fall back to live emulation",
				cfg.Name, w, trace.RecordSlack)
		}
	}
}
