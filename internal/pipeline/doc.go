// Package pipeline is the cycle-level out-of-order superscalar model —
// the SimpleScalar-like substrate of the paper's evaluation — extended at
// decode, issue and commit with the speculative dynamic vectorization
// engine from internal/core.
//
// The model is trace-driven: the functional emulator supplies the
// committed-path dynamic instruction stream (with effective addresses,
// branch outcomes and operand values), and this package replays it against
// real structural, data and memory-system constraints. On a branch
// misprediction fetch stalls until the branch resolves plus a redirect
// penalty; wrong-path instructions are not simulated (see DESIGN.md §3 for
// why this preserves the paper's behaviour). Vector state survives both
// mispredictions (control independence, §3.5) and store-conflict squashes
// (§3.6), which rewind decode-side SDV state through the core.Journal and
// replay the stream.
//
// # Hot-path discipline
//
// The per-cycle loop is allocation-free in steady state, which is what
// makes full-scale figure sweeps tractable:
//
//   - uops and vector instances come from free-list pools (uopPool,
//     vopPool) and are recycled at commit, squash or drain. Cross-uop
//     references are generation-checked (uopRef), so a recycled producer
//     reads as completed instead of dangling.
//   - The ROB, LSQ and fetch buffer are fixed-capacity rings; the LSQ
//     addresses entries by absolute position, so the store-scan of the
//     load issue rule walks exactly the older entries.
//   - The issue queue keeps a ready bitset scoreboard: producers wake
//     their waiters when they issue, and the scalar issue scan visits only
//     positions whose register sources have known completion times.
//   - Decode-side speculative state (TL, VRMT, register allocations, V/S
//     rename entries, churn levels, statistics) is journalled through
//     typed undo records in preallocated stacks — no closures.
//   - Wide-bus merge windows live in a small ordered table with pooled
//     scratch instead of a per-access map.
//
// Simulator.HotStats reports the pool and journal counters
// (internal/profile); pool_test.go pins the steady-state
// allocations-per-cycle at ~0. ARCHITECTURE.md walks the five stages in
// detail.
package pipeline
