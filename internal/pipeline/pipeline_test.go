package pipeline

import (
	"testing"

	"specvec/internal/config"
	"specvec/internal/emu"
	"specvec/internal/isa"
	"specvec/internal/stats"
)

func r(i int) isa.Reg { return isa.IntReg(i) }
func f(i int) isa.Reg { return isa.FPReg(i) }

// sumLoop builds: for i in 0..n-1 { sum += a[i] } with a stride-1 walk —
// the canonical vectorizable kernel.
func sumLoop(n int) *isa.Program {
	b := isa.NewBuilder("sumloop")
	words := make([]uint64, n)
	for i := range words {
		words[i] = uint64(i + 1)
	}
	b.DataWords("a", words)
	b.LoadAddr(r(1), "a") // cursor
	b.Li(r(2), 0)         // i
	b.Li(r(3), int64(n))  // n
	b.Li(r(4), 0)         // sum
	b.Label("loop")
	b.Ld(r(5), r(1), 0)
	b.Add(r(4), r(4), r(5))
	b.Addi(r(1), r(1), 8)
	b.Addi(r(2), r(2), 1)
	b.Blt(r(2), r(3), "loop")
	b.Halt()
	return b.MustBuild()
}

// storeConflictLoop loads a[i] and stores to a[i+2]: stores repeatedly
// land inside the prefetched vector range, exercising §3.6 squashes.
func storeConflictLoop(n int) *isa.Program {
	b := isa.NewBuilder("conflict")
	words := make([]uint64, n+8)
	for i := range words {
		words[i] = uint64(i)
	}
	b.DataWords("a", words)
	b.LoadAddr(r(1), "a")
	b.Li(r(2), 0)
	b.Li(r(3), int64(n))
	b.Label("loop")
	b.Ld(r(5), r(1), 0)
	b.Addi(r(5), r(5), 3)
	b.St(r(5), r(1), 16)
	b.Addi(r(1), r(1), 8)
	b.Addi(r(2), r(2), 1)
	b.Blt(r(2), r(3), "loop")
	b.Halt()
	return b.MustBuild()
}

// noisyBranchLoop has a data-dependent branch pattern the gshare predictor
// cannot learn perfectly, plus vectorizable work after the join point
// (control independence).
func noisyBranchLoop(n int) *isa.Program {
	b := isa.NewBuilder("noisy")
	words := make([]uint64, n)
	x := uint64(12345)
	for i := range words {
		x = x*6364136223846793005 + 1442695040888963407
		words[i] = x >> 60 // pseudo-random 0..15
	}
	b.DataWords("a", words)
	b.DataZero("out", n)
	b.LoadAddr(r(1), "a")
	b.LoadAddr(r(9), "out")
	b.Li(r(2), 0)
	b.Li(r(3), int64(n))
	b.Li(r(4), 0)
	b.Li(r(10), 7)
	b.Label("loop")
	b.Ld(r(5), r(1), 0)
	b.Blt(r(5), r(10), "small") // data-dependent, hard to predict
	b.Addi(r(4), r(4), 2)
	b.J("join")
	b.Label("small")
	b.Addi(r(4), r(4), 1)
	b.Label("join")
	// Control-independent strided work.
	b.Ld(r(6), r(9), 0)
	b.Addi(r(6), r(6), 5)
	b.Addi(r(1), r(1), 8)
	b.Addi(r(9), r(9), 8)
	b.Addi(r(2), r(2), 1)
	b.Blt(r(2), r(3), "loop")
	b.Halt()
	return b.MustBuild()
}

// fpStencil is an FP kernel: c[i] = (a[i] + b[i]) * a[i].
func fpStencil(n int) *isa.Program {
	b := isa.NewBuilder("fpstencil")
	av := make([]float64, n)
	bv := make([]float64, n)
	for i := range av {
		av[i] = float64(i) * 0.5
		bv[i] = float64(i) * 0.25
	}
	b.DataFloats("a", av)
	b.DataFloats("b", bv)
	b.DataZero("c", n)
	b.LoadAddr(r(1), "a")
	b.LoadAddr(r(2), "b")
	b.LoadAddr(r(3), "c")
	b.Li(r(4), 0)
	b.Li(r(5), int64(n))
	b.Label("loop")
	b.Ldf(f(1), r(1), 0)
	b.Ldf(f(2), r(2), 0)
	b.Fadd(f(3), f(1), f(2))
	b.Fmul(f(4), f(3), f(1))
	b.Stf(f(4), r(3), 0)
	b.Addi(r(1), r(1), 8)
	b.Addi(r(2), r(2), 8)
	b.Addi(r(3), r(3), 8)
	b.Addi(r(4), r(4), 1)
	b.Blt(r(4), r(5), "loop")
	b.Halt()
	return b.MustBuild()
}

func run(t *testing.T, cfg config.Config, prog *isa.Program) *stats.Sim {
	t.Helper()
	s, err := New(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Run(1 << 62)
	if err != nil {
		t.Fatalf("%s on %s: %v", cfg.Name, prog.Name, err)
	}
	return st
}

func TestScalarBaselineRuns(t *testing.T) {
	st := run(t, config.FourWay(), sumLoop(200))
	if st.Committed == 0 || st.Cycles == 0 {
		t.Fatalf("no progress: %+v", st)
	}
	if st.IPC() <= 0.3 || st.IPC() > 4 {
		t.Errorf("implausible IPC %.2f", st.IPC())
	}
	if st.LoadValidations != 0 {
		t.Error("validations on a non-vectorizing config")
	}
}

func TestVectorizationFires(t *testing.T) {
	cfg := config.MustNamed(4, 1, config.ModeV)
	st := run(t, cfg, sumLoop(400))
	if st.VectorLoadInstances == 0 {
		t.Fatal("no vector load instances on a stride-1 loop")
	}
	if st.LoadValidations == 0 {
		t.Fatal("no load validations")
	}
	if st.ArithValidations == 0 {
		t.Fatal("no arithmetic validations (propagation failed)")
	}
	if st.ValidationFraction() < 0.10 {
		t.Errorf("validation fraction %.3f too low for a pure loop", st.ValidationFraction())
	}
}

func TestVectorizationReducesMemoryRequests(t *testing.T) {
	// On a simple kernel MSHR merging can already be perfect for the IM
	// baseline, so require only that V never increases requests here; the
	// strict suite-level reduction is asserted by the headline experiment.
	prog := sumLoop(600)
	im := run(t, config.MustNamed(4, 1, config.ModeIM), prog)
	v := run(t, config.MustNamed(4, 1, config.ModeV), prog)
	if v.MemRequestsPerInst() > im.MemRequestsPerInst()*1.01 {
		t.Errorf("vectorization increased memory requests: V=%.3f IM=%.3f",
			v.MemRequestsPerInst(), im.MemRequestsPerInst())
	}
	if v.VectorAccesses == 0 {
		t.Error("no vector accesses")
	}
}

func TestWideBusHelpsBandwidthBoundLoop(t *testing.T) {
	prog := fpStencil(500)
	noim := run(t, config.MustNamed(4, 1, config.ModeNoIM), prog)
	im := run(t, config.MustNamed(4, 1, config.ModeIM), prog)
	if im.IPC() < noim.IPC()*0.98 {
		t.Errorf("wide bus slower than scalar bus: IM=%.3f noIM=%.3f", im.IPC(), noim.IPC())
	}
	if im.LoadsMerged == 0 {
		t.Error("no wide-bus merges on a two-stream FP loop")
	}
}

func TestStoreConflictSquashes(t *testing.T) {
	cfg := config.MustNamed(4, 1, config.ModeV)
	st := run(t, cfg, storeConflictLoop(300))
	if st.StoreConflicts == 0 {
		t.Fatal("no store conflicts on an overlapping read/write loop")
	}
	if st.Squashed == 0 {
		t.Fatal("conflicts squashed nothing")
	}
}

func TestControlIndependenceReuse(t *testing.T) {
	cfg := config.MustNamed(4, 1, config.ModeV)
	st := run(t, cfg, noisyBranchLoop(800))
	if st.BranchMispredicts == 0 {
		t.Fatal("predictor learned an LCG-random pattern perfectly?")
	}
	if st.PostMispredictInsts == 0 {
		t.Fatal("post-mispredict window never tracked")
	}
	if st.ControlIndepFraction() == 0 {
		t.Error("no reuse after mispredictions despite vectorized join-point code")
	}
}

func TestFPBenchmarkVectorizes(t *testing.T) {
	cfg := config.MustNamed(8, 1, config.ModeV)
	st := run(t, cfg, fpStencil(400))
	if st.VectorArithInstances == 0 {
		t.Fatal("FP arithmetic never vectorized")
	}
	u, _, _ := st.ElemAverages()
	if u == 0 {
		t.Error("no elements validated")
	}
}

// TestArchitecturalOracle verifies the timing simulator commits exactly
// the functional emulator's execution: after a full run the architectural
// state matches a pure emulation, for every mode.
func TestArchitecturalOracle(t *testing.T) {
	progs := []*isa.Program{sumLoop(300), storeConflictLoop(250), noisyBranchLoop(300), fpStencil(200)}
	for _, prog := range progs {
		// Golden run.
		gold, err := emu.New(prog)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := gold.Run(1 << 40); err != nil {
			t.Fatal(err)
		}
		for _, mode := range []config.Mode{config.ModeNoIM, config.ModeIM, config.ModeV} {
			cfg := config.MustNamed(4, 2, mode)
			s, err := New(cfg, prog)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Run(1 << 62); err != nil {
				t.Fatalf("%s/%s: %v", prog.Name, cfg.Name, err)
			}
			if s.Stats().Committed != gold.InstCount()-1 { // halt not counted
				t.Errorf("%s/%s: committed %d, emulator executed %d (incl. halt)",
					prog.Name, cfg.Name, s.Stats().Committed, gold.InstCount())
			}
			for i := 0; i < isa.NumIntRegs; i++ {
				if s.Machine().IntReg(i) != gold.IntReg(i) {
					t.Errorf("%s/%s: r%d = %d, want %d", prog.Name, cfg.Name,
						i, s.Machine().IntReg(i), gold.IntReg(i))
				}
			}
		}
	}
}

// TestDeterminism: identical runs produce identical cycle counts.
func TestDeterminism(t *testing.T) {
	cfg := config.MustNamed(4, 1, config.ModeV)
	a := run(t, cfg, noisyBranchLoop(400))
	b := run(t, cfg, noisyBranchLoop(400))
	if a.Cycles != b.Cycles || a.Committed != b.Committed || a.Validations() != b.Validations() {
		t.Errorf("non-deterministic: %d/%d vs %d/%d cycles/committed",
			a.Cycles, a.Committed, b.Cycles, b.Committed)
	}
}

// TestAllMatrixConfigsComplete runs the full Figure 11 configuration
// matrix on a small kernel.
func TestAllMatrixConfigsComplete(t *testing.T) {
	prog := sumLoop(150)
	for _, cfg := range config.Matrix() {
		st := run(t, cfg, prog)
		if st.Committed == 0 {
			t.Errorf("%s: nothing committed", cfg.Name)
		}
	}
}

func TestMorePortsNeverSlower(t *testing.T) {
	prog := fpStencil(400)
	ipc1 := run(t, config.MustNamed(4, 1, config.ModeNoIM), prog).IPC()
	ipc4 := run(t, config.MustNamed(4, 4, config.ModeNoIM), prog).IPC()
	if ipc4 < ipc1*0.98 {
		t.Errorf("4 ports (%.3f) slower than 1 port (%.3f)", ipc4, ipc1)
	}
}

func TestMaxInstsCutoff(t *testing.T) {
	s, err := New(config.FourWay(), sumLoop(10000))
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Run(500)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed < 500 || st.Committed > 500+uint64(config.FourWay().CommitWidth) {
		t.Errorf("committed %d, want ~500", st.Committed)
	}
}

func TestUnboundedResourcesVectorizeMore(t *testing.T) {
	prog := fpStencil(600)
	bounded := config.MustNamed(8, 1, config.ModeV)
	unbounded := bounded
	unbounded.Unbounded = true
	b := run(t, bounded, prog)
	u := run(t, unbounded, prog)
	if u.ValidationFraction() < b.ValidationFraction()-1e-9 {
		t.Errorf("unbounded (%.3f) vectorizes less than bounded (%.3f)",
			u.ValidationFraction(), b.ValidationFraction())
	}
}

func TestScalarOperandBlockingCostsCycles(t *testing.T) {
	// A loop where a vectorized op consumes a scalar register produced by
	// a long-latency instruction (division) each iteration.
	b := isa.NewBuilder("blocky")
	words := make([]uint64, 600)
	for i := range words {
		words[i] = uint64(i + 2)
	}
	b.DataWords("a", words)
	b.LoadAddr(r(1), "a")
	b.Li(r(2), 0)
	b.Li(r(3), 500)
	b.Li(r(7), 3)
	b.Label("loop")
	b.Ld(r(5), r(1), 0)
	b.Div(r(6), r(2), r(7)) // slow scalar producer
	b.Add(r(8), r(5), r(6)) // vector x scalar
	b.Addi(r(1), r(1), 8)
	b.Addi(r(2), r(2), 1)
	b.Blt(r(2), r(3), "loop")
	b.Halt()
	prog := b.MustBuild()

	real := config.MustNamed(4, 1, config.ModeV)
	ideal := real
	ideal.BlockScalarOperand = false
	rs := run(t, real, prog)
	is := run(t, ideal, prog)
	if rs.DecodeBlockCycles == 0 {
		t.Error("blocking config never blocked decode")
	}
	if is.DecodeBlockCycles != 0 {
		t.Error("ideal config blocked decode")
	}
	if is.IPC() < rs.IPC()-1e-9 {
		t.Errorf("ideal IPC %.3f below real %.3f", is.IPC(), rs.IPC())
	}
}
