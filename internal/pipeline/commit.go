package pipeline

import "specvec/internal/isa"

// commit retires up to CommitWidth completed instructions in program
// order. Stores write memory here (≤2 per cycle, §3.6) and run the vector
// register range check; hits invalidate the mapped VRMT entry and squash
// every younger instruction. Validation commits set element V flags;
// overwrites of a logical register set the F flag of the previous mapping;
// committed backward branches update the GMRBB and trigger register
// reclamation (§3.3). Retired uops return to the pool, which bumps their
// generation: any surviving reference (a consumer's dep, a rename-table
// entry) then reads as completed.
//
//sdv:hotpath
func (s *Simulator) commit() {
	budget := s.cfg.CommitWidth
	stores := 0
	for budget > 0 && s.rob.len() > 0 {
		u := s.rob.front()
		if !u.completed(s.cycle) {
			return
		}
		in := u.d.Inst

		if u.d.Halt {
			s.rob.popFront()
			s.halted = true
			s.lastCommitCycle = s.cycle
			return
		}

		if in.IsStore() {
			if stores >= s.cfg.StoreCommitLimit {
				return
			}
			if !s.hier.CanAcceptData(s.cycle) || !s.ports.TryAcquire() {
				return
			}
			s.hier.AccessData(u.d.EffAddr, true, s.cycle)
			s.sim.StoreAccesses++
			stores++
		}

		s.rob.popFront()
		s.removeLSQ(u)
		budget--
		s.sim.Committed++
		s.lastCommitCycle = s.cycle

		// Instruction-mix statistics.
		switch {
		case in.IsLoad():
			s.sim.CommittedLoads++
		case in.IsStore():
			s.sim.CommittedStores++
		case in.IsBranch():
			s.sim.CommittedBranches++
		case in.IsArith():
			s.sim.CommittedArith++
		}

		// Figure 10: count reuse inside the 100-instruction window after
		// each mispredicted branch.
		if s.postMispredict > 0 {
			s.sim.PostMispredictInsts++
			if u.isValidation() {
				s.sim.PostMispredictReused++
			}
			s.postMispredict--
		}
		if u.mispredicted {
			s.postMispredict = 100
		}

		if u.isValidation() {
			s.vrf.CommitValidation(u.vreg, u.vepoch, u.elem)
			if u.kind == kindLoadValidation {
				s.sim.LoadValidations++
			} else {
				s.sim.ArithValidations++
			}
		}
		if u.fellBack {
			s.sim.ValidationFailures++
		}

		// F flags: the previous committed mapping of the destination dies.
		if in.WritesReg() {
			rd := in.Rd
			if p := s.prevCommit[rd]; p.valid {
				s.vrf.SetElemFree(p.vreg, p.vepoch, p.elem)
			}
			if u.isValidation() {
				s.prevCommit[rd] = vref{valid: true, vreg: u.vreg, vepoch: u.vepoch, elem: u.elem}
			} else {
				s.prevCommit[rd] = vref{}
			}
		}

		// GMRBB: most recently committed backward branch (§3.3).
		if in.IsBranch() && u.d.Taken && uint64(in.Imm) <= u.d.PC {
			if s.gmrbb != u.d.PC {
				s.gmrbb = u.d.PC
				s.vrf.Sweep(s.gmrbb)
			}
		}

		s.jnl.Prune(u.d.Seq + 1)

		// Periodic reclamation keeps register-file occupancy realistic in
		// long-running loops where the GMRBB never changes.
		if s.cfg.Vectorize && s.sim.Committed%64 == 0 {
			s.vrf.Sweep(s.gmrbb)
		}

		// Memory coherence (§3.6): a committed store whose address falls
		// in a load-vector register's range invalidates that mapping and
		// squashes all following instructions.
		if in.IsStore() && s.cfg.Vectorize {
			check := s.vrf.CheckStoreConflict
			if s.cfg.RangeOnlyConflicts {
				check = s.vrf.CheckStoreConflictRangeOnly
			}
			if id := check(u.d.EffAddr, isa.WordBytes); id >= 0 {
				s.sim.StoreConflicts++
				s.vrmt.InvalidateByVReg(u.d.Seq, id, nil)
				s.squash(u.d.Seq + 1)
				s.recycle(u)
				return
			}
		}

		s.recycle(u)
	}
}

// recycle returns a retired uop to the pool. If the front end is still
// stalled on it (a mispredicted branch can commit in the same cycle that
// fetch would observe its completion), the stall is resolved here with the
// same redirect arithmetic fetch would have applied.
func (s *Simulator) recycle(u *uop) {
	if s.fetchStall == u {
		if at := u.doneAt + uint64(s.cfg.MispredictPenalty); at > s.fetchReadyAt {
			s.fetchReadyAt = at
		}
		s.fetchStall = nil
	}
	s.uops.put(u)
}

// removeLSQ drops a committing memory op from the load/store queue. The
// queue is program-ordered and commit retires in program order, so the op
// is the queue's oldest entry (and, for stores, the oldest tracked store
// position).
func (s *Simulator) removeLSQ(u *uop) {
	if !u.inLSQ {
		return
	}
	if s.lsq.len() > 0 && s.lsq.front() == u {
		s.lsq.popFront()
		if u.d.Inst.IsStore() && len(s.storePos) > 0 {
			s.storePos = s.storePos[:copy(s.storePos, s.storePos[1:])]
		}
		return
	}
	// Unreachable by construction; kept as a safe fallback so a future
	// out-of-order removal cannot corrupt the ring silently.
	for p := s.lsq.head; p < s.lsq.tail; p++ {
		if s.lsq.at(p) == u {
			for q := p; q > s.lsq.head; q-- {
				s.lsq.buf[q&s.lsq.mask] = s.lsq.buf[(q-1)&s.lsq.mask]
			}
			s.lsq.popFront()
			s.rebuildStorePos()
			return
		}
	}
}

// rebuildStorePos reconstructs the store-position mirror from the ring
// (fallback paths only; the hot paths maintain it incrementally).
func (s *Simulator) rebuildStorePos() {
	s.storePos = s.storePos[:0]
	for p := s.lsq.head; p < s.lsq.tail; p++ {
		if s.lsq.at(p).d.Inst.IsStore() {
			s.storePos = append(s.storePos, p)
		}
	}
}
