package pipeline

import "specvec/internal/isa"

// commit retires up to CommitWidth completed instructions in program
// order. Stores write memory here (≤2 per cycle, §3.6) and run the vector
// register range check; hits invalidate the mapped VRMT entry and squash
// every younger instruction. Validation commits set element V flags;
// overwrites of a logical register set the F flag of the previous mapping;
// committed backward branches update the GMRBB and trigger register
// reclamation (§3.3).
func (s *Simulator) commit() {
	budget := s.cfg.CommitWidth
	stores := 0
	for budget > 0 && len(s.rob) > 0 {
		u := s.rob[0]
		if !u.completed(s.cycle) {
			return
		}
		in := u.d.Inst

		if u.d.Halt {
			s.rob = s.rob[1:]
			s.halted = true
			s.lastCommitCycle = s.cycle
			return
		}

		if in.IsStore() {
			if stores >= s.cfg.StoreCommitLimit {
				return
			}
			if !s.hier.CanAcceptData(s.cycle) || !s.ports.TryAcquire() {
				return
			}
			s.hier.AccessData(u.d.EffAddr, true, s.cycle)
			s.sim.StoreAccesses++
			stores++
		}

		s.rob = s.rob[1:]
		s.removeLSQ(u)
		budget--
		s.sim.Committed++
		s.lastCommitCycle = s.cycle

		// Instruction-mix statistics.
		switch {
		case in.IsLoad():
			s.sim.CommittedLoads++
		case in.IsStore():
			s.sim.CommittedStores++
		case in.IsBranch():
			s.sim.CommittedBranches++
		case in.IsArith():
			s.sim.CommittedArith++
		}

		// Figure 10: count reuse inside the 100-instruction window after
		// each mispredicted branch.
		if s.postMispredict > 0 {
			s.sim.PostMispredictInsts++
			if u.isValidation() {
				s.sim.PostMispredictReused++
			}
			s.postMispredict--
		}
		if u.mispredicted {
			s.postMispredict = 100
		}

		if u.isValidation() {
			s.vrf.CommitValidation(u.vreg, u.vepoch, u.elem)
			if u.kind == kindLoadValidation {
				s.sim.LoadValidations++
			} else {
				s.sim.ArithValidations++
			}
		}
		if u.fellBack {
			s.sim.ValidationFailures++
		}

		// F flags: the previous committed mapping of the destination dies.
		if in.WritesReg() {
			rd := in.Rd
			if p := s.prevCommit[rd]; p.valid {
				s.vrf.SetElemFree(p.vreg, p.vepoch, p.elem)
			}
			if u.isValidation() {
				s.prevCommit[rd] = vref{valid: true, vreg: u.vreg, vepoch: u.vepoch, elem: u.elem}
			} else {
				s.prevCommit[rd] = vref{}
			}
		}

		// GMRBB: most recently committed backward branch (§3.3).
		if in.IsBranch() && u.d.Taken && uint64(in.Imm) <= u.d.PC {
			if s.gmrbb != u.d.PC {
				s.gmrbb = u.d.PC
				s.vrf.Sweep(s.gmrbb)
			}
		}

		s.jnl.Prune(u.d.Seq + 1)

		// Periodic reclamation keeps register-file occupancy realistic in
		// long-running loops where the GMRBB never changes.
		if s.cfg.Vectorize && s.sim.Committed%64 == 0 {
			s.vrf.Sweep(s.gmrbb)
		}

		// Memory coherence (§3.6): a committed store whose address falls
		// in a load-vector register's range invalidates that mapping and
		// squashes all following instructions.
		if in.IsStore() && s.cfg.Vectorize {
			check := s.vrf.CheckStoreConflict
			if s.cfg.RangeOnlyConflicts {
				check = s.vrf.CheckStoreConflictRangeOnly
			}
			if id := check(u.d.EffAddr, isa.WordBytes); id >= 0 {
				s.sim.StoreConflicts++
				s.vrmt.InvalidateByVReg(u.d.Seq, id, nil)
				s.squash(u.d.Seq + 1)
				return
			}
		}
	}
}

func (s *Simulator) removeLSQ(u *uop) {
	if !u.inLSQ {
		return
	}
	for i, e := range s.lsq {
		if e == u {
			s.lsq = append(s.lsq[:i], s.lsq[i+1:]...)
			return
		}
	}
}
