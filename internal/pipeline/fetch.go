package pipeline

import "specvec/internal/isa"

// fetch pulls up to FetchWidth instructions from the dynamic stream,
// modelling I-cache latency, the one-taken-branch-per-cycle limit, and the
// fetch stall on mispredicted control instructions (trace-driven recovery:
// the correct path resumes once the branch resolves, plus a redirect
// penalty). Fetched uops come from the simulator's free-list pool; the
// record held across an I-cache miss is kept by value so the stage never
// allocates.
//
//sdv:hotpath
func (s *Simulator) fetch() {
	// A mispredicted control instruction blocks fetch until it resolves.
	if s.fetchStall != nil {
		if !s.fetchStall.completed(s.cycle) {
			return
		}
		if at := s.fetchStall.doneAt + uint64(s.cfg.MispredictPenalty); at > s.fetchReadyAt {
			s.fetchReadyAt = at
		}
		s.fetchStall = nil
	}
	if s.fetchHalted || s.cycle < s.fetchReadyAt {
		return
	}
	if s.fetchBuf.len() >= 2*s.cfg.FetchWidth {
		return
	}

	lineBytes := uint64(s.cfg.Mem.ICache.LineBytes)
	var curLine uint64
	haveLine := false

	for n := 0; n < s.cfg.FetchWidth; n++ {
		d := &s.pendingInst
		if !s.pendingValid {
			rec, ok := s.strm.NextRef()
			if !ok {
				return
			}
			d = rec
		}
		s.pendingValid = false

		byteAddr := isa.PCToByte(d.PC)
		line := byteAddr / lineBytes
		if !haveLine {
			lat := s.hier.AccessInst(byteAddr)
			if lat > 1 {
				// I-cache miss: hold the record, resume when the line
				// arrives (the fill has warmed the cache).
				s.pendingInst = *d
				s.pendingValid = true
				s.fetchReadyAt = s.cycle + uint64(lat)
				return
			}
			curLine, haveLine = line, true
		} else if line != curLine {
			// Fetch groups do not cross I-cache lines.
			s.pendingInst = *d
			s.pendingValid = true
			return
		}

		u := s.uops.get()
		u.d = *d
		replayed := s.hasFetched && d.Seq <= s.maxFetchedSeq
		if !replayed {
			s.maxFetchedSeq, s.hasFetched = d.Seq, true
		} else {
			u.statsCounted = true
		}
		s.sim.Fetched++

		if d.Inst.IsControl() && !d.Halt {
			_, correct := s.pred.Predict(d.PC, d.Inst, d.Taken, d.NextPC)
			if !correct {
				u.mispredicted = true
				if !replayed {
					if d.Inst.IsBranch() {
						s.sim.BranchMispredicts++
					} else {
						s.sim.JumpMispredicts++
					}
				}
			}
		}

		s.fetchBuf.push(u)

		if d.Halt {
			s.fetchHalted = true
			return
		}
		if u.mispredicted {
			// Wrong-path fetch is not modelled; stall until resolution.
			s.fetchStall = u
			return
		}
		if d.Inst.IsControl() && d.NextPC != d.PC+1 {
			// Taken control flow: at most one taken branch per cycle.
			return
		}
	}
}
