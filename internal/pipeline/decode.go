package pipeline

import (
	"specvec/internal/core"
	"specvec/internal/isa"
)

// decode renames and dispatches up to DecodeWidth instructions per cycle
// in program order, driving the SDV engine: TL updates, vectorization
// triggering, conversion into validations, operand checks, and the
// scalar-operand decode block of §3.2.
//
//sdv:hotpath
func (s *Simulator) decode() {
	for n := 0; n < s.cfg.DecodeWidth && s.fetchBuf.len() > 0; n++ {
		u := s.fetchBuf.front()
		if s.robFull() || len(s.iq) >= s.cfg.IQSize {
			return
		}
		if u.d.Inst.IsMem() && s.lsq.len() >= s.cfg.LSQSize {
			return
		}

		// Capture in-flight producers for the register sources.
		srcs, nsrc := u.d.Inst.SrcRegs()
		for i := 0; i < nsrc; i++ {
			if srcs[i].IsZero() {
				continue
			}
			if w := s.lastWriter[srcs[i]]; w.inFlight(s.cycle) {
				u.deps[i] = w
			}
		}

		if s.sdvDecode(u) {
			// Vectorized instruction with a not-ready scalar register
			// operand: decode blocks, stalling younger instructions
			// (§3.2, Figure 7).
			s.sim.DecodeBlockCycles++
			return
		}

		s.fetchBuf.popFront()
		s.rob.push(u)
		s.dispatch(u)
		if u.d.Inst.IsMem() {
			u.lsqPos = s.lsq.push(u)
			u.inLSQ = true
			if u.d.Inst.IsStore() {
				s.storePos = append(s.storePos, u.lsqPos)
			}
		}

		if u.d.Inst.WritesReg() {
			rd := u.d.Inst.Rd
			s.lastWriter[rd] = uopRef{u: u, gen: u.gen}
			next := core.VSEntry{}
			if u.isValidation() {
				next = core.VSEntry{IsVector: true, VReg: u.vreg, VEpoch: u.vepoch, Offset: u.elem}
			}
			// Journal only real transitions: most instructions overwrite an
			// already-scalar entry with the scalar state, and undoing a
			// no-op restores nothing.
			if s.vs[rd] != next {
				s.jnl.PushVS(u.d.Seq, &s.vs[rd])
				s.vs[rd] = next
			}
		}
	}
}

// sdvDecode applies the dynamic vectorization rules to one instruction.
// It returns true when decode must stall this cycle (scalar operand not
// ready); in that case no state has been modified.
func (s *Simulator) sdvDecode(u *uop) (blocked bool) {
	in := u.d.Inst
	switch {
	case in.IsLoad():
		obs := s.tl.Observe(u.d.Seq, u.d.PC, u.d.EffAddr, s.jnl)
		if !obs.FirstSeen && !u.statsCounted {
			s.sim.StrideHist.Add(strideBucket(obs.Stride))
		}
		if s.cfg.Vectorize {
			s.decodeLoadSDV(u, obs.Stride, obs.Confident)
		}
		return false
	case in.IsArith() && s.cfg.Vectorize:
		return s.decodeArithSDV(u)
	default:
		return false
	}
}

// strideBucket converts a byte stride to the element-count bucket of
// Figure 1 (stride divided by the data size); non-word-multiple strides
// fall into the overflow bucket.
func strideBucket(stride int64) int {
	if stride < 0 {
		stride = -stride
	}
	if stride%isa.WordBytes != 0 {
		return -1
	}
	return int(stride / isa.WordBytes)
}

// decodeLoadSDV handles a load: VRMT hit → validation / roll-over /
// misspeculation; VRMT miss with a confident stride → fire vectorization.
func (s *Simulator) decodeLoadSDV(u *uop, stride int64, confident bool) {
	seq, pc := u.d.Seq, u.d.PC
	entry, found := s.vrmt.Lookup(pc)
	if found && !s.vrf.ValidRef(entry.VReg, entry.VEpoch) {
		s.vrmt.InvalidateEntry(seq, entry, s.jnl)
		found = false
	}
	vl := s.cfg.VectorLen

	if found {
		// Capture the mapping before makeValidation/Insert mutate the
		// live entry in place.
		eVReg, eVEpoch, eOffset := entry.VReg, entry.VEpoch, entry.Offset
		r := s.vrf.Reg(eVReg)
		if eOffset >= vl {
			// Register exhausted: generate the next vectorized instance
			// covering the following window (§3.2).
			if r.ElemAddr(vl) == u.d.EffAddr && s.createVectorLoad(u, r.Stride) {
				return
			}
			if r.ElemAddr(vl) != u.d.EffAddr {
				s.loadMisspeculation(u, entry)
				return
			}
			s.vrmt.InvalidateEntry(seq, entry, s.jnl) // no free register: back to scalar
			return
		}
		if r.ElemAddr(eOffset) != u.d.EffAddr {
			s.loadMisspeculation(u, entry)
			return
		}
		nextBase, nextStride := r.ElemAddr(vl), r.Stride
		s.makeValidation(u, kindLoadValidation, eVReg, eVEpoch, eOffset, entry)
		// §3.2: "if the validated element is the last one of the vector, a
		// new instance of the vectorized instruction is dispatched to the
		// vector data-path" — the next window starts prefetching one
		// iteration before its first validation arrives. If no register is
		// free the offset-exhausted path above retries later.
		if eOffset == vl-1 {
			s.dispatchNextLoadWindow(u.d.Seq, u.d.PC, nextBase, nextStride)
		}
		return
	}

	if confident {
		s.createVectorLoad(u, stride)
	}
}

// loadMisspeculation handles a failed address check: the instance (and
// following ones) execute in scalar mode and the TL must re-learn the
// pattern (§3.1).
func (s *Simulator) loadMisspeculation(u *uop, entry *core.Entry) {
	u.fellBack = true
	s.vrmt.InvalidateEntry(u.d.Seq, entry, s.jnl)
	s.tl.ResetConfidence(u.d.Seq, u.d.PC, s.jnl)
}

// createVectorLoad allocates a register, dispatches a vector-load instance
// for the next VL addresses and turns u into the validation of element 0.
func (s *Simulator) createVectorLoad(u *uop, stride int64) bool {
	if len(s.viq) >= s.cfg.VIQSize {
		s.countSkip(u.d.Seq)
		return false
	}
	id, epoch, ok := s.allocVReg(u.d.Seq, u.d.PC, true, 0)
	if !ok {
		s.countSkip(u.d.Seq)
		return false
	}
	s.vrf.SetRange(id, u.d.EffAddr, stride)
	slot := s.insertVRMT(u.d.Seq, core.Entry{PC: u.d.PC, VReg: id, VEpoch: epoch})

	v := s.vops.get()
	v.isLoad = true
	v.op = u.d.Inst.Op
	v.vreg = id
	v.vepoch = epoch
	v.vl = s.cfg.VectorLen
	s.buildLoadGroups(v, u.d.EffAddr, stride)
	s.viq = append(s.viq, v)

	s.sim.VectorLoadInstances++
	s.jnl.PushDec(u.d.Seq, &s.sim.VectorLoadInstances)

	s.makeValidation(u, kindLoadValidation, id, epoch, 0, slot)
	u.producer, u.producerGen = v, v.gen
	return true
}

// dispatchNextLoadWindow speculatively allocates and dispatches the next
// window of a vectorized load (predicted base address; the element-0
// validation later confirms it).
func (s *Simulator) dispatchNextLoadWindow(seq, pc, base uint64, stride int64) {
	if len(s.viq) >= s.cfg.VIQSize {
		s.countSkip(seq)
		return
	}
	id, epoch, ok := s.allocVReg(seq, pc, true, 0)
	if !ok {
		s.countSkip(seq)
		return
	}
	s.vrf.SetRange(id, base, stride)
	s.vrmt.Insert(seq, core.Entry{PC: pc, VReg: id, VEpoch: epoch}, s.jnl)
	v := s.vops.get()
	v.isLoad = true
	v.vreg = id
	v.vepoch = epoch
	v.vl = s.cfg.VectorLen
	s.buildLoadGroups(v, base, stride)
	s.viq = append(s.viq, v)
	s.sim.VectorLoadInstances++
	s.jnl.PushDec(seq, &s.sim.VectorLoadInstances)
}

// insertVRMT installs a mapping and returns its live slot.
func (s *Simulator) insertVRMT(seq uint64, e core.Entry) *core.Entry {
	s.vrmt.Insert(seq, e, s.jnl)
	slot, _ := s.vrmt.Lookup(e.PC)
	return slot
}

// buildLoadGroups splits a vector load's element addresses into bus
// transactions: one line per access on the wide bus, one element per
// access on scalar buses (§3.7). Groups live in the vop's pooled scratch.
func (s *Simulator) buildLoadGroups(v *vop, base uint64, stride int64) {
	vl := v.vl
	if cap(v.elemsBuf) < vl {
		// Reserve up front: groups alias subranges of elemsBuf, so the
		// backing array must not move mid-build.
		v.elemsBuf = make([]int, 0, vl)
	}
	for i := 0; i < vl; i++ {
		addr := base + uint64(int64(i)*stride)
		v.elemsBuf = append(v.elemsBuf, i)
		tail := v.elemsBuf[len(v.elemsBuf)-1:]
		if !s.cfg.WideBus {
			v.groups = append(v.groups, loadGroup{addr: addr, elems: tail})
			continue
		}
		line := s.hier.DLineAddr(addr)
		if n := len(v.groups); n > 0 && v.groups[n-1].addr == line {
			last := &v.groups[n-1]
			last.elems = last.elems[:len(last.elems)+1]
			continue
		}
		v.groups = append(v.groups, loadGroup{addr: line, elems: tail})
	}
}

// decodeArithSDV handles arithmetic: propagation of the vectorizable
// attribute down the dependence graph, operand validation, roll-over and
// the scalar-operand decode block.
func (s *Simulator) decodeArithSDV(u *uop) (blocked bool) {
	in := u.d.Inst
	seq, pc := u.d.Seq, u.d.PC
	srcs, nsrc := in.SrcRegs()
	if nsrc == 0 {
		return false // li and friends: no register sources to propagate from
	}

	// Resolve current operands against the V/S rename state (Figure 6).
	var cur [2]core.Operand
	var curVS [2]core.VSEntry
	srcVals := [2]uint64{u.d.Src1Val, u.d.Src2Val}
	for i := 0; i < nsrc; i++ {
		r := srcs[i]
		if !r.IsZero() {
			if e := s.vs[r]; e.IsVector && s.vrf.ValidRef(e.VReg, e.VEpoch) {
				cur[i] = core.Operand{Kind: core.OperandVector, VReg: e.VReg}
				curVS[i] = e
				continue
			}
		}
		cur[i] = core.Operand{Kind: core.OperandScalar, Value: srcVals[i]}
	}
	if nsrc < 2 {
		if in.HasImmOperand() {
			cur[1] = core.Operand{Kind: core.OperandImm, Value: uint64(in.Imm)}
		} else {
			cur[1] = core.Operand{Kind: core.OperandNone}
		}
	}
	anyVector := cur[0].Kind == core.OperandVector || cur[1].Kind == core.OperandVector

	entry, found := s.vrmt.Lookup(pc)
	if found && !s.vrf.ValidRef(entry.VReg, entry.VEpoch) {
		s.vrmt.InvalidateEntry(seq, entry, s.jnl)
		found = false
	}
	if !found && !anyVector {
		return false // plain scalar instruction
	}

	// §3.2: an instruction with a recorded scalar operand must compare the
	// register's current value against the VRMT at decode; if the producer
	// is still in flight, decode blocks (Figure 7's "ideal" bars skip the
	// stall). Recording a value into a *new* instance needs no comparison
	// and does not stall. The wait is bounded: after maxBlockCycles the
	// check is abandoned — the instance executes in scalar mode and the PC
	// takes a churn strike (an operand that is chronically late behaves
	// like one that chronically mismatches).
	const maxBlockCycles = 4
	if s.cfg.BlockScalarOperand && found && entry.Offset < s.cfg.VectorLen {
		for i := 0; i < nsrc; i++ {
			rec := entry.Src1
			if i == 1 {
				rec = entry.Src2
			}
			if rec.Kind == core.OperandScalar && cur[i].Kind == core.OperandScalar &&
				u.deps[i].inFlight(s.cycle) {
				if u.blockedCycles >= maxBlockCycles {
					s.strikeChurn(seq, pc)
					s.vrmt.InvalidateEntry(seq, entry, s.jnl)
					return false // proceed in scalar mode
				}
				u.blockedCycles++
				return true
			}
		}
	}

	vl := s.cfg.VectorLen
	if found {
		if entry.Offset >= vl {
			// Exhausted: next vectorized instance from current operands.
			if anyVector && !s.churned(seq, pc) && s.createVectorArith(u, cur, curVS) {
				return false
			}
			s.vrmt.InvalidateEntry(seq, entry, s.jnl)
			return false
		}
		if entry.Src1.Matches(cur[0]) && entry.Src2.Matches(cur[1]) {
			s.makeValidation(u, kindArithValidation, entry.VReg, entry.VEpoch, entry.Offset, entry)
			return false
		}
		// A scalar value that differs on every instance is not a
		// vectorizable pattern (§3.1): repeated scalar-value mismatches
		// put the PC on cooldown so it executes in scalar mode for a
		// while instead of churning a new instance per iteration.
		vecOK := (entry.Src1.Kind != core.OperandVector || entry.Src1.Matches(cur[0])) &&
			(entry.Src2.Kind != core.OperandVector || entry.Src2.Matches(cur[1]))
		scalarMiss := (entry.Src1.Kind == core.OperandScalar && !entry.Src1.Matches(cur[0])) ||
			(entry.Src2.Kind == core.OperandScalar && !entry.Src2.Matches(cur[1]))
		if vecOK && scalarMiss {
			s.strikeChurn(seq, pc)
		}
		// Operand change: "a new vectorized version of the instruction is
		// generated" (§3.2), unless the PC is on churn cooldown.
		if anyVector && !s.churned(seq, pc) && s.createVectorArith(u, cur, curVS) {
			return false
		}
		s.vrmt.InvalidateEntry(seq, entry, s.jnl)
		return false
	}

	if !s.churned(seq, pc) {
		s.createVectorArith(u, cur, curVS)
	}
	return false
}

// Churn cooldown parameters: a strike (scalar-value mismatch) adds
// churnStrike; creation is suppressed while the level is at or above
// churnGate, decaying by churnDecay per suppressed attempt so the engine
// periodically retries the pattern.
const (
	churnStrike = 100
	churnGate   = 150
	churnCap    = 250
	churnDecay  = 1
	churnSlots  = 4096
)

// churned reports whether pc is on vectorization cooldown, decaying the
// level on each suppressed attempt (journalled for squash replay).
func (s *Simulator) churned(seq, pc uint64) bool {
	if !s.cfg.ChurnDamper {
		return false
	}
	slot := &s.churn[pc%churnSlots]
	if *slot < churnGate {
		return false
	}
	s.jnl.PushU8(seq, slot)
	*slot -= churnDecay
	return true
}

// strikeChurn records a scalar-value mismatch for pc.
func (s *Simulator) strikeChurn(seq, pc uint64) {
	slot := &s.churn[pc%churnSlots]
	s.jnl.PushU8(seq, slot)
	if *slot > churnCap-churnStrike {
		*slot = churnCap
	} else {
		*slot += churnStrike
	}
}

// createVectorArith allocates a register and dispatches an arithmetic
// vector instance; u becomes the validation of its first element. The
// instance starts at the greatest source offset (§3.4); elements below it
// are never computed.
func (s *Simulator) createVectorArith(u *uop, cur [2]core.Operand, curVS [2]core.VSEntry) bool {
	if len(s.viq) >= s.cfg.VIQSize {
		s.countSkip(u.d.Seq)
		return false
	}
	destStart := 0
	offsetNonZero := false
	for i := range cur {
		if cur[i].Kind == core.OperandVector {
			if curVS[i].Offset > destStart {
				destStart = curVS[i].Offset
			}
			if curVS[i].Offset != 0 {
				offsetNonZero = true
			}
		}
	}
	id, epoch, ok := s.allocVReg(u.d.Seq, u.d.PC, false, destStart)
	if !ok {
		s.countSkip(u.d.Seq)
		return false
	}
	slot := s.insertVRMT(u.d.Seq, core.Entry{
		PC: u.d.PC, VReg: id, VEpoch: epoch, Offset: destStart,
		Src1: cur[0], Src2: cur[1],
	})

	v := s.vops.get()
	v.op = u.d.Inst.Op
	v.vreg = id
	v.vepoch = epoch
	v.vl = s.cfg.VectorLen
	v.destStart = destStart
	v.nextElem = destStart
	for i := range cur {
		switch cur[i].Kind {
		case core.OperandVector:
			v.srcs[i] = vsrc{kind: srcVector, vreg: curVS[i].VReg, vepoch: curVS[i].VEpoch, start: curVS[i].Offset}
			s.vrf.Pin(curVS[i].VReg, curVS[i].VEpoch)
		case core.OperandScalar, core.OperandImm:
			v.srcs[i] = vsrc{kind: srcReady}
		}
	}
	s.viq = append(s.viq, v)

	s.sim.VectorArithInstances++
	s.jnl.PushDec(u.d.Seq, &s.sim.VectorArithInstances)
	if offsetNonZero {
		s.sim.VectorInstsOffsetNonZero++
		s.jnl.PushDec(u.d.Seq, &s.sim.VectorInstsOffsetNonZero)
	} else {
		s.sim.VectorInstsOffsetZero++
		s.jnl.PushDec(u.d.Seq, &s.sim.VectorInstsOffsetZero)
	}

	s.makeValidation(u, kindArithValidation, id, epoch, destStart, slot)
	u.producer, u.producerGen = v, v.gen
	return true
}

// makeValidation converts u into a validation of element elem: the U flag
// is set, the VRMT offset advances, and (for arithmetic) register
// dependences are dropped — operands were checked at decode and the result
// is the already-(being-)computed element. entry is the live VRMT slot for
// u's PC (so the offset advance needs no second lookup).
func (s *Simulator) makeValidation(u *uop, kind uopKind, vreg int, epoch uint64, elem int, entry *core.Entry) {
	u.kind = kind
	u.vreg, u.vepoch, u.elem = vreg, epoch, elem
	s.vrf.SetUsed(u.d.Seq, vreg, epoch, elem, s.jnl)
	s.vrmt.AdvanceEntry(u.d.Seq, entry, s.jnl)
	if u.producer == nil {
		u.producer, u.producerGen = s.findVop(vreg, epoch)
	}
	if kind == kindArithValidation {
		u.deps = [2]uopRef{}
	}
}

// allocVReg claims a vector register, running a reclamation sweep and
// retrying once when the file is exhausted (hardware frees registers as
// soon as the §3.3 conditions hold; the sweep is this model's lazy
// equivalent).
func (s *Simulator) allocVReg(seq, pc uint64, isLoad bool, start int) (int, uint64, bool) {
	id, epoch, ok := s.vrf.Alloc(seq, pc, s.gmrbb, isLoad, start, s.jnl)
	if !ok {
		if s.vrf.Sweep(s.gmrbb) == 0 {
			return -1, 0, false
		}
		id, epoch, ok = s.vrf.Alloc(seq, pc, s.gmrbb, isLoad, start, s.jnl)
	}
	return id, epoch, ok
}

// findVop locates the in-flight vector instance writing (vreg, epoch).
func (s *Simulator) findVop(vreg int, epoch uint64) (*vop, uint64) {
	for _, v := range s.viq {
		if v.vreg == vreg && v.vepoch == epoch {
			return v, v.gen
		}
	}
	return nil, 0
}

// countSkip records a vectorization opportunity lost to resource
// exhaustion (no free vector register or full vector queue).
func (s *Simulator) countSkip(seq uint64) {
	s.sim.VRegAllocFailures++
	s.jnl.PushDec(seq, &s.sim.VRegAllocFailures)
}
