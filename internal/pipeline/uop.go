// Package pipeline is the cycle-level out-of-order superscalar model —
// the SimpleScalar-like substrate of the paper's evaluation — extended at
// decode, issue and commit with the speculative dynamic vectorization
// engine from internal/core.
//
// The model is trace-driven: the functional emulator supplies the
// committed-path dynamic instruction stream (with effective addresses,
// branch outcomes and operand values), and this package replays it against
// real structural, data and memory-system constraints. On a branch
// misprediction fetch stalls until the branch resolves plus a redirect
// penalty; wrong-path instructions are not simulated (see DESIGN.md §3 for
// why this preserves the paper's behaviour). Vector state survives both
// mispredictions (control independence, §3.5) and store-conflict squashes
// (§3.6), which rewind decode-side SDV state through the core.Journal and
// replay the stream.
package pipeline

import (
	"specvec/internal/emu"
	"specvec/internal/isa"
)

// uopKind distinguishes normal execution from the paper's validation
// operations.
type uopKind uint8

const (
	kindNormal uopKind = iota
	// kindLoadValidation checks the predicted address of one vector
	// element instead of accessing memory.
	kindLoadValidation
	// kindArithValidation checks recorded source operands instead of
	// executing on a functional unit.
	kindArithValidation
)

// uop is one in-flight dynamic instruction.
type uop struct {
	d emu.DynInst

	kind uopKind

	// deps are the in-flight producers of the register sources, aligned
	// with isa.Inst.SrcRegs order (nil = value already committed/ready).
	deps [2]*uop

	issued bool
	doneAt uint64 // result/completion cycle; valid once issued

	// Memory state.
	inLSQ bool

	// SDV state for validations.
	vreg     int
	vepoch   uint64
	elem     int
	producer *vop // vector instance producing the awaited element
	fellBack bool // validation converted to scalar execution

	// Control state.
	mispredicted  bool  // direction/target prediction was wrong at fetch
	statsCounted  bool  // fetched before (replay after squash): skip stats
	blockedCycles uint8 // decode stalls spent waiting for a scalar operand
}

func (u *uop) completed(cycle uint64) bool { return u.issued && u.doneAt <= cycle }

// depsReady reports whether every register source has its value available.
func (u *uop) depsReady(cycle uint64) bool {
	for _, d := range u.deps {
		if d != nil && !d.completed(cycle) {
			return false
		}
	}
	return true
}

// addrReady reports whether a memory op's address operands are available
// (source 0 is the base register for loads and stores).
func (u *uop) addrReady(cycle uint64) bool {
	return u.deps[0] == nil || u.deps[0].completed(cycle)
}

// dataReady reports whether a store's data operand is available.
func (u *uop) dataReady(cycle uint64) bool {
	return u.deps[1] == nil || u.deps[1].completed(cycle)
}

// isValidation reports whether the uop is a check operation.
func (u *uop) isValidation() bool {
	return u.kind == kindLoadValidation || u.kind == kindArithValidation
}

// wordAddr returns the 8-byte-aligned address of a memory op.
func (u *uop) wordAddr() uint64 { return u.d.EffAddr &^ uint64(isa.WordBytes-1) }

// vsrc is one source of a vector instance.
type vsrc struct {
	kind   isVec
	vreg   int
	vepoch uint64
	start  int // element offset of the source at instance creation (§3.4)
}

type isVec uint8

const (
	srcNone isVec = iota
	srcVector
	srcReady // scalar or immediate: available from instance creation
)

// loadGroup is one memory access of a vector load: the elements served by
// a single bus transaction (a whole line on the wide bus, one element on a
// scalar bus).
type loadGroup struct {
	addr  uint64 // address to access (line-aligned for wide buses)
	elems []int
}

// vop is one vector instance in the vector issue queue. Vector instances
// are not architectural: they occupy no ROB entry, survive branch flushes,
// and write element R flags with real timing.
type vop struct {
	isLoad bool
	op     isa.Op // latency/pool class for arithmetic instances

	vreg   int
	vepoch uint64

	destStart int // first element to compute (§3.4)
	nextElem  int // next element index to schedule (arith)

	srcs [2]vsrc

	vl int // vector length (elements per register)

	// Load state.
	groups    []loadGroup
	nextGroup int

	aborted bool
}

func (v *vop) done() bool {
	if v.aborted {
		return true
	}
	if v.isLoad {
		return v.nextGroup >= len(v.groups)
	}
	return v.nextElem >= v.vl
}

// fuPool models one functional-unit pool. Pipelined operations occupy a
// unit for one cycle; unpipelined ones (divides) hold it for their full
// latency (Table 1).
type fuPool struct {
	units []uint64 // busy-until cycle per unit
}

func newFUPool(n int) *fuPool { return &fuPool{units: make([]uint64, n)} }

// tryIssue claims a unit at cycle; returns false when all are busy.
func (p *fuPool) tryIssue(cycle uint64, lat int, pipelined bool) bool {
	for i, busy := range p.units {
		if busy <= cycle {
			if pipelined {
				p.units[i] = cycle + 1
			} else {
				p.units[i] = cycle + uint64(lat)
			}
			return true
		}
	}
	return false
}
