package pipeline

import (
	"specvec/internal/emu"
	"specvec/internal/isa"
)

// uopKind distinguishes normal execution from the paper's validation
// operations.
type uopKind uint8

const (
	kindNormal uopKind = iota
	// kindLoadValidation checks the predicted address of one vector
	// element instead of accessing memory.
	kindLoadValidation
	// kindArithValidation checks recorded source operands instead of
	// executing on a functional unit.
	kindArithValidation
)

// uopRef is a generation-checked reference to a pooled uop. When the
// referenced uop is recycled its generation moves on; a stale reference
// then reads as "completed" — the only way a uop leaves the pipeline while
// references to it survive is by committing (squashes flush referer and
// referee together).
type uopRef struct {
	u   *uop
	gen uint64
}

// completed reports whether the referenced producer's result is available
// at cycle. A nil or stale (recycled ⇒ committed) reference is complete.
func (r uopRef) completed(cycle uint64) bool {
	return r.u == nil || r.u.gen != r.gen || r.u.completed(cycle)
}

// inFlight reports whether the reference still names a live, uncompleted
// uop.
func (r uopRef) inFlight(cycle uint64) bool {
	return r.u != nil && r.u.gen == r.gen && !r.u.completed(cycle)
}

// uop is one in-flight dynamic instruction. uops are pool-allocated and
// recycled at commit or squash; all cross-uop references go through
// generation-checked uopRefs.
type uop struct {
	d emu.DynInst

	gen  uint64 // bumped on every recycle; validates uopRefs
	kind uopKind

	// deps are the in-flight producers of the register sources, aligned
	// with isa.Inst.SrcRegs order (zero ref = value already
	// committed/ready).
	deps [2]uopRef

	issued bool
	doneAt uint64 // result/completion cycle; valid once issued

	// Issue-stage scheduling state (see issue.go): readyAt is the earliest
	// cycle the register sources allow issue (known once every in-flight
	// producer has issued); pendingDeps counts producers that have not yet
	// issued (doneAt unknown); waiters are consumers to notify when this
	// uop issues; iqIdx is the current position in the issue queue.
	readyAt     uint64
	pendingDeps int8
	iqIdx       int32
	waiters     []uopRef

	// Memory state.
	inLSQ  bool
	lsqPos uint64 // absolute LSQ ring position (valid while inLSQ)

	// SDV state for validations.
	vreg        int
	vepoch      uint64
	elem        int
	producer    *vop   // vector instance producing the awaited element
	producerGen uint64 // generation of producer at capture
	fellBack    bool   // validation converted to scalar execution

	// Control state.
	mispredicted  bool  // direction/target prediction was wrong at fetch
	statsCounted  bool  // fetched before (replay after squash): skip stats
	blockedCycles uint8 // decode stalls spent waiting for a scalar operand
}

func (u *uop) completed(cycle uint64) bool { return u.issued && u.doneAt <= cycle }

// depsReady reports whether every register source has its value available.
func (u *uop) depsReady(cycle uint64) bool {
	return u.deps[0].completed(cycle) && u.deps[1].completed(cycle)
}

// addrReady reports whether a memory op's address operands are available
// (source 0 is the base register for loads and stores).
func (u *uop) addrReady(cycle uint64) bool { return u.deps[0].completed(cycle) }

// dataReady reports whether a store's data operand is available.
func (u *uop) dataReady(cycle uint64) bool { return u.deps[1].completed(cycle) }

// isValidation reports whether the uop is a check operation.
func (u *uop) isValidation() bool {
	return u.kind == kindLoadValidation || u.kind == kindArithValidation
}

// wordAddr returns the 8-byte-aligned address of a memory op.
func (u *uop) wordAddr() uint64 { return u.d.EffAddr &^ uint64(isa.WordBytes-1) }

// liveProducer returns the producing vector instance if the reference is
// still current, nil otherwise (recycled instance: it either finished —
// every element scheduled — or aborted).
func (u *uop) liveProducer() *vop {
	if u.producer != nil && u.producer.gen == u.producerGen {
		return u.producer
	}
	return nil
}

// uopPool is a free list of uops. get returns a fully zeroed uop (fresh
// generation); put recycles one, invalidating outstanding uopRefs.
type uopPool struct {
	free []*uop

	// Counters for internal/profile reporting.
	news     uint64 // pool misses: heap allocations
	recycles uint64 // puts
}

func (p *uopPool) get() *uop {
	if n := len(p.free); n > 0 {
		u := p.free[n-1]
		p.free = p.free[:n-1]
		return u
	}
	p.news++
	return &uop{}
}

func (p *uopPool) put(u *uop) {
	p.recycles++
	gen := u.gen + 1
	waiters := u.waiters[:0]
	*u = uop{gen: gen, waiters: waiters}
	p.free = append(p.free, u)
}

// vsrc is one source of a vector instance.
type vsrc struct {
	kind   isVec
	vreg   int
	vepoch uint64
	start  int // element offset of the source at instance creation (§3.4)
}

type isVec uint8

const (
	srcNone isVec = iota
	srcVector
	srcReady // scalar or immediate: available from instance creation
)

// loadGroup is one memory access of a vector load: the elements served by
// a single bus transaction (a whole line on the wide bus, one element on a
// scalar bus). elems points into the owning vop's elemsBuf scratch.
type loadGroup struct {
	addr  uint64 // address to access (line-aligned for wide buses)
	elems []int
}

// vop is one vector instance in the vector issue queue. Vector instances
// are not architectural: they occupy no ROB entry, survive branch flushes,
// and write element R flags with real timing. vops are pool-allocated and
// recycled when they drain or abort; uops reference them through
// (pointer, generation) pairs.
type vop struct {
	gen uint64 // bumped on every recycle

	isLoad bool
	op     isa.Op // latency/pool class for arithmetic instances

	vreg   int
	vepoch uint64

	destStart int // first element to compute (§3.4)
	nextElem  int // next element index to schedule (arith)

	srcs [2]vsrc

	vl int // vector length (elements per register)

	// Load state. groups and elemsBuf are pool-owned scratch reused across
	// recycles: groups[i].elems are subslices of elemsBuf.
	groups    []loadGroup
	elemsBuf  []int
	nextGroup int

	aborted bool
}

func (v *vop) done() bool {
	if v.aborted {
		return true
	}
	if v.isLoad {
		return v.nextGroup >= len(v.groups)
	}
	return v.nextElem >= v.vl
}

// vopPool is a free list of vector instances.
type vopPool struct {
	free []*vop

	news     uint64
	recycles uint64
}

func (p *vopPool) get() *vop {
	if n := len(p.free); n > 0 {
		v := p.free[n-1]
		p.free = p.free[:n-1]
		return v
	}
	p.news++
	return &vop{}
}

func (p *vopPool) put(v *vop) {
	p.recycles++
	gen := v.gen + 1
	groups := v.groups[:0]
	elems := v.elemsBuf[:0]
	*v = vop{gen: gen, groups: groups, elemsBuf: elems}
	p.free = append(p.free, v)
}

// uopRing is a fixed-capacity FIFO over a power-of-two ring, used for the
// program-ordered windows (ROB, LSQ, fetch buffer) so steady-state
// operation never reallocates. Entries are addressed by absolute position
// (monotonic), which the LSQ uses to walk older stores without scanning.
type uopRing struct {
	buf  []*uop
	mask uint64
	head uint64 // absolute position of the oldest entry
	tail uint64 // absolute position one past the newest
}

func newUopRing(capacity int) *uopRing {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &uopRing{buf: make([]*uop, n), mask: uint64(n - 1)}
}

func (r *uopRing) len() int   { return int(r.tail - r.head) }
func (r *uopRing) full() bool { return r.tail-r.head == uint64(len(r.buf)) }

// push appends u and returns its absolute position.
func (r *uopRing) push(u *uop) uint64 {
	pos := r.tail
	r.buf[pos&r.mask] = u
	r.tail++
	return pos
}

func (r *uopRing) front() *uop { return r.buf[r.head&r.mask] }

func (r *uopRing) popFront() *uop {
	u := r.buf[r.head&r.mask]
	r.buf[r.head&r.mask] = nil
	r.head++
	return u
}

// at returns the entry at absolute position pos (head <= pos < tail).
func (r *uopRing) at(pos uint64) *uop { return r.buf[pos&r.mask] }

func (r *uopRing) clear() {
	for p := r.head; p < r.tail; p++ {
		r.buf[p&r.mask] = nil
	}
	r.head, r.tail = 0, 0
}

// fuPool models one functional-unit pool. Pipelined operations occupy a
// unit for one cycle; unpipelined ones (divides) hold it for their full
// latency (Table 1).
type fuPool struct {
	units []uint64 // busy-until cycle per unit
}

func newFUPool(n int) *fuPool { return &fuPool{units: make([]uint64, n)} }

// tryIssue claims a unit at cycle; returns false when all are busy.
func (p *fuPool) tryIssue(cycle uint64, lat int, pipelined bool) bool {
	for i, busy := range p.units {
		if busy <= cycle {
			if pipelined {
				p.units[i] = cycle + 1
			} else {
				p.units[i] = cycle + uint64(lat)
			}
			return true
		}
	}
	return false
}
