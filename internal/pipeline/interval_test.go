package pipeline

import (
	"reflect"
	"testing"

	"specvec/internal/config"
	"specvec/internal/isa"
	"specvec/internal/workload"
)

func intervalSim(t *testing.T, cfg config.Config, prog *isa.Program) *Simulator {
	t.Helper()
	sim, err := New(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func intervalProg(t *testing.T, bench string) *isa.Program {
	t.Helper()
	b, err := workload.Get(bench)
	if err != nil {
		t.Fatal(err)
	}
	return b.Build(10_000, 1)
}

// TestRunIntervalZeroWarmupMatchesRun pins the exactness contract:
// RunInterval(0, n) on a fresh simulator produces the same figures as
// Run(n), field for field.
func TestRunIntervalZeroWarmupMatchesRun(t *testing.T) {
	prog := intervalProg(t, "compress")
	cfg := config.MustNamed(4, 1, config.ModeV)

	plain, err := intervalSim(t, cfg, prog).Run(8000)
	if err != nil {
		t.Fatal(err)
	}
	interval, err := intervalSim(t, cfg, prog).RunInterval(0, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, interval) {
		t.Errorf("RunInterval(0, n) differs from Run(n):\nrun:      %+v\ninterval: %+v", plain, interval)
	}
}

// TestRunIntervalExcludesWarmup checks that a measured interval contains
// only its own progress: the warmup commits are subtracted out (up to
// the commit-width overshoot at the boundary), and the measured counters
// are those of the matching window of a straight run.
func TestRunIntervalExcludesWarmup(t *testing.T) {
	prog := intervalProg(t, "swim")
	cfg := config.MustNamed(4, 1, config.ModeV)
	const warmup, measure = 3000, 4000

	st, err := intervalSim(t, cfg, prog).RunInterval(warmup, measure)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed < measure || st.Committed >= measure+uint64(cfg.CommitWidth) {
		t.Errorf("measured interval committed %d, want [%d, %d)", st.Committed, measure, measure+uint64(cfg.CommitWidth))
	}

	// The same window cut out by differencing two independent straight
	// runs must agree on the progress counters untouched by Finalize: the
	// simulator is deterministic, so the full run's state as it crosses
	// the warmup boundary matches the head run's final state exactly.
	head, err := intervalSim(t, cfg, prog).RunInterval(0, warmup)
	if err != nil {
		t.Fatal(err)
	}
	full, err := intervalSim(t, cfg, prog).RunInterval(0, warmup+measure)
	if err != nil {
		t.Fatal(err)
	}
	wantCommitted := full.Committed - head.Committed
	wantCycles := full.Cycles - head.Cycles
	wantMem := full.MemAccesses - head.MemAccesses
	if st.Committed != wantCommitted || st.Cycles != wantCycles || st.MemAccesses != wantMem {
		t.Errorf("interval (committed %d, cycles %d, mem %d) != differenced window (committed %d, cycles %d, mem %d)",
			st.Committed, st.Cycles, st.MemAccesses, wantCommitted, wantCycles, wantMem)
	}
}
