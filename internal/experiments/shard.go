package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"specvec/internal/config"
	"specvec/internal/obs"
	"specvec/internal/pipeline"
	"specvec/internal/profile"
	"specvec/internal/stats"
	"specvec/internal/trace"
)

// Checkpointed fast-forward: a recorded trace with embedded checkpoints
// lets one (configuration, benchmark) simulation split into K measured
// intervals that run concurrently. Each shard starts its replay at the
// latest checkpoint comfortably before its interval, seeds the branch
// predictor with the recorded outcome history, re-warms
// microarchitectural state across the warmup window, and measures only
// its own interval; the per-interval statistics are merged in shard
// order, so results are deterministic regardless of scheduling.

// DefaultShardWarmup is the minimum number of instructions a shard
// replays before measurement begins. Restored checkpoints carry
// architectural state only — caches, predictor tables and the SDV
// structures start cold — so the warmup window exists to re-train them;
// 4096 instructions cover the deepest configuration's in-flight capacity
// several times over.
const DefaultShardWarmup = 4096

// shardSpec is one fast-forwarded interval of a sharded run.
type shardSpec struct {
	replayFrom uint64 // source offset replay starts at (checkpoint boundary or 0)
	bhr        uint64 // branch-outcome history recorded at that boundary
	seedBHR    bool
	warmup     uint64 // commits before measurement (replayFrom..start)
	measure    uint64 // measured commits (start..end)
}

// shardPlan splits [0, total) committed instructions into shards
// intervals. Each interval fast-forwards to the latest checkpoint at
// least warmup records before its start, so its warmup is within
// [warmup, warmup+checkpoint interval); with no usable checkpoint the
// shard replays from record zero (correct, just a longer warmup). A
// halted trace shorter than total clamps the plan to what was recorded.
func shardPlan(tr *trace.Trace, total uint64, shards int, warmup uint64) []shardSpec {
	if n := uint64(tr.Len()); tr.Halted() && n < total {
		total = n
	}
	if shards < 1 {
		shards = 1
	}
	if uint64(shards) > total && total > 0 {
		shards = int(total)
	}
	step := total / uint64(shards)
	plan := make([]shardSpec, 0, shards)
	for i := 0; i < shards; i++ {
		start := uint64(i) * step
		end := start + step
		if i == shards-1 {
			end = total
		}
		sp := shardSpec{measure: end - start}
		var warmStart uint64
		if start > warmup {
			warmStart = start - warmup
		}
		if ck, ok := tr.CheckpointBefore(warmStart); ok {
			sp.replayFrom = ck.Seq
			sp.bhr = ck.BHR
			sp.seedBHR = true
		}
		sp.warmup = start - sp.replayFrom
		plan = append(plan, sp)
	}
	return plan
}

// runShard executes one interval of the plan. A non-nil ctx cancels the
// interval (service-layer jobs); a non-nil hot callback receives the
// shard simulator's hot-path counters. A non-nil d replays through a
// cursor over the shared decoded trace (gang replay) instead of
// materializing a private window — the shards of every gang member then
// decode each block once between them.
func runShard(ctx context.Context, cfg config.Config, tr *trace.Trace, d *trace.Decoded, sp shardSpec, hot func(profile.HotStats)) (*stats.Sim, error) {
	var src pipeline.Source
	if d != nil {
		src = d.CursorAt(sp.replayFrom)
	} else {
		src = trace.NewReplayerAt(tr, pipeline.SourceWindow(cfg), sp.replayFrom)
	}
	sim, err := pipeline.NewFromSource(cfg, src)
	if err != nil {
		return nil, err
	}
	if ctx != nil {
		sim.SetContext(ctx)
	}
	if sp.seedBHR {
		sim.SeedBranchHistory(sp.bhr)
	}
	st, err := sim.RunInterval(sp.warmup, sp.measure)
	if hot != nil {
		hot(sim.HotStats())
	}
	return st, err
}

// runShards executes a plan concurrently — one worker-pool slot per
// in-flight shard — and merges the interval statistics in shard order.
// onDone (optional) observes each finished interval with the count of
// completed intervals so far; it may be called concurrently.
func runShards(ctx context.Context, cfg config.Config, tr *trace.Trace, d *trace.Decoded, plan []shardSpec,
	sem chan struct{}, hot func(profile.HotStats), onDone func(done, total int)) (*stats.Sim, error) {
	results := make([]*stats.Sim, len(plan))
	errs := make([]error, len(plan))
	var wg sync.WaitGroup
	var finished atomic.Int32
	for i, sp := range plan {
		wg.Add(1)
		go func(i int, sp shardSpec) {
			defer wg.Done()
			if ctx != nil {
				select {
				case sem <- struct{}{}:
				case <-ctx.Done():
					errs[i] = ctx.Err()
					return
				}
			} else {
				sem <- struct{}{}
			}
			defer func() { <-sem }()
			results[i], errs[i] = runShard(ctx, cfg, tr, d, sp, hot)
			if errs[i] == nil && onDone != nil {
				onDone(int(finished.Add(1)), len(plan))
			}
		}(i, sp)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if len(results) == 0 {
		return stats.New(), nil
	}
	merged := results[0]
	for _, st := range results[1:] {
		merged.Merge(st)
	}
	return merged, nil
}

// shardedReplay runs one sharded simulation on the runner's worker pool.
// The caller (Run) holds one pool slot; it is released while the shards
// fan out — each shard acquires its own — and re-acquired before
// returning so Run's release stays balanced and total concurrency never
// exceeds Workers. sc, when active, receives a "shard-fanout" span
// covering the whole fan-out (per-interval timing lives in the merged
// statistics, not the timeline — local shards share one clock, so the
// envelope is what a waterfall needs).
func (r *Runner) shardedReplay(cfg config.Config, bench string, tr *trace.Trace, d *trace.Decoded, sc obs.SpanContext) (*stats.Sim, error) {
	plan := shardPlan(tr, uint64(r.opts.Scale), r.opts.Shards, uint64(r.opts.ShardWarmup))
	var onDone func(done, total int)
	if r.opts.Progress != nil {
		onDone = func(done, total int) {
			r.emit(ProgressEvent{Kind: ShardDone, Cfg: cfg.Name, Bench: bench,
				Shard: done, Shards: total})
		}
	}
	fan := sc.Start("shard-fanout")
	<-r.sem
	st, err := runShards(r.ctx, cfg, tr, d, plan, r.sem, r.collectHot, onDone)
	r.sem <- struct{}{}
	fan.End()
	if err != nil {
		return nil, fmt.Errorf("experiments: %s/%s: %w", cfg.Name, bench, err)
	}
	return st, nil
}

// ShardedReplay simulates total committed instructions of a recorded
// trace under cfg as shards checkpoint-fast-forwarded intervals running
// on up to workers goroutines, and merges the per-interval statistics
// (sdvsim -trace-replay -shards). shards <= 1 is exact mode: one
// single-pass replay, byte-identical to an unsharded run. warmup <= 0
// uses DefaultShardWarmup; workers <= 0 uses every core. A trace without
// checkpoints still shards correctly, but every shard then replays from
// record zero, serializing most of the win.
func ShardedReplay(cfg config.Config, tr *trace.Trace, total uint64, shards, warmup, workers int) (*stats.Sim, error) {
	if shards <= 1 {
		sim, err := pipeline.NewFromSource(cfg, trace.NewReplayer(tr, pipeline.SourceWindow(cfg)))
		if err != nil {
			return nil, err
		}
		return sim.Run(total)
	}
	if warmup <= 0 {
		warmup = DefaultShardWarmup
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return runShards(nil, cfg, tr, nil, shardPlan(tr, total, shards, uint64(warmup)),
		make(chan struct{}, workers), nil, nil)
}
