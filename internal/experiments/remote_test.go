package experiments

import (
	"context"
	"encoding/json"
	"sync/atomic"
	"testing"

	"specvec/internal/config"
	"specvec/internal/emu"
	"specvec/internal/stats"
	"specvec/internal/trace"
	"specvec/internal/workload"
)

// wireExecutor is a RemoteShards that executes every task through
// ExecuteShardTask after a JSON round trip of both the task and the
// result — exactly the transformation a real worker dispatch performs,
// minus the network.
type wireExecutor struct {
	tasks atomic.Int64
}

func (e *wireExecutor) RunShard(ctx context.Context, task ShardTask, tr *trace.Trace) (*stats.Sim, error) {
	e.tasks.Add(1)
	b, err := json.Marshal(task)
	if err != nil {
		return nil, err
	}
	var back ShardTask
	if err := json.Unmarshal(b, &back); err != nil {
		return nil, err
	}
	st, err := ExecuteShardTask(ctx, back, tr)
	if err != nil {
		return nil, err
	}
	rb, err := json.Marshal(st)
	if err != nil {
		return nil, err
	}
	out := stats.New()
	if err := json.Unmarshal(rb, out); err != nil {
		return nil, err
	}
	return out, nil
}

// TestRemoteReplayByteIdentical is the cluster acceptance pin at the
// experiments layer: with Options.Remote set — whole runs (Shards
// unset) and sharded runs alike, gang replay on and off — the rendered
// statistics must be byte-identical to a local runner at the same
// execution shape. Remote dispatch changes where replay runs, never
// what it computes.
func TestRemoteReplayByteIdentical(t *testing.T) {
	cfgs := []config.Config{
		config.MustNamed(4, 1, config.ModeIM),
		config.MustNamed(4, 1, config.ModeV),
	}
	cases := []struct {
		name string
		opts Options
	}{
		{"whole runs", Options{Scale: 15_000, Seed: 1, Workers: 4}},
		{"whole runs, no gang", Options{Scale: 15_000, Seed: 1, Workers: 4, Gang: 1}},
		{"sharded", Options{Scale: 15_000, Seed: 1, Workers: 4, Shards: 4}},
		{"sharded, no gang", Options{Scale: 15_000, Seed: 1, Workers: 2, Shards: 3, Gang: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, _ := renderSuite(t, tc.opts, cfgs...)
			exec := &wireExecutor{}
			tc.opts.Remote = exec
			got, _ := renderSuite(t, tc.opts, cfgs...)
			if got != want {
				t.Error("remote-dispatched statistics diverge from the local runner")
			}
			if exec.tasks.Load() == 0 {
				t.Error("no tasks reached the remote executor")
			}
		})
	}
}

// TestRemoteTaskCounts pins the dispatch arithmetic: a sharded sweep
// sends one task per shard interval, a whole-run sweep one task per
// (config, benchmark) replay.
func TestRemoteTaskCounts(t *testing.T) {
	cfg := config.MustNamed(4, 1, config.ModeV)
	exec := &wireExecutor{}
	r := NewRunner(Options{Scale: 12_000, Seed: 1, Workers: 2, Shards: 3, Remote: exec})
	sims, err := r.RunAll(suiteSpecs(cfg))
	if err != nil {
		t.Fatal(err)
	}
	benches := int64(len(sims))
	if got := exec.tasks.Load(); got != 3*benches {
		t.Errorf("sharded sweep dispatched %d tasks, want %d (3 shards × %d benchmarks)", got, 3*benches, benches)
	}
}

// TestExecuteShardTaskValidates pins the worker-side entry point's
// error paths: a nil trace and an invalid configuration fail with a
// clear error instead of replaying garbage.
func TestExecuteShardTaskValidates(t *testing.T) {
	cfg := config.MustNamed(4, 1, config.ModeV)
	if _, err := ExecuteShardTask(context.Background(), ShardTask{Cfg: cfg, Bench: "x"}, nil); err == nil {
		t.Error("nil trace accepted")
	}
	bad := cfg
	bad.FetchWidth = -1
	tr := recordSmallTrace(t)
	if _, err := ExecuteShardTask(context.Background(), ShardTask{Cfg: bad, Bench: "x", Measure: 100}, tr); err == nil {
		t.Error("invalid config accepted")
	}
}

// recordSmallTrace produces a tiny recording to exercise task
// validation against.
func recordSmallTrace(t *testing.T) *trace.Trace {
	t.Helper()
	prog, err := workload.Get("compress")
	if err != nil {
		t.Fatal(err)
	}
	p := prog.Build(2_000, 1)
	mach, err := emu.New(p)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := trace.NewRecorder(mach, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := rec.Finish(2_000 + trace.RecordSlack)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}
