// Package experiments regenerates every figure and table of the paper's
// evaluation (§4) plus the headline numbers quoted in the abstract and
// conclusions. Each experiment returns a Table whose rows are benchmarks
// (with INT / FP / Spec95 aggregate rows) so the output can be compared
// against the published charts shape-for-shape.
//
// The Runner executes (configuration, benchmark) pairs on a worker pool
// with single-flight memoisation: figures that share simulations (e.g. the
// Figure 11/12 sweep) run each one once, and -parallel N fans independent
// runs across cores with output identical to a sequential run. A second
// memo layer shares work across the configurations of a sweep: the first
// simulation of a benchmark builds the program and records its dynamic
// instruction stream (internal/trace) while running, and every other
// configuration replays the recording instead of re-running functional
// emulation. With Options.Shards > 1 each simulation is further split
// into checkpoint-fast-forwarded intervals that run concurrently
// (shard.go) and merge their statistics — exact single-pass behaviour is
// kept at Shards <= 1. See EXPERIMENTS.md for paper-vs-measured results
// and the performance methodology, and ARCHITECTURE.md for the figure →
// code map, the trace subsystem and the sharding accuracy contract.
package experiments
