package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"specvec/internal/config"
	"specvec/internal/emu"
	"specvec/internal/isa"
	"specvec/internal/obs"
	"specvec/internal/pipeline"
	"specvec/internal/profile"
	"specvec/internal/stats"
	"specvec/internal/trace"
	"specvec/internal/workload"
)

// Options control the scale of all experiment runs.
type Options struct {
	// Scale is the approximate dynamic instruction count per run. The
	// paper simulates 100M instructions per benchmark; the default here is
	// laptop-sized and can be raised with -scale.
	Scale int
	// Seed perturbs the generated workload data.
	Seed int64
	// Workers bounds the number of simulations executing concurrently.
	// <= 0 means runtime.GOMAXPROCS(0); 1 is strictly sequential. Results
	// are byte-identical regardless of Workers: every simulation is an
	// independent deterministic run and tables are assembled in a fixed
	// order.
	//
	//sdv:shape
	Workers int
	// NoSharedTraces disables the per-benchmark trace/program memo: every
	// run builds its own program and emulates functionally, as if it were
	// the only one. Results are byte-identical either way; the flag exists
	// for benchmarking the sharing itself and as an escape hatch.
	//
	//sdv:shape
	NoSharedTraces bool
	// Shards splits every (configuration, benchmark) simulation into this
	// many measured intervals, each fast-forwarded to a trace checkpoint
	// and dispatched to the worker pool, with per-interval statistics
	// merged in a fixed order. <= 1 is exact mode: the single-pass
	// behaviour, byte-identical to a Runner without sharding. Sharded
	// (K > 1) figures agree with exact ones within the warmup tolerance
	// (see ShardWarmup); a single large benchmark stops being a
	// sequential wall because its intervals run concurrently.
	// NoSharedTraces disables sharding too: without a shared recording
	// there are no checkpoints to fast-forward to.
	Shards int
	// CheckpointEvery is the interval, in committed instructions, between
	// architectural checkpoints embedded in recorded traces. <= 0
	// defaults to twice ShardWarmup when sharding is enabled — spacing is
	// warmup-relative, not Scale-relative, so the duplicated warmup work
	// per shard stays small — and records no checkpoints otherwise.
	CheckpointEvery int
	// ShardWarmup is the minimum number of instructions a shard replays
	// before its measured interval begins, re-warming caches, the branch
	// predictor and the SDV structures from the restored boundary. <= 0
	// defaults to DefaultShardWarmup when sharding is enabled.
	ShardWarmup int
	// Context, when non-nil, cancels the runner: in-flight simulations
	// abort within a few thousand cycles, queued work is not started, and
	// Run/RunAll return the context's error. The service layer hands each
	// job its own context so abandoned requests stop burning workers. A
	// memo entry whose run was cancelled is evicted, so cancellation never
	// poisons the cache for a later requester. Results are unaffected: a
	// run that completes before cancellation is byte-identical to one
	// without a context.
	Context context.Context
	// Progress, when non-nil, receives run lifecycle events (see
	// ProgressEvent). It is called concurrently from worker goroutines —
	// it must be safe for concurrent use and must not call back into the
	// Runner. Observation only: results are byte-identical with or
	// without it.
	//
	//sdv:shape
	Progress func(ProgressEvent)
	// Traces, when non-nil, persists recorded benchmark traces across
	// Runner instances (see TraceStore). A leader checks the store before
	// recording and publishes successful recordings back to it.
	Traces TraceStore
	// Gang controls gang replay: configurations submitted together
	// (RunAll/Prefetch) that share one recorded benchmark are grouped
	// into a gang whose members replay a single shared pre-decoded trace
	// walk (trace.Decoded) through per-member cursors, so column decode
	// and operand materialization happen once per block instead of once
	// per configuration. 0 (the default) gangs every configuration of a
	// benchmark in the batch; 1 disables ganging — each replay
	// materializes its own window, the pre-gang behaviour; K >= 2 caps
	// members per gang. Like Workers, this is execution shape only:
	// results are byte-identical in every mode, which is why the service
	// layer excludes it from cache keys.
	//
	//sdv:shape
	Gang int
	// Workloads, when non-nil, resolves benchmark names instead of the
	// global workload registry. The service layer threads a per-job
	// resolver built from the job's workload-spec payload through here,
	// so concurrent jobs carrying different spec files never observe each
	// other's generated workloads. Nil means workload.Get: built-ins plus
	// whatever the process registered at startup (CLI -spec flags).
	Workloads func(name string) (workload.Benchmark, error)
	// Remote, when non-nil, dispatches trace-replay simulations — whole
	// runs and shards alike — to cluster workers (see RemoteShards).
	// Recording and live-emulation fallbacks stay local. Execution shape
	// only: replay is deterministic, so results are byte-identical with
	// and without it, at any worker count, and across worker failures
	// (the executor requeues a dead node's tasks).
	//
	//sdv:shape
	Remote RemoteShards
}

// DefaultOptions returns the standard experiment scale.
func DefaultOptions() Options {
	return Options{Scale: 300_000, Seed: 1, Workers: runtime.GOMAXPROCS(0)}
}

// WithDefaults returns o with every defaulted field resolved — the exact
// options a Runner built from o will report via Opts(). The service layer
// uses it to scope trace artifact stores by effective (scale, seed,
// checkpoint spacing) before the Runner exists.
func (o Options) WithDefaults() Options { return o.withDefaults() }

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = DefaultOptions().Scale
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Shards > 1 {
		if o.ShardWarmup <= 0 {
			o.ShardWarmup = DefaultShardWarmup
		}
		if o.CheckpointEvery <= 0 {
			// A shard's warmup is ShardWarmup plus up to one checkpoint
			// interval of slack (it fast-forwards to the latest boundary at
			// least ShardWarmup before its interval), so checkpoints are
			// spaced relative to the warmup — not the interval — to keep
			// the duplicated work per shard small.
			o.CheckpointEvery = max(1024, 2*o.ShardWarmup)
		}
	}
	return o
}

// RunSpec names one (configuration, benchmark) simulation.
type RunSpec struct {
	Cfg   config.Config
	Bench string
}

// runKey is the comparable memo key of one simulation: the configuration
// fields that influence results plus the benchmark name. Scale and seed
// are fixed per Runner and need no representation. A struct key keeps
// string formatting out of the memo hot path.
type runKey struct {
	name               string
	unbounded          bool
	blockScalarOperand bool
	churnDamper        bool
	rangeOnlyConflicts bool
	vectorLen          int
	vectorRegs         int
	confThreshold      int
	bench              string
}

func (r *Runner) key(cfg config.Config, bench string) runKey {
	return runKey{
		name:               cfg.Name,
		unbounded:          cfg.Unbounded,
		blockScalarOperand: cfg.BlockScalarOperand,
		churnDamper:        cfg.ChurnDamper,
		rangeOnlyConflicts: cfg.RangeOnlyConflicts,
		vectorLen:          cfg.VectorLen,
		vectorRegs:         cfg.VectorRegs,
		confThreshold:      cfg.ConfThreshold,
		bench:              bench,
	}
}

// call is one memoised simulation. The first requester of a key becomes
// the leader and computes; every later requester blocks on done and
// shares the leader's result (singleflight), so experiments that overlap
// (e.g. Figures 11 and 12) pay for each run once even when submitted
// concurrently.
type call struct {
	done chan struct{}
	st   *stats.Sim
	err  error
}

// traceCall is one memoised (benchmark, scale, seed) recording: the built
// program and the recorded dynamic instruction stream, shared by every
// configuration that simulates the benchmark. The first requester records
// (while its own timing simulation runs); every later requester replays.
// The resolved fields encode three outcomes:
//
//   - prog != nil, tr != nil: recording usable, followers replay.
//   - prog != nil, tr == nil: recording failed; err wraps
//     ErrRecordingUnusable (never nil — publishTrace enforces it) and
//     followers fall back to live emulation of the shared program.
//   - prog == nil: program construction failed; err is fatal for every
//     run of the benchmark.
type traceCall struct {
	done chan struct{}
	prog *isa.Program
	tr   *trace.Trace
	err  error
}

// ErrRecordingUnusable marks a shared-trace entry whose recording failed
// after the benchmark program itself was built: the benchmark is still
// simulable, so followers emulate live instead of replaying. It replaces
// the old behaviour of silently discarding rec.Finish errors, which
// published a nil trace with a nil error to every follower.
var ErrRecordingUnusable = errors.New("experiments: benchmark recording unusable")

// Runner executes (configuration, benchmark) pairs on a bounded worker
// pool with two memo layers: per-(config, benchmark) statistics, and
// per-benchmark recorded traces shared across every configuration of a
// sweep. It is safe for concurrent use by multiple goroutines.
type Runner struct {
	opts Options
	ctx  context.Context // Options.Context or Background; never nil
	sem  chan struct{}   // bounds concurrently executing simulations

	mu      sync.Mutex
	cache   map[runKey]*call
	traces  map[string]*traceCall
	decoded map[string]*decodedEntry // per-benchmark gang-shared decoded traces

	sims     atomic.Int64 // simulations actually executed (cache misses)
	recorded atomic.Int64 // benchmark traces recorded (trace-cache misses)
	replayed atomic.Int64 // simulations served from a recorded trace
	loaded   atomic.Int64 // benchmark traces loaded from Options.Traces

	gangBatches atomic.Int64 // gangs of >= 2 members that shared a walk
	gangRuns    atomic.Int64 // member simulations those gangs served
	decodes     atomic.Int64 // decoded-trace blocks decoded (retired entries)
	decodeLoads atomic.Int64 // decoded-trace block fetches (retired entries)

	// Aggregated pipeline hot-path counters across every simulation the
	// runner executed (service /metrics). Folded via profile.HotStats.Add
	// under hotMu — one fold per finished simulator, far off any hot path.
	hotMu sync.Mutex
	hot   profile.HotStats
}

// NewRunner returns a Runner with the given options.
func NewRunner(opts Options) *Runner {
	opts = opts.withDefaults()
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	return &Runner{
		opts:    opts,
		ctx:     ctx,
		sem:     make(chan struct{}, opts.Workers),
		cache:   map[runKey]*call{},
		traces:  map[string]*traceCall{},
		decoded: map[string]*decodedEntry{},
	}
}

// emit delivers a progress event to Options.Progress, if any.
func (r *Runner) emit(ev ProgressEvent) {
	if r.opts.Progress != nil {
		r.opts.Progress(ev)
	}
}

// cancelled reports whether err is a context cancellation (the runner's
// own or a deadline).
func cancelled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// collectHot folds one finished simulator's hot-path counters into the
// runner's aggregate.
func (r *Runner) collectHot(h profile.HotStats) {
	r.hotMu.Lock()
	r.hot.Add(h)
	r.hotMu.Unlock()
}

// HotStats returns pool-traffic counters aggregated over every simulation
// the runner executed. JournalDepth is zero: it is per-simulator state,
// not a sum (see profile.HotStats.Add).
func (r *Runner) HotStats() profile.HotStats {
	r.hotMu.Lock()
	defer r.hotMu.Unlock()
	return r.hot
}

// Opts returns the runner's options.
func (r *Runner) Opts() Options { return r.opts }

// Simulations returns how many simulations the runner has actually
// executed — i.e. cache misses; singleflight-shared and memoised requests
// do not count.
func (r *Runner) Simulations() int64 { return r.sims.Load() }

// TraceRecordings returns how many benchmark traces have been recorded
// (at most one per benchmark).
func (r *Runner) TraceRecordings() int64 { return r.recorded.Load() }

// TraceReplays returns how many simulations ran from a recorded trace
// instead of live functional emulation.
func (r *Runner) TraceReplays() int64 { return r.replayed.Load() }

// TraceLoads returns how many benchmark traces were served by
// Options.Traces instead of being recorded.
func (r *Runner) TraceLoads() int64 { return r.loaded.Load() }

// GangBatches returns how many gangs of two or more members shared one
// decoded trace walk.
func (r *Runner) GangBatches() int64 { return r.gangBatches.Load() }

// GangRuns returns the total member simulations those gangs served;
// GangRuns / GangBatches is the mean number of configurations driven per
// shared walk.
func (r *Runner) GangRuns() int64 { return r.gangRuns.Load() }

// DecodedBlocks returns how many trace blocks gang replay actually
// decoded, including blocks of entries still live.
func (r *Runner) DecodedBlocks() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.decodes.Load()
	for _, e := range r.decoded {
		n += e.d.BlockDecodes()
	}
	return n
}

// DecodedBlockLoads returns how many block fetches gang cursors
// performed; DecodedBlockLoads - DecodedBlocks is the decode work the
// sharing saved.
func (r *Runner) DecodedBlockLoads() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.decodeLoads.Load()
	for _, e := range r.decoded {
		n += e.d.BlockLoads()
	}
	return n
}

// Run simulates benchmark bench under cfg and returns its statistics.
// Results are memoised on (config name, variant flags, benchmark); an
// in-flight run for the same key is joined rather than duplicated.
func (r *Runner) Run(cfg config.Config, bench string) (*stats.Sim, error) {
	key := r.key(cfg, bench)
	r.mu.Lock()
	if c, ok := r.cache[key]; ok {
		r.mu.Unlock()
		select {
		case <-c.done:
		case <-r.ctx.Done():
			return nil, r.ctx.Err()
		}
		r.emit(ProgressEvent{Kind: RunDone, Cfg: cfg.Name, Bench: bench, Cached: true, Err: c.err})
		return c.st, c.err
	}
	c := &call{done: make(chan struct{})}
	r.cache[key] = c
	r.mu.Unlock()

	// Check the context before the pool: select{} picks randomly when both
	// a free slot and a cancelled context are ready, and a cancelled runner
	// must not start new simulations.
	if err := r.ctx.Err(); err != nil {
		c.err = err
	} else {
		select {
		case r.sem <- struct{}{}:
			c.st, c.err = r.simulate(cfg, bench)
			<-r.sem
		case <-r.ctx.Done():
			c.err = r.ctx.Err()
		}
	}
	if c.err != nil && cancelled(c.err) {
		// A cancelled run must not poison the memo: evict the entry before
		// waking followers so the next requester (with a live context)
		// recomputes. Followers already waiting still observe the error.
		r.mu.Lock()
		if r.cache[key] == c {
			delete(r.cache, key)
		}
		r.mu.Unlock()
	}
	close(c.done)
	r.emit(ProgressEvent{Kind: RunDone, Cfg: cfg.Name, Bench: bench, Err: c.err})
	return c.st, c.err
}

// recordTarget is the length a recording is extended to when the program
// has not halted by then: the commit limit (Scale) plus more than the
// in-flight capacity of the widest configuration. No replay can observe
// records past that point, so longer-running programs need not be
// emulated to their halt.
func (r *Runner) recordTarget() int { return r.opts.Scale + trace.RecordSlack }

// usable reports whether the recorded trace can feed a simulation under
// cfg: it either ends in a halt or extends past the commit limit by at
// least cfg's in-flight capacity.
func (r *Runner) usable(tr *trace.Trace, cfg config.Config) bool {
	return tr != nil && (tr.Halted() || tr.Len() >= r.opts.Scale+pipeline.SourceWindow(cfg))
}

// sharedTrace returns the bench's trace entry, electing the caller's
// goroutine as recorder if none exists yet. The second return is true for
// the leader, which receives an unresolved entry (prog/tr unset) and MUST
// resolve it via publishTrace or publishLoadedTrace. Followers block until
// the entry resolves or the runner's context is cancelled (non-nil error).
func (r *Runner) sharedTrace(bench string) (*traceCall, bool, error) {
	r.mu.Lock()
	tc, ok := r.traces[bench]
	if !ok {
		tc = &traceCall{done: make(chan struct{})}
		r.traces[bench] = tc
		r.mu.Unlock()
		return tc, true, nil
	}
	r.mu.Unlock()
	select {
	case <-tc.done:
	case <-r.ctx.Done():
		return nil, false, r.ctx.Err()
	}
	return tc, false, nil
}

// dropTrace evicts bench's trace entry if it is still tc, so a
// cancellation-poisoned recording does not stick to the benchmark for
// every later run. Call before publishing the entry.
func (r *Runner) dropTrace(bench string, tc *traceCall) {
	r.mu.Lock()
	if r.traces[bench] == tc {
		delete(r.traces, bench)
	}
	r.mu.Unlock()
}

// publishTrace resolves a leader's trace entry and wakes the followers.
// An entry without a trace must carry the reason: a nil trace published
// with a nil error would leave followers unable to distinguish "the
// recording failed" from anything else (the swallowed-error bug this
// guard pins shut), so such a call is coerced to ErrRecordingUnusable.
// A freshly recorded trace is persisted to Options.Traces, if configured
// — after the followers are woken: the store's disk tier encodes and
// writes megabytes, and the in-memory trace is already complete, so the
// sweep's critical path must not wait out the persistence of an
// optimisation.
func (r *Runner) publishTrace(tc *traceCall, bench string, prog *isa.Program, tr *trace.Trace, err error) {
	if tr == nil && err == nil {
		err = ErrRecordingUnusable
	}
	tc.prog, tc.tr, tc.err = prog, tr, err
	if tr != nil {
		r.recorded.Add(1)
	}
	close(tc.done)
	if tr != nil && r.opts.Traces != nil {
		r.opts.Traces.Store(bench, tr)
	}
}

// publishLoadedTrace resolves a leader's trace entry with a recording
// served by Options.Traces (counted separately from fresh recordings, and
// not written back to the store).
func (r *Runner) publishLoadedTrace(tc *traceCall, prog *isa.Program, tr *trace.Trace) {
	tc.prog, tc.tr = prog, tr
	r.loaded.Add(1)
	close(tc.done)
}

// loadStoredTrace asks Options.Traces for a usable recording of bench: it
// must cover this runner's record target (or end in a halt) and, for
// sharded runs, carry checkpoints to fast-forward to. An unusable stored
// trace is ignored — the leader records afresh.
func (r *Runner) loadStoredTrace(bench string) (*trace.Trace, bool) {
	if r.opts.Traces == nil {
		return nil, false
	}
	tr, ok := r.opts.Traces.Load(bench)
	if !ok || tr == nil {
		return nil, false
	}
	if !tr.Halted() && tr.Len() < r.recordTarget() {
		return nil, false
	}
	if r.opts.Shards > 1 && len(tr.Checkpoints()) == 0 {
		return nil, false
	}
	return tr, true
}

// lookup resolves a benchmark name through the runner's resolver, or the
// global registry when none is set.
func (r *Runner) lookup(bench string) (workload.Benchmark, error) {
	if r.opts.Workloads != nil {
		return r.opts.Workloads(bench)
	}
	return workload.Get(bench)
}

// buildProgram constructs the benchmark program at the runner's scale and
// seed.
func (r *Runner) buildProgram(bench string) (*isa.Program, error) {
	b, err := r.lookup(bench)
	if err != nil {
		return nil, err
	}
	return b.Build(r.opts.Scale, r.opts.Seed), nil
}

// simulate is one uncached simulation. The first simulation of a
// benchmark builds the program and records the dynamic instruction stream
// while its own timing run executes; every other configuration of the
// same benchmark replays the recording instead of re-running functional
// emulation.
func (r *Runner) simulate(cfg config.Config, bench string) (*stats.Sim, error) {
	r.sims.Add(1)
	r.emit(ProgressEvent{Kind: RunStarted, Cfg: cfg.Name, Bench: bench, Target: uint64(r.opts.Scale)})
	run := obs.FromContext(r.ctx).StartRun("run", cfg.Name, bench)
	defer run.End()
	if r.opts.NoSharedTraces {
		prog, err := r.buildProgram(bench)
		if err != nil {
			return nil, err
		}
		return r.timedRun(run, "emulate", cfg, bench, func() (*pipeline.Simulator, error) {
			return pipeline.New(cfg, prog)
		})
	}

	tc, leader, err := r.sharedTrace(bench)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s/%s: %w", cfg.Name, bench, err)
	}
	if leader {
		var load obs.SpanContext
		if r.opts.Traces != nil {
			load = run.Start("trace-load")
		}
		tr, ok := r.loadStoredTrace(bench)
		load.End()
		switch {
		case ok:
			// A warm store spares both the recording and the functional
			// emulation; the program is still built for the live-emulation
			// fallback of configurations the trace cannot feed.
			if prog, err := r.buildProgram(bench); err != nil {
				r.publishTrace(tc, bench, nil, nil, err)
			} else {
				r.publishLoadedTrace(tc, prog, tr)
			}
		case r.opts.Shards > 1:
			// Sharded mode records with a pure functional pass (embedding
			// checkpoints) so the leader's own timing run can be sharded
			// exactly like every follower's; it then falls through to the
			// common post-publish paths below.
			r.recordShared(bench, tc, run)
		default:
			return r.recordRun(cfg, bench, tc, run)
		}
	}
	if tc.prog == nil {
		return nil, fmt.Errorf("experiments: %s/%s: %w", cfg.Name, bench, tc.err)
	}
	if !r.usable(tc.tr, cfg) {
		// Failed recording (tc.err says why — see ErrRecordingUnusable) or
		// one too short for this configuration's in-flight capacity:
		// emulate live on the shared program.
		return r.timedRun(run, "emulate", cfg, bench, func() (*pipeline.Simulator, error) {
			return pipeline.New(cfg, tc.prog)
		})
	}
	r.replayed.Add(1)
	if r.opts.Remote != nil {
		return r.remoteReplay(cfg, bench, tc.tr, run)
	}
	if r.opts.Shards > 1 {
		return r.shardedReplay(cfg, bench, tc.tr, nil, run)
	}
	return r.timedRun(run, "replay", cfg, bench, func() (*pipeline.Simulator, error) {
		return pipeline.NewFromSource(cfg, trace.NewReplayer(tc.tr, pipeline.SourceWindow(cfg)))
	})
}

// recordShared resolves a leader's trace entry with a pure functional
// recording pass (no timing simulation), embedding checkpoints when the
// runner is configured for them. The entry is always resolved. Sharded
// sweeps and stream-only experiments (VecLen) record this way. sc, when
// active, receives a "record" span covering the pass.
func (r *Runner) recordShared(bench string, tc *traceCall, sc obs.SpanContext) {
	rsc := sc.StartRun("record", "", bench)
	defer rsc.End()
	prog, err := r.buildProgram(bench)
	if err != nil {
		r.publishTrace(tc, bench, nil, nil, err)
		return
	}
	mach, err := emu.New(prog)
	if err != nil {
		r.publishTrace(tc, bench, nil, nil, err)
		return
	}
	rec, err := trace.NewRecorder(mach, prog, 0)
	if err != nil {
		r.publishTrace(tc, bench, prog, nil, fmt.Errorf("%w: %v", ErrRecordingUnusable, err))
		return
	}
	if r.opts.CheckpointEvery > 0 {
		if err := rec.EnableCheckpoints(r.opts.CheckpointEvery); err != nil {
			r.publishTrace(tc, bench, prog, nil, fmt.Errorf("%w: %v", ErrRecordingUnusable, err))
			return
		}
	}
	rec.SetContext(r.ctx)
	rec.Reserve(r.recordTarget())
	tr, recErr := rec.Finish(r.recordTarget())
	if recErr != nil {
		if cancelled(recErr) {
			// Cancellation is not a property of the benchmark: evict the
			// entry so a later requester records afresh.
			r.dropTrace(bench, tc)
		}
		r.publishTrace(tc, bench, prog, nil, fmt.Errorf("%w: %v", ErrRecordingUnusable, recErr))
		return
	}
	r.publishTrace(tc, bench, prog, tr, nil)
}

// recordRun is the leader's simulation: it records the dynamic stream
// while the timing run executes, completes the trace afterwards and
// publishes it for the followers. The trace entry is always resolved,
// even when program construction or the simulation itself fails. sc,
// when active, receives a "record" span covering the whole
// record-while-timing pass (the timing run is inseparable from the
// recording here, so no nested phase span is opened).
func (r *Runner) recordRun(cfg config.Config, bench string, tc *traceCall, sc obs.SpanContext) (*stats.Sim, error) {
	rsc := sc.StartRun("record", cfg.Name, bench)
	defer rsc.End()
	prog, err := r.buildProgram(bench)
	if err != nil {
		r.publishTrace(tc, bench, nil, nil, err)
		return nil, err
	}
	mach, err := emu.New(prog)
	if err != nil {
		r.publishTrace(tc, bench, nil, nil, err)
		return nil, err
	}
	rec, err := trace.NewRecorder(mach, prog, pipeline.SourceWindow(cfg))
	if err != nil {
		// The program is fine; only the recording is lost. Followers fall
		// back to live emulation while this leader reports the failure.
		r.publishTrace(tc, bench, prog, nil, fmt.Errorf("%w: %v", ErrRecordingUnusable, err))
		return nil, err
	}
	if r.opts.CheckpointEvery > 0 {
		if err := rec.EnableCheckpoints(r.opts.CheckpointEvery); err != nil {
			r.publishTrace(tc, bench, prog, nil, fmt.Errorf("%w: %v", ErrRecordingUnusable, err))
			return nil, err
		}
	}
	rec.SetContext(r.ctx)
	rec.Reserve(r.recordTarget())
	st, simErr := r.timedRun(obs.SpanContext{}, "", cfg, bench, func() (*pipeline.Simulator, error) {
		return pipeline.NewFromSource(cfg, rec)
	})
	if cancelled(simErr) {
		// Don't extend a recording nobody will use: evict the entry (so a
		// later requester records afresh) and publish the cancellation.
		r.dropTrace(bench, tc)
		r.publishTrace(tc, bench, prog, nil, fmt.Errorf("%w: %v", ErrRecordingUnusable, simErr))
		return st, simErr
	}
	// Finish extends the recording to its target length even when the
	// timing run stopped early (commit limit) or failed (an invalid
	// configuration must not poison the benchmark for other configs). A
	// Finish failure is published with its cause, never as a bare nil
	// trace: followers fall back to live emulation and anyone inspecting
	// the entry sees why the recording was dropped.
	tr, recErr := rec.Finish(r.recordTarget())
	if recErr != nil {
		if cancelled(recErr) {
			r.dropTrace(bench, tc)
		}
		r.publishTrace(tc, bench, prog, nil, fmt.Errorf("%w: %v", ErrRecordingUnusable, recErr))
	} else {
		r.publishTrace(tc, bench, prog, tr, nil)
	}
	return st, simErr
}

// progressStride is the committed-instruction spacing of RunProgress
// events: coarse enough to stay off the cycle loop's hot path, fine
// enough that a streaming client sees motion.
func (r *Runner) progressStride() uint64 {
	return uint64(max(r.opts.Scale/8, 4096))
}

// timedRun executes one timing simulation built by mk, wired to the
// runner's context and progress observation. When phase is non-empty
// and sc active, a phase span ("emulate", "replay") covers the
// simulator's construction and execution.
func (r *Runner) timedRun(sc obs.SpanContext, phase string, cfg config.Config, bench string, mk func() (*pipeline.Simulator, error)) (*stats.Sim, error) {
	if phase != "" {
		psc := sc.Start(phase)
		defer psc.End()
	}
	sim, err := mk()
	if err != nil {
		return nil, fmt.Errorf("experiments: %s/%s: %w", cfg.Name, bench, err)
	}
	sim.SetContext(r.ctx)
	if r.opts.Progress != nil {
		target := uint64(r.opts.Scale)
		sim.SetProgress(r.progressStride(), func(committed uint64) {
			r.emit(ProgressEvent{Kind: RunProgress, Cfg: cfg.Name, Bench: bench,
				Committed: committed, Target: target})
		})
	}
	st, err := sim.Run(uint64(r.opts.Scale))
	r.collectHot(sim.HotStats())
	if err != nil {
		return nil, fmt.Errorf("experiments: %s/%s: %w", cfg.Name, bench, err)
	}
	return st, nil
}

// RunAll submits every spec to the worker pool at once and returns the
// statistics in spec order. The first error (in spec order) is returned
// after all runs settle, so a failed batch leaves no simulation in
// flight.
func (r *Runner) RunAll(specs []RunSpec) ([]*stats.Sim, error) {
	r.dispatchGangs(specs)
	out := make([]*stats.Sim, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i, s := range specs {
		wg.Add(1)
		go func(i int, s RunSpec) {
			defer wg.Done()
			out[i], errs[i] = r.Run(s.Cfg, s.Bench)
		}(i, s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Prefetch begins computing the given runs in the background without
// waiting for them. Submission fans out over at most Workers feeder
// goroutines that pull specs from a shared cursor, so a large sweep does
// not spawn one goroutine per spec ahead of the semaphore. Errors are not
// reported here; they resurface from the memo when Run or RunAll later
// requests the same key. Cancelling the runner's context stops the
// feeders from starting further specs; runs already executing abort
// through their own context polling.
func (r *Runner) Prefetch(specs []RunSpec) {
	if len(specs) == 0 {
		return
	}
	r.dispatchGangs(specs)
	specs = append([]RunSpec(nil), specs...)
	next := new(atomic.Int64)
	for n := min(len(specs), r.opts.Workers); n > 0; n-- {
		go func() {
			for r.ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= len(specs) {
					return
				}
				_, _ = r.Run(specs[i].Cfg, specs[i].Bench)
			}
		}()
	}
}

// each runs fn(0..n-1) on the runner's worker pool and returns the first
// error in index order. It is used for per-benchmark work that does not
// go through the simulation cache (e.g. the functional-emulation pass of
// VecLen) so that it shares the same concurrency bound. fn holds a pool
// slot for its whole duration and therefore must not call Run/RunAll:
// with Workers=1 the nested acquisition would deadlock.
func (r *Runner) each(n int, fn func(i int) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case r.sem <- struct{}{}:
			case <-r.ctx.Done():
				errs[i] = r.ctx.Err()
				return
			}
			defer func() { <-r.sem }()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// suiteSpecs returns the full (cfg × benchmark) fan-out for each config,
// in presentation order.
func suiteSpecs(cfgs ...config.Config) []RunSpec {
	names := workload.Names()
	specs := make([]RunSpec, 0, len(cfgs)*len(names))
	for _, cfg := range cfgs {
		for _, n := range names {
			specs = append(specs, RunSpec{Cfg: cfg, Bench: n})
		}
	}
	return specs
}

// perBenchmark runs every benchmark under cfg (submitting the whole suite
// to the pool at once) and invokes get to extract one row of values; INT,
// FP and Spec95 aggregate rows (arithmetic means, matching the paper's
// bar charts) are appended. get is called sequentially in presentation
// order, so it need not be safe for concurrent use.
func (r *Runner) perBenchmark(cfg config.Config, get func(*stats.Sim) []float64) ([]Row, error) {
	names := workload.Names()
	sims, err := r.RunAll(suiteSpecs(cfg))
	if err != nil {
		return nil, err
	}
	var rows []Row
	var intAgg, fpAgg, allAgg [][]float64
	for i, name := range names {
		vals := get(sims[i])
		rows = append(rows, Row{Name: name, Cells: vals})
		b, _ := workload.Get(name)
		if b.FP {
			fpAgg = append(fpAgg, vals)
		} else {
			intAgg = append(intAgg, vals)
		}
		allAgg = append(allAgg, vals)
	}
	return appendAggregates(rows, intAgg, fpAgg, allAgg), nil
}

// appendAggregates appends the INT / FP / Spec95 mean rows. A benchmark
// class with no members contributes no row at all: meanRows(nil) is nil,
// and a named row with nil cells would make downstream consumers
// (sweepTable's Cells[0], Table.Render) index past the slice.
func appendAggregates(rows []Row, intAgg, fpAgg, allAgg [][]float64) []Row {
	for _, agg := range []struct {
		name string
		vals [][]float64
	}{{"INT", intAgg}, {"FP", fpAgg}, {"Spec95", allAgg}} {
		if len(agg.vals) == 0 {
			continue
		}
		rows = append(rows, Row{Name: agg.name, Cells: meanRows(agg.vals)})
	}
	return rows
}

func meanRows(rows [][]float64) []float64 {
	if len(rows) == 0 {
		return nil
	}
	out := make([]float64, len(rows[0]))
	for _, r := range rows {
		for i, v := range r {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(rows))
	}
	return out
}
