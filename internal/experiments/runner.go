package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"specvec/internal/config"
	"specvec/internal/pipeline"
	"specvec/internal/stats"
	"specvec/internal/workload"
)

// Options control the scale of all experiment runs.
type Options struct {
	// Scale is the approximate dynamic instruction count per run. The
	// paper simulates 100M instructions per benchmark; the default here is
	// laptop-sized and can be raised with -scale.
	Scale int
	// Seed perturbs the generated workload data.
	Seed int64
	// Workers bounds the number of simulations executing concurrently.
	// <= 0 means runtime.GOMAXPROCS(0); 1 is strictly sequential. Results
	// are byte-identical regardless of Workers: every simulation is an
	// independent deterministic run and tables are assembled in a fixed
	// order.
	Workers int
}

// DefaultOptions returns the standard experiment scale.
func DefaultOptions() Options {
	return Options{Scale: 300_000, Seed: 1, Workers: runtime.GOMAXPROCS(0)}
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = DefaultOptions().Scale
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// RunSpec names one (configuration, benchmark) simulation.
type RunSpec struct {
	Cfg   config.Config
	Bench string
}

// call is one memoised simulation. The first requester of a key becomes
// the leader and computes; every later requester blocks on done and
// shares the leader's result (singleflight), so experiments that overlap
// (e.g. Figures 11 and 12) pay for each run once even when submitted
// concurrently.
type call struct {
	done chan struct{}
	st   *stats.Sim
	err  error
}

// Runner executes (configuration, benchmark) pairs on a bounded worker
// pool with memoisation. It is safe for concurrent use by multiple
// goroutines.
type Runner struct {
	opts Options
	sem  chan struct{} // bounds concurrently executing simulations

	mu    sync.Mutex
	cache map[string]*call

	sims atomic.Int64 // simulations actually executed (cache misses)
}

// NewRunner returns a Runner with the given options.
func NewRunner(opts Options) *Runner {
	opts = opts.withDefaults()
	return &Runner{
		opts:  opts,
		sem:   make(chan struct{}, opts.Workers),
		cache: map[string]*call{},
	}
}

// Opts returns the runner's options.
func (r *Runner) Opts() Options { return r.opts }

// Simulations returns how many simulations the runner has actually
// executed — i.e. cache misses; singleflight-shared and memoised requests
// do not count.
func (r *Runner) Simulations() int64 { return r.sims.Load() }

func (r *Runner) key(cfg config.Config, bench string) string {
	return fmt.Sprintf("%s|u=%v|b=%v|cd=%v|ro=%v|vl=%d|vr=%d|ct=%d|%s|%d|%d",
		cfg.Name, cfg.Unbounded, cfg.BlockScalarOperand, cfg.ChurnDamper,
		cfg.RangeOnlyConflicts, cfg.VectorLen, cfg.VectorRegs, cfg.ConfThreshold,
		bench, r.opts.Scale, r.opts.Seed)
}

// Run simulates benchmark bench under cfg and returns its statistics.
// Results are memoised on (config name, variant flags, benchmark); an
// in-flight run for the same key is joined rather than duplicated.
func (r *Runner) Run(cfg config.Config, bench string) (*stats.Sim, error) {
	key := r.key(cfg, bench)
	r.mu.Lock()
	if c, ok := r.cache[key]; ok {
		r.mu.Unlock()
		<-c.done
		return c.st, c.err
	}
	c := &call{done: make(chan struct{})}
	r.cache[key] = c
	r.mu.Unlock()

	r.sem <- struct{}{}
	c.st, c.err = r.simulate(cfg, bench)
	<-r.sem
	close(c.done)
	return c.st, c.err
}

// simulate is one uncached simulation. Each run builds its own program
// and pipeline; nothing is shared between concurrent simulations.
func (r *Runner) simulate(cfg config.Config, bench string) (*stats.Sim, error) {
	r.sims.Add(1)
	b, err := workload.Get(bench)
	if err != nil {
		return nil, err
	}
	prog := b.Build(r.opts.Scale, r.opts.Seed)
	sim, err := pipeline.New(cfg, prog)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s/%s: %w", cfg.Name, bench, err)
	}
	st, err := sim.Run(uint64(r.opts.Scale))
	if err != nil {
		return nil, fmt.Errorf("experiments: %s/%s: %w", cfg.Name, bench, err)
	}
	return st, nil
}

// RunAll submits every spec to the worker pool at once and returns the
// statistics in spec order. The first error (in spec order) is returned
// after all runs settle, so a failed batch leaves no simulation in
// flight.
func (r *Runner) RunAll(specs []RunSpec) ([]*stats.Sim, error) {
	out := make([]*stats.Sim, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i, s := range specs {
		wg.Add(1)
		go func(i int, s RunSpec) {
			defer wg.Done()
			out[i], errs[i] = r.Run(s.Cfg, s.Bench)
		}(i, s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Prefetch begins computing the given runs in the background without
// waiting for them. Errors are not reported here; they resurface from the
// memo when Run or RunAll later requests the same key. There is no
// cancellation: if the consumer aborts early, already-submitted runs
// finish in the background (and stay memoised for the next request).
func (r *Runner) Prefetch(specs []RunSpec) {
	for _, s := range specs {
		go func(s RunSpec) { _, _ = r.Run(s.Cfg, s.Bench) }(s)
	}
}

// each runs fn(0..n-1) on the runner's worker pool and returns the first
// error in index order. It is used for per-benchmark work that does not
// go through the simulation cache (e.g. the functional-emulation pass of
// VecLen) so that it shares the same concurrency bound. fn holds a pool
// slot for its whole duration and therefore must not call Run/RunAll:
// with Workers=1 the nested acquisition would deadlock.
func (r *Runner) each(n int, fn func(i int) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r.sem <- struct{}{}
			defer func() { <-r.sem }()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// suiteSpecs returns the full (cfg × benchmark) fan-out for each config,
// in presentation order.
func suiteSpecs(cfgs ...config.Config) []RunSpec {
	names := workload.Names()
	specs := make([]RunSpec, 0, len(cfgs)*len(names))
	for _, cfg := range cfgs {
		for _, n := range names {
			specs = append(specs, RunSpec{Cfg: cfg, Bench: n})
		}
	}
	return specs
}

// perBenchmark runs every benchmark under cfg (submitting the whole suite
// to the pool at once) and invokes get to extract one row of values; INT,
// FP and Spec95 aggregate rows (arithmetic means, matching the paper's
// bar charts) are appended. get is called sequentially in presentation
// order, so it need not be safe for concurrent use.
func (r *Runner) perBenchmark(cfg config.Config, get func(*stats.Sim) []float64) ([]Row, error) {
	names := workload.Names()
	sims, err := r.RunAll(suiteSpecs(cfg))
	if err != nil {
		return nil, err
	}
	var rows []Row
	var intAgg, fpAgg, allAgg [][]float64
	for i, name := range names {
		vals := get(sims[i])
		rows = append(rows, Row{Name: name, Cells: vals})
		b, _ := workload.Get(name)
		if b.FP {
			fpAgg = append(fpAgg, vals)
		} else {
			intAgg = append(intAgg, vals)
		}
		allAgg = append(allAgg, vals)
	}
	return appendAggregates(rows, intAgg, fpAgg, allAgg), nil
}

// appendAggregates appends the INT / FP / Spec95 mean rows. A benchmark
// class with no members contributes no row at all: meanRows(nil) is nil,
// and a named row with nil cells would make downstream consumers
// (sweepTable's Cells[0], Table.Render) index past the slice.
func appendAggregates(rows []Row, intAgg, fpAgg, allAgg [][]float64) []Row {
	for _, agg := range []struct {
		name string
		vals [][]float64
	}{{"INT", intAgg}, {"FP", fpAgg}, {"Spec95", allAgg}} {
		if len(agg.vals) == 0 {
			continue
		}
		rows = append(rows, Row{Name: agg.name, Cells: meanRows(agg.vals)})
	}
	return rows
}

func meanRows(rows [][]float64) []float64 {
	if len(rows) == 0 {
		return nil
	}
	out := make([]float64, len(rows[0]))
	for _, r := range rows {
		for i, v := range r {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(rows))
	}
	return out
}
