// Package experiments regenerates every figure and table of the paper's
// evaluation (§4) plus the headline numbers quoted in the abstract and
// conclusions. Each experiment returns a Table whose rows are benchmarks
// (with INT / FP / Spec95 aggregate rows) so the output can be compared
// against the published charts shape-for-shape.
package experiments

import (
	"fmt"

	"specvec/internal/config"
	"specvec/internal/pipeline"
	"specvec/internal/stats"
	"specvec/internal/workload"
)

// Options control the scale of all experiment runs.
type Options struct {
	// Scale is the approximate dynamic instruction count per run. The
	// paper simulates 100M instructions per benchmark; the default here is
	// laptop-sized and can be raised with -scale.
	Scale int
	// Seed perturbs the generated workload data.
	Seed int64
}

// DefaultOptions returns the standard experiment scale.
func DefaultOptions() Options { return Options{Scale: 300_000, Seed: 1} }

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = DefaultOptions().Scale
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Runner executes (configuration, benchmark) pairs with memoisation, so
// experiments that share runs (e.g. Figures 11 and 12) pay once.
type Runner struct {
	opts  Options
	cache map[string]*stats.Sim
}

// NewRunner returns a Runner with the given options.
func NewRunner(opts Options) *Runner {
	return &Runner{opts: opts.withDefaults(), cache: map[string]*stats.Sim{}}
}

// Opts returns the runner's options.
func (r *Runner) Opts() Options { return r.opts }

// Run simulates benchmark bench under cfg and returns its statistics.
// Results are memoised on (config name, variant flags, benchmark).
func (r *Runner) Run(cfg config.Config, bench string) (*stats.Sim, error) {
	key := fmt.Sprintf("%s|u=%v|b=%v|cd=%v|ro=%v|vl=%d|vr=%d|ct=%d|%s|%d|%d",
		cfg.Name, cfg.Unbounded, cfg.BlockScalarOperand, cfg.ChurnDamper,
		cfg.RangeOnlyConflicts, cfg.VectorLen, cfg.VectorRegs, cfg.ConfThreshold,
		bench, r.opts.Scale, r.opts.Seed)
	if st, ok := r.cache[key]; ok {
		return st, nil
	}
	b, err := workload.Get(bench)
	if err != nil {
		return nil, err
	}
	prog := b.Build(r.opts.Scale, r.opts.Seed)
	sim, err := pipeline.New(cfg, prog)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s/%s: %w", cfg.Name, bench, err)
	}
	st, err := sim.Run(uint64(r.opts.Scale))
	if err != nil {
		return nil, fmt.Errorf("experiments: %s/%s: %w", cfg.Name, bench, err)
	}
	r.cache[key] = st
	return st, nil
}

// perBenchmark runs every benchmark under cfg and invokes get to extract
// one row of values; INT, FP and Spec95 aggregate rows (arithmetic means,
// matching the paper's bar charts) are appended.
func (r *Runner) perBenchmark(cfg config.Config, get func(*stats.Sim) []float64) ([]Row, error) {
	var rows []Row
	var intAgg, fpAgg, allAgg [][]float64
	for _, name := range workload.Names() {
		st, err := r.Run(cfg, name)
		if err != nil {
			return nil, err
		}
		vals := get(st)
		rows = append(rows, Row{Name: name, Cells: vals})
		b, _ := workload.Get(name)
		if b.FP {
			fpAgg = append(fpAgg, vals)
		} else {
			intAgg = append(intAgg, vals)
		}
		allAgg = append(allAgg, vals)
	}
	rows = append(rows,
		Row{Name: "INT", Cells: meanRows(intAgg)},
		Row{Name: "FP", Cells: meanRows(fpAgg)},
		Row{Name: "Spec95", Cells: meanRows(allAgg)},
	)
	return rows, nil
}

func meanRows(rows [][]float64) []float64 {
	if len(rows) == 0 {
		return nil
	}
	out := make([]float64, len(rows[0]))
	for _, r := range rows {
		for i, v := range r {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(rows))
	}
	return out
}
