package experiments

import (
	"specvec/internal/emu"
	"specvec/internal/obs"
)

// functionalTrace returns the bench's shared trace entry, recording it
// with a pure functional pass (no timing simulation) when no entry exists
// yet. Experiments that only need the dynamic stream (VecLen) share the
// same recording that timing sweeps replay. The error is non-nil only
// when the benchmark cannot be simulated at all (program construction
// failed); a failed recording propagates through tc.err — wrapping
// ErrRecordingUnusable, never a silent nil — and callers fall back to
// live emulation of tc.prog.
func (r *Runner) functionalTrace(bench string) (*traceCall, error) {
	tc, leader, err := r.sharedTrace(bench)
	if err != nil {
		return nil, err
	}
	if leader {
		if tr, ok := r.loadStoredTrace(bench); ok {
			if prog, err := r.buildProgram(bench); err != nil {
				r.publishTrace(tc, bench, nil, nil, err)
			} else {
				r.publishLoadedTrace(tc, prog, tr)
			}
		} else {
			// The "record" span parents directly under whatever span the
			// job's context carries — a stream-only experiment has no
			// per-run span of its own.
			r.recordShared(bench, tc, obs.FromContext(r.ctx))
		}
	}
	if tc.prog == nil {
		return tc, tc.err
	}
	return tc, nil
}

// meanRunLength measures, per static load, the lengths of maximal
// constant-stride runs over the benchmark's dynamic stream, returning
// their mean (runs of length >= 2 only: a "run" of one repeat is not a
// pattern). The stream comes from the runner's shared trace when
// available; otherwise the benchmark is emulated functionally.
func meanRunLength(r *Runner, bench string) (float64, error) {
	type state struct {
		lastAddr uint64
		stride   int64
		runLen   int
		seen     bool
		haveStr  bool
	}
	loads := map[uint64]*state{}
	var totalLen, runs uint64

	closeRun := func(st *state) {
		if st.runLen >= 2 {
			totalLen += uint64(st.runLen)
			runs++
		}
		st.runLen = 0
	}
	observe := func(d *emu.DynInst) {
		if !d.Inst.IsLoad() {
			return
		}
		st := loads[d.PC]
		if st == nil {
			st = &state{}
			loads[d.PC] = st
		}
		switch {
		case !st.seen:
			st.seen = true
		case !st.haveStr:
			st.stride = int64(d.EffAddr - st.lastAddr)
			st.haveStr = true
			st.runLen = 2
		default:
			if s := int64(d.EffAddr - st.lastAddr); s == st.stride {
				st.runLen++
			} else {
				closeRun(st)
				st.stride = s
				st.runLen = 2
			}
		}
		st.lastAddr = d.EffAddr
	}

	budget := r.opts.Scale
	if err := r.eachRecord(bench, budget, observe); err != nil {
		return 0, err
	}
	for _, st := range loads {
		closeRun(st)
	}
	if runs == 0 {
		return 0, nil
	}
	return float64(totalLen) / float64(runs), nil
}

// eachRecord yields the first budget records of the benchmark's dynamic
// stream, from the shared trace when sharing is enabled and the recording
// usable, from live functional emulation otherwise. Both paths produce
// the identical sequence: emulation stops at halt or budget, and a trace
// ends with its halt record.
func (r *Runner) eachRecord(bench string, budget int, yield func(*emu.DynInst)) error {
	if !r.opts.NoSharedTraces {
		tc, err := r.functionalTrace(bench)
		if err != nil {
			return err
		}
		if tc.tr != nil && (tc.tr.Halted() || tc.tr.Len() >= budget) {
			var d emu.DynInst
			for i, n := 0, min(tc.tr.Len(), budget); i < n; i++ {
				tc.tr.Record(i, &d)
				yield(&d)
			}
			return nil
		}
		// Unusable recording: emulate the shared program live.
		m, err := emu.New(tc.prog)
		if err != nil {
			return err
		}
		return emulateRecords(m, budget, yield)
	}
	b, err := r.lookup(bench)
	if err != nil {
		return err
	}
	m, err := emu.New(b.Build(r.opts.Scale, r.opts.Seed))
	if err != nil {
		return err
	}
	return emulateRecords(m, budget, yield)
}

func emulateRecords(m *emu.Machine, budget int, yield func(*emu.DynInst)) error {
	for !m.Halted() && budget > 0 {
		d := m.Step()
		budget--
		yield(&d)
	}
	return nil
}
