package experiments

import (
	"specvec/internal/emu"
	"specvec/internal/workload"
)

// meanRunLength functionally executes a workload and measures, per static
// load, the lengths of maximal constant-stride runs, returning their mean
// (runs of length >= 2 only: a "run" of one repeat is not a pattern).
func meanRunLength(r *Runner, bench string) (float64, error) {
	b, err := workload.Get(bench)
	if err != nil {
		return 0, err
	}
	m, err := emu.New(b.Build(r.opts.Scale, r.opts.Seed))
	if err != nil {
		return 0, err
	}

	type state struct {
		lastAddr uint64
		stride   int64
		runLen   int
		seen     bool
		haveStr  bool
	}
	loads := map[uint64]*state{}
	var totalLen, runs uint64

	closeRun := func(st *state) {
		if st.runLen >= 2 {
			totalLen += uint64(st.runLen)
			runs++
		}
		st.runLen = 0
	}

	budget := uint64(r.opts.Scale)
	for !m.Halted() && budget > 0 {
		d := m.Step()
		budget--
		if !d.Inst.IsLoad() {
			continue
		}
		st := loads[d.PC]
		if st == nil {
			st = &state{}
			loads[d.PC] = st
		}
		switch {
		case !st.seen:
			st.seen = true
		case !st.haveStr:
			st.stride = int64(d.EffAddr - st.lastAddr)
			st.haveStr = true
			st.runLen = 2
		default:
			if s := int64(d.EffAddr - st.lastAddr); s == st.stride {
				st.runLen++
			} else {
				closeRun(st)
				st.stride = s
				st.runLen = 2
			}
		}
		st.lastAddr = d.EffAddr
	}
	for _, st := range loads {
		closeRun(st)
	}
	if runs == 0 {
		return 0, nil
	}
	return float64(totalLen) / float64(runs), nil
}
