package experiments

import "testing"

func TestVecLenStatistic(t *testing.T) {
	r := testRunner()
	tabs, err := VecLen(r)
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	intLen, ok := tab.CellByColumn("INT", "mean-len")
	if !ok {
		t.Fatal("missing INT aggregate")
	}
	fpLen, _ := tab.CellByColumn("FP", "mean-len")
	// The statistic motivates VL=4: run lengths must be meaningfully
	// larger than the vector length but not astronomical.
	if intLen < 3 || fpLen < 3 {
		t.Errorf("run lengths implausibly small: INT %.1f FP %.1f", intLen, fpLen)
	}
	for _, row := range tab.Rows {
		if row.Cells[0] < 2 && row.Name != "INT" && row.Name != "FP" && row.Name != "Spec95" {
			t.Errorf("%s: mean run length %.2f below the run threshold", row.Name, row.Cells[0])
		}
	}
}

func TestAblationVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep in -short mode")
	}
	r := testRunner()
	tabs, err := Ablation(r)
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	if len(tab.Rows) != 10 {
		t.Fatalf("variants = %d, want 10", len(tab.Rows))
	}
	cell := func(row string, col string) float64 {
		v, ok := tab.CellByColumn(row, col)
		if !ok {
			t.Fatalf("missing cell %s/%s", row, col)
		}
		return v
	}
	// The coarse range check must squash far more often than the
	// per-element check.
	if cell("range-only conflicts", "cfl/1k") <= cell("baseline (V)", "cfl/1k") {
		t.Error("range-only conflict check did not increase conflicts")
	}
	// Reverting both refinements must not be faster than the baseline.
	if cell("both reverted", "IPC") > cell("baseline (V)", "IPC")*1.02 {
		t.Errorf("reverted refinements outperform baseline: %.3f vs %.3f",
			cell("both reverted", "IPC"), cell("baseline (V)", "IPC"))
	}
	// A 32-register file vectorizes no more than a 256-register file.
	if cell("32 vregs", "valid%") > cell("256 vregs", "valid%")+1e-9 {
		t.Errorf("fewer registers produced more validations: %.1f vs %.1f",
			cell("32 vregs", "valid%"), cell("256 vregs", "valid%"))
	}
	// Both confidence thresholds must vectorize; note that firing on the
	// first repeat (confidence=1) can vectorize *less* overall — premature
	// instances misspeculate and reset the TL — which is itself a result
	// supporting the paper's choice of 2.
	if cell("confidence=1", "valid%") <= 0 || cell("confidence=3", "valid%") <= 0 {
		t.Error("confidence-threshold variants stopped vectorizing")
	}
}
