package experiments

import (
	"testing"
	"time"

	"specvec/internal/config"
	"specvec/internal/emu"
	"specvec/internal/trace"
	"specvec/internal/workload"
)

// BenchmarkShardCriticalPath quantifies the multi-core win of
// checkpointed fast-forward without needing a multi-core machine: it
// runs every shard of one large simulation back to back and reports
// both the total CPU time and the longest single shard. On a machine
// with >= shards idle cores, wall clock converges to the longest shard
// (max_shard_ms) plus dispatch overhead, while the single-pass replay
// is pinned at the full sequential time — the "sequential wall" the
// sharding removes. Compare with BenchmarkTraceReplay at the repository
// root (same 200k-instruction swim run on 4w-1pV).
func BenchmarkShardCriticalPath(b *testing.B) {
	bench, err := workload.Get("swim")
	if err != nil {
		b.Fatal(err)
	}
	prog := bench.Build(200_000, 1)
	cfg := config.MustNamed(4, 1, config.ModeV)
	mach, err := emu.New(prog)
	if err != nil {
		b.Fatal(err)
	}
	rec, err := trace.NewRecorder(mach, prog, 0)
	if err != nil {
		b.Fatal(err)
	}
	if err := rec.EnableCheckpoints(8192); err != nil {
		b.Fatal(err)
	}
	tr, err := rec.Finish(200_000 + trace.RecordSlack)
	if err != nil {
		b.Fatal(err)
	}
	plan := shardPlan(tr, 200_000, 8, DefaultShardWarmup)
	b.ResetTimer()
	var maxShard time.Duration
	for i := 0; i < b.N; i++ {
		maxShard = 0
		for _, sp := range plan {
			start := time.Now()
			if _, err := runShard(nil, cfg, tr, nil, sp, nil); err != nil {
				b.Fatal(err)
			}
			if d := time.Since(start); d > maxShard {
				maxShard = d
			}
		}
	}
	b.ReportMetric(float64(maxShard.Milliseconds()), "max_shard_ms")
	b.ReportMetric(float64(b.Elapsed().Milliseconds())/float64(b.N), "total_cpu_ms")
}
