package experiments

import (
	"fmt"

	"specvec/internal/config"
	"specvec/internal/stats"
)

// SpecSweep runs a set of generated (spec-defined) workloads through the
// paper's headline configurations and tables the results: IPC without
// speculative vectorization, with it at 4- and 8-wide issue, plus the
// validation overhead and memory traffic of the 4-wide SDV machine. The
// names must resolve through the runner (globally registered or supplied
// via Options.Workloads); the sweep deliberately does not touch
// workload.Names(), so the paper's figure suite keeps its shape no
// matter what specs are loaded.
func SpecSweep(r *Runner, names []string) ([]*Table, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("experiments: spec sweep: no workloads")
	}
	configs := []config.Config{
		config.MustNamed(4, 1, config.ModeNoIM),
		config.MustNamed(4, 1, config.ModeIM),
		config.MustNamed(4, 1, config.ModeV),
		config.MustNamed(8, 1, config.ModeV),
	}
	var specs []RunSpec
	for _, cfg := range configs {
		for _, n := range names {
			specs = append(specs, RunSpec{Cfg: cfg, Bench: n})
		}
	}
	sims, err := r.RunAll(specs)
	if err != nil {
		return nil, err
	}
	sim := func(c, b int) *stats.Sim { return sims[c*len(names)+b] }

	var rows []Row
	var intAgg, fpAgg, allAgg [][]float64
	for bi, name := range names {
		sdv := sim(2, bi)
		vals := []float64{
			sim(0, bi).IPC(),
			sim(1, bi).IPC(),
			sdv.IPC(),
			sim(3, bi).IPC(),
			100 * sdv.ValidationFraction(),
			sdv.MemRequestsPerInst(),
		}
		rows = append(rows, Row{Name: name, Cells: vals})
		b, err := r.lookup(name)
		if err != nil {
			return nil, err
		}
		if b.FP {
			fpAgg = append(fpAgg, vals)
		} else {
			intAgg = append(intAgg, vals)
		}
		allAgg = append(allAgg, vals)
	}
	rows = appendAggregates(rows, intAgg, fpAgg, allAgg)
	return []*Table{{
		ID:      "specsweep",
		Title:   "Generated workloads: IPC across modes (1 wide port), SDV overheads at 4-way",
		Columns: []string{"4w-noIM", "4w-IM", "4w-V", "8w-V", "val%", "mem/inst"},
		Rows:    rows, Format: "%8.3f",
		Notes: "workloads compiled from a declarative spec (internal/wspec); " +
			"val% and mem/inst are measured on the 4w-V configuration",
	}}, nil
}
