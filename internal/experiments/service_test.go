package experiments

import (
	"context"
	"errors"
	"sync"
	"testing"

	"specvec/internal/config"
	"specvec/internal/emu"
	"specvec/internal/trace"
	"specvec/internal/workload"
)

// memTraceStore is a TraceStore over a plain map, for tests.
type memTraceStore struct {
	mu     sync.Mutex
	m      map[string]*trace.Trace
	loads  int
	stores int
}

func newMemTraceStore() *memTraceStore { return &memTraceStore{m: map[string]*trace.Trace{}} }

func (s *memTraceStore) Load(bench string) (*trace.Trace, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tr, ok := s.m[bench]
	if ok {
		s.loads++
	}
	return tr, ok
}

func (s *memTraceStore) Store(bench string, tr *trace.Trace) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[bench] = tr
	s.stores++
}

// TestRunnerCancellation cancels a runner mid-run (from a progress event)
// and checks that Run returns the context's error quickly, and that the
// memo entry is evicted rather than poisoned.
func TestRunnerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	r := NewRunner(Options{
		Scale: 200_000, Seed: 1, Workers: 2, Context: ctx,
		Progress: func(ev ProgressEvent) {
			if ev.Kind == RunProgress {
				once.Do(cancel)
			}
		},
	})
	cfg := config.MustNamed(4, 1, config.ModeV)
	_, err := r.Run(cfg, "compress")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	r.mu.Lock()
	_, poisoned := r.cache[r.key(cfg, "compress")]
	r.mu.Unlock()
	if poisoned {
		t.Error("cancelled run left a poisoned memo entry")
	}

	// A fresh runner with a live context recomputes successfully.
	fresh := NewRunner(Options{Scale: 5_000, Seed: 1, Workers: 2})
	if _, err := fresh.Run(cfg, "compress"); err != nil {
		t.Fatalf("recompute after cancellation: %v", err)
	}
}

// TestRunnerCancelledBeforeStart asserts an already-cancelled context
// rejects work without simulating.
func TestRunnerCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewRunner(Options{Scale: 5_000, Seed: 1, Workers: 1, Context: ctx})
	_, err := r.RunAll(suiteSpecs(config.MustNamed(4, 1, config.ModeV)))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if r.Simulations() != 0 {
		t.Errorf("cancelled runner executed %d simulations", r.Simulations())
	}
}

// TestRunnerProgressEvents runs a tiny sweep and checks the event stream:
// every executed run brackets with RunStarted/RunDone, memoised requests
// emit RunDone with Cached, and at least one RunProgress fires.
func TestRunnerProgressEvents(t *testing.T) {
	var mu sync.Mutex
	counts := map[ProgressKind]int{}
	cached := 0
	r := NewRunner(Options{
		Scale: 20_000, Seed: 1, Workers: 2,
		Progress: func(ev ProgressEvent) {
			mu.Lock()
			defer mu.Unlock()
			counts[ev.Kind]++
			if ev.Kind == RunDone && ev.Cached {
				cached++
			}
		},
	})
	cfg := config.MustNamed(4, 1, config.ModeV)
	if _, err := r.Run(cfg, "compress"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(cfg, "compress"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if counts[RunStarted] != 1 {
		t.Errorf("RunStarted fired %d times, want 1", counts[RunStarted])
	}
	if counts[RunDone] != 2 {
		t.Errorf("RunDone fired %d times, want 2", counts[RunDone])
	}
	if cached != 1 {
		t.Errorf("cached RunDone fired %d times, want 1", cached)
	}
	if counts[RunProgress] == 0 {
		t.Error("no RunProgress events over a 20k-instruction run")
	}
}

// TestRunnerShardProgress checks that a sharded run reports one ShardDone
// per interval.
func TestRunnerShardProgress(t *testing.T) {
	var mu sync.Mutex
	shardDone := 0
	r := NewRunner(Options{
		Scale: 40_000, Seed: 1, Workers: 2, Shards: 4,
		Progress: func(ev ProgressEvent) {
			if ev.Kind == ShardDone {
				mu.Lock()
				shardDone++
				mu.Unlock()
			}
		},
	})
	cfg := config.MustNamed(4, 1, config.ModeV)
	if _, err := r.Run(cfg, "compress"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if shardDone != 4 {
		t.Errorf("ShardDone fired %d times, want 4", shardDone)
	}
}

// TestTraceStoreReuse proves recordings cross Runner instances through a
// TraceStore: runner A records and stores, runner B loads instead of
// re-recording, and both produce identical statistics.
func TestTraceStoreReuse(t *testing.T) {
	store := newMemTraceStore()
	opts := Options{Scale: 10_000, Seed: 1, Workers: 2, Traces: store}
	cfg := config.MustNamed(4, 1, config.ModeV)

	a := NewRunner(opts)
	stA, err := a.Run(cfg, "compress")
	if err != nil {
		t.Fatal(err)
	}
	if a.TraceRecordings() != 1 || a.TraceLoads() != 0 {
		t.Fatalf("runner A: recordings=%d loads=%d, want 1/0", a.TraceRecordings(), a.TraceLoads())
	}

	b := NewRunner(opts)
	stB, err := b.Run(cfg, "compress")
	if err != nil {
		t.Fatal(err)
	}
	if b.TraceRecordings() != 0 || b.TraceLoads() != 1 {
		t.Fatalf("runner B: recordings=%d loads=%d, want 0/1", b.TraceRecordings(), b.TraceLoads())
	}
	if stA.String() != stB.String() {
		t.Fatalf("stored-trace run diverged:\n%s\nvs\n%s", stA, stB)
	}
}

// TestTraceStoreRejectsShort ensures a stored trace that is truncated
// short of the runner's record target is ignored and re-recorded rather
// than starving replay.
func TestTraceStoreRejectsShort(t *testing.T) {
	const scale = 20_000
	b, err := workload.Get("compress")
	if err != nil {
		t.Fatal(err)
	}
	prog := b.Build(scale, 1)
	mach, err := emu.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := trace.NewRecorder(mach, prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	short, err := rec.Finish(1_000) // truncated far short of the target
	if err != nil {
		t.Fatal(err)
	}
	if !short.Truncated() {
		t.Fatal("test premise broken: trace not truncated")
	}
	store := newMemTraceStore()
	store.m["compress"] = short

	r := NewRunner(Options{Scale: scale, Seed: 1, Workers: 1, Traces: store})
	if _, err := r.Run(config.MustNamed(4, 1, config.ModeV), "compress"); err != nil {
		t.Fatal(err)
	}
	if r.TraceLoads() != 0 {
		t.Error("a too-short stored trace was loaded")
	}
	if r.TraceRecordings() != 1 {
		t.Errorf("recordings=%d, want a fresh recording", r.TraceRecordings())
	}
}

// TestRunnerHotStats checks hot-path counters aggregate across runs.
func TestRunnerHotStats(t *testing.T) {
	r := NewRunner(Options{Scale: 5_000, Seed: 1, Workers: 1})
	cfg := config.MustNamed(4, 1, config.ModeV)
	if _, err := r.Run(cfg, "compress"); err != nil {
		t.Fatal(err)
	}
	h := r.HotStats()
	if h.UopRecycles == 0 {
		t.Error("no uop recycles aggregated after a run")
	}
}
