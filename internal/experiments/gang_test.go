package experiments

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"specvec/internal/config"
	"specvec/internal/stats"
)

// gangSuite is a sweep-shaped fan-out: six configurations over a few
// benchmarks, enough that every benchmark forms gangs at any cap.
func gangSuite() []RunSpec {
	cfgs := []config.Config{
		config.MustNamed(4, 1, config.ModeV),
		config.MustNamed(4, 1, config.ModeIM),
		config.MustNamed(4, 1, config.ModeNoIM),
		config.MustNamed(8, 1, config.ModeV),
		config.MustNamed(8, 1, config.ModeIM),
		config.MustNamed(8, 1, config.ModeNoIM),
	}
	benches := []string{"compress", "swim", "applu"}
	var specs []RunSpec
	for _, cfg := range cfgs {
		for _, b := range benches {
			specs = append(specs, RunSpec{Cfg: cfg, Bench: b})
		}
	}
	return specs
}

// waitDecodedDrained waits for the runner's decoded-trace map to empty.
// A gang releases its shared blocks in a defer that runs after the last
// member's memo entry resolves, so callers that synchronized on the memo
// may observe the release a beat later.
func waitDecodedDrained(t *testing.T, r *Runner) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		r.mu.Lock()
		live := len(r.decoded)
		r.mu.Unlock()
		if live == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("%d decoded entries still pinned after all gangs drained", live)
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// TestGangReplayByteIdentical runs the same sweep with ganging disabled
// (Gang: 1), capped gangs (Gang: 2 and 6) and unbounded gangs (Gang: 0),
// and demands identical statistics from every mode: gang replay is
// execution shape only, like Workers.
func TestGangReplayByteIdentical(t *testing.T) {
	specs := gangSuite()
	run := func(gang int) []*stats.Sim {
		t.Helper()
		r := NewRunner(Options{Scale: 10_000, Seed: 1, Workers: 4, Gang: gang})
		sims, err := r.RunAll(specs)
		if err != nil {
			t.Fatalf("gang=%d: %v", gang, err)
		}
		if gang == 1 {
			if got := r.GangBatches(); got != 0 {
				t.Errorf("gang=1 formed %d gangs, want 0", got)
			}
			return sims
		}
		if r.GangBatches() == 0 {
			t.Errorf("gang=%d formed no gangs over %d specs", gang, len(specs))
		}
		if runs := r.GangRuns(); runs < 2 {
			t.Errorf("gang=%d served %d member runs, want >= 2", gang, runs)
		}
		if dec, loads := r.DecodedBlocks(), r.DecodedBlockLoads(); loads <= dec {
			t.Errorf("gang=%d: %d block loads for %d decodes — no decode work shared", gang, loads, dec)
		}
		return sims
	}
	base := run(1)
	for _, gang := range []int{2, 6, 0} {
		got := run(gang)
		for i := range base {
			if !reflect.DeepEqual(base[i], got[i]) {
				t.Errorf("gang=%d: %s/%s differs from sequential replay",
					gang, specs[i].Cfg.Name, specs[i].Bench)
			}
		}
	}
}

// TestGangShardedByteIdentical covers the composed path — gangs whose
// members shard their replays over the shared decoded trace — against
// the same sweep sharded without ganging.
func TestGangShardedByteIdentical(t *testing.T) {
	specs := gangSuite()
	run := func(gang int) []*stats.Sim {
		t.Helper()
		r := NewRunner(Options{Scale: 10_000, Seed: 1, Workers: 4, Gang: gang,
			Shards: 3, CheckpointEvery: 2048})
		sims, err := r.RunAll(specs)
		if err != nil {
			t.Fatalf("gang=%d shards=3: %v", gang, err)
		}
		return sims
	}
	base := run(1)
	got := run(0)
	for i := range base {
		if !reflect.DeepEqual(base[i], got[i]) {
			t.Errorf("sharded gang: %s/%s differs from sharded sequential",
				specs[i].Cfg.Name, specs[i].Bench)
		}
	}
}

// TestGangConcurrentHammer drives overlapping gang sweeps from many
// goroutines at one Runner: concurrent gangs share benchmark recordings
// and decoded blocks while the memo deduplicates members. Under -race
// this proves the claim/fan-out/refcount machinery is concurrency-safe;
// the Simulations counter proves each unique key still ran exactly once.
func TestGangConcurrentHammer(t *testing.T) {
	r := NewRunner(Options{Scale: 8_000, Seed: 1, Workers: 4})
	specs := gangSuite()
	unique := map[runKey]bool{}
	for _, s := range specs {
		unique[r.key(s.Cfg, s.Bench)] = true
	}
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Rotated and truncated batches so the gangs formed by each
			// goroutine overlap but never coincide.
			rot := append(append([]RunSpec(nil), specs[g%len(specs):]...), specs[:g%len(specs)]...)
			if _, err := r.RunAll(rot[:len(rot)-g%4]); err != nil {
				t.Error(err)
			}
			if _, err := r.RunAll(specs); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
	if got, want := r.Simulations(), int64(len(unique)); got != want {
		t.Errorf("executed %d simulations for %d unique keys", got, want)
	}
	waitDecodedDrained(t, r)
}

// TestGangCancellationEvicts cancels a gang sweep mid-run and checks the
// eviction contract: no memo entry for the cancelled keys survives, the
// shared decoded blocks are dropped rather than pinned, and a fresh
// runner recomputes the sweep successfully — a cancelled sweep must not
// poison the next one.
func TestGangCancellationEvicts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	r := NewRunner(Options{
		Scale: 200_000, Seed: 1, Workers: 2, Context: ctx,
		Progress: func(ev ProgressEvent) {
			if ev.Kind == RunProgress {
				once.Do(cancel)
			}
		},
	})
	specs := gangSuite()
	_, err := r.RunAll(specs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// RunAll returns as soon as its own waiters observe the cancellation;
	// the gang goroutines resolve (and evict) their claimed entries
	// asynchronously. Wait for every claimed entry to settle — eviction
	// happens before an entry's done channel closes — then assert.
	r.mu.Lock()
	inflight := make([]*call, 0, len(r.cache))
	for _, c := range r.cache {
		inflight = append(inflight, c)
	}
	r.mu.Unlock()
	for _, c := range inflight {
		<-c.done
	}
	r.mu.Lock()
	var poisoned []string
	for _, s := range specs {
		if c, ok := r.cache[r.key(s.Cfg, s.Bench)]; ok && c.err != nil {
			poisoned = append(poisoned, s.Cfg.Name+"/"+s.Bench)
		}
	}
	r.mu.Unlock()
	if len(poisoned) > 0 {
		t.Errorf("cancelled gang left poisoned memo entries: %v", poisoned)
	}
	waitDecodedDrained(t, r)

	// The next sweep — a fresh runner with a live context, as the service
	// layer would construct — recomputes from scratch.
	fresh := NewRunner(Options{Scale: 5_000, Seed: 1, Workers: 2})
	if _, err := fresh.RunAll(specs); err != nil {
		t.Fatalf("recompute after cancelled gang: %v", err)
	}
	if fresh.Simulations() != int64(len(specs)) {
		t.Errorf("fresh runner executed %d of %d sweeps", fresh.Simulations(), len(specs))
	}
}
