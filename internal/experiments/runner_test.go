package experiments

import (
	"runtime"
	"strings"
	"sync"
	"testing"

	"specvec/internal/config"
	"specvec/internal/stats"
	"specvec/internal/workload"
)

// TestDeterminism asserts that the same Options{Scale, Seed} produce
// byte-identical rendered tables in sequential mode and with Workers: 8.
// The experiments cover every submission path: perBenchmark (Fig01),
// the two-config prefetch (Fig07), the full sweep (Fig11), the headline
// batch, and the emulator pool (VecLen).
func TestDeterminism(t *testing.T) {
	exps := []Experiment{
		{ID: "fig1", Run: Fig01},
		{ID: "headline", Run: Headline},
	}
	if !testing.Short() {
		exps = append(exps,
			Experiment{ID: "fig7", Run: Fig07},
			Experiment{ID: "fig11", Run: Fig11},
			Experiment{ID: "veclen", Run: VecLen},
		)
	}
	render := func(workers int) string {
		r := NewRunner(Options{Scale: 20_000, Seed: 1, Workers: workers})
		var sb strings.Builder
		for _, e := range exps {
			tabs, err := e.Run(r)
			if err != nil {
				t.Fatalf("%s (workers=%d): %v", e.ID, workers, err)
			}
			for _, tab := range tabs {
				sb.WriteString(tab.Render())
			}
		}
		return sb.String()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Errorf("sequential and parallel renders differ:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", seq, par)
	}
}

// TestRunnerConcurrentHammer drives one Runner from many goroutines
// requesting overlapping keys. Under -race this proves the singleflight
// memo and the simulations themselves are concurrency-safe, and the
// Simulations counter proves each unique key ran exactly once.
func TestRunnerConcurrentHammer(t *testing.T) {
	r := NewRunner(Options{Scale: 10_000, Seed: 1, Workers: 4})
	cfgs := []config.Config{
		config.MustNamed(4, 1, config.ModeV),
		config.MustNamed(4, 1, config.ModeIM),
	}
	benches := []string{"go", "compress", "swim", "applu"}

	type res struct {
		key runKey
		st  *stats.Sim
	}
	const goroutines = 32
	results := make([][]res, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < len(cfgs)*len(benches); i++ {
				// Each goroutine walks the key space from a different
				// offset so requests overlap in every interleaving.
				idx := (g + i) % (len(cfgs) * len(benches))
				cfg := cfgs[idx/len(benches)]
				bench := benches[idx%len(benches)]
				st, err := r.Run(cfg, bench)
				if err != nil {
					t.Error(err)
					return
				}
				results[g] = append(results[g], res{r.key(cfg, bench), st})
			}
		}(g)
	}
	wg.Wait()

	byKey := map[runKey]*stats.Sim{}
	for _, rs := range results {
		for _, x := range rs {
			if prev, ok := byKey[x.key]; ok && prev != x.st {
				t.Errorf("key %+v returned two distinct results", x.key)
			}
			byKey[x.key] = x.st
		}
	}
	if want := int64(len(cfgs) * len(benches)); r.Simulations() != want {
		t.Errorf("executed %d simulations for %d unique keys", r.Simulations(), want)
	}
}

// TestRunAllOrderAndPrefetch checks that RunAll returns results in spec
// order and that a Prefetch of the same fan-out is fully deduplicated.
func TestRunAllOrderAndPrefetch(t *testing.T) {
	r := NewRunner(Options{Scale: 10_000, Seed: 1, Workers: 4})
	cfg := config.MustNamed(4, 1, config.ModeV)
	specs := suiteSpecs(cfg)
	r.Prefetch(specs)
	sims, err := r.RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(sims) != len(specs) {
		t.Fatalf("got %d results for %d specs", len(sims), len(specs))
	}
	for i, st := range sims {
		if st == nil {
			t.Fatalf("spec %d: nil stats", i)
		}
		again, err := r.Run(specs[i].Cfg, specs[i].Bench)
		if err != nil {
			t.Fatal(err)
		}
		if again != st {
			t.Errorf("spec %d (%s): re-run not memoised", i, specs[i].Bench)
		}
	}
	if got, want := r.Simulations(), int64(len(specs)); got != want {
		t.Errorf("Prefetch+RunAll executed %d simulations, want %d", got, want)
	}
}

// TestRunAllPropagatesError checks that a bad spec fails the whole batch
// with a deterministic (first-in-spec-order) error.
func TestRunAllPropagatesError(t *testing.T) {
	r := NewRunner(Options{Scale: 5_000, Seed: 1, Workers: 2})
	cfg := config.MustNamed(4, 1, config.ModeV)
	_, err := r.RunAll([]RunSpec{
		{Cfg: cfg, Bench: "go"},
		{Cfg: cfg, Bench: "no-such-benchmark"},
	})
	if err == nil || !strings.Contains(err.Error(), "no-such-benchmark") {
		t.Errorf("want unknown-benchmark error, got %v", err)
	}
}

// TestAppendAggregatesSkipsEmpty covers the empty-benchmark-class bug:
// an empty class must contribute no aggregate row at all, never a named
// row with nil cells (which downstream consumers index into).
func TestAppendAggregatesSkipsEmpty(t *testing.T) {
	base := []Row{{Name: "only", Cells: []float64{1, 2}}}
	vals := [][]float64{{1, 2}}

	rows := appendAggregates(base, nil, vals, vals)
	var names []string
	for _, r := range rows {
		names = append(names, r.Name)
		if r.Cells == nil {
			t.Errorf("row %s has nil cells", r.Name)
		}
	}
	if want := []string{"only", "FP", "Spec95"}; strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("rows = %v, want %v", names, want)
	}

	// A table built from these rows must render without panicking and
	// without the empty class's aggregate.
	tab := &Table{ID: "t", Title: "empty-class", Columns: []string{"a", "b"}, Rows: rows}
	out := tab.Render()
	if strings.Contains(out, "INT") {
		t.Errorf("render contains aggregate for empty class:\n%s", out)
	}
}

// TestSharedTraceIdentical runs the same multi-config sweep with trace
// sharing on and off and requires identical rendered statistics — the
// record-once/replay-many layer must be invisible in the results — while
// the counters prove it actually recorded once per benchmark and
// replayed everything else.
func TestSharedTraceIdentical(t *testing.T) {
	cfgs := []config.Config{
		config.MustNamed(4, 1, config.ModeNoIM),
		config.MustNamed(4, 1, config.ModeIM),
		config.MustNamed(4, 1, config.ModeV),
	}
	render := func(opts Options) (string, *Runner) {
		r := NewRunner(opts)
		var sb strings.Builder
		for _, cfg := range cfgs {
			sims, err := r.RunAll(suiteSpecs(cfg))
			if err != nil {
				t.Fatal(err)
			}
			for _, st := range sims {
				sb.WriteString(st.String())
			}
		}
		return sb.String(), r
	}

	shared, rs := render(Options{Scale: 15_000, Seed: 1, Workers: 4})
	unshared, ru := render(Options{Scale: 15_000, Seed: 1, Workers: 4, NoSharedTraces: true})
	if shared != unshared {
		t.Error("trace sharing changed simulation statistics")
	}

	nbench := int64(len(workload.Names()))
	if got := rs.TraceRecordings(); got != nbench {
		t.Errorf("shared runner recorded %d traces, want %d", got, nbench)
	}
	// 3 configs per benchmark: the first records, the other two replay.
	if got, want := rs.TraceReplays(), 2*nbench; got != want {
		t.Errorf("shared runner replayed %d runs, want %d", got, want)
	}
	if got := ru.TraceRecordings(); got != 0 {
		t.Errorf("unshared runner recorded %d traces, want 0", got)
	}
}

// TestPrefetchBounded submits a sweep far larger than the worker pool and
// checks submission itself stays bounded: Prefetch must not spawn one
// goroutine per spec ahead of the semaphore.
func TestPrefetchBounded(t *testing.T) {
	r := NewRunner(Options{Scale: 8_000, Seed: 1, Workers: 2})
	var cfgs []config.Config
	for _, ports := range []int{1, 2, 4} {
		for _, mode := range []config.Mode{config.ModeNoIM, config.ModeIM, config.ModeV} {
			cfgs = append(cfgs, config.MustNamed(4, ports, mode))
		}
	}
	specs := suiteSpecs(cfgs...) // 9 × 12 = 108 specs
	before := runtime.NumGoroutine()
	r.Prefetch(specs)
	after := runtime.NumGoroutine()
	// 2 feeders plus whatever simulations already started; anything near
	// len(specs) means the fan-out is unbounded again.
	if delta := after - before; delta > len(specs)/4 {
		t.Errorf("Prefetch spawned ~%d goroutines for %d specs with 2 workers", delta, len(specs))
	}
	// Drain so the feeders finish before the test ends.
	if _, err := r.RunAll(specs); err != nil {
		t.Fatal(err)
	}
	if got, want := r.Simulations(), int64(len(specs)); got != want {
		t.Errorf("executed %d simulations, want %d", got, want)
	}
}

// TestWorkersDefault checks the worker-pool sizing rules.
func TestWorkersDefault(t *testing.T) {
	if w := NewRunner(Options{}).Opts().Workers; w < 1 {
		t.Errorf("default workers = %d", w)
	}
	if w := NewRunner(Options{Workers: -3}).Opts().Workers; w < 1 {
		t.Errorf("negative workers not defaulted: %d", w)
	}
	if w := NewRunner(Options{Workers: 1}).Opts().Workers; w != 1 {
		t.Errorf("sequential mode not preserved: %d", w)
	}
}

// TestSuiteSpecsOrder pins the fan-out order: configs outermost,
// benchmarks in presentation order within each config.
func TestSuiteSpecsOrder(t *testing.T) {
	a := config.MustNamed(4, 1, config.ModeV)
	b := config.MustNamed(8, 1, config.ModeIM)
	specs := suiteSpecs(a, b)
	names := workload.Names()
	if len(specs) != 2*len(names) {
		t.Fatalf("specs = %d, want %d", len(specs), 2*len(names))
	}
	for i, s := range specs {
		wantCfg, wantBench := a, names[i%len(names)]
		if i >= len(names) {
			wantCfg = b
		}
		if s.Cfg.Name != wantCfg.Name || s.Bench != wantBench {
			t.Fatalf("spec %d = %s/%s, want %s/%s", i, s.Cfg.Name, s.Bench, wantCfg.Name, wantBench)
		}
	}
}
