package experiments

import (
	"strings"
	"testing"
)

func testRunner() *Runner {
	return NewRunner(Options{Scale: 40_000, Seed: 1})
}

func TestRegistry(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if ids[e.ID] {
			t.Errorf("duplicate experiment %s", e.ID)
		}
		ids[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	for _, want := range []string{"fig1", "fig3", "fig7", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "table1", "headline"} {
		if !ids[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
	if _, err := Get("fig99"); err == nil {
		t.Error("Get accepted unknown id")
	}
}

func TestRunnerMemoises(t *testing.T) {
	r := testRunner()
	if _, err := Fig11(r); err != nil {
		t.Fatal(err)
	}
	n := len(r.cache)
	if _, err := Fig12(r); err != nil { // same sweep: no new runs
		t.Fatal(err)
	}
	if len(r.cache) != n {
		t.Errorf("Fig12 re-ran the Fig11 sweep: %d -> %d cached runs", n, len(r.cache))
	}
}

func TestFig01Properties(t *testing.T) {
	r := testRunner()
	tabs, err := Fig01(r)
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	// Each benchmark's stride shares sum to ~100%.
	for _, row := range tab.Rows {
		sum := 0.0
		for _, v := range row.Cells {
			if v < 0 {
				t.Errorf("%s: negative share %v", row.Name, v)
			}
			sum += v
		}
		if sum < 99 || sum > 101 {
			t.Errorf("%s: stride shares sum to %.1f", row.Name, sum)
		}
	}
	// Stride 0 should dominate the INT aggregate, as in the paper.
	s0, _ := tab.CellByColumn("INT", "s0")
	s9, _ := tab.CellByColumn("INT", "s9")
	if s0 <= s9 {
		t.Errorf("INT stride-0 (%.1f) not dominant over stride-9 (%.1f)", s0, s9)
	}
}

func TestFig03UnboundedBeatsBounded(t *testing.T) {
	r := testRunner()
	f3, err := Fig03(r)
	if err != nil {
		t.Fatal(err)
	}
	f14, err := Fig14(r)
	if err != nil {
		t.Fatal(err)
	}
	unb, _ := f3[0].CellByColumn("Spec95", "vect%")
	bnd, _ := f14[0].CellByColumn("Spec95", "total%")
	if unb+1e-9 < bnd {
		t.Errorf("unbounded vectorizable %.1f%% below bounded %.1f%%", unb, bnd)
	}
	if unb < 10 {
		t.Errorf("unbounded vectorizable only %.1f%%", unb)
	}
}

func TestFig07IdealAtLeastReal(t *testing.T) {
	r := testRunner()
	tabs, err := Fig07(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tabs[0].Rows {
		real, ideal := row.Cells[0], row.Cells[1]
		if ideal < real*0.98 {
			t.Errorf("%s: ideal IPC %.3f below real %.3f", row.Name, ideal, real)
		}
	}
}

func TestFig11Shape(t *testing.T) {
	r := testRunner()
	tabs, err := Fig11(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 2 {
		t.Fatalf("want 2 tables (4-way, 8-way), got %d", len(tabs))
	}
	t4 := tabs[0]
	if len(t4.Columns) != 9 {
		t.Fatalf("want 9 series, got %v", t4.Columns)
	}
	// At one port the wide bus must not lose to the scalar bus, and V must
	// not lose to IM, on the Spec95 average (the paper's headline shape).
	noim, _ := t4.CellByColumn("Spec95", "1pnoIM")
	im, _ := t4.CellByColumn("Spec95", "1pIM")
	v, _ := t4.CellByColumn("Spec95", "1pV")
	if im < noim*0.98 {
		t.Errorf("1pIM (%.3f) below 1pnoIM (%.3f)", im, noim)
	}
	if v < im*0.98 {
		t.Errorf("1pV (%.3f) below 1pIM (%.3f)", v, im)
	}
	// 8-way must not be slower than 4-way on average for the same mode.
	v8, _ := tabs[1].CellByColumn("Spec95", "1pV")
	if v8 < v*0.95 {
		t.Errorf("8-way 1pV (%.3f) below 4-way 1pV (%.3f)", v8, v)
	}
}

func TestFig12OccupancyDropsWithPorts(t *testing.T) {
	r := testRunner()
	tabs, err := Fig12(r)
	if err != nil {
		t.Fatal(err)
	}
	one, _ := tabs[0].CellByColumn("Spec95", "1pnoIM")
	four, _ := tabs[0].CellByColumn("Spec95", "4pnoIM")
	if four >= one {
		t.Errorf("occupancy did not drop with more ports: 1p=%.1f 4p=%.1f", one, four)
	}
	for _, row := range tabs[0].Rows {
		for i, v := range row.Cells {
			if v < 0 || v > 100 {
				t.Errorf("%s[%s]: occupancy %v out of range", row.Name, tabs[0].Columns[i], v)
			}
		}
	}
}

func TestFig13SharesSum(t *testing.T) {
	r := testRunner()
	tabs, err := Fig13(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tabs[0].Rows {
		sum := 0.0
		for _, v := range row.Cells {
			sum += v
		}
		if sum < 99 || sum > 101 {
			t.Errorf("%s: shares sum to %.1f", row.Name, sum)
		}
	}
}

func TestFig15ElementConservation(t *testing.T) {
	r := testRunner()
	tabs, err := Fig15(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tabs[0].Rows {
		total := row.Cells[0] + row.Cells[1] + row.Cells[2]
		if total < 3.99 || total > 4.01 {
			t.Errorf("%s: element averages sum to %.3f, want 4", row.Name, total)
		}
	}
}

func TestTable1StorageAudit(t *testing.T) {
	tabs, err := Table1(nil)
	if err != nil {
		t.Fatal(err)
	}
	total, ok := tabs[0].CellByColumn("4-way", "total_B")
	if !ok || total != 57856 {
		t.Errorf("extra storage = %v, want 57856 (≈56KB)", total)
	}
}

func TestHeadlineProducesAllRows(t *testing.T) {
	r := testRunner()
	tabs, err := Headline(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs[0].Rows) < 10 {
		t.Fatalf("headline rows: %d", len(tabs[0].Rows))
	}
	// Direction checks: memory requests must go down with V.
	for _, row := range tabs[0].Rows {
		if strings.HasPrefix(row.Name, "mem request change") && row.Cells[0] > 0 {
			t.Errorf("%s = %+.1f%%, expected negative", row.Name, row.Cells[0])
		}
		if strings.HasPrefix(row.Name, "validations") && row.Cells[0] <= 0 {
			t.Errorf("%s = %.1f%%, expected positive", row.Name, row.Cells[0])
		}
	}
}

func TestRenderFormatting(t *testing.T) {
	tab := &Table{
		ID: "figX", Title: "demo", Columns: []string{"a", "b"},
		Rows:   []Row{{Name: "go", Cells: []float64{1.5, 2}}, {Name: "INT", Cells: []float64{1, 2}}},
		Format: "%6.2f",
		Notes:  "checkme",
	}
	out := tab.Render()
	for _, want := range []string{"FIGX", "benchmark", "go", "1.50", "paper: checkme", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep in -short mode")
	}
	r := testRunner()
	for _, e := range All() {
		tabs, err := e.Run(r)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if len(tabs) == 0 {
			t.Errorf("%s: no tables", e.ID)
		}
		for _, tab := range tabs {
			if out := tab.Render(); len(out) < 40 {
				t.Errorf("%s: suspiciously short render", e.ID)
			}
		}
	}
}
