package experiments

import (
	"specvec/internal/config"
	"specvec/internal/stats"
	"specvec/internal/workload"
)

// Ablation quantifies the design choices DESIGN.md §6 calls out, all on
// the 4-way one-wide-port V configuration:
//
//   - the churn damper for unstable scalar operands (ours) vs the paper's
//     literal re-create-on-mismatch rule;
//   - the per-element store-conflict check (ours) vs the coarse
//     [first,last] range test;
//   - vector register geometry: length 2/4/8 and file size 32/128/256
//     (the paper argues VL=4 from its measured mean vector lengths and
//     calls the register file "one of the most critical resources");
//   - the TL confidence threshold (the paper fires at 2).
func Ablation(r *Runner) ([]*Table, error) {
	base := config.MustNamed(4, 1, config.ModeV)

	variant := func(name string, cfg config.Config) (Row, error) {
		sims, err := r.RunAll(suiteSpecs(cfg))
		if err != nil {
			return Row{}, err
		}
		var ipcInt, ipcFP, valid, conflicts, insts float64
		var nInt, nFP int
		for i, bn := range workload.Names() {
			st := sims[i]
			b, _ := workload.Get(bn)
			if b.FP {
				ipcFP += st.IPC()
				nFP++
			} else {
				ipcInt += st.IPC()
				nInt++
			}
			valid += st.ValidationFraction()
			conflicts += float64(st.StoreConflicts)
			insts += float64(st.Committed)
		}
		return Row{Name: name, Cells: []float64{
			ipcInt / float64(nInt),
			ipcFP / float64(nFP),
			(ipcInt + ipcFP) / float64(nInt+nFP),
			100 * valid / float64(nInt+nFP),
			1000 * conflicts / insts,
		}}, nil
	}

	variants := []struct {
		name   string
		mutate func(*config.Config)
	}{
		{"baseline (V)", func(c *config.Config) {}},
		{"no churn damper", func(c *config.Config) { c.ChurnDamper = false }},
		{"range-only conflicts", func(c *config.Config) { c.RangeOnlyConflicts = true }},
		{"both reverted", func(c *config.Config) { c.ChurnDamper = false; c.RangeOnlyConflicts = true }},
		{"VL=2", func(c *config.Config) { c.VectorLen = 2 }},
		{"VL=8", func(c *config.Config) { c.VectorLen = 8 }},
		{"32 vregs", func(c *config.Config) { c.VectorRegs = 32 }},
		{"256 vregs", func(c *config.Config) { c.VectorRegs = 256 }},
		{"confidence=1", func(c *config.Config) { c.ConfThreshold = 1 }},
		{"confidence=3", func(c *config.Config) { c.ConfThreshold = 3 }},
	}

	// Build each variant's config once (the same value is prefetched and
	// then requested, so the memo keys are guaranteed to match) and submit
	// every suite to the pool before assembling any row, so the whole
	// 10-variant × 12-benchmark sweep runs concurrently.
	cfgs := make([]config.Config, len(variants))
	for i, v := range variants {
		cfgs[i] = base
		v.mutate(&cfgs[i])
	}
	r.Prefetch(suiteSpecs(cfgs...))

	var rows []Row
	for i, v := range variants {
		row, err := variant(v.name, cfgs[i])
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return []*Table{{
		ID:      "ablation",
		Title:   "Design-choice ablations, 4-way, 1 wide port (suite means)",
		Columns: []string{"INT-IPC", "FP-IPC", "IPC", "valid%", "cfl/1k"},
		Rows:    rows,
		Format:  "%8.3f",
		Notes:   "reverting the reproduction's refinements shows why they exist; geometry rows justify Table 1's choices",
	}}, nil
}

// VecLen reproduces the §4.1 statistic that motivates VL=4: the average
// length of maximal constant-stride runs per static load ("the average
// vector length for our benchmarks is relatively small: 8.84 for SpecInt
// and 7.37 for SpecFP"). A run is a maximal sequence of dynamic instances
// of one static load whose stride stays constant; runs shorter than 2 are
// unvectorizable noise and are not counted.
func VecLen(r *Runner) ([]*Table, error) {
	names := workload.Names()
	// The functional-emulation passes are independent per benchmark; run
	// them on the same worker pool as the cycle-level simulations.
	means := make([]float64, len(names))
	if err := r.each(len(names), func(i int) error {
		m, err := meanRunLength(r, names[i])
		means[i] = m
		return err
	}); err != nil {
		return nil, err
	}
	var rows []Row
	var intLens, fpLens, allLens []float64
	for i, name := range names {
		mean := means[i]
		rows = append(rows, Row{Name: name, Cells: []float64{mean}})
		b, _ := workload.Get(name)
		if b.FP {
			fpLens = append(fpLens, mean)
		} else {
			intLens = append(intLens, mean)
		}
		allLens = append(allLens, mean)
	}
	rows = append(rows,
		Row{Name: "INT", Cells: []float64{stats.GeoMean(intLens)}},
		Row{Name: "FP", Cells: []float64{stats.GeoMean(fpLens)}},
		Row{Name: "Spec95", Cells: []float64{stats.GeoMean(allLens)}},
	)
	return []*Table{{
		ID:      "veclen",
		Title:   "Mean constant-stride run length per static load (§4.1)",
		Columns: []string{"mean-len"},
		Rows:    rows,
		Format:  "%9.2f",
		Notes:   "paper: 8.84 SpecInt / 7.37 SpecFP — small enough that 4-element registers capture most runs",
	}}, nil
}
