package experiments

import (
	"errors"
	"math"
	"strings"
	"testing"

	"specvec/internal/config"
	"specvec/internal/emu"
	"specvec/internal/isa"
	"specvec/internal/trace"
	"specvec/internal/workload"
)

// renderSuite runs the full benchmark suite under cfgs and concatenates
// the rendered statistics.
func renderSuite(t *testing.T, opts Options, cfgs ...config.Config) (string, *Runner) {
	t.Helper()
	r := NewRunner(opts)
	var sb strings.Builder
	for _, cfg := range cfgs {
		sims, err := r.RunAll(suiteSpecs(cfg))
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range sims {
			sb.WriteString(st.String())
		}
	}
	return sb.String(), r
}

// TestShardedK1ByteIdentical pins exact mode: Shards=1 (with or without
// checkpoint recording) must keep the single-pass path and produce
// byte-identical figures.
func TestShardedK1ByteIdentical(t *testing.T) {
	cfgs := []config.Config{
		config.MustNamed(4, 1, config.ModeIM),
		config.MustNamed(4, 1, config.ModeV),
	}
	plain, _ := renderSuite(t, Options{Scale: 15_000, Seed: 1, Workers: 4}, cfgs...)
	k1, _ := renderSuite(t, Options{Scale: 15_000, Seed: 1, Workers: 4, Shards: 1, CheckpointEvery: 2000}, cfgs...)
	if plain != k1 {
		t.Error("Shards=1 with checkpoint recording changed simulation statistics")
	}
}

// TestShardedDeterministic requires sharded results to be byte-identical
// across worker counts: shard boundaries are fixed and merging happens
// in shard order, so scheduling must never show through.
func TestShardedDeterministic(t *testing.T) {
	cfg := config.MustNamed(4, 1, config.ModeV)
	opts := Options{Scale: 20_000, Seed: 1, Shards: 4}
	opts.Workers = 1
	seq, _ := renderSuite(t, opts, cfg)
	opts.Workers = 8
	par, _ := renderSuite(t, opts, cfg)
	if seq != par {
		t.Error("sharded results differ between Workers=1 and Workers=8")
	}
}

// TestShardedMatchesExact is the warmup-tolerance acceptance test:
// sharded figures must track single-pass figures closely — the
// instruction mix is identical by construction, and IPC agrees within a
// small tolerance because each shard re-warms state before measuring.
func TestShardedMatchesExact(t *testing.T) {
	cfg := config.MustNamed(4, 1, config.ModeV)
	const scale = 40_000
	for _, bench := range []string{"compress", "swim", "gcc"} {
		exact := NewRunner(Options{Scale: scale, Seed: 1})
		sharded := NewRunner(Options{Scale: scale, Seed: 1, Shards: 4})
		e, err := exact.Run(cfg, bench)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sharded.Run(cfg, bench)
		if err != nil {
			t.Fatal(err)
		}
		// Interval boundaries are observed at commit-width granularity, so
		// each of the 4 shards may shift up to CommitWidth-1 instructions
		// between warmup and measurement; totals and the per-class mix
		// must agree within that slack.
		slack := int64(4 * cfg.CommitWidth)
		within := func(what string, a, b uint64) {
			if d := int64(a) - int64(b); d < -slack || d > slack {
				t.Errorf("%s: sharded %s %d vs exact %d (beyond per-shard commit-width slack)", bench, what, a, b)
			}
		}
		within("committed", s.Committed, e.Committed)
		within("loads", s.CommittedLoads, e.CommittedLoads)
		within("stores", s.CommittedStores, e.CommittedStores)
		within("branches", s.CommittedBranches, e.CommittedBranches)
		if rel := math.Abs(s.IPC()-e.IPC()) / e.IPC(); rel > 0.05 {
			t.Errorf("%s: sharded IPC %.4f vs exact %.4f (%.1f%% off, tolerance 5%%)",
				bench, s.IPC(), e.IPC(), 100*rel)
		}
	}
}

// TestShardPlan pins the fast-forward geometry: intervals tile [0,
// total), each shard fast-forwards to a checkpoint at least warmup
// records before its interval, and shard 0 starts cold at record zero.
func TestShardPlan(t *testing.T) {
	prog, err := workload.Get("compress")
	if err != nil {
		t.Fatal(err)
	}
	p := prog.Build(40_000, 1)
	mach, err := emu.New(p)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := trace.NewRecorder(mach, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.EnableCheckpoints(5000); err != nil {
		t.Fatal(err)
	}
	tr, err := rec.Finish(40_000 + trace.RecordSlack)
	if err != nil {
		t.Fatal(err)
	}

	const total, warmup = 40_000, 4096
	plan := shardPlan(tr, total, 4, warmup)
	if len(plan) != 4 {
		t.Fatalf("plan has %d shards, want 4", len(plan))
	}
	var covered uint64
	for i, sp := range plan {
		start := sp.replayFrom + sp.warmup
		if start != covered {
			t.Errorf("shard %d starts at %d, want %d (gap or overlap)", i, start, covered)
		}
		covered += sp.measure
		if i == 0 {
			if sp.replayFrom != 0 || sp.seedBHR {
				t.Errorf("shard 0 must start cold at record 0, got replayFrom=%d seed=%v", sp.replayFrom, sp.seedBHR)
			}
			continue
		}
		if sp.warmup < warmup {
			t.Errorf("shard %d warmup %d below the %d minimum", i, sp.warmup, warmup)
		}
		if sp.replayFrom%5000 != 0 || sp.replayFrom == 0 {
			t.Errorf("shard %d replays from %d, not a checkpoint boundary", i, sp.replayFrom)
		}
		if !sp.seedBHR {
			t.Errorf("shard %d does not seed the branch history", i)
		}
	}
	if covered != total {
		t.Errorf("plan measures %d instructions, want %d", covered, total)
	}
}

// TestPublishTraceNeverNilNil is the ISSUE 4 regression pin: resolving a
// trace entry with a nil trace and a nil error must never reach the
// followers as such — the guard substitutes ErrRecordingUnusable.
func TestPublishTraceNeverNilNil(t *testing.T) {
	r := NewRunner(Options{Scale: 5_000, Seed: 1, Workers: 1})
	prog := &isa.Program{Name: "stub", Insts: []isa.Inst{{Op: isa.OpHalt}}}
	tc := &traceCall{done: make(chan struct{})}
	r.publishTrace(tc, "stub", prog, nil, nil)
	<-tc.done
	if !errors.Is(tc.err, ErrRecordingUnusable) {
		t.Errorf("nil-trace/nil-error publish resolved with err=%v, want ErrRecordingUnusable", tc.err)
	}
	if r.TraceRecordings() != 0 {
		t.Error("a failed recording was counted as recorded")
	}
}

// TestRecordingFailureFallsBack seeds a shared-trace entry in the failed
// state (valid program, no trace, ErrRecordingUnusable) and checks that
// timing runs and the stream pass (VecLen's eachRecord) both fall back
// to live emulation with results identical to an unshared runner.
func TestRecordingFailureFallsBack(t *testing.T) {
	const bench = "compress"
	opts := Options{Scale: 10_000, Seed: 1, Workers: 2}
	cfg := config.MustNamed(4, 1, config.ModeV)

	b, err := workload.Get(bench)
	if err != nil {
		t.Fatal(err)
	}
	prog := b.Build(opts.Scale, opts.Seed)

	seeded := NewRunner(opts)
	tc := &traceCall{done: make(chan struct{})}
	seeded.publishTrace(tc, bench, prog, nil, ErrRecordingUnusable)
	seeded.traces[bench] = tc

	st, err := seeded.Run(cfg, bench)
	if err != nil {
		t.Fatalf("failed recording was fatal for the benchmark: %v", err)
	}
	plain := NewRunner(Options{Scale: opts.Scale, Seed: opts.Seed, Workers: 1, NoSharedTraces: true})
	want, err := plain.Run(cfg, bench)
	if err != nil {
		t.Fatal(err)
	}
	if st.String() != want.String() {
		t.Error("live-emulation fallback produced different statistics than an unshared run")
	}

	// The stream pass must also fall back and still see every record.
	var n int
	if err := seeded.eachRecord(bench, 1000, func(*emu.DynInst) { n++ }); err != nil {
		t.Fatalf("eachRecord with a failed recording: %v", err)
	}
	if n != 1000 {
		t.Errorf("eachRecord yielded %d records, want 1000", n)
	}
}
