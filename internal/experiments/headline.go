package experiments

import (
	"specvec/internal/config"
	"specvec/internal/stats"
	"specvec/internal/workload"
)

// Headline computes the numbers quoted in the paper's abstract,
// introduction and conclusions:
//
//   - a 4-way processor with one wide bus and dynamic vectorization is
//     ~19% faster than the same processor with 4 scalar buses;
//   - it is ~3% faster than an 8-way processor with 4 scalar ports;
//   - dynamic vectorization raises 4-way/1-wide-bus IPC by 21.2% (INT)
//     and 8.1% (FP);
//   - memory requests drop ~15% (INT) and ~20% (FP);
//   - 28% (INT) / 23% (FP) of instructions become validations;
//   - stores hitting vector ranges: 4.5% INT / 2.5% FP.
func Headline(r *Runner) ([]*Table, error) {
	type agg struct{ ipc, memPerInst, valid, conflictRate float64 }
	collect := func(cfg config.Config, names []string) (agg, error) {
		var a agg
		specs := make([]RunSpec, len(names))
		for i, n := range names {
			specs[i] = RunSpec{Cfg: cfg, Bench: n}
		}
		sims, err := r.RunAll(specs)
		if err != nil {
			return a, err
		}
		for _, st := range sims {
			a.ipc += st.IPC()
			a.memPerInst += st.MemRequestsPerInst()
			a.valid += st.ValidationFraction()
			a.conflictRate += stats.Ratio(st.StoreConflicts, st.CommittedStores)
		}
		n := float64(len(names))
		a.ipc /= n
		a.memPerInst /= n
		a.valid /= n
		a.conflictRate /= n
		return a, nil
	}

	cfg4w1pV := config.MustNamed(4, 1, config.ModeV)
	cfg4w1pIM := config.MustNamed(4, 1, config.ModeIM)
	cfg4w4pNo := config.MustNamed(4, 4, config.ModeNoIM)
	cfg8w4pNo := config.MustNamed(8, 4, config.ModeNoIM)

	// The INT/FP collects below reuse these runs from the memo, so this
	// prefetch is the experiment's entire simulation cost.
	r.Prefetch(suiteSpecs(cfg4w1pV, cfg4w1pIM, cfg4w4pNo, cfg8w4pNo))

	all := workload.Names()
	ints, fps := workload.IntNames(), workload.FPNames()

	v, err := collect(cfg4w1pV, all)
	if err != nil {
		return nil, err
	}
	im, err := collect(cfg4w1pIM, all)
	if err != nil {
		return nil, err
	}
	no4, err := collect(cfg4w4pNo, all)
	if err != nil {
		return nil, err
	}
	no8, err := collect(cfg8w4pNo, all)
	if err != nil {
		return nil, err
	}
	vInt, err := collect(cfg4w1pV, ints)
	if err != nil {
		return nil, err
	}
	vFP, err := collect(cfg4w1pV, fps)
	if err != nil {
		return nil, err
	}
	imInt, err := collect(cfg4w1pIM, ints)
	if err != nil {
		return nil, err
	}
	imFP, err := collect(cfg4w1pIM, fps)
	if err != nil {
		return nil, err
	}

	pct := func(a, b float64) float64 {
		if b == 0 {
			return 0
		}
		return 100 * (a - b) / b
	}

	rows := []Row{
		{Name: "speedup 4w1pV vs 4w4pnoIM %", Cells: []float64{pct(v.ipc, no4.ipc)}},
		{Name: "speedup 4w1pV vs 8w4pnoIM %", Cells: []float64{pct(v.ipc, no8.ipc)}},
		{Name: "IPC gain V vs IM (INT) %", Cells: []float64{pct(vInt.ipc, imInt.ipc)}},
		{Name: "IPC gain V vs IM (FP) %", Cells: []float64{pct(vFP.ipc, imFP.ipc)}},
		{Name: "mem request change (INT) %", Cells: []float64{pct(vInt.memPerInst, imInt.memPerInst)}},
		{Name: "mem request change (FP) %", Cells: []float64{pct(vFP.memPerInst, imFP.memPerInst)}},
		{Name: "validations (INT) %", Cells: []float64{100 * vInt.valid}},
		{Name: "validations (FP) %", Cells: []float64{100 * vFP.valid}},
		{Name: "store conflicts/store (INT) %", Cells: []float64{100 * vInt.conflictRate}},
		{Name: "store conflicts/store (FP) %", Cells: []float64{100 * vFP.conflictRate}},
		{Name: "IPC 4w1pV", Cells: []float64{v.ipc}},
		{Name: "IPC 4w1pIM", Cells: []float64{im.ipc}},
		{Name: "IPC 4w4pnoIM", Cells: []float64{no4.ipc}},
		{Name: "IPC 8w4pnoIM", Cells: []float64{no8.ipc}},
	}
	return []*Table{{
		ID:      "headline",
		Title:   "Headline comparisons (paper: +19% vs 4 scalar buses; +3% vs 8-way 4p; +21.2%/+8.1% over IM; -15%/-20% memory requests; 28%/23% validations; 4.5%/2.5% conflicting stores)",
		Columns: []string{"value"},
		Rows:    rows,
		Format:  "%9.2f",
	}}, nil
}
