package experiments

import (
	"fmt"
	"strings"
)

// Row is one line of an experiment table.
type Row struct {
	Name  string
	Cells []float64
}

// Table is one regenerated figure or table.
type Table struct {
	ID      string // e.g. "fig11"
	Title   string
	Columns []string
	Rows    []Row
	// Format is the fmt verb for cells (default "%8.3f").
	Format string
	// Notes records the paper's reference values for EXPERIMENTS.md.
	Notes string
}

// Render produces an aligned plain-text table.
func (t *Table) Render() string {
	format := t.Format
	if format == "" {
		format = "%8.3f"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", strings.ToUpper(t.ID), t.Title)

	nameW := len("benchmark")
	for _, r := range t.Rows {
		if len(r.Name) > nameW {
			nameW = len(r.Name)
		}
	}
	cellW := 8
	if n := parseWidth(format); n > 0 {
		cellW = n
	}

	fmt.Fprintf(&sb, "%-*s", nameW+2, "benchmark")
	for _, c := range t.Columns {
		fmt.Fprintf(&sb, " %*s", cellW, c)
	}
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		if r.Name == "INT" {
			sb.WriteString(strings.Repeat("-", nameW+2+(cellW+1)*len(t.Columns)) + "\n")
		}
		fmt.Fprintf(&sb, "%-*s", nameW+2, r.Name)
		for _, v := range r.Cells {
			fmt.Fprintf(&sb, " "+format, v)
		}
		sb.WriteByte('\n')
	}
	if t.Notes != "" {
		fmt.Fprintf(&sb, "paper: %s\n", t.Notes)
	}
	return sb.String()
}

func parseWidth(format string) int {
	var w, prec int
	if n, _ := fmt.Sscanf(format, "%%%d.%df", &w, &prec); n >= 1 {
		return w
	}
	return 0
}

// Cell returns the value at (rowName, colIdx); ok=false when missing.
func (t *Table) Cell(rowName string, col int) (float64, bool) {
	for _, r := range t.Rows {
		if r.Name == rowName && col < len(r.Cells) {
			return r.Cells[col], true
		}
	}
	return 0, false
}

// CellByColumn returns the value at (rowName, columnName).
func (t *Table) CellByColumn(rowName, column string) (float64, bool) {
	for i, c := range t.Columns {
		if c == column {
			return t.Cell(rowName, i)
		}
	}
	return 0, false
}
