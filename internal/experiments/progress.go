package experiments

import (
	"specvec/internal/trace"
)

// ProgressKind names one Runner lifecycle event.
type ProgressKind int

const (
	// RunStarted: a (configuration, benchmark) simulation began executing
	// (a memo miss; joined and memoised requests emit only RunDone).
	RunStarted ProgressKind = iota
	// RunProgress: the simulation's committed-instruction count crossed a
	// reporting threshold (Committed / Target carry the position).
	RunProgress
	// ShardDone: one interval of a sharded simulation finished
	// (Shard / Shards carry the 1-based index and the plan size).
	ShardDone
	// RunDone: a Run call resolved. Cached marks results served from the
	// memo without simulating; Err carries the run's error, if any.
	RunDone
)

// String renders the event kind for logs and streamed job events.
func (k ProgressKind) String() string {
	switch k {
	case RunStarted:
		return "run-started"
	case RunProgress:
		return "run-progress"
	case ShardDone:
		return "shard-done"
	case RunDone:
		return "run-done"
	default:
		return "unknown"
	}
}

// ProgressEvent is one observation of a Runner's work, delivered to
// Options.Progress. Events for different runs arrive concurrently and
// unordered relative to each other; events for one run are ordered
// (RunStarted, then RunProgress/ShardDone, then RunDone).
type ProgressEvent struct {
	Kind       ProgressKind
	Cfg, Bench string
	// Committed/Target position a RunProgress event within the run.
	Committed, Target uint64
	// Shard/Shards identify a ShardDone interval (1-based / plan size).
	Shard, Shards int
	// Cached marks a RunDone resolved from the memo without simulating.
	Cached bool
	// Err is the run's error on RunDone (nil on success).
	Err error
}

// TraceStore persists recorded benchmark traces across Runner instances
// (the service layer's content-addressed artifact store implements it; a
// warm daemon hands every new Runner the recordings of earlier jobs).
// Implementations must be safe for concurrent use and MUST be scoped to
// one (scale, seed, checkpoint spacing) triple — the Runner addresses the
// store by bare benchmark name and trusts that a returned trace was
// recorded under its own options. Load misses and Store failures are
// silent: the store is an optimisation, never a correctness dependency.
type TraceStore interface {
	// Load returns the stored recording for bench, or ok=false.
	Load(bench string) (tr *trace.Trace, ok bool)
	// Store persists bench's recording, best effort.
	Store(bench string, tr *trace.Trace)
}
