package experiments

import (
	"fmt"

	"specvec/internal/config"
	"specvec/internal/core"
	"specvec/internal/stats"
)

// Experiment regenerates one figure or table of the paper.
type Experiment struct {
	ID    string
	Title string
	Run   func(r *Runner) ([]*Table, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig1", "Stride distribution for SpecInt95 and SpecFP95", Fig01},
		{"fig3", "Percentage of vectorizable instructions (unbounded resources)", Fig03},
		{"fig7", "IPC blocking vs not blocking vector instructions with a scalar register not ready", Fig07},
		{"fig9", "Percentage of vector instructions with non-zero source operand offsets", Fig09},
		{"fig10", "Control-flow independence: instruction reuse after branch mispredictions", Fig10},
		{"fig11", "IPC per port count and mode, 4-way and 8-way", Fig11},
		{"fig12", "Data-port occupancy per port count and mode", Fig12},
		{"fig13", "Wide-bus effectiveness: useful words per line read", Fig13},
		{"fig14", "Percentage of validation instructions", Fig14},
		{"fig15", "Vector register element outcome (computed/used)", Fig15},
		{"table1", "Microarchitectural parameters and extra storage", Table1},
		{"headline", "Headline speedups and reductions quoted in the paper", Headline},
		{"veclen", "Mean constant-stride run length (§4.1 vector-length statistic)", VecLen},
		{"ablation", "Design-choice ablations (churn damper, conflict check, vector geometry)", Ablation},
	}
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// Fig01 reproduces Figure 1: the distribution of load strides, in
// elements, buckets 0..9 plus irregular.
func Fig01(r *Runner) ([]*Table, error) {
	cfg := config.MustNamed(4, 1, config.ModeV)
	cols := []string{"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "other"}
	rows, err := r.perBenchmark(cfg, func(st *stats.Sim) []float64 {
		out := make([]float64, 11)
		for i := 0; i < 10; i++ {
			out[i] = 100 * st.StrideHist.Fraction(i)
		}
		out[10] = 100 * st.StrideHist.Fraction(-1)
		return out
	})
	if err != nil {
		return nil, err
	}
	return []*Table{{
		ID: "fig1", Title: "Stride distribution (% of dynamic loads, stride in elements)",
		Columns: cols, Rows: rows, Format: "%6.1f",
		Notes: "stride 0 dominates both suites (~45-60% INT); strides <4 cover 97.9% INT / 81.3% FP of strided loads",
	}}, nil
}

// Fig03 reproduces Figure 3: fraction of instructions executed in vector
// mode with unbounded TL/VRMT/register resources.
func Fig03(r *Runner) ([]*Table, error) {
	cfg := config.MustNamed(8, 1, config.ModeV)
	cfg.Unbounded = true
	rows, err := r.perBenchmark(cfg, func(st *stats.Sim) []float64 {
		return []float64{100 * st.ValidationFraction()}
	})
	if err != nil {
		return nil, err
	}
	return []*Table{{
		ID: "fig3", Title: "Vectorizable instructions, unbounded resources (% of committed)",
		Columns: []string{"vect%"}, Rows: rows, Format: "%7.1f",
		Notes: "paper: 47% SpecInt, 51% SpecFP",
	}}, nil
}

// Fig07 reproduces Figure 7: the cost of blocking decode on vectorized
// instructions whose scalar register operand is not ready.
func Fig07(r *Runner) ([]*Table, error) {
	real := config.MustNamed(4, 1, config.ModeV)
	ideal := real
	ideal.BlockScalarOperand = false
	r.Prefetch(suiteSpecs(real, ideal))

	realRows, err := r.perBenchmark(real, func(st *stats.Sim) []float64 {
		return []float64{st.IPC()}
	})
	if err != nil {
		return nil, err
	}
	idealRows, err := r.perBenchmark(ideal, func(st *stats.Sim) []float64 {
		return []float64{st.IPC()}
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Row, len(realRows))
	for i := range realRows {
		rows[i] = Row{Name: realRows[i].Name,
			Cells: []float64{realRows[i].Cells[0], idealRows[i].Cells[0]}}
	}
	return []*Table{{
		ID: "fig7", Title: "IPC with decode blocking (real) vs without (ideal), 4-way, 1 wide port",
		Columns: []string{"real", "ideal"}, Rows: rows, Format: "%7.3f",
		Notes: "paper: the real/ideal gap is small (blocked instructions are rare)",
	}}, nil
}

// Fig09 reproduces Figure 9: vector instances created with a non-zero
// source operand offset (8-way, 128 vector registers).
func Fig09(r *Runner) ([]*Table, error) {
	cfg := config.MustNamed(8, 1, config.ModeV)
	rows, err := r.perBenchmark(cfg, func(st *stats.Sim) []float64 {
		return []float64{100 * st.OffsetNonZeroFraction()}
	})
	if err != nil {
		return nil, err
	}
	return []*Table{{
		ID: "fig9", Title: "Vector instructions with source offset != 0 (% of arithmetic vector instances)",
		Columns: []string{"off!=0%"}, Rows: rows, Format: "%8.1f",
		Notes: "paper: low overall (<=25% worst case)",
	}}, nil
}

// Fig10 reproduces Figure 10: among the 100 instructions after each
// mispredicted branch, the share that are reusable validations.
func Fig10(r *Runner) ([]*Table, error) {
	cfg := config.MustNamed(4, 1, config.ModeV)
	rows, err := r.perBenchmark(cfg, func(st *stats.Sim) []float64 {
		window := 0.0
		if st.Committed > 0 {
			window = 100 * float64(st.PostMispredictInsts) / float64(st.Committed)
		}
		return []float64{100 * st.ControlIndepFraction(), window}
	})
	if err != nil {
		return nil, err
	}
	return []*Table{{
		ID: "fig10", Title: "Control independence: reused instructions in the 100 after a mispredict",
		Columns: []string{"reused%", "window%"}, Rows: rows, Format: "%8.1f",
		Notes: "paper: 17% reused for SpecInt; window is 10.53% of committed instructions",
	}}, nil
}

// figure11Modes enumerates the 9 per-width series of Figures 11 and 12.
func figure11Modes() (cols []string, ports []int, modes []config.Mode) {
	for _, p := range []int{1, 2, 4} {
		for _, m := range []config.Mode{config.ModeNoIM, config.ModeIM, config.ModeV} {
			cols = append(cols, fmt.Sprintf("%dp%s", p, m))
			ports = append(ports, p)
			modes = append(modes, m)
		}
	}
	return cols, ports, modes
}

func sweepTable(r *Runner, id, title string, width int, metric func(*stats.Sim, config.Config) float64, format, notes string) (*Table, error) {
	cols, ports, modes := figure11Modes()
	cfgs := make([]config.Config, len(cols))
	for i := range cols {
		cfgs[i] = config.MustNamed(width, ports[i], modes[i])
	}
	// Submit the whole 9-series × 12-benchmark fan-out to the pool up
	// front; the per-series loops below then assemble from the memo.
	r.Prefetch(suiteSpecs(cfgs...))
	var rowSets [][]Row
	for i := range cols {
		cfg := cfgs[i]
		rows, err := r.perBenchmark(cfg, func(st *stats.Sim) []float64 {
			return []float64{metric(st, cfg)}
		})
		if err != nil {
			return nil, err
		}
		rowSets = append(rowSets, rows)
	}
	rows := make([]Row, len(rowSets[0]))
	for i := range rows {
		rows[i] = Row{Name: rowSets[0][i].Name}
		for _, rs := range rowSets {
			rows[i].Cells = append(rows[i].Cells, rs[i].Cells[0])
		}
	}
	return &Table{ID: id, Title: title, Columns: cols, Rows: rows, Format: format, Notes: notes}, nil
}

// Fig11 reproduces Figure 11: IPC for both widths across ports × modes.
func Fig11(r *Runner) ([]*Table, error) {
	t4, err := sweepTable(r, "fig11a", "IPC, 4-way processor", 4,
		func(st *stats.Sim, _ config.Config) float64 { return st.IPC() }, "%7.3f",
		"wide bus > scalar bus at 1 port; V adds on top (paper: +21.2% INT, +8.1% FP over 1pIM at 4-way)")
	if err != nil {
		return nil, err
	}
	t8, err := sweepTable(r, "fig11b", "IPC, 8-way processor", 8,
		func(st *stats.Sim, _ config.Config) float64 { return st.IPC() }, "%7.3f",
		"paper: 8-way 1p average IPC 1.77 -> 2.16 with a wide bus")
	if err != nil {
		return nil, err
	}
	return []*Table{t4, t8}, nil
}

// Fig12 reproduces Figure 12: data-port occupancy for the same sweep.
func Fig12(r *Runner) ([]*Table, error) {
	metric := func(st *stats.Sim, cfg config.Config) float64 {
		return 100 * st.PortOccupancy(cfg.MemPorts)
	}
	t4, err := sweepTable(r, "fig12a", "Port occupancy % (4-way)", 4, metric, "%7.1f",
		"V reduces pressure versus IM at equal ports")
	if err != nil {
		return nil, err
	}
	t8, err := sweepTable(r, "fig12b", "Port occupancy % (8-way)", 8, metric, "%7.1f", "")
	if err != nil {
		return nil, err
	}
	return []*Table{t4, t8}, nil
}

// Fig13 reproduces Figure 13: useful words per wide-bus line read.
func Fig13(r *Runner) ([]*Table, error) {
	cfg := config.MustNamed(4, 1, config.ModeV)
	rows, err := r.perBenchmark(cfg, func(st *stats.Sim) []float64 {
		h := st.WideBusWords
		return []float64{
			100 * h.Fraction(0),
			100 * h.Fraction(1),
			100 * h.Fraction(2),
			100 * h.Fraction(3),
			100 * h.Fraction(4),
		}
	})
	if err != nil {
		return nil, err
	}
	return []*Table{{
		ID: "fig13", Title: "Line reads by useful words delivered (4-way, 1 wide port)",
		Columns: []string{"unused", "1pos", "2pos", "3pos", "4pos"}, Rows: rows, Format: "%7.1f",
		Notes: "paper: multi-word lines are common; unused (speculative) small except compress",
	}}, nil
}

// Fig14 reproduces Figure 14: validation instructions as a share of all
// committed instructions (8-way, 1 wide port).
func Fig14(r *Runner) ([]*Table, error) {
	cfg := config.MustNamed(8, 1, config.ModeV)
	rows, err := r.perBenchmark(cfg, func(st *stats.Sim) []float64 {
		c := float64(st.Committed)
		if c == 0 {
			return []float64{0, 0, 0}
		}
		return []float64{
			100 * float64(st.LoadValidations) / c,
			100 * float64(st.ArithValidations) / c,
			100 * st.ValidationFraction(),
		}
	})
	if err != nil {
		return nil, err
	}
	return []*Table{{
		ID: "fig14", Title: "Validation instructions (% of committed), 8-way, 1 wide port",
		Columns: []string{"load%", "arith%", "total%"}, Rows: rows, Format: "%7.1f",
		Notes: "paper: 28% SpecInt, 23% SpecFP total",
	}}, nil
}

// Fig15 reproduces Figure 15: average element outcome per vector register.
func Fig15(r *Runner) ([]*Table, error) {
	cfg := config.MustNamed(8, 1, config.ModeV)
	rows, err := r.perBenchmark(cfg, func(st *stats.Sim) []float64 {
		used, unused, notComp := st.ElemAverages()
		return []float64{used, unused, notComp}
	})
	if err != nil {
		return nil, err
	}
	return []*Table{{
		ID: "fig15", Title: "Vector register elements per register: computed&used / computed-unused / not computed",
		Columns: []string{"used", "unused", "notcomp"}, Rows: rows, Format: "%8.2f",
		Notes: "paper: on average 1.75 validated of 3.75 computed elements",
	}}, nil
}

// Table1 renders the microarchitectural parameters and the §4.1 storage
// audit for both configurations.
func Table1(*Runner) ([]*Table, error) {
	var rows []Row
	for _, cfg := range []config.Config{config.FourWay(), config.EightWay()} {
		st := core.StorageBytes(cfg.VectorRegs, cfg.VectorLen,
			cfg.VRMTSets, cfg.VRMTWays, cfg.TLSets, cfg.TLWays)
		rows = append(rows, Row{
			Name: fmt.Sprintf("%d-way", cfg.FetchWidth),
			Cells: []float64{
				float64(cfg.FetchWidth), float64(cfg.ROBSize), float64(cfg.LSQSize),
				float64(cfg.SimpleInt), float64(cfg.IntMulDiv), float64(cfg.SimpleFP), float64(cfg.FPMulDiv),
				float64(cfg.VectorRegs), float64(cfg.VectorLen),
				float64(st.VRFBytes), float64(st.VRMTBytes), float64(st.TLBytes), float64(st.Total()),
			},
		})
	}
	return []*Table{{
		ID:    "table1",
		Title: "Processor parameters (Table 1) and extra storage (§4.1)",
		Columns: []string{"width", "ROB", "LSQ", "int", "muldiv", "fp", "fpmd",
			"vregs", "vlen", "VRF_B", "VRMT_B", "TL_B", "total_B"},
		Rows: rows, Format: "%8.0f",
		Notes: "paper: VRF 4KB + VRMT 4608B + TL 49152B = 56KB extra storage",
	}}, nil
}
