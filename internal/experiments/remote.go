package experiments

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"specvec/internal/config"
	"specvec/internal/obs"
	"specvec/internal/stats"
	"specvec/internal/trace"
)

// Remote shard dispatch: with Options.Remote set, every trace-replay
// simulation — whole (configuration, benchmark) runs and checkpointed
// shards alike — is handed to a RemoteShards executor instead of the
// local worker pool. The unit of work is a ShardTask: one replay
// interval of a recorded trace, fully described by plain data. Replay
// is deterministic — (recording, configuration, interval) fixes every
// statistic — so a task is relocatable: any node produces the same
// bytes, a failed node's task re-runs elsewhere without changing the
// result, and the per-interval statistics merge with the same
// stats.Sim Merge path sharded local runs use (order-independent,
// pinned by stats' TestMergeOrderIndependent). Recording itself stays
// local: it needs functional emulation of the built program, and it
// happens once per benchmark.

// ShardTask is one replay interval of a recorded trace, the unit of
// remote execution. Warmup == 0 && ReplayFrom == 0 describes a whole
// run (RunInterval(0, n) produces exactly Run(n)'s figures). The Trace
// field is the content address of the recording; the runner leaves it
// empty and the executor fills it when it publishes the recording to
// its artifact store.
type ShardTask struct {
	Cfg        config.Config `json:"cfg"`
	Bench      string        `json:"bench"`
	Trace      string        `json:"trace,omitempty"` // content address, set by the executor
	ReplayFrom uint64        `json:"replayFrom"`      // record offset replay starts at
	BHR        uint64        `json:"bhr,omitempty"`   // branch history recorded at that boundary
	SeedBHR    bool          `json:"seedBHR,omitempty"`
	Warmup     uint64        `json:"warmup"`  // commits before measurement begins
	Measure    uint64        `json:"measure"` // measured commits
}

// RemoteShards places replay intervals on cluster nodes. tr is the live
// recording task addresses; implementations publish it by content
// address for workers to pull and keep it for local fallback, so a
// RunShard only fails on context cancellation or a genuine simulation
// error — never because no worker was available. Implementations must
// be safe for concurrent use and must preserve byte-identity: the
// statistics returned for a task are exactly what ExecuteShardTask
// produces locally (the determinism guarantee failover relies on).
type RemoteShards interface {
	RunShard(ctx context.Context, task ShardTask, tr *trace.Trace) (*stats.Sim, error)
}

// ExecuteShardTask replays one task interval from tr — the recording
// the task's Trace field addresses; the caller resolves it — and
// returns the interval's statistics. It is the worker-side entry point
// of remote dispatch and the executor's local fallback; determinism
// makes the result byte-identical wherever it runs.
func ExecuteShardTask(ctx context.Context, task ShardTask, tr *trace.Trace) (*stats.Sim, error) {
	if tr == nil {
		return nil, fmt.Errorf("experiments: shard task %s/%s: nil trace", task.Cfg.Name, task.Bench)
	}
	if err := task.Cfg.Validate(); err != nil {
		return nil, err
	}
	sp := shardSpec{
		replayFrom: task.ReplayFrom,
		bhr:        task.BHR,
		seedBHR:    task.SeedBHR,
		warmup:     task.Warmup,
		measure:    task.Measure,
	}
	return runShard(ctx, task.Cfg, tr, nil, sp, nil)
}

// remoteReplay dispatches one replay — a single whole-run task at
// Shards <= 1, the checkpoint-fast-forwarded plan otherwise — to the
// cluster executor and merges the interval statistics in plan order,
// exactly as runShards does locally. The caller holds one local pool
// slot; it is released across the fan-out (the work burns remote
// cores, and the executor bounds its own local fallback) and
// re-acquired before returning, mirroring shardedReplay. sc, when
// active, receives a "shard-fanout" span with one "shard" child per
// task; the executor sees each task's span through the dispatch
// context and grafts the remote half (worker, RTT, pull) under it.
func (r *Runner) remoteReplay(cfg config.Config, bench string, tr *trace.Trace, sc obs.SpanContext) (*stats.Sim, error) {
	plan := shardPlan(tr, uint64(r.opts.Scale), r.opts.Shards, uint64(r.opts.ShardWarmup))
	results := make([]*stats.Sim, len(plan))
	errs := make([]error, len(plan))
	var wg sync.WaitGroup
	var finished atomic.Int32
	fan := sc.Start("shard-fanout")
	<-r.sem
	for i, sp := range plan {
		wg.Add(1)
		go func(i int, sp shardSpec) {
			defer wg.Done()
			task := ShardTask{
				Cfg: cfg, Bench: bench,
				ReplayFrom: sp.replayFrom, BHR: sp.bhr, SeedBHR: sp.seedBHR,
				Warmup: sp.warmup, Measure: sp.measure,
			}
			tsc := fan.Start("shard")
			results[i], errs[i] = r.opts.Remote.RunShard(obs.ContextWith(r.ctx, tsc), task, tr)
			tsc.End()
			if errs[i] == nil && r.opts.Progress != nil {
				r.emit(ProgressEvent{Kind: ShardDone, Cfg: cfg.Name, Bench: bench,
					Shard: int(finished.Add(1)), Shards: len(plan)})
			}
		}(i, sp)
	}
	wg.Wait()
	r.sem <- struct{}{}
	fan.End()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: %s/%s: %w", cfg.Name, bench, err)
		}
	}
	if len(results) == 0 {
		return stats.New(), nil
	}
	merge := sc.Start("merge")
	merged := results[0]
	for _, st := range results[1:] {
		merged.Merge(st)
	}
	merge.End()
	return merged, nil
}
