package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"

	"specvec/internal/config"
	"specvec/internal/obs"
	"specvec/internal/pipeline"
	"specvec/internal/stats"
	"specvec/internal/trace"
)

// Gang replay: the configurations of a sweep that simulate the same
// benchmark replay one shared recording, and the recording is decoded
// once — a single trace.Decoded serves every member through a per-member
// cursor, so decompression, tuple-pool lookups and successor-PC
// derivation happen once per block instead of once per configuration.
// RunAll and Prefetch group their spec batches by benchmark and claim
// each group's uncached memo entries up front (dispatchGangs); one gang
// goroutine then records (or loads) the shared trace, decodes it
// lazily, and fans the member simulations out over the ordinary worker
// pool. Everything per-configuration — timing state, VRMT, register
// file, statistics, progress, cancellation — stays owned by the member's
// own Simulator; only the immutable decoded stream is shared, which is
// why gang results are byte-identical to sequential replay.

// gangMember is one claimed (configuration, benchmark) simulation of a
// gang: the spec plus the memo entry the gang must resolve.
type gangMember struct {
	cfg config.Config
	key runKey
	c   *call
}

// gang is one claimed batch of members sharing a benchmark recording.
type gang struct {
	bench   string
	members []gangMember
}

// gangSize resolves Options.Gang: 0 means unbounded gangs (the
// default), 1 disables gang replay, K >= 2 caps members per gang.
// NoSharedTraces disables ganging outright — without a shared recording
// there is nothing to walk once.
func (r *Runner) gangSize() int {
	switch {
	case r.opts.NoSharedTraces || r.opts.Gang == 1 || r.opts.Gang < 0:
		return 1
	case r.opts.Gang == 0:
		return int(^uint(0) >> 1)
	default:
		return r.opts.Gang
	}
}

// decodedEntry is one per-benchmark shared decoded recording, alive
// while at least one gang holds it. Refcounting scopes the decoded
// blocks — about five times the column form's footprint — to the gangs
// actually draining them: the entry is dropped when the last member
// releases it, and a later wave (a second sweep over the same bench)
// re-decodes lazily rather than pinning every benchmark's decoded form
// for the life of the runner.
type decodedEntry struct {
	tr   *trace.Trace
	d    *trace.Decoded
	refs int
}

// acquireDecoded returns the live decoded form of tr, creating it on
// first acquisition. An entry left over from a different trace of the
// same benchmark (a recording evicted after cancellation and redone) is
// replaced, never reused — the trace pointer is the identity.
func (r *Runner) acquireDecoded(bench string, tr *trace.Trace) *trace.Decoded {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.decoded[bench]
	if e == nil || e.tr != tr {
		if e != nil {
			r.foldDecodedLocked(e)
		}
		e = &decodedEntry{tr: tr, d: trace.NewDecoded(tr)}
		r.decoded[bench] = e
	}
	e.refs++
	return e.d
}

// releaseDecoded drops one reference; the entry (and its decoded
// blocks) is discarded when the last holder releases.
func (r *Runner) releaseDecoded(bench string, d *trace.Decoded) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.decoded[bench]
	if e == nil || e.d != d {
		return
	}
	if e.refs--; e.refs <= 0 {
		r.foldDecodedLocked(e)
		delete(r.decoded, bench)
	}
}

// dropDecoded evicts bench's decoded entry immediately, mirroring the
// memo eviction of a cancelled run: a gang member cancelled mid-walk
// must not leave the decoded blocks pinned for a sweep nobody finishes,
// and the next acquisition builds afresh. Members still draining their
// own cursors keep using the orphaned Decoded harmlessly — it is
// immutable — and their releases become no-ops.
func (r *Runner) dropDecoded(bench string, d *trace.Decoded) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.decoded[bench]
	if e == nil || e.d != d {
		return
	}
	r.foldDecodedLocked(e)
	delete(r.decoded, bench)
}

// foldDecodedLocked folds a retiring entry's counters into the runner
// aggregates. Callers hold r.mu and remove the entry from the map in the
// same critical section, so no entry is folded twice.
func (r *Runner) foldDecodedLocked(e *decodedEntry) {
	r.decodes.Add(e.d.BlockDecodes())
	r.decodeLoads.Add(e.d.BlockLoads())
}

// dispatchGangs groups a spec batch by benchmark and claims each
// group's not-yet-requested memo entries under the memo lock, then
// drains the claimed gangs on a bounded feeder pool. Specs left
// unclaimed — already cached, already in flight, in a single-spec group,
// or with ganging disabled — follow the ordinary Run path unchanged, and
// the caller's later Run calls join the claimed entries through the memo
// exactly like any singleflight follower.
func (r *Runner) dispatchGangs(specs []RunSpec) {
	k := r.gangSize()
	if k < 2 || len(specs) < 2 {
		return
	}
	var order []string
	byBench := map[string][]RunSpec{}
	for _, s := range specs {
		if _, ok := byBench[s.Bench]; !ok {
			order = append(order, s.Bench)
		}
		byBench[s.Bench] = append(byBench[s.Bench], s)
	}
	var gangs []gang
	for _, bench := range order {
		group := byBench[bench]
		if len(group) < 2 {
			// A lone configuration gains nothing from a shared walk; leave
			// it to Run, where a leader records while its own timing
			// simulation executes.
			continue
		}
		for len(group) > 0 {
			chunk := group[:min(k, len(group))]
			group = group[len(chunk):]
			if g := r.claimGang(bench, chunk); len(g.members) > 0 {
				gangs = append(gangs, g)
			}
		}
	}
	if len(gangs) == 0 {
		return
	}
	// Bounded fan-out, mirroring Prefetch's feeders: at most Workers
	// goroutines drain the gang list. Feeders run even under a cancelled
	// context — runGang is what resolves (and evicts) the claimed
	// entries, so skipping it would strand waiters.
	next := new(atomic.Int64)
	for n := min(len(gangs), r.opts.Workers); n > 0; n-- {
		go func() {
			for {
				i := int(next.Add(1)) - 1
				if i >= len(gangs) {
					return
				}
				r.runGang(gangs[i].bench, gangs[i].members)
			}
		}()
	}
}

// claimGang creates memo entries for the chunk's unrequested specs. The
// claimed entries are owned by the gang: nobody else will compute them,
// and runGang must resolve every one.
func (r *Runner) claimGang(bench string, chunk []RunSpec) gang {
	g := gang{bench: bench}
	r.mu.Lock()
	for _, s := range chunk {
		key := r.key(s.Cfg, bench)
		if _, ok := r.cache[key]; ok {
			continue
		}
		c := &call{done: make(chan struct{})}
		r.cache[key] = c
		g.members = append(g.members, gangMember{cfg: s.Cfg, key: key, c: c})
	}
	r.mu.Unlock()
	return g
}

// runGang resolves one gang: the shared trace is recorded (or loaded)
// once with a pure functional pass, decoded once, and every member's
// timing simulation replays it through its own cursor on its own
// worker-pool slot, with per-member progress and cancellation. Members
// whose context is cancelled evict their memo entries and the gang's
// decoded blocks, mirroring Run, so a cancelled sweep never poisons the
// next one.
func (r *Runner) runGang(bench string, members []gangMember) {
	gsc := obs.FromContext(r.ctx).StartRun("gang-replay", "", bench)
	defer gsc.End()
	tc, leader, err := r.sharedTrace(bench)
	if err == nil && leader {
		var load obs.SpanContext
		if r.opts.Traces != nil {
			load = gsc.Start("trace-load")
		}
		tr, ok := r.loadStoredTrace(bench)
		load.End()
		if ok {
			if prog, perr := r.buildProgram(bench); perr != nil {
				r.publishTrace(tc, bench, nil, nil, perr)
			} else {
				r.publishLoadedTrace(tc, prog, tr)
			}
		} else {
			// The functional recording pass occupies a worker slot like any
			// other simulation-shaped work.
			select {
			case r.sem <- struct{}{}:
				r.recordShared(bench, tc, gsc)
				<-r.sem
			case <-r.ctx.Done():
				err = r.ctx.Err()
				r.dropTrace(bench, tc)
				r.publishTrace(tc, bench, nil, nil, err)
			}
		}
	}
	if err == nil && tc.prog == nil {
		err = tc.err
	}
	if err != nil {
		r.failGang(bench, members, err)
		return
	}
	var d *trace.Decoded
	if tc.tr != nil {
		d = r.acquireDecoded(bench, tc.tr)
		defer r.releaseDecoded(bench, d)
	}
	if len(members) >= 2 {
		r.gangBatches.Add(1)
		r.gangRuns.Add(int64(len(members)))
	}
	// Members fan out on a bounded runner pool; each acquires its own
	// semaphore slot, so total concurrency stays governed by Workers.
	next := new(atomic.Int64)
	var wg sync.WaitGroup
	for n := min(len(members), r.opts.Workers); n > 0; n-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(members) {
					return
				}
				r.runGangMember(bench, members[i], tc, d, gsc)
			}
		}()
	}
	wg.Wait()
}

// failGang resolves every member with err. Cancellation evicts the
// claimed entries — exactly as Run evicts its own on a cancelled
// context — so the next requester recomputes; other errors stay
// memoised like any failed run.
func (r *Runner) failGang(bench string, members []gangMember, err error) {
	evict := cancelled(err)
	for _, m := range members {
		m.c.err = fmt.Errorf("experiments: %s/%s: %w", m.cfg.Name, bench, err)
		if evict {
			r.evictCall(m.key, m.c)
		}
		close(m.c.done)
		r.emit(ProgressEvent{Kind: RunDone, Cfg: m.cfg.Name, Bench: bench, Err: m.c.err})
	}
}

// evictCall removes a memo entry if it is still c.
func (r *Runner) evictCall(key runKey, c *call) {
	r.mu.Lock()
	if r.cache[key] == c {
		delete(r.cache, key)
	}
	r.mu.Unlock()
}

// runGangMember executes one member simulation and resolves its claimed
// memo entry, with the same eviction-on-cancellation contract as Run.
// The member's "run" span nests under the gang's span, so a timeline
// shows which walk served it.
func (r *Runner) runGangMember(bench string, m gangMember, tc *traceCall, d *trace.Decoded, gsc obs.SpanContext) {
	if err := r.ctx.Err(); err != nil {
		m.c.err = fmt.Errorf("experiments: %s/%s: %w", m.cfg.Name, bench, err)
	} else {
		select {
		case r.sem <- struct{}{}:
			r.sims.Add(1)
			r.emit(ProgressEvent{Kind: RunStarted, Cfg: m.cfg.Name, Bench: bench, Target: uint64(r.opts.Scale)})
			msc := gsc.StartRun("run", m.cfg.Name, bench)
			m.c.st, m.c.err = r.gangSim(m.cfg, bench, tc, d, msc)
			msc.End()
			<-r.sem
		case <-r.ctx.Done():
			m.c.err = fmt.Errorf("experiments: %s/%s: %w", m.cfg.Name, bench, r.ctx.Err())
		}
	}
	if m.c.err != nil && cancelled(m.c.err) {
		r.evictCall(m.key, m.c)
		if d != nil {
			r.dropDecoded(bench, d)
		}
	}
	close(m.c.done)
	r.emit(ProgressEvent{Kind: RunDone, Cfg: m.cfg.Name, Bench: bench, Err: m.c.err})
}

// gangSim is one member's simulation body, mirroring the post-publish
// half of simulate: replay the shared decoded trace when it can feed
// this configuration, fall back to live emulation of the shared program
// when it cannot, and shard the replay when the runner is configured
// for it (the shards of every member then share the same decoded
// blocks).
func (r *Runner) gangSim(cfg config.Config, bench string, tc *traceCall, d *trace.Decoded, sc obs.SpanContext) (*stats.Sim, error) {
	if !r.usable(tc.tr, cfg) {
		return r.timedRun(sc, "emulate", cfg, bench, func() (*pipeline.Simulator, error) {
			return pipeline.New(cfg, tc.prog)
		})
	}
	r.replayed.Add(1)
	if r.opts.Remote != nil {
		// Remote members do not consume the shared decoded walk — the
		// worker decodes its own pulled copy — but d stays harmless: it
		// is lazy, so an all-remote gang never decodes a block locally.
		return r.remoteReplay(cfg, bench, tc.tr, sc)
	}
	if r.opts.Shards > 1 {
		return r.shardedReplay(cfg, bench, tc.tr, d, sc)
	}
	return r.timedRun(sc, "replay", cfg, bench, func() (*pipeline.Simulator, error) {
		return pipeline.NewFromSource(cfg, d.Cursor())
	})
}
