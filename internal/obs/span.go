package obs

import (
	"context"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Spans: one Trace per job, holding a preallocated flat array of spans.
// A span identifier is its index in that array — allocation-free to
// hand out and to end, no maps, no fmt — and parents are always created
// before children, which BuildTree exploits. All methods are safe for
// concurrent use and nil-receiver safe, so instrumented code never
// guards "is tracing on".

// SpanID indexes a span within its Trace. The root span is 0.
type SpanID int32

// NoSpan marks "no span": the parent of the root, a dropped span, or
// any operation on a nil Trace.
const NoSpan SpanID = -1

// RootSpan is the identifier of a trace's root span.
const RootSpan SpanID = 0

// Span is one timed phase. Start/End are offsets from the trace start
// on the trace's monotonic clock; End < 0 means still open.
type Span struct {
	Parent SpanID
	Name   string // phase name, a static string
	Cfg    string // configuration label, "" when not a per-run span
	Bench  string // benchmark label, "" when not a per-run span
	Detail string // free-form detail (worker id, artifact address)
	Remote bool   // executed on another node; duration was grafted
	Start  time.Duration
	End    time.Duration
}

// maxSpans bounds a trace's span array: a runaway sweep drops spans
// (counted in Dropped) instead of growing a terabyte timeline.
const maxSpans = 4096

// defaultSpanCap is the preallocation; typical jobs stay under it, so
// recording never allocates after NewTrace.
const defaultSpanCap = 256

// Trace is one job's span tree plus the clock its offsets are measured
// on.
type Trace struct {
	id    string
	clock Clock
	base  time.Time

	mu      sync.Mutex
	spans   []Span
	dropped int
}

// NewTrace starts a trace: the root span (named root) opens at offset
// zero. A nil clock means RealClock.
func NewTrace(id string, clock Clock, root string) *Trace {
	if clock == nil {
		clock = RealClock()
	}
	t := &Trace{id: id, clock: clock, base: clock.Now()}
	t.spans = make([]Span, 1, defaultSpanCap)
	t.spans[0] = Span{Parent: NoSpan, Name: root, End: -1}
	return t
}

// ID returns the trace identifier.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Start opens a child span under parent.
func (t *Trace) Start(parent SpanID, name string) SpanID {
	return t.StartRun(parent, name, "", "")
}

// StartRun opens a child span carrying (configuration, benchmark)
// labels. The labels are stored by reference — no formatting, no
// concatenation — so recording stays allocation-free under the
// preallocated span bound.
//
//sdv:hotpath
func (t *Trace) StartRun(parent SpanID, name, cfg, bench string) SpanID {
	if t == nil {
		return NoSpan
	}
	off := t.clock.Now().Sub(t.base)
	t.mu.Lock()
	if len(t.spans) >= maxSpans {
		t.dropped++
		t.mu.Unlock()
		return NoSpan
	}
	id := SpanID(len(t.spans))
	t.spans = append(t.spans, Span{Parent: parent, Name: name, Cfg: cfg, Bench: bench, Start: off, End: -1})
	t.mu.Unlock()
	return id
}

// End closes a span. Ending an already-ended span (the cache-hit /
// cache-miss convergence in the scheduler) is a no-op, as is NoSpan.
//
//sdv:hotpath
func (t *Trace) End(id SpanID) {
	if t == nil || id < 0 {
		return
	}
	off := t.clock.Now().Sub(t.base)
	t.mu.Lock()
	if int(id) < len(t.spans) && t.spans[id].End < 0 {
		t.spans[id].End = off
	}
	t.mu.Unlock()
}

// Graft records a completed span of duration d ending now — the shape
// of work that ran elsewhere (a remote shard execution, reported back
// as a duration because the worker's clock is not ours). remote marks
// it in the timeline.
func (t *Trace) Graft(parent SpanID, name, detail string, d time.Duration, remote bool) SpanID {
	if t == nil {
		return NoSpan
	}
	end := t.clock.Now().Sub(t.base)
	start := end - d
	if start < 0 {
		start = 0
	}
	t.mu.Lock()
	if len(t.spans) >= maxSpans {
		t.dropped++
		t.mu.Unlock()
		return NoSpan
	}
	id := SpanID(len(t.spans))
	t.spans = append(t.spans, Span{Parent: parent, Name: name, Detail: detail, Remote: remote, Start: start, End: end})
	t.mu.Unlock()
	return id
}

// SetDetail attaches free-form detail to an open or closed span.
func (t *Trace) SetDetail(id SpanID, detail string) {
	if t == nil || id < 0 {
		return
	}
	t.mu.Lock()
	if int(id) < len(t.spans) {
		t.spans[id].Detail = detail
	}
	t.mu.Unlock()
}

// Duration returns a span's elapsed time: End-Start when closed, time
// since Start when still open.
func (t *Trace) Duration(id SpanID) time.Duration {
	if t == nil || id < 0 {
		return 0
	}
	now := t.clock.Now().Sub(t.base)
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) >= len(t.spans) {
		return 0
	}
	sp := t.spans[id]
	if sp.End < 0 {
		return now - sp.Start
	}
	return sp.End - sp.Start
}

// Finish closes the root span.
func (t *Trace) Finish() { t.End(RootSpan) }

// Snapshot copies the spans (index order; parents before children).
func (t *Trace) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Dropped returns how many spans were discarded at the span bound.
func (t *Trace) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// SpanContext names one span of one trace — the unit instrumented code
// passes around (and through context.Context). The zero value is
// inactive and every method on it is a no-op, so tracing is optional at
// every call site.
type SpanContext struct {
	T    *Trace
	Span SpanID
}

// Active reports whether the context names a live trace.
func (c SpanContext) Active() bool { return c.T != nil && c.Span >= 0 }

// Start opens a child span and returns its context.
func (c SpanContext) Start(name string) SpanContext {
	if !c.Active() {
		return SpanContext{}
	}
	return SpanContext{T: c.T, Span: c.T.Start(c.Span, name)}
}

// StartRun opens a labeled child span and returns its context.
func (c SpanContext) StartRun(name, cfg, bench string) SpanContext {
	if !c.Active() {
		return SpanContext{}
	}
	return SpanContext{T: c.T, Span: c.T.StartRun(c.Span, name, cfg, bench)}
}

// End closes the context's span.
func (c SpanContext) End() {
	if c.Active() {
		c.T.End(c.Span)
	}
}

// Graft records a completed child span of duration d (see Trace.Graft).
func (c SpanContext) Graft(name, detail string, d time.Duration, remote bool) SpanContext {
	if !c.Active() {
		return SpanContext{}
	}
	return SpanContext{T: c.T, Span: c.T.Graft(c.Span, name, detail, d, remote)}
}

type ctxKey struct{}

// ContextWith returns ctx carrying sc.
func ContextWith(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext returns the span context carried by ctx, or an inactive
// one.
func FromContext(ctx context.Context) SpanContext {
	if ctx == nil {
		return SpanContext{}
	}
	sc, _ := ctx.Value(ctxKey{}).(SpanContext)
	return sc
}

// TraceHeader carries a span context across the cluster boundary on
// POST /v1/shards: "traceID/spanIndex". The worker cannot append to the
// coordinator's trace; it echoes its execution cost back through
// SpanDurationHeader and the coordinator grafts the remote spans.
const TraceHeader = "X-Sdv-Trace"

// SpanDurationHeader is the worker's response header reporting how the
// shard's time was spent: "exec_us=N;pull_us=M" (microseconds; pull_us
// is the artifact pull, zero on a trace-cache hit).
const SpanDurationHeader = "X-Sdv-Span"

// Header renders the wire form of the span context, or "" when
// inactive.
func (c SpanContext) Header() string {
	if !c.Active() {
		return ""
	}
	return c.T.ID() + "/" + strconv.Itoa(int(c.Span))
}

// ParseTraceHeader decodes a TraceHeader value.
func ParseTraceHeader(v string) (traceID string, span SpanID, ok bool) {
	i := strings.LastIndexByte(v, '/')
	if i <= 0 {
		return "", NoSpan, false
	}
	n, err := strconv.Atoi(v[i+1:])
	if err != nil || n < 0 {
		return "", NoSpan, false
	}
	return v[:i], SpanID(n), true
}

// EncodeDurations renders a SpanDurationHeader value.
func EncodeDurations(exec, pull time.Duration) string {
	return "exec_us=" + strconv.FormatInt(exec.Microseconds(), 10) +
		";pull_us=" + strconv.FormatInt(pull.Microseconds(), 10)
}

// ParseDurations decodes a SpanDurationHeader value.
func ParseDurations(v string) (exec, pull time.Duration, ok bool) {
	for _, part := range strings.Split(v, ";") {
		k, val, found := strings.Cut(part, "=")
		if !found {
			continue
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil || n < 0 {
			return 0, 0, false
		}
		switch k {
		case "exec_us":
			exec = time.Duration(n) * time.Microsecond
			ok = true
		case "pull_us":
			pull = time.Duration(n) * time.Microsecond
		}
	}
	return exec, pull, ok
}
