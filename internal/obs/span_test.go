package obs

import (
	"context"
	"testing"
	"time"
)

func TestTraceSpanLifecycle(t *testing.T) {
	clk := NewManualClock(time.Unix(100, 0))
	tr := NewTrace("t1", clk, "job")
	if tr.ID() != "t1" {
		t.Fatalf("ID = %q, want t1", tr.ID())
	}

	clk.Advance(10 * time.Millisecond)
	queue := tr.Start(RootSpan, "queue-wait")
	clk.Advance(40 * time.Millisecond)
	tr.End(queue)

	run := tr.StartRun(RootSpan, "run", "fig1", "dotp")
	clk.Advance(100 * time.Millisecond)
	tr.End(run)
	tr.End(run) // idempotent: second End must not move the end time
	clk.Advance(time.Millisecond)
	tr.End(run)
	tr.Finish()

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	root, q, r := spans[0], spans[1], spans[2]
	if root.Parent != NoSpan || root.Start != 0 || root.End != 151*time.Millisecond {
		t.Fatalf("root = %+v", root)
	}
	if q.Parent != RootSpan || q.Start != 10*time.Millisecond || q.End != 50*time.Millisecond {
		t.Fatalf("queue span = %+v", q)
	}
	if r.Cfg != "fig1" || r.Bench != "dotp" || r.End-r.Start != 100*time.Millisecond {
		t.Fatalf("run span = %+v", r)
	}
	if d := tr.Duration(queue); d != 40*time.Millisecond {
		t.Fatalf("Duration(queue) = %v, want 40ms", d)
	}
}

func TestTraceOpenSpanDuration(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	tr := NewTrace("t", clk, "job")
	sp := tr.Start(RootSpan, "work")
	clk.Advance(7 * time.Millisecond)
	if d := tr.Duration(sp); d != 7*time.Millisecond {
		t.Fatalf("open span Duration = %v, want 7ms", d)
	}
}

func TestTraceGraft(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	tr := NewTrace("t", clk, "job")
	clk.Advance(20 * time.Millisecond)
	id := tr.Graft(RootSpan, "shard-exec", "w1", 15*time.Millisecond, true)
	sp := tr.Snapshot()[id]
	if sp.Start != 5*time.Millisecond || sp.End != 20*time.Millisecond {
		t.Fatalf("graft span = %+v", sp)
	}
	if !sp.Remote || sp.Detail != "w1" {
		t.Fatalf("graft span = %+v", sp)
	}
	// A grafted duration longer than the trace's age clamps to offset 0.
	long := tr.Graft(RootSpan, "x", "", time.Hour, false)
	if sp := tr.Snapshot()[long]; sp.Start != 0 {
		t.Fatalf("clamped graft start = %v, want 0", sp.Start)
	}
}

func TestTraceDropsAtBound(t *testing.T) {
	tr := NewTrace("t", NewManualClock(time.Unix(0, 0)), "job")
	for i := 0; i < maxSpans+10; i++ {
		tr.Start(RootSpan, "s")
	}
	if n := len(tr.Snapshot()); n != maxSpans {
		t.Fatalf("kept %d spans, want %d", n, maxSpans)
	}
	// The root occupies one slot, so 11 starts past the bound dropped.
	if tr.Dropped() != 11 {
		t.Fatalf("Dropped = %d, want 11", tr.Dropped())
	}
	if id := tr.Start(RootSpan, "s"); id != NoSpan {
		t.Fatalf("start past bound returned %d, want NoSpan", id)
	}
}

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	if id := tr.StartRun(RootSpan, "x", "", ""); id != NoSpan {
		t.Fatalf("nil StartRun = %d", id)
	}
	tr.End(RootSpan)
	tr.SetDetail(0, "d")
	tr.Finish()
	if tr.ID() != "" || tr.Snapshot() != nil || tr.Dropped() != 0 || tr.Duration(0) != 0 {
		t.Fatal("nil trace accessors not zero")
	}
	if id := tr.Graft(RootSpan, "x", "", 0, false); id != NoSpan {
		t.Fatalf("nil Graft = %d", id)
	}
}

func TestSpanContextAndContext(t *testing.T) {
	var zero SpanContext
	if zero.Active() {
		t.Fatal("zero SpanContext active")
	}
	if c := zero.Start("x"); c.Active() {
		t.Fatal("child of inactive context active")
	}
	zero.End() // must not panic

	clk := NewManualClock(time.Unix(0, 0))
	tr := NewTrace("abc", clk, "job")
	sc := SpanContext{T: tr, Span: RootSpan}
	ctx := ContextWith(context.Background(), sc)
	got := FromContext(ctx)
	if got.T != tr || got.Span != RootSpan {
		t.Fatalf("FromContext = %+v", got)
	}
	if FromContext(context.Background()).Active() {
		t.Fatal("bare context yielded an active span context")
	}
	if FromContext(nil).Active() { //nolint:staticcheck // nil ctx is the documented degenerate case
		t.Fatal("nil context yielded an active span context")
	}

	child := got.StartRun("run", "cfg", "b")
	clk.Advance(time.Millisecond)
	child.End()
	sp := tr.Snapshot()[child.Span]
	if sp.Cfg != "cfg" || sp.End-sp.Start != time.Millisecond {
		t.Fatalf("child span = %+v", sp)
	}
}

func TestTraceHeaderRoundTrip(t *testing.T) {
	tr := NewTrace("job-000001", NewManualClock(time.Unix(0, 0)), "job")
	sc := SpanContext{T: tr, Span: 3}
	h := sc.Header()
	if h != "job-000001/3" {
		t.Fatalf("Header = %q", h)
	}
	id, span, ok := ParseTraceHeader(h)
	if !ok || id != "job-000001" || span != 3 {
		t.Fatalf("ParseTraceHeader = %q %d %v", id, span, ok)
	}
	for _, bad := range []string{"", "noslash", "/3", "x/-1", "x/abc"} {
		if _, _, ok := ParseTraceHeader(bad); ok {
			t.Errorf("ParseTraceHeader(%q) ok", bad)
		}
	}
	if (SpanContext{}).Header() != "" {
		t.Fatal("inactive Header not empty")
	}
}

func TestDurationHeaderRoundTrip(t *testing.T) {
	h := EncodeDurations(1500*time.Microsecond, 250*time.Microsecond)
	if h != "exec_us=1500;pull_us=250" {
		t.Fatalf("EncodeDurations = %q", h)
	}
	exec, pull, ok := ParseDurations(h)
	if !ok || exec != 1500*time.Microsecond || pull != 250*time.Microsecond {
		t.Fatalf("ParseDurations = %v %v %v", exec, pull, ok)
	}
	if _, _, ok := ParseDurations("pull_us=3"); ok {
		t.Fatal("missing exec_us accepted")
	}
	if _, _, ok := ParseDurations("exec_us=-1;pull_us=0"); ok {
		t.Fatal("negative duration accepted")
	}
}

func TestBuildTreeAndTimeline(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	tr := NewTrace("t", clk, "job")
	a := tr.Start(RootSpan, "a")
	clk.Advance(5 * time.Millisecond)
	b := tr.Start(a, "b")
	clk.Advance(5 * time.Millisecond)
	tr.End(b)
	tr.End(a)
	tr.Start(RootSpan, "open") // failure path: never ended
	clk.Advance(5 * time.Millisecond)
	tr.Finish()

	root := BuildTree(tr.Snapshot())
	if root.Name != "job" || root.Spans() != 4 {
		t.Fatalf("root = %+v spans=%d", root, root.Spans())
	}
	if len(root.Children) != 2 || root.Children[0].Name != "a" {
		t.Fatalf("root children = %+v", root.Children)
	}
	if got := root.Children[0].Children[0]; got.Name != "b" || got.StartUs != 5000 || got.DurationUs != 5000 {
		t.Fatalf("nested child = %+v", got)
	}
	// The open span is clamped to the max end seen in the trace.
	open := root.Children[1]
	if open.StartUs != 10000 || open.DurationUs != 5000 {
		t.Fatalf("open span clamp = %+v", open)
	}
	if root.DurationUs != 15000 {
		t.Fatalf("root duration = %d", root.DurationUs)
	}

	tl := NewTimeline("j000001", "experiment", "done", tr, clk.Now())
	if tl.ID != "j000001" || tl.Trace != "t" || tl.Spans != 4 || tl.DurationUs != 15000 {
		t.Fatalf("timeline = %+v", tl)
	}
	if BuildTree(nil) != nil {
		t.Fatal("BuildTree(nil) != nil")
	}
	if (*TreeNode)(nil).Spans() != 0 {
		t.Fatal("nil TreeNode Spans != 0")
	}
}

func TestTimelineStoreRing(t *testing.T) {
	s := NewTimelineStore(2)
	mk := func(id string) Timeline { return Timeline{ID: id} }
	s.Add(mk("a"))
	s.Add(mk("b"))
	s.Add(mk("c")) // evicts a
	if _, ok := s.Get("a"); ok {
		t.Fatal("oldest entry not evicted")
	}
	for _, id := range []string{"b", "c"} {
		if _, ok := s.Get(id); !ok {
			t.Fatalf("entry %q missing", id)
		}
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	// Replacement by id does not evict.
	s.Add(Timeline{ID: "b", Kind: "sim"})
	if tl, _ := s.Get("b"); tl.Kind != "sim" {
		t.Fatalf("replaced entry = %+v", tl)
	}
	if _, ok := s.Get("c"); !ok {
		t.Fatal("replace evicted a different entry")
	}
}

// TestSpanRecordingAllocs backs the //sdv:hotpath annotations on
// Trace.StartRun and Trace.End: under the preallocated span capacity,
// recording a span allocates nothing.
func TestSpanRecordingAllocs(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	tr := NewTrace("t", clk, "job")
	allocs := testing.AllocsPerRun(100, func() {
		id := tr.StartRun(RootSpan, "run", "cfg", "bench")
		tr.End(id)
	})
	if allocs != 0 {
		t.Fatalf("span recording allocates %v per op, want 0", allocs)
	}
}
