package obs

import (
	"sync"
	"time"
)

// Timeline surfacing: completed job traces are snapshotted into a
// fixed-capacity ring buffer keyed by job id and served as a JSON span
// tree (GET /v1/jobs/{id}/timeline, rendered by `sdvtrace timeline`).

// TreeNode is the wire form of one span and its children. Offsets and
// durations are microseconds from the trace (root) start.
type TreeNode struct {
	Name       string      `json:"name"`
	Cfg        string      `json:"cfg,omitempty"`
	Bench      string      `json:"bench,omitempty"`
	Detail     string      `json:"detail,omitempty"`
	Remote     bool        `json:"remote,omitempty"`
	StartUs    int64       `json:"startUs"`
	DurationUs int64       `json:"durationUs"`
	Children   []*TreeNode `json:"children,omitempty"`
}

// Spans counts the tree's nodes.
func (n *TreeNode) Spans() int {
	if n == nil {
		return 0
	}
	total := 1
	for _, c := range n.Children {
		total += c.Spans()
	}
	return total
}

// BuildTree assembles the span tree from a Snapshot. Spans still open
// in the snapshot (a failure path that never reached End) are clamped
// to the latest end observed anywhere in the trace, so durations are
// always non-negative and bounded by the root.
func BuildTree(spans []Span) *TreeNode {
	if len(spans) == 0 {
		return nil
	}
	var maxEnd time.Duration
	for i := range spans {
		if spans[i].End > maxEnd {
			maxEnd = spans[i].End
		}
		if spans[i].Start > maxEnd {
			maxEnd = spans[i].Start
		}
	}
	nodes := make([]*TreeNode, len(spans))
	for i := range spans {
		sp := &spans[i]
		end := sp.End
		if end < 0 {
			end = maxEnd
		}
		nodes[i] = &TreeNode{
			Name:       sp.Name,
			Cfg:        sp.Cfg,
			Bench:      sp.Bench,
			Detail:     sp.Detail,
			Remote:     sp.Remote,
			StartUs:    sp.Start.Microseconds(),
			DurationUs: (end - sp.Start).Microseconds(),
		}
		// Parents precede children in the span array (Start requires an
		// existing parent), so the parent node is already built.
		if p := sp.Parent; p >= 0 && int(p) < i {
			nodes[p].Children = append(nodes[p].Children, nodes[i])
		}
	}
	return nodes[0]
}

// Timeline is one completed job's span tree plus identity and summary.
type Timeline struct {
	ID           string    `json:"id"`    // job id
	Trace        string    `json:"trace"` // trace id
	Kind         string    `json:"kind,omitempty"`
	State        string    `json:"state,omitempty"`
	Spans        int       `json:"spans"`
	DroppedSpans int       `json:"droppedSpans,omitempty"`
	DurationUs   int64     `json:"durationUs"`
	Completed    time.Time `json:"completed,omitzero"`
	Root         *TreeNode `json:"root"`
}

// NewTimeline snapshots a finished trace into its wire form.
func NewTimeline(id, kind, state string, tr *Trace, completed time.Time) Timeline {
	root := BuildTree(tr.Snapshot())
	tl := Timeline{
		ID:           id,
		Trace:        tr.ID(),
		Kind:         kind,
		State:        state,
		Spans:        root.Spans(),
		DroppedSpans: tr.Dropped(),
		Completed:    completed,
		Root:         root,
	}
	if root != nil {
		tl.DurationUs = root.DurationUs
	}
	return tl
}

// TimelineStore is a fixed-capacity ring of completed timelines keyed
// by job id. When full, adding overwrites the oldest entry.
type TimelineStore struct {
	mu   sync.Mutex
	cap  int
	ring []Timeline
	next int
	byID map[string]int // job id -> ring slot
}

// NewTimelineStore returns a store retaining up to capacity timelines
// (<= 0 means 512).
func NewTimelineStore(capacity int) *TimelineStore {
	if capacity <= 0 {
		capacity = 512
	}
	return &TimelineStore{cap: capacity, byID: map[string]int{}}
}

// Add inserts (or replaces) a timeline, evicting the oldest when full.
func (s *TimelineStore) Add(tl Timeline) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if slot, ok := s.byID[tl.ID]; ok {
		s.ring[slot] = tl
		return
	}
	if len(s.ring) < s.cap {
		s.byID[tl.ID] = len(s.ring)
		s.ring = append(s.ring, tl)
		return
	}
	old := s.ring[s.next]
	delete(s.byID, old.ID)
	s.ring[s.next] = tl
	s.byID[tl.ID] = s.next
	s.next = (s.next + 1) % s.cap
}

// Get returns the timeline for a job id.
func (s *TimelineStore) Get(id string) (Timeline, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	slot, ok := s.byID[id]
	if !ok {
		return Timeline{}, false
	}
	return s.ring[slot], true
}

// Len returns how many timelines are retained.
func (s *TimelineStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ring)
}
