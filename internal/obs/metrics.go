package obs

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// The metrics registry: typed counters, gauges and fixed-bucket
// histograms (optionally labeled), rendered in Prometheus text form in
// registration order. Rendering is deterministic — registration order
// for metrics, sorted label tuples for histogram-vec children — so
// /metrics output is stable across scrapes and across processes.

// Metric is one registered series (or family of series).
type Metric interface {
	// MetricName is the family name, unique within a registry.
	MetricName() string
	render(b *bytes.Buffer)
}

// Registry holds metrics in registration order.
type Registry struct {
	mu      sync.Mutex
	metrics []Metric
	names   map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]bool{}}
}

// Register adds metrics; a duplicate family name is a programming error
// and panics.
func (r *Registry) Register(ms ...Metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range ms {
		name := m.MetricName()
		if r.names[name] {
			panic("obs: duplicate metric " + name)
		}
		r.names[name] = true
		r.metrics = append(r.metrics, m)
	}
}

// WriteText renders every registered metric in Prometheus text form.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	ms := append([]Metric(nil), r.metrics...)
	r.mu.Unlock()
	var b bytes.Buffer
	for _, m := range ms {
		m.render(&b)
	}
	_, err := w.Write(b.Bytes())
	return err
}

// Counter is a monotonically increasing int64 series.
type Counter struct {
	name string
	v    atomic.Int64
}

// NewCounter returns a counter named name.
func NewCounter(name string) *Counter { return &Counter{name: name} }

// MetricName implements Metric.
func (c *Counter) MetricName() string { return c.name }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) render(b *bytes.Buffer) {
	fmt.Fprintf(b, "%s %d\n", c.name, c.v.Load())
}

// Gauge is a settable int64 series.
type Gauge struct {
	name string
	v    atomic.Int64
}

// NewGauge returns a gauge named name.
func NewGauge(name string) *Gauge { return &Gauge{name: name} }

// MetricName implements Metric.
func (g *Gauge) MetricName() string { return g.name }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by n (negative to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current reading.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) render(b *bytes.Buffer) {
	fmt.Fprintf(b, "%s %d\n", g.name, g.v.Load())
}

// Func is a series whose value is computed at scrape time (queue
// depths, cache sizes, uptime — state that already lives elsewhere).
type Func struct {
	name string
	fn   func() int64
}

// NewFunc returns a scrape-time-computed series.
func NewFunc(name string, fn func() int64) *Func { return &Func{name: name, fn: fn} }

// MetricName implements Metric.
func (f *Func) MetricName() string { return f.name }

func (f *Func) render(b *bytes.Buffer) {
	fmt.Fprintf(b, "%s %d\n", f.name, f.fn())
}

// DefaultLatencyBuckets cover sub-millisecond cache lookups through
// multi-minute batch sweeps.
var DefaultLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram is a fixed-bucket histogram series. Observations are
// lock-free (per-bucket atomics plus a CAS float sum).
type Histogram struct {
	name    string
	labels  string // rendered label pairs, "" when unlabeled
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is +Inf
	sumBits atomic.Uint64
}

// NewHistogram returns a histogram with the given upper bucket bounds
// (must be sorted ascending; a final +Inf bucket is implicit).
func NewHistogram(name string, bounds []float64) *Histogram {
	return newHistogram(name, "", bounds)
}

func newHistogram(name, labels string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be sorted ascending: " + name)
		}
	}
	return &Histogram{
		name:   name,
		labels: labels,
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// MetricName implements Metric.
func (h *Histogram) MetricName() string { return h.name }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) render(b *bytes.Buffer) {
	fmt.Fprintf(b, "# TYPE %s histogram\n", h.name)
	h.renderSeries(b)
}

// renderSeries emits the bucket/sum/count lines without the TYPE header
// (HistogramVec emits one header for all children).
func (h *Histogram) renderSeries(b *bytes.Buffer) {
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = strconv.FormatFloat(h.bounds[i], 'g', -1, 64)
		}
		if h.labels == "" {
			fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", h.name, le, cum)
		} else {
			fmt.Fprintf(b, "%s_bucket{%s,le=%q} %d\n", h.name, h.labels, le, cum)
		}
	}
	suffix := ""
	if h.labels != "" {
		suffix = "{" + h.labels + "}"
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", h.name, suffix, strconv.FormatFloat(h.Sum(), 'g', -1, 64))
	fmt.Fprintf(b, "%s_count%s %d\n", h.name, suffix, cum)
}

// HistogramVec is a family of histograms keyed by a fixed tuple of
// label values. Children are created on first use and rendered sorted
// by label tuple.
type HistogramVec struct {
	name       string
	labelNames []string
	bounds     []float64

	mu       sync.Mutex
	children map[string]*Histogram
}

// NewHistogramVec returns a labeled histogram family.
func NewHistogramVec(name string, labelNames []string, bounds []float64) *HistogramVec {
	if len(labelNames) == 0 {
		panic("obs: HistogramVec needs label names: " + name)
	}
	return &HistogramVec{
		name:       name,
		labelNames: labelNames,
		bounds:     bounds,
		children:   map[string]*Histogram{},
	}
}

// MetricName implements Metric.
func (v *HistogramVec) MetricName() string { return v.name }

// With returns the child histogram for the given label values,
// creating it on first use. Arity must match the label names.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.labelNames) {
		panic("obs: label arity mismatch on " + v.name)
	}
	var sb strings.Builder
	for i, lv := range values {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(v.labelNames[i])
		sb.WriteByte('=')
		sb.WriteString(strconv.Quote(lv))
	}
	pairs := sb.String()
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.children[pairs]
	if !ok {
		h = newHistogram(v.name, pairs, v.bounds)
		v.children[pairs] = h
	}
	return h
}

func (v *HistogramVec) render(b *bytes.Buffer) {
	fmt.Fprintf(b, "# TYPE %s histogram\n", v.name)
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	hs := make([]*Histogram, len(keys))
	for i, k := range keys {
		hs[i] = v.children[k]
	}
	v.mu.Unlock()
	for _, h := range hs {
		h.renderSeries(b)
	}
}
