package obs

import (
	"strings"
	"testing"
	"time"
)

func TestRegistryRenderOrderAndValues(t *testing.T) {
	reg := NewRegistry()
	c := NewCounter("jobs_total")
	g := NewGauge("running")
	f := NewFunc("queued", func() int64 { return 7 })
	reg.Register(c, g, f)
	c.Add(3)
	c.Inc()
	g.Set(2)
	g.Add(-1)

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := "jobs_total 4\nrunning 1\nqueued 7\n"
	if b.String() != want {
		t.Fatalf("render = %q, want %q", b.String(), want)
	}
	if c.Value() != 4 || g.Value() != 1 {
		t.Fatalf("Value() = %d, %d; want 4, 1", c.Value(), g.Value())
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	reg := NewRegistry()
	reg.Register(NewCounter("x"))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	reg.Register(NewGauge("x"))
}

func TestHistogramBucketsAndRender(t *testing.T) {
	h := NewHistogram("lat_seconds", []float64{0.25, 1, 4})
	for _, v := range []float64{0.125, 0.25, 0.5, 2, 8} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if got := h.Sum(); got != 10.875 {
		t.Fatalf("Sum = %v, want 10.875", got)
	}
	reg := NewRegistry()
	reg.Register(h)
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.25"} 2`, // 0.125 and the boundary value 0.25
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="4"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_sum 10.875",
		"lat_seconds_count 5",
	}, "\n") + "\n"
	if b.String() != want {
		t.Fatalf("render =\n%s\nwant\n%s", b.String(), want)
	}
}

func TestHistogramVecChildrenSortedAndLabeled(t *testing.T) {
	v := NewHistogramVec("job_seconds", []string{"kind", "phase"}, []float64{1})
	v.With("sim", "total").Observe(0.5)
	v.With("experiment", "total").Observe(2)
	if v.With("sim", "total") != v.With("sim", "total") {
		t.Fatal("With is not memoised")
	}
	reg := NewRegistry()
	reg.Register(v)
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	expIdx := strings.Index(out, `kind="experiment"`)
	simIdx := strings.Index(out, `kind="sim"`)
	if expIdx < 0 || simIdx < 0 || expIdx > simIdx {
		t.Fatalf("children not rendered sorted by label tuple:\n%s", out)
	}
	for _, want := range []string{
		`job_seconds_bucket{kind="sim",phase="total",le="1"} 1`,
		`job_seconds_bucket{kind="experiment",phase="total",le="+Inf"} 1`,
		`job_seconds_sum{kind="experiment",phase="total"} 2`,
		`job_seconds_count{kind="sim",phase="total"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE job_seconds histogram") != 1 {
		t.Errorf("want exactly one TYPE line for the family:\n%s", out)
	}
}

func TestManualClock(t *testing.T) {
	base := time.Unix(1000, 0)
	c := NewManualClock(base)
	if !c.Now().Equal(base) {
		t.Fatalf("Now = %v, want %v", c.Now(), base)
	}
	c.Advance(3 * time.Second)
	if got := c.Now().Sub(base); got != 3*time.Second {
		t.Fatalf("advanced by %v, want 3s", got)
	}
}
