package obs

import (
	"sync"
	"time"
)

// Clock abstracts monotonic time for the serving layer. Production code
// uses RealClock; tests inject a ManualClock so span durations and
// histogram observations are exact. Deterministic packages (the
// simulation core) must not take a Clock at all — they receive explicit
// timestamps or durations, which is what the nondeterm analyzer's obs
// import ban enforces.
type Clock interface {
	Now() time.Time
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// RealClock returns the wall clock. time.Time values carry a monotonic
// reading, so Sub on two RealClock samples is monotonic-safe.
func RealClock() Clock { return realClock{} }

// ManualClock is a test clock advanced explicitly. The zero value
// starts at the zero time; Advance moves it forward.
type ManualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewManualClock returns a ManualClock starting at start.
func NewManualClock(start time.Time) *ManualClock {
	return &ManualClock{now: start}
}

// Now returns the clock's current reading.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}
