// Package obs is the daemon's observability layer: a typed metrics
// registry rendered in Prometheus text form, lightweight per-job spans
// with a monotonic injected clock, and a ring buffer of completed job
// timelines.
//
// The package is deliberately stdlib-only and deliberately the ONLY
// place the serving layer reads the wall clock for timing: everything
// else takes an obs.Clock (or explicit durations) so the simulation
// core stays deterministic — the nondeterm analyzer sanctions this
// package alone and bans obs imports from deterministic packages, so a
// sim-core package cannot smuggle wall-clock reads in through a Clock.
//
// Span recording is allocation-free on the hot path: spans live in a
// preallocated per-trace array, identifiers are array indices (no maps,
// no fmt, no string building), and label strings are stored by
// reference. Recording beyond the span bound drops spans (counted)
// rather than growing without bound.
package obs
