module specvec

go 1.24
