package specvec

import (
	"runtime"
	"testing"

	"specvec/internal/config"
	"specvec/internal/emu"
	"specvec/internal/experiments"
	"specvec/internal/pipeline"
	"specvec/internal/trace"
	"specvec/internal/workload"
)

// Each benchmark regenerates one figure or table of the paper at reduced
// scale and reports its key aggregate as a custom metric, so
// `go test -bench=. -benchmem` reproduces the whole evaluation. Full-scale
// runs: `go run ./cmd/sdvexp -exp all -scale 1000000`.

const benchScale = 25_000

func benchRunner() *experiments.Runner {
	return experiments.NewRunner(experiments.Options{Scale: benchScale, Seed: 1})
}

func runExperiment(b *testing.B, fn func(*experiments.Runner) ([]*experiments.Table, error)) []*experiments.Table {
	b.Helper()
	var tabs []*experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		tabs, err = fn(benchRunner())
		if err != nil {
			b.Fatal(err)
		}
	}
	return tabs
}

func report(b *testing.B, tabs []*experiments.Table, row, col, unit string) {
	b.Helper()
	if v, ok := tabs[0].CellByColumn(row, col); ok {
		b.ReportMetric(v, unit)
	}
}

func BenchmarkFig01StrideDistribution(b *testing.B) {
	tabs := runExperiment(b, experiments.Fig01)
	report(b, tabs, "INT", "s0", "INT-s0-pct")
	report(b, tabs, "FP", "s1", "FP-s1-pct")
}

func BenchmarkFig03Vectorizable(b *testing.B) {
	tabs := runExperiment(b, experiments.Fig03)
	report(b, tabs, "INT", "vect%", "INT-vect-pct")
	report(b, tabs, "FP", "vect%", "FP-vect-pct")
}

func BenchmarkFig07ScalarBlocking(b *testing.B) {
	tabs := runExperiment(b, experiments.Fig07)
	report(b, tabs, "Spec95", "real", "real-IPC")
	report(b, tabs, "Spec95", "ideal", "ideal-IPC")
}

func BenchmarkFig09OffsetMismatch(b *testing.B) {
	tabs := runExperiment(b, experiments.Fig09)
	report(b, tabs, "Spec95", "off!=0%", "offset-nz-pct")
}

func BenchmarkFig10ControlIndependence(b *testing.B) {
	tabs := runExperiment(b, experiments.Fig10)
	report(b, tabs, "INT", "reused%", "INT-reused-pct")
}

func BenchmarkFig11IPC(b *testing.B) {
	tabs := runExperiment(b, experiments.Fig11)
	report(b, tabs, "Spec95", "1pnoIM", "IPC-4w1pnoIM")
	report(b, tabs, "Spec95", "1pIM", "IPC-4w1pIM")
	report(b, tabs, "Spec95", "1pV", "IPC-4w1pV")
}

func BenchmarkFig12PortOccupancy(b *testing.B) {
	tabs := runExperiment(b, experiments.Fig12)
	report(b, tabs, "Spec95", "1pIM", "occ-4w1pIM-pct")
	report(b, tabs, "Spec95", "1pV", "occ-4w1pV-pct")
}

func BenchmarkFig13WideBusEffectiveness(b *testing.B) {
	tabs := runExperiment(b, experiments.Fig13)
	report(b, tabs, "Spec95", "unused", "unused-pct")
	report(b, tabs, "Spec95", "4pos", "fourword-pct")
}

func BenchmarkFig14Validations(b *testing.B) {
	tabs := runExperiment(b, experiments.Fig14)
	report(b, tabs, "INT", "total%", "INT-valid-pct")
	report(b, tabs, "FP", "total%", "FP-valid-pct")
}

func BenchmarkFig15ElementAccounting(b *testing.B) {
	tabs := runExperiment(b, experiments.Fig15)
	report(b, tabs, "Spec95", "used", "elems-used")
	report(b, tabs, "Spec95", "notcomp", "elems-notcomp")
}

func BenchmarkTable1Configs(b *testing.B) {
	tabs := runExperiment(b, experiments.Table1)
	report(b, tabs, "4-way", "total_B", "extra-bytes")
}

func BenchmarkHeadlineSpeedups(b *testing.B) {
	tabs := runExperiment(b, experiments.Headline)
	report(b, tabs, "IPC gain V vs IM (INT) %", "value", "INT-gain-pct")
	report(b, tabs, "IPC gain V vs IM (FP) %", "value", "FP-gain-pct")
}

func BenchmarkVecLenStatistic(b *testing.B) {
	tabs := runExperiment(b, experiments.VecLen)
	report(b, tabs, "INT", "mean-len", "INT-runlen")
	report(b, tabs, "FP", "mean-len", "FP-runlen")
}

func BenchmarkAblation(b *testing.B) {
	tabs := runExperiment(b, experiments.Ablation)
	report(b, tabs, "baseline (V)", "IPC", "baseline-IPC")
	report(b, tabs, "no churn damper", "IPC", "nochurn-IPC")
	report(b, tabs, "range-only conflicts", "IPC", "rangeonly-IPC")
}

// runnerFanout is the shared body of the Runner-mode benchmarks: one
// cold Runner per iteration executing the same 3-mode × 12-benchmark
// fan-out, so Sequential vs Parallel isolates the worker pool.
func runnerFanout(b *testing.B, workers int) {
	b.Helper()
	var specs []experiments.RunSpec
	for _, mode := range []config.Mode{config.ModeNoIM, config.ModeIM, config.ModeV} {
		cfg := config.MustNamed(4, 1, mode)
		for _, name := range workload.Names() {
			specs = append(specs, experiments.RunSpec{Cfg: cfg, Bench: name})
		}
	}
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(experiments.Options{Scale: benchScale, Seed: 1, Workers: workers})
		if _, err := r.RunAll(specs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(specs))*float64(b.N)/b.Elapsed().Seconds(), "sims/s")
}

// BenchmarkRunnerSequential is the pre-parallelization baseline: one
// simulation at a time (Workers: 1).
func BenchmarkRunnerSequential(b *testing.B) { runnerFanout(b, 1) }

// BenchmarkRunnerParallel runs the identical fan-out on all cores; the
// ratio to BenchmarkRunnerSequential is the worker-pool speedup.
func BenchmarkRunnerParallel(b *testing.B) { runnerFanout(b, runtime.GOMAXPROCS(0)) }

// fig11Specs is the 6-config × 12-benchmark sweep (the Figure 11/12
// shape) shared by the sweep benchmarks.
func fig11Specs() []experiments.RunSpec {
	var specs []experiments.RunSpec
	for _, ports := range []int{1, 2} {
		for _, mode := range []config.Mode{config.ModeNoIM, config.ModeIM, config.ModeV} {
			cfg := config.MustNamed(4, ports, mode)
			for _, name := range workload.Names() {
				specs = append(specs, experiments.RunSpec{Cfg: cfg, Bench: name})
			}
		}
	}
	return specs
}

// sweepBench is the shared body of the trace-sharing benchmarks: one cold
// Runner per iteration executing the Figure 11/12 sweep, so
// SweepLiveStream vs SweepSharedTrace isolates the
// record-once/replay-many layer. Gang replay is pinned off (Gang: 1) —
// each replay materializes its own window — so these two keep measuring
// the sharing layer alone; the gang layer on top is BenchmarkSweepGang.
func sweepBench(b *testing.B, noShare bool) {
	b.Helper()
	specs := fig11Specs()
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(experiments.Options{
			Scale: benchScale, Seed: 1, NoSharedTraces: noShare, Gang: 1,
		})
		if _, err := r.RunAll(specs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(specs))*float64(b.N)/b.Elapsed().Seconds(), "sims/s")
}

// BenchmarkSweepGang runs the identical sweep with gang replay (the
// default mode): the configurations of each benchmark drive one shared
// pre-decoded trace walk through per-member cursors. The ratio to
// BenchmarkSweepSharedTrace is the gang-replay speedup — decode and
// operand materialization once per block instead of once per
// configuration.
func BenchmarkSweepGang(b *testing.B) {
	specs := fig11Specs()
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(experiments.Options{Scale: benchScale, Seed: 1})
		if _, err := r.RunAll(specs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(specs))*float64(b.N)/b.Elapsed().Seconds(), "sims/s")
}

// BenchmarkSweepLiveStream is the pre-trace baseline: every simulation
// re-builds its program and re-runs functional emulation.
func BenchmarkSweepLiveStream(b *testing.B) { sweepBench(b, true) }

// BenchmarkSweepSharded runs the Fig11-shaped sweep of
// BenchmarkSweepSharedTrace with every simulation split into 4
// checkpoint-fast-forwarded shards. On a single core this measures the
// sharding overhead (extra warmup replay per shard); on a multi-core
// machine the shards of one simulation run concurrently, so wall clock
// approaches the longest shard instead of the full single pass (see
// BenchmarkShardCriticalPath in internal/experiments).
func BenchmarkSweepSharded(b *testing.B) {
	var specs []experiments.RunSpec
	for _, ports := range []int{1, 2} {
		for _, mode := range []config.Mode{config.ModeNoIM, config.ModeIM, config.ModeV} {
			cfg := config.MustNamed(4, ports, mode)
			for _, name := range workload.Names() {
				specs = append(specs, experiments.RunSpec{Cfg: cfg, Bench: name})
			}
		}
	}
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(experiments.Options{Scale: benchScale, Seed: 1, Shards: 4})
		if _, err := r.RunAll(specs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(specs))*float64(b.N)/b.Elapsed().Seconds(), "sims/s")
}

// BenchmarkShardedReplay is BenchmarkTraceReplay's workload (one 200k
// swim simulation on 4w-1pV, replayed from a recording) split into 8
// shards. The recording carries checkpoints every 8192 instructions; on
// one core the shards run back to back, on >= 8 cores the wall clock is
// the longest shard.
func BenchmarkShardedReplay(b *testing.B) {
	bench, _ := workload.Get("swim")
	prog := bench.Build(200_000, 1)
	cfg := config.MustNamed(4, 1, config.ModeV)
	mach, err := emu.New(prog)
	if err != nil {
		b.Fatal(err)
	}
	rec, err := trace.NewRecorder(mach, prog, 0)
	if err != nil {
		b.Fatal(err)
	}
	if err := rec.EnableCheckpoints(8192); err != nil {
		b.Fatal(err)
	}
	tr, err := rec.Finish(200_000 + trace.RecordSlack)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var committed uint64
	for i := 0; i < b.N; i++ {
		st, err := experiments.ShardedReplay(cfg, tr, 200_000, 8, 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		committed = st.Committed
	}
	b.ReportMetric(float64(committed)*float64(b.N)/b.Elapsed().Seconds(), "inst/s")
}

// BenchmarkSweepSharedTrace records each benchmark once and replays it
// for the other five configurations; the ratio to BenchmarkSweepLiveStream
// is the sharing speedup and grows with configs-per-benchmark.
func BenchmarkSweepSharedTrace(b *testing.B) { sweepBench(b, false) }

// BenchmarkTraceReplay measures raw replay speed: the same simulation as
// BenchmarkSimulatorThroughput, but fed from a recorded trace instead of
// live functional emulation (no machine, no memory image, no
// interpretation on the fetch path).
func BenchmarkTraceReplay(b *testing.B) {
	bench, _ := workload.Get("swim")
	prog := bench.Build(200_000, 1)
	cfg := config.MustNamed(4, 1, config.ModeV)
	mach, err := emu.New(prog)
	if err != nil {
		b.Fatal(err)
	}
	rec, err := trace.NewRecorder(mach, prog, pipeline.SourceWindow(cfg))
	if err != nil {
		b.Fatal(err)
	}
	tr, err := rec.Finish(200_000 + trace.RecordSlack)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var committed uint64
	for i := 0; i < b.N; i++ {
		sim, err := pipeline.NewFromSource(cfg, trace.NewReplayer(tr, pipeline.SourceWindow(cfg)))
		if err != nil {
			b.Fatal(err)
		}
		st, err := sim.Run(200_000)
		if err != nil {
			b.Fatal(err)
		}
		committed = st.Committed
	}
	b.ReportMetric(float64(committed)*float64(b.N)/b.Elapsed().Seconds(), "inst/s")
}

// BenchmarkSimulatorThroughput measures raw simulation speed (simulated
// instructions per wall-clock second) on the V configuration.
func BenchmarkSimulatorThroughput(b *testing.B) {
	bench, _ := workload.Get("swim")
	prog := bench.Build(200_000, 1)
	cfg := config.MustNamed(4, 1, config.ModeV)
	b.ResetTimer()
	var committed uint64
	for i := 0; i < b.N; i++ {
		sim, err := pipeline.New(cfg, prog)
		if err != nil {
			b.Fatal(err)
		}
		st, err := sim.Run(200_000)
		if err != nil {
			b.Fatal(err)
		}
		committed = st.Committed
	}
	b.ReportMetric(float64(committed)*float64(b.N)/b.Elapsed().Seconds(), "inst/s")
}
