// Package specvec reproduces "Speculative Dynamic Vectorization"
// (A. Pajuelo, A. González, M. Valero, ISCA 2002): a cycle-level
// out-of-order superscalar simulator extended with the paper's Table of
// Loads, Vector Register Map Table and speculative vector datapath, plus
// the synthetic Spec95-like workload suite and the experiment harness that
// regenerates every figure of the paper's evaluation.
//
// Layout (each package carries its own doc.go with details):
//
//	internal/isa         instruction set, program container, builder
//	internal/asm         text assembler / disassembler
//	internal/emu         functional emulator (architectural oracle)
//	internal/mem         caches, MSHRs, scalar/wide data ports
//	internal/branch      gshare predictor, BTB, return stack
//	internal/core        the paper's contribution: TL, VRMT, vector registers
//	internal/pipeline    cycle-level OoO model with the SDV extension
//	internal/trace       record-once/replay-many dynamic instruction traces
//	internal/workload    12 synthetic Spec95-like benchmarks
//	internal/experiments figures/tables of §4 and the headline numbers
//	internal/profile     hot-path counters (pool recycling, allocations)
//	internal/stats       counters and histograms shared by a run
//	internal/config      Table 1 configurations and the sweep matrix
//	internal/server      simulation service: jobs, result cache, SSE progress
//	internal/cliutil     shared CLI flag validation
//	cmd/sdvsim           run one workload on one configuration
//	cmd/sdvexp           regenerate any figure or table (locally or via -server)
//	cmd/sdvasm           assemble/disassemble/execute assembly programs
//	cmd/sdvtrace         inspect recorded trace files
//	cmd/sdvd             the long-running simulation daemon behind -server
//
// ARCHITECTURE.md walks the pipeline stage by stage, documents the SDV
// structures against the sections of the paper that define them, and maps
// each figure to the code that regenerates it. The benchmarks in
// bench_test.go regenerate each figure at reduced scale; see
// EXPERIMENTS.md for full-scale paper-vs-measured results and the hot-path
// performance methodology.
package specvec
