// Package specvec reproduces "Speculative Dynamic Vectorization"
// (A. Pajuelo, A. González, M. Valero, ISCA 2002): a cycle-level
// out-of-order superscalar simulator extended with the paper's Table of
// Loads, Vector Register Map Table and speculative vector datapath, plus
// the synthetic Spec95-like workload suite and the experiment harness that
// regenerates every figure of the paper's evaluation.
//
// Layout:
//
//	internal/isa         instruction set, program container, builder
//	internal/asm         text assembler / disassembler
//	internal/emu         functional emulator (architectural oracle)
//	internal/mem         caches, MSHRs, scalar/wide data ports
//	internal/branch      gshare predictor, BTB, return stack
//	internal/core        the paper's contribution: TL, VRMT, vector registers
//	internal/pipeline    cycle-level OoO model with the SDV extension
//	internal/workload    12 synthetic Spec95-like benchmarks
//	internal/experiments figures/tables of §4 and the headline numbers
//	cmd/sdvsim           run one workload on one configuration
//	cmd/sdvexp           regenerate any figure or table
//	cmd/sdvasm           assemble/disassemble/execute assembly programs
//
// The benchmarks in bench_test.go regenerate each figure at reduced scale;
// see EXPERIMENTS.md for full-scale paper-vs-measured results.
package specvec
