// Controlflow: demonstrates §3.5 — vector state survives branch
// mispredictions, so control-independent work after an unpredictable
// branch is *reused* instead of re-executed. The kernel interleaves a
// 50/50 data-dependent branch with strided updates that do not depend on
// the branch direction.
//
//	go run ./examples/controlflow
package main

import (
	"fmt"
	"log"

	"specvec/internal/config"
	"specvec/internal/isa"
	"specvec/internal/pipeline"
)

func main() {
	prog := buildNoisyLoop(30_000)

	cfg := config.MustNamed(4, 1, config.ModeV)
	sim, err := pipeline.New(cfg, prog)
	if err != nil {
		log.Fatal(err)
	}
	st, err := sim.Run(1 << 62)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("kernel: unpredictable branch + control-independent strided work")
	fmt.Println()
	fmt.Printf("branches committed:        %d\n", st.CommittedBranches)
	fmt.Printf("branch mispredict rate:    %.1f%%\n", 100*st.BranchMispredictRate())
	fmt.Printf("instructions in the 100-instruction windows after mispredicts: %d\n",
		st.PostMispredictInsts)
	fmt.Printf("  of which reused from vector state (validations): %d (%.1f%%)\n",
		st.PostMispredictReused, 100*st.ControlIndepFraction())
	fmt.Println()
	fmt.Println("the paper's Figure 10 reports ~17% reuse for SpecInt95;")
	fmt.Println("reused instructions need no functional unit and no memory access.")
}

func buildNoisyLoop(n int) *isa.Program {
	b := isa.NewBuilder("noisy")
	r := isa.IntReg
	vals := make([]uint64, n)
	x := uint64(88172645463325252)
	for i := range vals {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		vals[i] = x & 0xff
	}
	b.DataWords("vals", vals)
	b.DataWords("bias", []uint64{128})
	b.DataZero("out", n)

	b.LoadAddr(r(1), "vals")
	b.LoadAddr(r(2), "out")
	b.LoadAddr(r(9), "bias")
	b.Li(r(3), 0)
	b.Li(r(4), int64(n))
	b.Li(r(5), 0)
	b.Label("loop")
	b.Ld(r(6), r(1), 0)  // random byte
	b.Ld(r(10), r(9), 0) // threshold (stride 0)
	b.Blt(r(6), r(10), "low")
	b.Addi(r(5), r(5), 3)
	b.J("join")
	b.Label("low")
	b.Addi(r(5), r(5), 1)
	b.Label("join")
	// Control-independent tail: the same strided work runs regardless of
	// the branch direction, so its vector state stays valid across
	// mispredictions.
	b.Ld(r(7), r(2), 0)
	b.Addi(r(7), r(7), 5)
	b.St(r(7), r(2), 0)
	b.Addi(r(1), r(1), 8)
	b.Addi(r(2), r(2), 8)
	b.Addi(r(3), r(3), 1)
	b.Blt(r(3), r(4), "loop")
	b.Halt()
	return b.MustBuild()
}
