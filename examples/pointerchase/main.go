// Pointerchase: the paper's central claim is that SIMD parallelism hides
// in irregular, pointer-rich code where a vectorizing compiler fails. This
// example walks a linked list — opaque to any static analysis — whose
// nodes happen to be allocated contiguously (as bump allocators tend to
// do). The Table of Loads discovers that the car/cdr loads stride by the
// node size and vectorizes the walk speculatively. See "The paper's
// structures" in ARCHITECTURE.md for the TL/VRMT mechanics at work here.
//
//	go run ./examples/pointerchase
package main

import (
	"fmt"
	"log"

	"specvec/internal/config"
	"specvec/internal/isa"
	"specvec/internal/pipeline"
)

const (
	nodes     = 4096
	nodeBytes = 24 // value, next, payload pointer
)

func main() {
	prog := buildListSum()

	fmt.Println("kernel: sum of a 4096-node linked list (24-byte nodes, bump-allocated)")
	fmt.Println()
	fmt.Printf("%-8s %8s %10s %14s %12s\n", "mode", "IPC", "cycles", "vector loads", "validated%")
	var base, vec float64
	for _, mode := range []config.Mode{config.ModeIM, config.ModeV} {
		cfg := config.MustNamed(4, 1, mode)
		sim, err := pipeline.New(cfg, prog)
		if err != nil {
			log.Fatal(err)
		}
		st, err := sim.Run(1 << 62)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %8.3f %10d %14d %11.1f%%\n",
			mode, st.IPC(), st.Cycles, st.VectorLoadInstances, 100*st.ValidationFraction())
		if mode == config.ModeIM {
			base = st.IPC()
		} else {
			vec = st.IPC()
		}
	}
	fmt.Println()
	fmt.Printf("speculative dynamic vectorization speedup on pointer chasing: %+.1f%%\n",
		100*(vec-base)/base)
	fmt.Println("(a static compiler cannot vectorize this loop: the addresses are data-dependent)")
}

func buildListSum() *isa.Program {
	b := isa.NewBuilder("listsum")
	// Bump-allocated nodes: node i at heap + i*nodeBytes.
	heap := make([]uint64, nodes*nodeBytes/8)
	for i := 0; i < nodes; i++ {
		heap[i*3] = uint64(i % 97) // value
		if i < nodes-1 {
			heap[i*3+1] = uint64(isa.DataBase + (i+1)*nodeBytes) // next
		}
		heap[i*3+2] = uint64(isa.DataBase) // payload (unused)
	}
	b.DataWords("heap", heap) // first block: placed exactly at DataBase

	r := isa.IntReg
	b.LoadAddr(r(1), "heap") // cur
	b.Li(r(2), 0)            // sum
	b.Label("walk")
	b.Ld(r(3), r(1), 0) // cur.value   — strided in practice
	b.Ld(r(4), r(1), 8) // cur.next    — strided in practice
	b.Add(r(2), r(2), r(3))
	b.Add(r(1), r(4), r(0)) // cur = cur.next (data-dependent address!)
	b.Bne(r(4), r(0), "walk")
	b.Halt()
	return b.MustBuild()
}
