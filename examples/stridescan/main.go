// Stridescan: profiles the load-stride distribution of a program written
// in specvec assembly (the statistic behind the paper's Figure 1 and the
// trigger condition of the whole mechanism). The program below mixes four
// access patterns; the profile shows how each static load classifies.
//
//	go run ./examples/stridescan
package main

import (
	"fmt"
	"log"

	"specvec/internal/asm"
	"specvec/internal/config"
	"specvec/internal/pipeline"
)

const source = `
        .data
arr:    .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
mat:    .space 2048              ; 16x16 matrix of words
global: .word 42
idx:    .word 88, 24, 8, 120, 56, 104, 40, 72

        .text
main:   li   r1, 0               ; outer trip count
        li   r2, 200
outer:
        ; pattern 1: stride-1 sweep
        li   r3, arr
        li   r4, 0
s1:     ld   r5, 0(r3)           ; stride 1
        addi r3, r3, 8
        addi r4, r4, 1
        slti r6, r4, 16
        bne  r6, r0, s1

        ; pattern 2: column walk (stride 16 words)
        li   r3, mat
        li   r4, 0
s2:     ld   r5, 0(r3)           ; stride 16
        addi r3, r3, 128
        addi r4, r4, 1
        slti r6, r4, 16
        bne  r6, r0, s2

        ; pattern 3: the same global every time (stride 0)
        li   r3, global
        li   r4, 0
s3:     ld   r5, 0(r3)           ; stride 0
        addi r4, r4, 1
        slti r6, r4, 8
        bne  r6, r0, s3

        ; pattern 4: data-driven gather (irregular)
        li   r3, idx
        li   r7, arr
        li   r4, 0
s4:     ld   r8, 0(r3)           ; stride 1 (the index vector)
        add  r9, r7, r8
        ld   r10, 0(r9)          ; irregular
        addi r3, r3, 8
        addi r4, r4, 1
        slti r6, r4, 8
        bne  r6, r0, s4

        addi r1, r1, 1
        blt  r1, r2, outer
        halt
`

func main() {
	prog, err := asm.Assemble("stridescan", source)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := pipeline.New(config.MustNamed(4, 1, config.ModeV), prog)
	if err != nil {
		log.Fatal(err)
	}
	st, err := sim.Run(1 << 62)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("load stride profile (stride measured in 8-byte elements):")
	fmt.Println()
	total := st.StrideHist.Total()
	for i := 0; i < 10; i++ {
		if c := st.StrideHist.Count(i); c > 0 {
			fmt.Printf("  stride %2d: %6d loads (%5.1f%%) %s\n",
				i, c, 100*st.StrideHist.Fraction(i), bar(st.StrideHist.Fraction(i)))
		}
	}
	if c := st.StrideHist.Overflow; c > 0 {
		fmt.Printf("  irregular: %6d loads (%5.1f%%) %s\n",
			c, 100*st.StrideHist.Fraction(-1), bar(st.StrideHist.Fraction(-1)))
	}
	fmt.Printf("\n%d classified dynamic loads; %.1f%% of committed instructions became validations\n",
		total, 100*st.ValidationFraction())
}

func bar(frac float64) string {
	n := int(frac * 40)
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
